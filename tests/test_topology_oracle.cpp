// Property tests pinning sim::Topology against brute force: for randomized
// seeded specs of every family, routing must take a shortest-hop path
// (checked against a BFS oracle over Topology::links()), routes must be
// contiguous chains of real links, and the modeled latency must equal the
// per-hop tier decomposition *exactly* — the invariant that makes the
// sampled cluster probing (one measurement per route class) sound.
#include "sim/topology.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <queue>
#include <random>
#include <set>

#include "base/types.hpp"

namespace servet::sim {
namespace {

std::vector<TopologyTier> random_tiers(int count, std::mt19937_64& rng) {
    std::uniform_real_distribution<double> latency(1.0e-6, 1.0e-5);
    std::uniform_real_distribution<double> bandwidth(1.0e8, 2.0e9);
    std::vector<TopologyTier> tiers;
    for (int t = 0; t < count; ++t)
        tiers.push_back({"tier" + std::to_string(t), latency(rng), bandwidth(rng),
                         0.1 * static_cast<double>(t)});
    return tiers;
}

TopologySpec random_fat_tree(std::mt19937_64& rng) {
    TopologySpec spec;
    spec.kind = TopologyKind::FatTree;
    spec.arity = 1 << std::uniform_int_distribution<int>(1, 3)(rng);
    spec.levels = std::uniform_int_distribution<int>(1, 3)(rng);
    spec.tiers = random_tiers(spec.levels, rng);
    return spec;
}

TopologySpec random_torus(std::mt19937_64& rng) {
    TopologySpec spec;
    spec.kind = TopologyKind::Torus;
    const int rank = std::uniform_int_distribution<int>(2, 3)(rng);
    for (int d = 0; d < rank; ++d)
        spec.dims.push_back(std::uniform_int_distribution<int>(2, 5)(rng));
    spec.tiers = random_tiers(1, rng);
    return spec;
}

TopologySpec random_dragonfly(std::mt19937_64& rng) {
    TopologySpec spec;
    spec.kind = TopologyKind::Dragonfly;
    spec.groups = std::uniform_int_distribution<int>(2, 5)(rng);
    spec.routers = std::uniform_int_distribution<int>(2, 4)(rng);
    spec.nodes_per_router = std::uniform_int_distribution<int>(1, 3)(rng);
    spec.tiers = random_tiers(3, rng);
    return spec;
}

/// Random tree: switches chain off earlier switches, nodes hang off random
/// switches. Node-switch links are tier 0, switch-switch links tier 1.
TopologySpec random_custom(std::mt19937_64& rng) {
    TopologySpec spec;
    spec.kind = TopologyKind::Custom;
    spec.custom_nodes = std::uniform_int_distribution<int>(2, 8)(rng);
    spec.switch_count = std::uniform_int_distribution<int>(1, 4)(rng);
    int max_tier = 0;
    for (int s = 1; s < spec.switch_count; ++s) {
        const int parent = std::uniform_int_distribution<int>(0, s - 1)(rng);
        spec.links.push_back(
            {spec.custom_nodes + parent, spec.custom_nodes + s, 1});
        max_tier = 1;
    }
    for (int n = 0; n < spec.custom_nodes; ++n) {
        const int sw = std::uniform_int_distribution<int>(0, spec.switch_count - 1)(rng);
        spec.links.push_back({n, spec.custom_nodes + sw, 0});
    }
    spec.tiers = random_tiers(max_tier + 1, rng);
    return spec;
}

std::vector<TopologySpec> random_specs(std::uint64_t seed, int per_family) {
    std::mt19937_64 rng(seed);
    std::vector<TopologySpec> specs;
    for (int i = 0; i < per_family; ++i) {
        specs.push_back(random_fat_tree(rng));
        specs.push_back(random_torus(rng));
        specs.push_back(random_dragonfly(rng));
        specs.push_back(random_custom(rng));
    }
    return specs;
}

/// Shortest-hop distances from `start` over the links, the ground truth
/// routing is checked against.
std::vector<int> bfs_distances(const Topology& topology, int start) {
    std::vector<std::vector<int>> adjacency(
        static_cast<std::size_t>(topology.vertex_count()));
    for (const TopologyLink& link : topology.links()) {
        adjacency[static_cast<std::size_t>(link.a)].push_back(link.b);
        adjacency[static_cast<std::size_t>(link.b)].push_back(link.a);
    }
    std::vector<int> distance(adjacency.size(), -1);
    std::queue<int> frontier;
    distance[static_cast<std::size_t>(start)] = 0;
    frontier.push(start);
    while (!frontier.empty()) {
        const int v = frontier.front();
        frontier.pop();
        for (int peer : adjacency[static_cast<std::size_t>(v)]) {
            if (distance[static_cast<std::size_t>(peer)] >= 0) continue;
            distance[static_cast<std::size_t>(peer)] = distance[static_cast<std::size_t>(v)] + 1;
            frontier.push(peer);
        }
    }
    return distance;
}

/// Undirected link lookup: (min(a,b), max(a,b)) -> tier.
std::map<std::pair<int, int>, int> link_tiers(const Topology& topology) {
    std::map<std::pair<int, int>, int> tiers;
    for (const TopologyLink& link : topology.links())
        tiers[{std::min(link.a, link.b), std::max(link.a, link.b)}] = link.tier;
    return tiers;
}

TEST(TopologyOracle, RoutesAreShortestContiguousAndReal) {
    for (const TopologySpec& spec : random_specs(0x04ac1e, 6)) {
        ASSERT_TRUE(spec.validate().empty());
        const Topology topology(spec);
        const auto tiers = link_tiers(topology);
        const int n = topology.node_count();
        for (int a = 0; a < n; ++a) {
            const std::vector<int> distance = bfs_distances(topology, a);
            for (int b = 0; b < n; ++b) {
                if (a == b) continue;
                const std::vector<RouteHop> route = topology.route(a, b);
                // Shortest hop count, per the oracle.
                ASSERT_EQ(static_cast<int>(route.size()),
                          distance[static_cast<std::size_t>(b)])
                    << topology_kind_name(spec.kind) << " " << a << "->" << b;
                // Contiguous chain from a to b over real links of the
                // claimed tiers.
                ASSERT_EQ(route.front().from, a);
                ASSERT_EQ(route.back().to, b);
                for (std::size_t h = 0; h < route.size(); ++h) {
                    if (h > 0) {
                        ASSERT_EQ(route[h].from, route[h - 1].to);
                    }
                    const auto key = std::pair{std::min(route[h].from, route[h].to),
                                               std::max(route[h].from, route[h].to)};
                    const auto found = tiers.find(key);
                    ASSERT_NE(found, tiers.end());
                    ASSERT_EQ(found->second, route[h].tier);
                }
            }
        }
    }
}

TEST(TopologyOracle, RoutingIsDeterministic) {
    for (const TopologySpec& spec : random_specs(0xd37e51, 4)) {
        const Topology topology(spec);
        const int n = topology.node_count();
        for (int a = 0; a < n; ++a)
            for (int b = 0; b < n; ++b) {
                if (a == b) continue;
                ASSERT_EQ(topology.route(a, b), topology.route(a, b));
            }
    }
}

TEST(TopologyOracle, LatencyIsExactPerHopDecomposition) {
    for (const TopologySpec& spec : random_specs(0x1a73, 6)) {
        const Topology topology(spec);
        const int n = topology.node_count();
        for (int a = 0; a < n; ++a)
            for (int b = 0; b < n; ++b) {
                if (a == b) continue;
                for (const Bytes size : {Bytes{0}, 1 * KiB, 1 * MiB}) {
                    Seconds expected = 0;
                    for (const RouteHop& hop : topology.route(a, b)) {
                        const TopologyTier& tier = topology.tier(hop.tier);
                        expected += tier.hop_latency +
                                    static_cast<double>(size) / tier.bandwidth;
                    }
                    // Exact: same terms, same accumulation order.
                    ASSERT_EQ(topology.latency(a, b, size), expected);
                }
            }
    }
}

TEST(TopologyOracle, RouteClassMatchesRoute) {
    for (const TopologySpec& spec : random_specs(0xc1a55, 4)) {
        const Topology topology(spec);
        const int n = topology.node_count();
        for (int a = 0; a < n; ++a)
            for (int b = 0; b < n; ++b) {
                if (a == b) continue;
                const std::vector<RouteHop> route = topology.route(a, b);
                int bottleneck = 0;
                for (const RouteHop& hop : route) bottleneck = std::max(bottleneck, hop.tier);
                const RouteClass cls = topology.route_class(a, b);
                ASSERT_EQ(cls.hops, static_cast<int>(route.size()));
                ASSERT_EQ(cls.tier, bottleneck);
            }
    }
}

TEST(TopologyOracle, PairsOfOneClassShareOneLatency) {
    for (const TopologySpec& spec : random_specs(0x5a3e, 4)) {
        const Topology topology(spec);
        const int n = topology.node_count();
        std::map<RouteClass, Seconds> latency_of_class;
        for (int a = 0; a < n; ++a)
            for (int b = a + 1; b < n; ++b) {
                const Seconds latency = topology.latency(a, b, 4 * KiB);
                const auto [it, inserted] =
                    latency_of_class.emplace(topology.route_class(a, b), latency);
                if (!inserted) {
                    ASSERT_DOUBLE_EQ(it->second, latency);
                }
            }
    }
}

TEST(TopologyOracle, ClusterProbePairsCoverEveryRouteClass) {
    for (const TopologySpec& spec : random_specs(0xc03e, 4)) {
        const Topology topology(spec);
        const int n = topology.node_count();
        for (const int cores_per_node : {1, 2}) {
            const std::vector<CorePair> pairs =
                cluster_probe_pairs(spec, cores_per_node, 3);
            std::set<RouteClass> probed;
            std::set<CorePair> intra_node;
            for (const CorePair& pair : pairs) {
                ASSERT_GE(pair.a, 0);
                ASSERT_LT(pair.b, n * cores_per_node);
                ASSERT_NE(pair.a, pair.b);
                const int node_a = pair.a / cores_per_node;
                const int node_b = pair.b / cores_per_node;
                if (node_a == node_b) {
                    intra_node.insert(pair);
                    continue;
                }
                probed.insert(topology.route_class(node_a, node_b));
            }
            std::set<RouteClass> all;
            for (int a = 0; a < n; ++a)
                for (int b = a + 1; b < n; ++b) all.insert(topology.route_class(a, b));
            ASSERT_EQ(probed, all);
            // Every intra-node pair of node 0 rides along when nodes are
            // multicore, so the profile sees the node-local layers too.
            const std::size_t node0_pairs =
                static_cast<std::size_t>(cores_per_node * (cores_per_node - 1) / 2);
            ASSERT_EQ(intra_node.size(), node0_pairs);
        }
    }
}

}  // namespace
}  // namespace servet::sim
