// Regression tests for the crash-atomic write path, centered on the
// concurrent-writer guarantee: write_file_atomic once used the fixed
// temp name `path + ".tmp"`, so two simultaneous writers shared (and
// clobbered) one temp file — a reader could then see one writer's bytes
// under the other writer's rename, or a torn mix. The unique O_EXCL temp
// per writer makes every rename publish exactly one writer's complete
// content.
#include "base/fs.hpp"

#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

namespace servet {
namespace {

/// Fresh scratch directory per test; removed on teardown.
class FsTest : public ::testing::Test {
  protected:
    void SetUp() override {
        char pattern[] = "/tmp/servet-fs-XXXXXX";
        ASSERT_NE(::mkdtemp(pattern), nullptr);
        dir_ = pattern;
    }
    void TearDown() override {
        for (const std::string& name : list_dir())
            (void)::unlink((dir_ + "/" + name).c_str());
        (void)::rmdir(dir_.c_str());
    }

    std::vector<std::string> list_dir() const {
        std::vector<std::string> names;
        DIR* dir = ::opendir(dir_.c_str());
        if (dir == nullptr) return names;
        while (const dirent* entry = ::readdir(dir)) {
            const std::string name = entry->d_name;
            if (name != "." && name != "..") names.push_back(name);
        }
        ::closedir(dir);
        return names;
    }

    std::string dir_;
};

TEST_F(FsTest, WriteReadRoundTrip) {
    const std::string path = dir_ + "/file.txt";
    ASSERT_TRUE(write_file_atomic(path, "hello\n"));
    std::string content;
    ASSERT_EQ(read_file(path, &content), FileRead::Ok);
    EXPECT_EQ(content, "hello\n");
}

TEST_F(FsTest, OverwriteReplacesWholeFile) {
    const std::string path = dir_ + "/file.txt";
    ASSERT_TRUE(write_file_atomic(path, "a long first version of the file\n"));
    ASSERT_TRUE(write_file_atomic(path, "short\n"));
    std::string content;
    ASSERT_EQ(read_file(path, &content), FileRead::Ok);
    EXPECT_EQ(content, "short\n");  // no stale tail from the longer write
}

TEST_F(FsTest, NoTempResidueAfterWrites) {
    const std::string path = dir_ + "/file.txt";
    for (int i = 0; i < 8; ++i) {
        std::string content = "v";
        content += std::to_string(i);
        ASSERT_TRUE(write_file_atomic(path, content));
    }
    const std::vector<std::string> names = list_dir();
    ASSERT_EQ(names.size(), 1u);
    EXPECT_EQ(names[0], "file.txt");
}

TEST_F(FsTest, ConcurrentWritersNeverTearOrClobber) {
    // Several threads repeatedly rewrite the same path with distinct,
    // recognizable contents. Every read observed during and after the
    // race must be exactly one writer's complete payload.
    const std::string path = dir_ + "/contested.txt";
    constexpr int kWriters = 4;
    constexpr int kRounds = 200;
    const auto payload_of = [](int writer) {
        // Distinct sizes so a torn or mixed write cannot masquerade as a
        // valid payload.
        return std::string(static_cast<std::size_t>(64 + writer * 37),
                           static_cast<char>('A' + writer));
    };

    std::atomic<bool> failed{false};
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w)
        writers.emplace_back([&, w] {
            const std::string payload = payload_of(w);
            for (int round = 0; round < kRounds; ++round)
                if (!write_file_atomic(path, payload)) failed.store(true);
        });
    std::thread reader([&] {
        for (int i = 0; i < kRounds; ++i) {
            std::string seen;
            if (read_file(path, &seen) != FileRead::Ok) continue;
            bool valid = false;
            for (int w = 0; w < kWriters; ++w)
                if (seen == payload_of(w)) valid = true;
            if (!valid) failed.store(true);
        }
    });
    for (std::thread& t : writers) t.join();
    reader.join();
    EXPECT_FALSE(failed.load());

    std::string final_content;
    ASSERT_EQ(read_file(path, &final_content), FileRead::Ok);
    bool valid = false;
    for (int w = 0; w < kWriters; ++w)
        if (final_content == payload_of(w)) valid = true;
    EXPECT_TRUE(valid) << "final file is not any single writer's payload";

    const std::vector<std::string> names = list_dir();
    ASSERT_EQ(names.size(), 1u) << "temp files left behind after the race";
    EXPECT_EQ(names[0], "contested.txt");
}

TEST_F(FsTest, WriteIntoMissingDirectoryFails) {
    EXPECT_FALSE(write_file_atomic(dir_ + "/no/such/dir/file.txt", "x"));
}

TEST_F(FsTest, CreateParentDirsThenWrite) {
    const std::string path = dir_ + "/a/b/c.txt";
    ASSERT_TRUE(create_parent_dirs(path));
    ASSERT_TRUE(write_file_atomic(path, "nested"));
    std::string content;
    ASSERT_EQ(read_file(path, &content), FileRead::Ok);
    EXPECT_EQ(content, "nested");
    (void)::unlink(path.c_str());
    (void)::rmdir((dir_ + "/a/b").c_str());
    (void)::rmdir((dir_ + "/a").c_str());
}

}  // namespace
}  // namespace servet
