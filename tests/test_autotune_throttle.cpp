#include "autotune/throttle.hpp"

#include <gtest/gtest.h>

#include "autotune/search/strategy.hpp"

namespace servet::autotune {
namespace {

core::Profile profile_with_scalability(std::vector<double> per_core_bw) {
    core::Profile profile;
    profile.memory.reference_bandwidth = per_core_bw.empty() ? 1.0 : per_core_bw[0];
    core::ProfileMemoryTier tier;
    tier.bandwidth = per_core_bw.empty() ? 0.0 : per_core_bw.back();
    tier.groups = {{0, 1, 2, 3}};
    tier.scalability = std::move(per_core_bw);
    profile.memory.tiers = {tier};
    return profile;
}

TEST(Throttle, SaturatingBusStopsEarly) {
    // Aggregate: 2.0, 2.2, 2.22, 2.22 GB/s -> adding cores 3 and 4 gains
    // almost nothing; recommend 2.
    const auto profile =
        profile_with_scalability({2.0e9, 1.1e9, 0.74e9, 0.555e9});
    const auto advice = advise_core_throttle(profile, 0, 0.05);
    ASSERT_TRUE(advice.has_value());
    EXPECT_EQ(advice->recommended_cores, 2);
    ASSERT_EQ(advice->aggregate_by_n.size(), 4u);
    EXPECT_NEAR(advice->aggregate_by_n[1], 2.2e9, 1e3);
}

TEST(Throttle, LinearScalingUsesAllCores) {
    const auto profile = profile_with_scalability({2e9, 2e9, 2e9, 2e9});
    const auto advice = advise_core_throttle(profile, 0, 0.05);
    ASSERT_TRUE(advice.has_value());
    EXPECT_EQ(advice->recommended_cores, 4);
}

TEST(Throttle, HardSaturationStopsAtOne) {
    // A fully serialized bus: aggregate flat at 2 GB/s from the start.
    const auto profile = profile_with_scalability({2e9, 1e9, 0.6667e9, 0.5e9});
    const auto advice = advise_core_throttle(profile, 0, 0.05);
    ASSERT_TRUE(advice.has_value());
    EXPECT_EQ(advice->recommended_cores, 1);
}

TEST(Throttle, ThresholdControlsGreed) {
    // Aggregate grows 10% per step: accepted at 5%, rejected at 15%.
    const auto profile = profile_with_scalability({1.0e9, 0.55e9, 0.4033e9});
    EXPECT_EQ(advise_core_throttle(profile, 0, 0.05)->recommended_cores, 3);
    EXPECT_EQ(advise_core_throttle(profile, 0, 0.15)->recommended_cores, 1);
}

TEST(Throttle, MissingTierOrData) {
    EXPECT_FALSE(advise_core_throttle(core::Profile{}, 0).has_value());
    const auto profile = profile_with_scalability({});
    EXPECT_FALSE(advise_core_throttle(profile, 0).has_value());
    const auto ok = profile_with_scalability({1e9});
    EXPECT_FALSE(advise_core_throttle(ok, 5).has_value());
}

TEST(ThrottleTunable, MissingTierYieldsNoTunable) {
    EXPECT_EQ(make_throttle_tunable(profile_with_scalability({}), 0), nullptr);
    EXPECT_EQ(make_throttle_tunable(profile_with_scalability({1e9}), 5), nullptr);
}

TEST(ThrottleTunable, SearchReproducesAdvisedCoreCount) {
    const auto profile = profile_with_scalability({2.0e9, 1.1e9, 0.74e9, 0.555e9});
    const auto advice = advise_core_throttle(profile, 0, 0.05);
    ASSERT_TRUE(advice.has_value());
    const auto tunable = make_throttle_tunable(profile, 0, 0.05);
    ASSERT_NE(tunable, nullptr);
    const auto result = search::run_search(*tunable, {});
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->best.at("cores"), advice->recommended_cores);
}

}  // namespace
}  // namespace servet::autotune
