#include "core/mcalibrator.hpp"

#include <gtest/gtest.h>

#include "platform/sim_platform.hpp"
#include "sim/zoo.hpp"

namespace servet::core {
namespace {

TEST(SizeGrid, DoublesThenStepsOneMegabyte) {
    // Fig. 1: i *= 2 below 2MB, i += 1MB above.
    const auto grid = mcalibrator_size_grid(4 * KiB, 6 * MiB);
    const std::vector<Bytes> expected = {4 * KiB,  8 * KiB,   16 * KiB, 32 * KiB,
                                         64 * KiB, 128 * KiB, 256 * KiB, 512 * KiB,
                                         1 * MiB,  2 * MiB,   3 * MiB,  4 * MiB,
                                         5 * MiB,  6 * MiB};
    EXPECT_EQ(grid, expected);
}

TEST(SizeGrid, SingleSize) {
    EXPECT_EQ(mcalibrator_size_grid(8 * KiB, 8 * KiB), std::vector<Bytes>{8 * KiB});
}

TEST(SizeGrid, StopsAtMax) {
    const auto grid = mcalibrator_size_grid(1 * MiB, 2 * MiB + 512 * KiB);
    EXPECT_EQ(grid, (std::vector<Bytes>{1 * MiB, 2 * MiB}));
}

TEST(Mcalibrator, CurveShapesFollowHierarchy) {
    sim::zoo::SyntheticOptions options;
    options.cores = 1;
    options.l1_size = 16 * KiB;
    options.l2_size = 256 * KiB;
    options.jitter = 0.0;
    SimPlatform platform(sim::zoo::synthetic(options));

    McalibratorOptions mc;
    mc.min_size = 4 * KiB;
    mc.max_size = 2 * MiB;
    mc.repeats = 2;
    const McalibratorCurve curve = run_mcalibrator(platform, mc);

    ASSERT_EQ(curve.sizes.size(), curve.cycles.size());
    ASSERT_EQ(curve.points(), mcalibrator_size_grid(mc.min_size, mc.max_size).size());
    // Small arrays cost the L1 hit time; huge ones the memory latency.
    EXPECT_NEAR(curve.cycles.front(), 2.0, 0.3);
    EXPECT_NEAR(curve.cycles.back(), 220.0, 20.0);
    // The curve is (weakly) increasing up to noise.
    for (std::size_t i = 1; i < curve.points(); ++i)
        EXPECT_GT(curve.cycles[i], 0.55 * curve.cycles[i - 1]);
}

TEST(Mcalibrator, GradientMatchesCycles) {
    McalibratorCurve curve;
    curve.sizes = {1, 2, 4};
    curve.cycles = {2.0, 2.0, 8.0};
    const auto g = curve.gradient();
    ASSERT_EQ(g.size(), 2u);
    EXPECT_DOUBLE_EQ(g[0], 1.0);
    EXPECT_DOUBLE_EQ(g[1], 4.0);
}

TEST(Mcalibrator, RepeatsReducePlacementVariance) {
    // At a smeared size, single fresh measurements vary; the averaged
    // curve value from many repeats should be close between two runs.
    sim::zoo::SyntheticOptions options;
    options.cores = 1;
    options.l1_size = 16 * KiB;
    options.l2_size = 256 * KiB;
    options.l2_assoc = 8;
    options.page_size = 16 * KiB;  // only 2 page sets: maximal variance
    options.jitter = 0.0;
    SimPlatform platform(sim::zoo::synthetic(options));

    McalibratorOptions mc;
    mc.min_size = 256 * KiB;
    mc.max_size = 256 * KiB;
    mc.repeats = 24;
    const Cycles a = run_mcalibrator(platform, mc).cycles.front();
    const Cycles b = run_mcalibrator(platform, mc).cycles.front();
    EXPECT_NEAR(a / b, 1.0, 0.25);
}

TEST(McalibratorDeath, RejectsBadOptions) {
    SimPlatform platform(sim::zoo::dempsey());
    McalibratorOptions mc;
    mc.core = 7;  // out of range
    EXPECT_DEATH((void)run_mcalibrator(platform, mc), "");
}

}  // namespace
}  // namespace servet::core
