#include "autotune/search/strategy.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "autotune/search/config_space.hpp"
#include "autotune/search/tunable.hpp"
#include "core/measure.hpp"
#include "exec/pool.hpp"
#include "obs/metrics.hpp"
#include "platform/sim_platform.hpp"
#include "sim/zoo.hpp"

namespace servet::autotune::search {
namespace {

// ---- ConfigSpace ----

TEST(ConfigSpace, EnumerationIsOdometerOrderLastAxisFastest) {
    ConfigSpace space;
    space.add_int("x", 0, 1).add_enum("mode", {"a", "b"});
    const auto points = space.enumerate();
    ASSERT_EQ(points.size(), 4u);
    EXPECT_EQ(points[0].key(), "x=0,mode=a");
    EXPECT_EQ(points[1].key(), "x=0,mode=b");
    EXPECT_EQ(points[2].key(), "x=1,mode=a");
    EXPECT_EQ(points[3].key(), "x=1,mode=b");
}

TEST(ConfigSpace, Pow2AxisWalksPowersOfTwo) {
    ConfigSpace space;
    space.add_pow2("tile", 8, 64);
    const auto values = space.axis(0).values();
    EXPECT_EQ(values, (std::vector<std::int64_t>{8, 16, 32, 64}));
}

TEST(ConfigSpace, IntAxisHonorsStep) {
    ConfigSpace space;
    space.add_int("n", 1, 7, 3);
    EXPECT_EQ(space.axis(0).values(), (std::vector<std::int64_t>{1, 4, 7}));
}

TEST(ConfigSpace, EnumRendersLabels) {
    ConfigSpace space;
    space.add_enum("mode", {"scattered", "aggregated"});
    const auto points = space.enumerate();
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].label("mode"), "scattered");
    EXPECT_EQ(points[1].label("mode"), "aggregated");
    EXPECT_EQ(points[1].at("mode"), 1);
}

TEST(ConfigSpace, ConstraintsPruneEnumeration) {
    ConfigSpace space;
    space.add_int("a", 0, 3).add_int("b", 0, 3);
    space.add_constraint("diagonal", [](const Config& c) {
        return c.at("a") == c.at("b");
    });
    const auto points = space.enumerate();
    ASSERT_EQ(points.size(), 4u);
    for (const Config& point : points) EXPECT_EQ(point.at("a"), point.at("b"));
    EXPECT_TRUE(space.admits(space.make({2, 2})));
    EXPECT_FALSE(space.admits(space.make({2, 3})));
}

TEST(ConfigSpace, HashDistinguishesPointsAndIsStable) {
    ConfigSpace space;
    space.add_int("x", 0, 7);
    const auto points = space.enumerate();
    std::set<std::uint64_t> hashes;
    for (const Config& point : points) hashes.insert(point.hash());
    EXPECT_EQ(hashes.size(), points.size());
    EXPECT_EQ(space.make({3}).hash(), space.make({3}).hash());
}

TEST(ConfigSpace, SpaceHashCoversAxesAndConstraints) {
    ConfigSpace plain;
    plain.add_int("x", 0, 7);
    ConfigSpace wider;
    wider.add_int("x", 0, 15);
    ConfigSpace constrained;
    constrained.add_int("x", 0, 7);
    constrained.add_constraint("even", [](const Config& c) { return c.at("x") % 2 == 0; });
    EXPECT_NE(plain.space_hash(), wider.space_hash());
    EXPECT_NE(plain.space_hash(), constrained.space_hash());
}

// ---- Strategies ----

/// Analytic-only toy: cost = |x - 7|, so the unique optimum is x=7 and
/// the analytic ranking is fully informative.
class VShape final : public Tunable {
  public:
    VShape() { space_.add_int("x", 0, 15); }
    [[nodiscard]] std::string name() const override { return "toy.vshape"; }
    [[nodiscard]] const ConfigSpace& space() const override { return space_; }
    [[nodiscard]] std::optional<double> analytic_cost(const Config& config) const override {
        return std::abs(static_cast<double>(config.at("x")) - 7.0);
    }

  private:
    ConfigSpace space_;
};

/// Measurable toy on the same shape; measure() is a pure function of the
/// config so parallel and serial searches must agree bit-for-bit. The
/// analytic prior is deliberately misleading (ascending in x) to tell
/// the orderings apart.
class MeasurableVShape final : public Tunable {
  public:
    MeasurableVShape() { space_.add_int("x", 0, 15); }
    [[nodiscard]] std::string name() const override { return "toy.measured"; }
    [[nodiscard]] const ConfigSpace& space() const override { return space_; }
    [[nodiscard]] std::optional<double> analytic_cost(const Config& config) const override {
        return static_cast<double>(config.at("x"));
    }
    [[nodiscard]] bool measurable() const override { return true; }
    [[nodiscard]] double measure(const Config& config, Platform*,
                                 msg::Network*) const override {
        return std::abs(static_cast<double>(config.at("x")) - 9.0);
    }

  private:
    ConfigSpace space_;
};

TEST(Search, ExhaustiveWalksEnumerationOrderAndFindsOptimum) {
    const VShape tunable;
    const auto result = run_search(tunable, {});
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->space_size, 16u);
    EXPECT_EQ(result->evals, 16u);
    EXPECT_EQ(result->best.at("x"), 7);
    EXPECT_EQ(result->best_cost, 0.0);
    EXPECT_EQ(result->evals_to_best, 8u);  // x=7 is the 8th point
    ASSERT_EQ(result->trace.size(), 16u);
    for (std::size_t i = 0; i < result->trace.size(); ++i) {
        EXPECT_EQ(result->trace[i].order, i + 1);
        EXPECT_EQ(result->trace[i].config_key, "x=" + std::to_string(i));
        EXPECT_FALSE(result->trace[i].measured);
    }
}

TEST(Search, BudgetTruncatesAfterOrdering) {
    const VShape tunable;
    SearchOptions options;
    options.budget = 5;
    const auto result = run_search(tunable, options);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->evals, 5u);
    EXPECT_EQ(result->space_size, 16u);
    EXPECT_EQ(result->best.at("x"), 4);  // best within the first 5 points
}

TEST(Search, GuidedRanksByAnalyticCostAndHitsOptimumFirst) {
    const VShape tunable;
    SearchOptions options;
    options.strategy = Strategy::Guided;
    options.budget = 1;
    const auto result = run_search(tunable, options);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->best.at("x"), 7);
    EXPECT_EQ(result->evals_to_best, 1u);
}

TEST(Search, GuidedTieBreaksByEnumerationOrder) {
    // Every |x-7| value except 0 appears twice (7-d and 7+d); the stable
    // sort must keep the smaller x first within each tie.
    const VShape tunable;
    SearchOptions options;
    options.strategy = Strategy::Guided;
    const auto result = run_search(tunable, options);
    ASSERT_TRUE(result.has_value());
    ASSERT_EQ(result->trace.size(), 16u);
    EXPECT_EQ(result->trace[0].config_key, "x=7");
    EXPECT_EQ(result->trace[1].config_key, "x=6");
    EXPECT_EQ(result->trace[2].config_key, "x=8");
    EXPECT_EQ(result->trace[15].config_key, "x=15");
}

TEST(Search, RandomIsASeededPermutationOfTheSpace) {
    const VShape tunable;
    SearchOptions options;
    options.strategy = Strategy::Random;
    options.seed = 42;
    const auto first = run_search(tunable, options);
    const auto again = run_search(tunable, options);
    ASSERT_TRUE(first.has_value());
    ASSERT_TRUE(again.has_value());
    std::set<std::string> keys;
    for (const Evaluation& eval : first->trace) keys.insert(eval.config_key);
    EXPECT_EQ(keys.size(), 16u);  // a permutation: every point exactly once
    for (std::size_t i = 0; i < first->trace.size(); ++i)
        EXPECT_EQ(first->trace[i].config_key, again->trace[i].config_key);
    EXPECT_EQ(first->best.at("x"), 7);  // full budget always finds the optimum

    options.seed = 43;
    const auto other = run_search(tunable, options);
    ASSERT_TRUE(other.has_value());
    bool differs = false;
    for (std::size_t i = 0; i < other->trace.size(); ++i)
        differs = differs || other->trace[i].config_key != first->trace[i].config_key;
    EXPECT_TRUE(differs);
}

TEST(Search, EmptySpaceReturnsNullopt) {
    class Empty final : public Tunable {
      public:
        Empty() {
            space_.add_int("x", 0, 3);
            space_.add_constraint("never", [](const Config&) { return false; });
        }
        [[nodiscard]] std::string name() const override { return "toy.empty"; }
        [[nodiscard]] const ConfigSpace& space() const override { return space_; }
        [[nodiscard]] std::optional<double> analytic_cost(const Config&) const override {
            return 0.0;
        }

      private:
        ConfigSpace space_;
    };
    const Empty tunable;
    EXPECT_FALSE(run_search(tunable, {}).has_value());
}

TEST(Search, UnpriceablePointsRankLastUnderGuided) {
    class PartialPrior final : public Tunable {
      public:
        PartialPrior() { space_.add_int("x", 0, 3); }
        [[nodiscard]] std::string name() const override { return "toy.partial"; }
        [[nodiscard]] const ConfigSpace& space() const override { return space_; }
        [[nodiscard]] std::optional<double> analytic_cost(
            const Config& config) const override {
            if (config.at("x") < 2) return std::nullopt;
            return static_cast<double>(config.at("x"));
        }

      private:
        ConfigSpace space_;
    };
    const PartialPrior tunable;
    SearchOptions options;
    options.strategy = Strategy::Guided;
    const auto result = run_search(tunable, options);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->trace[0].config_key, "x=2");
    EXPECT_EQ(result->trace[1].config_key, "x=3");
    EXPECT_EQ(result->trace[2].config_key, "x=0");  // nullopt priors last,
    EXPECT_EQ(result->trace[3].config_key, "x=1");  // enumeration order kept
    EXPECT_FALSE(result->trace[2].prior.has_value());
}

TEST(Search, StrategyNamesRoundTrip) {
    for (const Strategy strategy : all_strategies())
        EXPECT_EQ(parse_strategy(strategy_name(strategy)), strategy);
    EXPECT_FALSE(parse_strategy("annealing").has_value());
}

TEST(Search, EvalsCounterCountsEvaluations) {
    const std::uint64_t before =
        obs::registry().stable_counters()["autotune.search.evals"];
    const VShape tunable;
    (void)run_search(tunable, {});
    const std::uint64_t after =
        obs::registry().stable_counters()["autotune.search.evals"];
    EXPECT_EQ(after - before, 16u);
}

// ---- Measured searches through the engine ----

TEST(Search, MeasuredSearchUsesMeasureAndMarksTrace) {
    SimPlatform platform(sim::zoo::dempsey());
    core::MeasureEngine engine(&platform, nullptr, nullptr, nullptr);
    const MeasurableVShape tunable;
    SearchOptions options;
    options.engine = &engine;
    const auto result = run_search(tunable, options);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->best.at("x"), 9);  // the measured optimum, not the prior's
    EXPECT_EQ(result->best_cost, 0.0);
    for (const Evaluation& eval : result->trace) {
        EXPECT_TRUE(eval.measured);
        ASSERT_TRUE(eval.prior.has_value());  // prior still recorded alongside
    }
}

TEST(Search, ParallelSearchTraceIsByteIdenticalToSerial) {
    const MeasurableVShape tunable;
    const auto run_with_pool = [&](exec::ThreadPool* pool, Strategy strategy) {
        SimPlatform platform(sim::zoo::dempsey());
        core::MeasureEngine engine(&platform, nullptr, pool, nullptr);
        SearchOptions options;
        options.strategy = strategy;
        options.engine = &engine;
        const auto result = run_search(tunable, options);
        EXPECT_TRUE(result.has_value());
        return trace_json(tunable, options, *result);
    };
    exec::ThreadPool pool(3);  // --jobs 4: caller + 3 workers
    for (const Strategy strategy : all_strategies()) {
        const std::string serial = run_with_pool(nullptr, strategy);
        const std::string parallel = run_with_pool(&pool, strategy);
        EXPECT_EQ(serial, parallel)
            << "strategy " << strategy_name(strategy) << " trace differs across jobs";
    }
}

TEST(Search, TraceJsonCarriesTheSearchShape) {
    const VShape tunable;
    SearchOptions options;
    options.strategy = Strategy::Guided;
    options.budget = 3;
    const auto result = run_search(tunable, options);
    ASSERT_TRUE(result.has_value());
    const std::string json = trace_json(tunable, options, *result);
    EXPECT_NE(json.find("\"tunable\":\"toy.vshape\""), std::string::npos);
    EXPECT_NE(json.find("\"strategy\":\"guided\""), std::string::npos);
    EXPECT_NE(json.find("\"budget\":3"), std::string::npos);
    EXPECT_NE(json.find("\"key\":\"x=7\""), std::string::npos);
    EXPECT_EQ(json.find("nan"), std::string::npos);
}

}  // namespace
}  // namespace servet::autotune::search
