// The post-paper control machine: a Nehalem-style 2-socket NUMA node.
// The suite must characterize a topology generation the paper never
// evaluated — per-socket shared L3, integrated memory controllers with
// good pairwise scalability, three comm layers — with no detector changes.
#include <gtest/gtest.h>

#include "core/suite.hpp"
#include "msg/sim_network.hpp"
#include "platform/sim_platform.hpp"
#include "sim/zoo.hpp"

namespace servet::core {
namespace {

const SuiteResult& nehalem_suite() {
    static const SuiteResult result = [] {
        const sim::MachineSpec spec = sim::zoo::nehalem2s();
        SimPlatform platform(spec);
        msg::SimNetwork network(spec);
        SuiteOptions options;
        options.mcalibrator.max_size = 24 * MiB;
        return run_suite(platform, &network, options);
    }();
    return result;
}

TEST(Nehalem, SpecValidates) {
    EXPECT_TRUE(sim::zoo::nehalem2s().validate().empty());
}

TEST(Nehalem, CacheSizesRecovered) {
    const auto& levels = nehalem_suite().cache_levels;
    ASSERT_EQ(levels.size(), 3u);
    EXPECT_EQ(levels[0].size, 32 * KiB);
    EXPECT_EQ(levels[1].size, 256 * KiB);
    EXPECT_EQ(levels[2].size, 8 * MiB);
}

TEST(Nehalem, SocketSharedL3Detected) {
    const auto& shared = nehalem_suite().shared_caches;
    ASSERT_EQ(shared.size(), 3u);
    EXPECT_TRUE(shared[0].sharing_pairs.empty());
    EXPECT_TRUE(shared[1].sharing_pairs.empty());
    ASSERT_EQ(shared[2].groups.size(), 2u);
    EXPECT_EQ(shared[2].groups[0], (std::vector<CoreId>{0, 1, 2, 3}));
    EXPECT_EQ(shared[2].groups[1], (std::vector<CoreId>{4, 5, 6, 7}));
}

TEST(Nehalem, MemoryTiersPerSocket) {
    const auto& mem = nehalem_suite().mem_overhead;
    ASSERT_EQ(mem.tiers.size(), 1u);
    // A pair on one socket keeps 80% of the solo bandwidth — far better
    // than the FSB machines (55-70%).
    EXPECT_NEAR(mem.tiers[0].bandwidth / mem.reference_bandwidth, 0.8, 0.04);
    ASSERT_EQ(mem.tiers[0].groups.size(), 2u);
    EXPECT_EQ(mem.tiers[0].groups[0], (std::vector<CoreId>{0, 1, 2, 3}));
}

TEST(Nehalem, ThreeCommLayers) {
    const auto& comm = nehalem_suite().comm;
    ASSERT_EQ(comm.layers.size(), 2u);
    // Shared-L3 pairs: 2 sockets x C(4,2) = 12; QPI pairs: 4*4 = 16.
    EXPECT_EQ(comm.layers[0].pairs.size(), 12u);
    EXPECT_EQ(comm.layers[1].pairs.size(), 16u);
    EXPECT_LT(comm.layers[0].latency, comm.layers[1].latency);
}

TEST(Nehalem, ProfileRoundTrips) {
    const sim::MachineSpec spec = sim::zoo::nehalem2s();
    const Profile profile = nehalem_suite().to_profile(spec.name, spec.n_cores,
                                                       spec.page_size);
    const auto parsed = Profile::parse(profile.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, profile);
}

}  // namespace
}  // namespace servet::core
