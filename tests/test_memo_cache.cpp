// Memo-file robustness: the cache must load only well-formed files in
// their entirety, reject every corruption mode without importing a valid
// prefix, write atomically (a crash mid-save can never leave a truncated
// memo in place), and refuse keys that would break the whitespace-
// delimited record format.
#include "exec/memo_cache.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/suite.hpp"
#include "msg/sim_network.hpp"
#include "platform/sim_platform.hpp"
#include "sim/zoo.hpp"

namespace servet::exec {
namespace {

void write_text(const std::string& path, const char* text) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(text, f);
    std::fclose(f);
}

TEST(MemoFile, TruncatedRecordIsMalformedAndLoadsNothing) {
    const std::string path = testing::TempDir() + "memo_truncated.txt";
    // First record is valid; second claims 3 values but carries 2. The
    // valid prefix must NOT be imported — a partial memo silently skews
    // which measurements replay.
    write_text(path.c_str(),
               "servet-memo 1\ngood/key 1 0x1p+0\nbad/key 3 0x1p+0 0x1p+1\n");
    MemoCache memo;
    EXPECT_EQ(memo.load_file(path), MemoLoad::Malformed);
    EXPECT_EQ(memo.size(), 0u);
    EXPECT_FALSE(memo.lookup("good/key").has_value());
    std::remove(path.c_str());
}

TEST(MemoFile, CorruptValueTokenIsMalformed) {
    const std::string path = testing::TempDir() + "memo_corrupt_value.txt";
    write_text(path.c_str(), "servet-memo 1\nk 2 0x1p+0 not-a-float\n");
    MemoCache memo;
    EXPECT_EQ(memo.load_file(path), MemoLoad::Malformed);
    EXPECT_EQ(memo.size(), 0u);
    std::remove(path.c_str());
}

TEST(MemoFile, HeaderMismatchIsMalformed) {
    const std::string path = testing::TempDir() + "memo_bad_header.txt";
    write_text(path.c_str(), "servet-memo 2\nk 1 0x1p+0\n");  // future version
    MemoCache memo;
    EXPECT_EQ(memo.load_file(path), MemoLoad::Malformed);
    EXPECT_EQ(memo.size(), 0u);
    std::remove(path.c_str());
}

TEST(MemoFile, SaveIsAtomicAndLeavesNoTempResidue) {
    const std::string path = testing::TempDir() + "memo_atomic.txt";
    MemoCache memo;
    memo.store("k", {1.25, -0.5});
    ASSERT_TRUE(memo.save_file(path));

    // The temporary sibling must have been renamed away.
    std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "r");
    EXPECT_EQ(tmp, nullptr) << "save_file left its temporary behind";
    if (tmp != nullptr) std::fclose(tmp);

    MemoCache reloaded;
    EXPECT_EQ(reloaded.load_file(path), MemoLoad::Loaded);
    EXPECT_EQ(reloaded.size(), 1u);
    std::remove(path.c_str());
}

TEST(MemoFile, SaveToUnwritablePathFails) {
    MemoCache memo;
    memo.store("k", {1.0});
    EXPECT_FALSE(memo.save_file("/nonexistent-dir/deeper/memo.txt"));
}

TEST(MemoFileDeath, KeysWithWhitespaceAreRejected) {
    // The file format is whitespace-delimited: a key with a space would
    // serialize into a record that parses back wrong (or not at all).
    MemoCache memo;
    EXPECT_DEATH(memo.store("bad key", {1.0}), "whitespace");
    EXPECT_DEATH(memo.store("bad\tkey", {1.0}), "whitespace");
}

TEST(MemoFile, SuiteMemoRoundTripsThroughDisk) {
    // Regression for the key format: every key a real suite run generates
    // must survive the save/load cycle (no whitespace, values exact).
    sim::zoo::SyntheticOptions synth;
    synth.cores = 4;
    synth.l1_size = 16 * KiB;
    synth.l2_size = 256 * KiB;
    synth.jitter = 0.01;
    const sim::MachineSpec spec = sim::zoo::synthetic(synth);
    SimPlatform platform(spec);
    msg::SimNetwork network(spec);

    core::SuiteOptions options;
    options.mcalibrator.max_size = 2 * MiB;
    options.mcalibrator.repeats = 3;
    const std::string path = testing::TempDir() + "memo_suite.txt";
    options.memo_path = path;
    const core::SuiteResult result = core::run_suite(platform, &network, options);
    EXPECT_FALSE(result.partial());

    MemoCache reloaded;
    ASSERT_EQ(reloaded.load_file(path), MemoLoad::Loaded);
    EXPECT_GT(reloaded.size(), 0u);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace servet::exec
