// End-to-end test of the installed `servet` binary: the install-time
// workflow (profile -> report -> price) executed through the real CLI.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#ifndef SERVET_TOOL_PATH
#error "SERVET_TOOL_PATH must be defined by the build"
#endif

namespace {

struct CommandResult {
    int exit_code;
    std::string output;
};

CommandResult run_tool(const std::string& args) {
    // Unique per process and per call: ctest runs each ToolCli test as its
    // own process against the same TempDir, so a shared capture file would
    // race (one test deleting another's output mid-read).
    static std::atomic<int> serial{0};
    const std::string out_path = ::testing::TempDir() + "/servet_tool_out_" +
                                 std::to_string(::getpid()) + "_" +
                                 std::to_string(serial.fetch_add(1)) + ".txt";
    const std::string command =
        std::string(SERVET_TOOL_PATH) + " " + args + " > " + out_path + " 2>&1";
    const int status = std::system(command.c_str());
    std::ifstream in(out_path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::remove(out_path.c_str());
    return {WEXITSTATUS(status), buffer.str()};
}

std::string profile_path() { return ::testing::TempDir() + "/tool_cli.profile"; }

TEST(ToolCli, NoArgsPrintsUsageAndFails) {
    const auto result = run_tool("");
    EXPECT_NE(result.exit_code, 0);
    EXPECT_NE(result.output.find("usage: servet"), std::string::npos);
}

TEST(ToolCli, MachinesListsTargets) {
    const auto result = run_tool("machines");
    EXPECT_EQ(result.exit_code, 0);
    EXPECT_NE(result.output.find("dunnington"), std::string::npos);
    EXPECT_NE(result.output.find("native"), std::string::npos);
    // The cluster zoo rides along: the 1k/4k fat-trees and the 10k dragonfly.
    EXPECT_NE(result.output.find("ft1024"), std::string::npos);
    EXPECT_NE(result.output.find("ft4096"), std::string::npos);
    EXPECT_NE(result.output.find("df10240"), std::string::npos);
}

TEST(ToolCli, ProfileReportPriceWorkflow) {
    // Dempsey is the cheapest multicore model to measure.
    const auto profile = run_tool("profile --machine dempsey --fast --out " + profile_path());
    ASSERT_EQ(profile.exit_code, 0) << profile.output;
    EXPECT_NE(profile.output.find("2 cache levels"), std::string::npos);

    const auto report = run_tool("report --profile " + profile_path());
    EXPECT_EQ(report.exit_code, 0);
    EXPECT_NE(report.output.find("16KB"), std::string::npos);
    EXPECT_NE(report.output.find("2MB"), std::string::npos);

    const auto markdown = run_tool("report --markdown --profile " + profile_path());
    EXPECT_EQ(markdown.exit_code, 0);
    EXPECT_NE(markdown.output.find("# Servet hardware report"), std::string::npos);

    const auto dot = run_tool("report --dot --profile " + profile_path());
    EXPECT_EQ(dot.exit_code, 0);
    EXPECT_NE(dot.output.find("digraph servet"), std::string::npos);

    const auto json = run_tool("report --json --profile " + profile_path());
    EXPECT_EQ(json.exit_code, 0);
    EXPECT_NE(json.output.find("\"machine\""), std::string::npos);

    const auto price = run_tool("price --profile " + profile_path() +
                                " --from 0 --to 1 --size 64KB");
    EXPECT_EQ(price.exit_code, 0);
    EXPECT_NE(price.output.find("(0,1) 64KB one-way"), std::string::npos);

    std::remove(profile_path().c_str());
}

TEST(ToolCli, ProfileExportsTraceAndMetrics) {
    const std::string trace_path = ::testing::TempDir() + "/tool_cli_trace.json";
    const std::string metrics_path = ::testing::TempDir() + "/tool_cli_metrics.json";
    const auto profile = run_tool("profile --machine dempsey --fast --profile-counters"
                                  " --out " + profile_path() +
                                  " --trace " + trace_path +
                                  " --metrics " + metrics_path);
    ASSERT_EQ(profile.exit_code, 0) << profile.output;
    EXPECT_NE(profile.output.find("trace written to"), std::string::npos);
    EXPECT_NE(profile.output.find("metrics written to"), std::string::npos);

    std::ifstream trace_in(trace_path);
    std::stringstream trace;
    trace << trace_in.rdbuf();
    EXPECT_NE(trace.str().find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(trace.str().find("suite/run"), std::string::npos);

    std::ifstream metrics_in(metrics_path);
    std::stringstream metrics;
    metrics << metrics_in.rdbuf();
    EXPECT_NE(metrics.str().find("\"deterministic\""), std::string::npos);
    EXPECT_NE(metrics.str().find("exec.tasks.run"), std::string::npos);

    // --profile-counters embeds the deterministic block in the profile.
    std::ifstream profile_in(profile_path());
    std::stringstream stored;
    stored << profile_in.rdbuf();
    EXPECT_NE(stored.str().find("[counters]"), std::string::npos);

    std::remove(trace_path.c_str());
    std::remove(metrics_path.c_str());
    std::remove(profile_path().c_str());
}

TEST(ToolCli, MetricsSubcommandPrintsSummaryTable) {
    const auto result = run_tool("metrics --machine dempsey --fast");
    EXPECT_EQ(result.exit_code, 0) << result.output;
    EXPECT_NE(result.output.find("metric"), std::string::npos);
    EXPECT_NE(result.output.find("exec.tasks.run"), std::string::npos);
    EXPECT_NE(result.output.find("stable"), std::string::npos);
}

TEST(ToolCli, InjectedPhaseFailureYieldsPartialProfileAndExitCode3) {
    // throw=1 makes every platform probe throw, so the platform-side
    // phases fail; the comm phase measures through the network and still
    // completes. The tool must write the partial profile, name the failed
    // phases, and exit with the documented partial-success code.
    const std::string path = ::testing::TempDir() + "/tool_cli_partial.profile";
    const auto result =
        run_tool("profile --machine dempsey --fast --faults throw=1,seed=1 --out " + path);
    EXPECT_EQ(result.exit_code, 3) << result.output;
    EXPECT_NE(result.output.find("phase"), std::string::npos);
    EXPECT_NE(result.output.find("failed"), std::string::npos);

    std::ifstream in(path);
    std::stringstream stored;
    stored << in.rdbuf();
    EXPECT_NE(stored.str().find("[errors]"), std::string::npos);
    EXPECT_NE(stored.str().find("cache_size"), std::string::npos);
    std::remove(path.c_str());
}

TEST(ToolCli, FaultsWithRobustSamplingStillSucceed) {
    // Survivable fault rates through the adaptive sampler: exit 0 and a
    // complete profile, faults notwithstanding.
    const std::string path = ::testing::TempDir() + "/tool_cli_faulty.profile";
    const auto result = run_tool(
        "profile --machine dempsey --fast --jobs 4 --robust 3 --robust-max 9"
        " --faults spike=0.05,factor=8,nan=0.02,seed=1337 --out " + path);
    EXPECT_EQ(result.exit_code, 0) << result.output;

    std::ifstream in(path);
    std::stringstream stored;
    stored << in.rdbuf();
    EXPECT_EQ(stored.str().find("[errors]"), std::string::npos);
    EXPECT_NE(stored.str().find("[cache 0]"), std::string::npos);
    std::remove(path.c_str());
}

/// Writes `text` to a TempDir platform file and returns its path.
std::string write_platform(const std::string& name, const std::string& text) {
    const std::string path = ::testing::TempDir() + "/" + name;
    std::ofstream out(path, std::ios::trunc);
    out << text;
    return path;
}

TEST(ToolCli, ClusterPlatformProfileWorkflow) {
    // Smallest interesting cluster so the end-to-end run stays cheap: a
    // 2-level arity-2 fat-tree of 4 dual-core nodes (8 ranks).
    const std::string platform = write_platform(
        "tool_cli_ft.platform",
        "servet-platform 1\n"
        "name = ft-file\n"
        "cores_per_node = 2\n"
        "[topology]\n"
        "kind = fat-tree\n"
        "arity = 2\n"
        "levels = 2\n"
        "[tier 0]\n"
        "name = edge\n"
        "hop_latency = 2.5e-6\n"
        "bandwidth = 1.2e9\n"
        "congestion = 0.35\n"
        "[tier 1]\n"
        "name = core\n"
        "hop_latency = 5.0e-6\n"
        "bandwidth = 0.8e9\n"
        "congestion = 0.45\n");
    const std::string path = ::testing::TempDir() + "/tool_cli_cluster.profile";

    const auto profile = run_tool("profile --platform " + platform + " --out " + path);
    ASSERT_EQ(profile.exit_code, 0) << profile.output;
    EXPECT_NE(profile.output.find("ft-file"), std::string::npos);

    const auto report = run_tool("report --profile " + path);
    EXPECT_EQ(report.exit_code, 0) << report.output;
    EXPECT_NE(report.output.find("cluster topology: fat-tree"), std::string::npos);
    EXPECT_NE(report.output.find("edge"), std::string::npos);

    // (1,6) spans nodes 0 and 3 and is not in the sampled probe set; the
    // profile prices it through the topology fallback anyway.
    const auto price = run_tool("price --profile " + path +
                                " --from 1 --to 6 --size 64KB");
    EXPECT_EQ(price.exit_code, 0) << price.output;
    EXPECT_NE(price.output.find("(1,6) 64KB one-way"), std::string::npos);

    const auto validate = run_tool("validate --profile " + path);
    EXPECT_EQ(validate.exit_code, 0) << validate.output;

    std::remove(platform.c_str());
    std::remove(path.c_str());
}

TEST(ToolCli, MalformedPlatformFileExitsTwoWithStableCode) {
    const std::string platform = write_platform(
        "tool_cli_bad.platform",
        "servet-platform 1\n"
        "[topology]\n"
        "kind = fat-tree\n"
        "arity = 3\n"
        "levels = 1\n"
        "[tier 0]\n"
        "name = edge\n");
    const auto result = run_tool("profile --platform " + platform);
    EXPECT_EQ(result.exit_code, 2) << result.output;
    EXPECT_NE(result.output.find("platform.fattree.arity"), std::string::npos);
    std::remove(platform.c_str());
}

TEST(ToolCli, MissingPlatformFileExitsTwo) {
    const auto result = run_tool("profile --platform /nonexistent.platform");
    EXPECT_EQ(result.exit_code, 2);
    EXPECT_NE(result.output.find("platform.io"), std::string::npos);
}

TEST(ToolCli, MalformedFaultSpecFails) {
    const auto result = run_tool("profile --machine dempsey --fast --faults bogus=1");
    EXPECT_NE(result.exit_code, 0);
    EXPECT_NE(result.output.find("fault"), std::string::npos);
}

TEST(ToolCli, UnknownMachineFails) {
    const auto result = run_tool("profile --machine bogus");
    EXPECT_NE(result.exit_code, 0);
    EXPECT_NE(result.output.find("unknown machine"), std::string::npos);
}

TEST(ToolCli, MissingProfileFails) {
    const auto result = run_tool("report --profile /nonexistent.profile");
    EXPECT_NE(result.exit_code, 0);
}

TEST(ToolCli, MetricsStableOnlyOmitsVolatileRows) {
    const std::string path = ::testing::TempDir() + "/tool_cli_stable_only.json";
    const auto result =
        run_tool("metrics --machine dempsey --fast --stable-only --out " + path);
    EXPECT_EQ(result.exit_code, 0) << result.output;
    EXPECT_NE(result.output.find("exec.tasks.run"), std::string::npos);
    EXPECT_EQ(result.output.find("volatile"), std::string::npos);

    std::ifstream in(path);
    std::stringstream stored;
    stored << in.rdbuf();
    EXPECT_NE(stored.str().find("\"deterministic\""), std::string::npos);
    EXPECT_EQ(stored.str().find("\"volatile\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(ToolCli, ProfileExportFailureExitsFiveButStillWritesTheProfile) {
    // A directory as the metrics target makes the export unwritable; the
    // measurement itself succeeded, so the profile must still land and the
    // exit code must name the export failure, distinct from 2 and 3.
    const std::string path = ::testing::TempDir() + "/tool_cli_export_fail.profile";
    const auto result = run_tool("profile --machine dempsey --fast --out " + path +
                                 " --metrics " + ::testing::TempDir());
    EXPECT_EQ(result.exit_code, 5) << result.output;
    EXPECT_NE(result.output.find("cannot write"), std::string::npos);

    std::ifstream in(path);
    std::stringstream stored;
    stored << in.rdbuf();
    EXPECT_NE(stored.str().find("[cache 0]"), std::string::npos);
    std::remove(path.c_str());
}

TEST(ToolCli, WatchStableSeriesExitsZeroWithDriftNone) {
    const std::string run_dir = ::testing::TempDir() + "/tool_cli_watch_stable_" +
                                std::to_string(::getpid());
    const auto result = run_tool("watch --machine dempsey --fast --jobs 4 --run-dir " +
                                 run_dir + " --ticks 5");
    EXPECT_EQ(result.exit_code, 0) << result.output;
    EXPECT_NE(result.output.find("drift.none"), std::string::npos);
    EXPECT_EQ(result.output.find("drift.confirmed"), std::string::npos);
    EXPECT_NE(result.output.find("5 tick(s) measured"), std::string::npos);

    // A second invocation replays the committed series and stays stable.
    const auto resumed = run_tool("watch --machine dempsey --fast --jobs 4 --run-dir " +
                                  run_dir + " --ticks 1");
    EXPECT_EQ(resumed.exit_code, 0) << resumed.output;
    EXPECT_NE(resumed.output.find("5 replayed"), std::string::npos);

    // --ticks 0 is replay-only: re-judge the committed series without
    // measuring a new sample.
    const auto replayed = run_tool("watch --machine dempsey --fast --run-dir " +
                                   run_dir + " --ticks 0");
    EXPECT_EQ(replayed.exit_code, 0) << replayed.output;
    EXPECT_NE(replayed.output.find("0 tick(s) measured, 6 replayed"), std::string::npos);
}

TEST(ToolCli, WatchPerturbedSeriesConfirmsDriftAndExitsFour) {
    const std::string run_dir = ::testing::TempDir() + "/tool_cli_watch_drift_" +
                                std::to_string(::getpid());
    const auto result = run_tool(
        "watch --machine dempsey --fast --jobs 4 --run-dir " + run_dir +
        " --ticks 5 --perturb-tick 3 --faults spike=1,factor=4,delay=1,delay_factor=4,seed=1");
    EXPECT_EQ(result.exit_code, 4) << result.output;
    EXPECT_NE(result.output.find("drift.confirmed"), std::string::npos);
    EXPECT_NE(result.output.find("worst verdict drift.confirmed"), std::string::npos);
}

TEST(ToolCli, ValidateAgainstBaselineGradesDrift) {
    const std::string base = ::testing::TempDir() + "/tool_cli_against_base.profile";
    const std::string same = ::testing::TempDir() + "/tool_cli_against_same.profile";
    ASSERT_EQ(run_tool("profile --machine dempsey --fast --out " + base).exit_code, 0);
    ASSERT_EQ(run_tool("profile --machine dempsey --fast --out " + same).exit_code, 0);

    // Identical measurements: every metric in band, exit 0.
    const auto clean = run_tool("validate --profile " + same + " --against " + base);
    EXPECT_EQ(clean.exit_code, 0) << clean.output;
    EXPECT_NE(clean.output.find("drift.none"), std::string::npos);

    // A spiked re-measurement shifts the memory bandwidths far out of the
    // baseline band: confirmed drift, the dedicated exit code.
    const std::string drifted = ::testing::TempDir() + "/tool_cli_against_drift.profile";
    ASSERT_EQ(run_tool("profile --machine dempsey --fast --faults spike=1,factor=4,seed=1"
                       " --out " + drifted).exit_code, 0);
    const auto result = run_tool("validate --profile " + drifted + " --against " + base);
    EXPECT_EQ(result.exit_code, 4) << result.output;
    EXPECT_NE(result.output.find("drift.confirmed"), std::string::npos);

    std::remove(base.c_str());
    std::remove(same.c_str());
    std::remove(drifted.c_str());
}

/// One request on a fresh loopback connection, read to EOF.
std::string serve_round_trip(int port, const std::string& request) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return "";
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
        ::close(fd);
        return "";
    }
    std::size_t sent = 0;
    while (sent < request.size()) {
        const ssize_t n =
            ::send(fd, request.data() + sent, request.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) break;
        sent += static_cast<std::size_t>(n);
    }
    std::string response;
    char chunk[8192];
    while (true) {
        const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n <= 0) break;
        response.append(chunk, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return response;
}

TEST(ToolCli, ServeUploadFetchSigterm) {
    // The full daemon lifecycle: fork/exec `servet serve` on an ephemeral
    // port, drive the protocol over raw sockets, SIGTERM, expect exit 0.
    const std::string dir = ::testing::TempDir() + "/tool_cli_serve_" +
                            std::to_string(::getpid());
    const std::string port_file = dir + "/port";
    const std::string store_dir = dir + "/store";
    ASSERT_EQ(run_tool("profile --machine athlon3200 --fast --no-timing --out " + dir +
                       "/golden.profile").exit_code, 0);
    std::string body;
    {
        std::ifstream in(dir + "/golden.profile");
        std::stringstream buffer;
        buffer << in.rdbuf();
        body = buffer.str();
    }
    ASSERT_FALSE(body.empty());

    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        ::execl(SERVET_TOOL_PATH, SERVET_TOOL_PATH, "serve", "--port", "0",
                "--store-dir", store_dir.c_str(), "--port-file", port_file.c_str(),
                static_cast<char*>(nullptr));
        _exit(127);  // exec failed
    }

    int port = 0;
    for (int attempt = 0; attempt < 100 && port == 0; ++attempt) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        std::ifstream in(port_file);
        in >> port;
    }
    ASSERT_GT(port, 0) << "daemon never wrote the port file";

    const std::string fp = "00000000deadbeef";
    const std::string opts = "0123456789abcdef";
    const std::string put = serve_round_trip(
        port, "PUT /v1/profile/" + fp + "/" + opts + " HTTP/1.1\r\ncontent-length: " +
                  std::to_string(body.size()) + "\r\nconnection: close\r\n\r\n" + body);
    EXPECT_EQ(put.compare(0, 12, "HTTP/1.1 201"), 0) << put;

    const std::string get = serve_round_trip(
        port, "GET /v1/profile/" + fp + " HTTP/1.1\r\nconnection: close\r\n\r\n");
    EXPECT_EQ(get.compare(0, 12, "HTTP/1.1 200"), 0) << get;
    const std::size_t head_end = get.find("\r\n\r\n");
    ASSERT_NE(head_end, std::string::npos);
    EXPECT_EQ(get.substr(head_end + 4), body);  // byte-identical round trip

    const std::string revalidated = serve_round_trip(
        port, "GET /v1/profile/" + fp + " HTTP/1.1\r\nif-none-match: \"" + opts +
                  "\"\r\nconnection: close\r\n\r\n");
    EXPECT_EQ(revalidated.compare(0, 12, "HTTP/1.1 304"), 0) << revalidated;

    const std::string malformed = serve_round_trip(port, "NOT-HTTP\r\n\r\n");
    EXPECT_EQ(malformed.compare(0, 12, "HTTP/1.1 400"), 0) << malformed;

    ASSERT_EQ(::kill(pid, SIGTERM), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status)) << "daemon did not exit cleanly on SIGTERM";
    EXPECT_EQ(WEXITSTATUS(status), 0);
}

std::string read_whole_file(const std::string& path) {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

TEST(ToolCli, TuneSearchesEveryStrategyAndWritesTheTrace) {
    // One measured-in-advance profile shared by all invocations so each
    // tune run skips the in-process suite.
    const std::string dir = ::testing::TempDir() + "/tool_cli_tune_" +
                            std::to_string(::getpid());
    const std::string profile = dir + "/dempsey.profile";
    ASSERT_EQ(run_tool("profile --machine dempsey --fast --no-timing --out " + profile)
                  .exit_code, 0);

    for (const std::string strategy : {"exhaustive", "random", "guided"}) {
        const std::string trace = dir + "/trace_" + strategy + ".json";
        const auto result =
            run_tool("tune --machine dempsey --kernel transpose --strategy " + strategy +
                     " --profile " + profile + " --trace " + trace);
        EXPECT_EQ(result.exit_code, 0) << result.output;
        EXPECT_NE(result.output.find("tune: transpose"), std::string::npos);
        EXPECT_NE(result.output.find("best block="), std::string::npos);
        const std::string json = read_whole_file(trace);
        EXPECT_EQ(json.compare(0, 1, "{"), 0);
        EXPECT_NE(json.find("\"tunable\":\"transpose\""), std::string::npos);
        EXPECT_NE(json.find("\"strategy\":\"" + strategy + "\""), std::string::npos);
        EXPECT_NE(json.find("\"measured\":true"), std::string::npos);
        std::remove(trace.c_str());
    }
    std::remove(profile.c_str());
}

TEST(ToolCli, TuneTraceIsByteIdenticalAcrossJobs) {
    const std::string dir = ::testing::TempDir() + "/tool_cli_tune_jobs_" +
                            std::to_string(::getpid());
    const std::string profile = dir + "/dempsey.profile";
    ASSERT_EQ(run_tool("profile --machine dempsey --fast --no-timing --out " + profile)
                  .exit_code, 0);
    const std::string serial_trace = dir + "/serial.json";
    const std::string parallel_trace = dir + "/parallel.json";
    ASSERT_EQ(run_tool("tune --machine dempsey --kernel stencil --strategy guided "
                       "--budget 9 --jobs 1 --profile " + profile + " --trace " +
                       serial_trace).exit_code, 0);
    ASSERT_EQ(run_tool("tune --machine dempsey --kernel stencil --strategy guided "
                       "--budget 9 --jobs 4 --profile " + profile + " --trace " +
                       parallel_trace).exit_code, 0);
    const std::string serial = read_whole_file(serial_trace);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, read_whole_file(parallel_trace));
    std::remove(serial_trace.c_str());
    std::remove(parallel_trace.c_str());
    std::remove(profile.c_str());
}

TEST(ToolCli, TuneRejectsInvalidInvocationsWithExitTwo) {
    EXPECT_EQ(run_tool("tune --kernel fft").exit_code, 2);
    EXPECT_EQ(run_tool("tune --strategy annealing").exit_code, 2);
    EXPECT_EQ(run_tool("tune --machine not-a-machine").exit_code, 2);
    EXPECT_EQ(run_tool("tune --budget -3").exit_code, 2);
    EXPECT_EQ(run_tool("tune --jobs 0").exit_code, 2);
}

TEST(ToolCli, FetchConditionalGetAgainstLiveDaemon) {
    const std::string dir = ::testing::TempDir() + "/tool_cli_fetch_" +
                            std::to_string(::getpid());
    const std::string port_file = dir + "/port";
    const std::string store_dir = dir + "/store";
    const std::string out = dir + "/fetched.profile";
    ASSERT_EQ(run_tool("profile --machine athlon3200 --fast --no-timing --out " + dir +
                       "/golden.profile").exit_code, 0);
    const std::string body = read_whole_file(dir + "/golden.profile");
    ASSERT_FALSE(body.empty());

    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        ::execl(SERVET_TOOL_PATH, SERVET_TOOL_PATH, "serve", "--port", "0",
                "--store-dir", store_dir.c_str(), "--port-file", port_file.c_str(),
                static_cast<char*>(nullptr));
        _exit(127);  // exec failed
    }
    int port = 0;
    for (int attempt = 0; attempt < 100 && port == 0; ++attempt) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        std::ifstream in(port_file);
        in >> port;
    }
    ASSERT_GT(port, 0) << "daemon never wrote the port file";

    const std::string fp = "00000000deadbeef";
    const std::string opts = "0123456789abcdef";
    const std::string put = serve_round_trip(
        port, "PUT /v1/profile/" + fp + "/" + opts + " HTTP/1.1\r\ncontent-length: " +
                  std::to_string(body.size()) + "\r\nconnection: close\r\n\r\n" + body);
    ASSERT_EQ(put.compare(0, 12, "HTTP/1.1 201"), 0) << put;

    // Cold fetch: 200, body saved verbatim, ETag sidecar stored.
    const std::string fetch_args = "fetch --port " + std::to_string(port) +
                                   " --fingerprint " + fp + " --options " + opts +
                                   " --out " + out;
    const auto cold = run_tool(fetch_args);
    EXPECT_EQ(cold.exit_code, 0) << cold.output;
    EXPECT_NE(cold.output.find("wrote"), std::string::npos);
    EXPECT_EQ(read_whole_file(out), body);
    EXPECT_EQ(read_whole_file(out + ".etag"), opts + "\n");

    // Warm fetch: the stored ETag rides If-None-Match, the server answers
    // 304, and the on-disk profile is left alone.
    const auto warm = run_tool(fetch_args);
    EXPECT_EQ(warm.exit_code, 0) << warm.output;
    EXPECT_NE(warm.output.find("current"), std::string::npos);
    EXPECT_EQ(read_whole_file(out), body);

    // Unknown fingerprint: a clean HTTP-level failure, exit 1.
    const auto missing = run_tool("fetch --port " + std::to_string(port) +
                                  " --fingerprint 00000000ffffffff --out " + dir +
                                  "/missing.profile");
    EXPECT_EQ(missing.exit_code, 1);
    EXPECT_NE(missing.output.find("404"), std::string::npos);

    ASSERT_EQ(::kill(pid, SIGTERM), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(ToolCli, FetchRejectsInvalidInvocationsWithExitTwo) {
    EXPECT_EQ(run_tool("fetch --fingerprint 00000000deadbeef").exit_code, 2);  // no port
    EXPECT_EQ(run_tool("fetch --port 99999 --fingerprint f").exit_code, 2);
    EXPECT_EQ(run_tool("fetch --port 8080").exit_code, 2);  // no fingerprint
}

TEST(ToolCli, UnknownCommandFails) {
    const auto result = run_tool("frobnicate");
    EXPECT_NE(result.exit_code, 0);
    EXPECT_NE(result.output.find("usage"), std::string::npos);
}

}  // namespace
