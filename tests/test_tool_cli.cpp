// End-to-end test of the installed `servet` binary: the install-time
// workflow (profile -> report -> price) executed through the real CLI.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#ifndef SERVET_TOOL_PATH
#error "SERVET_TOOL_PATH must be defined by the build"
#endif

namespace {

struct CommandResult {
    int exit_code;
    std::string output;
};

CommandResult run_tool(const std::string& args) {
    // Unique per process and per call: ctest runs each ToolCli test as its
    // own process against the same TempDir, so a shared capture file would
    // race (one test deleting another's output mid-read).
    static std::atomic<int> serial{0};
    const std::string out_path = ::testing::TempDir() + "/servet_tool_out_" +
                                 std::to_string(::getpid()) + "_" +
                                 std::to_string(serial.fetch_add(1)) + ".txt";
    const std::string command =
        std::string(SERVET_TOOL_PATH) + " " + args + " > " + out_path + " 2>&1";
    const int status = std::system(command.c_str());
    std::ifstream in(out_path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::remove(out_path.c_str());
    return {WEXITSTATUS(status), buffer.str()};
}

std::string profile_path() { return ::testing::TempDir() + "/tool_cli.profile"; }

TEST(ToolCli, NoArgsPrintsUsageAndFails) {
    const auto result = run_tool("");
    EXPECT_NE(result.exit_code, 0);
    EXPECT_NE(result.output.find("usage: servet"), std::string::npos);
}

TEST(ToolCli, MachinesListsTargets) {
    const auto result = run_tool("machines");
    EXPECT_EQ(result.exit_code, 0);
    EXPECT_NE(result.output.find("dunnington"), std::string::npos);
    EXPECT_NE(result.output.find("native"), std::string::npos);
}

TEST(ToolCli, ProfileReportPriceWorkflow) {
    // Dempsey is the cheapest multicore model to measure.
    const auto profile = run_tool("profile --machine dempsey --fast --out " + profile_path());
    ASSERT_EQ(profile.exit_code, 0) << profile.output;
    EXPECT_NE(profile.output.find("2 cache levels"), std::string::npos);

    const auto report = run_tool("report --profile " + profile_path());
    EXPECT_EQ(report.exit_code, 0);
    EXPECT_NE(report.output.find("16KB"), std::string::npos);
    EXPECT_NE(report.output.find("2MB"), std::string::npos);

    const auto markdown = run_tool("report --markdown --profile " + profile_path());
    EXPECT_EQ(markdown.exit_code, 0);
    EXPECT_NE(markdown.output.find("# Servet hardware report"), std::string::npos);

    const auto dot = run_tool("report --dot --profile " + profile_path());
    EXPECT_EQ(dot.exit_code, 0);
    EXPECT_NE(dot.output.find("digraph servet"), std::string::npos);

    const auto json = run_tool("report --json --profile " + profile_path());
    EXPECT_EQ(json.exit_code, 0);
    EXPECT_NE(json.output.find("\"machine\""), std::string::npos);

    const auto price = run_tool("price --profile " + profile_path() +
                                " --from 0 --to 1 --size 64KB");
    EXPECT_EQ(price.exit_code, 0);
    EXPECT_NE(price.output.find("(0,1) 64KB one-way"), std::string::npos);

    std::remove(profile_path().c_str());
}

TEST(ToolCli, ProfileExportsTraceAndMetrics) {
    const std::string trace_path = ::testing::TempDir() + "/tool_cli_trace.json";
    const std::string metrics_path = ::testing::TempDir() + "/tool_cli_metrics.json";
    const auto profile = run_tool("profile --machine dempsey --fast --profile-counters"
                                  " --out " + profile_path() +
                                  " --trace " + trace_path +
                                  " --metrics " + metrics_path);
    ASSERT_EQ(profile.exit_code, 0) << profile.output;
    EXPECT_NE(profile.output.find("trace written to"), std::string::npos);
    EXPECT_NE(profile.output.find("metrics written to"), std::string::npos);

    std::ifstream trace_in(trace_path);
    std::stringstream trace;
    trace << trace_in.rdbuf();
    EXPECT_NE(trace.str().find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(trace.str().find("suite/run"), std::string::npos);

    std::ifstream metrics_in(metrics_path);
    std::stringstream metrics;
    metrics << metrics_in.rdbuf();
    EXPECT_NE(metrics.str().find("\"deterministic\""), std::string::npos);
    EXPECT_NE(metrics.str().find("exec.tasks.run"), std::string::npos);

    // --profile-counters embeds the deterministic block in the profile.
    std::ifstream profile_in(profile_path());
    std::stringstream stored;
    stored << profile_in.rdbuf();
    EXPECT_NE(stored.str().find("[counters]"), std::string::npos);

    std::remove(trace_path.c_str());
    std::remove(metrics_path.c_str());
    std::remove(profile_path().c_str());
}

TEST(ToolCli, MetricsSubcommandPrintsSummaryTable) {
    const auto result = run_tool("metrics --machine dempsey --fast");
    EXPECT_EQ(result.exit_code, 0) << result.output;
    EXPECT_NE(result.output.find("metric"), std::string::npos);
    EXPECT_NE(result.output.find("exec.tasks.run"), std::string::npos);
    EXPECT_NE(result.output.find("stable"), std::string::npos);
}

TEST(ToolCli, InjectedPhaseFailureYieldsPartialProfileAndExitCode3) {
    // throw=1 makes every platform probe throw, so the platform-side
    // phases fail; the comm phase measures through the network and still
    // completes. The tool must write the partial profile, name the failed
    // phases, and exit with the documented partial-success code.
    const std::string path = ::testing::TempDir() + "/tool_cli_partial.profile";
    const auto result =
        run_tool("profile --machine dempsey --fast --faults throw=1,seed=1 --out " + path);
    EXPECT_EQ(result.exit_code, 3) << result.output;
    EXPECT_NE(result.output.find("phase"), std::string::npos);
    EXPECT_NE(result.output.find("failed"), std::string::npos);

    std::ifstream in(path);
    std::stringstream stored;
    stored << in.rdbuf();
    EXPECT_NE(stored.str().find("[errors]"), std::string::npos);
    EXPECT_NE(stored.str().find("cache_size"), std::string::npos);
    std::remove(path.c_str());
}

TEST(ToolCli, FaultsWithRobustSamplingStillSucceed) {
    // Survivable fault rates through the adaptive sampler: exit 0 and a
    // complete profile, faults notwithstanding.
    const std::string path = ::testing::TempDir() + "/tool_cli_faulty.profile";
    const auto result = run_tool(
        "profile --machine dempsey --fast --jobs 4 --robust 3 --robust-max 9"
        " --faults spike=0.05,factor=8,nan=0.02,seed=1337 --out " + path);
    EXPECT_EQ(result.exit_code, 0) << result.output;

    std::ifstream in(path);
    std::stringstream stored;
    stored << in.rdbuf();
    EXPECT_EQ(stored.str().find("[errors]"), std::string::npos);
    EXPECT_NE(stored.str().find("[cache 0]"), std::string::npos);
    std::remove(path.c_str());
}

TEST(ToolCli, MalformedFaultSpecFails) {
    const auto result = run_tool("profile --machine dempsey --fast --faults bogus=1");
    EXPECT_NE(result.exit_code, 0);
    EXPECT_NE(result.output.find("fault"), std::string::npos);
}

TEST(ToolCli, UnknownMachineFails) {
    const auto result = run_tool("profile --machine bogus");
    EXPECT_NE(result.exit_code, 0);
    EXPECT_NE(result.output.find("unknown machine"), std::string::npos);
}

TEST(ToolCli, MissingProfileFails) {
    const auto result = run_tool("report --profile /nonexistent.profile");
    EXPECT_NE(result.exit_code, 0);
}

TEST(ToolCli, UnknownCommandFails) {
    const auto result = run_tool("frobnicate");
    EXPECT_NE(result.exit_code, 0);
    EXPECT_NE(result.output.find("usage"), std::string::npos);
}

}  // namespace
