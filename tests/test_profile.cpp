#include "core/profile.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

namespace servet::core {
namespace {

Profile rich_profile() {
    Profile profile;
    profile.machine = "sim:dunnington";
    profile.cores = 24;
    profile.page_size = 4096;

    ProfileCacheLevel l1{32 * KiB, "peak", {}};
    ProfileCacheLevel l2{3 * MiB, "probabilistic", {{0, 12}, {1, 13}}};
    ProfileCacheLevel l3{12 * MiB, "probabilistic", {{0, 1, 2, 12, 13, 14}}};
    profile.caches = {l1, l2, l3};

    profile.memory.reference_bandwidth = 3.5e9;
    ProfileMemoryTier tier;
    tier.bandwidth = 2.45e9;
    tier.groups = {{0, 1, 2}, {3, 4, 5}};
    tier.scalability = {3.5e9, 2.45e9, 1.63e9};
    profile.memory.tiers = {tier};

    ProfileCommLayer fast;
    fast.latency = 7.1e-7;
    fast.pairs = {{0, 12}, {1, 13}};
    fast.p2p = {{1024, 1.0e-6}, {4096, 2.2e-6}, {16384, 6.0e-6}};
    fast.slowdown = {1.0, 1.08, 1.15};
    ProfileCommLayer slow;
    slow.latency = 2.2e-6;
    slow.pairs = {{0, 1}, {0, 3}};
    slow.p2p = {{1024, 3.0e-6}, {16384, 1.2e-5}};
    slow.slowdown = {1.0, 1.4};
    profile.comm = {fast, slow};

    profile.phase_seconds = {{"cache_size", 120.0}, {"comm_costs", 1320.0}};
    return profile;
}

TEST(ProfileSerialization, RoundTripsExactly) {
    const Profile original = rich_profile();
    const auto parsed = Profile::parse(original.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, original);
}

TEST(ProfileSerialization, EmptyProfileRoundTrips) {
    Profile empty;
    empty.machine = "nothing";
    const auto parsed = Profile::parse(empty.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, empty);
}

TEST(ProfileSerialization, SaveAndLoadFile) {
    const Profile original = rich_profile();
    const std::string path = ::testing::TempDir() + "/servet_test.profile";
    ASSERT_TRUE(original.save(path));
    const auto loaded = Profile::load(path);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(*loaded, original);
    std::remove(path.c_str());
}

TEST(ProfileSerialization, LoadMissingFileFails) {
    EXPECT_FALSE(Profile::load("/nonexistent/servet.profile").has_value());
}

class ProfileParseRejects : public ::testing::TestWithParam<const char*> {};

TEST_P(ProfileParseRejects, MalformedInput) {
    EXPECT_FALSE(Profile::parse(GetParam()).has_value());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ProfileParseRejects,
    ::testing::Values("", "not-a-profile", "servet-profile 1\nbogus_key = 3",
                      "servet-profile 1\n[unknown section]\n",
                      "servet-profile 1\ncores = many",
                      "servet-profile 1\n[cache 0]\nsize = -5",
                      "servet-profile 1\n[cache 0]\ngroups = 1,,2",
                      "servet-profile 1\n[comm-layer 0]\npairs = 1+2",
                      "servet-profile 1\n[comm-layer 0]\np2p = 1024",
                      "servet-profile 1\n[memory]\nreference = fast",
                      "servet-profile 1\nmachine"));

TEST(ProfileParse, ToleratesCommentsAndBlankLines) {
    const std::string text =
        "servet-profile 1\n# a comment\n\nmachine = box\ncores = 2\npage_size = 4096\n";
    const auto parsed = Profile::parse(text);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->machine, "box");
    EXPECT_EQ(parsed->cores, 2);
}

TEST(ProfileQueries, CacheSizes) {
    const Profile profile = rich_profile();
    EXPECT_EQ(profile.cache_size(0), 32 * KiB);
    EXPECT_EQ(profile.cache_size(2), 12 * MiB);
    EXPECT_FALSE(profile.cache_size(3).has_value());
    EXPECT_EQ(profile.last_level_cache(), 12 * MiB);
    EXPECT_FALSE(Profile{}.last_level_cache().has_value());
}

TEST(ProfileQueries, SharesCache) {
    const Profile profile = rich_profile();
    EXPECT_TRUE(profile.shares_cache(1, {0, 12}));
    EXPECT_TRUE(profile.shares_cache(1, {12, 0}));
    EXPECT_FALSE(profile.shares_cache(1, {0, 1}));
    EXPECT_TRUE(profile.shares_cache(2, {1, 14}));
    EXPECT_FALSE(profile.shares_cache(0, {0, 12}));  // L1 private
    EXPECT_FALSE(profile.shares_cache(9, {0, 12}));  // no such level
}

TEST(ProfileQueries, CommLayerLookup) {
    const Profile profile = rich_profile();
    EXPECT_EQ(profile.comm_layer_of({0, 12}), 0);
    EXPECT_EQ(profile.comm_layer_of({3, 0}), 1);
    EXPECT_EQ(profile.comm_layer_of({5, 9}), -1);
}

TEST(ProfileQueries, CommLatencyInterpolation) {
    const Profile profile = rich_profile();
    // Midpoint of (1024, 1.0us) and (4096, 2.2us).
    const auto mid = profile.comm_latency({0, 12}, 2560);
    ASSERT_TRUE(mid.has_value());
    EXPECT_NEAR(*mid, 1.6e-6, 1e-9);
    // Exact sweep point.
    EXPECT_NEAR(profile.comm_latency({0, 12}, 4096).value(), 2.2e-6, 1e-12);
    // Above the sweep: linear in the last segment's bandwidth.
    const auto big = profile.comm_latency({0, 12}, 32768).value();
    EXPECT_GT(big, 6.0e-6);
    // Unknown pair.
    EXPECT_FALSE(profile.comm_latency({5, 9}, 1024).has_value());
}

TEST(ProfileQueries, MemoryTierAndBandwidth) {
    const Profile profile = rich_profile();
    EXPECT_EQ(profile.memory_tier_of({0, 2}), 0);
    EXPECT_EQ(profile.memory_tier_of({3, 5}), 0);
    EXPECT_EQ(profile.memory_tier_of({0, 3}), -1);  // different groups
    EXPECT_EQ(profile.memory_bandwidth_at(0, 2), 2.45e9);
    EXPECT_EQ(profile.memory_bandwidth_at(0, 99), 1.63e9);  // clamped
    EXPECT_FALSE(profile.memory_bandwidth_at(7, 1).has_value());
    EXPECT_FALSE(profile.memory_bandwidth_at(0, 0).has_value());
}

TEST(ProfileJson, EmitsAllSections) {
    const std::string json = rich_profile().to_json();
    EXPECT_NE(json.find("\"machine\": \"sim:dunnington\""), std::string::npos);
    EXPECT_NE(json.find("\"caches\": ["), std::string::npos);
    EXPECT_NE(json.find("\"method\": \"probabilistic\""), std::string::npos);
    EXPECT_NE(json.find("\"groups\": [[0,12],[1,13]]"), std::string::npos);
    EXPECT_NE(json.find("\"comm_layers\": ["), std::string::npos);
    EXPECT_NE(json.find("\"phase_seconds\": {"), std::string::npos);
    // Balanced braces/brackets (cheap well-formedness proxy).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}

TEST(ProfileJson, EscapesStrings) {
    Profile profile;
    profile.machine = "weird\"name\nwith\\stuff";
    const std::string json = profile.to_json();
    EXPECT_NE(json.find("weird\\\"name\\nwith\\\\stuff"), std::string::npos);
}

TEST(ProfileJson, EmptyProfileWellFormed) {
    const std::string json = Profile{}.to_json();
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_NE(json.find("\"caches\": []"), std::string::npos);
}

TEST(ProfileSerialization, GroupsEmptyVsPresent) {
    Profile profile = rich_profile();
    profile.caches[0].groups = {};
    const auto parsed = Profile::parse(profile.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(parsed->caches[0].groups.empty());
    EXPECT_EQ(parsed->caches[1].groups.size(), 2u);
}

// ---- cluster topology block ([topology] / [comm-tier k]) ----

/// Profile of an arity-2, 2-level fat-tree of 4 dual-core nodes (the
/// ft-small shape): layer 0 intra-node, layer 1 the 2-hop edge class,
/// layer 2 the 4-hop top class. Only one representative pair per layer
/// was "probed" — the rest classify analytically.
Profile cluster_profile() {
    Profile profile;
    profile.machine = "sim:ft-small";
    profile.cores = 8;
    profile.page_size = 4096;

    ProfileCommLayer intra;
    intra.latency = 2.0e-6;
    intra.pairs = {{0, 1}};
    intra.p2p = {{1024, 2.0e-6}, {65536, 5.0e-5}};
    intra.slowdown = {1.0};
    ProfileCommLayer edge;
    edge.latency = 6.0e-6;
    edge.pairs = {{0, 2}};
    edge.p2p = {{1024, 6.0e-6}, {65536, 1.2e-4}};
    edge.slowdown = {1.0};
    ProfileCommLayer top;
    top.latency = 1.6e-5;
    top.pairs = {{0, 4}};
    top.p2p = {{1024, 1.6e-5}, {65536, 3.0e-4}};
    top.slowdown = {1.0};
    profile.comm = {intra, edge, top};

    profile.topology = {"fat-tree", 2, {2, 2}};
    profile.comm_tiers = {{"edge", 0, 2, 1}, {"core", 1, 4, 2}};
    return profile;
}

TEST(ProfileSerialization, TopologyRoundTripsExactly) {
    const Profile original = cluster_profile();
    const std::string text = original.serialize();
    EXPECT_NE(text.find("[topology]"), std::string::npos);
    EXPECT_NE(text.find("[comm-tier 0]"), std::string::npos);
    EXPECT_NE(text.find("[comm-tier 1]"), std::string::npos);
    const auto parsed = Profile::parse(text);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, original);
}

TEST(ProfileSerialization, NoTopologyOmitsSections) {
    // Old profiles must serialize byte-identically: no topology, no new
    // sections and no new JSON keys.
    const std::string text = rich_profile().serialize();
    EXPECT_EQ(text.find("[topology]"), std::string::npos);
    EXPECT_EQ(text.find("[comm-tier"), std::string::npos);
    EXPECT_EQ(rich_profile().to_json().find("\"topology\""), std::string::npos);
}

TEST(ProfileJson, TopologyEmitted) {
    const std::string json = cluster_profile().to_json();
    EXPECT_NE(json.find("\"topology\""), std::string::npos);
    EXPECT_NE(json.find("\"fat-tree\""), std::string::npos);
    EXPECT_NE(json.find("\"comm_tiers\""), std::string::npos);
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

TEST(ProfileQueries, ClusterFallbackClassifiesUnprobedPairs) {
    const Profile profile = cluster_profile();
    // Probed pairs resolve as measured.
    EXPECT_EQ(profile.comm_layer_of({0, 1}), 0);
    EXPECT_EQ(profile.comm_layer_of({2, 0}), 1);
    // Unprobed intra-node pair: node 1's {2,3} translates to the node-0
    // twin {0,1}.
    EXPECT_EQ(profile.comm_layer_of({2, 3}), 0);
    // Unprobed inter-node pairs route over the rebuilt topology and match
    // a comm tier: (1,2) spans adjacent nodes (2 hops, edge); (3,6) spans
    // edge switches (4 hops, core).
    EXPECT_EQ(profile.comm_layer_of({1, 2}), 1);
    EXPECT_EQ(profile.comm_layer_of({3, 6}), 2);
    // And prices from the matched layer's stored curve.
    EXPECT_EQ(profile.comm_latency({3, 6}, 1024), profile.layer_latency(2, 1024));
    EXPECT_FALSE(profile.layer_latency(9, 1024).has_value());
}

TEST(ProfileQueries, CustomTopologyHasNoAnalyticFallback) {
    Profile profile = cluster_profile();
    profile.topology.kind = "custom";
    profile.topology.dims.clear();
    // Measured pairs still classify; unprobed inter-node pairs cannot be
    // routed without the explicit link list, which the profile does not
    // carry.
    EXPECT_EQ(profile.comm_layer_of({0, 2}), 1);
    EXPECT_EQ(profile.comm_layer_of({3, 6}), -1);
}

}  // namespace
}  // namespace servet::core
