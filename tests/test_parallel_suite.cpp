// The determinism contract of the parallel measurement engine: running
// the detection suite with jobs=4 must produce measurements — and a
// serialized profile — identical to the serial run, because every task's
// RNG seeds derive from its stable key, never from scheduling order.
// Also covers the cross-invocation memo: a warm second run replays every
// measurement from the memo file and still reproduces the same result.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/suite.hpp"
#include "msg/sim_network.hpp"
#include "platform/sim_platform.hpp"
#include "sim/zoo.hpp"

namespace servet::core {
namespace {

/// Trimmed so each suite run takes seconds: short mcalibrator sweep,
/// two repeats, pairwise phases restricted to pairs containing core 0.
SuiteOptions trimmed_options(const sim::MachineSpec& spec) {
    SuiteOptions options;
    options.mcalibrator.max_size = 3 * spec.levels.back().geometry.size;
    options.mcalibrator.repeats = 2;
    options.shared_cache.only_with_core = 0;
    options.mem_overhead.only_with_core = 0;
    return options;
}

SuiteResult run_with(const sim::MachineSpec& spec, SuiteOptions options) {
    SimPlatform platform(spec);
    msg::SimNetwork network(platform.spec());
    return run_suite(platform, &network, options);
}

std::string stripped_profile_text(const SuiteResult& result, const sim::MachineSpec& spec) {
    Profile profile = result.to_profile(spec.name, spec.n_cores, spec.page_size);
    profile.phase_seconds.clear();  // wall clock legitimately differs between runs
    return profile.serialize();
}

void expect_parallel_equals_serial(const sim::MachineSpec& spec) {
    SuiteOptions serial_options = trimmed_options(spec);
    serial_options.jobs = 1;
    SuiteOptions parallel_options = trimmed_options(spec);
    parallel_options.jobs = 4;

    const SuiteResult serial = run_with(spec, serial_options);
    const SuiteResult parallel = run_with(spec, parallel_options);

    EXPECT_TRUE(serial.measurements_equal(parallel));
    EXPECT_TRUE(parallel.measurements_equal(serial));
    // The contract is byte-for-byte on the installable artifact, not just
    // ==-equality of in-memory structs.
    EXPECT_EQ(stripped_profile_text(serial, spec), stripped_profile_text(parallel, spec));
}

TEST(ParallelSuite, DempseyParallelEqualsSerial) {
    expect_parallel_equals_serial(sim::zoo::dempsey());
}

TEST(ParallelSuite, Nehalem2SParallelEqualsSerial) {
    expect_parallel_equals_serial(sim::zoo::nehalem2s());
}

TEST(ParallelSuite, FinisTerraeTwoNodesParallelEqualsSerial) {
    expect_parallel_equals_serial(sim::zoo::finis_terrae(2));
}

TEST(ParallelSuite, WarmMemoRunReplaysEveryMeasurement) {
    const sim::MachineSpec spec = sim::zoo::dempsey();
    const std::string path = testing::TempDir() + "parallel_suite_memo.txt";
    std::remove(path.c_str());

    SuiteOptions cold_options = trimmed_options(spec);
    cold_options.memo_path = path;
    const SuiteResult cold = run_with(spec, cold_options);
    EXPECT_GT(cold.memo_misses, 0u);

    // Warm run from the saved memo, and in parallel for good measure:
    // every task replays, none re-measures, results identical.
    SuiteOptions warm_options = trimmed_options(spec);
    warm_options.memo_path = path;
    warm_options.jobs = 4;
    const SuiteResult warm = run_with(spec, warm_options);
    EXPECT_EQ(warm.memo_misses, 0u);
    EXPECT_GT(warm.memo_hits, 0u);
    EXPECT_TRUE(cold.measurements_equal(warm));
    EXPECT_EQ(stripped_profile_text(cold, spec), stripped_profile_text(warm, spec));

    std::remove(path.c_str());
}

TEST(ParallelSuite, MemoOffStillMatchesSerial) {
    const sim::MachineSpec spec = sim::zoo::dempsey();
    SuiteOptions options = trimmed_options(spec);
    options.use_memo = false;
    const SuiteResult no_memo = run_with(spec, options);
    EXPECT_EQ(no_memo.memo_hits, 0u);

    const SuiteResult with_memo = run_with(spec, trimmed_options(spec));
    EXPECT_TRUE(no_memo.measurements_equal(with_memo));
}

}  // namespace
}  // namespace servet::core
