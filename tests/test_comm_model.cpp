#include "core/comm_model.hpp"

#include <gtest/gtest.h>

namespace servet::core {
namespace {

TEST(Hockney, RecoversExactLinearCosts) {
    // t = 2us + m / 1GB/s.
    std::vector<std::pair<Bytes, Seconds>> points;
    for (const Bytes m : {1 * KiB, 4 * KiB, 64 * KiB, 1 * MiB})
        points.emplace_back(m, 2e-6 + static_cast<double>(m) / 1e9);
    const HockneyModel model = fit_hockney(points);
    EXPECT_NEAR(model.alpha, 2e-6, 1e-10);
    EXPECT_NEAR(model.bandwidth, 1e9, 1e3);
    const auto error = evaluate_model(model, points);
    EXPECT_LT(error.max_relative, 1e-6);
}

TEST(Hockney, AtEvaluates) {
    const HockneyModel model{.alpha = 1e-6, .bandwidth = 2e9};
    EXPECT_NEAR(model.at(2 * MiB), 1e-6 + 2.0 * 1024 * 1024 / 2e9, 1e-12);
}

TEST(Hockney, ProtocolStepBreaksTheLine) {
    // Eager below 32KB, +10us rendezvous above: no single line fits.
    std::vector<std::pair<Bytes, Seconds>> points;
    for (const Bytes m : {1 * KiB, 4 * KiB, 16 * KiB, 64 * KiB, 256 * KiB, 1 * MiB}) {
        Seconds t = 2e-6 + static_cast<double>(m) / 1e9;
        if (m > 32 * KiB) t += 10e-6;
        points.emplace_back(m, t);
    }
    const auto error = evaluate_model(fit_hockney(points), points);
    EXPECT_GT(error.max_relative, 0.25);
}

TEST(Hockney, FlatLatencyClampsBandwidth) {
    std::vector<std::pair<Bytes, Seconds>> points = {{1 * KiB, 5e-6}, {1 * MiB, 5e-6}};
    const HockneyModel model = fit_hockney(points);
    EXPECT_GT(model.bandwidth, 1e15);  // slope ~0 clamped
}

TEST(ProfileModel, LayeredLookupBeatsGlobalHockney) {
    // Two layers with very different costs: a global Hockney fit must be
    // far off for at least one of them; the profile lookup is exact on its
    // own sweep points.
    Profile profile;
    profile.cores = 4;
    ProfileCommLayer fast;
    fast.latency = 1e-6;
    fast.pairs = {{0, 1}};
    ProfileCommLayer slow;
    slow.latency = 20e-6;
    slow.pairs = {{0, 2}};
    for (const Bytes m : {1 * KiB, 8 * KiB, 64 * KiB, 512 * KiB}) {
        fast.p2p.emplace_back(m, 1e-6 + static_cast<double>(m) / 2e9);
        slow.p2p.emplace_back(m, 20e-6 + static_cast<double>(m) / 0.2e9);
    }
    profile.comm = {fast, slow};

    const HockneyModel global = fit_hockney_global(profile);
    const auto global_on_fast = evaluate_model(global, fast.p2p);
    const auto servet_on_fast = evaluate_profile(profile, {0, 1}, fast.p2p);
    EXPECT_GT(global_on_fast.max_relative, 0.5);
    EXPECT_LT(servet_on_fast.max_relative, 1e-9);
}

TEST(ProfileModel, EvaluateProfileInterpolatedPointsClose) {
    Profile profile;
    profile.cores = 2;
    ProfileCommLayer layer;
    layer.latency = 1e-6;
    layer.pairs = {{0, 1}};
    for (const Bytes m : {1 * KiB, 2 * KiB, 4 * KiB, 8 * KiB})
        layer.p2p.emplace_back(m, 1e-6 + static_cast<double>(m) / 1e9);
    profile.comm = {layer};
    // Points between grid sizes: linear interpolation of a linear curve is
    // exact.
    std::vector<std::pair<Bytes, Seconds>> validation = {
        {3 * KiB, 1e-6 + 3.0 * 1024 / 1e9}, {6 * KiB, 1e-6 + 6.0 * 1024 / 1e9}};
    const auto error = evaluate_profile(profile, {0, 1}, validation);
    EXPECT_LT(error.max_relative, 1e-9);
}

TEST(ProfileModelDeath, UncharacterizedPair) {
    Profile profile;
    EXPECT_DEATH((void)evaluate_profile(profile, {0, 1}, {{1 * KiB, 1e-6}}), "");
}

}  // namespace
}  // namespace servet::core
