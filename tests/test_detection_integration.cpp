// Integration: the full measurement + detection pipeline must recover the
// ground-truth cache hierarchy of every machine model — the paper's
// Section IV-A claim ("10 cache sizes in total ... all the estimates
// agreed with the specifications"), scored against the simulator's specs.
#include <gtest/gtest.h>

#include "core/cache_size.hpp"
#include "platform/sim_platform.hpp"
#include "sim/zoo.hpp"

namespace servet::core {
namespace {

std::vector<CacheLevelEstimate> detect_on(const sim::MachineSpec& spec, Bytes max_size) {
    SimPlatform platform(spec);
    McalibratorOptions mc;
    mc.max_size = max_size;
    CacheDetectOptions options;
    options.page_size = spec.page_size;
    const McalibratorCurve curve = run_mcalibrator(platform, mc);
    return detect_cache_levels(curve, options);
}

void expect_matches_spec(const sim::MachineSpec& spec,
                         const std::vector<CacheLevelEstimate>& levels) {
    ASSERT_EQ(levels.size(), spec.levels.size()) << spec.name;
    for (std::size_t i = 0; i < levels.size(); ++i)
        EXPECT_EQ(levels[i].size, spec.levels[i].geometry.size)
            << spec.name << " level " << i;
}

TEST(DetectionIntegration, Dunnington) {
    const auto spec = sim::zoo::dunnington();
    expect_matches_spec(spec, detect_on(spec, 36 * MiB));
}

TEST(DetectionIntegration, FinisTerrae) {
    const auto spec = sim::zoo::finis_terrae();
    expect_matches_spec(spec, detect_on(spec, 30 * MiB));
}

TEST(DetectionIntegration, Dempsey) {
    const auto spec = sim::zoo::dempsey();
    expect_matches_spec(spec, detect_on(spec, 12 * MiB));
}

TEST(DetectionIntegration, Athlon3200) {
    const auto spec = sim::zoo::athlon3200();
    expect_matches_spec(spec, detect_on(spec, 4 * MiB));
}

TEST(DetectionIntegration, PageColoringOsDetectedPositionally) {
    // With page coloring the L2 must be found by peak position, as Fig. 4
    // prescribes, and still be exact.
    sim::MachineSpec spec = sim::zoo::dempsey();
    spec.page_policy = sim::PagePolicy::Coloring;
    const auto levels = detect_on(spec, 12 * MiB);
    ASSERT_EQ(levels.size(), 2u);
    EXPECT_EQ(levels[1].size, 2 * MiB);
    EXPECT_EQ(levels[1].method, "peak");
}

struct SyntheticCase {
    Bytes l2_size;
    int l2_assoc;
    sim::PagePolicy policy;
};

class SyntheticDetection : public ::testing::TestWithParam<SyntheticCase> {};

TEST_P(SyntheticDetection, RecoversHierarchy) {
    const auto& param = GetParam();
    sim::zoo::SyntheticOptions options;
    options.cores = 1;
    options.l1_size = 32 * KiB;
    options.l2_size = param.l2_size;
    options.l2_assoc = param.l2_assoc;
    options.page_policy = param.policy;
    options.jitter = 0.01;
    const sim::MachineSpec spec = sim::zoo::synthetic(options);

    const auto levels = detect_on(spec, 6 * param.l2_size);
    ASSERT_EQ(levels.size(), 2u);
    EXPECT_EQ(levels[0].size, 32 * KiB);
    EXPECT_EQ(levels[1].size, param.l2_size);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SyntheticDetection,
    ::testing::Values(SyntheticCase{512 * KiB, 8, sim::PagePolicy::Random},
                      SyntheticCase{1 * MiB, 16, sim::PagePolicy::Random},
                      SyntheticCase{2 * MiB, 8, sim::PagePolicy::Random},
                      SyntheticCase{2 * MiB, 8, sim::PagePolicy::Coloring},
                      SyntheticCase{3 * MiB, 12, sim::PagePolicy::Random},
                      SyntheticCase{1 * MiB, 16, sim::PagePolicy::Coloring}));

TEST(DetectionIntegration, ToleratesStrongerNoise) {
    // Failure injection: 4% multiplicative jitter (double the default)
    // must not break L1/L2 size recovery.
    sim::zoo::SyntheticOptions options;
    options.cores = 1;
    options.l1_size = 32 * KiB;
    options.l2_size = 1 * MiB;
    options.jitter = 0.04;
    const auto levels = detect_on(sim::zoo::synthetic(options), 8 * MiB);
    ASSERT_GE(levels.size(), 2u);
    EXPECT_EQ(levels[0].size, 32 * KiB);
    EXPECT_EQ(levels[1].size, 1 * MiB);
}

}  // namespace
}  // namespace servet::core
