#include "autotune/aggregation.hpp"

#include <gtest/gtest.h>

#include "autotune/search/strategy.hpp"

namespace servet::autotune {
namespace {

core::Profile profile_with_layer(std::vector<double> slowdown) {
    core::Profile profile;
    profile.cores = 2;
    core::ProfileCommLayer layer;
    layer.latency = 5e-6;
    layer.pairs = {{0, 1}};
    // Linear latency curve: 4us base + 1us per KB.
    layer.p2p = {{1 * KiB, 5e-6}, {2 * KiB, 6e-6}, {16 * KiB, 20e-6}, {64 * KiB, 68e-6}};
    layer.slowdown = std::move(slowdown);
    profile.comm = {layer};
    return profile;
}

TEST(Aggregation, PoorlyScalingLayerFavoursGathering) {
    // Section III-D: N concurrent messages of size S cost more than one of
    // N*S on a poorly scaling layer.
    const auto profile = profile_with_layer({1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0});
    const auto advice = advise_aggregation(profile, {0, 1}, 2 * KiB, 8);
    ASSERT_TRUE(advice.has_value());
    // scattered: 6us * 8x slowdown = 48us; gathered: 16KB -> 20us.
    EXPECT_NEAR(advice->scattered_cost, 48e-6, 1e-9);
    EXPECT_NEAR(advice->aggregated_cost, 20e-6, 1e-9);
    EXPECT_TRUE(advice->aggregate);
    EXPECT_NEAR(advice->benefit, 2.4, 0.01);
}

TEST(Aggregation, FullyScalableLayerKeepsMessagesSeparate) {
    const auto profile = profile_with_layer({1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0});
    const auto advice = advise_aggregation(profile, {0, 1}, 2 * KiB, 8);
    ASSERT_TRUE(advice.has_value());
    // scattered: 6us (each message pays only itself); gathered: 20us.
    EXPECT_FALSE(advice->aggregate);
    EXPECT_LT(advice->benefit, 1.0);
}

TEST(Aggregation, SingleMessageNeverAggregates) {
    const auto profile = profile_with_layer({1.0, 2.0});
    const auto advice = advise_aggregation(profile, {0, 1}, 4 * KiB, 1);
    ASSERT_TRUE(advice.has_value());
    EXPECT_NEAR(advice->benefit, 1.0, 1e-9);
    EXPECT_FALSE(advice->aggregate);
}

TEST(Aggregation, SlowdownClampedBeyondSweep) {
    const auto profile = profile_with_layer({1.0, 2.0});  // measured to N=2 only
    const auto a4 = advise_aggregation(profile, {0, 1}, 1 * KiB, 4);
    ASSERT_TRUE(a4.has_value());
    EXPECT_NEAR(a4->scattered_cost, 5e-6 * 2.0, 1e-12);  // clamps at 2x
}

TEST(Aggregation, MissingSlowdownTreatedAsScalable) {
    const auto profile = profile_with_layer({});
    const auto advice = advise_aggregation(profile, {0, 1}, 2 * KiB, 4);
    ASSERT_TRUE(advice.has_value());
    EXPECT_NEAR(advice->scattered_cost, 6e-6, 1e-12);
}

TEST(Aggregation, UnknownPairGivesNothing) {
    const auto profile = profile_with_layer({1.0});
    EXPECT_FALSE(advise_aggregation(profile, {0, 7}, KiB, 2).has_value());
}

TEST(Aggregation, CommLessProfileYieldsNeitherAdviceNorTunable) {
    const core::Profile empty;
    EXPECT_FALSE(advise_aggregation(empty, {0, 1}, 2 * KiB, 8).has_value());
    EXPECT_EQ(make_aggregation_tunable(empty, {0, 1}, 2 * KiB, 8), nullptr);
}

TEST(AggregationTunable, SearchAgreesWithAdvisorBothWays) {
    for (const bool poorly_scaling : {true, false}) {
        const auto profile = poorly_scaling
            ? profile_with_layer({1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0})
            : profile_with_layer({1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0});
        const auto advice = advise_aggregation(profile, {0, 1}, 2 * KiB, 8);
        ASSERT_TRUE(advice.has_value());
        const auto tunable = make_aggregation_tunable(profile, {0, 1}, 2 * KiB, 8);
        ASSERT_NE(tunable, nullptr);
        const auto result = search::run_search(*tunable, {});
        ASSERT_TRUE(result.has_value());
        EXPECT_EQ(result->space_size, 2u);
        EXPECT_EQ(result->best.label("mode") == "aggregated", advice->aggregate);
    }
}

TEST(AggregationTunable, CostTieKeepsMessagesScattered) {
    // count == 1 prices both modes identically; like the advisor's strict
    // benefit > 1.0 test, the tie must resolve to not aggregating.
    const auto profile = profile_with_layer({1.0, 2.0});
    const auto tunable = make_aggregation_tunable(profile, {0, 1}, 4 * KiB, 1);
    ASSERT_NE(tunable, nullptr);
    const auto result = search::run_search(*tunable, {});
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->best.label("mode"), "scattered");
}

}  // namespace
}  // namespace servet::autotune
