#include "autotune/mapping.hpp"

#include <gtest/gtest.h>

#include "autotune/search/strategy.hpp"

#include <algorithm>
#include <set>
#include <utility>

namespace servet::autotune {
namespace {

/// Four cores; {0,1} and {2,3} are "fast" pairs (1us), everything else 5us.
/// Cores {0,1} additionally collide on a memory bus at half bandwidth.
core::Profile toy_profile() {
    core::Profile profile;
    profile.machine = "toy";
    profile.cores = 4;
    profile.page_size = 4096;

    core::ProfileCommLayer fast;
    fast.latency = 1e-6;
    fast.pairs = {{0, 1}, {2, 3}};
    fast.p2p = {{1 * KiB, 1e-6}, {64 * KiB, 2e-6}};
    core::ProfileCommLayer slow;
    slow.latency = 5e-6;
    slow.pairs = {{0, 2}, {0, 3}, {1, 2}, {1, 3}};
    slow.p2p = {{1 * KiB, 5e-6}, {64 * KiB, 10e-6}};
    profile.comm = {fast, slow};

    profile.memory.reference_bandwidth = 2e9;
    core::ProfileMemoryTier tier;
    tier.bandwidth = 1e9;
    tier.groups = {{0, 1}};
    tier.scalability = {2e9, 1e9};
    profile.memory.tiers = {tier};
    return profile;
}

TEST(CommGraph, RingShape) {
    const CommGraph ring = CommGraph::ring(4);
    EXPECT_EQ(ring.ranks, 4);
    EXPECT_EQ(ring.edges.size(), 4u);
    EXPECT_TRUE(ring.validate().empty());
    // Two ranks: a single edge, not a doubled one.
    EXPECT_EQ(CommGraph::ring(2).edges.size(), 1u);
}

TEST(CommGraph, Stencil2dShape) {
    const CommGraph stencil = CommGraph::stencil2d(2, 3);
    EXPECT_EQ(stencil.ranks, 6);
    // Horizontal: 2 rows x 2 = 4; vertical: 1 x 3 = 3.
    EXPECT_EQ(stencil.edges.size(), 7u);
    EXPECT_TRUE(stencil.validate().empty());
}

TEST(CommGraph, AllToAllShape) {
    const CommGraph a2a = CommGraph::all_to_all(4);
    EXPECT_EQ(a2a.edges.size(), 6u);
    EXPECT_TRUE(a2a.validate().empty());
}

TEST(CommGraph, ValidationCatchesMistakes) {
    CommGraph graph;
    graph.ranks = 2;
    graph.edges = {{0, 5, 1.0}};
    EXPECT_FALSE(graph.validate().empty());
    graph.edges = {{0, 0, 1.0}};
    EXPECT_FALSE(graph.validate().empty());
    graph.edges = {{0, 1, -2.0}};
    EXPECT_FALSE(graph.validate().empty());
}

TEST(PlacementCost, HandComputedCommTerm) {
    const core::Profile profile = toy_profile();
    CommGraph graph;
    graph.ranks = 2;
    graph.edges = {{0, 1, 3.0}};
    MappingOptions options;
    options.message_size = 1 * KiB;
    options.memory_weight = 0.0;
    // Ranks on a fast pair: 3 * 1us.
    EXPECT_NEAR(placement_cost(profile, graph, {0, 1}, options), 3e-6, 1e-12);
    // Ranks on a slow pair: 3 * 5us.
    EXPECT_NEAR(placement_cost(profile, graph, {0, 2}, options), 15e-6, 1e-12);
}

TEST(PlacementCost, MemoryPenaltyCharged) {
    const core::Profile profile = toy_profile();
    CommGraph graph;
    graph.ranks = 2;  // no edges: pure contention objective
    MappingOptions options;
    options.memory_weight = 1.0;
    const double colliding = placement_cost(profile, graph, {0, 1}, options);
    const double spread = placement_cost(profile, graph, {0, 2}, options);
    EXPECT_GT(colliding, spread);
    EXPECT_DOUBLE_EQ(spread, 0.0);
    // Severity 0.5, one extra occupant, unit = slowest layer latency 5us.
    EXPECT_NEAR(colliding, 0.5 * 5e-6, 1e-12);
}

TEST(MapProcesses, PairLandsOnFastCores) {
    const core::Profile profile = toy_profile();
    MappingOptions options;
    options.message_size = 1 * KiB;
    options.memory_weight = 0.0;
    const MappingResult result = map_processes(profile, CommGraph::ring(2), options);
    const CorePair placed{result.core_of_rank[0], result.core_of_rank[1]};
    EXPECT_EQ(profile.comm_layer_of(placed), 0) << "pair must use a fast layer";
}

TEST(MapProcesses, MemoryWeightSteersAwayFromContention) {
    const core::Profile profile = toy_profile();
    MappingOptions options;
    options.message_size = 1 * KiB;
    options.memory_weight = 20.0;  // contention dominates
    const MappingResult result = map_processes(profile, CommGraph::ring(2), options);
    // {2,3} is as fast as {0,1} but has no memory collision.
    const std::vector<CoreId> sorted_cores = [&] {
        std::vector<CoreId> cores = result.core_of_rank;
        std::sort(cores.begin(), cores.end());
        return cores;
    }();
    EXPECT_EQ(sorted_cores, (std::vector<CoreId>{2, 3}));
}

TEST(MapProcesses, RefinementNeverWorsens) {
    const core::Profile profile = toy_profile();
    for (const auto& graph :
         {CommGraph::ring(4), CommGraph::all_to_all(3), CommGraph::stencil2d(2, 2)}) {
        const MappingResult result = map_processes(profile, graph, {});
        EXPECT_LE(result.cost, result.greedy_cost + 1e-15);
    }
}

TEST(MapProcesses, PlacementIsInjective) {
    const core::Profile profile = toy_profile();
    const MappingResult result = map_processes(profile, CommGraph::ring(4), {});
    std::vector<CoreId> cores = result.core_of_rank;
    std::sort(cores.begin(), cores.end());
    EXPECT_EQ(std::adjacent_find(cores.begin(), cores.end()), cores.end());
}

TEST(MapProcesses, FourRanksUseBothFastPairs) {
    // Ring of 4 on the toy machine: the optimum pairs neighbours over the
    // two fast links; total cost 2*1us + 2*5us.
    const core::Profile profile = toy_profile();
    MappingOptions options;
    options.message_size = 1 * KiB;
    options.memory_weight = 0.0;
    const MappingResult result = map_processes(profile, CommGraph::ring(4), options);
    EXPECT_NEAR(result.cost, 2 * 1e-6 + 2 * 5e-6, 1e-12);
}

TEST(CommGraph, RandomSparseIsValidAndDeterministic) {
    const CommGraph a = CommGraph::random_sparse(16, 3, 42);
    const CommGraph b = CommGraph::random_sparse(16, 3, 42);
    EXPECT_TRUE(a.validate().empty());
    ASSERT_EQ(a.edges.size(), b.edges.size());
    for (std::size_t i = 0; i < a.edges.size(); ++i) {
        EXPECT_EQ(a.edges[i].rank_a, b.edges[i].rank_a);
        EXPECT_EQ(a.edges[i].rank_b, b.edges[i].rank_b);
        EXPECT_DOUBLE_EQ(a.edges[i].weight, b.edges[i].weight);
    }
    // Different seeds differ.
    const CommGraph c = CommGraph::random_sparse(16, 3, 43);
    EXPECT_NE(a.edges.size() == c.edges.size() &&
                  a.edges.front().rank_b == c.edges.front().rank_b &&
                  a.edges.front().weight == c.edges.front().weight,
              true);
}

TEST(CommGraph, RandomSparseNoDuplicatesOrSelfLoops) {
    const CommGraph graph = CommGraph::random_sparse(24, 4, 7);
    std::set<std::pair<int, int>> seen;
    for (const auto& edge : graph.edges) {
        EXPECT_NE(edge.rank_a, edge.rank_b);
        EXPECT_TRUE(seen.insert({edge.rank_a, edge.rank_b}).second);
        EXPECT_GE(edge.weight, 1.0);
        EXPECT_LT(edge.weight, 3.0);
    }
}

TEST(EdgeRounds, RoundsAreVertexDisjointAndComplete) {
    for (const auto& graph :
         {CommGraph::stencil2d(4, 4), CommGraph::all_to_all(6),
          CommGraph::random_sparse(12, 3, 5)}) {
        const auto rounds = edge_rounds(graph);
        std::size_t total = 0;
        for (const auto& round : rounds) {
            std::set<int> busy;
            for (const auto& edge : round) {
                EXPECT_TRUE(busy.insert(edge.rank_a).second);
                EXPECT_TRUE(busy.insert(edge.rank_b).second);
            }
            total += round.size();
        }
        EXPECT_EQ(total, graph.edges.size());
        EXPECT_FALSE(rounds.empty());
    }
}

TEST(EdgeRounds, StencilNeedsFewRounds) {
    // A 2D stencil is 4-edge-colorable; greedy should stay close.
    const auto rounds = edge_rounds(CommGraph::stencil2d(6, 6));
    EXPECT_LE(rounds.size(), 6u);
}

TEST(MapProcesses, NeverWorseThanIdentity) {
    const core::Profile profile = toy_profile();
    MappingOptions options;
    options.message_size = 1 * KiB;
    for (const auto& graph :
         {CommGraph::ring(4), CommGraph::random_sparse(4, 2, 11), CommGraph::stencil2d(2, 2)}) {
        std::vector<CoreId> identity = {0, 1, 2, 3};
        const double naive = placement_cost(profile, graph, identity, options);
        const MappingResult tuned = map_processes(profile, graph, options);
        EXPECT_LE(tuned.cost, naive + 1e-15);
    }
}

TEST(MapProcessesDeath, MoreRanksThanCores) {
    const core::Profile profile = toy_profile();
    EXPECT_DEATH((void)map_processes(profile, CommGraph::ring(5), {}), "");
}

TEST(TryMapProcesses, RefusesProfilesThatCannotPriceEdges) {
    // A comm-less profile prices every placement identically; the guarded
    // entry point reports that instead of returning an arbitrary mapping.
    core::Profile commless = toy_profile();
    commless.comm.clear();
    EXPECT_FALSE(try_map_processes(commless, CommGraph::ring(4), {}).has_value());
    // An edge-less graph needs no comm data: any placement is fine.
    CommGraph isolated;
    isolated.ranks = 2;
    EXPECT_TRUE(try_map_processes(commless, isolated, {}).has_value());
}

TEST(TryMapProcesses, MatchesMapProcessesOnHealthyProfiles) {
    const core::Profile profile = toy_profile();
    MappingOptions options;
    options.message_size = 1 * KiB;
    const CommGraph graph = CommGraph::ring(4);
    const auto guarded = try_map_processes(profile, graph, options);
    ASSERT_TRUE(guarded.has_value());
    const MappingResult direct = map_processes(profile, graph, options);
    EXPECT_EQ(guarded->core_of_rank, direct.core_of_rank);
    EXPECT_EQ(guarded->cost, direct.cost);
}

TEST(MappingTunable, SeedSearchNeverBeatenByEitherSeed) {
    const core::Profile profile = toy_profile();
    MappingOptions options;
    options.message_size = 1 * KiB;
    const CommGraph graph = CommGraph::random_sparse(4, 2, 7);
    const auto tunable = make_mapping_tunable(profile, graph, options);
    ASSERT_NE(tunable, nullptr);
    const auto result = search::run_search(*tunable, {});
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->space_size, 2u);  // greedy and identity seeds
    // The search winner is the better (unrefined) seed, which is what
    // map_processes refines: its greedy_cost must equal the search best.
    const MappingResult refined = map_processes(profile, graph, options);
    EXPECT_EQ(refined.greedy_cost, result->best_cost);
    EXPECT_LE(refined.cost, result->best_cost + 1e-15);
}

}  // namespace
}  // namespace servet::autotune
