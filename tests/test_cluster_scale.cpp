// Cluster-scale locks: the comm-costs phase driven by sampled probe pairs
// at 1k-10k simulated ranks, parallel/serial equivalence of a cluster
// suite run, the measured-once guarantee for symmetric probe pairs, and
// the topology-tiered broadcast selected on cluster profiles. Tests whose
// suite name contains "Slow" (the 4k and 10k variants) are registered
// under the slow CTest label; the rest run in the fast tier.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "autotune/collective_select.hpp"
#include "autotune/collectives.hpp"
#include "autotune/exec_collectives.hpp"
#include "core/cluster.hpp"
#include "core/comm_costs.hpp"
#include "core/suite.hpp"
#include "msg/comm_world.hpp"
#include "msg/sim_network.hpp"
#include "obs/metrics.hpp"
#include "platform/sim_platform.hpp"
#include "sim/zoo.hpp"

namespace servet {
namespace {

/// Comm-only suite options for a cluster machine — the same configuration
/// `servet profile --platform` uses.
core::SuiteOptions cluster_options(const sim::MachineSpec& spec, int jobs) {
    core::SuiteOptions options;
    options.run_cache_size = false;
    options.jobs = jobs;
    options.comm.probe_pairs = core::cluster_probe_pairs(spec, options.comm);
    return options;
}

/// Measured cluster profile with the topology annotation stamped on —
/// what a `servet profile --platform` invocation writes.
core::Profile cluster_profile(const sim::MachineSpec& spec, int jobs = 1) {
    SimPlatform platform(spec);
    msg::SimNetwork network(spec);
    const core::SuiteResult result =
        core::run_suite(platform, &network, cluster_options(spec, jobs));
    EXPECT_TRUE(result.errors.empty());
    core::Profile profile =
        result.to_profile(platform.name(), platform.core_count(), platform.page_size());
    core::annotate_cluster_profile(&profile, spec);
    return profile;
}

TEST(ClusterScale, CommCosts1kCoversEveryRouteClass) {
    const sim::MachineSpec spec = sim::zoo::fat_tree_cluster(3);
    ASSERT_EQ(spec.n_cores, 1024);

    core::CommCostsOptions options;
    options.probe_pairs = core::cluster_probe_pairs(spec, options);
    // Sampled, not O(n^2): a 1024-rank machine has >500k pairs.
    ASSERT_FALSE(options.probe_pairs.empty());
    ASSERT_LT(options.probe_pairs.size(), 1000u);

    msg::SimNetwork network(spec);
    const core::CommCostsResult result = characterize_communication(network, options);

    // Every probed pair is in the scan, and the layers separate the
    // intra-node class from the three fat-tree route classes (2, 4, and 6
    // hops with edge/aggregation/core bottlenecks), fastest first.
    EXPECT_EQ(result.pairs.size(), options.probe_pairs.size());
    ASSERT_EQ(result.layers.size(), 4u);
    for (std::size_t l = 1; l < result.layers.size(); ++l)
        EXPECT_GT(result.layers[l].latency, result.layers[l - 1].latency);

    // Node 0 holds cores [0, 16); node 1 shares node 0's edge switch.
    EXPECT_EQ(result.layer_of({0, 1}), 0);    // intra-node
    EXPECT_EQ(result.layer_of({0, 16}), 1);   // 2 hops, edge bottleneck
    EXPECT_EQ(result.layer_of({0, 64}), 2);   // 4 hops, aggregation
    EXPECT_EQ(result.layer_of({0, 256}), 3);  // 6 hops, core
}

TEST(ClusterScale, ParallelSuiteEqualsSerialAt1k) {
    const sim::MachineSpec spec = sim::zoo::fat_tree_cluster(3);
    SimPlatform serial_platform(spec);
    msg::SimNetwork serial_network(spec);
    const core::SuiteResult serial =
        core::run_suite(serial_platform, &serial_network, cluster_options(spec, 1));
    SimPlatform parallel_platform(spec);
    msg::SimNetwork parallel_network(spec);
    const core::SuiteResult parallel =
        core::run_suite(parallel_platform, &parallel_network, cluster_options(spec, 4));

    ASSERT_TRUE(serial.errors.empty());
    ASSERT_TRUE(parallel.errors.empty());
    EXPECT_TRUE(serial.measurements_equal(parallel));

    // Byte-identical profiles once the one never-repeatable quantity
    // (wall clock) is stripped.
    core::Profile serial_profile = serial.to_profile(spec.name, spec.n_cores, 4 * KiB);
    core::Profile parallel_profile = parallel.to_profile(spec.name, spec.n_cores, 4 * KiB);
    core::annotate_cluster_profile(&serial_profile, spec);
    core::annotate_cluster_profile(&parallel_profile, spec);
    serial_profile.phase_seconds.clear();
    parallel_profile.phase_seconds.clear();
    EXPECT_EQ(serial_profile.serialize(), parallel_profile.serialize());
}

TEST(ClusterScale, SymmetricProbePairsMeasuredOnce) {
    const sim::MachineSpec spec = sim::zoo::fat_tree_small();
    const std::vector<CorePair> unique = {{0, 1}, {0, 2}, {0, 4}};
    std::vector<CorePair> duplicated = unique;
    for (const CorePair& pair : unique) duplicated.push_back({pair.b, pair.a});

    obs::Counter& run_counter = obs::counter("exec.tasks.run", obs::Stability::Stable);

    core::CommCostsOptions options;
    options.probe_pairs = unique;
    msg::SimNetwork unique_network(spec);
    const std::uint64_t before_unique = run_counter.value();
    const core::CommCostsResult unique_result =
        characterize_communication(unique_network, options);
    const std::uint64_t unique_tasks = run_counter.value() - before_unique;

    options.probe_pairs = duplicated;
    msg::SimNetwork duplicated_network(spec);
    const std::uint64_t before_duplicated = run_counter.value();
    const core::CommCostsResult duplicated_result =
        characterize_communication(duplicated_network, options);
    const std::uint64_t duplicated_tasks = run_counter.value() - before_duplicated;

    // The reversed duplicates collapse onto the canonical pairs: not one
    // extra measurement task runs, and the characterization is identical.
    EXPECT_EQ(duplicated_tasks, unique_tasks);
    EXPECT_EQ(duplicated_result, unique_result);
    EXPECT_EQ(duplicated_result.pairs.size(), unique.size());
}

TEST(ClusterScale, TieredBroadcastSelectedOnClusterProfile) {
    const core::Profile profile = cluster_profile(sim::zoo::fat_tree_small());
    ASSERT_TRUE(profile.topology.enabled());
    ASSERT_FALSE(profile.comm_tiers.empty());

    std::vector<CoreId> cores;
    for (CoreId c = 0; c < profile.cores; ++c) cores.push_back(c);
    const autotune::CollectiveChoice choice =
        autotune::choose_broadcast(profile, 0, cores, 256 * KiB);

    // The topology-tiered schedule replaces the O(n^2) hierarchical one
    // on cluster profiles, and it is a sound broadcast.
    const auto tiered = std::find_if(
        choice.candidates.begin(), choice.candidates.end(),
        [](const auto& candidate) { return candidate.first.starts_with("tiered/"); });
    ASSERT_NE(tiered, choice.candidates.end());
    for (const auto& candidate : choice.candidates)
        EXPECT_FALSE(candidate.first.starts_with("hierarchical"));

    const autotune::Schedule schedule =
        autotune::broadcast_tiered(0, cores, profile, 256 * KiB);
    EXPECT_TRUE(schedule.validate_broadcast(0, cores).empty());
}

TEST(ClusterScale, SteppedExecutorMatchesThreadedExecutor) {
    const std::vector<CoreId> cores = {0, 1, 2, 3, 4, 5, 6, 7};
    const autotune::Schedule schedule = autotune::broadcast_binomial(2, cores);
    const std::vector<std::uint8_t> payload = {1, 2, 3, 5, 8, 13};

    msg::CommWorld threaded_world(8);
    const auto threaded =
        autotune::execute_broadcast(threaded_world, schedule, 2, cores, payload);
    msg::CommWorld stepped_world(8);
    const auto stepped =
        autotune::execute_broadcast_stepped(stepped_world, schedule, 2, cores, payload);

    EXPECT_EQ(threaded, stepped);
    for (const CoreId core : cores) EXPECT_EQ(stepped.at(core), payload);
}

TEST(ClusterScaleSlow, ParallelSuiteEqualsSerialAt4k) {
    const sim::MachineSpec spec = sim::zoo::fat_tree_cluster(4);
    ASSERT_EQ(spec.n_cores, 4096);
    SimPlatform serial_platform(spec);
    msg::SimNetwork serial_network(spec);
    const core::SuiteResult serial =
        core::run_suite(serial_platform, &serial_network, cluster_options(spec, 1));
    SimPlatform parallel_platform(spec);
    msg::SimNetwork parallel_network(spec);
    const core::SuiteResult parallel =
        core::run_suite(parallel_platform, &parallel_network, cluster_options(spec, 4));

    ASSERT_TRUE(serial.errors.empty());
    ASSERT_TRUE(parallel.errors.empty());
    EXPECT_TRUE(serial.measurements_equal(parallel));
    // The fourth fat-tree level adds a route class (8 hops over the spine
    // tier): five layers, ascending.
    ASSERT_EQ(serial.comm.layers.size(), 5u);
    for (std::size_t l = 1; l < serial.comm.layers.size(); ++l)
        EXPECT_GT(serial.comm.layers[l].latency, serial.comm.layers[l - 1].latency);
}

TEST(ClusterScaleSlow, TieredBroadcastDeliversAt10kRanks) {
    const sim::MachineSpec spec = sim::zoo::dragonfly_cluster(10, 8, 8);
    ASSERT_EQ(spec.n_cores, 10240);
    const core::Profile profile = cluster_profile(spec);
    ASSERT_TRUE(profile.topology.enabled());

    std::vector<CoreId> cores;
    for (CoreId c = 0; c < spec.n_cores; ++c) cores.push_back(c);
    const autotune::Schedule schedule =
        autotune::broadcast_tiered(0, cores, profile, 64 * KiB);
    ASSERT_TRUE(schedule.algorithm.starts_with("tiered/"));
    // Tiered descent, not a flat fan-out: round count grows with the
    // depth of the hierarchy, not the rank count.
    EXPECT_LT(schedule.rounds.size(), 100u);

    const std::vector<std::uint8_t> payload = {42, 7, 99};
    msg::CommWorld world(spec.n_cores);
    const auto buffers =
        autotune::execute_broadcast_stepped(world, schedule, 0, cores, payload);
    for (const CoreId core : cores) ASSERT_EQ(buffers.at(core), payload);
}

}  // namespace
}  // namespace servet
