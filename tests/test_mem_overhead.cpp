#include "core/mem_overhead.hpp"

#include <gtest/gtest.h>

#include "platform/sim_platform.hpp"
#include "sim/zoo.hpp"

namespace servet::core {
namespace {

TEST(MemOverhead, FinisTerraeTwoTiersBusAndCell) {
    // Fig. 9a: bus pairs lowest, cell pairs ~25% below the reference,
    // cross-cell pairs unaffected.
    SimPlatform platform(sim::zoo::finis_terrae());
    MemOverheadOptions options;
    options.array_bytes = 36 * MiB;
    const MemOverheadResult result = characterize_memory_overhead(platform, options);

    ASSERT_EQ(result.tiers.size(), 2u);
    const auto& bus = result.tiers[0];    // sorted worst-first
    const auto& cell = result.tiers[1];
    EXPECT_NEAR(bus.bandwidth / result.reference_bandwidth, 0.55, 0.05);
    EXPECT_NEAR(cell.bandwidth / result.reference_bandwidth, 0.75, 0.05);

    ASSERT_EQ(bus.groups.size(), 4u);
    EXPECT_EQ(bus.groups[0], (std::vector<CoreId>{0, 1, 2, 3}));
    ASSERT_EQ(cell.groups.size(), 2u);
    EXPECT_EQ(cell.groups[0], (std::vector<CoreId>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(MemOverhead, DunningtonSingleUniformTier) {
    SimPlatform platform(sim::zoo::dunnington());
    MemOverheadOptions options;
    options.array_bytes = 48 * MiB;
    options.only_with_core = 0;  // Fig. 9a plots core-0 pairs
    const MemOverheadResult result = characterize_memory_overhead(platform, options);
    ASSERT_EQ(result.tiers.size(), 1u);
    EXPECT_EQ(result.tiers[0].pairs.size(), 23u);  // every pair collides
    EXPECT_NEAR(result.tiers[0].bandwidth / result.reference_bandwidth, 0.7, 0.04);
}

TEST(MemOverhead, ScalabilityCurvesDecrease) {
    SimPlatform platform(sim::zoo::finis_terrae());
    MemOverheadOptions options;
    options.array_bytes = 36 * MiB;
    const MemOverheadResult result = characterize_memory_overhead(platform, options);
    ASSERT_EQ(result.scalability.size(), 2u);
    for (const MemScalabilityCurve& curve : result.scalability) {
        ASSERT_GE(curve.bandwidth_by_n.size(), 4u);
        for (std::size_t k = 1; k < curve.bandwidth_by_n.size(); ++k)
            EXPECT_LE(curve.bandwidth_by_n[k], curve.bandwidth_by_n[k - 1] * 1.05);
        // The full group saturates the resource well below the reference.
        EXPECT_LT(curve.bandwidth_by_n.back(), 0.5 * result.reference_bandwidth);
    }
}

TEST(MemOverhead, CrossCellPairsReportedButNotTiered) {
    SimPlatform platform(sim::zoo::finis_terrae());
    MemOverheadOptions options;
    options.array_bytes = 36 * MiB;
    options.only_with_core = 0;
    const MemOverheadResult result = characterize_memory_overhead(platform, options);
    // 15 probed pairs; only the 7 same-cell ones carry overhead.
    EXPECT_EQ(result.pairs.size(), 15u);
    std::size_t tiered = 0;
    for (const auto& tier : result.tiers) tiered += tier.pairs.size();
    EXPECT_EQ(tiered, 7u);
}

TEST(MemOverhead, NoDomainsMeansNoTiers) {
    sim::zoo::SyntheticOptions options;
    options.cores = 4;
    const sim::MachineSpec base = sim::zoo::synthetic(options);
    sim::MachineSpec spec = base;
    spec.memory.domains.clear();
    SimPlatform platform(spec);
    MemOverheadOptions mem;
    mem.array_bytes = 16 * MiB;
    const MemOverheadResult result = characterize_memory_overhead(platform, mem);
    EXPECT_TRUE(result.tiers.empty());
    EXPECT_TRUE(result.scalability.empty());
}

TEST(MemOverhead, ReferenceBandwidthMatchesModel) {
    sim::MachineSpec spec = sim::zoo::finis_terrae();
    spec.measurement_jitter = 0.0;
    SimPlatform platform(spec);
    MemOverheadOptions options;
    options.array_bytes = 36 * MiB;
    options.only_with_core = 0;
    const MemOverheadResult result = characterize_memory_overhead(platform, options);
    EXPECT_DOUBLE_EQ(result.reference_bandwidth, spec.memory.single_core_bandwidth);
}

}  // namespace
}  // namespace servet::core
