// Failure injection (DESIGN.md testing strategy): detection must survive
// interference spikes when measured through the robust decorator.
#include "platform/decorators.hpp"

#include <gtest/gtest.h>

#include "core/cache_size.hpp"
#include "core/mem_overhead.hpp"
#include "platform/sim_platform.hpp"
#include "sim/zoo.hpp"

namespace servet {
namespace {

sim::MachineSpec quiet_synthetic() {
    sim::zoo::SyntheticOptions options;
    options.cores = 4;
    options.l1_size = 16 * KiB;
    options.l2_size = 512 * KiB;
    options.jitter = 0.0;
    return sim::zoo::synthetic(options);
}

TEST(FlakyPlatform, InjectsSpikesDeterministically) {
    SimPlatform inner(quiet_synthetic());
    FlakyPlatform flaky_a(inner, 0.3, 10.0, 99);
    SimPlatform inner_b(quiet_synthetic());
    FlakyPlatform flaky_b(inner_b, 0.3, 10.0, 99);
    for (int i = 0; i < 20; ++i) {
        EXPECT_DOUBLE_EQ(flaky_a.traverse_cycles(0, 8 * KiB, 1 * KiB, 1, true),
                         flaky_b.traverse_cycles(0, 8 * KiB, 1 * KiB, 1, true));
    }
    EXPECT_GT(flaky_a.spikes_injected(), 0);
}

TEST(FlakyPlatform, ZeroProbabilityIsTransparent) {
    SimPlatform inner(quiet_synthetic());
    FlakyPlatform flaky(inner, 0.0, 10.0, 7);
    SimPlatform reference(quiet_synthetic());
    EXPECT_DOUBLE_EQ(flaky.traverse_cycles(0, 8 * KiB, 1 * KiB, 2, false),
                     reference.traverse_cycles(0, 8 * KiB, 1 * KiB, 2, false));
    EXPECT_EQ(flaky.spikes_injected(), 0);
}

TEST(FlakyPlatform, SpikesDeflateBandwidth) {
    SimPlatform inner(quiet_synthetic());
    FlakyPlatform flaky(inner, 1.0, 4.0, 7);  // every measurement spiked
    SimPlatform reference(quiet_synthetic());
    EXPECT_NEAR(flaky.copy_bandwidth(0, 16 * MiB) * 4.0,
                reference.copy_bandwidth(0, 16 * MiB), 1e3);
}

TEST(RobustPlatform, MedianRejectsMinoritySpikes) {
    SimPlatform inner(quiet_synthetic());
    FlakyPlatform flaky(inner, 0.2, 20.0, 31);
    RobustPlatform robust(flaky, 5);
    SimPlatform reference(quiet_synthetic());
    const Cycles truth = reference.traverse_cycles(0, 8 * KiB, 1 * KiB, 2, false);
    for (int i = 0; i < 10; ++i) {
        const Cycles measured = robust.traverse_cycles(0, 8 * KiB, 1 * KiB, 2, false);
        EXPECT_NEAR(measured, truth, 0.15 * truth) << "iteration " << i;
    }
}

TEST(RobustPlatform, ConcurrentMediansPerElement) {
    SimPlatform inner(quiet_synthetic());
    RobustPlatform robust(inner, 3);
    const auto cycles = robust.traverse_cycles_concurrent({0, 1}, 8 * KiB, 1 * KiB, 2, false);
    ASSERT_EQ(cycles.size(), 2u);
    EXPECT_GT(cycles[0], 0.0);
}

TEST(RobustPlatform, EngineSelectionSurvivesWrappingAndFork) {
    // The decorator forwards fork() to the inner platform, so a
    // reference-engine SimPlatform stays on the reference engine through
    // a robust wrapper and its replicas — and, by the engine-equivalence
    // contract (docs/simulator.md), measures the same cycles either way.
    SimPlatform batched_inner(quiet_synthetic());
    SimPlatform reference_inner(quiet_synthetic());
    reference_inner.set_engine(SimPlatform::Engine::Reference);
    RobustPlatform batched(batched_inner, 3);
    RobustPlatform reference(reference_inner, 3);

    EXPECT_DOUBLE_EQ(batched.traverse_cycles(0, 64 * KiB, 1 * KiB, 2, false),
                     reference.traverse_cycles(0, 64 * KiB, 1 * KiB, 2, false));

    const auto batched_fork = batched.fork(5, 9);
    const auto reference_fork = reference.fork(5, 9);
    EXPECT_DOUBLE_EQ(batched_fork->traverse_cycles(0, 64 * KiB, 1 * KiB, 2, true),
                     reference_fork->traverse_cycles(0, 64 * KiB, 1 * KiB, 2, true));
}

TEST(RobustPlatform, NamePropagates) {
    SimPlatform inner(quiet_synthetic());
    RobustPlatform robust(inner, 3);
    EXPECT_NE(robust.name().find("robust("), std::string::npos);
    EXPECT_NE(robust.name().find("synthetic"), std::string::npos);
}

TEST(FailureInjection, CacheDetectionSurvivesThroughRobustPlatform) {
    // End to end: 10% of measurements spiked 8x. Raw detection may or may
    // not survive; through a median-of-5 it must recover exact sizes.
    SimPlatform inner(quiet_synthetic());
    FlakyPlatform flaky(inner, 0.10, 8.0, 1234);
    RobustPlatform robust(flaky, 5);

    core::McalibratorOptions mc;
    mc.max_size = 3 * MiB;
    const auto levels = core::detect_cache_levels(robust, mc);
    ASSERT_EQ(levels.size(), 2u);
    EXPECT_EQ(levels[0].size, 16 * KiB);
    EXPECT_EQ(levels[1].size, 512 * KiB);
    EXPECT_GT(flaky.spikes_injected(), 0) << "the fault injector must have fired";
}

TEST(FailureInjection, MemoryTiersSurviveThroughRobustPlatform) {
    sim::MachineSpec spec = sim::zoo::finis_terrae();
    spec.measurement_jitter = 0.0;
    SimPlatform inner(spec);
    FlakyPlatform flaky(inner, 0.10, 5.0, 77);
    RobustPlatform robust(flaky, 5);

    core::MemOverheadOptions options;
    options.array_bytes = 36 * MiB;
    options.only_with_core = 0;
    const auto result = core::characterize_memory_overhead(robust, options);
    ASSERT_EQ(result.tiers.size(), 2u);
    EXPECT_NEAR(result.tiers[0].bandwidth / result.reference_bandwidth, 0.55, 0.05);
}

}  // namespace
}  // namespace servet
