// Smoke tests for the native backend. The CI host may have a single core,
// so these validate plumbing and sanity, not topology results.
#include "platform/native_platform.hpp"

#include <gtest/gtest.h>

namespace servet {
namespace {

TEST(NativePlatform, ReportsHostShape) {
    NativePlatform platform;
    EXPECT_GE(platform.core_count(), 1);
    EXPECT_GE(platform.page_size(), 512u);
    EXPECT_NE(platform.name().find("native:"), std::string::npos);
}

TEST(NativePlatform, CoreCountOverride) {
    NativePlatform platform(1);
    EXPECT_EQ(platform.core_count(), 1);
}

TEST(NativePlatform, TraverseCyclesPositive) {
    NativePlatform platform(1);
    const Cycles c = platform.traverse_cycles(0, 64 * KiB, 1 * KiB, 3, true);
    EXPECT_GT(c, 0.0);
}

TEST(NativePlatform, CacheEffectVisible) {
    NativePlatform platform(1);
    const Cycles small = platform.traverse_cycles(0, 8 * KiB, 1 * KiB, 20, true);
    const Cycles large = platform.traverse_cycles(0, 64 * MiB, 1 * KiB, 2, true);
    EXPECT_GT(large, small);
}

TEST(NativePlatform, ConcurrentAlignedWithCores) {
    NativePlatform platform(1);
    const auto cycles = platform.traverse_cycles_concurrent({0}, 32 * KiB, 1 * KiB, 3, true);
    ASSERT_EQ(cycles.size(), 1u);
    EXPECT_GT(cycles[0], 0.0);
}

TEST(NativePlatform, CopyBandwidthPositive) {
    NativePlatform platform(1);
    const BytesPerSecond bw = platform.copy_bandwidth(0, 4 * MiB);
    EXPECT_GT(bw, 0.0);
}

TEST(NativePlatform, CopyBandwidthConcurrentAligned) {
    NativePlatform platform(1);
    const auto bws = platform.copy_bandwidth_concurrent({0}, 4 * MiB);
    ASSERT_EQ(bws.size(), 1u);
    EXPECT_GT(bws[0], 0.0);
}

}  // namespace
}  // namespace servet
