// Unit tests for the metrics registry: counter/gauge semantics, fixed
// histogram bucketing (inclusive upper bounds plus an overflow bucket),
// the Stable/Volatile split that feeds deterministic exports, and the
// JSON/summary shapes.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

namespace servet::obs {
namespace {

// The registry is process-global; values are zeroed per test (the
// registered names persist, which mirrors production use).
class ObsMetrics : public ::testing::Test {
  protected:
    void SetUp() override { registry().reset_values(); }
    void TearDown() override { registry().reset_values(); }
};

TEST_F(ObsMetrics, CounterAccumulatesAndRegistrationIsIdempotent) {
    Counter& c = counter("test.counter.basic", Stability::Stable);
    c.increment();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    // Re-registering a name returns the same metric, not a fresh zero.
    EXPECT_EQ(&counter("test.counter.basic", Stability::Stable), &c);
    EXPECT_EQ(counter("test.counter.basic", Stability::Stable).value(), 42u);
}

TEST_F(ObsMetrics, GaugeRecordMaxIsAHighWaterMark) {
    Gauge& g = gauge("test.gauge.hwm");
    g.record_max(7);
    g.record_max(3);
    EXPECT_EQ(g.value(), 7u);
    g.set(2);
    EXPECT_EQ(g.value(), 2u);
    g.record_max(9);
    EXPECT_EQ(g.value(), 9u);
}

TEST_F(ObsMetrics, HistogramBucketsOnInclusiveUpperBounds) {
    Histogram& h =
        histogram("test.hist.buckets", Stability::Stable, {10.0, 100.0, 1000.0});
    ASSERT_EQ(h.bounds().size(), 3u);

    h.observe(0.0);     // <= 10        -> bucket 0
    h.observe(10.0);    // == bound     -> bucket 0 (inclusive)
    h.observe(10.5);    //              -> bucket 1
    h.observe(100.0);   //              -> bucket 1
    h.observe(1000.0);  //              -> bucket 2
    h.observe(1001.0);  // past last    -> overflow bucket
    h.observe(1e9);     //              -> overflow bucket

    const std::vector<std::uint64_t> counts = h.counts();
    ASSERT_EQ(counts.size(), 4u);  // bounds + overflow
    EXPECT_EQ(counts[0], 2u);
    EXPECT_EQ(counts[1], 2u);
    EXPECT_EQ(counts[2], 1u);
    EXPECT_EQ(counts[3], 2u);
    EXPECT_EQ(h.total(), 7u);
}

TEST_F(ObsMetrics, ConcurrentCounterAddsDoNotLoseEvents) {
    Counter& c = counter("test.counter.concurrent", Stability::Stable);
    constexpr int kThreads = 4;
    constexpr int kAddsPerThread = 10000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&c] {
            for (int i = 0; i < kAddsPerThread; ++i) c.increment();
        });
    for (std::thread& thread : threads) thread.join();
    EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads * kAddsPerThread));
}

TEST_F(ObsMetrics, StableCountersExcludeVolatileMetrics) {
    counter("test.stable.events", Stability::Stable).add(5);
    counter("test.volatile.submissions", Stability::Volatile).add(5);
    gauge("test.volatile.depth").set(5);

    const auto stable = registry().stable_counters();
    EXPECT_EQ(stable.at("test.stable.events"), 5u);
    EXPECT_FALSE(stable.contains("test.volatile.submissions"));
    EXPECT_FALSE(stable.contains("test.volatile.depth"));
}

TEST_F(ObsMetrics, JsonSplitsDeterministicFromVolatile) {
    counter("test.stable.events", Stability::Stable).add(3);
    counter("test.volatile.submissions", Stability::Volatile).add(4);
    histogram("test.hist.stable", Stability::Stable, {1.0}).observe(0.5);

    const std::string json = registry().to_json();
    EXPECT_NE(json.find("\"deterministic\""), std::string::npos);
    EXPECT_NE(json.find("\"volatile\""), std::string::npos);

    const std::string deterministic = registry().deterministic_json();
    EXPECT_NE(deterministic.find("test.stable.events"), std::string::npos);
    EXPECT_NE(deterministic.find("test.hist.stable"), std::string::npos);
    EXPECT_EQ(deterministic.find("test.volatile.submissions"), std::string::npos);

    // Byte-stable render: the property golden tests rely on.
    EXPECT_EQ(deterministic, registry().deterministic_json());
}

TEST_F(ObsMetrics, StableOnlyJsonOmitsTheVolatileBlockEntirely) {
    counter("test.stable.events", Stability::Stable).add(3);
    counter("test.volatile.submissions", Stability::Volatile).add(4);
    gauge("test.volatile.depth").set(7);

    const std::string json = registry().to_json(/*stable_only=*/true);
    EXPECT_NE(json.find("\"deterministic\""), std::string::npos);
    EXPECT_NE(json.find("test.stable.events"), std::string::npos);
    // Not just empty: the key itself is absent, so the export diffs clean
    // across runs.
    EXPECT_EQ(json.find("\"volatile\""), std::string::npos);
    EXPECT_EQ(json.find("test.volatile.submissions"), std::string::npos);
    EXPECT_EQ(json.find("\"gauges\""), std::string::npos);
    // And it is byte-stable, like the deterministic block it wraps.
    EXPECT_EQ(json, registry().to_json(/*stable_only=*/true));
}

TEST_F(ObsMetrics, SeriesLineTagsTickAndFingerprintAroundStableMetrics) {
    counter("test.stable.events", Stability::Stable).add(3);
    counter("test.volatile.submissions", Stability::Volatile).add(4);

    const std::string line = registry().series_line(12, 0xabcdef0123456789ULL);
    EXPECT_EQ(line.find("{\"tick\": 12, \"fingerprint\": \"abcdef0123456789\", "), 0u);
    EXPECT_NE(line.find("\"metrics\": {"), std::string::npos);
    EXPECT_NE(line.find("test.stable.events"), std::string::npos);
    EXPECT_EQ(line.find("test.volatile.submissions"), std::string::npos);
    // One line of a JSON-lines stream: no embedded newlines.
    EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST_F(ObsMetrics, SeriesLinePrefixSurvivesWorstCaseWidths) {
    counter("test.stable.events", Stability::Stable).add(1);
    // 20-digit tick plus all-ones fingerprint is the widest prefix there
    // is; it must come through unclipped, not silently truncated JSON.
    const std::string line =
        registry().series_line(std::numeric_limits<std::uint64_t>::max(),
                               std::numeric_limits<std::uint64_t>::max());
    EXPECT_EQ(line.find("{\"tick\": 18446744073709551615, "
                        "\"fingerprint\": \"ffffffffffffffff\", \"metrics\": {"),
              0u);
    EXPECT_EQ(line.back(), '}');
}

TEST_F(ObsMetrics, WriteMetricsSeriesJsonAppendsOneLinePerCall) {
    counter("test.stable.events", Stability::Stable).add(1);
    const std::string path = testing::TempDir() + "metrics_series_" +
                             std::to_string(::getpid()) + ".jsonl";
    std::remove(path.c_str());
    ASSERT_TRUE(write_metrics_series_json(path, 0, 0x1111));
    ASSERT_TRUE(write_metrics_series_json(path, 1, 0x1111));
    std::ifstream in(path);
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
        EXPECT_EQ(line.find("{\"tick\": " + std::to_string(lines)), 0u);
        ++lines;
    }
    EXPECT_EQ(lines, 2u);
    std::remove(path.c_str());
}

TEST_F(ObsMetrics, SummaryRowsHaveFourColumnsAndRenderValues) {
    counter("test.stable.events", Stability::Stable).add(5);
    histogram("test.hist.buckets", Stability::Stable, {10.0, 100.0, 1000.0}).observe(50.0);

    bool saw_counter = false;
    bool saw_histogram = false;
    for (const std::vector<std::string>& row : registry().summary_rows()) {
        ASSERT_EQ(row.size(), 4u);
        if (row[0] == "test.stable.events") {
            saw_counter = true;
            EXPECT_EQ(row[1], "counter");
            EXPECT_EQ(row[2], "stable");
            EXPECT_EQ(row[3], "5");
        }
        if (row[0] == "test.hist.buckets") {
            saw_histogram = true;
            EXPECT_EQ(row[1], "histogram");
            EXPECT_NE(row[3].find("n=1"), std::string::npos);
        }
    }
    EXPECT_TRUE(saw_counter);
    EXPECT_TRUE(saw_histogram);
}

TEST_F(ObsMetrics, ResetValuesZeroesButKeepsRegistrations) {
    Counter& c = counter("test.counter.reset", Stability::Stable);
    Histogram& h = histogram("test.hist.reset", Stability::Stable, {1.0});
    c.add(9);
    h.observe(0.5);
    registry().reset_values();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(&counter("test.counter.reset", Stability::Stable), &c);
}

}  // namespace
}  // namespace servet::obs
