#include "sim/prefetcher.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "base/rng.hpp"

namespace servet::sim {
namespace {

PrefetcherSpec default_spec() {
    return {.enabled = true, .max_stride = 512, .trigger_streak = 2, .degree = 2};
}

TEST(Prefetcher, DisabledEmitsNothing) {
    StreamPrefetcher prefetcher({.enabled = false});
    std::uint64_t out[8];
    for (std::uint64_t a = 0; a < 10 * 64; a += 64) EXPECT_EQ(prefetcher.observe(a, out), 0);
}

TEST(Prefetcher, DetectsSequentialStream) {
    StreamPrefetcher prefetcher(default_spec());
    std::uint64_t out[8];
    EXPECT_EQ(prefetcher.observe(0, out), 0);     // no history
    EXPECT_EQ(prefetcher.observe(64, out), 0);    // streak 1
    const int n = prefetcher.observe(128, out);   // streak 2 -> streaming
    ASSERT_EQ(n, 2);
    EXPECT_EQ(out[0], 192u);
    EXPECT_EQ(out[1], 256u);
    EXPECT_TRUE(prefetcher.streaming());
}

TEST(Prefetcher, IgnoresStrideBeyondReach) {
    // Section III-A: "current prefetchers work with strides up to 256 or
    // 512 bytes" — the 1KB probe stride must not trigger it.
    StreamPrefetcher prefetcher(default_spec());
    std::uint64_t out[8];
    for (std::uint64_t a = 0; a < 20 * KiB; a += 1 * KiB)
        EXPECT_EQ(prefetcher.observe(a, out), 0) << "1KB stride must not stream";
    EXPECT_FALSE(prefetcher.streaming());
}

TEST(Prefetcher, TracksExactly512ByteStride) {
    StreamPrefetcher prefetcher(default_spec());
    std::uint64_t out[8];
    (void)prefetcher.observe(0, out);
    (void)prefetcher.observe(512, out);
    const int n = prefetcher.observe(1024, out);
    ASSERT_EQ(n, 2);
    EXPECT_EQ(out[0], 1536u);
}

TEST(Prefetcher, BackwardStreamsWork) {
    StreamPrefetcher prefetcher(default_spec());
    std::uint64_t out[8];
    (void)prefetcher.observe(10 * 64, out);
    (void)prefetcher.observe(9 * 64, out);
    const int n = prefetcher.observe(8 * 64, out);
    ASSERT_EQ(n, 2);
    EXPECT_EQ(out[0], 7u * 64);
}

TEST(Prefetcher, StrideChangeResetsStreak) {
    StreamPrefetcher prefetcher(default_spec());
    std::uint64_t out[8];
    (void)prefetcher.observe(0, out);
    (void)prefetcher.observe(64, out);
    (void)prefetcher.observe(128, out);  // streaming now
    EXPECT_EQ(prefetcher.observe(128 + 256, out), 0);  // stride changed
    EXPECT_FALSE(prefetcher.streaming());
    // The second same-stride delta re-earns the streak (trigger_streak=2).
    EXPECT_GT(prefetcher.observe(128 + 512, out), 0);
}

TEST(Prefetcher, TriggerStreakRespected) {
    StreamPrefetcher prefetcher({.enabled = true, .max_stride = 512,
                                 .trigger_streak = 4, .degree = 1});
    std::uint64_t out[8];
    (void)prefetcher.observe(0, out);
    EXPECT_EQ(prefetcher.observe(64, out), 0);
    EXPECT_EQ(prefetcher.observe(128, out), 0);
    EXPECT_EQ(prefetcher.observe(192, out), 0);
    EXPECT_EQ(prefetcher.observe(256, out), 1);  // 4th same-stride repeat
}

TEST(Prefetcher, ResetClearsState) {
    StreamPrefetcher prefetcher(default_spec());
    std::uint64_t out[8];
    (void)prefetcher.observe(0, out);
    (void)prefetcher.observe(64, out);
    (void)prefetcher.observe(128, out);
    prefetcher.reset();
    EXPECT_FALSE(prefetcher.streaming());
    EXPECT_EQ(prefetcher.observe(192, out), 0);  // history gone
}

struct RunSchedule {
    std::uint64_t start;
    std::int64_t stride;
    std::uint64_t count;
};

/// The batched engine's correctness hinges on plan_run() being a drop-in
/// for per-access observe(). Replay the same run schedule through two
/// prefetchers — one per access, one per run — and require identical
/// emission decisions, identical prefetch addresses, and identical state.
void expect_plan_matches_observe(const PrefetcherSpec& spec,
                                 const std::vector<RunSchedule>& schedule) {
    StreamPrefetcher scalar(spec);
    StreamPrefetcher planned(spec);
    std::uint64_t out[8];
    ASSERT_LE(spec.degree, 8);
    for (std::size_t r = 0; r < schedule.size(); ++r) {
        const RunSchedule& run = schedule[r];
        const StreamRunPlan plan = planned.plan_run(run.start, run.stride, run.count);
        std::uint64_t addr = run.start;
        for (std::uint64_t k = 0; k < run.count; ++k) {
            const int n = scalar.observe(addr, out);
            const bool plan_emits = (k == 0) ? plan.first_emits : k >= plan.emit_from;
            ASSERT_EQ(n > 0, plan_emits) << "run " << r << " access " << k;
            if (n > 0) {
                ASSERT_EQ(n, spec.degree);
                const std::int64_t plan_stride = (k == 0) ? plan.first_stride : plan.emit_stride;
                for (int d = 1; d <= n; ++d)
                    ASSERT_EQ(out[d - 1],
                              static_cast<std::uint64_t>(static_cast<std::int64_t>(addr) +
                                                         d * plan_stride))
                        << "run " << r << " access " << k << " prefetch " << d;
            }
            addr += static_cast<std::uint64_t>(run.stride);
        }
        ASSERT_EQ(scalar.streaming(), planned.streaming()) << "after run " << r;
    }
}

TEST(PrefetcherPlan, MatchesObserveOnBenchmarkShapes) {
    // The engine's actual workload: a line-granular init sweep followed by
    // repeated probe passes (boundary step jumps back to base each pass).
    for (Bytes probe_stride : {64ull, 128ull, 256ull, 512ull, 1024ull}) {
        std::vector<RunSchedule> schedule;
        schedule.push_back({1 << 20, 64, 128});  // init: 8KB of lines
        for (int pass = 0; pass < 3; ++pass)
            schedule.push_back({1 << 20, static_cast<std::int64_t>(probe_stride),
                                (8 * KiB) / probe_stride});
        expect_plan_matches_observe(
            {.enabled = true, .max_stride = 512, .trigger_streak = 2, .degree = 2}, schedule);
    }
}

TEST(PrefetcherPlan, MatchesObserveAcrossTriggerAndDegree) {
    for (int trigger : {0, 1, 2, 5}) {
        for (int degree : {1, 3, 8}) {
            const PrefetcherSpec spec{.enabled = true, .max_stride = 512,
                                      .trigger_streak = trigger, .degree = degree};
            expect_plan_matches_observe(spec, {{4096, 64, 10},
                                               {4096, -64, 10},    // backward
                                               {4096, 640, 5},     // untrackable
                                               {4096, 512, 7},     // boundary stride
                                               {4096, 512, 1},     // single access
                                               {4608, 512, 6}});   // continues the stream
        }
    }
}

TEST(PrefetcherPlan, DisabledPlanIsNoOp) {
    StreamPrefetcher planned({.enabled = false});
    const StreamRunPlan plan = planned.plan_run(0, 64, 100);
    EXPECT_FALSE(plan.first_emits);
    EXPECT_GE(plan.emit_from, 100u);
    expect_plan_matches_observe({.enabled = false}, {{0, 64, 100}, {0, 64, 100}});
}

TEST(PrefetcherPlan, MatchesObserveOnRandomSchedules) {
    Rng rng(0x9f1a2ULL);
    for (int iteration = 0; iteration < 200; ++iteration) {
        PrefetcherSpec spec;
        spec.enabled = rng.next_below(8) != 0;
        spec.max_stride = 64ull << rng.next_below(5);  // 64..1024
        spec.trigger_streak = static_cast<int>(rng.next_below(5));
        spec.degree = 1 + static_cast<int>(rng.next_below(8));
        std::vector<RunSchedule> schedule;
        const std::size_t n_runs = 1 + rng.next_below(6);
        for (std::size_t r = 0; r < n_runs; ++r) {
            const std::uint64_t start = 4096 + 64 * rng.next_below(1024);
            std::int64_t stride =
                static_cast<std::int64_t>(64ull << rng.next_below(6));  // 64..2048
            if (rng.next_below(2) == 0) stride = -stride;
            schedule.push_back({start, stride, 1 + rng.next_below(40)});
        }
        expect_plan_matches_observe(spec, schedule);
    }
}

TEST(Prefetcher, DegreeControlsFanout) {
    StreamPrefetcher prefetcher({.enabled = true, .max_stride = 512,
                                 .trigger_streak = 2, .degree = 4});
    std::uint64_t out[8];
    (void)prefetcher.observe(0, out);
    (void)prefetcher.observe(64, out);
    const int n = prefetcher.observe(128, out);
    ASSERT_EQ(n, 4);
    for (int d = 0; d < 4; ++d) EXPECT_EQ(out[d], 128u + 64u * static_cast<unsigned>(d + 1));
}

}  // namespace
}  // namespace servet::sim
