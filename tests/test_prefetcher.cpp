#include "sim/prefetcher.hpp"

#include <gtest/gtest.h>

namespace servet::sim {
namespace {

PrefetcherSpec default_spec() {
    return {.enabled = true, .max_stride = 512, .trigger_streak = 2, .degree = 2};
}

TEST(Prefetcher, DisabledEmitsNothing) {
    StreamPrefetcher prefetcher({.enabled = false});
    std::uint64_t out[8];
    for (std::uint64_t a = 0; a < 10 * 64; a += 64) EXPECT_EQ(prefetcher.observe(a, out), 0);
}

TEST(Prefetcher, DetectsSequentialStream) {
    StreamPrefetcher prefetcher(default_spec());
    std::uint64_t out[8];
    EXPECT_EQ(prefetcher.observe(0, out), 0);     // no history
    EXPECT_EQ(prefetcher.observe(64, out), 0);    // streak 1
    const int n = prefetcher.observe(128, out);   // streak 2 -> streaming
    ASSERT_EQ(n, 2);
    EXPECT_EQ(out[0], 192u);
    EXPECT_EQ(out[1], 256u);
    EXPECT_TRUE(prefetcher.streaming());
}

TEST(Prefetcher, IgnoresStrideBeyondReach) {
    // Section III-A: "current prefetchers work with strides up to 256 or
    // 512 bytes" — the 1KB probe stride must not trigger it.
    StreamPrefetcher prefetcher(default_spec());
    std::uint64_t out[8];
    for (std::uint64_t a = 0; a < 20 * KiB; a += 1 * KiB)
        EXPECT_EQ(prefetcher.observe(a, out), 0) << "1KB stride must not stream";
    EXPECT_FALSE(prefetcher.streaming());
}

TEST(Prefetcher, TracksExactly512ByteStride) {
    StreamPrefetcher prefetcher(default_spec());
    std::uint64_t out[8];
    (void)prefetcher.observe(0, out);
    (void)prefetcher.observe(512, out);
    const int n = prefetcher.observe(1024, out);
    ASSERT_EQ(n, 2);
    EXPECT_EQ(out[0], 1536u);
}

TEST(Prefetcher, BackwardStreamsWork) {
    StreamPrefetcher prefetcher(default_spec());
    std::uint64_t out[8];
    (void)prefetcher.observe(10 * 64, out);
    (void)prefetcher.observe(9 * 64, out);
    const int n = prefetcher.observe(8 * 64, out);
    ASSERT_EQ(n, 2);
    EXPECT_EQ(out[0], 7u * 64);
}

TEST(Prefetcher, StrideChangeResetsStreak) {
    StreamPrefetcher prefetcher(default_spec());
    std::uint64_t out[8];
    (void)prefetcher.observe(0, out);
    (void)prefetcher.observe(64, out);
    (void)prefetcher.observe(128, out);  // streaming now
    EXPECT_EQ(prefetcher.observe(128 + 256, out), 0);  // stride changed
    EXPECT_FALSE(prefetcher.streaming());
    // The second same-stride delta re-earns the streak (trigger_streak=2).
    EXPECT_GT(prefetcher.observe(128 + 512, out), 0);
}

TEST(Prefetcher, TriggerStreakRespected) {
    StreamPrefetcher prefetcher({.enabled = true, .max_stride = 512,
                                 .trigger_streak = 4, .degree = 1});
    std::uint64_t out[8];
    (void)prefetcher.observe(0, out);
    EXPECT_EQ(prefetcher.observe(64, out), 0);
    EXPECT_EQ(prefetcher.observe(128, out), 0);
    EXPECT_EQ(prefetcher.observe(192, out), 0);
    EXPECT_EQ(prefetcher.observe(256, out), 1);  // 4th same-stride repeat
}

TEST(Prefetcher, ResetClearsState) {
    StreamPrefetcher prefetcher(default_spec());
    std::uint64_t out[8];
    (void)prefetcher.observe(0, out);
    (void)prefetcher.observe(64, out);
    (void)prefetcher.observe(128, out);
    prefetcher.reset();
    EXPECT_FALSE(prefetcher.streaming());
    EXPECT_EQ(prefetcher.observe(192, out), 0);  // history gone
}

TEST(Prefetcher, DegreeControlsFanout) {
    StreamPrefetcher prefetcher({.enabled = true, .max_stride = 512,
                                 .trigger_streak = 2, .degree = 4});
    std::uint64_t out[8];
    (void)prefetcher.observe(0, out);
    (void)prefetcher.observe(64, out);
    const int n = prefetcher.observe(128, out);
    ASSERT_EQ(n, 4);
    for (int d = 0; d < 4; ++d) EXPECT_EQ(out[d], 128u + 64u * static_cast<unsigned>(d + 1));
}

}  // namespace
}  // namespace servet::sim
