// Randomized end-to-end property: for machines drawn at random from the
// plausible configuration space, the full measurement pipeline must
// recover the ground truth — sizes exactly, sharing topology exactly.
// This is the generalization claim behind the paper's four-machine
// validation, executed over a seeded family instead.
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "core/cache_size.hpp"
#include "core/shared_cache.hpp"
#include "platform/sim_platform.hpp"
#include "sim/zoo.hpp"

namespace servet {
namespace {

sim::zoo::SyntheticOptions random_options(std::uint64_t seed) {
    Rng rng(seed);
    sim::zoo::SyntheticOptions options;
    options.cores = rng.next_below(2) == 0 ? 2 : 4;
    const Bytes l1_choices[] = {16 * KiB, 32 * KiB, 64 * KiB};
    options.l1_size = l1_choices[rng.next_below(3)];
    const Bytes l2_choices[] = {512 * KiB, 1 * MiB, 2 * MiB, 3 * MiB};
    options.l2_size = l2_choices[rng.next_below(4)];
    // 12 ways divide only 3*2^k sizes (way capacity must divide the size).
    if (options.l2_size % (3 * 256 * KiB) == 0) {
        const int assoc_choices[] = {8, 12, 16};
        options.l2_assoc = assoc_choices[rng.next_below(3)];
    } else {
        const int assoc_choices[] = {8, 16};
        options.l2_assoc = assoc_choices[rng.next_below(2)];
    }
    options.l2_sharing = (options.cores == 4 && rng.next_below(2) == 0) ? 2 : 1;
    options.page_policy =
        rng.next_below(3) == 0 ? sim::PagePolicy::Coloring : sim::PagePolicy::Random;
    options.jitter = 0.01;
    options.seed = seed * 977;
    return options;
}

class RandomMachineRecovery : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomMachineRecovery, FullPipelineRecoversGroundTruth) {
    const sim::zoo::SyntheticOptions options = random_options(GetParam());
    const sim::MachineSpec spec = sim::zoo::synthetic(options);
    SimPlatform platform(spec);

    // Cache sizes.
    core::McalibratorOptions mc;
    mc.max_size = 6 * options.l2_size;
    const auto levels = core::detect_cache_levels(platform, mc);
    ASSERT_EQ(levels.size(), 2u)
        << "seed " << GetParam() << ": L1=" << options.l1_size
        << " L2=" << options.l2_size << " K=" << options.l2_assoc;
    EXPECT_EQ(levels[0].size, options.l1_size) << "seed " << GetParam();
    EXPECT_EQ(levels[1].size, options.l2_size) << "seed " << GetParam();

    // Sharing topology.
    const auto shared =
        core::detect_shared_caches(platform, {levels[0].size, levels[1].size});
    ASSERT_EQ(shared.size(), 2u);
    EXPECT_TRUE(shared[0].sharing_pairs.empty()) << "L1 is always private";
    if (options.l2_sharing == 1) {
        EXPECT_TRUE(shared[1].sharing_pairs.empty()) << "seed " << GetParam();
    } else {
        ASSERT_EQ(shared[1].groups.size(), 2u) << "seed " << GetParam();
        EXPECT_EQ(shared[1].groups[0], (std::vector<CoreId>{0, 1}));
        EXPECT_EQ(shared[1].groups[1], (std::vector<CoreId>{2, 3}));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMachineRecovery,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace servet
