#include "sim/interconnect.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/zoo.hpp"

namespace servet::sim {
namespace {

TEST(Interconnect, LatencyIsBasePlusTransfer) {
    const MachineSpec spec = zoo::dunnington();
    InterconnectModel model(spec);
    const CommLayerSpec& layer = model.layer(model.layer_of({0, 12}));
    const Bytes size = 4 * KiB;  // below eager threshold
    EXPECT_DOUBLE_EQ(model.latency({0, 12}, size),
                     layer.base_latency + static_cast<double>(size) / layer.bandwidth);
}

TEST(Interconnect, RendezvousKicksInAboveEagerThreshold) {
    const MachineSpec spec = zoo::finis_terrae(2);
    InterconnectModel model(spec);
    const CommLayerSpec& ib = model.layer(model.layer_of({0, 16}));
    const Seconds below = model.latency({0, 16}, ib.eager_threshold);
    const Seconds above = model.latency({0, 16}, ib.eager_threshold + 1);
    // The one extra byte also costs 1/bandwidth; allow for it.
    EXPECT_NEAR(above - below, ib.rendezvous_extra, 1.0 / ib.bandwidth + 1e-12);
}

TEST(Interconnect, LatencyMonotoneInSize) {
    const MachineSpec spec = zoo::dunnington();
    InterconnectModel model(spec);
    Seconds previous = 0;
    for (Bytes size = 1 * KiB; size <= 4 * MiB; size *= 2) {
        const Seconds t = model.latency({0, 3}, size);
        EXPECT_GT(t, previous);
        previous = t;
    }
}

TEST(Interconnect, LayerOrderingMatchesHierarchy) {
    // Shared-L2 < intra-processor < inter-processor at any size.
    const MachineSpec spec = zoo::dunnington();
    InterconnectModel model(spec);
    for (Bytes size : {1 * KiB, 32 * KiB, 1 * MiB}) {
        EXPECT_LT(model.latency({0, 12}, size), model.latency({0, 1}, size));
        EXPECT_LT(model.latency({0, 1}, size), model.latency({0, 3}, size));
    }
}

TEST(Interconnect, ConcurrencyPenaltyIsPowerLaw) {
    const MachineSpec spec = zoo::finis_terrae(2);
    InterconnectModel model(spec);
    const CommLayerSpec& ib = model.layer(model.layer_of({0, 16}));
    const Seconds isolated = model.latency({0, 16}, 16 * KiB);
    for (int n : {1, 2, 8, 32}) {
        EXPECT_NEAR(model.latency_concurrent({0, 16}, 16 * KiB, n),
                    isolated * std::pow(n, ib.concurrency_exponent), 1e-12);
    }
}

TEST(Interconnect, PaperSevenTimesAt32Messages) {
    // Section IV-D: "a message sent through the InfiniBand network ...
    // when there are other 31 messages is 7 times slower".
    const MachineSpec spec = zoo::finis_terrae(4);
    InterconnectModel model(spec);
    const Seconds isolated = model.latency({0, 16}, 16 * KiB);
    const Seconds crowded = model.latency_concurrent({0, 16}, 16 * KiB, 32);
    EXPECT_NEAR(crowded / isolated, 7.0, 0.3);
}

TEST(Interconnect, IntraNodeTwiceAsFastAsInterNode) {
    // Section IV-D: FT intra-node ~2x faster than inter-node at the L1
    // (16KB) probe size.
    const MachineSpec spec = zoo::finis_terrae(2);
    InterconnectModel model(spec);
    const double ratio = model.latency({0, 16}, 16 * KiB) / model.latency({0, 1}, 16 * KiB);
    EXPECT_NEAR(ratio, 2.0, 0.25);
}

TEST(InterconnectDeath, BadConcurrency) {
    const MachineSpec spec = zoo::dunnington();
    InterconnectModel model(spec);
    EXPECT_DEATH((void)model.latency_concurrent({0, 1}, KiB, 0), "");
}

}  // namespace
}  // namespace servet::sim
