// Stress and edge-case coverage for the servet::exec substrate: the
// cooperative thread pool (exception propagation, nesting, degenerate
// sizes), the task DAG (ordering, transitive failure skips), the memo
// cache (exact round-trips, first-store-wins), and the stable hashing
// that seeds measurement tasks.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "base/hash.hpp"
#include "exec/dag.hpp"
#include "exec/memo_cache.hpp"
#include "exec/pool.hpp"
#include "exec/task_key.hpp"

namespace servet::exec {
namespace {

TEST(ThreadPool, ClampsWorkerCount) {
    EXPECT_EQ(ThreadPool(0).thread_count(), 1);
    EXPECT_EQ(ThreadPool(-3).thread_count(), 1);
    EXPECT_EQ(ThreadPool(3).thread_count(), 3);
}

TEST(ThreadPool, ParallelForZeroTasksReturnsImmediately) {
    ThreadPool pool(2);
    std::atomic<int> calls{0};
    pool.parallel_for(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ParallelForSingleTaskRunsOnce) {
    ThreadPool pool(2);
    std::atomic<int> calls{0};
    pool.parallel_for(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        ++calls;
    });
    EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, EveryIterationRunsExactlyOnce) {
    ThreadPool pool(4);
    constexpr std::size_t kN = 10000;
    std::vector<std::atomic<int>> counts(kN);
    pool.parallel_for(kN, [&](std::size_t i) { ++counts[i]; });
    for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(counts[i].load(), 1) << i;
}

TEST(ThreadPool, SingleWorkerPoolCompletes) {
    ThreadPool pool(1);
    std::atomic<int> calls{0};
    pool.parallel_for(100, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 100);
}

TEST(ThreadPool, SmallestIndexExceptionWins) {
    ThreadPool pool(4);
    const auto body = [](std::size_t i) {
        if (i == 3 || i == 7) throw std::runtime_error(std::to_string(i));
    };
    // Iterations are claimed in index order, so index 3 is always claimed
    // and its exception must be the one rethrown, regardless of timing.
    try {
        pool.parallel_for(64, body);
        FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "3");
    }
}

TEST(ThreadPool, ExceptionAbandonsUnclaimedIterations) {
    ThreadPool pool(2);
    constexpr std::size_t kN = 1000000;
    std::atomic<std::size_t> executed{0};
    EXPECT_THROW(pool.parallel_for(kN,
                                   [&](std::size_t i) {
                                       if (i == 0) throw std::runtime_error("boom");
                                       ++executed;
                                   }),
                 std::runtime_error);
    EXPECT_LT(executed.load(), kN - 1);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
    ThreadPool pool(2);
    std::atomic<int> calls{0};
    pool.parallel_for(4, [&](std::size_t) {
        pool.parallel_for(8, [&](std::size_t) { ++calls; });
    });
    EXPECT_EQ(calls.load(), 32);
}

TEST(ThreadPool, DeeplyNestedParallelFor) {
    ThreadPool pool(1);
    std::atomic<int> calls{0};
    pool.parallel_for(2, [&](std::size_t) {
        pool.parallel_for(2, [&](std::size_t) {
            pool.parallel_for(2, [&](std::size_t) { ++calls; });
        });
    });
    EXPECT_EQ(calls.load(), 8);
}

TEST(ThreadPool, SubmittedTasksRun) {
    std::atomic<int> calls{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 16; ++i)
            pool.submit([&] { ++calls; });
        // Destructor drains the queue before joining.
    }
    EXPECT_EQ(calls.load(), 16);
}

TEST(TaskDag, SerialRunsInInsertionOrderAmongReady) {
    TaskDag dag;
    std::vector<std::string> order;
    dag.add("a", [&] { order.push_back("a"); });
    dag.add("b", [&] { order.push_back("b"); }, {"a"});
    dag.add("c", [&] { order.push_back("c"); });
    dag.run(nullptr);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], "a");
    EXPECT_EQ(order[1], "b");
    EXPECT_EQ(order[2], "c");
}

TEST(TaskDag, ParallelRespectsDependencies) {
    ThreadPool pool(3);
    TaskDag dag;
    std::atomic<bool> a_done{false};
    std::atomic<bool> b_done{false};
    std::atomic<bool> dep_violated{false};
    dag.add("a", [&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        a_done = true;
    });
    dag.add("b", [&] { b_done = true; });
    dag.add("c", [&] {
        if (!a_done || !b_done) dep_violated = true;
    }, {"a", "b"});
    dag.run(&pool);
    EXPECT_TRUE(a_done);
    EXPECT_TRUE(b_done);
    EXPECT_FALSE(dep_violated);
}

TEST(TaskDag, FailureSkipsDependentsTransitively) {
    for (const bool parallel : {false, true}) {
        ThreadPool pool(2);
        TaskDag dag;
        std::atomic<int> ran{0};
        dag.add("a", [] { throw std::runtime_error("a failed"); });
        dag.add("b", [&] { ++ran; }, {"a"});
        dag.add("c", [&] { ++ran; }, {"b"});
        dag.add("d", [&] { ++ran; });
        try {
            dag.run(parallel ? &pool : nullptr);
            FAIL() << "expected the failure to be rethrown (parallel=" << parallel << ")";
        } catch (const std::runtime_error& e) {
            EXPECT_STREQ(e.what(), "a failed");
        }
        EXPECT_EQ(ran.load(), 1) << "only the independent task may run";
    }
}

TEST(TaskDag, FirstFailureByInsertionOrderRethrown) {
    TaskDag dag;
    dag.add("a", [] { throw std::runtime_error("first"); });
    dag.add("b", [] { throw std::runtime_error("second"); });
    try {
        dag.run(nullptr);
        FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "first");
    }
}

TEST(TaskDag, EmptyDagRuns) {
    TaskDag dag;
    dag.run(nullptr);
    EXPECT_EQ(dag.task_count(), 0u);
}

TEST(MemoCache, StoreThenLookup) {
    MemoCache memo;
    EXPECT_FALSE(memo.lookup("k").has_value());
    memo.store("k", {1.5, -2.25});
    const auto hit = memo.lookup("k");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, (std::vector<double>{1.5, -2.25}));
    EXPECT_EQ(memo.hits(), 1u);
    EXPECT_EQ(memo.misses(), 1u);
}

TEST(MemoCache, FirstStoreWins) {
    MemoCache memo;
    memo.store("k", {1.0});
    memo.store("k", {2.0});
    EXPECT_EQ(memo.lookup("k")->front(), 1.0);
    EXPECT_EQ(memo.size(), 1u);
}

TEST(MemoCache, FileRoundTripIsExact) {
    const std::string path = testing::TempDir() + "memo_roundtrip.txt";
    const std::vector<double> gnarly{1.0 / 3.0, 6.62607015e-34, -0.0, 1e300,
                                     0x1.fffffffffffffp+1023};
    {
        MemoCache memo;
        memo.store("b/key", gnarly);
        memo.store("a/key", {42.0});
        ASSERT_TRUE(memo.save_file(path));
    }
    MemoCache loaded;
    ASSERT_EQ(loaded.load_file(path), MemoLoad::Loaded);
    EXPECT_EQ(loaded.size(), 2u);
    const auto hit = loaded.lookup("b/key");
    ASSERT_TRUE(hit.has_value());
    ASSERT_EQ(hit->size(), gnarly.size());
    for (std::size_t i = 0; i < gnarly.size(); ++i) {
        // Byte-exact: compare representations, not approximate values.
        EXPECT_EQ((*hit)[i], gnarly[i]) << i;
    }
    std::remove(path.c_str());
}

TEST(MemoCache, LoadMergeKeepsExistingRecords) {
    const std::string path = testing::TempDir() + "memo_merge.txt";
    {
        MemoCache memo;
        memo.store("shared", {1.0});
        memo.store("fresh", {2.0});
        ASSERT_TRUE(memo.save_file(path));
    }
    MemoCache memo;
    memo.store("shared", {99.0});
    ASSERT_EQ(memo.load_file(path), MemoLoad::Loaded);
    EXPECT_EQ(memo.lookup("shared")->front(), 99.0);  // existing record kept
    EXPECT_EQ(memo.lookup("fresh")->front(), 2.0);
    std::remove(path.c_str());
}

TEST(MemoCache, RejectsMissingAndMalformedFiles) {
    MemoCache memo;
    EXPECT_EQ(memo.load_file("/nonexistent/memo.txt"), MemoLoad::Absent);

    const std::string path = testing::TempDir() + "memo_bad.txt";
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("not-a-memo-header\nk 1 0x1p+0\n", f);
    std::fclose(f);
    EXPECT_EQ(memo.load_file(path), MemoLoad::Malformed);
    EXPECT_EQ(memo.size(), 0u);
    std::remove(path.c_str());
}

TEST(Hashing, Fnv1aIsStableAcrossRuns) {
    // Pinned value: task keys and memo files depend on this never moving.
    EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
    EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
    EXPECT_EQ(fnv1a64("servet"), fnv1a64(std::string("servet")));
}

TEST(Hashing, SeedOfSeparatesNearbyKeys) {
    std::set<std::uint64_t> seeds;
    for (int i = 0; i < 1000; ++i)
        seeds.insert(seed_of("mcal/c0/b" + std::to_string(i)));
    EXPECT_EQ(seeds.size(), 1000u);
}

TEST(Hashing, FingerprintOrderAndValueSensitive) {
    Fingerprint a;
    a.add(1);
    a.add(2);
    Fingerprint b;
    b.add(2);
    b.add(1);
    EXPECT_NE(a.value(), b.value());

    Fingerprint c;
    c.add(1.0);
    Fingerprint d;
    d.add(1.5);
    EXPECT_NE(c.value(), d.value());
}

}  // namespace
}  // namespace servet::exec
