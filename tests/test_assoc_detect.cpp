#include "core/assoc_detect.hpp"

#include <gtest/gtest.h>

#include "platform/sim_platform.hpp"
#include "sim/zoo.hpp"

namespace servet::core {
namespace {

TEST(AssocDetect, ZooMachines) {
    struct Case {
        sim::MachineSpec spec;
        int expected;
    };
    for (const Case& machine : {Case{sim::zoo::dunnington(), 8},
                                Case{sim::zoo::finis_terrae(), 4},
                                Case{sim::zoo::dempsey(), 8},
                                Case{sim::zoo::athlon3200(), 2},
                                Case{sim::zoo::nehalem2s(), 8}}) {
        SimPlatform platform(machine.spec);
        const Bytes l1 = machine.spec.levels[0].geometry.size;
        const auto assoc = detect_l1_associativity(platform, l1);
        ASSERT_TRUE(assoc.has_value()) << machine.spec.name;
        EXPECT_EQ(*assoc, machine.expected) << machine.spec.name;
    }
}

class AssocSweep : public ::testing::TestWithParam<int> {};

TEST_P(AssocSweep, SyntheticRecovery) {
    sim::zoo::SyntheticOptions options;
    options.cores = 1;
    options.l1_size = 32 * KiB;
    options.l1_assoc = GetParam();
    options.jitter = 0.01;
    SimPlatform platform(sim::zoo::synthetic(options));
    const auto assoc = detect_l1_associativity(platform, 32 * KiB);
    ASSERT_TRUE(assoc.has_value());
    EXPECT_EQ(*assoc, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Ways, AssocSweep, ::testing::Values(2, 4, 8, 16));

TEST(AssocDetect, NoStepMeansNullopt) {
    // Probing with a wildly wrong "L1 size" (tiny stride blocks all land
    // in cache): max_ways blocks of 1KB trivially fit a 32KB L1 -> no
    // conflict step within range.
    sim::zoo::SyntheticOptions options;
    options.cores = 1;
    options.l1_size = 32 * KiB;
    options.l1_assoc = 8;
    options.jitter = 0.0;
    SimPlatform platform(sim::zoo::synthetic(options));
    AssocDetectOptions detect;
    detect.max_ways = 8;
    EXPECT_FALSE(detect_l1_associativity(platform, 1 * KiB, detect).has_value());
}

}  // namespace
}  // namespace servet::core
