#include "stats/cluster.hpp"

#include <gtest/gtest.h>

namespace servet::stats {
namespace {

TEST(SimilarityClusterer, ZeroToleranceSeparatesEverything) {
    SimilarityClusterer clusterer(0.0);
    clusterer.add(1.0, 0);
    clusterer.add(1.0001, 1);
    clusterer.add(1.0, 2);
    EXPECT_EQ(clusterer.cluster_count(), 2u);  // the exact duplicate merges
}

TEST(SimilarityClusterer, GroupsWithinTolerance) {
    SimilarityClusterer clusterer(0.10);
    clusterer.add(100.0, 0);
    clusterer.add(105.0, 1);   // within 10% of 100
    clusterer.add(200.0, 2);   // new cluster
    clusterer.add(195.0, 3);   // joins 200
    EXPECT_EQ(clusterer.cluster_count(), 2u);
    EXPECT_EQ(clusterer.clusters()[0].members.size(), 2u);
    EXPECT_EQ(clusterer.clusters()[1].members.size(), 2u);
}

TEST(SimilarityClusterer, RepresentativeIsMean) {
    SimilarityClusterer clusterer(0.10);
    clusterer.add(100.0, 0);
    clusterer.add(104.0, 1);
    EXPECT_DOUBLE_EQ(clusterer.clusters()[0].representative, 102.0);
}

TEST(SimilarityClusterer, PicksClosestCluster) {
    SimilarityClusterer clusterer(0.20);
    clusterer.add(100.0, 0);
    clusterer.add(120.0, 1);  // 20% of 120 covers both; should join 100's cluster? No:
    // |120-100| = 20 <= 0.2*120 = 24, so they merge into one cluster at 110.
    ASSERT_EQ(clusterer.cluster_count(), 1u);
    // A value equidistant-ish must join the *closest* of two clusters.
    SimilarityClusterer c2(0.15);
    c2.add(100.0, 0);
    c2.add(130.0, 1);  // separate (30 > 19.5)
    const std::size_t chosen = c2.add(112.0, 2);  // similar to both; closer to 100
    EXPECT_EQ(chosen, 0u);
}

TEST(SimilarityClusterer, MemberTagsPreserved) {
    SimilarityClusterer clusterer(0.05);
    clusterer.add(10.0, 7);
    clusterer.add(10.2, 42);
    ASSERT_EQ(clusterer.clusters()[0].members.size(), 2u);
    EXPECT_EQ(clusterer.clusters()[0].members[0], 7u);
    EXPECT_EQ(clusterer.clusters()[0].members[1], 42u);
}

TEST(ClusterBySimilarity, AssignsIds) {
    const auto assignment = cluster_by_similarity({1.0, 1.02, 5.0, 5.1, 1.01}, 0.10);
    ASSERT_EQ(assignment.size(), 5u);
    EXPECT_EQ(assignment[0], assignment[1]);
    EXPECT_EQ(assignment[0], assignment[4]);
    EXPECT_EQ(assignment[2], assignment[3]);
    EXPECT_NE(assignment[0], assignment[2]);
}

TEST(ClusterBySimilarity, CommLayerScenario) {
    // The Fig. 7 shape: three latency tiers with ±3% noise must yield
    // exactly three layers at 10% tolerance.
    std::vector<double> latencies;
    for (double base : {0.7e-6, 1.0e-6, 1.6e-6}) {
        for (int i = -2; i <= 2; ++i) latencies.push_back(base * (1.0 + 0.015 * i));
    }
    const auto assignment = cluster_by_similarity(latencies, 0.10);
    std::set<std::size_t> ids(assignment.begin(), assignment.end());
    EXPECT_EQ(ids.size(), 3u);
}

TEST(SimilarityClustererDeath, RejectsBadTolerance) {
    EXPECT_DEATH(SimilarityClusterer(-0.1), "tolerance");
    EXPECT_DEATH(SimilarityClusterer(1.0), "tolerance");
}

}  // namespace
}  // namespace servet::stats
