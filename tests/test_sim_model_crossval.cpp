// Cross-validation property: the trace-driven simulator and the analytic
// binomial page-set model were built independently (SetAssocCache + random
// PageMapper vs. expected_miss_rate), yet they describe the same physics.
// For any physically indexed cache, the measured steady-state miss rate of
// the 1KB-stride sweep — averaged over placements — must match the
// size-biased binomial expectation. A regression in either the cache
// model, the page mapper, or the estimator's maths breaks this.
#include <gtest/gtest.h>

#include <tuple>

#include "core/cache_size.hpp"
#include "sim/engine.hpp"
#include "sim/zoo.hpp"

namespace servet {
namespace {

class MissRateCrossValidation
    : public ::testing::TestWithParam<std::tuple<Bytes, int, double>> {};

TEST_P(MissRateCrossValidation, SimMatchesBinomial) {
    const auto [l2_size, assoc, size_factor] = GetParam();

    sim::zoo::SyntheticOptions options;
    options.cores = 1;
    options.l1_size = 16 * KiB;
    options.l1_assoc = 8;
    options.l2_size = l2_size;
    options.l2_assoc = assoc;
    options.jitter = 0.0;
    const sim::MachineSpec spec = sim::zoo::synthetic(options);
    sim::MachineSim machine(spec);

    const auto array_bytes =
        static_cast<Bytes>(size_factor * static_cast<double>(l2_size)) / KiB * KiB;
    const double l2_hit = spec.levels[1].hit_cycles;
    const double memory = spec.memory.latency_cycles;

    // Average the measured miss rate over independent placements.
    const int repeats = 12;
    double measured = 0;
    for (int r = 0; r < repeats; ++r) {
        const Cycles c = machine.traverse_one(0, array_bytes, 1 * KiB, 3);
        measured += (c - l2_hit) / (memory - l2_hit);
    }
    measured /= repeats;

    const double p = static_cast<double>(assoc) * 4096.0 / static_cast<double>(l2_size);
    const double predicted = core::expected_miss_rate(
        core::MissRateModel::SizeBiased,
        static_cast<std::int64_t>(array_bytes / (4 * KiB)), p, assoc);

    EXPECT_NEAR(measured, predicted, 0.05)
        << "CS=" << l2_size << " K=" << assoc << " size=" << array_bytes;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MissRateCrossValidation,
    ::testing::Combine(::testing::Values(512 * KiB, 1 * MiB, 2 * MiB),
                       ::testing::Values(4, 8, 16),
                       ::testing::Values(0.75, 1.0, 1.5, 2.5)));

}  // namespace
}  // namespace servet
