#include "autotune/kernels/kernels.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "autotune/search/strategy.hpp"
#include "core/measure.hpp"
#include "msg/sim_network.hpp"
#include "platform/sim_platform.hpp"
#include "sim/zoo.hpp"

namespace servet::autotune::kernels {
namespace {

/// A dempsey-shaped profile by hand — the kernels only consult the cache
/// ladder and the memory curves, so tests need not run the suite.
core::Profile dempsey_like_profile() {
    core::Profile profile;
    profile.machine = "test-dempsey";
    profile.cores = 2;
    profile.caches = {{16 * KiB, "peak", {}}, {2 * MiB, "peak", {}}};
    profile.memory.reference_bandwidth = 3e9;
    core::ProfileMemoryTier tier;
    tier.bandwidth = 3e9;
    tier.scalability = {1.0, 1.6};
    profile.memory.tiers = {tier};
    return profile;
}

TEST(Kernels, RegistryBuildsEveryKernelAndRejectsUnknown) {
    const auto profile = dempsey_like_profile();
    ASSERT_EQ(kernel_names().size(), 4u);
    for (const std::string& name : kernel_names()) {
        const auto kernel = make_kernel(name, profile, 2);
        ASSERT_NE(kernel, nullptr) << name;
        EXPECT_EQ(kernel->name(), name);
        EXPECT_TRUE(kernel->measurable());
        EXPECT_FALSE(kernel->space().enumerate().empty()) << name;
    }
    EXPECT_EQ(make_kernel("fft", profile, 2), nullptr);
}

TEST(Kernels, AnalyticCostPricesEveryAdmittedPoint) {
    const auto profile = dempsey_like_profile();
    for (const std::string& name : kernel_names()) {
        const auto kernel = make_kernel(name, profile, 2);
        ASSERT_NE(kernel, nullptr);
        for (const search::Config& config : kernel->space().enumerate()) {
            const auto cost = kernel->analytic_cost(config);
            ASSERT_TRUE(cost.has_value()) << name << " " << config.key();
            EXPECT_GT(*cost, 0.0) << name << " " << config.key();
        }
    }
}

TEST(Kernels, EmptyProfileMakesAnalyticCostUnavailable) {
    const core::Profile empty;
    for (const std::string& name : kernel_names()) {
        const auto kernel = make_kernel(name, empty, 2);
        ASSERT_NE(kernel, nullptr);
        const auto points = kernel->space().enumerate();
        ASSERT_FALSE(points.empty());
        EXPECT_FALSE(kernel->analytic_cost(points.front()).has_value()) << name;
    }
}

TEST(Kernels, StencilConstraintPrunesDegenerateSlivers) {
    const auto profile = dempsey_like_profile();
    const auto kernel = make_stencil(profile, 2);
    const auto& space = kernel->space();
    EXPECT_FALSE(space.admits(space.make({8, 128})));   // aspect 1:16
    EXPECT_FALSE(space.admits(space.make({128, 8})));
    EXPECT_TRUE(space.admits(space.make({16, 128})));   // aspect 1:8 allowed
    EXPECT_TRUE(space.admits(space.make({64, 64})));
}

TEST(Kernels, ReductionCoreAxisIsBoundedByMaxCores) {
    const auto profile = dempsey_like_profile();
    const auto kernel = make_reduction(profile, 2);
    const auto& space = kernel->space();
    const auto index = space.axis_index("cores");
    ASSERT_TRUE(index.has_value());
    EXPECT_EQ(space.axis(*index).hi, 2);
    // A degenerate single-core machine still yields a searchable space.
    const auto solo = make_reduction(profile, 1);
    EXPECT_FALSE(solo->space().enumerate().empty());
}

TEST(Kernels, MeasuredSearchOnSimFindsAnInteriorOptimum) {
    const auto profile = dempsey_like_profile();
    const sim::MachineSpec spec = sim::zoo::dempsey();
    SimPlatform platform(spec);
    msg::SimNetwork network(spec);
    core::MeasureEngine engine(&platform, &network, nullptr, nullptr);

    const auto kernel = make_stencil(profile, platform.core_count());
    search::SearchOptions options;
    options.engine = &engine;
    const auto exhaustive = search::run_search(*kernel, options);
    ASSERT_TRUE(exhaustive.has_value());
    EXPECT_EQ(exhaustive->evals, exhaustive->space_size);
    EXPECT_GT(exhaustive->best_cost, 0.0);
    for (const search::Evaluation& eval : exhaustive->trace) EXPECT_TRUE(eval.measured);

    // The measured optimum on the dempsey model keeps its working set
    // inside a cache level: strictly smaller than the largest admitted
    // tile, which spills.
    const auto ti = exhaustive->best.at("tile_i");
    const auto tj = exhaustive->best.at("tile_j");
    EXPECT_LT(ti * tj, 128 * 128);
}

TEST(Kernels, GuidedPriorAgreesWithMeasurementOnStencil) {
    // The convergence bench pins this quantitatively; the test pins the
    // qualitative contract so a kernel-model regression fails fast here.
    const auto profile = dempsey_like_profile();
    const sim::MachineSpec spec = sim::zoo::dempsey();
    SimPlatform platform(spec);
    core::MeasureEngine engine(&platform, nullptr, nullptr, nullptr);

    const auto kernel = make_stencil(profile, platform.core_count());
    search::SearchOptions options;
    options.engine = &engine;
    const auto exhaustive = search::run_search(*kernel, options);
    ASSERT_TRUE(exhaustive.has_value());

    options.strategy = search::Strategy::Guided;
    const auto guided = search::run_search(*kernel, options);
    ASSERT_TRUE(guided.has_value());
    EXPECT_EQ(guided->best_cost, exhaustive->best_cost);
    EXPECT_LE(guided->evals_to_best, exhaustive->space_size / 2);
}

}  // namespace
}  // namespace servet::autotune::kernels
