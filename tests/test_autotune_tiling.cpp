#include "autotune/tiling.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "autotune/search/strategy.hpp"

namespace servet::autotune {
namespace {

core::Profile profile_with_caches() {
    core::Profile profile;
    profile.cores = 1;
    profile.caches = {{32 * KiB, "peak", {}},
                      {3 * MiB, "probabilistic", {}},
                      {12 * MiB, "probabilistic", {}}};
    return profile;
}

TEST(MaxSquareTile, FitsBudgetExactly) {
    // 3 double tiles in 75% of 32KB: budget 8192B/tile -> 1024 elements ->
    // 32x32.
    TilingRequest request;
    EXPECT_EQ(max_square_tile(32 * KiB, request), 32);
}

TEST(MaxSquareTile, ScalesWithCache) {
    TilingRequest request;
    const int small = max_square_tile(32 * KiB, request);
    const int big = max_square_tile(12 * MiB, request);
    // 384x capacity -> ~sqrt(384) ~ 19.6x tile dimension.
    EXPECT_NEAR(static_cast<double>(big) / small, 19.6, 0.7);
}

TEST(MaxSquareTile, ElementSizeMatters) {
    TilingRequest doubles;
    TilingRequest floats;
    floats.element_bytes = 4;
    EXPECT_NEAR(static_cast<double>(max_square_tile(1 * MiB, floats)) /
                    max_square_tile(1 * MiB, doubles),
                std::sqrt(2.0), 0.05);
}

TEST(MaxSquareTile, MoreTilesInFlightShrinkTile) {
    TilingRequest two;
    two.tiles_in_flight = 2;
    TilingRequest eight;
    eight.tiles_in_flight = 8;
    EXPECT_GT(max_square_tile(1 * MiB, two), max_square_tile(1 * MiB, eight));
}

TEST(MaxSquareTile, NeverBelowOne) {
    TilingRequest request;
    request.element_bytes = 1 << 20;
    EXPECT_EQ(max_square_tile(64, request), 1);
}

TEST(PlanTiles, OneChoicePerLevel) {
    const auto plan = plan_tiles(profile_with_caches());
    ASSERT_EQ(plan.size(), 3u);
    for (std::size_t level = 0; level < 3; ++level) {
        EXPECT_EQ(plan[level].level, level);
        EXPECT_GT(plan[level].tile_elements, 0);
    }
    EXPECT_LT(plan[0].tile_elements, plan[1].tile_elements);
    EXPECT_LT(plan[1].tile_elements, plan[2].tile_elements);
}

TEST(PlanTiles, FootprintWithinBudget) {
    TilingRequest request;
    const auto plan = plan_tiles(profile_with_caches(), request);
    for (const TileChoice& choice : plan) {
        EXPECT_LE(static_cast<double>(choice.tile_bytes) * request.tiles_in_flight,
                  request.occupancy * static_cast<double>(choice.cache_size) + 1.0);
    }
}

TEST(PlanTiles, EmptyProfileEmptyPlan) {
    EXPECT_TRUE(plan_tiles(core::Profile{}).empty());
}

TEST(PlanTilesDeath, RejectsBadRequest) {
    TilingRequest request;
    request.occupancy = 0.0;
    EXPECT_DEATH((void)plan_tiles(profile_with_caches(), request), "");
}

TEST(PlanTiles, SkipsUndetectedZeroSizeLevels) {
    // A partial profile may carry a level whose size detection failed and
    // recorded 0; a zero-byte budget has no meaningful tile, so the plan
    // skips it instead of returning a degenerate 1-element tile.
    auto profile = profile_with_caches();
    profile.caches[1].size = 0;
    const auto plan = plan_tiles(profile);
    ASSERT_EQ(plan.size(), 2u);
    EXPECT_EQ(plan[0].level, 0u);
    EXPECT_EQ(plan[1].level, 2u);
    EXPECT_EQ(make_tiling_tunable(profile, 1), nullptr);
}

TEST(TilingTunable, AbsentLevelYieldsNoTunable) {
    EXPECT_EQ(make_tiling_tunable(profile_with_caches(), 7), nullptr);
    EXPECT_EQ(make_tiling_tunable(core::Profile{}, 0), nullptr);
}

TEST(TilingTunable, SearchReproducesMaxSquareTile) {
    const auto profile = profile_with_caches();
    const TilingRequest request;
    const auto tunable = make_tiling_tunable(profile, 0, request);
    ASSERT_NE(tunable, nullptr);
    const auto result = search::run_search(*tunable, {});
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->best.at("tile"), max_square_tile(32 * KiB, request));
}

}  // namespace
}  // namespace servet::autotune
