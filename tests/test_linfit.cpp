#include "stats/linfit.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace servet::stats {
namespace {

TEST(LinearFit, RecoversExactLine) {
    const auto fit = linear_fit({1, 2, 3, 4}, {3.0, 5.0, 7.0, 9.0});
    EXPECT_NEAR(fit.slope, 2.0, 1e-12);
    EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
    EXPECT_NEAR(fit.at(10.0), 21.0, 1e-12);
}

TEST(LinearFit, NoisyDataLowersR2) {
    const auto fit = linear_fit({1, 2, 3, 4, 5}, {2.0, 4.5, 5.5, 8.4, 9.6});
    EXPECT_GT(fit.r2, 0.9);
    EXPECT_LT(fit.r2, 1.0);
    EXPECT_NEAR(fit.slope, 1.9, 0.2);
}

TEST(LinearFit, ConstantYHasZeroSlope) {
    const auto fit = linear_fit({1, 2, 3}, {5.0, 5.0, 5.0});
    EXPECT_NEAR(fit.slope, 0.0, 1e-12);
    EXPECT_NEAR(fit.intercept, 5.0, 1e-12);
    EXPECT_DOUBLE_EQ(fit.r2, 1.0);  // degenerate ss_tot handled
}

TEST(PowerFit, RecoversExactPowerLaw) {
    // The comm scalability model: y = 1.0 * n^0.565 (the FT InfiniBand
    // exponent; 32^0.565 ~ 7).
    std::vector<double> x, y;
    for (int n = 1; n <= 32; ++n) {
        x.push_back(n);
        y.push_back(std::pow(n, 0.565));
    }
    const auto fit = power_fit(x, y);
    EXPECT_NEAR(fit.exponent, 0.565, 1e-10);
    EXPECT_NEAR(fit.scale, 1.0, 1e-10);
    EXPECT_NEAR(fit.at(32.0), 7.08, 0.05);
}

TEST(PowerFit, RecoversScale) {
    const auto fit = power_fit({1, 2, 4, 8}, {3.0, 6.0, 12.0, 24.0});
    EXPECT_NEAR(fit.exponent, 1.0, 1e-10);
    EXPECT_NEAR(fit.scale, 3.0, 1e-10);
}

TEST(LinFitDeath, RejectsBadInput) {
    EXPECT_DEATH((void)linear_fit({1}, {2}), "");
    EXPECT_DEATH((void)linear_fit({1, 1}, {2, 3}), "constant");
    EXPECT_DEATH((void)power_fit({1, -2}, {2, 3}), "positive");
}

}  // namespace
}  // namespace servet::stats
