servet-profile 1
machine = sim:athlon3200
cores = 1
page_size = 4096

[cache 0]
size = 65536
method = peak
groups = 

[cache 1]
size = 524288
method = probabilistic
groups = 

[memory]
reference = 0

[counters]
exec.batches = 1
exec.memo.misses = 9
exec.memo.stores = 9
exec.tasks.requested = 9
exec.tasks.run = 9
phase.cache_size.iterations = 18
phase.cache_size.measurements = 9
sim.cache.L1.evictions = 68632
sim.cache.L1.hits = 66342
sim.cache.L1.misses = 15418
sim.cache.L2.evictions = 28548
sim.cache.L2.hits = 4740
sim.cache.L2.misses = 10678
sim.page.faults = 1040
sim.page.translations = 212504
sim.prefetch.issued = 130744
sim.prefetch.useful = 66535
sim.traverse.calls = 18
