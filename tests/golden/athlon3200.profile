servet-profile 1
machine = sim:athlon3200
cores = 1
page_size = 4096

[cache 0]
size = 65536
method = peak
groups = 

[cache 1]
size = 524288
method = probabilistic
groups = 

[memory]
reference = 0
