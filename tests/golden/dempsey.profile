servet-profile 1
machine = sim:dempsey
cores = 2
page_size = 4096

[cache 0]
size = 16384
method = peak
groups = 

[cache 1]
size = 2097152
method = probabilistic
groups = 

[memory]
reference = 2987737900.210752

[memory-tier 0]
bandwidth = 1985532508.0497618
groups = 0,1
scalability = 2959354723.3118896,1980907611.5513251

[comm-layer 0]
latency = 1.2168432629813091e-05
pairs = 0-1
p2p = 1024:1.8757191746579809e-06;2048:2.5673385928920614e-06;4096:3.9401556784938858e-06;8192:6.6615034281167777e-06;16384:1.2168432629813091e-05;32768:2.2959364946313531e-05;65536:4.6918735207289187e-05;131072:9.0883026617701469e-05;262144:0.00017765754875713092;524288:0.0003541553089364014;1048576:0.0007014585779461372;2097152:0.0013954703572761299;4194304:0.0027920744424286942
slowdown = 1.0005001280484815

[counters]
exec.batches = 6
exec.dag.nodes = 3
exec.memo.hits = 1
exec.memo.misses = 38
exec.memo.stores = 38
exec.tasks.deduped = 1
exec.tasks.requested = 40
exec.tasks.run = 39
msg.bytes = 336158720
msg.concurrent.calls = 1
msg.layer0.transfers = 560
msg.messages = 560
msg.pingpong.calls = 13
phase.cache_size.iterations = 28
phase.cache_size.measurements = 14
phase.comm_costs.measurements = 16
phase.mem_overhead.measurements = 4
phase.shared_caches.measurements = 6
sim.bandwidth.queries = 6
sim.cache.L1.evictions = 1002456
sim.cache.L1.hits = 809028
sim.cache.L1.misses = 201932
sim.cache.L2.evictions = 499410
sim.cache.L2.hits = 43464
sim.cache.L2.misses = 158468
sim.mem.contended_accesses = 1904
sim.page.faults = 12670
sim.page.translations = 2628352
sim.prefetch.issued = 1617392
sim.prefetch.useful = 819509
sim.traverse.calls = 34
