#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace servet::stats {
namespace {

TEST(Median, OddCount) { EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0); }

TEST(Median, EvenCountAveragesCenter) {
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Median, SingleElement) { EXPECT_DOUBLE_EQ(median({7.0}), 7.0); }

TEST(Median, RobustToOutlier) {
    EXPECT_DOUBLE_EQ(median({10.0, 10.0, 10.0, 10.0, 1e9}), 10.0);
}

TEST(Mad, ZeroForConstant) { EXPECT_DOUBLE_EQ(mad({5.0, 5.0, 5.0}), 0.0); }

TEST(Mad, SingleElementIsZero) {
    // One sample has no spread. Consumers (the drift detector) must floor
    // a zero MAD before dividing — this pins the zero they floor.
    EXPECT_DOUBLE_EQ(mad({7.0}), 0.0);
}

TEST(Mad, AllIdenticalIsExactlyZeroNotTiny) {
    // Exactly 0.0, not a rounding residue: the detector compares the
    // scale floor against it with max(), so a tiny positive MAD here
    // would silently narrow the drift band.
    EXPECT_EQ(mad({3.14, 3.14, 3.14, 3.14, 3.14}), 0.0);
}

TEST(Mad, ScalesWithSpread) {
    const double narrow = mad({10.0, 11.0, 12.0, 13.0, 14.0});
    const double wide = mad({10.0, 20.0, 30.0, 40.0, 50.0});
    EXPECT_GT(wide, narrow * 5);
    // Consistency factor: MAD of {1..5} is 1 * 1.4826.
    EXPECT_NEAR(narrow, 1.4826, 1e-9);
}

TEST(Mean, Averages) { EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0, 4.0}), 2.5); }

TEST(MinMax, Work) {
    EXPECT_DOUBLE_EQ(min_value({3.0, -1.0, 2.0}), -1.0);
    EXPECT_DOUBLE_EQ(max_value({3.0, -1.0, 2.0}), 3.0);
}

TEST(Mode, PicksMostFrequent) {
    EXPECT_EQ(mode({1, 2, 2, 3, 2}), 2u);
}

TEST(Mode, TieBreaksToEarliest) {
    // Fig. 3: ties resolve toward the lowest-divergence (earliest) entry.
    EXPECT_EQ(mode({9, 5, 9, 5}), 9u);
    EXPECT_EQ(mode({5, 9, 9, 5}), 5u);
}

TEST(Mode, AllDistinctGivesFirst) { EXPECT_EQ(mode({42, 7, 13}), 42u); }

TEST(SummaryDeath, EmptyInputsAbort) {
    EXPECT_DEATH((void)median({}), "");
    EXPECT_DEATH((void)mad({}), "");
    EXPECT_DEATH((void)mean({}), "");
    EXPECT_DEATH((void)mode({}), "");
}

TEST(SummaryDeath, NonFiniteInputsAbort) {
    // A NaN sample silently poisons nth_element-based medians (NaN
    // comparisons are unordered, so the partition itself is undefined
    // behaviour territory): callers must reject non-finite samples before
    // statistics, and these checks catch the ones that slip through.
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_DEATH((void)median({1.0, nan, 3.0}), "non-finite");
    EXPECT_DEATH((void)median({inf}), "non-finite");
    EXPECT_DEATH((void)median({-inf, 1.0}), "non-finite");
    EXPECT_DEATH((void)mad({1.0, 2.0, nan}), "non-finite");
}

}  // namespace
}  // namespace servet::stats
