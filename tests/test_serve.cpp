// Tests for the profile service: the incremental HTTP parser (torn
// reads, pipelining, hostile framing), the content-addressed store
// (round-trip, HEAD, LRU, concurrent uploads), the request handler
// (routes, conditional GET), and a live ServeServer on an ephemeral
// loopback port.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <stdlib.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "core/profile.hpp"
#include "serve/handlers.hpp"
#include "serve/http.hpp"
#include "serve/server.hpp"
#include "serve/store.hpp"

namespace servet::serve {
namespace {

constexpr const char* kFp = "00000000deadbeef";
constexpr const char* kOpts = "0123456789abcdef";
constexpr const char* kOpts2 = "fedcba9876543210";

std::string profile_body(const std::string& machine = "test-serve") {
    core::Profile profile;
    profile.machine = machine;
    profile.cores = 2;
    profile.page_size = 4096;
    return profile.serialize();
}

// ---- HttpParser ----

TEST(HttpParser, SimpleGet) {
    HttpParser parser;
    ASSERT_EQ(parser.feed("GET /v1/healthz HTTP/1.1\r\nhost: x\r\n\r\n"),
              HttpParser::State::Ready);
    HttpRequest request = parser.take_request();
    EXPECT_EQ(request.method, "GET");
    EXPECT_EQ(request.path, "/v1/healthz");
    EXPECT_TRUE(request.keep_alive);
    ASSERT_NE(request.header("host"), nullptr);
    EXPECT_EQ(*request.header("host"), "x");
}

TEST(HttpParser, TornAcrossSingleBytes) {
    // The worst non-blocking read pattern: one byte per feed.
    const std::string wire =
        "PUT /v1/profile/a HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
    HttpParser parser;
    for (const char c : wire) (void)parser.feed(std::string_view(&c, 1));
    ASSERT_TRUE(parser.has_request());
    HttpRequest request = parser.take_request();
    EXPECT_EQ(request.method, "PUT");
    EXPECT_EQ(request.body, "body");
    EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(HttpParser, PipelinedRequestsPopInOrder) {
    HttpParser parser;
    (void)parser.feed("GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n"
                      "PUT /c HTTP/1.1\r\ncontent-length: 2\r\n\r\nhi");
    ASSERT_TRUE(parser.has_request());
    EXPECT_EQ(parser.take_request().path, "/a");
    EXPECT_EQ(parser.take_request().path, "/b");
    HttpRequest third = parser.take_request();
    EXPECT_EQ(third.path, "/c");
    EXPECT_EQ(third.body, "hi");
    EXPECT_FALSE(parser.has_request());
}

TEST(HttpParser, HeaderNamesLowercasedAndTrimmed) {
    HttpParser parser;
    (void)parser.feed("GET / HTTP/1.1\r\nX-Thing:   spaced value \r\n\r\n");
    HttpRequest request = parser.take_request();
    ASSERT_NE(request.header("x-thing"), nullptr);
    EXPECT_EQ(*request.header("x-thing"), "spaced value");
}

TEST(HttpParser, QueryStringSplit) {
    HttpParser parser;
    (void)parser.feed("GET /v1/stats?verbose=1 HTTP/1.1\r\n\r\n");
    HttpRequest request = parser.take_request();
    EXPECT_EQ(request.path, "/v1/stats");
    EXPECT_EQ(request.query, "verbose=1");
}

TEST(HttpParser, BareLfTolerated) {
    HttpParser parser;
    ASSERT_EQ(parser.feed("GET / HTTP/1.1\nhost: x\n\n"), HttpParser::State::Ready);
}

TEST(HttpParser, KeepAliveDefaults) {
    HttpParser parser;
    (void)parser.feed("GET / HTTP/1.0\r\n\r\n");
    EXPECT_FALSE(parser.take_request().keep_alive);  // 1.0 defaults to close
    (void)parser.feed("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
    EXPECT_TRUE(parser.take_request().keep_alive);
    (void)parser.feed("GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
    EXPECT_FALSE(parser.take_request().keep_alive);
}

TEST(HttpParser, MalformedRequestLineIs400) {
    HttpParser parser;
    EXPECT_EQ(parser.feed("NONSENSE\r\n\r\n"), HttpParser::State::Error);
    EXPECT_EQ(parser.error_status(), 400);
    // Errors are sticky: further bytes cannot resynchronize.
    EXPECT_EQ(parser.feed("GET / HTTP/1.1\r\n\r\n"), HttpParser::State::Error);
}

TEST(HttpParser, BadVersionAndTargetAre400) {
    {
        HttpParser parser;
        EXPECT_EQ(parser.feed("GET / HTTP/2.0\r\n\r\n"), HttpParser::State::Error);
        EXPECT_EQ(parser.error_status(), 400);
    }
    {
        HttpParser parser;
        EXPECT_EQ(parser.feed("GET noslash HTTP/1.1\r\n\r\n"), HttpParser::State::Error);
        EXPECT_EQ(parser.error_status(), 400);
    }
}

TEST(HttpParser, MalformedContentLengthIs400) {
    HttpParser parser;
    EXPECT_EQ(parser.feed("PUT / HTTP/1.1\r\ncontent-length: 12x\r\n\r\n"),
              HttpParser::State::Error);
    EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParser, OversizedBodyIs413) {
    HttpParser::Limits limits;
    limits.max_body_bytes = 64;
    HttpParser parser(limits);
    EXPECT_EQ(parser.feed("PUT / HTTP/1.1\r\ncontent-length: 65\r\n\r\n"),
              HttpParser::State::Error);
    EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpParser, OversizedHeadIs431) {
    HttpParser::Limits limits;
    limits.max_head_bytes = 128;
    HttpParser parser(limits);
    const std::string huge =
        "GET / HTTP/1.1\r\nx-padding: " + std::string(256, 'a');
    EXPECT_EQ(parser.feed(huge), HttpParser::State::Error);
    EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParser, TransferEncodingIs501) {
    HttpParser parser;
    EXPECT_EQ(parser.feed("PUT / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n"),
              HttpParser::State::Error);
    EXPECT_EQ(parser.error_status(), 501);
}

TEST(HttpRender, ConditionalGetResponseShape) {
    const std::string ok = render_response(200, "text/plain", "body", "abc");
    EXPECT_NE(ok.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
    EXPECT_NE(ok.find("etag: \"abc\"\r\n"), std::string::npos);
    EXPECT_NE(ok.find("content-length: 4\r\n"), std::string::npos);
    EXPECT_EQ(ok.substr(ok.size() - 4), "body");

    // A 304 advertises length 0 and carries no body bytes.
    const std::string not_modified = render_response(304, "text/plain", "body", "abc");
    EXPECT_NE(not_modified.find("content-length: 0\r\n"), std::string::npos);
    EXPECT_EQ(not_modified.find("\r\n\r\nbody"), std::string::npos);
}

// ---- ProfileStore ----

class StoreTest : public ::testing::Test {
  protected:
    void SetUp() override {
        char pattern[] = "/tmp/servet-store-XXXXXX";
        ASSERT_NE(::mkdtemp(pattern), nullptr);
        root_ = pattern;
    }
    void TearDown() override {
        // The store writes a small fixed layout: <root>/<fp>/{*.profile,HEAD}.
        (void)::system(("rm -rf " + root_).c_str());
    }
    std::string root_;
};

TEST_F(StoreTest, ValidKey) {
    EXPECT_TRUE(ProfileStore::valid_key("0123456789abcdef"));
    EXPECT_FALSE(ProfileStore::valid_key("0123456789ABCDEF"));  // uppercase
    EXPECT_FALSE(ProfileStore::valid_key("0123456789abcde"));   // short
    EXPECT_FALSE(ProfileStore::valid_key("0123456789abcdef0"));  // long
    EXPECT_FALSE(ProfileStore::valid_key("../../../etc/pass"));  // traversal-shaped
    EXPECT_FALSE(ProfileStore::valid_key(""));
}

TEST_F(StoreTest, PutGetRoundTrip) {
    ProfileStore store(root_, 8);
    const std::string body = profile_body();
    ASSERT_EQ(store.put(kFp, kOpts, body), ProfileStore::PutStatus::Stored);
    const auto got = store.get(kFp, kOpts);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, body);
    EXPECT_EQ(store.head(kFp), kOpts);
}

TEST_F(StoreTest, HeadTracksLatestUpload) {
    ProfileStore store(root_, 8);
    ASSERT_EQ(store.put(kFp, kOpts, profile_body("a")), ProfileStore::PutStatus::Stored);
    ASSERT_EQ(store.put(kFp, kOpts2, profile_body("b")), ProfileStore::PutStatus::Stored);
    EXPECT_EQ(store.head(kFp), kOpts2);
    // Both uploads stay addressable.
    EXPECT_TRUE(store.get(kFp, kOpts).has_value());
    EXPECT_TRUE(store.get(kFp, kOpts2).has_value());
}

TEST_F(StoreTest, RejectsBadKeysAndBodies) {
    ProfileStore store(root_, 8);
    EXPECT_EQ(store.put("not-a-key", kOpts, profile_body()),
              ProfileStore::PutStatus::InvalidKey);
    EXPECT_EQ(store.put(kFp, "NOPE", profile_body()),
              ProfileStore::PutStatus::InvalidKey);
    EXPECT_EQ(store.put(kFp, kOpts, "this is not a profile"),
              ProfileStore::PutStatus::InvalidProfile);
    EXPECT_FALSE(store.get(kFp, kOpts).has_value());
    EXPECT_FALSE(store.head(kFp).has_value());
}

TEST_F(StoreTest, ColdReadComesFromDisk) {
    const std::string body = profile_body();
    {
        ProfileStore writer(root_, 8);
        ASSERT_EQ(writer.put(kFp, kOpts, body), ProfileStore::PutStatus::Stored);
    }
    ProfileStore reader(root_, 8);  // fresh instance: empty LRU, empty heads
    EXPECT_EQ(reader.head(kFp), kOpts);
    const auto got = reader.get(kFp, kOpts);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, body);
    EXPECT_EQ(reader.stats().cache_misses, 1u);
    // Second read is a hit.
    EXPECT_TRUE(reader.get(kFp, kOpts).has_value());
    EXPECT_EQ(reader.stats().cache_hits, 1u);
}

TEST_F(StoreTest, LruEvictsBeyondCapacity) {
    ProfileStore store(root_, 2);
    const char* opts[] = {"000000000000000a", "000000000000000b", "000000000000000c"};
    for (const char* o : opts)
        ASSERT_EQ(store.put(kFp, o, profile_body(o)), ProfileStore::PutStatus::Stored);
    EXPECT_GE(store.stats().evictions, 1u);
    // Evicted entries are still served — from disk.
    for (const char* o : opts) EXPECT_TRUE(store.get(kFp, o).has_value());
}

TEST_F(StoreTest, ConcurrentUploadsAllLand) {
    ProfileStore store(root_, 32);
    constexpr int kThreads = 8;
    std::vector<std::thread> threads;
    std::atomic<int> stored{0};
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            char options[17];
            std::snprintf(options, sizeof options, "%016x", 0xa0 + t);
            if (store.put(kFp, options, profile_body(std::to_string(t))) ==
                ProfileStore::PutStatus::Stored)
                stored.fetch_add(1);
        });
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(stored.load(), kThreads);
    for (int t = 0; t < kThreads; ++t) {
        char options[17];
        std::snprintf(options, sizeof options, "%016x", 0xa0 + t);
        EXPECT_TRUE(store.get(kFp, options).has_value()) << options;
    }
    // HEAD names whichever upload won the race — but a complete one.
    const auto head = store.head(kFp);
    ASSERT_TRUE(head.has_value());
    EXPECT_TRUE(ProfileStore::valid_key(*head));
}

// ---- Handler ----

class HandlerTest : public StoreTest {
  protected:
    HttpRequest request_of(const std::string& wire) {
        HttpParser parser;
        (void)parser.feed(wire);
        return parser.take_request();
    }
};

TEST_F(HandlerTest, RoutesAndConditionalGet) {
    ProfileStore store(root_, 8);
    Handler handler(store);
    const std::string body = profile_body();

    Response health = handler.handle(request_of("GET /v1/healthz HTTP/1.1\r\n\r\n"));
    EXPECT_EQ(health.status, 200);

    Response put = handler.handle(request_of(
        std::string("PUT /v1/profile/") + kFp + "/" + kOpts +
        " HTTP/1.1\r\ncontent-length: " + std::to_string(body.size()) + "\r\n\r\n" +
        body));
    EXPECT_EQ(put.status, 201);

    Response get = handler.handle(request_of(
        std::string("GET /v1/profile/") + kFp + " HTTP/1.1\r\n\r\n"));
    EXPECT_EQ(get.status, 200);
    EXPECT_EQ(get.body, body);
    EXPECT_EQ(get.etag, kOpts);

    Response revalidate = handler.handle(request_of(
        std::string("GET /v1/profile/") + kFp + " HTTP/1.1\r\nif-none-match: \"" +
        kOpts + "\"\r\n\r\n"));
    EXPECT_EQ(revalidate.status, 304);
    EXPECT_TRUE(revalidate.body.empty());

    Response stale = handler.handle(request_of(
        std::string("GET /v1/profile/") + kFp + " HTTP/1.1\r\nif-none-match: \"" +
        kOpts2 + "\"\r\n\r\n"));
    EXPECT_EQ(stale.status, 200);
}

TEST_F(HandlerTest, ErrorRoutes) {
    ProfileStore store(root_, 8);
    Handler handler(store);
    EXPECT_EQ(handler.handle(request_of("GET /nope HTTP/1.1\r\n\r\n")).status, 404);
    EXPECT_EQ(handler.handle(request_of("GET /v1/profile/BAD HTTP/1.1\r\n\r\n")).status,
              400);
    EXPECT_EQ(handler.handle(request_of(std::string("GET /v1/profile/") + kFp +
                                        " HTTP/1.1\r\n\r\n")).status,
              404);  // valid key, nothing stored
    EXPECT_EQ(handler.handle(request_of("DELETE /v1/healthz HTTP/1.1\r\n\r\n")).status,
              405);
    EXPECT_EQ(handler.handle(request_of(std::string("PUT /v1/profile/") + kFp +
                                        " HTTP/1.1\r\ncontent-length: 0\r\n\r\n"))
                  .status,
              400);  // PUT without the options segment
    Response stats = handler.handle(request_of("GET /v1/stats HTTP/1.1\r\n\r\n"));
    EXPECT_EQ(stats.status, 200);
    EXPECT_NE(stats.body.find("\"client_errors\""), std::string::npos);
}

// ---- Live server over loopback ----

class ServerTest : public StoreTest {
  protected:
    int connect_to(std::uint16_t port) {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) return -1;
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
            ::close(fd);
            return -1;
        }
        return fd;
    }

    /// Sends `request` on a fresh connection and reads to EOF.
    std::string round_trip(std::uint16_t port, const std::string& request) {
        const int fd = connect_to(port);
        if (fd < 0) return "";
        std::size_t sent = 0;
        while (sent < request.size()) {
            const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                                     MSG_NOSIGNAL);
            if (n <= 0) break;
            sent += static_cast<std::size_t>(n);
        }
        std::string response;
        char chunk[4096];
        while (true) {
            const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
            if (n <= 0) break;
            response.append(chunk, static_cast<std::size_t>(n));
        }
        ::close(fd);
        return response;
    }
};

TEST_F(ServerTest, EndToEndUploadFetchRevalidate) {
    ServeOptions options;
    options.store_dir = root_ + "/store";
    options.threads = 2;
    ServeServer server(options);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    ASSERT_NE(server.port(), 0);

    const std::string body = profile_body();
    const std::string put_response = round_trip(
        server.port(), std::string("PUT /v1/profile/") + kFp + "/" + kOpts +
                           " HTTP/1.1\r\ncontent-length: " +
                           std::to_string(body.size()) +
                           "\r\nconnection: close\r\n\r\n" + body);
    EXPECT_EQ(put_response.compare(0, 12, "HTTP/1.1 201"), 0) << put_response;

    const std::string get_response = round_trip(
        server.port(), std::string("GET /v1/profile/") + kFp + "/" + kOpts +
                           " HTTP/1.1\r\nconnection: close\r\n\r\n");
    EXPECT_EQ(get_response.compare(0, 12, "HTTP/1.1 200"), 0) << get_response;
    const std::size_t head_end = get_response.find("\r\n\r\n");
    ASSERT_NE(head_end, std::string::npos);
    EXPECT_EQ(get_response.substr(head_end + 4), body);  // byte-identical

    const std::string revalidate_response = round_trip(
        server.port(), std::string("GET /v1/profile/") + kFp +
                           " HTTP/1.1\r\nif-none-match: \"" + kOpts +
                           "\"\r\nconnection: close\r\n\r\n");
    EXPECT_EQ(revalidate_response.compare(0, 12, "HTTP/1.1 304"), 0)
        << revalidate_response;

    const std::string bad_response = round_trip(server.port(), "GARBAGE\r\n\r\n");
    EXPECT_EQ(bad_response.compare(0, 12, "HTTP/1.1 400"), 0) << bad_response;

    server.request_stop();
    server.join();
}

TEST_F(ServerTest, KeepAliveServesPipelinedRequests) {
    ServeOptions options;
    options.store_dir = root_ + "/store";
    ServeServer server(options);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    const int fd = connect_to(server.port());
    ASSERT_GE(fd, 0);
    const std::string wire =
        "GET /v1/healthz HTTP/1.1\r\n\r\n"
        "GET /v1/healthz HTTP/1.1\r\n\r\n"
        "GET /v1/healthz HTTP/1.1\r\nconnection: close\r\n\r\n";
    ASSERT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(wire.size()));
    std::string response;
    char chunk[4096];
    while (true) {
        const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n <= 0) break;
        response.append(chunk, static_cast<std::size_t>(n));
    }
    ::close(fd);
    std::size_t count = 0;
    for (std::size_t at = response.find("HTTP/1.1 200"); at != std::string::npos;
         at = response.find("HTTP/1.1 200", at + 1))
        ++count;
    EXPECT_EQ(count, 3u) << response;

    server.request_stop();
    server.join();
}

TEST_F(ServerTest, StopWithIdleConnectionJoinsCleanly) {
    ServeOptions options;
    options.store_dir = root_ + "/store";
    ServeServer server(options);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    const int fd = connect_to(server.port());  // idle keep-alive, never written
    ASSERT_GE(fd, 0);
    server.request_stop();
    server.join();  // must not hang on the idle connection
    ::close(fd);
}

}  // namespace
}  // namespace servet::serve
