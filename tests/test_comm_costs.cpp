#include "core/comm_costs.hpp"

#include <gtest/gtest.h>

#include "msg/sim_network.hpp"
#include "sim/zoo.hpp"

namespace servet::core {
namespace {

TEST(DisjointPairs, GreedyMatching) {
    const auto result = disjoint_pairs({{0, 1}, {0, 2}, {2, 3}, {4, 5}});
    EXPECT_EQ(result, (std::vector<CorePair>{{0, 1}, {2, 3}, {4, 5}}));
}

TEST(DisjointPairs, EmptyInput) { EXPECT_TRUE(disjoint_pairs({}).empty()); }

TEST(CommCosts, DunningtonThreeLayers) {
    const sim::MachineSpec spec = sim::zoo::dunnington();
    msg::SimNetwork network(spec);
    CommCostsOptions options;
    options.probe_message = 32 * KiB;
    const CommCostsResult result = characterize_communication(network, options);

    ASSERT_EQ(result.layers.size(), 3u);
    // Fastest first: shared-L2 (12 pairs), intra-processor (48),
    // inter-processor (216).
    EXPECT_EQ(result.layers[0].pairs.size(), 12u);
    EXPECT_EQ(result.layers[1].pairs.size(), 48u);
    EXPECT_EQ(result.layers[2].pairs.size(), 216u);
    EXPECT_LT(result.layers[0].latency, result.layers[1].latency);
    EXPECT_LT(result.layers[1].latency, result.layers[2].latency);
}

TEST(CommCosts, FinisTerraeTwoLayersTwoToOne) {
    // Fig. 10a: intra-node transfers are about twice as fast as
    // inter-node ones at the L1 probe size.
    const sim::MachineSpec spec = sim::zoo::finis_terrae(2);
    msg::SimNetwork network(spec);
    CommCostsOptions options;
    options.probe_message = 16 * KiB;
    const CommCostsResult result = characterize_communication(network, options);

    ASSERT_EQ(result.layers.size(), 2u);
    EXPECT_EQ(result.layers[0].pairs.size(), 240u);
    EXPECT_EQ(result.layers[1].pairs.size(), 256u);
    EXPECT_NEAR(result.layers[1].latency / result.layers[0].latency, 2.0, 0.3);
}

TEST(CommCosts, LayerOfClassifiesProbedPairs) {
    const sim::MachineSpec spec = sim::zoo::dunnington();
    msg::SimNetwork network(spec);
    const CommCostsResult result = characterize_communication(network, {});
    EXPECT_EQ(result.layer_of({0, 12}), 0);
    EXPECT_EQ(result.layer_of({12, 0}), 0);  // order-insensitive
    EXPECT_EQ(result.layer_of({0, 1}), 1);
    EXPECT_EQ(result.layer_of({0, 3}), 2);
    EXPECT_EQ(result.layer_of({0, 99}), -1);
}

TEST(CommCosts, SlowdownGrowsWithConcurrency) {
    const sim::MachineSpec spec = sim::zoo::finis_terrae(2);
    msg::SimNetwork network(spec);
    CommCostsOptions options;
    options.probe_message = 16 * KiB;
    const CommCostsResult result = characterize_communication(network, options);
    const auto& ib = result.layers[1].slowdown_by_n;
    ASSERT_GE(ib.size(), 8u);
    EXPECT_NEAR(ib[0], 1.0, 0.08);
    for (std::size_t k = 1; k < ib.size(); ++k) EXPECT_GE(ib[k], ib[k - 1] * 0.93);
    EXPECT_GT(ib.back(), 3.0);  // the moderate scalability of Fig. 10b
}

TEST(CommCosts, P2pCurveMonotoneAndComplete) {
    const sim::MachineSpec spec = sim::zoo::dunnington();
    msg::SimNetwork network(spec);
    const CommCostsResult result = characterize_communication(network, {});
    for (const CommLayer& layer : result.layers) {
        ASSERT_FALSE(layer.p2p.empty());
        EXPECT_EQ(layer.p2p.front().first, 1 * KiB);
        EXPECT_EQ(layer.p2p.back().first, 4 * MiB);
        for (std::size_t i = 1; i < layer.p2p.size(); ++i)
            EXPECT_GT(layer.p2p[i].second, layer.p2p[i - 1].second * 0.95);
    }
}

TEST(CommCosts, EstimateLatencyInterpolates) {
    sim::MachineSpec spec = sim::zoo::dunnington();
    spec.measurement_jitter = 0.0;
    msg::SimNetwork network(spec);
    const CommCostsResult result = characterize_communication(network, {});
    sim::InterconnectModel model(spec);
    // At a size between sweep points the estimate must be within a few
    // percent of the model (the curve is piecewise linear in size).
    for (const Bytes size : {3 * KiB, 48 * KiB, 768 * KiB}) {
        const Seconds estimated = result.estimate_latency({0, 3}, size);
        const Seconds truth = model.latency({0, 3}, size);
        EXPECT_NEAR(estimated / truth, 1.0, 0.08) << size;
    }
}

TEST(CommCosts, EstimateLatencyExtrapolatesAboveSweep) {
    sim::MachineSpec spec = sim::zoo::dunnington();
    spec.measurement_jitter = 0.0;
    msg::SimNetwork network(spec);
    const CommCostsResult result = characterize_communication(network, {});
    sim::InterconnectModel model(spec);
    const Seconds estimated = result.estimate_latency({0, 3}, 16 * MiB);
    EXPECT_NEAR(estimated / model.latency({0, 3}, 16 * MiB), 1.0, 0.1);
}

TEST(CommCosts, CustomSweepRespected) {
    const sim::MachineSpec spec = sim::zoo::dempsey();
    msg::SimNetwork network(spec);
    CommCostsOptions options;
    options.sweep_sizes = {4 * KiB, 64 * KiB};
    const CommCostsResult result = characterize_communication(network, options);
    for (const CommLayer& layer : result.layers) {
        ASSERT_EQ(layer.p2p.size(), 2u);
        EXPECT_EQ(layer.p2p[0].first, 4 * KiB);
        EXPECT_EQ(layer.p2p[1].first, 64 * KiB);
    }
}

TEST(CommCosts, MaxConcurrentCapsScalabilityProbe) {
    const sim::MachineSpec spec = sim::zoo::dunnington();
    msg::SimNetwork network(spec);
    CommCostsOptions options;
    options.max_concurrent = 3;
    const CommCostsResult result = characterize_communication(network, options);
    for (const CommLayer& layer : result.layers)
        EXPECT_LE(layer.slowdown_by_n.size(), 3u);
}

}  // namespace
}  // namespace servet::core
