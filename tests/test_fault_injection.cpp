// The fault-tolerant measurement pipeline, exercised with the FaultPlan
// injectors: every failure mode (spike, NaN, throw, hang, drop) must be
// deterministic per seed, survivable by the robust sampler and phase
// isolation, and cut off by the cooperative task deadline — the repo's
// determinism contract extended to the failure paths.
#include "base/fault_plan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "base/deadline.hpp"
#include "core/measure.hpp"
#include "core/suite.hpp"
#include "msg/faulty_network.hpp"
#include "msg/sim_network.hpp"
#include "obs/metrics.hpp"
#include "platform/decorators.hpp"
#include "platform/sim_platform.hpp"
#include "sim/zoo.hpp"

namespace servet {
namespace {

sim::MachineSpec quiet_synthetic() {
    sim::zoo::SyntheticOptions options;
    options.cores = 4;
    options.l1_size = 16 * KiB;
    options.l2_size = 256 * KiB;
    options.jitter = 0.0;
    return sim::zoo::synthetic(options);
}

std::uint64_t stable_counter(const char* name) {
    const auto counters = obs::registry().stable_counters();
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
}

TEST(FaultPlan, ParsesFullSpec) {
    const auto plan =
        FaultPlan::parse("spike=0.05,factor=8,nan=0.02,throw=0.01,hang=0.005,"
                         "hang_seconds=2.5,drop=0.03,delay=0.04,delay_factor=6,seed=42");
    ASSERT_TRUE(plan.has_value());
    EXPECT_DOUBLE_EQ(plan->spike_probability, 0.05);
    EXPECT_DOUBLE_EQ(plan->spike_factor, 8.0);
    EXPECT_DOUBLE_EQ(plan->nan_probability, 0.02);
    EXPECT_DOUBLE_EQ(plan->throw_probability, 0.01);
    EXPECT_DOUBLE_EQ(plan->hang_probability, 0.005);
    EXPECT_DOUBLE_EQ(plan->hang_seconds, 2.5);
    EXPECT_DOUBLE_EQ(plan->drop_probability, 0.03);
    EXPECT_DOUBLE_EQ(plan->delay_probability, 0.04);
    EXPECT_DOUBLE_EQ(plan->delay_factor, 6.0);
    EXPECT_EQ(plan->seed, 42u);
    EXPECT_TRUE(plan->active());
}

TEST(FaultPlan, EmptySpecIsInactive) {
    const auto plan = FaultPlan::parse("");
    ASSERT_TRUE(plan.has_value());
    EXPECT_FALSE(plan->active());
    EXPECT_EQ(*plan, FaultPlan{});
}

TEST(FaultPlan, RejectsMalformedSpecs) {
    EXPECT_FALSE(FaultPlan::parse("bogus=1").has_value());       // unknown key
    EXPECT_FALSE(FaultPlan::parse("spike=1.5").has_value());     // probability > 1
    EXPECT_FALSE(FaultPlan::parse("spike=-0.1").has_value());    // probability < 0
    EXPECT_FALSE(FaultPlan::parse("factor=0.5").has_value());    // factor < 1
    EXPECT_FALSE(FaultPlan::parse("spike").has_value());         // no '='
    EXPECT_FALSE(FaultPlan::parse("spike=abc").has_value());     // not a number
}

TEST(FaultPlan, FingerprintSeparatesPlans) {
    FaultPlan a;
    FaultPlan b;
    b.nan_probability = 0.1;
    FaultPlan c;
    c.seed = 999;
    EXPECT_NE(a.fingerprint(), b.fingerprint());
    EXPECT_NE(a.fingerprint(), c.fingerprint());
    EXPECT_EQ(a.fingerprint(), FaultPlan{}.fingerprint());
}

/// Saves and restores SERVET_FAULTS around a test, so the from_env tests
/// do not clobber a fault configuration the CI job injected.
class ScopedFaultsEnv {
  public:
    ScopedFaultsEnv() {
        const char* current = std::getenv("SERVET_FAULTS");
        if (current != nullptr) saved_ = current;
    }
    ~ScopedFaultsEnv() {
        if (saved_.has_value()) {
            ::setenv("SERVET_FAULTS", saved_->c_str(), 1);
        } else {
            ::unsetenv("SERVET_FAULTS");
        }
    }

  private:
    std::optional<std::string> saved_;
};

TEST(FaultPlan, FromEnvFallsBackWhenUnset) {
    ScopedFaultsEnv restore;
    ::unsetenv("SERVET_FAULTS");
    FaultPlan fallback;
    fallback.spike_probability = 0.25;
    EXPECT_EQ(FaultPlan::from_env(fallback), fallback);
    EXPECT_EQ(FaultPlan::from_env(), FaultPlan{});
}

TEST(FaultPlan, FromEnvParsesTheVariable) {
    ScopedFaultsEnv restore;
    ::setenv("SERVET_FAULTS", "nan=0.5,seed=7", 1);
    const FaultPlan plan = FaultPlan::from_env();
    EXPECT_DOUBLE_EQ(plan.nan_probability, 0.5);
    EXPECT_EQ(plan.seed, 7u);
}

TEST(FlakyPlatform, InjectsNaN) {
    SimPlatform inner(quiet_synthetic());
    FaultPlan plan;
    plan.nan_probability = 1.0;
    FlakyPlatform flaky(inner, plan);
    EXPECT_TRUE(std::isnan(flaky.traverse_cycles(0, 8 * KiB, 1 * KiB, 1, false)));
    EXPECT_TRUE(std::isnan(flaky.copy_bandwidth(0, 1 * MiB)));
}

TEST(FlakyPlatform, InjectsProbeFaults) {
    SimPlatform inner(quiet_synthetic());
    FaultPlan plan;
    plan.throw_probability = 1.0;
    FlakyPlatform flaky(inner, plan);
    EXPECT_THROW((void)flaky.traverse_cycles(0, 8 * KiB, 1 * KiB, 1, false), ProbeFault);
}

TEST(FlakyPlatform, MixedFaultsAreDeterministicPerSeed) {
    FaultPlan plan;
    plan.spike_probability = 0.2;
    plan.nan_probability = 0.2;
    plan.throw_probability = 0.2;
    plan.seed = 1234;

    const auto run = [&plan] {
        SimPlatform inner(quiet_synthetic());
        FlakyPlatform flaky(inner, plan);
        std::vector<double> observed;
        for (int i = 0; i < 40; ++i) {
            try {
                observed.push_back(flaky.traverse_cycles(0, 8 * KiB, 1 * KiB, 1, false));
            } catch (const ProbeFault&) {
                observed.push_back(-1.0);  // sentinel: same draw -> same throw
            }
        }
        return observed;
    };
    const auto a = run();
    const auto b = run();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::isnan(a[i])) {
            EXPECT_TRUE(std::isnan(b[i])) << i;
        } else {
            EXPECT_DOUBLE_EQ(a[i], b[i]) << i;
        }
    }
}

TEST(FlakyPlatform, HangIsCutOffByCooperativeDeadline) {
    SimPlatform inner(quiet_synthetic());
    FaultPlan plan;
    plan.hang_probability = 1.0;
    plan.hang_seconds = 30.0;  // far beyond the deadline: timeout must win
    FlakyPlatform flaky(inner, plan);

    DeadlineGuard guard(0.05);
    EXPECT_THROW((void)flaky.traverse_cycles(0, 8 * KiB, 1 * KiB, 1, false),
                 TaskDeadlineExceeded);
}

TEST(FlakyPlatform, HangCompletesWhenShorterThanDeadline) {
    SimPlatform inner(quiet_synthetic());
    FaultPlan plan;
    plan.hang_probability = 1.0;
    plan.hang_seconds = 0.01;
    FlakyPlatform flaky(inner, plan);

    DeadlineGuard guard(10.0);
    EXPECT_GT(flaky.traverse_cycles(0, 8 * KiB, 1 * KiB, 1, false), 0.0);
}

TEST(Deadline, GuardsArmScopeLocallyAndRestore) {
    EXPECT_FALSE(deadline_exceeded());  // disarmed by default
    {
        DeadlineGuard outer(0.0);  // 0 = no deadline
        EXPECT_FALSE(deadline_exceeded());
        {
            DeadlineGuard inner(1e-4);
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            EXPECT_THROW(check_deadline(), TaskDeadlineExceeded);
        }
        EXPECT_FALSE(deadline_exceeded());  // restored on scope exit
    }
    EXPECT_FALSE(deadline_exceeded());
}

TEST(FaultyNetwork, InjectsDropsDeterministically) {
    FaultPlan plan;
    plan.drop_probability = 0.3;
    plan.seed = 77;

    const auto run = [&plan] {
        msg::SimNetwork inner(quiet_synthetic());
        msg::FaultyNetwork faulty(inner, plan);
        std::vector<double> observed;
        for (int i = 0; i < 30; ++i) {
            try {
                observed.push_back(faulty.pingpong_latency({0, 1}, 16 * KiB, 2));
            } catch (const TransientNetworkError&) {
                observed.push_back(-1.0);
            }
        }
        return observed;
    };
    const auto a = run();
    EXPECT_EQ(a, run());
    EXPECT_NE(std::count(a.begin(), a.end(), -1.0), 0) << "no drops fired at p=0.3";
}

TEST(FaultyNetwork, DelayInflatesLatency) {
    msg::SimNetwork reference(quiet_synthetic());
    const Seconds clean = reference.pingpong_latency({0, 1}, 16 * KiB, 2);

    msg::SimNetwork inner(quiet_synthetic());
    FaultPlan plan;
    plan.delay_probability = 1.0;
    plan.delay_factor = 4.0;
    msg::FaultyNetwork faulty(inner, plan);
    EXPECT_NEAR(faulty.pingpong_latency({0, 1}, 16 * KiB, 2), 4.0 * clean, 1e-12);
}

TEST(AdaptiveRobust, QuietPlatformStopsAtMinSamples) {
    SimPlatform inner(quiet_synthetic());  // jitter 0: converges immediately
    RobustOptions options;
    options.min_samples = 3;
    options.max_samples = 50;
    options.target_rel_mad = 0.05;
    RobustPlatform robust(inner, options);

    const std::uint64_t before = stable_counter("platform.robust.samples");
    (void)robust.traverse_cycles(0, 8 * KiB, 1 * KiB, 1, false);
    EXPECT_EQ(stable_counter("platform.robust.samples") - before, 3u);
}

TEST(AdaptiveRobust, NoisyPlatformBuysMoreSamples) {
    sim::zoo::SyntheticOptions noisy = [] {
        sim::zoo::SyntheticOptions o;
        o.cores = 4;
        o.l1_size = 16 * KiB;
        o.l2_size = 256 * KiB;
        o.jitter = 0.20;  // 20% measurement noise
        return o;
    }();
    SimPlatform inner(sim::zoo::synthetic(noisy));
    RobustOptions options;
    options.min_samples = 3;
    options.max_samples = 50;
    options.target_rel_mad = 0.01;  // tight target the noise can't meet early
    RobustPlatform robust(inner, options);

    const std::uint64_t before = stable_counter("platform.robust.samples");
    (void)robust.traverse_cycles(0, 8 * KiB, 1 * KiB, 1, false);
    EXPECT_GT(stable_counter("platform.robust.samples") - before, 3u);
}

TEST(AdaptiveRobust, RejectsNaNSamplesAndCountsRetries) {
    SimPlatform inner(quiet_synthetic());
    FaultPlan plan;
    plan.nan_probability = 0.3;
    plan.seed = 5;
    FlakyPlatform flaky(inner, plan);
    RobustOptions options;
    options.min_samples = 5;
    options.max_samples = 5;
    options.max_retries = 100;
    RobustPlatform robust(flaky, options);

    const std::uint64_t rejected_before = stable_counter("platform.robust.rejected");
    const Cycles measured = robust.traverse_cycles(0, 8 * KiB, 1 * KiB, 1, false);
    EXPECT_TRUE(std::isfinite(measured));
    EXPECT_GT(measured, 0.0);
    EXPECT_GT(stable_counter("platform.robust.rejected") - rejected_before, 0u)
        << "30% NaN injection must have hit the rejection path";
}

TEST(AdaptiveRobust, ExhaustedRetryBudgetThrowsProbeFault) {
    SimPlatform inner(quiet_synthetic());
    FaultPlan plan;
    plan.nan_probability = 1.0;  // every sample bad: the budget must run out
    FlakyPlatform flaky(inner, plan);
    RobustOptions options;
    options.max_retries = 3;
    RobustPlatform robust(flaky, options);
    EXPECT_THROW((void)robust.traverse_cycles(0, 8 * KiB, 1 * KiB, 1, false), ProbeFault);
}

TEST(MeasureEngine, RunsEveryTaskDespiteFailuresAndRethrowsFirst) {
    SimPlatform platform(quiet_synthetic());
    core::MeasureEngine engine(&platform, nullptr, nullptr, nullptr);

    int ran = 0;
    std::vector<core::MeasureTask> tasks(3);
    tasks[0].key = "ft/ok/a";
    tasks[0].body = [&](Platform*, msg::Network*) {
        ++ran;
        return std::vector<double>{1.0};
    };
    tasks[1].key = "ft/boom";
    tasks[1].body = [&](Platform*, msg::Network*) -> std::vector<double> {
        ++ran;
        throw ProbeFault("injected");
    };
    tasks[2].key = "ft/ok/b";
    tasks[2].body = [&](Platform*, msg::Network*) {
        ++ran;
        return std::vector<double>{2.0};
    };

    const std::uint64_t failed_before = stable_counter("exec.tasks.failed");
    EXPECT_THROW((void)engine.run(tasks), ProbeFault);
    EXPECT_EQ(ran, 3) << "a failing task must not cut the batch short";
    EXPECT_EQ(stable_counter("exec.tasks.failed") - failed_before, 1u);
}

TEST(MeasureEngine, TaskDeadlineBoundsHangingTasks) {
    SimPlatform inner(quiet_synthetic());
    FaultPlan plan;
    plan.hang_probability = 1.0;
    plan.hang_seconds = 30.0;
    FlakyPlatform flaky(inner, plan);
    core::MeasureEngine engine(&flaky, nullptr, nullptr, nullptr);
    engine.set_task_deadline(0.05);

    std::vector<core::MeasureTask> tasks(1);
    tasks[0].key = "ft/hang";
    tasks[0].body = [](Platform* p, msg::Network*) {
        return std::vector<double>{p->traverse_cycles(0, 8 * KiB, 1 * KiB, 1, false)};
    };
    EXPECT_THROW((void)engine.run(tasks), TaskDeadlineExceeded);
}

TEST(SuiteFaultTolerance, SurvivesBackgroundFaultInjection) {
    // Modest fault rates measured through the adaptive robust sampler,
    // with retry budgets and phase isolation absorbing what leaks
    // through. The CI fault-injection job overrides the mix via
    // SERVET_FAULTS (which must stay a *survivable* plan — this test
    // asserts full recovery, not just isolation).
    FaultPlan fallback;
    fallback.spike_probability = 0.05;
    fallback.spike_factor = 8.0;
    fallback.nan_probability = 0.02;
    fallback.drop_probability = 0.02;
    fallback.seed = 1337;
    const FaultPlan plan = FaultPlan::from_env(fallback);

    SimPlatform raw(quiet_synthetic());
    FlakyPlatform flaky(raw, plan);
    RobustOptions robust_options;
    robust_options.min_samples = 3;
    robust_options.max_samples = 9;
    robust_options.max_retries = 50;
    RobustPlatform platform(flaky, robust_options);
    msg::SimNetwork raw_network(quiet_synthetic());
    msg::FaultyNetwork network(raw_network, plan);

    core::SuiteOptions options;
    options.mcalibrator.max_size = 2 * MiB;
    options.mcalibrator.repeats = 3;
    const core::SuiteResult result = core::run_suite(platform, &network, options);

    // Under these rates every phase should in fact survive; the stronger
    // claim (a failed phase is isolated) is test_suite's PhaseIsolation.
    EXPECT_FALSE(result.partial()) << result.errors.front().message;
    ASSERT_EQ(result.cache_levels.size(), 2u);
    EXPECT_EQ(result.cache_levels[0].size, 16 * KiB);
    EXPECT_EQ(result.cache_levels[1].size, 256 * KiB);
    EXPECT_TRUE(result.has_comm);
}

}  // namespace
}  // namespace servet
