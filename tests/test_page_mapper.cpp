#include "sim/page_mapper.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace servet::sim {
namespace {

constexpr Bytes kPage = 4 * KiB;
constexpr std::uint64_t kFrames = 1 << 20;

TEST(PageMapper, DeterministicPerSeed) {
    PageMapper a(PagePolicy::Random, kPage, kFrames, 64, 7);
    PageMapper b(PagePolicy::Random, kPage, kFrames, 64, 7);
    for (std::uint64_t vp = 0; vp < 100; ++vp) EXPECT_EQ(a.frame_of(vp), b.frame_of(vp));
}

TEST(PageMapper, StableAcrossRepeatedTranslation) {
    PageMapper mapper(PagePolicy::Random, kPage, kFrames, 64, 11);
    const std::uint64_t first = mapper.frame_of(5);
    for (int i = 0; i < 10; ++i) EXPECT_EQ(mapper.frame_of(5), first);
}

TEST(PageMapper, FramesAreUnique) {
    PageMapper mapper(PagePolicy::Random, kPage, kFrames, 64, 13);
    std::set<std::uint64_t> frames;
    for (std::uint64_t vp = 0; vp < 5000; ++vp)
        EXPECT_TRUE(frames.insert(mapper.frame_of(vp)).second) << "duplicate frame";
}

TEST(PageMapper, TranslatePreservesOffset) {
    PageMapper mapper(PagePolicy::Random, kPage, kFrames, 64, 17);
    const std::uint64_t vaddr = 42 * kPage + 1234;
    const std::uint64_t paddr = mapper.translate(vaddr);
    EXPECT_EQ(paddr % kPage, 1234u);
    EXPECT_EQ(paddr / kPage, mapper.frame_of(42));
}

TEST(PageMapper, ColoringMatchesVirtualColor) {
    // Page coloring: the frame's cache color equals the virtual page's, so
    // physically indexed caches behave as if virtually indexed
    // (Section III-A2's "some OSs solve this problem applying page
    // coloring").
    const std::uint64_t colors = 64;
    PageMapper mapper(PagePolicy::Coloring, kPage, kFrames, colors, 19);
    for (std::uint64_t vp = 0; vp < 1000; ++vp)
        EXPECT_EQ(mapper.frame_of(vp) % colors, vp % colors);
}

TEST(PageMapper, ColoringFramesUnique) {
    PageMapper mapper(PagePolicy::Coloring, kPage, kFrames, 64, 23);
    std::set<std::uint64_t> frames;
    for (std::uint64_t vp = 0; vp < 2000; ++vp)
        EXPECT_TRUE(frames.insert(mapper.frame_of(vp)).second);
}

TEST(PageMapper, RandomColorsRoughlyUniform) {
    const std::uint64_t colors = 16;
    PageMapper mapper(PagePolicy::Random, kPage, kFrames, colors, 29);
    std::map<std::uint64_t, int> histogram;
    const int pages = 16000;
    for (int vp = 0; vp < pages; ++vp)
        ++histogram[mapper.frame_of(static_cast<std::uint64_t>(vp)) % colors];
    for (const auto& [color, count] : histogram) {
        EXPECT_GT(count, pages / 16 * 0.85);
        EXPECT_LT(count, pages / 16 * 1.15);
    }
}

TEST(PageMapper, ResetForgetsAndReproduces) {
    PageMapper mapper(PagePolicy::Random, kPage, kFrames, 64, 31);
    const std::uint64_t before = mapper.frame_of(7);
    (void)mapper.frame_of(8);
    EXPECT_EQ(mapper.mapped_pages(), 2u);
    mapper.reset();
    EXPECT_EQ(mapper.mapped_pages(), 0u);
    // Same seed, same first-touch order -> same mapping.
    EXPECT_EQ(mapper.frame_of(7), before);
}

TEST(PageMapper, TouchOrderIndependent) {
    // A page's frame is a function of (seed, vpage) alone (collisions
    // aside), so a statically placed buffer lands identically whether it
    // is initialized alone or interleaved with another core's buffer —
    // the property the shared-cache ratio cancellation relies on.
    PageMapper a(PagePolicy::Random, kPage, kFrames, 64, 37);
    PageMapper b(PagePolicy::Random, kPage, kFrames, 64, 37);
    (void)a.frame_of(1);
    const std::uint64_t a2 = a.frame_of(2);
    EXPECT_EQ(b.frame_of(2), a2);  // touched first over there
    EXPECT_EQ(b.frame_of(1), a.frame_of(1));
}

TEST(PageMapperDeath, RejectsBadConfig) {
    EXPECT_DEATH(PageMapper(PagePolicy::Random, 3000, kFrames, 4, 1), "power of two");
    EXPECT_DEATH(PageMapper(PagePolicy::Random, kPage, 4, 4, 1), "physical memory");
}

}  // namespace
}  // namespace servet::sim
