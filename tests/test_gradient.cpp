#include "stats/gradient.hpp"

#include <gtest/gtest.h>

namespace servet::stats {
namespace {

TEST(RatioGradient, ComputesRatios) {
    const auto g = ratio_gradient({2.0, 4.0, 4.0, 1.0});
    ASSERT_EQ(g.size(), 3u);
    EXPECT_DOUBLE_EQ(g[0], 2.0);
    EXPECT_DOUBLE_EQ(g[1], 1.0);
    EXPECT_DOUBLE_EQ(g[2], 0.25);
}

TEST(RatioGradient, ShortInputs) {
    EXPECT_TRUE(ratio_gradient({}).empty());
    EXPECT_TRUE(ratio_gradient({5.0}).empty());
}

TEST(FindPeaks, NoPeaksOnPlateau) {
    EXPECT_TRUE(find_peaks({1.0, 1.01, 0.99, 1.0}, 1.1).empty());
}

TEST(FindPeaks, SingleSamplePeak) {
    const auto peaks = find_peaks({1.0, 5.0, 1.0}, 1.1);
    ASSERT_EQ(peaks.size(), 1u);
    EXPECT_EQ(peaks[0].first, 1u);
    EXPECT_EQ(peaks[0].last, 1u);
    EXPECT_EQ(peaks[0].apex, 1u);
    EXPECT_DOUBLE_EQ(peaks[0].apex_value, 5.0);
    EXPECT_TRUE(peaks[0].single_sample());
}

TEST(FindPeaks, MultiSamplePeakTracksApex) {
    const auto peaks = find_peaks({1.0, 1.3, 2.5, 1.4, 1.0}, 1.1);
    ASSERT_EQ(peaks.size(), 1u);
    EXPECT_EQ(peaks[0].first, 1u);
    EXPECT_EQ(peaks[0].last, 3u);
    EXPECT_EQ(peaks[0].apex, 2u);
    EXPECT_FALSE(peaks[0].single_sample());
}

TEST(FindPeaks, MultiplePeaks) {
    const auto peaks = find_peaks({3.0, 1.0, 1.0, 2.0, 2.1, 1.0}, 1.1);
    ASSERT_EQ(peaks.size(), 2u);
    EXPECT_EQ(peaks[0].first, 0u);
    EXPECT_TRUE(peaks[0].single_sample());
    EXPECT_EQ(peaks[1].first, 3u);
    EXPECT_EQ(peaks[1].last, 4u);
    EXPECT_EQ(peaks[1].apex, 4u);
}

TEST(FindPeaks, ThresholdIsExclusive) {
    // Exactly-at-threshold samples are not peaks.
    EXPECT_TRUE(find_peaks({1.1, 1.1}, 1.1).empty());
    EXPECT_EQ(find_peaks({1.1001}, 1.1).size(), 1u);
}

TEST(FindPeaks, PeakAtEnd) {
    const auto peaks = find_peaks({1.0, 1.0, 1.5, 1.6}, 1.1);
    ASSERT_EQ(peaks.size(), 1u);
    EXPECT_EQ(peaks[0].first, 2u);
    EXPECT_EQ(peaks[0].last, 3u);
}

TEST(RatioGradientDeath, RejectsNonPositive) {
    EXPECT_DEATH((void)ratio_gradient({1.0, 0.0, 2.0}), "positive");
}

}  // namespace
}  // namespace servet::stats
