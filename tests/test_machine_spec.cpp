#include "sim/machine.hpp"

#include <gtest/gtest.h>

#include "sim/zoo.hpp"

namespace servet::sim {
namespace {

class ZooSpecsValidate : public ::testing::TestWithParam<int> {};

TEST_P(ZooSpecsValidate, NoProblems) {
    const MachineSpec spec = zoo::paper_machines()[static_cast<std::size_t>(GetParam())];
    const auto problems = spec.validate();
    EXPECT_TRUE(problems.empty()) << spec.name << ": " << problems.front();
}

INSTANTIATE_TEST_SUITE_P(AllMachines, ZooSpecsValidate, ::testing::Range(0, 4));

TEST(ZooSpecs, MultiNodeFinisTerraeValidates) {
    for (int nodes : {2, 4}) {
        const MachineSpec spec = zoo::finis_terrae(nodes);
        EXPECT_TRUE(spec.validate().empty());
        EXPECT_EQ(spec.n_cores, 16 * nodes);
        EXPECT_EQ(spec.node_count(), nodes);
    }
}

TEST(DunningtonTopology, PaperSharingStructure) {
    // Fig. 8a: core 0 shares L2 with core 12, and L3 with
    // {0,1,2,12,13,14} — not with cores 3..11.
    const MachineSpec spec = zoo::dunnington();
    EXPECT_TRUE(spec.share_level(1, 0, 12));
    EXPECT_FALSE(spec.share_level(1, 0, 1));
    for (CoreId c : {1, 2, 12, 13, 14}) EXPECT_TRUE(spec.share_level(2, 0, c)) << c;
    for (CoreId c : {3, 11, 15, 23}) EXPECT_FALSE(spec.share_level(2, 0, c)) << c;
    // L1 is private.
    EXPECT_FALSE(spec.share_level(0, 0, 12));
}

TEST(DunningtonTopology, InstancePartitionCounts) {
    const MachineSpec spec = zoo::dunnington();
    EXPECT_EQ(spec.levels[0].instances.size(), 24u);
    EXPECT_EQ(spec.levels[1].instances.size(), 12u);
    EXPECT_EQ(spec.levels[2].instances.size(), 4u);
}

TEST(DunningtonTopology, CommLayerClassification) {
    const MachineSpec spec = zoo::dunnington();
    EXPECT_EQ(spec.comm_layers[static_cast<std::size_t>(spec.comm_layer_of({0, 12}))].name,
              "shared-L2");
    EXPECT_EQ(spec.comm_layers[static_cast<std::size_t>(spec.comm_layer_of({0, 1}))].name,
              "intra-processor");
    EXPECT_EQ(spec.comm_layers[static_cast<std::size_t>(spec.comm_layer_of({0, 3}))].name,
              "inter-processor");
}

TEST(FinisTerraeTopology, AllCachesPrivate) {
    const MachineSpec spec = zoo::finis_terrae();
    for (int level = 0; level < 3; ++level)
        EXPECT_EQ(spec.levels[static_cast<std::size_t>(level)].instances.size(), 16u);
}

TEST(FinisTerraeTopology, NodesAndLayers) {
    const MachineSpec spec = zoo::finis_terrae(2);
    EXPECT_EQ(spec.node_of(0), 0);
    EXPECT_EQ(spec.node_of(15), 0);
    EXPECT_EQ(spec.node_of(16), 1);
    EXPECT_EQ(spec.comm_layers[static_cast<std::size_t>(spec.comm_layer_of({0, 15}))].name,
              "intra-node-shm");
    EXPECT_EQ(spec.comm_layers[static_cast<std::size_t>(spec.comm_layer_of({0, 16}))].name,
              "infiniband");
}

TEST(MachineSpec, PageColorsIsLargestPhysicallyIndexed) {
    const MachineSpec dunnington = zoo::dunnington();
    // L3: 12MB / (16 * 4KB) = 192 page sets > L2's 64.
    EXPECT_EQ(dunnington.page_colors(), 192u);
    const MachineSpec ft = zoo::finis_terrae();
    EXPECT_EQ(ft.page_colors(), 48u);
}

TEST(MachineSpec, CycleTime) {
    const MachineSpec spec = zoo::dunnington();
    EXPECT_NEAR(spec.cycle_time(), 1e-9 / 2.4, 1e-15);
}

TEST(MachineSpec, InstanceOfUnknownCore) {
    const MachineSpec spec = zoo::dempsey();
    EXPECT_EQ(spec.instance_of(0, 7), -1);
}

// Validation catches structural mistakes.

MachineSpec broken_base() { return zoo::dempsey(); }

TEST(SpecValidation, CoreInTwoInstances) {
    MachineSpec spec = broken_base();
    spec.levels[0].instances = {{0, 1}, {1}};
    EXPECT_FALSE(spec.validate().empty());
}

TEST(SpecValidation, CoreMissingFromLevel) {
    MachineSpec spec = broken_base();
    spec.levels[0].instances = {{0}};
    EXPECT_FALSE(spec.validate().empty());
}

TEST(SpecValidation, NonGrowingLevels) {
    MachineSpec spec = broken_base();
    spec.levels[1].geometry.size = spec.levels[0].geometry.size;
    EXPECT_FALSE(spec.validate().empty());
}

TEST(SpecValidation, PhysicallyIndexedL1Rejected) {
    MachineSpec spec = broken_base();
    spec.levels[0].geometry.physically_indexed = true;
    EXPECT_FALSE(spec.validate().empty());
}

TEST(SpecValidation, BadNodeDivision) {
    MachineSpec spec = broken_base();
    spec.cores_per_node = 3;  // does not divide 2 cores... wait, 2 % 3 != 0
    EXPECT_FALSE(spec.validate().empty());
}

TEST(SpecValidation, MissingCatchAllLayer) {
    MachineSpec spec = zoo::dunnington();
    spec.comm_layers.pop_back();  // drop the IntraNode catch-all
    EXPECT_FALSE(spec.validate().empty());
}

TEST(SpecValidation, EmptyContentionDomain) {
    MachineSpec spec = broken_base();
    spec.memory.domains.push_back({.name = "empty", .members = {}});
    EXPECT_FALSE(spec.validate().empty());
}

TEST(SpecValidation, JitterRange) {
    MachineSpec spec = broken_base();
    spec.measurement_jitter = 0.7;
    EXPECT_FALSE(spec.validate().empty());
}

TEST(SpecValidation, SyntheticBuilderShapes) {
    zoo::SyntheticOptions options;
    options.cores = 8;
    options.l2_sharing = 4;
    const MachineSpec spec = zoo::synthetic(options);
    EXPECT_TRUE(spec.validate().empty());
    EXPECT_EQ(spec.levels[1].instances.size(), 2u);
    EXPECT_TRUE(spec.share_level(1, 0, 3));
    EXPECT_FALSE(spec.share_level(1, 3, 4));
}

TEST(CommLayerOfDeath, SamePairRejected) {
    const MachineSpec spec = zoo::dunnington();
    EXPECT_DEATH((void)spec.comm_layer_of({3, 3}), "");
}

}  // namespace
}  // namespace servet::sim
