// The determinism contract of the Stable metrics, end to end: a suite
// run at --jobs 4 must report exactly the same deterministic counter
// deltas as the same run at --jobs 1. This is the property that lets the
// golden profiles embed a [counters] section and lets CI compare metrics
// exports across schedules byte for byte.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "base/fault_plan.hpp"
#include "core/suite.hpp"
#include "msg/faulty_network.hpp"
#include "msg/sim_network.hpp"
#include "platform/decorators.hpp"
#include "platform/sim_platform.hpp"
#include "sim/zoo.hpp"

namespace servet {
namespace {

core::SuiteOptions cheap_options(const sim::MachineSpec& spec, int jobs) {
    core::SuiteOptions options;
    options.mcalibrator.max_size = 3 * spec.levels.back().geometry.size;
    options.mcalibrator.repeats = 2;
    options.jobs = jobs;
    return options;
}

std::map<std::string, std::uint64_t> run_counters(int jobs) {
    const sim::MachineSpec spec = sim::zoo::dempsey();
    SimPlatform platform(spec);
    msg::SimNetwork network(platform.spec());
    const core::SuiteResult result =
        core::run_suite(platform, &network, cheap_options(spec, jobs));
    return result.counters;
}

TEST(ObsDeterminism, SuiteCountersIdenticalAcrossJobs) {
    const auto serial = run_counters(1);
    const auto parallel = run_counters(4);

    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel)
        << "a Stable counter moved with the schedule; either the counting "
        << "site races or the metric belongs in Stability::Volatile";
}

TEST(ObsDeterminism, CountersCoverEveryInstrumentedSubsystem) {
    const auto counters = run_counters(1);
    // One representative per instrumented layer: exec engine, memo,
    // simulator caches/prefetch/pages, suite phases, and the message
    // layer. (The trimmed sweep stays inside the TLB, so TLB misses are
    // legitimately zero here and not asserted.)
    for (const char* name :
         {"exec.tasks.run", "exec.memo.misses", "exec.dag.nodes",
          "sim.cache.L1.hits", "sim.cache.L1.misses", "sim.prefetch.issued",
          "sim.page.faults", "sim.traverse.calls",
          "phase.cache_size.measurements", "phase.comm_costs.measurements",
          "msg.messages", "msg.bytes"}) {
        EXPECT_TRUE(counters.contains(name)) << "missing counter " << name;
        if (counters.contains(name)) {
            EXPECT_GT(counters.at(name), 0u) << name;
        }
    }
}

TEST(ObsDeterminism, RepeatedRunsReportIdenticalDeltas) {
    // The registry accumulates across runs in one process; the per-run
    // delta in SuiteResult::counters must not.
    EXPECT_EQ(run_counters(2), run_counters(2));
}

std::map<std::string, std::uint64_t> run_faulty_counters(int jobs) {
    // Fault rates low enough that the robust sampler absorbs everything
    // (no phase fails), at a fixed seed: every injection decision derives
    // from (plan seed, task key), so schedule must not move the counts.
    FaultPlan plan;
    plan.spike_probability = 0.04;
    plan.spike_factor = 8.0;
    plan.nan_probability = 0.02;
    plan.drop_probability = 0.08;
    plan.delay_probability = 0.05;
    plan.seed = 1337;

    const sim::MachineSpec spec = sim::zoo::dempsey();
    SimPlatform raw(spec);
    FlakyPlatform flaky(raw, plan);
    RobustOptions robust_options;
    robust_options.min_samples = 3;
    robust_options.max_samples = 9;
    robust_options.max_retries = 50;
    RobustPlatform platform(flaky, robust_options);
    msg::SimNetwork raw_network(spec);
    msg::FaultyNetwork network(raw_network, plan);

    const core::SuiteResult result =
        core::run_suite(platform, &network, cheap_options(spec, jobs));
    EXPECT_FALSE(result.partial()) << result.errors.front().phase << ": "
                                   << result.errors.front().message;
    return result.counters;
}

TEST(ObsDeterminism, FaultInjectionCountersIdenticalAcrossJobs) {
    const auto serial = run_faulty_counters(1);
    const auto parallel = run_faulty_counters(4);

    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel)
        << "fault-injection or robust-sampling counters moved with the "
        << "schedule; replica fault streams must derive from task keys";
    // The faulty run must actually have exercised the machinery.
    EXPECT_GT(serial.at("platform.fault.spikes"), 0u);
    EXPECT_GT(serial.at("platform.robust.samples"), 0u);
    EXPECT_GT(serial.at("msg.fault.drops"), 0u);
    EXPECT_GT(serial.at("phase.comm_costs.retries"), 0u);
}

}  // namespace
}  // namespace servet
