#include "core/shared_cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "platform/sim_platform.hpp"
#include "sim/zoo.hpp"

namespace servet::core {
namespace {

TEST(SharedCache, DunningtonCore0PairsMatchFig8a) {
    // Fig. 8a: probing pairs (0,k), core 0 shares L2 with core 12 and L3
    // with {1,2,12,13,14}; nothing at L1.
    SimPlatform platform(sim::zoo::dunnington());
    SharedCacheOptions options;
    options.only_with_core = 0;
    const auto results =
        detect_shared_caches(platform, {32 * KiB, 3 * MiB, 12 * MiB}, options);
    ASSERT_EQ(results.size(), 3u);

    EXPECT_TRUE(results[0].sharing_pairs.empty());

    ASSERT_EQ(results[1].sharing_pairs.size(), 1u);
    EXPECT_EQ(results[1].sharing_pairs[0], (CorePair{0, 12}));

    std::vector<CoreId> l3_partners;
    for (const CorePair& pair : results[2].sharing_pairs) l3_partners.push_back(pair.b);
    std::sort(l3_partners.begin(), l3_partners.end());
    EXPECT_EQ(l3_partners, (std::vector<CoreId>{1, 2, 12, 13, 14}));
}

TEST(SharedCache, DunningtonFullScanRecoversInstances) {
    SimPlatform platform(sim::zoo::dunnington());
    const auto results = detect_shared_caches(platform, {3 * MiB, 12 * MiB});
    ASSERT_EQ(results.size(), 2u);

    // L2: twelve {i, i+12} groups.
    ASSERT_EQ(results[0].groups.size(), 12u);
    for (CoreId i = 0; i < 12; ++i)
        EXPECT_EQ(results[0].groups[static_cast<std::size_t>(i)],
                  (std::vector<CoreId>{i, i + 12}));

    // L3: the four hexacore packages with the interleaved OS numbering.
    ASSERT_EQ(results[1].groups.size(), 4u);
    EXPECT_EQ(results[1].groups[0], (std::vector<CoreId>{0, 1, 2, 12, 13, 14}));
    EXPECT_EQ(results[1].groups[3], (std::vector<CoreId>{9, 10, 11, 21, 22, 23}));
}

TEST(SharedCache, FinisTerraeAllPrivate) {
    // Fig. 8b: every ratio stays below 2 on Finis Terrae.
    SimPlatform platform(sim::zoo::finis_terrae());
    const auto results =
        detect_shared_caches(platform, {16 * KiB, 256 * KiB, 9 * MiB});
    for (const auto& level : results) {
        EXPECT_TRUE(level.sharing_pairs.empty())
            << "false sharing at " << level.cache_size;
        for (const auto& pair : level.pairs) EXPECT_LT(pair.ratio, 2.0);
    }
}

TEST(SharedCache, FinisTerraeBusPairsShowMildOverhead) {
    // Fig. 8b's visible texture: bus-mates' memory misses queue, so their
    // L3-level ratio sits above 1 without crossing the threshold.
    SimPlatform platform(sim::zoo::finis_terrae());
    SharedCacheOptions options;
    options.only_with_core = 0;
    const auto results = detect_shared_caches(platform, {9 * MiB}, options);
    const auto& pairs = results[0].pairs;
    const auto find_ratio = [&](CoreId b) {
        const auto it = std::find_if(pairs.begin(), pairs.end(), [b](const auto& p) {
            return p.pair == CorePair{0, b};
        });
        return it->ratio;
    };
    EXPECT_GT(find_ratio(1), 1.02);   // same bus
    EXPECT_LT(find_ratio(8), 1.35);   // different cell
}

TEST(SharedCache, SyntheticSharedL2Groups) {
    sim::zoo::SyntheticOptions options;
    options.cores = 4;
    options.l2_sharing = 2;  // {0,1} and {2,3}
    options.l2_size = 1 * MiB;
    const sim::MachineSpec spec = sim::zoo::synthetic(options);
    SimPlatform platform(spec);
    const auto results = detect_shared_caches(platform, {32 * KiB, 1 * MiB});
    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[0].sharing_pairs.empty());
    ASSERT_EQ(results[1].groups.size(), 2u);
    EXPECT_EQ(results[1].groups[0], (std::vector<CoreId>{0, 1}));
    EXPECT_EQ(results[1].groups[1], (std::vector<CoreId>{2, 3}));
}

TEST(SharedCache, ArrayBytesAreTwoThirdsRounded) {
    SimPlatform platform(sim::zoo::dempsey());
    const auto results = detect_shared_caches(platform, {2 * MiB});
    EXPECT_EQ(results[0].array_bytes, (2 * MiB * 2 / 3) / KiB * KiB);
    EXPECT_GT(results[0].reference_cycles, 0.0);
}

TEST(SharedCache, RatiosReportedForEveryProbedPair) {
    SimPlatform platform(sim::zoo::dempsey());
    const auto results = detect_shared_caches(platform, {16 * KiB});
    EXPECT_EQ(results[0].pairs.size(), 1u);  // 2 cores -> 1 pair
}

TEST(SharedCacheDeath, BadThreshold) {
    SimPlatform platform(sim::zoo::dempsey());
    SharedCacheOptions options;
    options.ratio_threshold = 0.5;
    EXPECT_DEATH((void)detect_shared_caches(platform, {16 * KiB}, options), "");
}

}  // namespace
}  // namespace servet::core
