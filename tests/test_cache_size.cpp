#include "core/cache_size.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "stats/binomial.hpp"

namespace servet::core {
namespace {

TEST(SizeCandidates, ContainPaperSizes) {
    const auto candidates = default_size_candidates(32 * MiB);
    for (const Bytes size : {256 * KiB, 512 * KiB, 2 * MiB, 3 * MiB, 9 * MiB, 12 * MiB}) {
        EXPECT_TRUE(std::binary_search(candidates.begin(), candidates.end(), size))
            << size;
    }
}

TEST(SizeCandidates, SortedUniqueWithinRange) {
    const auto candidates = default_size_candidates(8 * MiB);
    EXPECT_TRUE(std::is_sorted(candidates.begin(), candidates.end()));
    EXPECT_EQ(std::adjacent_find(candidates.begin(), candidates.end()), candidates.end());
    EXPECT_LE(candidates.back(), 8 * MiB);
    EXPECT_GE(candidates.front(), 16 * KiB);
}

TEST(ExpectedMissRate, PaperTailMatchesBinomial) {
    EXPECT_DOUBLE_EQ(expected_miss_rate(MissRateModel::PaperTail, 512, 1.0 / 64, 8),
                     stats::binomial_tail_above(512, 1.0 / 64, 8));
}

TEST(ExpectedMissRate, SizeBiasedIdentity) {
    // E[X; X > K]/E[X] computed directly must equal the thinning identity
    // the implementation uses.
    const std::int64_t n = 200;
    const double p = 0.05;
    const int k = 12;
    double direct = 0;
    for (std::int64_t j = k + 1; j <= n; ++j)
        direct += static_cast<double>(j) * stats::binomial_pmf(n, p, j);
    direct /= static_cast<double>(n) * p;
    EXPECT_NEAR(expected_miss_rate(MissRateModel::SizeBiased, n, p, k), direct, 1e-10);
}

TEST(ExpectedMissRate, SizeBiasedDominatesPaperTail) {
    // Overflowing sets hold more lines than average, so the per-access
    // rate exceeds the per-set probability.
    for (const std::int64_t pages : {64, 256, 1024}) {
        const double p = 1.0 / 64;
        const double biased = expected_miss_rate(MissRateModel::SizeBiased, pages, p, 8);
        const double tail = expected_miss_rate(MissRateModel::PaperTail, pages, p, 8);
        EXPECT_GE(biased, tail);
    }
}

TEST(ExpectedMissRate, MonotoneInPages) {
    double previous = 0;
    for (std::int64_t pages = 64; pages <= 2048; pages *= 2) {
        const double mr = expected_miss_rate(MissRateModel::SizeBiased, pages, 1.0 / 64, 8);
        EXPECT_GE(mr, previous);
        previous = mr;
    }
    EXPECT_GT(previous, 0.95);  // saturates
}

// Analytic curve builder: generates mcalibrator output directly from the
// binomial model for a given hierarchy, so the estimator is tested against
// its own assumptions over a wide parameter sweep without simulation cost.
struct AnalyticLevel {
    Bytes size;
    int assoc;
    double hit;
};

McalibratorCurve analytic_curve(const std::vector<AnalyticLevel>& levels, double memory,
                                Bytes page, Bytes max_size) {
    McalibratorCurve curve;
    curve.sizes = mcalibrator_size_grid(4 * KiB, max_size);
    for (const Bytes s : curve.sizes) {
        // L1 (levels[0]) is virtually indexed: sharp.
        double cost;
        if (s <= levels[0].size) {
            cost = levels[0].hit;
        } else {
            cost = levels[1].hit;
            for (std::size_t l = 1; l < levels.size(); ++l) {
                const double next = l + 1 < levels.size() ? levels[l + 1].hit : memory;
                const double p = static_cast<double>(levels[l].assoc) *
                                 static_cast<double>(page) /
                                 static_cast<double>(levels[l].size);
                const double mr = expected_miss_rate(
                    MissRateModel::SizeBiased, static_cast<std::int64_t>(s / page), p,
                    levels[l].assoc);
                cost += mr * (next - cost);
            }
        }
        curve.cycles.push_back(cost);
    }
    return curve;
}

struct ProbCase {
    Bytes l2_size;
    int l2_assoc;
    Bytes page;
};

class ProbabilisticSweep : public ::testing::TestWithParam<ProbCase> {};

TEST_P(ProbabilisticSweep, RecoversTrueSize) {
    const auto& param = GetParam();
    const McalibratorCurve curve =
        analytic_curve({{32 * KiB, 8, 3.0}, {param.l2_size, param.l2_assoc, 15.0}}, 250.0,
                       param.page, 8 * param.l2_size);
    CacheDetectOptions options;
    options.page_size = param.page;
    const auto levels = detect_cache_levels(curve, options);
    ASSERT_EQ(levels.size(), 2u) << "expected L1 + L2";
    EXPECT_EQ(levels[0].size, 32 * KiB);
    EXPECT_EQ(levels[1].size, param.l2_size)
        << "L2 " << param.l2_size << " assoc " << param.l2_assoc << " page " << param.page;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ProbabilisticSweep,
    ::testing::Values(ProbCase{512 * KiB, 8, 4 * KiB}, ProbCase{512 * KiB, 16, 4 * KiB},
                      ProbCase{1 * MiB, 8, 4 * KiB}, ProbCase{2 * MiB, 8, 4 * KiB},
                      ProbCase{2 * MiB, 16, 4 * KiB}, ProbCase{3 * MiB, 12, 4 * KiB},
                      ProbCase{4 * MiB, 16, 4 * KiB}, ProbCase{2 * MiB, 8, 16 * KiB},
                      ProbCase{1 * MiB, 4, 4 * KiB}, ProbCase{6 * MiB, 24, 4 * KiB}));

TEST(DetectLevels, SharpCurveUsesPositions) {
    // A page-coloring OS produces cliff transitions: every level must be
    // found positionally ("peak" method).
    McalibratorCurve curve;
    curve.sizes = mcalibrator_size_grid(4 * KiB, 8 * MiB);
    for (const Bytes s : curve.sizes) {
        double cost = s <= 32 * KiB ? 2.0 : (s <= 2 * MiB ? 16.0 : 220.0);
        curve.cycles.push_back(cost);
    }
    CacheDetectOptions options;
    const auto levels = detect_cache_levels(curve, options);
    ASSERT_EQ(levels.size(), 2u);
    EXPECT_EQ(levels[0].size, 32 * KiB);
    EXPECT_EQ(levels[0].method, "peak");
    EXPECT_EQ(levels[1].size, 2 * MiB);
    EXPECT_EQ(levels[1].method, "peak");
}

TEST(DetectLevels, FlatCurveHasNoLevels) {
    McalibratorCurve curve;
    curve.sizes = mcalibrator_size_grid(4 * KiB, 1 * MiB);
    curve.cycles.assign(curve.sizes.size(), 3.0);
    EXPECT_TRUE(detect_cache_levels(curve, {}).empty());
}

TEST(DetectLevels, NoiseBumpsIgnored) {
    // A 10% wiggle is not a cache level (min_total_rise filter).
    McalibratorCurve curve;
    curve.sizes = mcalibrator_size_grid(4 * KiB, 1 * MiB);
    curve.cycles.assign(curve.sizes.size(), 3.0);
    curve.cycles[4] = 3.3;
    EXPECT_TRUE(detect_cache_levels(curve, {}).empty());
}

TEST(DetectLevels, MergedSmearsSplitIntoTwoLevels) {
    // Two overlapping transitions (the Dunnington L2/L3 shape) must yield
    // two levels even though the gradient never returns to 1 between them.
    const McalibratorCurve curve = analytic_curve(
        {{32 * KiB, 8, 3.0}, {3 * MiB, 12, 12.0}, {12 * MiB, 16, 48.0}}, 250.0, 4 * KiB,
        36 * MiB);
    CacheDetectOptions options;
    const auto levels = detect_cache_levels(curve, options);
    ASSERT_EQ(levels.size(), 3u);
    EXPECT_EQ(levels[0].size, 32 * KiB);
    EXPECT_EQ(levels[1].size, 3 * MiB);
    EXPECT_EQ(levels[2].size, 12 * MiB);
}

TEST(DetectLevels, PaperTailModelStillClose) {
    // The ablation claim: with the paper's P(X>K) formula the estimate
    // lands within one candidate step of the truth.
    const McalibratorCurve curve =
        analytic_curve({{32 * KiB, 8, 3.0}, {2 * MiB, 8, 15.0}}, 250.0, 4 * KiB, 16 * MiB);
    CacheDetectOptions options;
    options.model = MissRateModel::PaperTail;
    const auto levels = detect_cache_levels(curve, options);
    ASSERT_EQ(levels.size(), 2u);
    EXPECT_GE(levels[1].size, 1 * MiB);
    EXPECT_LE(levels[1].size, 3 * MiB);
}

TEST(ProbabilisticDeath, RejectsFlatWindow) {
    McalibratorCurve curve;
    curve.sizes = {4 * KiB, 8 * KiB, 16 * KiB};
    curve.cycles = {2.0, 2.0, 2.0};
    EXPECT_DEATH((void)probabilistic_cache_size(curve, 0, 2, CacheDetectOptions{}), "rise");
}

}  // namespace
}  // namespace servet::core
