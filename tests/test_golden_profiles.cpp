// Golden-profile regression tests: the full serialized Profile of each
// pinned zoo machine must match tests/golden/<name>.profile byte for
// byte. This is the detection suite's end-to-end determinism anchor —
// any change to task keys, seeding, placement, clustering, or the file
// format moves a golden. Intentional changes are re-pinned with
// `cmake --build build --target regen_golden_profiles`.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "golden_profiles_common.hpp"

namespace servet::golden {
namespace {

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) ADD_FAILURE() << "cannot read golden " << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

const GoldenMachine& machine_named(const std::string& file) {
    static const std::vector<GoldenMachine> machines = golden_machines();
    for (const auto& machine : machines)
        if (machine.file == file) return machine;
    throw std::runtime_error("no golden machine named " + file);
}

void expect_matches_golden(const std::string& file) {
    const std::string golden = read_file(std::string(SERVET_GOLDEN_DIR) + "/" + file +
                                         ".profile");
    ASSERT_FALSE(golden.empty());
    const std::string produced = golden_profile_text(machine_named(file));
    EXPECT_EQ(produced, golden)
        << "profile for " << file << " drifted from its golden; if the change is "
        << "intentional, rebuild target regen_golden_profiles and review the diff";
}

TEST(GoldenProfiles, Dempsey) { expect_matches_golden("dempsey"); }

TEST(GoldenProfiles, Athlon3200) { expect_matches_golden("athlon3200"); }

TEST(GoldenProfiles, Nehalem2S) { expect_matches_golden("nehalem2s"); }

// The golden files are regeneration output, so a machine added to
// golden_machines() without a checked-in golden fails here rather than
// silently going untested.
TEST(GoldenProfiles, EveryPinnedMachineHasAGolden) {
    for (const auto& machine : golden_machines()) {
        std::ifstream in(std::string(SERVET_GOLDEN_DIR) + "/" + machine.file + ".profile");
        EXPECT_TRUE(in.good()) << "missing golden for " << machine.file;
    }
}

}  // namespace
}  // namespace servet::golden
