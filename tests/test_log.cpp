#include "base/log.hpp"

#include <gtest/gtest.h>

namespace servet {
namespace {

class LogLevelGuard {
  public:
    LogLevelGuard() : saved_(log_level()) {}
    ~LogLevelGuard() { set_log_level(saved_); }

  private:
    LogLevel saved_;
};

TEST(Log, LevelRoundTrips) {
    LogLevelGuard guard;
    set_log_level(LogLevel::Debug);
    EXPECT_EQ(log_level(), LogLevel::Debug);
    set_log_level(LogLevel::Error);
    EXPECT_EQ(log_level(), LogLevel::Error);
}

TEST(Log, LevelsAreOrdered) {
    EXPECT_LT(LogLevel::Debug, LogLevel::Info);
    EXPECT_LT(LogLevel::Info, LogLevel::Warn);
    EXPECT_LT(LogLevel::Warn, LogLevel::Error);
}

TEST(Log, EmitBelowThresholdIsSafeNoop) {
    LogLevelGuard guard;
    set_log_level(LogLevel::Error);
    // Must not crash or emit; we can at least exercise the path.
    logf(LogLevel::Debug, "dropped %d", 1);
    logf(LogLevel::Info, "dropped %s", "too");
}

TEST(Log, EmitAboveThresholdIsSafe) {
    LogLevelGuard guard;
    set_log_level(LogLevel::Debug);
    testing::internal::CaptureStderr();
    logf(LogLevel::Warn, "hello %d", 42);
    const std::string captured = testing::internal::GetCapturedStderr();
    EXPECT_NE(captured.find("[servet warn +"), std::string::npos);
    EXPECT_NE(captured.find("] hello 42"), std::string::npos);
}

TEST(Log, PrefixCarriesClockTimestampAndThreadOrdinal) {
    LogLevelGuard guard;
    set_log_level(LogLevel::Debug);
    testing::internal::CaptureStderr();
    logf(LogLevel::Info, "stamped");
    const std::string captured = testing::internal::GetCapturedStderr();
    // "[servet info +<seconds> t<ordinal>] stamped" — the timestamp and
    // ordinal come from base/clock, shared with obs trace spans.
    EXPECT_NE(captured.find("[servet info +"), std::string::npos);
    EXPECT_NE(captured.find(" t"), std::string::npos);
    EXPECT_NE(captured.find("] stamped"), std::string::npos);
}

TEST(Log, LongMessagesTruncateSafely) {
    LogLevelGuard guard;
    set_log_level(LogLevel::Debug);
    const std::string huge(5000, 'x');
    testing::internal::CaptureStderr();
    logf(LogLevel::Error, "%s", huge.c_str());
    const std::string captured = testing::internal::GetCapturedStderr();
    EXPECT_LT(captured.size(), 1200u);  // buffer-bounded
}

}  // namespace
}  // namespace servet
