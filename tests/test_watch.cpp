// Continuous profiling end to end: the watch loop's golden verdicts
// (perturbed -> drift.confirmed, unperturbed -> drift.none), series
// byte-identity across --jobs and across resumes, crash-tail recovery,
// and the identity hash that guards a resumed series.
#include "watch/watch.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <fstream>
#include <string>

#include "base/fs.hpp"
#include "core/journal.hpp"
#include "msg/sim_network.hpp"
#include "platform/sim_platform.hpp"
#include "sim/zoo.hpp"

namespace servet::watch {
namespace {

std::string unique_dir(const std::string& stem) {
    static int serial = 0;
    return testing::TempDir() + stem + "_" + std::to_string(::getpid()) + "_" +
           std::to_string(++serial);
}

std::string slurp(const std::string& path) {
    std::string text;
    EXPECT_EQ(read_file(path, &text), FileRead::Ok);
    return text;
}

sim::MachineSpec small_machine() {
    sim::zoo::SyntheticOptions options;
    options.cores = 4;
    options.l1_size = 16 * KiB;
    options.l2_size = 256 * KiB;
    options.l2_sharing = 2;
    options.jitter = 0.01;
    return sim::zoo::synthetic(options);
}

/// The fast watch subset on a small machine: cache sizes + comm, tiny
/// sweep. Every tick re-measures this.
WatchOptions fast_watch(const std::string& run_dir) {
    WatchOptions options;
    options.suite.mcalibrator.max_size = 2 * MiB;
    options.suite.mcalibrator.repeats = 3;
    options.suite.run_shared_cache = false;
    options.suite.run_mem_overhead = false;
    options.run_dir = run_dir;
    return options;
}

FaultPlan everything_spikes() {
    FaultPlan plan;
    plan.spike_probability = 1.0;
    plan.spike_factor = 4.0;
    plan.delay_probability = 1.0;
    plan.delay_factor = 4.0;
    plan.seed = 1;
    return plan;
}

TEST(Sample, EncodeDecodeRoundTripsUglyDoubles) {
    const std::map<std::string, double> metrics = {
        {"a.third", 1.0 / 3.0},
        {"b.denormal", 5e-324},
        {"c.huge", 1.7976931348623157e308},
        {"d.pi", 3.141592653589793},
    };
    const auto decoded = decode_sample(encode_sample(metrics));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, metrics);  // bit-exact, not approximately
}

TEST(Sample, DecodeRejectsMalformedLines) {
    EXPECT_FALSE(decode_sample("metric only_one_field\n").has_value());
    EXPECT_FALSE(decode_sample("sample a 1.0\n").has_value());
    EXPECT_FALSE(decode_sample("metric a not_a_number\n").has_value());
    EXPECT_FALSE(decode_sample("metric a 1.0\nmetric a 2.0\n").has_value());
}

TEST(WatchOptionsHash, SchedulingKnobsExcludedPerturbationIncluded) {
    WatchOptions base = fast_watch("unused");
    const std::uint64_t h = watch_options_hash(base);

    // jobs, ticks, interval, drift thresholds: legal to change on resume.
    WatchOptions jobs = base;
    jobs.suite.jobs = 4;
    EXPECT_EQ(watch_options_hash(jobs), h);
    WatchOptions ticks = base;
    ticks.ticks = 50;
    ticks.interval_seconds = 3600;
    ticks.drift.suspect_score = 2.0;
    EXPECT_EQ(watch_options_hash(ticks), h);

    // The perturbation changes measured values: a perturbed series must
    // never silently extend a clean one.
    WatchOptions perturbed = base;
    perturbed.perturb_tick = 3;
    perturbed.perturb = everything_spikes();
    EXPECT_NE(watch_options_hash(perturbed), h);
    WatchOptions sweep = base;
    sweep.suite.mcalibrator.max_size = 4 * MiB;
    EXPECT_NE(watch_options_hash(sweep), h);
}

TEST(Watch, UnperturbedTicksAreAllNone) {
    SimPlatform platform(small_machine());
    msg::SimNetwork network(platform.spec());
    WatchOptions options = fast_watch(unique_dir("watch_stable"));
    options.ticks = 5;

    const WatchResult result = run_watch(platform, &network, options);
    EXPECT_EQ(result.measured, 5u);
    EXPECT_EQ(result.replayed, 0u);
    EXPECT_EQ(result.worst, Verdict::None);
    ASSERT_EQ(result.reports.size(), 5u);
    for (const TickReport& report : result.reports) {
        EXPECT_FALSE(report.replayed);
        for (const MetricVerdict& v : report.verdicts)
            EXPECT_EQ(v.verdict, Verdict::None)
                << "tick " << report.tick << " metric " << v.metric;
    }
}

TEST(Watch, PerturbedTicksConfirmDrift) {
    SimPlatform platform(small_machine());
    msg::SimNetwork network(platform.spec());
    WatchOptions options = fast_watch(unique_dir("watch_drift"));
    options.ticks = 5;
    options.perturb_tick = 3;
    options.perturb = everything_spikes();

    const WatchResult result = run_watch(platform, &network, options);
    EXPECT_EQ(result.worst, Verdict::Confirmed);
    ASSERT_EQ(result.reports.size(), 5u);
    for (const TickReport& report : result.reports) {
        Verdict tick_worst = Verdict::None;
        for (const MetricVerdict& v : report.verdicts)
            tick_worst = worse(tick_worst, v.verdict);
        if (report.tick < 3)
            EXPECT_EQ(tick_worst, Verdict::None) << "tick " << report.tick;
        else
            EXPECT_EQ(tick_worst, Verdict::Confirmed) << "tick " << report.tick;
    }
}

TEST(Watch, SeriesIsByteIdenticalAcrossJobs) {
    const std::string serial_dir = unique_dir("watch_jobs1");
    const std::string parallel_dir = unique_dir("watch_jobs4");
    {
        SimPlatform platform(small_machine());
        msg::SimNetwork network(platform.spec());
        WatchOptions options = fast_watch(serial_dir);
        options.ticks = 3;
        (void)run_watch(platform, &network, options);
    }
    {
        SimPlatform platform(small_machine());
        msg::SimNetwork network(platform.spec());
        WatchOptions options = fast_watch(parallel_dir);
        options.suite.jobs = 4;
        options.ticks = 3;
        (void)run_watch(platform, &network, options);
    }
    const std::string serial = slurp(core::SeriesJournal::file_path(serial_dir));
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, slurp(core::SeriesJournal::file_path(parallel_dir)));
}

TEST(Watch, ResumedSeriesMatchesUninterruptedRunByteForByte) {
    const std::string resumed_dir = unique_dir("watch_resumed");
    const std::string straight_dir = unique_dir("watch_straight");
    SimPlatform platform(small_machine());
    msg::SimNetwork network(platform.spec());

    WatchOptions first = fast_watch(resumed_dir);
    first.ticks = 3;
    (void)run_watch(platform, &network, first);
    WatchOptions second = fast_watch(resumed_dir);
    second.ticks = 2;
    const WatchResult continued = run_watch(platform, &network, second);
    EXPECT_EQ(continued.replayed, 3u);
    EXPECT_EQ(continued.measured, 2u);

    WatchOptions straight = fast_watch(straight_dir);
    straight.ticks = 5;
    (void)run_watch(platform, &network, straight);

    EXPECT_EQ(slurp(core::SeriesJournal::file_path(resumed_dir)),
              slurp(core::SeriesJournal::file_path(straight_dir)));
}

TEST(Watch, ResumeIntoDriftedSeriesReportsWorstFromReplay) {
    SimPlatform platform(small_machine());
    msg::SimNetwork network(platform.spec());
    WatchOptions options = fast_watch(unique_dir("watch_redrift"));
    options.ticks = 4;
    options.perturb_tick = 3;
    options.perturb = everything_spikes();
    (void)run_watch(platform, &network, options);

    // A resumed watch that measures nothing new must still surface the
    // confirmed drift committed to the series.
    options.ticks = 0;
    const WatchResult resumed = run_watch(platform, &network, options);
    EXPECT_EQ(resumed.replayed, 4u);
    EXPECT_EQ(resumed.measured, 0u);
    EXPECT_EQ(resumed.worst, Verdict::Confirmed);
}

TEST(Watch, TornTailIsDiscardedAndTheTickRemeasured) {
    SimPlatform platform(small_machine());
    msg::SimNetwork network(platform.spec());
    WatchOptions options = fast_watch(unique_dir("watch_torn"));
    options.ticks = 2;
    (void)run_watch(platform, &network, options);

    // A SIGKILL mid-append leaves a torn frame after the committed ticks.
    const std::string path = core::SeriesJournal::file_path(options.run_dir);
    const std::string committed = slurp(path);
    {
        std::ofstream out(path, std::ios::binary | std::ios::app);
        out << "sample 2 512\nmetric torn 0x1p";
        ASSERT_TRUE(static_cast<bool>(out));
    }

    options.ticks = 1;
    const WatchResult resumed = run_watch(platform, &network, options);
    EXPECT_TRUE(resumed.dropped_torn_tail);
    EXPECT_EQ(resumed.replayed, 2u);
    EXPECT_EQ(resumed.measured, 1u);
    EXPECT_EQ(resumed.worst, Verdict::None);
    // The re-measured tick 2 landed after the committed prefix.
    const std::string after = slurp(path);
    EXPECT_EQ(after.compare(0, committed.size(), committed), 0);
    EXPECT_GT(after.size(), committed.size());
}

TEST(Watch, IncompatibleSeriesIsRefused) {
    SimPlatform platform(small_machine());
    msg::SimNetwork network(platform.spec());
    WatchOptions options = fast_watch(unique_dir("watch_incompat"));
    options.ticks = 1;
    (void)run_watch(platform, &network, options);

    WatchOptions changed = options;
    changed.suite.mcalibrator.max_size = 4 * MiB;  // different sweep
    EXPECT_THROW((void)run_watch(platform, &network, changed), core::JournalError);
}

}  // namespace
}  // namespace servet::watch
