#include "autotune/collectives.hpp"

#include <gtest/gtest.h>

#include <set>

#include "autotune/collective_select.hpp"
#include "autotune/search/strategy.hpp"
#include "core/suite.hpp"
#include "msg/sim_network.hpp"
#include "platform/sim_platform.hpp"
#include "sim/zoo.hpp"

namespace servet::autotune {
namespace {

std::vector<CoreId> core_range(int n, CoreId first = 0) {
    std::vector<CoreId> cores;
    for (int i = 0; i < n; ++i) cores.push_back(first + i);
    return cores;
}

core::Profile ft_profile() {
    // Measured profile of the 2-node Finis Terrae model (cached across
    // tests; the comm phase is analytic and fast).
    static const core::Profile profile = [] {
        const sim::MachineSpec spec = sim::zoo::finis_terrae(2);
        SimPlatform platform(spec);
        msg::SimNetwork network(spec);
        core::SuiteOptions options;
        options.mcalibrator.max_size = 28 * MiB;
        options.run_shared_cache = false;
        options.run_mem_overhead = false;
        const auto result = core::run_suite(platform, &network, options);
        return result.to_profile(platform.name(), spec.n_cores, spec.page_size);
    }();
    return profile;
}

TEST(Broadcast, FlatIsValidAndLinear) {
    const auto cores = core_range(8);
    const Schedule schedule = broadcast_flat(2, cores);
    EXPECT_TRUE(schedule.validate_broadcast(2, cores).empty());
    EXPECT_EQ(schedule.rounds.size(), 7u);
}

TEST(Broadcast, BinomialIsValidAndLogDepth) {
    for (const int n : {2, 3, 5, 8, 16, 24, 31}) {
        const auto cores = core_range(n);
        const Schedule schedule = broadcast_binomial(0, cores);
        EXPECT_TRUE(schedule.validate_broadcast(0, cores).empty()) << n;
        // ceil(log2 n) rounds.
        std::size_t expected = 0;
        while ((1u << expected) < static_cast<unsigned>(n)) ++expected;
        EXPECT_EQ(schedule.rounds.size(), expected) << n;
    }
}

TEST(Broadcast, BinomialNonZeroRoot) {
    const auto cores = core_range(6);
    const Schedule schedule = broadcast_binomial(4, cores);
    EXPECT_TRUE(schedule.validate_broadcast(4, cores).empty());
    EXPECT_EQ(schedule.rounds.front().transfers.front().a, 4);
}

TEST(Broadcast, HierarchicalValidOnCluster) {
    const core::Profile profile = ft_profile();
    const auto cores = core_range(32);
    const Schedule schedule = broadcast_hierarchical(0, cores, profile);
    EXPECT_TRUE(schedule.validate_broadcast(0, cores).empty());
}

TEST(Broadcast, HierarchicalCrossesSlowLayerOncePerGroup) {
    const core::Profile profile = ft_profile();
    const auto cores = core_range(32);
    const Schedule schedule = broadcast_hierarchical(0, cores, profile);
    int slow_transfers = 0;
    const int slowest = static_cast<int>(profile.comm.size()) - 1;
    for (const Round& round : schedule.rounds)
        for (const CorePair& transfer : round.transfers)
            if (profile.comm_layer_of(transfer) == slowest) ++slow_transfers;
    // Two nodes: exactly one inter-node transfer.
    EXPECT_EQ(slow_transfers, 1);
}

TEST(Broadcast, HierarchicalDegradesToBinomialOnOneLayer) {
    core::Profile profile;
    profile.cores = 4;
    core::ProfileCommLayer layer;
    layer.latency = 1e-6;
    layer.pairs = all_core_pairs(4);
    layer.p2p = {{1 * KiB, 1e-6}};
    profile.comm = {layer};
    const auto cores = core_range(4);
    const Schedule schedule = broadcast_hierarchical(0, cores, profile);
    EXPECT_TRUE(schedule.validate_broadcast(0, cores).empty());
    EXPECT_EQ(schedule.rounds.size(), 2u);  // binomial depth for 4
}

TEST(Broadcast, ValidationCatchesBrokenSchedules) {
    const auto cores = core_range(4);
    Schedule schedule;
    schedule.algorithm = "broken";
    schedule.rounds = {{{{1, 2}}}};  // sender 1 never received
    EXPECT_FALSE(schedule.validate_broadcast(0, cores).empty());

    Schedule incomplete = broadcast_binomial(0, core_range(3));
    EXPECT_FALSE(incomplete.validate_broadcast(0, cores).empty());  // core 3 missed
}

TEST(Broadcast, RunScheduleOnSimNetwork) {
    const sim::MachineSpec spec = sim::zoo::finis_terrae(2);
    msg::SimNetwork network(spec);
    const auto cores = core_range(32);
    const core::Profile profile = ft_profile();

    const Seconds flat =
        run_schedule(network, broadcast_flat(0, cores), 16 * KiB, 3);
    const Seconds binomial =
        run_schedule(network, broadcast_binomial(0, cores), 16 * KiB, 3);
    const Seconds hierarchical =
        run_schedule(network, broadcast_hierarchical(0, cores, profile), 16 * KiB, 3);

    // The measured ordering the selector's estimates must reproduce.
    EXPECT_LT(binomial, flat);
    EXPECT_LT(hierarchical, binomial);
}

TEST(Broadcast, EstimateTracksMeasuredCost) {
    const sim::MachineSpec spec = sim::zoo::finis_terrae(2);
    msg::SimNetwork network(spec);
    const core::Profile profile = ft_profile();
    const auto cores = core_range(32);
    for (const Schedule& schedule :
         {broadcast_binomial(0, cores), broadcast_hierarchical(0, cores, profile)}) {
        const Seconds measured = run_schedule(network, schedule, 16 * KiB, 5);
        const Seconds estimated = estimate_schedule(profile, schedule, 16 * KiB);
        EXPECT_NEAR(estimated / measured, 1.0, 0.25) << schedule.algorithm;
    }
}

TEST(Reduce, BinomialMirrorsValidly) {
    for (const int n : {2, 5, 8, 13}) {
        const auto cores = core_range(n);
        const Schedule schedule = reduce_binomial(0, cores);
        EXPECT_TRUE(validate_reduce(schedule, 0, cores).empty()) << n;
        // Same depth as the broadcast it mirrors.
        EXPECT_EQ(schedule.rounds.size(), broadcast_binomial(0, cores).rounds.size());
    }
}

TEST(Reduce, FirstRoundComesFromLeaves) {
    const auto cores = core_range(8);
    const Schedule schedule = reduce_binomial(0, cores);
    // The mirrored last broadcast round: leaves send first; the root
    // receives in the final round.
    bool root_receives_last = false;
    for (const CorePair& t : schedule.rounds.back().transfers)
        if (t.b == 0) root_receives_last = true;
    EXPECT_TRUE(root_receives_last);
    for (const CorePair& t : schedule.rounds.front().transfers) EXPECT_NE(t.a, 0);
}

TEST(Reduce, HierarchicalValidOnCluster) {
    const core::Profile profile = ft_profile();
    const auto cores = core_range(32);
    const Schedule schedule = reduce_hierarchical(0, cores, profile);
    EXPECT_TRUE(validate_reduce(schedule, 0, cores).empty());
    // Still exactly one inter-node transfer on the 2-node model.
    int slow = 0;
    const int slowest = static_cast<int>(profile.comm.size()) - 1;
    for (const Round& round : schedule.rounds)
        for (const CorePair& t : round.transfers)
            if (profile.comm_layer_of(t) == slowest) ++slow;
    EXPECT_EQ(slow, 1);
}

TEST(Reduce, ValidatorRejectsPrematureSend) {
    // Core 1 forwards to the root before its child (2) reported in.
    Schedule schedule;
    schedule.algorithm = "broken-reduce";
    schedule.rounds = {{{{1, 0}}}, {{{2, 1}}}};
    EXPECT_FALSE(validate_reduce(schedule, 0, core_range(3)).empty());
}

TEST(Allgather, RingShape) {
    const auto cores = core_range(6);
    const Schedule schedule = allgather_ring(cores);
    ASSERT_EQ(schedule.rounds.size(), 5u);  // n-1 rounds
    for (const Round& round : schedule.rounds) {
        EXPECT_EQ(round.transfers.size(), 6u);  // full ring each round
        // Each core sends exactly once and receives exactly once.
        std::set<CoreId> senders, receivers;
        for (const CorePair& t : round.transfers) {
            EXPECT_TRUE(senders.insert(t.a).second);
            EXPECT_TRUE(receivers.insert(t.b).second);
        }
    }
}

TEST(Allgather, RingDeliversAllBlocks) {
    // Block-level simulation: after n-1 rounds every core holds all n
    // blocks (block b travels one hop per round).
    const int n = 7;
    const auto cores = core_range(n);
    const Schedule schedule = allgather_ring(cores);
    // received[i] = number of distinct blocks at core i (starts with own).
    std::vector<std::set<CoreId>> blocks(static_cast<std::size_t>(n));
    for (CoreId i = 0; i < n; ++i) blocks[static_cast<std::size_t>(i)].insert(i);
    for (const Round& round : schedule.rounds) {
        std::vector<std::set<CoreId>> next = blocks;
        for (const CorePair& t : round.transfers) {
            // Ring semantics: forward the block received most recently ==
            // the block originating (sender - round) — equivalently, the
            // sender's full set propagates one hop per round in this
            // abstraction; use set union which upper-bounds and lower-
            // bounds identically for the ring.
            next[static_cast<std::size_t>(t.b)].insert(
                blocks[static_cast<std::size_t>(t.a)].begin(),
                blocks[static_cast<std::size_t>(t.a)].end());
        }
        blocks = std::move(next);
    }
    for (CoreId i = 0; i < n; ++i)
        EXPECT_EQ(blocks[static_cast<std::size_t>(i)].size(), static_cast<std::size_t>(n));
}

TEST(Allgather, RunsOnSimNetwork) {
    const sim::MachineSpec spec = sim::zoo::finis_terrae(2);
    msg::SimNetwork network(spec);
    const Seconds ring = run_schedule(network, allgather_ring(core_range(32)), 16 * KiB, 2);
    EXPECT_GT(ring, 0.0);
}

TEST(ScatterAllgather, BlockCoverage) {
    // Block-level simulation over an abstract n-block payload: after the
    // scatter every core owns at least one block and all n blocks exist
    // somewhere; after the allgather every core has them all. We verify
    // the cheaper structural invariant: transfer counts and factors.
    const auto cores = core_range(8);
    const Schedule schedule = broadcast_scatter_allgather(0, cores);
    // log2(8) = 3 scatter rounds + 7 allgather rounds.
    ASSERT_EQ(schedule.rounds.size(), 10u);
    EXPECT_DOUBLE_EQ(schedule.rounds[0].size_factor, 0.5);
    EXPECT_DOUBLE_EQ(schedule.rounds[1].size_factor, 0.25);
    EXPECT_DOUBLE_EQ(schedule.rounds[2].size_factor, 0.125);
    for (std::size_t r = 3; r < 10; ++r) {
        EXPECT_DOUBLE_EQ(schedule.rounds[r].size_factor, 0.125);
        EXPECT_EQ(schedule.rounds[r].transfers.size(), 8u);  // full ring
    }
}

TEST(ScatterAllgather, MovesLessBytesPerLinkThanBinomial) {
    // The defining property: the largest per-link payload is size/2 in the
    // first scatter round, vs full size on every binomial hop.
    const auto cores = core_range(16);
    const Schedule schedule = broadcast_scatter_allgather(0, cores);
    for (const Round& round : schedule.rounds) EXPECT_LE(round.size_factor, 0.5);
}

TEST(ScatterAllgather, CrossoverAgainstBinomial) {
    // Small messages: latency-dominated, binomial's log2(n) rounds win.
    // Large messages: bandwidth-dominated, scatter-allgather wins. The
    // profile-driven estimates must show the crossover.
    const core::Profile profile = ft_profile();
    const auto cores = core_range(16);  // one node: uniform layer
    const Schedule binomial = broadcast_binomial(0, cores);
    const Schedule vandegeijn = broadcast_scatter_allgather(0, cores);

    const Seconds small_binomial = estimate_schedule(profile, binomial, 1 * KiB);
    const Seconds small_vdg = estimate_schedule(profile, vandegeijn, 1 * KiB);
    EXPECT_LT(small_binomial, small_vdg) << "binomial must win small messages";

    const Seconds large_binomial = estimate_schedule(profile, binomial, 4 * MiB);
    const Seconds large_vdg = estimate_schedule(profile, vandegeijn, 4 * MiB);
    EXPECT_LT(large_vdg, large_binomial) << "scatter-allgather must win large messages";
}

TEST(ScatterAllgather, MeasuredCrossoverOnSimNetwork) {
    const sim::MachineSpec spec = sim::zoo::finis_terrae(2);
    msg::SimNetwork network(spec);
    const auto cores = core_range(16);
    const Seconds small_binomial =
        run_schedule(network, broadcast_binomial(0, cores), 1 * KiB, 3);
    const Seconds small_vdg =
        run_schedule(network, broadcast_scatter_allgather(0, cores), 1 * KiB, 3);
    const Seconds large_binomial =
        run_schedule(network, broadcast_binomial(0, cores), 4 * MiB, 3);
    const Seconds large_vdg =
        run_schedule(network, broadcast_scatter_allgather(0, cores), 4 * MiB, 3);
    EXPECT_LT(small_binomial, small_vdg);
    EXPECT_LT(large_vdg, large_binomial);
}

TEST(Allreduce, RecursiveDoublingValidates) {
    for (const int n : {2, 4, 8, 16, 32}) {
        const auto cores = core_range(n);
        const Schedule schedule = allreduce_recursive_doubling(cores);
        EXPECT_TRUE(validate_allreduce(schedule, cores).empty()) << n;
        // log2(n) rounds, n transfers per round (both directions).
        std::size_t depth = 0;
        while ((1 << depth) < n) ++depth;
        EXPECT_EQ(schedule.rounds.size(), depth);
        for (const Round& round : schedule.rounds) {
            EXPECT_EQ(round.transfers.size(), static_cast<std::size_t>(n));
            EXPECT_TRUE(round.combining);
        }
    }
}

TEST(Allreduce, ComposedValidates) {
    const core::Profile profile = ft_profile();
    for (const int n : {3, 8, 17, 32}) {
        const auto cores = core_range(n);
        const Schedule schedule = allreduce_composed(0, cores, profile);
        EXPECT_TRUE(validate_allreduce(schedule, cores).empty()) << n;
    }
}

TEST(Allreduce, RecursiveDoublingRejectsNonPowerOfTwo) {
    EXPECT_DEATH((void)allreduce_recursive_doubling(core_range(6)), "power-of-two");
}

TEST(Allreduce, ValidatorCatchesIncompleteExchange) {
    // One recursive-doubling round over 4 cores reaches only distance-1
    // partners; contributions from the far half are missing.
    Schedule partial = allreduce_recursive_doubling(core_range(4));
    partial.rounds.pop_back();
    EXPECT_FALSE(validate_allreduce(partial, core_range(4)).empty());
}

TEST(Allreduce, RecursiveDoublingHalvesDepth) {
    const core::Profile profile = ft_profile();
    const auto cores = core_range(16);  // intra-node: uniform layer
    const Schedule composed = allreduce_composed(0, cores, profile);
    const Schedule doubling = allreduce_recursive_doubling(cores);
    EXPECT_LT(doubling.rounds.size(), composed.rounds.size());
    // And the selector notices for latency-bound payloads.
    const auto choice = choose_allreduce(profile, cores, 1 * KiB);
    EXPECT_EQ(choice.schedule.algorithm, "recursive-doubling");
}

TEST(Allreduce, SelectorFallsBackWithoutPowerOfTwo) {
    const core::Profile profile = ft_profile();
    const auto choice = choose_allreduce(profile, core_range(12), 1 * KiB);
    EXPECT_EQ(choice.schedule.algorithm, "composed-allreduce");
    EXPECT_EQ(choice.candidates.size(), 1u);
}

TEST(CollectiveSelect, PicksHierarchicalOnCluster) {
    const core::Profile profile = ft_profile();
    const auto choice = choose_broadcast(profile, 0, core_range(32), 16 * KiB);
    EXPECT_EQ(choice.schedule.algorithm, "hierarchical");
    EXPECT_EQ(choice.candidates.size(), 4u);
    for (const auto& [name, cost] : choice.candidates)
        EXPECT_GE(cost, choice.estimated_cost);
}

TEST(CollectiveSelect, SwitchesAlgorithmWithMessageSize) {
    // The autotuning payoff: the same machine, different winners by size.
    const core::Profile profile = ft_profile();
    const auto cores = core_range(16);
    const auto small = choose_broadcast(profile, 0, cores, 1 * KiB);
    const auto large = choose_broadcast(profile, 0, cores, 4 * MiB);
    EXPECT_NE(small.schedule.algorithm, "scatter-allgather");
    EXPECT_EQ(large.schedule.algorithm, "scatter-allgather");
}

TEST(CollectiveSelect, SmallGroupIntraNode) {
    const core::Profile profile = ft_profile();
    // Within one node the hierarchy adds nothing; binomial and
    // hierarchical tie, flat loses.
    const auto choice = choose_broadcast(profile, 0, core_range(8), 16 * KiB);
    EXPECT_NE(choice.schedule.algorithm, "flat");
    double flat_cost = 0;
    for (const auto& [name, cost] : choice.candidates)
        if (name == "flat") flat_cost = cost;
    EXPECT_GT(flat_cost, choice.estimated_cost);
}

TEST(CollectiveSelectDeath, SingleCoreGroupIsALoudPreconditionFailure) {
    // A one-core "collective" is a caller bug, not a tuning question; the
    // selectors refuse it with a stable CHECK rather than fabricating a
    // zero-cost schedule the runtime would then try to execute.
    const core::Profile profile = ft_profile();
    EXPECT_DEATH((void)choose_broadcast(profile, 0, {0}, 16 * KiB), "cores");
    EXPECT_DEATH((void)choose_allreduce(profile, {0}, 16 * KiB), "cores");
}

TEST(CollectiveSelect, RecursiveDoublingOfferedExactlyAtPowersOfTwo) {
    const core::Profile profile = ft_profile();
    const auto has_doubling = [](const CollectiveChoice& choice) {
        for (const auto& [name, cost] : choice.candidates)
            if (name == "recursive-doubling") return true;
        return false;
    };
    EXPECT_TRUE(has_doubling(choose_allreduce(profile, core_range(8), 1 * KiB)));
    EXPECT_FALSE(has_doubling(choose_allreduce(profile, core_range(6), 1 * KiB)));
}

TEST(CollectiveSelect, EmptyCandidateListYieldsNoTunable) {
    const core::Profile profile = ft_profile();
    EXPECT_EQ(make_collective_tunable(profile, "broadcast", {}, 1 * KiB), nullptr);
}

TEST(CollectiveSelect, TunableSearchMatchesChooseBroadcast) {
    const core::Profile profile = ft_profile();
    const auto choice = choose_broadcast(profile, 0, core_range(16), 16 * KiB);
    std::vector<Schedule> schedules;
    schedules.push_back(broadcast_flat(0, core_range(16)));
    schedules.push_back(broadcast_binomial(0, core_range(16)));
    auto tunable =
        make_collective_tunable(profile, "broadcast", std::move(schedules), 16 * KiB);
    ASSERT_NE(tunable, nullptr);
    const auto result = search::run_search(*tunable, {});
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->space_size, 2u);
    // Binomial beats flat on any multi-core group, matching the full
    // selector's ranking of the same two candidates.
    EXPECT_EQ(result->best.label("algorithm"), "binomial");
    double flat_cost = 0;
    double binomial_cost = 0;
    for (const auto& [name, cost] : choice.candidates) {
        if (name == "flat") flat_cost = cost;
        if (name == "binomial") binomial_cost = cost;
    }
    EXPECT_LT(binomial_cost, flat_cost);
    EXPECT_EQ(result->best_cost, binomial_cost);
}

}  // namespace
}  // namespace servet::autotune
