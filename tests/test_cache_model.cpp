#include "sim/cache.hpp"

#include <gtest/gtest.h>

namespace servet::sim {
namespace {

CacheGeometry small_cache() {
    // 4KB, 2-way, 64B lines -> 32 sets.
    return {.size = 4 * KiB, .line_size = 64, .associativity = 2,
            .physically_indexed = false};
}

TEST(CacheGeometry, SetCounts) {
    EXPECT_EQ(small_cache().set_count(), 32u);
    const CacheGeometry l3{.size = 12 * MiB, .line_size = 64, .associativity = 16};
    EXPECT_EQ(l3.set_count(), 12288u);  // non-power-of-two is legal
    EXPECT_TRUE(l3.valid());
}

TEST(CacheGeometry, PageSetCount) {
    // Section III-A2: CS / (K * PS).
    const CacheGeometry l2{.size = 2 * MiB, .line_size = 64, .associativity = 8};
    EXPECT_EQ(l2.page_set_count(4 * KiB), 64u);
    const CacheGeometry l3{.size = 9 * MiB, .line_size = 128, .associativity = 12};
    EXPECT_EQ(l3.page_set_count(16 * KiB), 48u);
}

struct GeometryCase {
    CacheGeometry geometry;
    bool valid;
};

class GeometryValidity : public ::testing::TestWithParam<GeometryCase> {};

TEST_P(GeometryValidity, Checks) {
    EXPECT_EQ(GetParam().geometry.valid(), GetParam().valid);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, GeometryValidity,
    ::testing::Values(
        GeometryCase{{32 * KiB, 64, 8, false}, true},
        GeometryCase{{0, 64, 8, false}, false},          // no size
        GeometryCase{{32 * KiB, 0, 8, false}, false},    // no line
        GeometryCase{{32 * KiB, 96, 8, false}, false},   // non-pow2 line
        GeometryCase{{32 * KiB, 64, 0, false}, false},   // no ways
        GeometryCase{{100000, 64, 8, false}, false},     // not multiple of way bytes
        GeometryCase{{3 * MiB, 64, 12, true}, true},     // Dunnington L2
        GeometryCase{{64, 64, 1, false}, true}));        // minimal single set

TEST(CacheGeometry, DegenerateGeometriesReportInvalidWithoutAborting) {
    // valid() must be safe to call on any shape — it is the guard callers
    // use before the CHECK-protected accessors.
    const CacheGeometry zero_sets{.size = 256, .line_size = 64, .associativity = 8};
    EXPECT_FALSE(zero_sets.valid());  // way capacity 512 > size
    const CacheGeometry no_ways{.size = 4 * KiB, .line_size = 64, .associativity = 0};
    EXPECT_FALSE(no_ways.valid());
}

TEST(CacheGeometryDeath, SetCountChecksDegenerateShapes) {
    // A geometry whose way capacity exceeds its size has zero sets; using
    // it for indexing would divide by zero downstream, so set_count()
    // refuses outright rather than returning 0.
    const CacheGeometry zero_sets{.size = 256, .line_size = 64, .associativity = 8};
    EXPECT_DEATH((void)zero_sets.set_count(), "degenerate cache geometry");
    const CacheGeometry no_ways{.size = 4 * KiB, .line_size = 64, .associativity = 0};
    EXPECT_DEATH((void)no_ways.set_count(), "degenerate cache geometry");
    EXPECT_DEATH((void)no_ways.page_set_count(4 * KiB), "degenerate cache geometry");
}

TEST(SetAssocCache, MissesThenHits) {
    SetAssocCache cache(small_cache());
    EXPECT_FALSE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x1004));  // same line
    EXPECT_EQ(cache.hit_count(), 2u);
    EXPECT_EQ(cache.miss_count(), 1u);
}

TEST(SetAssocCache, WorkingSetWithinCapacityAllHits) {
    SetAssocCache cache(small_cache());
    // Touch every line of exactly the cache size.
    for (std::uint64_t a = 0; a < 4 * KiB; a += 64) (void)cache.access(a);
    cache.reset_counters();
    for (int pass = 0; pass < 3; ++pass)
        for (std::uint64_t a = 0; a < 4 * KiB; a += 64) (void)cache.access(a);
    EXPECT_EQ(cache.miss_count(), 0u);
}

TEST(SetAssocCache, CyclicOverflowThrashesUnderLru) {
    // 3 lines mapping to one 2-way set, accessed cyclically: LRU evicts
    // the line about to be used -> 100% misses. This is the mechanism
    // behind both the exact stride-divides-size property and the
    // shared-cache ratio.
    SetAssocCache cache(small_cache());
    const std::uint64_t set_stride = 32 * 64;  // same set, different tags
    for (int pass = 0; pass < 4; ++pass)
        for (int j = 0; j < 3; ++j) (void)cache.access(static_cast<std::uint64_t>(j) * set_stride);
    cache.reset_counters();
    for (int j = 0; j < 3; ++j) (void)cache.access(static_cast<std::uint64_t>(j) * set_stride);
    EXPECT_EQ(cache.miss_count(), 3u);
}

TEST(SetAssocCache, LruEvictsLeastRecent) {
    SetAssocCache cache(small_cache());
    const std::uint64_t set_stride = 32 * 64;
    (void)cache.access(0 * set_stride);  // A
    (void)cache.access(1 * set_stride);  // B
    (void)cache.access(0 * set_stride);  // A again (B is now LRU)
    (void)cache.access(2 * set_stride);  // C evicts B
    EXPECT_TRUE(cache.contains(0 * set_stride));
    EXPECT_FALSE(cache.contains(1 * set_stride));
    EXPECT_TRUE(cache.contains(2 * set_stride));
}

TEST(SetAssocCache, PrefetchFillInsertsWithoutCounting) {
    SetAssocCache cache(small_cache());
    cache.prefetch_fill(0x2000);
    EXPECT_EQ(cache.hit_count() + cache.miss_count(), 0u);
    EXPECT_TRUE(cache.contains(0x2000));
    EXPECT_TRUE(cache.access(0x2000));
}

TEST(SetAssocCache, ContainsDoesNotDisturbLru) {
    SetAssocCache cache(small_cache());
    const std::uint64_t set_stride = 32 * 64;
    (void)cache.access(0 * set_stride);  // A (LRU after B)
    (void)cache.access(1 * set_stride);  // B
    EXPECT_TRUE(cache.contains(0 * set_stride));  // must not refresh A
    (void)cache.access(2 * set_stride);           // evicts A, not B
    EXPECT_FALSE(cache.contains(0 * set_stride));
    EXPECT_TRUE(cache.contains(1 * set_stride));
}

TEST(SetAssocCache, InvalidateAllEmpties) {
    SetAssocCache cache(small_cache());
    (void)cache.access(0x40);
    cache.invalidate_all();
    EXPECT_FALSE(cache.contains(0x40));
    EXPECT_FALSE(cache.access(0x40));
}

TEST(SetAssocCache, DistinctSetsDoNotInterfere) {
    SetAssocCache cache(small_cache());
    // Fill set 0 beyond capacity; set 1 lines must stay resident.
    (void)cache.access(64);  // set 1
    const std::uint64_t set_stride = 32 * 64;
    for (int j = 0; j < 8; ++j) (void)cache.access(static_cast<std::uint64_t>(j) * set_stride);
    EXPECT_TRUE(cache.contains(64));
}

TEST(SetAssocCache, NonPowerOfTwoSetsIndexCorrectly) {
    // 3 sets of 1 way, 64B lines: 192 bytes.
    SetAssocCache cache({.size = 192, .line_size = 64, .associativity = 1});
    EXPECT_EQ(cache.geometry().set_count(), 3u);
    (void)cache.access(0 * 64);   // set 0
    (void)cache.access(1 * 64);   // set 1
    (void)cache.access(2 * 64);   // set 2
    EXPECT_TRUE(cache.contains(0));
    (void)cache.access(3 * 64);   // set 0 again (3 mod 3), evicts line 0
    EXPECT_FALSE(cache.contains(0));
    EXPECT_TRUE(cache.contains(64));
}

TEST(SetAssocCache, StrideDividesSizeProperty) {
    // The paper's stride rationale: with a 1KB stride that divides the
    // cache size, a strided working set of exactly the cache size fits
    // (per-set load == associativity) and one of twice the size thrashes.
    const CacheGeometry geometry{.size = 32 * KiB, .line_size = 64, .associativity = 8};
    SetAssocCache cache(geometry);
    const std::uint64_t stride = 1 * KiB;

    for (int pass = 0; pass < 2; ++pass)
        for (std::uint64_t a = 0; a < 32 * KiB; a += stride) (void)cache.access(a);
    cache.reset_counters();
    for (std::uint64_t a = 0; a < 32 * KiB; a += stride) (void)cache.access(a);
    EXPECT_EQ(cache.miss_count(), 0u) << "32KB strided set must fit a 32KB cache";

    cache.invalidate_all();
    for (int pass = 0; pass < 2; ++pass)
        for (std::uint64_t a = 0; a < 64 * KiB; a += stride) (void)cache.access(a);
    cache.reset_counters();
    for (std::uint64_t a = 0; a < 64 * KiB; a += stride) (void)cache.access(a);
    EXPECT_EQ(cache.hit_count(), 0u) << "64KB strided set must thrash a 32KB cache";
}

}  // namespace
}  // namespace servet::sim
