// Fault tolerance of the profile-service path, end to end: the
// deterministic chaos transport (ChaosProxy), the retrying client's
// stable error codes / bounded deadlines / byte-identical traces, the
// hardened server (idle reaping, connection shedding, If-Match CAS,
// auth token), and the watch push path's spool-and-drain behavior
// across a server outage.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "base/fault_plan.hpp"
#include "core/profile.hpp"
#include "msg/sim_network.hpp"
#include "platform/sim_platform.hpp"
#include "serve/chaos.hpp"
#include "serve/client.hpp"
#include "serve/handlers.hpp"
#include "serve/http.hpp"
#include "serve/server.hpp"
#include "serve/store.hpp"
#include "sim/zoo.hpp"
#include "watch/watch.hpp"

namespace servet::serve {
namespace {

constexpr const char* kFp = "00000000deadbeef";
constexpr const char* kOpts = "0123456789abcdef";
constexpr const char* kOpts2 = "fedcba9876543210";

std::string profile_body(const std::string& machine = "test-robust") {
    core::Profile profile;
    profile.machine = machine;
    profile.cores = 2;
    profile.page_size = 4096;
    return profile.serialize();
}

std::string unique_dir(const std::string& stem) {
    static int serial = 0;
    return testing::TempDir() + stem + "_" + std::to_string(::getpid()) + "_" +
           std::to_string(++serial);
}

/// Binds an ephemeral loopback port, closes the listener, and returns
/// the (now refused) port — a deterministic "server is down" address.
std::uint16_t dead_port() {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
    socklen_t len = sizeof addr;
    EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    ::close(fd);
    return ntohs(addr.sin_port);
}

int connect_to(std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

std::string recv_all(int fd, int timeout_ms = 5000) {
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    std::string response;
    char chunk[4096];
    while (true) {
        const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n <= 0) break;
        response.append(chunk, static_cast<std::size_t>(n));
    }
    return response;
}

std::string round_trip(std::uint16_t port, const std::string& request) {
    const int fd = connect_to(port);
    if (fd < 0) return "";
    std::size_t sent = 0;
    while (sent < request.size()) {
        const ssize_t n =
            ::send(fd, request.data() + sent, request.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) break;
        sent += static_cast<std::size_t>(n);
    }
    const std::string response = recv_all(fd);
    ::close(fd);
    return response;
}

/// A live store+server seeded with one profile, torn down on scope exit.
class LiveServer {
  public:
    explicit LiveServer(ServeOptions options = {}) {
        if (options.store_dir.empty()) options.store_dir = unique_dir("robust_store");
        root_ = options.store_dir;
        options_ = options;
        server_ = std::make_unique<ServeServer>(options_);
        std::string error;
        started_ = server_->start(&error);
        EXPECT_TRUE(started_) << error;
    }
    ~LiveServer() {
        if (started_) {
            server_->request_stop();
            server_->join();
        }
        std::error_code ec;
        std::filesystem::remove_all(root_, ec);
    }
    [[nodiscard]] std::uint16_t port() const { return server_->port(); }
    [[nodiscard]] const std::string& root() const { return root_; }
    void seed_profile() {
        const std::string body = profile_body();
        const std::string put = "PUT /v1/profile/" + std::string(kFp) + "/" + kOpts +
                                " HTTP/1.1\r\ncontent-length: " +
                                std::to_string(body.size()) +
                                "\r\nconnection: close\r\n\r\n" + body;
        const std::string response = round_trip(port(), put);
        ASSERT_EQ(response.compare(0, 12, "HTTP/1.1 201"), 0) << response;
    }

  private:
    std::string root_;
    ServeOptions options_;
    std::unique_ptr<ServeServer> server_;
    bool started_ = false;
};

FetchOptions profile_fetch(std::uint16_t port) {
    FetchOptions options;
    options.port = port;
    options.path = "/v1/profile/" + std::string(kFp) + "/" + kOpts;
    options.timeout_seconds = 2.0;
    options.deadline_seconds = 20.0;
    return options;
}

// ---- FaultPlan transport family ----

TEST(FaultPlanTransport, ParsesConnKeys) {
    const auto plan = FaultPlan::parse(
        "conn_drop=0.25,conn_delay=0.1,conn_delay_seconds=0.5,conn_reset=0.05,"
        "conn_truncate=0.1,conn_trickle=0.02,seed=7");
    ASSERT_TRUE(plan.has_value());
    EXPECT_DOUBLE_EQ(plan->conn_drop_probability, 0.25);
    EXPECT_DOUBLE_EQ(plan->conn_delay_probability, 0.1);
    EXPECT_DOUBLE_EQ(plan->conn_delay_seconds, 0.5);
    EXPECT_DOUBLE_EQ(plan->conn_reset_probability, 0.05);
    EXPECT_DOUBLE_EQ(plan->conn_truncate_probability, 0.1);
    EXPECT_DOUBLE_EQ(plan->conn_trickle_probability, 0.02);
    EXPECT_EQ(plan->seed, 7u);
    EXPECT_TRUE(plan->any_transport_faults());
    EXPECT_TRUE(plan->active());
    EXPECT_FALSE(plan->any_platform_faults());
    EXPECT_FALSE(plan->perturbs_platform_values());
}

TEST(FaultPlanTransport, FingerprintCoversEveryConnField) {
    FaultPlan base;
    const auto fp = base.fingerprint();
    FaultPlan drop = base;
    drop.conn_drop_probability = 0.5;
    FaultPlan delay = base;
    delay.conn_delay_probability = 0.5;
    FaultPlan secs = base;
    secs.conn_delay_seconds = 9.0;
    FaultPlan reset = base;
    reset.conn_reset_probability = 0.5;
    FaultPlan truncate = base;
    truncate.conn_truncate_probability = 0.5;
    FaultPlan trickle = base;
    trickle.conn_trickle_probability = 0.5;
    for (const FaultPlan& variant : {drop, delay, secs, reset, truncate, trickle})
        EXPECT_NE(variant.fingerprint(), fp);
}

// ---- ChaosProxy determinism ----

TEST(ChaosProxy, FaultSequenceIsAPureFunctionOfThePlan) {
    FaultPlan plan;
    plan.conn_drop_probability = 0.3;
    plan.conn_truncate_probability = 0.3;
    plan.seed = 42;
    const ChaosProxy a(0, plan);
    const ChaosProxy b(0, plan);
    bool saw_drop = false, saw_truncate = false, saw_none = false;
    for (std::uint64_t i = 0; i < 256; ++i) {
        EXPECT_EQ(a.fault_for(i), b.fault_for(i)) << i;
        saw_drop |= a.fault_for(i) == ChaosProxy::FaultKind::Drop;
        saw_truncate |= a.fault_for(i) == ChaosProxy::FaultKind::Truncate;
        saw_none |= a.fault_for(i) == ChaosProxy::FaultKind::None;
    }
    EXPECT_TRUE(saw_drop);
    EXPECT_TRUE(saw_truncate);
    EXPECT_TRUE(saw_none);

    FaultPlan other = plan;
    other.seed = 43;
    const ChaosProxy c(0, other);
    bool any_difference = false;
    for (std::uint64_t i = 0; i < 256; ++i)
        any_difference |= a.fault_for(i) != c.fault_for(i);
    EXPECT_TRUE(any_difference);
}

TEST(ChaosProxy, CertainPlanInjectsOnlyThatFault) {
    FaultPlan plan;
    plan.conn_trickle_probability = 1.0;
    const ChaosProxy proxy(0, plan);
    for (std::uint64_t i = 0; i < 64; ++i)
        EXPECT_EQ(proxy.fault_for(i), ChaosProxy::FaultKind::Trickle);
}

// ---- Retrying client: stable codes, bounded time, deterministic traces ----

TEST(Client, InvalidOptionsFailFastWithNetOption) {
    FetchOptions options;  // port 0, empty path
    const FetchResult result = http_fetch(options);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.code, "net.option");
    EXPECT_TRUE(result.attempts.empty());
}

TEST(Client, ConnectionRefusedRetriesWithDeterministicTrace) {
    const std::uint16_t port = dead_port();
    FetchOptions options;
    options.port = port;
    options.path = "/v1/healthz";
    options.timeout_seconds = 1.0;
    options.retry.max_attempts = 3;
    options.retry.seed = 99;

    const FetchResult first = http_fetch(options);
    EXPECT_FALSE(first.ok);
    EXPECT_EQ(first.code, "net.connect");
    ASSERT_EQ(first.attempts.size(), 3u);
    EXPECT_GT(first.attempts[0].backoff_ms, 0);
    EXPECT_EQ(first.attempts[2].backoff_ms, 0);  // last attempt: no backoff

    const FetchResult second = http_fetch(options);
    EXPECT_EQ(first.trace(), second.trace());  // byte-identical

    FetchOptions reseeded = options;
    reseeded.retry.seed = 100;
    const FetchResult third = http_fetch(reseeded);
    EXPECT_NE(first.trace(), third.trace());  // the seed is the schedule
}

TEST(Client, ConnectToBlackholeIsBoundedByTheTimeout) {
    // Regression: connect() used to run on a blocking socket, ignoring
    // --timeout entirely — a firewalled host pinned the caller for the
    // kernel's SYN-retry minutes. 10.255.255.1 never answers; the
    // non-blocking connect + poll path must give up on our clock.
    FetchOptions options;
    options.host = "10.255.255.1";
    options.port = 9;
    options.path = "/v1/healthz";
    options.timeout_seconds = 0.3;
    const auto started = std::chrono::steady_clock::now();
    const FetchResult result = http_fetch(options);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
            .count();
    EXPECT_FALSE(result.ok);
    // A true blackhole answers with silence (net.timeout on our clock),
    // but firewalled/sandboxed environments answer the SYN themselves —
    // with ENETUNREACH, an RST, or a transparent proxy that accepts and
    // drops. Whatever the environment does, the failure must carry a
    // stable net.* code and return on our clock; the wall-clock bound is
    // the regression under test.
    EXPECT_EQ(result.code.rfind("net.", 0), 0u) << result.code;
    if (result.code == "net.timeout") {
        EXPECT_NE(result.error.find("timed out after"), std::string::npos)
            << result.error;
    }
    EXPECT_LT(elapsed, 5.0);
}

// ---- Chaos matrix: client x fault family against a live server ----

class ChaosMatrix : public ::testing::Test {
  protected:
    void SetUp() override {
        server_ = std::make_unique<LiveServer>();
        server_->seed_profile();
    }

    /// One full fetch through a fresh proxy configured by `plan`.
    FetchResult fetch_through(const FaultPlan& plan, int attempts,
                              double deadline_seconds = 20.0) {
        ChaosProxy proxy(server_->port(), plan);
        std::string error;
        EXPECT_TRUE(proxy.start(&error)) << error;
        FetchOptions options = profile_fetch(proxy.port());
        options.deadline_seconds = deadline_seconds;
        options.retry.max_attempts = attempts;
        options.retry.seed = plan.seed;
        const FetchResult result = http_fetch(options);
        proxy.stop();
        return result;
    }

    std::unique_ptr<LiveServer> server_;
};

TEST_F(ChaosMatrix, CleanProxyPassesThrough) {
    const FetchResult result = fetch_through(FaultPlan{}, 1);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.response.status, 200);
    EXPECT_EQ(result.response.body, profile_body());
}

TEST_F(ChaosMatrix, EveryDropFailsCleanlyWithIdenticalTraces) {
    FaultPlan plan;
    plan.conn_drop_probability = 1.0;
    plan.seed = 11;
    const FetchResult first = fetch_through(plan, 3);
    EXPECT_FALSE(first.ok);
    EXPECT_EQ(first.code, "net.closed");
    EXPECT_EQ(first.attempts.size(), 3u);
    const FetchResult second = fetch_through(plan, 3);
    EXPECT_EQ(first.trace(), second.trace());  // the acceptance bar
}

TEST_F(ChaosMatrix, EveryTruncationFailsCleanlyWithIdenticalTraces) {
    FaultPlan plan;
    plan.conn_truncate_probability = 1.0;
    plan.seed = 12;
    const FetchResult first = fetch_through(plan, 3);
    EXPECT_FALSE(first.ok);
    EXPECT_EQ(first.code, "net.closed");
    const FetchResult second = fetch_through(plan, 3);
    EXPECT_EQ(first.trace(), second.trace());
}

TEST_F(ChaosMatrix, ResetMidResponseFailsWithAStableCode) {
    FaultPlan plan;
    plan.conn_reset_probability = 1.0;
    plan.seed = 13;
    const FetchResult result = fetch_through(plan, 2);
    EXPECT_FALSE(result.ok);
    // The RST races the partial head through the loopback: the client
    // sees ECONNRESET or a short read depending on arrival order. Both
    // map to stable retryable codes; only the pair is admissible.
    EXPECT_TRUE(result.code == "net.reset" || result.code == "net.closed")
        << result.code;
    EXPECT_EQ(result.attempts.size(), 2u);
}

TEST_F(ChaosMatrix, DelayWithinTheBudgetSucceeds) {
    FaultPlan plan;
    plan.conn_delay_probability = 1.0;
    plan.conn_delay_seconds = 0.3;
    const FetchResult result = fetch_through(plan, 1);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.response.status, 200);
}

TEST_F(ChaosMatrix, TrickledResponseSucceedsUnderTheDeadline) {
    // One byte per millisecond defeats the per-operation timeout by
    // construction; the overall deadline is what bounds the call. The
    // response is small enough to finish well inside it.
    FaultPlan plan;
    plan.conn_trickle_probability = 1.0;
    const FetchResult result = fetch_through(plan, 1, 30.0);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.response.status, 200);
    EXPECT_EQ(result.response.body, profile_body());
}

TEST_F(ChaosMatrix, MixedPlanRecoversAndMatchesThePredictedSequence) {
    FaultPlan plan;
    plan.conn_drop_probability = 0.4;
    plan.conn_truncate_probability = 0.3;
    plan.seed = 21;
    ChaosProxy probe(0, plan);
    // Find a seed-dependent prefix that fails at least once and then
    // lets a retry through: walk the predicted sequence for the first
    // None after a fault.
    int needed = 0;
    bool faulted = false;
    for (; needed < 32; ++needed) {
        const auto kind = probe.fault_for(static_cast<std::uint64_t>(needed));
        if (kind == ChaosProxy::FaultKind::None) break;
        faulted = true;
    }
    ASSERT_LT(needed, 32);
    if (!faulted) GTEST_SKIP() << "seed 21 opens with a clean connection";

    ChaosProxy proxy(server_->port(), plan);
    std::string error;
    ASSERT_TRUE(proxy.start(&error)) << error;
    FetchOptions options = profile_fetch(proxy.port());
    options.retry.max_attempts = needed + 1;
    options.retry.seed = plan.seed;
    const FetchResult result = http_fetch(options);
    ASSERT_TRUE(result.ok) << result.error << "\n" << result.trace();
    EXPECT_EQ(result.response.status, 200);
    EXPECT_EQ(result.attempts.size(), static_cast<std::size_t>(needed) + 1);
    // The proxy injected exactly the predicted prefix.
    const std::vector<ChaosProxy::FaultKind> injected = proxy.injected();
    ASSERT_EQ(injected.size(), static_cast<std::size_t>(needed) + 1);
    for (int i = 0; i <= needed; ++i)
        EXPECT_EQ(injected[static_cast<std::size_t>(i)],
                  proxy.fault_for(static_cast<std::uint64_t>(i)))
            << i;
    proxy.stop();
}

TEST(Client, RecoversOnceTheServerComesBack) {
    // A dead daemon mid-deploy: the first attempts are refused, then the
    // server starts on the same port and a later retry lands. The chaos
    // matrix proves per-fault behavior; this proves the real lifecycle.
    const std::uint16_t port = dead_port();
    const std::string root = unique_dir("comeback_store");
    ServeServer* server_ptr = nullptr;
    std::unique_ptr<ServeServer> server;
    std::thread restarter([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(400));
        ServeOptions options;
        options.store_dir = root;
        options.port = port;
        server = std::make_unique<ServeServer>(options);
        std::string error;
        if (server->start(&error)) server_ptr = server.get();
    });

    FetchOptions options;
    options.port = port;
    options.path = "/v1/healthz";
    options.timeout_seconds = 2.0;
    options.deadline_seconds = 30.0;
    options.retry.max_attempts = 30;
    options.retry.seed = 5;
    const FetchResult result = http_fetch(options);
    restarter.join();
    if (server_ptr == nullptr) GTEST_SKIP() << "released port was re-taken";
    ASSERT_TRUE(result.ok) << result.error << "\n" << result.trace();
    EXPECT_EQ(result.response.status, 200);
    EXPECT_GT(result.attempts.size(), 1u);  // the outage cost attempts
    EXPECT_EQ(result.attempts.front().code, "net.connect");
    EXPECT_TRUE(result.attempts.back().code.empty());

    server->request_stop();
    server->join();
    std::error_code ec;
    std::filesystem::remove_all(root, ec);
}

TEST_F(ChaosMatrix, DeadlineCapsTheRetryLoop) {
    FaultPlan plan;
    plan.conn_drop_probability = 1.0;
    const auto started = std::chrono::steady_clock::now();
    const FetchResult result = fetch_through(plan, 50, /*deadline=*/1.0);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
            .count();
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.code, "net.deadline");
    EXPECT_LT(result.attempts.size(), 50u);
    EXPECT_LT(elapsed, 6.0);  // never hangs: the deadline is the bound
}

// ---- Server hardening ----

TEST(ServerHardening, IdleConnectionsAreReaped) {
    ServeOptions options;
    options.store_dir = unique_dir("reap_store");
    options.idle_timeout_seconds = 0.3;
    ServeServer server(options);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    // A slow-loris half-request: bytes arrive, then silence.
    const int loris = connect_to(server.port());
    ASSERT_GE(loris, 0);
    ASSERT_GT(::send(loris, "GET /v1/he", 10, MSG_NOSIGNAL), 0);
    // The reaper must close it despite the never-completed request.
    const std::string leftover = recv_all(loris, 5000);
    EXPECT_TRUE(leftover.empty()) << leftover;  // EOF, no response bytes
    ::close(loris);

    // And the server still answers fresh requests afterwards.
    const std::string health = round_trip(
        server.port(), "GET /v1/healthz HTTP/1.1\r\nconnection: close\r\n\r\n");
    EXPECT_EQ(health.compare(0, 12, "HTTP/1.1 200"), 0) << health;

    server.request_stop();
    server.join();
    std::error_code ec;
    std::filesystem::remove_all(options.store_dir, ec);
}

TEST(ServerHardening, ConnectionsBeyondTheCapAreShedWith503) {
    ServeOptions options;
    options.store_dir = unique_dir("shed_store");
    options.max_connections = 2;
    options.idle_timeout_seconds = 30.0;
    ServeServer server(options);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    std::vector<int> held;
    for (std::size_t i = 0; i < options.max_connections; ++i) {
        const int fd = connect_to(server.port());
        ASSERT_GE(fd, 0);
        held.push_back(fd);
    }
    // Give the io thread a moment to register the held connections.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    // Flood past the cap: every surplus connection is answered with a
    // 503 + retry-after and closed, not silently dropped and not queued.
    bool saw_shed = false;
    for (int i = 0; i < 8 && !saw_shed; ++i) {
        const int fd = connect_to(server.port());
        ASSERT_GE(fd, 0);
        const std::string response = recv_all(fd, 3000);
        ::close(fd);
        if (response.compare(0, 12, "HTTP/1.1 503") == 0) {
            EXPECT_NE(response.find("retry-after:"), std::string::npos) << response;
            EXPECT_NE(response.find("server.capacity"), std::string::npos) << response;
            saw_shed = true;
        }
    }
    EXPECT_TRUE(saw_shed);

    for (const int fd : held) ::close(fd);
    server.request_stop();
    server.join();
    std::error_code ec;
    std::filesystem::remove_all(options.store_dir, ec);
}

TEST(ServerHardening, AuthTokenGatesEverythingButHealthz) {
    ServeOptions options;
    options.store_dir = unique_dir("auth_store");
    options.token = "sesame";
    ServeServer server(options);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    // healthz stays open: load balancers do not hold secrets.
    const std::string health = round_trip(
        server.port(), "GET /v1/healthz HTTP/1.1\r\nconnection: close\r\n\r\n");
    EXPECT_EQ(health.compare(0, 12, "HTTP/1.1 200"), 0) << health;

    const std::string denied = round_trip(
        server.port(), "GET /v1/stats HTTP/1.1\r\nconnection: close\r\n\r\n");
    EXPECT_EQ(denied.compare(0, 12, "HTTP/1.1 401"), 0) << denied;
    EXPECT_NE(denied.find("auth.token"), std::string::npos) << denied;

    const std::string wrong = round_trip(
        server.port(),
        "GET /v1/stats HTTP/1.1\r\nauthorization: Bearer nope\r\n"
        "connection: close\r\n\r\n");
    EXPECT_EQ(wrong.compare(0, 12, "HTTP/1.1 401"), 0) << wrong;

    const std::string granted = round_trip(
        server.port(),
        "GET /v1/stats HTTP/1.1\r\nauthorization: Bearer sesame\r\n"
        "connection: close\r\n\r\n");
    EXPECT_EQ(granted.compare(0, 12, "HTTP/1.1 200"), 0) << granted;

    // The retrying client sends the same header from FetchOptions.
    FetchOptions fetch;
    fetch.port = server.port();
    fetch.path = "/v1/stats";
    fetch.token = "sesame";
    const FetchResult result = http_fetch(fetch);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.response.status, 200);

    server.request_stop();
    server.join();
    std::error_code ec;
    std::filesystem::remove_all(options.store_dir, ec);
}

TEST(ServerHardening, IfMatchComparesAndSwaps) {
    const std::string root = unique_dir("cas_store");
    ProfileStore store(root, 8);
    const std::string if_any = "*";
    const std::string wrong = kOpts2;
    const std::string right = kOpts;

    // CAS against an empty head fails even for "*": nothing to replace.
    EXPECT_EQ(store.put(kFp, kOpts, profile_body(), &if_any),
              ProfileStore::PutStatus::CasMismatch);
    ASSERT_EQ(store.put(kFp, kOpts, profile_body()), ProfileStore::PutStatus::Stored);
    EXPECT_EQ(store.put(kFp, kOpts2, profile_body("v2"), &wrong),
              ProfileStore::PutStatus::CasMismatch);
    EXPECT_EQ(store.head(kFp), kOpts);  // the mismatch moved nothing
    EXPECT_EQ(store.put(kFp, kOpts2, profile_body("v2"), &right),
              ProfileStore::PutStatus::Stored);
    EXPECT_EQ(store.head(kFp), kOpts2);
    EXPECT_EQ(store.put(kFp, kOpts, profile_body("v3"), &if_any),
              ProfileStore::PutStatus::Stored);  // "*": any current head

    // Over HTTP: a stale If-Match answers 412 with the stable code.
    Handler handler(store);
    HttpParser parser;
    const std::string body = profile_body("v4");
    (void)parser.feed("PUT /v1/profile/" + std::string(kFp) + "/" + kOpts2 +
                      " HTTP/1.1\r\nif-match: \"" + wrong +
                      "\"\r\ncontent-length: " + std::to_string(body.size()) +
                      "\r\n\r\n" + body);
    const Response stale = handler.handle(parser.take_request());
    EXPECT_EQ(stale.status, 412);
    EXPECT_NE(stale.body.find("store.cas"), std::string::npos) << stale.body;

    std::error_code ec;
    std::filesystem::remove_all(root, ec);
}

TEST(ServerHardening, SeriesRoutesStoreAndServeSamples) {
    const std::string root = unique_dir("series_store");
    ProfileStore store(root, 8);
    Handler handler(store);
    const auto request_of = [](const std::string& wire) {
        HttpParser parser;
        (void)parser.feed(wire);
        return parser.take_request();
    };
    const std::string sample = "metric cache.l1 0x1p+14\nmetric comm.latency 0x1p-10\n";
    const std::string base =
        "/v1/series/" + std::string(kFp) + "/" + kOpts;

    const Response put = handler.handle(request_of(
        "PUT " + base + "/0000000007 HTTP/1.1\r\ncontent-length: " +
        std::to_string(sample.size()) + "\r\n\r\n" + sample));
    EXPECT_EQ(put.status, 201) << put.body;

    const Response get =
        handler.handle(request_of("GET " + base + "/0000000007 HTTP/1.1\r\n\r\n"));
    EXPECT_EQ(get.status, 200);
    EXPECT_EQ(get.body, sample);

    EXPECT_EQ(handler
                  .handle(request_of("GET " + base + "/99999999999 HTTP/1.1\r\n\r\n"))
                  .status,
              400);  // 11 digits: not a tick
    const Response missing =
        handler.handle(request_of("GET " + base + "/42 HTTP/1.1\r\n\r\n"));
    EXPECT_EQ(missing.status, 404);
    EXPECT_NE(missing.body.find("sample.unknown"), std::string::npos);

    const Response garbage = handler.handle(request_of(
        "PUT " + base + "/8 HTTP/1.1\r\ncontent-length: 9\r\n\r\nnot a one"));
    EXPECT_EQ(garbage.status, 400);
    EXPECT_NE(garbage.body.find("sample.parse"), std::string::npos);

    std::error_code ec;
    std::filesystem::remove_all(root, ec);
}

}  // namespace
}  // namespace servet::serve

// ---- Watch push: spool across an outage, drain on reconnect ----

namespace servet::watch {
namespace {

sim::MachineSpec tiny_machine() {
    sim::zoo::SyntheticOptions options;
    options.cores = 4;
    options.l1_size = 16 * KiB;
    options.l2_size = 256 * KiB;
    options.l2_sharing = 2;
    options.jitter = 0.01;
    return sim::zoo::synthetic(options);
}

WatchOptions fast_watch(const std::string& run_dir) {
    WatchOptions options;
    options.suite.mcalibrator.max_size = 2 * MiB;
    options.suite.mcalibrator.repeats = 2;
    options.suite.run_shared_cache = false;
    options.suite.run_mem_overhead = false;
    options.run_dir = run_dir;
    return options;
}

std::size_t count_files(const std::string& dir, const std::string& suffix) {
    std::size_t count = 0;
    std::error_code ec;
    for (std::filesystem::recursive_directory_iterator
             it(dir, ec), end;
         !ec && it != end; it.increment(ec))
        if (it->is_regular_file() && it->path().string().ends_with(suffix)) ++count;
    return count;
}

TEST(WatchPush, SpoolsThroughAnOutageAndDrainsOnReconnect) {
    const std::string run_dir = testing::TempDir() + "watch_push_" +
                                std::to_string(::getpid());
    std::error_code ec;
    std::filesystem::remove_all(run_dir, ec);

    // Phase 1: the server is down. Every tick must still commit locally
    // and land in the spool; the watch itself must not fail.
    {
        SimPlatform platform(tiny_machine());
        msg::SimNetwork network(platform.spec());
        WatchOptions options = fast_watch(run_dir);
        options.ticks = 2;
        options.push.port = [&] {
            const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
            sockaddr_in addr{};
            addr.sin_family = AF_INET;
            addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
            (void)::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
            socklen_t len = sizeof addr;
            (void)::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
            ::close(fd);
            return static_cast<int>(ntohs(addr.sin_port));
        }();
        options.push.timeout_seconds = 0.5;
        options.push.deadline_seconds = 2.0;
        options.push.attempts = 1;
        const WatchResult result = run_watch(platform, &network, options);
        EXPECT_EQ(result.measured, 2u);
        EXPECT_EQ(result.pushed, 0u);
        EXPECT_EQ(result.spooled, 2u);
    }
    EXPECT_EQ(count_files(run_dir + "/spool", ".sample"), 2u);

    // Phase 2: the server is back. The resumed watch drains the backlog
    // before its own ticks — everything lands, the spool empties.
    serve::ServeOptions serve_options;
    serve_options.store_dir = run_dir + "_store";
    serve::ServeServer server(serve_options);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    {
        SimPlatform platform(tiny_machine());
        msg::SimNetwork network(platform.spec());
        WatchOptions options = fast_watch(run_dir);
        options.ticks = 1;
        options.push.port = server.port();
        const WatchResult result = run_watch(platform, &network, options);
        EXPECT_EQ(result.measured, 1u);
        EXPECT_EQ(result.replayed, 2u);
        EXPECT_EQ(result.pushed, 3u);  // 2 spooled + 1 fresh
        EXPECT_EQ(result.spooled, 0u);
    }
    EXPECT_EQ(count_files(run_dir + "/spool", ".sample"), 0u);
    EXPECT_EQ(count_files(serve_options.store_dir, ".sample"), 3u);

    server.request_stop();
    server.join();
    std::filesystem::remove_all(run_dir, ec);
    std::filesystem::remove_all(serve_options.store_dir, ec);
}

TEST(WatchPush, StopFlagEndsTheLoopBeforeTheBudget) {
    const std::string run_dir = testing::TempDir() + "watch_stop_" +
                                std::to_string(::getpid());
    std::error_code ec;
    std::filesystem::remove_all(run_dir, ec);
    SimPlatform platform(tiny_machine());
    msg::SimNetwork network(platform.spec());
    WatchOptions options = fast_watch(run_dir);
    options.ticks = 100;
    std::atomic<bool> stop{true};  // raised before the first tick
    options.stop = &stop;
    const WatchResult result = run_watch(platform, &network, options);
    EXPECT_TRUE(result.stopped);
    EXPECT_EQ(result.measured, 0u);
    std::filesystem::remove_all(run_dir, ec);
}

}  // namespace
}  // namespace servet::watch
