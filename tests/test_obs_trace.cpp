// Unit tests for the tracing spans: nesting depths, bounded buffers
// with drop counting, concurrent recording (the TSan CI job runs these),
// and the Chrome trace_event JSON shape.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

namespace servet::obs {
namespace {

// The tracer is process-global with per-thread buffers, so every test
// starts from a clean slate and leaves tracing disabled.
class ObsTrace : public ::testing::Test {
  protected:
    void SetUp() override {
        tracer().set_enabled(false);
        tracer().reset();
    }
    void TearDown() override {
        tracer().set_enabled(false);
        tracer().reset();
    }
};

std::vector<SpanEvent> events_named(const std::string& name) {
    std::vector<SpanEvent> found;
    for (const SpanEvent& event : tracer().snapshot())
        if (name == event.name) found.push_back(event);
    return found;
}

TEST_F(ObsTrace, DisabledSpansRecordNothing) {
    { SERVET_TRACE_SPAN("quiet"); }
    EXPECT_TRUE(tracer().snapshot().empty());
    EXPECT_EQ(tracer().dropped(), 0u);
}

TEST_F(ObsTrace, SpanEnabledAfterConstructionStaysNoOp) {
    // The enabled check happens at span entry; flipping the switch while
    // a span is open must not produce a half-measured event.
    {
        SERVET_TRACE_SPAN("late");
        tracer().set_enabled(true);
    }
    EXPECT_TRUE(events_named("late").empty());
}

TEST_F(ObsTrace, NestedSpansRecordDepthsAndContainment) {
    tracer().set_enabled(true);
    {
        SERVET_TRACE_SPAN("outer");
        {
            SERVET_TRACE_SPAN("middle");
            { SERVET_TRACE_SPAN("inner"); }
        }
        { SERVET_TRACE_SPAN("sibling"); }
    }

    const auto outer = events_named("outer");
    const auto middle = events_named("middle");
    const auto inner = events_named("inner");
    const auto sibling = events_named("sibling");
    ASSERT_EQ(outer.size(), 1u);
    ASSERT_EQ(middle.size(), 1u);
    ASSERT_EQ(inner.size(), 1u);
    ASSERT_EQ(sibling.size(), 1u);

    EXPECT_EQ(outer[0].depth, 0);
    EXPECT_EQ(middle[0].depth, 1);
    EXPECT_EQ(inner[0].depth, 2);
    EXPECT_EQ(sibling[0].depth, 1);

    // Children close before their parent and sit inside its interval.
    EXPECT_GE(inner[0].start_ns, middle[0].start_ns);
    EXPECT_LE(inner[0].end_ns, middle[0].end_ns);
    EXPECT_GE(middle[0].start_ns, outer[0].start_ns);
    EXPECT_LE(middle[0].end_ns, outer[0].end_ns);
    EXPECT_EQ(inner[0].tid, outer[0].tid);
}

TEST_F(ObsTrace, LongNamesTruncate) {
    tracer().set_enabled(true);
    const std::string long_name(3 * SpanEvent::kMaxName, 'x');
    { SERVET_TRACE_SPAN(long_name); }
    const auto snapshot = tracer().snapshot();
    ASSERT_EQ(snapshot.size(), 1u);
    EXPECT_EQ(std::string(snapshot[0].name),
              std::string(SpanEvent::kMaxName - 1, 'x'));
}

TEST_F(ObsTrace, FullBufferDropsNewestAndCounts) {
    // Capacity applies to buffers registered after the call, so the
    // overflow has to happen on a fresh thread.
    constexpr std::size_t kCapacity = 8;
    constexpr std::size_t kSpans = 20;
    tracer().set_thread_capacity(kCapacity);
    tracer().set_enabled(true);
    std::thread recorder([] {
        for (std::size_t i = 0; i < kSpans; ++i) { SERVET_TRACE_SPAN("overflow"); }
    });
    recorder.join();
    tracer().set_thread_capacity(1 << 16);

    EXPECT_EQ(events_named("overflow").size(), kCapacity);
    EXPECT_EQ(tracer().dropped(), kSpans - kCapacity);
}

TEST_F(ObsTrace, ConcurrentRecordingAndExportIsRaceFree) {
    // Four recorders plus a concurrent exporter; under TSan this is the
    // test that proves the release/acquire count publication suffices.
    constexpr int kThreads = 4;
    constexpr int kSpansPerThread = 500;
    tracer().set_enabled(true);
    std::vector<std::thread> recorders;
    recorders.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        recorders.emplace_back([] {
            for (int i = 0; i < kSpansPerThread; ++i) { SERVET_TRACE_SPAN("worker"); }
        });
    }
    for (int i = 0; i < 50; ++i) {
        (void)tracer().snapshot();
        (void)tracer().chrome_trace_json();
    }
    for (std::thread& thread : recorders) thread.join();

    EXPECT_EQ(events_named("worker").size(),
              static_cast<std::size_t>(kThreads * kSpansPerThread));
    EXPECT_EQ(tracer().dropped(), 0u);
}

TEST_F(ObsTrace, ChromeTraceJsonShape) {
    tracer().set_enabled(true);
    {
        SERVET_TRACE_SPAN("suite/run");
        { SERVET_TRACE_SPAN("phase/cache_size"); }
    }
    const std::string json = tracer().chrome_trace_json();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("suite/run"), std::string::npos);
    EXPECT_NE(json.find("phase/cache_size"), std::string::npos);
}

TEST_F(ObsTrace, ChromeTraceFooterCarriesTheDropCount) {
    // A truncated export must say so in-band: the footer's droppedEvents
    // lets a viewer (or CI) tell "complete" from "buffers overflowed"
    // without the producing process's stderr.
    tracer().set_enabled(true);
    { SERVET_TRACE_SPAN("kept"); }
    EXPECT_NE(tracer().chrome_trace_json().find("\"droppedEvents\": 0"),
              std::string::npos);

    constexpr std::size_t kCapacity = 2;
    tracer().set_thread_capacity(kCapacity);
    std::thread recorder([] {
        for (int i = 0; i < 5; ++i) { SERVET_TRACE_SPAN("overflow"); }
    });
    recorder.join();
    tracer().set_thread_capacity(1 << 16);
    EXPECT_NE(tracer().chrome_trace_json().find("\"droppedEvents\": 3"),
              std::string::npos);
}

TEST_F(ObsTrace, ResetDropsEventsAndZeroesDropCounter) {
    tracer().set_enabled(true);
    { SERVET_TRACE_SPAN("gone"); }
    ASSERT_FALSE(tracer().snapshot().empty());
    tracer().reset();
    EXPECT_TRUE(tracer().snapshot().empty());
    EXPECT_EQ(tracer().dropped(), 0u);
}

}  // namespace
}  // namespace servet::obs
