#include "stats/unionfind.hpp"

#include <gtest/gtest.h>

#include "base/rng.hpp"

namespace servet::stats {
namespace {

TEST(UnionFind, StartsAllSingletons) {
    UnionFind uf(5);
    EXPECT_EQ(uf.set_count(), 5u);
    for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(uf.find(i), i);
}

TEST(UnionFind, UniteMerges) {
    UnionFind uf(4);
    EXPECT_TRUE(uf.unite(0, 1));
    EXPECT_FALSE(uf.unite(1, 0));  // already joined
    EXPECT_EQ(uf.set_count(), 3u);
    EXPECT_TRUE(uf.connected(0, 1));
    EXPECT_FALSE(uf.connected(0, 2));
}

TEST(UnionFind, TransitiveConnectivity) {
    UnionFind uf(6);
    uf.unite(0, 1);
    uf.unite(1, 2);
    uf.unite(4, 5);
    EXPECT_TRUE(uf.connected(0, 2));
    EXPECT_TRUE(uf.connected(4, 5));
    EXPECT_FALSE(uf.connected(2, 4));
}

TEST(UnionFind, ComponentsSortedBySmallestMember) {
    UnionFind uf(6);
    uf.unite(4, 5);
    uf.unite(0, 2);
    const auto components = uf.components();
    ASSERT_EQ(components.size(), 4u);
    EXPECT_EQ(components[0], (std::vector<std::size_t>{0, 2}));
    EXPECT_EQ(components[1], (std::vector<std::size_t>{1}));
    EXPECT_EQ(components[2], (std::vector<std::size_t>{3}));
    EXPECT_EQ(components[3], (std::vector<std::size_t>{4, 5}));
}

TEST(GroupsFromPairs, PaperExample) {
    // Section III-C: pairs (0,1),(0,2),(3,4),(3,5) identify groups
    // {0,1,2} and {3,4,5}.
    const auto groups =
        groups_from_pairs({{0, 1}, {0, 2}, {3, 4}, {3, 5}}, 6);
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[0], (std::vector<CoreId>{0, 1, 2}));
    EXPECT_EQ(groups[1], (std::vector<CoreId>{3, 4, 5}));
}

TEST(GroupsFromPairs, SingletonsExcluded) {
    const auto groups = groups_from_pairs({{1, 2}}, 5);
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_EQ(groups[0], (std::vector<CoreId>{1, 2}));
}

TEST(GroupsFromPairs, EmptyPairsNoGroups) {
    EXPECT_TRUE(groups_from_pairs({}, 8).empty());
}

TEST(GroupsFromPairs, DunningtonL2Shape) {
    // 12 disjoint pairs {i, i+12} -> 12 groups of 2.
    std::vector<CorePair> pairs;
    for (CoreId i = 0; i < 12; ++i) pairs.push_back({i, i + 12});
    const auto groups = groups_from_pairs(pairs, 24);
    ASSERT_EQ(groups.size(), 12u);
    for (CoreId i = 0; i < 12; ++i)
        EXPECT_EQ(groups[static_cast<std::size_t>(i)], (std::vector<CoreId>{i, i + 12}));
}

TEST(UnionFind, PropertyMatchesNaiveReference) {
    // Random unions; compare connectivity against a brute-force labelling.
    Rng rng(99);
    const std::size_t n = 32;
    UnionFind uf(n);
    std::vector<std::size_t> label(n);
    for (std::size_t i = 0; i < n; ++i) label[i] = i;

    for (int step = 0; step < 60; ++step) {
        const std::size_t a = rng.next_below(n);
        const std::size_t b = rng.next_below(n);
        if (a == b) continue;
        uf.unite(a, b);
        const std::size_t from = label[b], to = label[a];
        for (std::size_t i = 0; i < n; ++i)
            if (label[i] == from) label[i] = to;
    }
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            EXPECT_EQ(uf.connected(i, j), label[i] == label[j]) << i << "," << j;
}

TEST(UnionFindDeath, OutOfRange) {
    UnionFind uf(3);
    EXPECT_DEATH((void)uf.find(3), "");
}

}  // namespace
}  // namespace servet::stats
