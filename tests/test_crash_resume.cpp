// Death test for the crash-safe run journal: SIGKILL the real `servet
// profile` mid-suite (a fault plan hangs one phase while the rest land),
// then resume in the same run directory and require the final profile to
// be byte-identical to an uninterrupted run — at --jobs 1 and --jobs 4.
//
// The interrupted run injects hang-only faults (hang=..., hang_seconds
// long enough to outlast the test) so the kill point is deterministic;
// hang faults never perturb measured values, so the journal it leaves
// behind is compatible with the fault-free resume.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/journal.hpp"

#ifndef SERVET_TOOL_PATH
#error "SERVET_TOOL_PATH must be defined by the build"
#endif

namespace {

// Pinned experimentally: on nehalem2s --fast, this plan lets cache_size
// commit and then hangs a task of the shared_caches phase, at --jobs 1
// and --jobs 4 alike (the DAG lets the other phases finish under jobs 4).
constexpr const char* kHangFaults = "hang=0.005,hang_seconds=3600,seed=3";
constexpr const char* kMachine = "nehalem2s";

std::string unique_dir(const std::string& stem) {
    static int serial = 0;
    return ::testing::TempDir() + stem + "_" + std::to_string(::getpid()) + "_" +
           std::to_string(++serial);
}

std::string read_all(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

struct CommandResult {
    int exit_code;
    std::string output;
};

CommandResult run_tool(const std::string& args) {
    const std::string out_path = unique_dir("crash_resume_out") + ".txt";
    const std::string command =
        std::string(SERVET_TOOL_PATH) + " " + args + " > " + out_path + " 2>&1";
    const int status = std::system(command.c_str());
    CommandResult result{WEXITSTATUS(status), read_all(out_path)};
    std::remove(out_path.c_str());
    return result;
}

/// Launches `servet <args...>` with stdout/stderr discarded; returns pid.
pid_t spawn_tool(const std::vector<std::string>& args) {
    const pid_t pid = ::fork();
    if (pid != 0) return pid;
    // Child: silence it and exec the tool.
    if (std::freopen("/dev/null", "w", stdout) == nullptr ||
        std::freopen("/dev/null", "w", stderr) == nullptr)
        _exit(126);
    std::vector<char*> argv;
    static const std::string tool = SERVET_TOOL_PATH;
    argv.push_back(const_cast<char*>(tool.c_str()));
    for (const std::string& arg : args) argv.push_back(const_cast<char*>(arg.c_str()));
    argv.push_back(nullptr);
    ::execv(tool.c_str(), argv.data());
    _exit(127);
}

/// SIGKILLs a `servet profile` run once its journal shows the cache_size
/// commit. Fails the test (and reaps the child) on any deviation from
/// the pinned script: premature exit, or no commit within the deadline.
void kill_after_first_commit(pid_t pid, const std::string& run_dir) {
    const std::string journal = servet::core::RunJournal::file_path(run_dir);
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::minutes(5);
    while (std::chrono::steady_clock::now() < deadline) {
        int status = 0;
        if (::waitpid(pid, &status, WNOHANG) == pid)
            FAIL() << "tool exited before it could be killed (status " << status << ")";
        if (read_all(journal).find("commit cache_size") != std::string::npos) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    ASSERT_NE(read_all(journal).find("commit cache_size"), std::string::npos)
        << "cache_size never committed; cannot stage the crash";
    // Let concurrent phases make some progress past the first commit so
    // the kill lands mid-suite, not at a tidy boundary.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
        << "expected the tool to die by SIGKILL, status " << status;
}

void crash_then_resume_is_byte_identical(int jobs) {
    const std::string jobs_str = std::to_string(jobs);
    const std::string run_dir = unique_dir("crash_run_j" + jobs_str);
    const std::string crashed_out = run_dir + "/crashed.profile";

    // Reference: the same measurement uninterrupted and fault-free.
    const std::string ref_out = unique_dir("crash_ref_j" + jobs_str) + ".profile";
    const auto reference =
        run_tool(std::string("profile --machine ") + kMachine + " --fast --jobs " + jobs_str +
                 " --no-timing --out " + ref_out);
    ASSERT_EQ(reference.exit_code, 0) << reference.output;

    // The doomed run: hang-only faults freeze it mid-suite, we SIGKILL it.
    const pid_t pid = spawn_tool({"profile", "--machine", kMachine, "--fast", "--jobs",
                                  jobs_str, "--run-dir", run_dir, "--faults", kHangFaults,
                                  "--no-timing", "--out", crashed_out});
    ASSERT_GT(pid, 0);
    kill_after_first_commit(pid, run_dir);
    if (::testing::Test::HasFatalFailure()) return;
    // SIGKILL means no profile was ever written.
    EXPECT_EQ(read_all(crashed_out), "");

    // Resume fault-free in the same run directory.
    const std::string resumed_out = run_dir + "/resumed.profile";
    const auto resumed =
        run_tool(std::string("profile --machine ") + kMachine + " --fast --jobs " + jobs_str +
                 " --run-dir " + run_dir + " --resume --no-timing --out " + resumed_out);
    ASSERT_EQ(resumed.exit_code, 0) << resumed.output;
    // At least the committed cache_size phase must have replayed rather
    // than re-measured.
    EXPECT_NE(resumed.output.find("phase(s) replayed"), std::string::npos) << resumed.output;
    EXPECT_EQ(resumed.output.find("0 phase(s) replayed"), std::string::npos) << resumed.output;

    const std::string resumed_bytes = read_all(resumed_out);
    ASSERT_FALSE(resumed_bytes.empty());
    EXPECT_EQ(resumed_bytes, read_all(ref_out))
        << "resumed profile differs from the uninterrupted run at --jobs " << jobs_str;
    std::remove(ref_out.c_str());
}

TEST(CrashResume, KilledRunResumesByteIdenticalSerial) {
    crash_then_resume_is_byte_identical(1);
}

TEST(CrashResume, KilledRunResumesByteIdenticalParallel) {
    crash_then_resume_is_byte_identical(4);
}

TEST(CrashResume, ResumeWithDifferentOptionsIsRefused) {
    const std::string run_dir = unique_dir("crash_refuse");
    const std::string out = run_dir + "/p.profile";
    const auto first = run_tool(std::string("profile --machine ") + kMachine +
                                " --fast --run-dir " + run_dir + " --no-timing --out " + out);
    ASSERT_EQ(first.exit_code, 0) << first.output;

    // Dropping --fast changes the measurement configuration: refused.
    const auto mismatched = run_tool(std::string("profile --machine ") + kMachine +
                                     " --run-dir " + run_dir + " --resume --no-timing --out " +
                                     out);
    EXPECT_EQ(mismatched.exit_code, 2) << mismatched.output;
    EXPECT_NE(mismatched.output.find("options hash"), std::string::npos) << mismatched.output;

    // A different machine in the same run directory: refused.
    const auto wrong_machine = run_tool("profile --machine dempsey --fast --run-dir " +
                                        run_dir + " --resume --no-timing --out " + out);
    EXPECT_EQ(wrong_machine.exit_code, 2) << wrong_machine.output;

    // Resuming with the original options still works after the refusals.
    const auto resumed = run_tool(std::string("profile --machine ") + kMachine +
                                  " --fast --run-dir " + run_dir + " --resume --no-timing "
                                  "--out " + out);
    EXPECT_EQ(resumed.exit_code, 0) << resumed.output;
    EXPECT_NE(resumed.output.find("4 phase(s) replayed"), std::string::npos)
        << resumed.output;
}

TEST(CrashResume, ValidateRepairRemeasuresOnlyImplicatedPhases) {
    const std::string run_dir = unique_dir("crash_repair");
    const std::string out = run_dir + "/p.profile";
    const auto first = run_tool(std::string("profile --machine ") + kMachine +
                                " --fast --run-dir " + run_dir + " --no-timing --out " + out);
    ASSERT_EQ(first.exit_code, 0) << first.output;
    const std::string good_bytes = read_all(out);

    const auto clean = run_tool("validate --profile " + out);
    EXPECT_EQ(clean.exit_code, 0) << clean.output;

    // Corrupt the comm section: negate the first comm-layer latency —
    // physically impossible, implicating exactly the comm_costs phase.
    std::string corrupted = good_bytes;
    const std::size_t section = corrupted.find("[comm-layer 0]");
    ASSERT_NE(section, std::string::npos) << "no comm layer section to corrupt";
    const std::size_t pos = corrupted.find("latency = ", section);
    // Explicit bound (not just ASSERT) so the inlined insert() below is
    // provably in range even to the compiler's flow analysis.
    if (pos == std::string::npos || pos + 10 > corrupted.size())
        FAIL() << "no latency line to corrupt";
    corrupted.insert(pos + 10, 1, '-');
    {
        std::ofstream rewrite(out, std::ios::binary | std::ios::trunc);
        rewrite << corrupted;
    }

    const auto invalid = run_tool("validate --profile " + out);
    EXPECT_EQ(invalid.exit_code, 2) << invalid.output;
    EXPECT_NE(invalid.output.find("comm."), std::string::npos) << invalid.output;

    const auto repaired = run_tool(std::string("validate --profile ") + out + " --repair " +
                                   "--run-dir " + run_dir + " --machine " + kMachine +
                                   " --fast --no-timing");
    ASSERT_EQ(repaired.exit_code, 0) << repaired.output;
    // Only comm_costs re-measures; the other three phases replay.
    EXPECT_NE(repaired.output.find("re-measuring comm_costs"), std::string::npos)
        << repaired.output;
    EXPECT_NE(repaired.output.find("3 phase(s) replayed, 1 re-measured"), std::string::npos)
        << repaired.output;
    EXPECT_EQ(read_all(out), good_bytes) << "repair did not restore the original profile";
}

}  // namespace
