// The crash-safety layer: base/fs atomic writes, phase payload codecs,
// the write-ahead run journal, and checkpoint/resume through run_suite.
#include "core/journal.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>

#include "base/fs.hpp"
#include "base/hash.hpp"
#include "core/phase_codec.hpp"
#include "exec/memo_cache.hpp"
#include "msg/sim_network.hpp"
#include "platform/sim_platform.hpp"
#include "sim/zoo.hpp"

namespace servet::core {
namespace {

std::string unique_dir(const std::string& stem) {
    static int serial = 0;
    // The pid keeps reruns from resuming a previous run's leftovers.
    return testing::TempDir() + stem + "_" + std::to_string(::getpid()) + "_" +
           std::to_string(++serial);
}

std::string slurp(const std::string& path) {
    std::string text;
    EXPECT_EQ(read_file(path, &text), FileRead::Ok);
    return text;
}

void spit(const std::string& path, const std::string& text) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
    ASSERT_TRUE(static_cast<bool>(out));
}

// ---- base/fs ----

TEST(Fs, WriteFileAtomicRoundTripsAndReplaces) {
    const std::string path = testing::TempDir() + "fs_atomic.txt";
    ASSERT_TRUE(write_file_atomic(path, "first"));
    EXPECT_EQ(slurp(path), "first");
    ASSERT_TRUE(write_file_atomic(path, "second, longer content"));
    EXPECT_EQ(slurp(path), "second, longer content");
    std::remove(path.c_str());
}

TEST(Fs, CreateParentDirsMakesNestedPathWritable) {
    const std::string dir = unique_dir("fs_nested");
    const std::string path = dir + "/a/b/out.txt";
    ASSERT_TRUE(create_parent_dirs(path));
    EXPECT_TRUE(write_file_atomic(path, "x"));
    // A bare filename has no parent to create: trivially fine.
    EXPECT_TRUE(create_parent_dirs("plainfile.txt"));
}

TEST(Fs, ReadFileDistinguishesAbsent) {
    std::string text;
    EXPECT_EQ(read_file(unique_dir("fs_absent") + "/missing.txt", &text), FileRead::Absent);
}

// ---- phase codecs: exact round trips ----

// Doubles chosen to stress the hexfloat path: non-terminating binary
// fractions, negative zero, denormals, huge magnitudes.
constexpr double kUgly[] = {1.0 / 3.0, -0.0, 5e-324, 1.7976931348623157e308, 3.141592653589793};

TEST(PhaseCodec, CacheSizeRoundTripsExactly) {
    CacheSizePayload payload;
    payload.curve.sizes = {1024, 2048, 4096};
    payload.curve.cycles = {kUgly[0], kUgly[2], kUgly[4]};
    payload.levels.push_back({16 * KiB, "peak", 3, 7});
    payload.levels.push_back({2 * MiB, "probabilistic", 9, 12});
    const auto decoded = decode_cache_size(encode_cache_size(payload));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, payload);
}

TEST(PhaseCodec, SharedCachesRoundTripsExactly) {
    SharedCacheLevelResult level;
    level.cache_size = 256 * KiB;
    level.array_bytes = 170 * KiB;
    level.reference_cycles = kUgly[0];
    level.pairs = {{{0, 1}, 1.9}, {{0, 2}, kUgly[4]}};
    level.sharing_pairs = {{0, 1}};
    level.groups = {{0, 1}, {2, 3}};
    SharedCacheLevelResult bare;  // empty pairs/groups must survive too
    bare.cache_size = 16 * KiB;
    const std::vector<SharedCacheLevelResult> levels{level, bare};
    const auto decoded = decode_shared_caches(encode_shared_caches(levels));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, levels);
}

TEST(PhaseCodec, MemOverheadRoundTripsExactly) {
    MemOverheadResult result;
    result.reference_bandwidth = 2.99e9;
    result.pairs = {{{0, 1}, kUgly[3]}, {{1, 2}, kUgly[2]}};
    MemOverheadTier tier;
    tier.bandwidth = 1.5e9;
    tier.pairs = {{0, 1}};
    tier.groups = {{0, 1, 2}};
    result.tiers = {tier, MemOverheadTier{}};
    result.scalability = {{0, {0, 1, 2}, {2.9e9, 1.4e9, kUgly[0]}}, {1, {3}, {}}};
    const auto decoded = decode_mem_overhead(encode_mem_overhead(result));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, result);
}

TEST(PhaseCodec, CommCostsRoundTripsExactly) {
    CommCostsResult result;
    result.probe_message = 16 * KiB;
    result.pairs = {{{0, 1}, 1.2e-6}, {{0, 2}, kUgly[0]}};
    CommLayer layer;
    layer.latency = 1.2e-6;
    layer.pairs = {{0, 1}, {2, 3}};
    layer.representative = {0, 1};
    layer.p2p = {{1024, 1e-6}, {4096, kUgly[4]}};
    layer.slowdown_by_n = {1.0, 1.5, kUgly[0]};
    CommLayer empty_layer;
    empty_layer.latency = 5e-6;
    empty_layer.representative = {0, 3};
    result.layers = {layer, empty_layer};
    const auto decoded = decode_comm_costs(encode_comm_costs(result));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, result);
}

TEST(PhaseCodec, RejectsGarbageAndTruncation) {
    EXPECT_FALSE(decode_cache_size("bogus 1 2\n").has_value());
    EXPECT_FALSE(decode_cache_size("point 1024\n").has_value());      // missing field
    EXPECT_FALSE(decode_cache_size("point 1024 0x1p+1 junk\n").has_value());  // extra
    EXPECT_FALSE(decode_shared_caches("pair 0 1 0x1p+0\n").has_value());  // pair before level
    EXPECT_FALSE(decode_mem_overhead("tier-pair 0 1\n").has_value());
    EXPECT_FALSE(decode_comm_costs("p2p 1024 0x1p-20\n").has_value());
}

// ---- suite_options_hash ----

TEST(OptionsHash, IgnoresSchedulingAndPlumbingKnobs) {
    SuiteOptions a;
    SuiteOptions b;
    b.jobs = 8;
    b.use_memo = false;
    b.memo_path = "/somewhere/memo.servet";
    b.profile_counters = true;
    b.task_deadline = 5.0;
    b.run_dir = "/somewhere/run";
    b.resume = true;
    b.remeasure = {"cache_size"};
    // A resumed run may legally change any of these; the journal must
    // still accept it.
    EXPECT_EQ(suite_options_hash(a), suite_options_hash(b));
}

TEST(OptionsHash, SeparatesMeasurementRelevantChanges) {
    const SuiteOptions base;
    const std::uint64_t base_hash = suite_options_hash(base);
    SuiteOptions repeats = base;
    repeats.mcalibrator.repeats += 1;
    EXPECT_NE(suite_options_hash(repeats), base_hash);
    SuiteOptions threshold = base;
    threshold.detect.gradient_threshold *= 2;
    EXPECT_NE(suite_options_hash(threshold), base_hash);
    SuiteOptions phases = base;
    phases.run_comm = false;
    EXPECT_NE(suite_options_hash(phases), base_hash);
    SuiteOptions sweep = base;
    sweep.comm.sweep_sizes.push_back(123);
    EXPECT_NE(suite_options_hash(sweep), base_hash);
}

// ---- RunJournal ----

RunJournal::Header test_header() {
    RunJournal::Header header;
    header.options_hash = 0x1111;
    header.fingerprint = 0x2222;
    header.machine = "sim:test";
    header.cores = 4;
    header.page_size = 4096;
    return header;
}

TEST(RunJournal, AppendThenResumeRoundTripsRecords) {
    const std::string dir = unique_dir("journal_rt");
    {
        RunJournal journal(dir, test_header(), RunJournal::Mode::Create);
        ASSERT_TRUE(journal.append("cache_size", "point 1024 0x1p+1\n", 1.0 / 3.0, 42));
        ASSERT_TRUE(journal.append("comm_costs", "probe 16384\n", 2.5, 43));
    }
    RunJournal journal(dir, test_header(), RunJournal::Mode::Resume);
    EXPECT_FALSE(journal.dropped_torn_tail());
    ASSERT_EQ(journal.records().size(), 2u);
    const RunJournal::Record* cache = journal.find("cache_size");
    ASSERT_NE(cache, nullptr);
    EXPECT_EQ(cache->payload, "point 1024 0x1p+1\n");
    EXPECT_EQ(cache->seconds, 1.0 / 3.0);  // bit-exact through the hexfloat
    EXPECT_EQ(journal.find("missing"), nullptr);
}

TEST(RunJournal, CreateModeTruncatesExistingJournal) {
    const std::string dir = unique_dir("journal_trunc");
    {
        RunJournal journal(dir, test_header(), RunJournal::Mode::Create);
        ASSERT_TRUE(journal.append("cache_size", "x\n", 1.0, 0));
    }
    RunJournal journal(dir, test_header(), RunJournal::Mode::Create);
    EXPECT_TRUE(journal.records().empty());
    RunJournal reopened(dir, test_header(), RunJournal::Mode::Resume);
    EXPECT_TRUE(reopened.records().empty());
}

TEST(RunJournal, TornTailIsDroppedNotFatal) {
    const std::string dir = unique_dir("journal_torn");
    {
        RunJournal journal(dir, test_header(), RunJournal::Mode::Create);
        ASSERT_TRUE(journal.append("cache_size", "good payload\n", 1.0, 0));
    }
    const std::string path = RunJournal::file_path(dir);
    // A crash mid-append: the framing line landed, the payload did not.
    spit(path, slurp(path) + "phase comm_costs 500 0x1p+0\ntruncated...");
    RunJournal journal(dir, test_header(), RunJournal::Mode::Resume);
    EXPECT_TRUE(journal.dropped_torn_tail());
    EXPECT_EQ(journal.records().size(), 1u);
    EXPECT_NE(journal.find("cache_size"), nullptr);
    EXPECT_EQ(journal.find("comm_costs"), nullptr);
}

TEST(RunJournal, CorruptedPayloadHashIsDropped) {
    const std::string dir = unique_dir("journal_hash");
    {
        RunJournal journal(dir, test_header(), RunJournal::Mode::Create);
        ASSERT_TRUE(journal.append("cache_size", "payload A\n", 1.0, 0));
    }
    const std::string path = RunJournal::file_path(dir);
    std::string text = slurp(path);
    // Flip one payload byte; the commit line's content hash must notice.
    text.replace(text.find("payload A"), 9, "payload B");
    spit(path, text);
    RunJournal journal(dir, test_header(), RunJournal::Mode::Resume);
    EXPECT_TRUE(journal.dropped_torn_tail());
    EXPECT_EQ(journal.find("cache_size"), nullptr);
}

TEST(RunJournal, MidFileCorruptSecondsSkipsOnlyThatRecord) {
    const std::string dir = unique_dir("journal_midsec");
    {
        RunJournal journal(dir, test_header(), RunJournal::Mode::Create);
        ASSERT_TRUE(journal.append("cache_size", "payload A\n", 1.0, 0));
        ASSERT_TRUE(journal.append("comm_costs", "payload B\n", 1.0, 0));
    }
    const std::string path = RunJournal::file_path(dir);
    std::string text = slurp(path);
    // Damage the FIRST record's seconds field (the commit hash covers only
    // the payload, so the record still frames as committed). Same-length
    // garbage keeps every later offset valid.
    const std::size_t seconds_at = text.find("0x1p+0");
    ASSERT_NE(seconds_at, std::string::npos);
    text.replace(seconds_at, 6, "0xQp+0");
    spit(path, text);

    RunJournal journal(dir, test_header(), RunJournal::Mode::Resume);
    // Mid-file damage must not be treated as a torn tail: the bad record
    // is skipped in memory, the committed record after it survives, and
    // nothing is physically truncated.
    EXPECT_FALSE(journal.dropped_torn_tail());
    EXPECT_EQ(journal.find("cache_size"), nullptr);
    ASSERT_NE(journal.find("comm_costs"), nullptr);
    EXPECT_EQ(journal.find("comm_costs")->payload, "payload B\n");
    EXPECT_EQ(slurp(path), text);
}

TEST(RunJournal, TailCorruptSecondsTruncatesOnlyTheTail) {
    const std::string dir = unique_dir("journal_tailsec");
    {
        RunJournal journal(dir, test_header(), RunJournal::Mode::Create);
        ASSERT_TRUE(journal.append("cache_size", "payload A\n", 1.0, 0));
        ASSERT_TRUE(journal.append("comm_costs", "payload B\n", 2.5, 0));
    }
    const std::string path = RunJournal::file_path(dir);
    std::string text = slurp(path);
    // Damage the LAST record's seconds (2.5 formats as 0x1.4p+1): a
    // genuine tail, dropped and truncated so appends land after the
    // surviving record.
    const std::size_t seconds_at = text.find("0x1.4p+1");
    ASSERT_NE(seconds_at, std::string::npos);
    text.replace(seconds_at, 8, "0xQ.4p+1");
    spit(path, text);

    RunJournal journal(dir, test_header(), RunJournal::Mode::Resume);
    EXPECT_TRUE(journal.dropped_torn_tail());
    ASSERT_NE(journal.find("cache_size"), nullptr);
    EXPECT_EQ(journal.find("comm_costs"), nullptr);
    EXPECT_LT(slurp(path).size(), text.size());
}

TEST(RunJournal, RefusesIncompatibleHeaders) {
    const std::string dir = unique_dir("journal_compat");
    { RunJournal journal(dir, test_header(), RunJournal::Mode::Create); }

    RunJournal::Header options = test_header();
    options.options_hash = 0x9999;
    EXPECT_THROW(RunJournal(dir, options, RunJournal::Mode::Resume), JournalError);
    try {
        RunJournal journal(dir, options, RunJournal::Mode::Resume);
        FAIL() << "incompatible options hash must throw";
    } catch (const JournalError& e) {
        EXPECT_NE(std::string(e.what()).find("options hash"), std::string::npos);
    }

    RunJournal::Header machine = test_header();
    machine.fingerprint = 0xdead;
    EXPECT_THROW(RunJournal(dir, machine, RunJournal::Mode::Resume), JournalError);

    RunJournal::Header cores = test_header();
    cores.cores = 8;
    EXPECT_THROW(RunJournal(dir, cores, RunJournal::Mode::Resume), JournalError);
}

TEST(RunJournal, MachineNameChecksOnlyWithoutFingerprint) {
    // Content-addressable substrates may rename (decorators do); the
    // fingerprint is the identity. Real hardware (fingerprint 0) has only
    // its name.
    const std::string with_fp = unique_dir("journal_name_fp");
    { RunJournal journal(with_fp, test_header(), RunJournal::Mode::Create); }
    RunJournal::Header renamed = test_header();
    renamed.machine = "flaky(sim:test)";
    EXPECT_NO_THROW(RunJournal(with_fp, renamed, RunJournal::Mode::Resume));

    const std::string no_fp = unique_dir("journal_name_nofp");
    RunJournal::Header native = test_header();
    native.fingerprint = 0;
    { RunJournal journal(no_fp, native, RunJournal::Mode::Create); }
    RunJournal::Header other = native;
    other.machine = "other-host";
    EXPECT_THROW(RunJournal(no_fp, other, RunJournal::Mode::Resume), JournalError);
}

TEST(RunJournal, MalformedHeaderThrows) {
    const std::string dir = unique_dir("journal_badheader");
    ASSERT_TRUE(create_directories(dir));
    spit(RunJournal::file_path(dir), "not a journal at all\n");
    EXPECT_THROW(RunJournal(dir, test_header(), RunJournal::Mode::Resume), JournalError);
}

TEST(RunJournal, DropRemovesRecordAndPersists) {
    const std::string dir = unique_dir("journal_drop");
    {
        RunJournal journal(dir, test_header(), RunJournal::Mode::Create);
        ASSERT_TRUE(journal.append("cache_size", "a\n", 1.0, 0));
        ASSERT_TRUE(journal.append("comm_costs", "b\n", 2.0, 0));
        ASSERT_TRUE(journal.drop("cache_size"));
        ASSERT_TRUE(journal.drop("never_there"));  // dropping nothing is fine
    }
    RunJournal journal(dir, test_header(), RunJournal::Mode::Resume);
    EXPECT_EQ(journal.find("cache_size"), nullptr);
    ASSERT_NE(journal.find("comm_costs"), nullptr);
    EXPECT_EQ(journal.find("comm_costs")->payload, "b\n");
    // And the journal stays appendable after the atomic rewrite.
    EXPECT_TRUE(journal.append("cache_size", "a2\n", 3.0, 0));
}

// ---- the series journal (`servet watch` time series) ----

TEST(SeriesJournal, AppendThenResumeKeepsTickOrder) {
    const std::string dir = unique_dir("series_rt");
    {
        SeriesJournal series(dir, test_header(), SeriesJournal::Mode::Create);
        ASSERT_TRUE(series.append("metric a 0x1p+0\n"));
        ASSERT_TRUE(series.append("metric a 0x1.8p+0\n"));
        ASSERT_TRUE(series.append("metric a 0x1p+1\n"));
    }
    SeriesJournal series(dir, test_header(), SeriesJournal::Mode::Resume);
    EXPECT_FALSE(series.dropped_torn_tail());
    ASSERT_EQ(series.samples().size(), 3u);
    EXPECT_EQ(series.samples()[0], "metric a 0x1p+0\n");
    EXPECT_EQ(series.samples()[2], "metric a 0x1p+1\n");
}

TEST(SeriesJournal, TornTailIsTruncatedSoLaterAppendsSurvive) {
    const std::string dir = unique_dir("series_torn");
    {
        SeriesJournal series(dir, test_header(), SeriesJournal::Mode::Create);
        ASSERT_TRUE(series.append("tick zero\n"));
    }
    const std::string path = SeriesJournal::file_path(dir);
    const std::string committed = slurp(path);
    // A crash mid-append: frame line landed, payload tore off.
    spit(path, committed + "sample 1 400\nhalf a payl");
    {
        SeriesJournal series(dir, test_header(), SeriesJournal::Mode::Resume);
        EXPECT_TRUE(series.dropped_torn_tail());
        ASSERT_EQ(series.samples().size(), 1u);
        // The torn bytes must be physically gone: an append that lands
        // after garbage would be discarded by the *next* load.
        EXPECT_EQ(slurp(path), committed);
        ASSERT_TRUE(series.append("tick one, after the crash\n"));
    }
    SeriesJournal series(dir, test_header(), SeriesJournal::Mode::Resume);
    EXPECT_FALSE(series.dropped_torn_tail());
    ASSERT_EQ(series.samples().size(), 2u);
    EXPECT_EQ(series.samples()[1], "tick one, after the crash\n");
}

TEST(SeriesJournal, TickMismatchDiscardsFromThereOn) {
    const std::string dir = unique_dir("series_tickmismatch");
    {
        SeriesJournal series(dir, test_header(), SeriesJournal::Mode::Create);
        ASSERT_TRUE(series.append("first\n"));
    }
    const std::string path = SeriesJournal::file_path(dir);
    // A structurally valid record whose tick key skips ahead: positional
    // ticks make it untrustworthy, like a torn tail.
    const std::string payload = "out of order\n";
    char commit[64];
    std::snprintf(commit, sizeof commit, "commit 7 %016llx\n",
                  static_cast<unsigned long long>(fnv1a64(payload)));
    spit(path, slurp(path) + "sample 7 " + std::to_string(payload.size()) + "\n" +
                   payload + "\n" + commit);
    SeriesJournal series(dir, test_header(), SeriesJournal::Mode::Resume);
    EXPECT_TRUE(series.dropped_torn_tail());
    ASSERT_EQ(series.samples().size(), 1u);
    EXPECT_EQ(series.samples()[0], "first\n");
}

TEST(SeriesJournal, RefusesIncompatibleHeaderAndRunJournalMagic) {
    const std::string dir = unique_dir("series_compat");
    { SeriesJournal series(dir, test_header(), SeriesJournal::Mode::Create); }
    RunJournal::Header other = test_header();
    other.options_hash = 0x7777;
    EXPECT_THROW(SeriesJournal(dir, other, SeriesJournal::Mode::Resume), JournalError);

    // A run journal dropped where a series is expected (or vice versa)
    // must be refused by magic, not half-parsed.
    const std::string crossed = unique_dir("series_crossed");
    ASSERT_TRUE(create_directories(crossed));
    spit(SeriesJournal::file_path(crossed), "servet-journal 1\noptions = 0\n");
    EXPECT_THROW(SeriesJournal(crossed, test_header(), SeriesJournal::Mode::Resume),
                 JournalError);
}

TEST(RunJournal, TornTailIsPhysicallyTruncated) {
    const std::string dir = unique_dir("journal_torn_trunc");
    {
        RunJournal journal(dir, test_header(), RunJournal::Mode::Create);
        ASSERT_TRUE(journal.append("cache_size", "good\n", 1.0, 0));
    }
    const std::string path = RunJournal::file_path(dir);
    const std::string committed = slurp(path);
    spit(path, committed + "phase comm_costs 99 0x1p+0\ntorn");
    {
        RunJournal journal(dir, test_header(), RunJournal::Mode::Resume);
        EXPECT_TRUE(journal.dropped_torn_tail());
        EXPECT_EQ(slurp(path), committed);
        // An append after the crash lands after the *committed* prefix…
        ASSERT_TRUE(journal.append("comm_costs", "measured again\n", 2.0, 0));
    }
    // …so the next load keeps both records instead of discarding the new
    // one as part of the old torn tail.
    RunJournal journal(dir, test_header(), RunJournal::Mode::Resume);
    EXPECT_FALSE(journal.dropped_torn_tail());
    EXPECT_EQ(journal.records().size(), 2u);
    ASSERT_NE(journal.find("comm_costs"), nullptr);
    EXPECT_EQ(journal.find("comm_costs")->payload, "measured again\n");
}

// ---- MemoCache incremental journal ----

TEST(MemoJournal, AppendsSurviveTornTail) {
    const std::string path = testing::TempDir() + "memo_journal_torn.servet";
    std::remove(path.c_str());
    {
        exec::MemoCache memo;
        ASSERT_TRUE(memo.journal_to(path));
        memo.store("k1", {1.0 / 3.0, -0.0});
        memo.store("k2", {5e-324});
        memo.store("k1", {9.9});  // duplicate: not journaled twice
    }
    // Simulate a crash mid-append: chop the last record in half.
    std::string text = slurp(path);
    spit(path, text.substr(0, text.size() - 4));

    exec::MemoCache reloaded;
    EXPECT_EQ(reloaded.load_file(path, exec::MemoLoadMode::TornTailOk),
              exec::MemoLoad::Loaded);
    EXPECT_EQ(reloaded.size(), 1u);  // k1 intact, k2's torn record dropped
    const auto values = reloaded.lookup("k1");
    ASSERT_TRUE(values.has_value());
    EXPECT_EQ((*values)[0], 1.0 / 3.0);
    // Strict parsing of the very same file demonstrates the hazard the
    // newline-truncation exists for: 5e-324 prints as
    // "0x0.0000000000001p-1022", and chopped four bytes short it reads
    // "...p-1" — a *valid* hexfloat with a wildly wrong value. Token-level
    // validation cannot catch that; only the missing final '\n' can.
    exec::MemoCache strict;
    EXPECT_EQ(strict.load_file(path), exec::MemoLoad::Loaded);
    const auto wrong = strict.lookup("k2");
    ASSERT_TRUE(wrong.has_value());
    EXPECT_NE((*wrong)[0], 5e-324);
    std::remove(path.c_str());
}

TEST(MemoJournal, ReopenedJournalAppendsWithoutDuplicatingHeader) {
    const std::string path = testing::TempDir() + "memo_journal_reopen.servet";
    std::remove(path.c_str());
    {
        exec::MemoCache memo;
        ASSERT_TRUE(memo.journal_to(path));
        memo.store("k1", {1.0});
    }
    {
        exec::MemoCache memo;
        EXPECT_EQ(memo.load_file(path, exec::MemoLoadMode::TornTailOk),
                  exec::MemoLoad::Loaded);
        ASSERT_TRUE(memo.journal_to(path));
        memo.store("k1", {1.0});  // already present: no journal append
        memo.store("k2", {2.0});
    }
    exec::MemoCache reloaded;
    EXPECT_EQ(reloaded.load_file(path), exec::MemoLoad::Loaded);
    EXPECT_EQ(reloaded.size(), 2u);
    std::remove(path.c_str());
}

// ---- checkpoint/resume through run_suite ----

sim::MachineSpec small_machine() {
    sim::zoo::SyntheticOptions options;
    options.cores = 4;
    options.l1_size = 16 * KiB;
    options.l2_size = 256 * KiB;
    options.l2_sharing = 2;
    options.jitter = 0.01;
    return sim::zoo::synthetic(options);
}

SuiteOptions fast_options() {
    SuiteOptions options;
    options.mcalibrator.max_size = 2 * MiB;
    options.mcalibrator.repeats = 3;
    return options;
}

TEST(SuiteResume, ReplaysEveryCommittedPhaseBitExactly) {
    SimPlatform platform(small_machine());
    msg::SimNetwork network(platform.spec());
    SuiteOptions options = fast_options();
    options.run_dir = unique_dir("suite_resume");

    const SuiteResult first = run_suite(platform, &network, options);
    ASSERT_FALSE(first.partial());
    EXPECT_EQ(first.journal_appended, 4u);
    EXPECT_EQ(first.journal_replayed, 0u);

    options.resume = true;
    const SuiteResult resumed = run_suite(platform, &network, options);
    EXPECT_EQ(resumed.journal_replayed, 4u);
    EXPECT_EQ(resumed.journal_appended, 0u);
    EXPECT_TRUE(first.measurements_equal(resumed));
    // Replay restores the producing run's wall clock bit-exactly.
    EXPECT_EQ(first.phase_seconds, resumed.phase_seconds);
}

TEST(SuiteResume, RemeasuresOnlyDroppedPhases) {
    SimPlatform platform(small_machine());
    msg::SimNetwork network(platform.spec());
    SuiteOptions options = fast_options();
    options.run_dir = unique_dir("suite_remeasure");

    const SuiteResult first = run_suite(platform, &network, options);
    ASSERT_EQ(first.journal_appended, 4u);

    options.resume = true;
    options.remeasure = {"comm_costs"};
    const SuiteResult repaired = run_suite(platform, &network, options);
    EXPECT_EQ(repaired.journal_replayed, 3u);
    EXPECT_EQ(repaired.journal_appended, 1u);
    EXPECT_TRUE(first.measurements_equal(repaired));
}

TEST(SuiteResume, RefusesJournalOfDifferentOptions) {
    SimPlatform platform(small_machine());
    msg::SimNetwork network(platform.spec());
    SuiteOptions options = fast_options();
    options.run_dir = unique_dir("suite_refuse");
    (void)run_suite(platform, &network, options);

    SuiteOptions changed = options;
    changed.resume = true;
    changed.mcalibrator.repeats += 1;
    EXPECT_THROW(run_suite(platform, &network, changed), JournalError);
}

TEST(SuiteResume, ResumeWithoutJournalIsAFreshRun) {
    SimPlatform platform(small_machine());
    msg::SimNetwork network(platform.spec());
    SuiteOptions options = fast_options();
    options.run_dir = unique_dir("suite_cold_resume");
    options.resume = true;
    const SuiteResult result = run_suite(platform, &network, options);
    EXPECT_FALSE(result.partial());
    EXPECT_EQ(result.journal_replayed, 0u);
    EXPECT_EQ(result.journal_appended, 4u);
}

}  // namespace
}  // namespace servet::core
