// Rewrites the golden profiles under tests/golden/. Run it through the
// build system — `cmake --build build --target regen_golden_profiles` —
// after an intentional change to the measurement pipeline, then review
// the git diff of the goldens like any other code change.
#include <cstdio>
#include <fstream>
#include <string>

#include "golden_profiles_common.hpp"

int main(int argc, char** argv) {
    if (argc != 2) {
        std::fprintf(stderr, "usage: %s <golden-dir>\n", argv[0]);
        return 2;
    }
    const std::string dir = argv[1];
    for (const auto& machine : servet::golden::golden_machines()) {
        const std::string path = dir + "/" + machine.file + ".profile";
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        if (!out) {
            std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
            return 1;
        }
        out << servet::golden::golden_profile_text(machine);
        if (!out.flush()) {
            std::fprintf(stderr, "write to %s failed\n", path.c_str());
            return 1;
        }
        std::printf("wrote %s\n", path.c_str());
    }
    return 0;
}
