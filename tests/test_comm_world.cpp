#include "msg/comm_world.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "autotune/exec_collectives.hpp"
#include "base/rng.hpp"

namespace servet::msg {
namespace {

TEST(CommWorld, SendAndRecvBetweenRanks) {
    CommWorld world(3);
    Endpoint a = world.endpoint(0);
    Endpoint b = world.endpoint(2);
    const std::vector<std::uint8_t> payload = {1, 2, 3, 4};
    a.send(2, payload);
    std::vector<std::uint8_t> received;
    b.recv(0, received);
    EXPECT_EQ(received, payload);
    EXPECT_EQ(a.world_size(), 3);
    EXPECT_EQ(b.rank(), 2);
}

TEST(CommWorld, TryRecvNonblocking) {
    CommWorld world(2);
    Endpoint a = world.endpoint(0);
    Endpoint b = world.endpoint(1);
    std::vector<std::uint8_t> out;
    EXPECT_FALSE(b.try_recv(0, out));
    a.send(1, std::vector<std::uint8_t>{9});
    EXPECT_TRUE(b.try_recv(0, out));
    EXPECT_EQ(out[0], 9);
    EXPECT_FALSE(b.try_recv(0, out));
}

TEST(CommWorld, CrossThreadPingPong) {
    CommWorld world(2);
    std::thread peer([&] {
        Endpoint b = world.endpoint(1);
        std::vector<std::uint8_t> incoming;
        for (int i = 0; i < 50; ++i) {
            b.recv(0, incoming);
            incoming.push_back(static_cast<std::uint8_t>(i));
            b.send(0, incoming);
        }
    });
    Endpoint a = world.endpoint(0);
    std::vector<std::uint8_t> buffer = {0};
    for (int i = 0; i < 50; ++i) {
        a.send(1, buffer);
        a.recv(1, buffer);
    }
    peer.join();
    EXPECT_EQ(buffer.size(), 51u);  // one byte appended per round trip
}

TEST(CommWorld, BarrierSynchronizesAllRanks) {
    const int ranks = 4;
    CommWorld world(ranks);
    std::atomic<int> before{0};
    std::atomic<int> after{0};
    std::vector<std::thread> threads;
    for (int r = 0; r < ranks; ++r) {
        threads.emplace_back([&, r] {
            Endpoint endpoint = world.endpoint(r);
            for (int epoch = 0; epoch < 20; ++epoch) {
                before.fetch_add(1);
                endpoint.barrier();
                // Everyone must have incremented `before` for this epoch.
                EXPECT_GE(before.load(), (epoch + 1) * ranks);
                after.fetch_add(1);
                endpoint.barrier();
            }
        });
    }
    for (std::thread& thread : threads) thread.join();
    EXPECT_EQ(after.load(), 20 * ranks);
}

TEST(CommWorldDeath, SelfSendRejected) {
    CommWorld world(2);
    Endpoint a = world.endpoint(0);
    EXPECT_DEATH(a.send(0, std::vector<std::uint8_t>{1}), "self-send");
}

// Executable collectives: semantic verification.

std::vector<CoreId> core_range(int n) {
    std::vector<CoreId> cores;
    for (int i = 0; i < n; ++i) cores.push_back(i);
    return cores;
}

std::vector<std::uint8_t> random_payload(std::size_t size, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::uint8_t> payload(size);
    for (auto& byte : payload) byte = static_cast<std::uint8_t>(rng.next_below(256));
    return payload;
}

TEST(ExecBroadcast, FlatDeliversExactBytes) {
    CommWorld world(5);
    const auto cores = core_range(5);
    const auto payload = random_payload(4096, 1);
    const auto buffers = autotune::execute_broadcast(
        world, autotune::broadcast_flat(2, cores), 2, cores, payload);
    for (CoreId core : cores) EXPECT_EQ(buffers.at(core), payload) << core;
}

TEST(ExecBroadcast, BinomialDeliversForEveryRoot) {
    for (const CoreId root : {0, 3, 6}) {
        CommWorld world(7);
        const auto cores = core_range(7);
        const auto payload = random_payload(1024, 7 + static_cast<std::uint64_t>(root));
        const auto buffers = autotune::execute_broadcast(
            world, autotune::broadcast_binomial(root, cores), root, cores, payload);
        for (CoreId core : cores) EXPECT_EQ(buffers.at(core), payload) << core;
    }
}

TEST(ExecBroadcast, HierarchicalDeliversOnTwoLayerProfile) {
    // Two groups {0..3} {4..7} split by a slow layer.
    core::Profile profile;
    profile.cores = 8;
    core::ProfileCommLayer fast, slow;
    fast.latency = 1e-6;
    slow.latency = 9e-6;
    for (CoreId a = 0; a < 8; ++a) {
        for (CoreId b = a + 1; b < 8; ++b) {
            if ((a < 4) == (b < 4)) {
                fast.pairs.push_back({a, b});
            } else {
                slow.pairs.push_back({a, b});
            }
        }
    }
    fast.p2p = {{1 * KiB, 1e-6}};
    slow.p2p = {{1 * KiB, 9e-6}};
    profile.comm = {fast, slow};

    CommWorld world(8);
    const auto cores = core_range(8);
    const auto payload = random_payload(2048, 99);
    const auto schedule = autotune::broadcast_hierarchical(1, cores, profile);
    ASSERT_TRUE(schedule.validate_broadcast(1, cores).empty());
    const auto buffers = autotune::execute_broadcast(world, schedule, 1, cores, payload);
    for (CoreId core : cores) EXPECT_EQ(buffers.at(core), payload) << core;
}

TEST(ExecReduce, BinomialSumsExactly) {
    const int n = 6;
    CommWorld world(n);
    const auto cores = core_range(n);
    std::map<CoreId, std::vector<double>> contributions;
    std::vector<double> expected(8, 0.0);
    Rng rng(31);
    for (CoreId core : cores) {
        std::vector<double> contribution(8);
        for (std::size_t i = 0; i < contribution.size(); ++i) {
            contribution[i] = static_cast<double>(rng.next_below(1000));
            expected[i] += contribution[i];
        }
        contributions[core] = std::move(contribution);
    }
    const auto result = autotune::execute_reduce_sum(
        world, autotune::reduce_binomial(0, cores), 0, cores, contributions);
    ASSERT_EQ(result.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_DOUBLE_EQ(result[i], expected[i]) << i;
}

TEST(ExecReduce, NonZeroRoot) {
    const int n = 5;
    CommWorld world(n);
    const auto cores = core_range(n);
    std::map<CoreId, std::vector<double>> contributions;
    for (CoreId core : cores) contributions[core] = {1.0};
    const auto result = autotune::execute_reduce_sum(
        world, autotune::reduce_binomial(3, cores), 3, cores, contributions);
    EXPECT_DOUBLE_EQ(result[0], static_cast<double>(n));
}

TEST(ExecAllreduce, RecursiveDoublingAllCoresGetTheSum) {
    const int n = 8;
    CommWorld world(n);
    const auto cores = core_range(n);
    std::map<CoreId, std::vector<double>> contributions;
    std::vector<double> expected(4, 0.0);
    Rng rng(71);
    for (CoreId core : cores) {
        std::vector<double> contribution(4);
        for (auto& v : contribution) {
            v = static_cast<double>(rng.next_below(100));
        }
        for (std::size_t i = 0; i < 4; ++i) expected[i] += contribution[i];
        contributions[core] = std::move(contribution);
    }
    const auto result = autotune::execute_allreduce_sum(
        world, autotune::allreduce_recursive_doubling(cores), cores, contributions);
    for (CoreId core : cores) {
        ASSERT_EQ(result.at(core).size(), 4u);
        for (std::size_t i = 0; i < 4; ++i)
            EXPECT_DOUBLE_EQ(result.at(core)[i], expected[i]) << core << "," << i;
    }
}

TEST(ExecAllreduce, ComposedAllCoresGetTheSum) {
    // Composed = reduce (combining) + broadcast (overwriting): every core
    // must still end with exactly the global sum, not a double-counted one.
    const int n = 6;
    CommWorld world(n);
    const auto cores = core_range(n);
    core::Profile profile;  // no comm layers: hierarchical degrades to binomial
    std::map<CoreId, std::vector<double>> contributions;
    double expected = 0;
    for (CoreId core : cores) {
        contributions[core] = {static_cast<double>(core + 1)};
        expected += static_cast<double>(core + 1);
    }
    const auto schedule = autotune::allreduce_composed(0, cores, profile);
    const auto result =
        autotune::execute_allreduce_sum(world, schedule, cores, contributions);
    for (CoreId core : cores)
        EXPECT_DOUBLE_EQ(result.at(core)[0], expected) << core;
}

TEST(ExecBroadcastDeath, WorldTooSmall) {
    CommWorld world(2);
    const auto cores = core_range(4);
    EXPECT_DEATH((void)autotune::execute_broadcast(
                     world, autotune::broadcast_flat(0, cores), 0, cores,
                     std::vector<std::uint8_t>{1}),
                 "");
}

}  // namespace
}  // namespace servet::msg
