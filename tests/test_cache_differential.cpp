// Differential test: SetAssocCache (production model: set-major arrays,
// modulo indexing, stamp-based LRU) against an intentionally naive
// reference (map of sets, explicit recency lists). Random address streams
// over assorted geometries must produce identical hit/miss sequences —
// any divergence pinpoints an indexing or replacement regression.
#include <gtest/gtest.h>

#include <list>
#include <map>
#include <tuple>

#include "base/rng.hpp"
#include "sim/cache.hpp"

namespace servet::sim {
namespace {

/// Naive reference: per-set std::list in recency order (front = MRU).
class ReferenceCache {
  public:
    explicit ReferenceCache(const CacheGeometry& geometry) : geometry_(geometry) {}

    bool access(std::uint64_t addr) {
        const std::uint64_t line = addr / geometry_.line_size;
        const std::uint64_t set = line % geometry_.set_count();
        auto& recency = sets_[set];
        for (auto it = recency.begin(); it != recency.end(); ++it) {
            if (*it == line) {
                recency.erase(it);
                recency.push_front(line);
                return true;
            }
        }
        recency.push_front(line);
        if (recency.size() > static_cast<std::size_t>(geometry_.associativity))
            recency.pop_back();
        return false;
    }

  private:
    CacheGeometry geometry_;
    std::map<std::uint64_t, std::list<std::uint64_t>> sets_;
};

class CacheDifferential
    : public ::testing::TestWithParam<std::tuple<Bytes, int, Bytes>> {};

TEST_P(CacheDifferential, RandomStreamsAgree) {
    const auto [size, assoc, line] = GetParam();
    const CacheGeometry geometry{.size = size, .line_size = line, .associativity = assoc};
    ASSERT_TRUE(geometry.valid());
    SetAssocCache production(geometry);
    ReferenceCache reference(geometry);

    Rng rng(size ^ static_cast<std::uint64_t>(assoc));
    const std::uint64_t span = 4 * size;  // enough aliasing to evict often
    for (int i = 0; i < 20000; ++i) {
        // Mix random accesses with strided bursts (the benchmark pattern).
        std::uint64_t addr;
        if (rng.next_below(4) == 0) {
            addr = rng.next_below(span);
        } else {
            addr = (static_cast<std::uint64_t>(i) * 1024) % span;
        }
        ASSERT_EQ(production.access(addr), reference.access(addr))
            << "diverged at access " << i << " addr " << addr;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheDifferential,
    ::testing::Values(std::make_tuple(4 * KiB, 2, Bytes{64}),
                      std::make_tuple(32 * KiB, 8, Bytes{64}),
                      std::make_tuple(48 * KiB, 12, Bytes{64}),   // non-pow2 sets
                      std::make_tuple(256 * KiB, 8, Bytes{128}),
                      std::make_tuple(96 * KiB, 12, Bytes{128}),  // non-pow2 sets
                      std::make_tuple(16 * KiB, 16, Bytes{64})));

TEST(CacheDifferential, PrefetchFillMatchesAccessContents) {
    // prefetch_fill must leave the same resident set as access (it differs
    // only in the counters).
    const CacheGeometry geometry{.size = 8 * KiB, .line_size = 64, .associativity = 4};
    SetAssocCache via_access(geometry);
    SetAssocCache via_prefetch(geometry);
    Rng rng(5);
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t addr = rng.next_below(64 * KiB);
        (void)via_access.access(addr);
        via_prefetch.prefetch_fill(addr);
    }
    for (std::uint64_t addr = 0; addr < 64 * KiB; addr += 64)
        EXPECT_EQ(via_access.contains(addr), via_prefetch.contains(addr)) << addr;
    EXPECT_EQ(via_prefetch.hit_count() + via_prefetch.miss_count(), 0u);
}

}  // namespace
}  // namespace servet::sim
