#include "core/report.hpp"

#include <gtest/gtest.h>

namespace servet::core {
namespace {

Profile dunnington_like_profile() {
    Profile profile;
    profile.machine = "sim:dunnington";
    profile.cores = 6;  // one package worth, for compact assertions
    profile.page_size = 4096;
    profile.caches = {
        {32 * KiB, "peak", {}},
        {3 * MiB, "probabilistic", {{0, 3}, {1, 4}, {2, 5}}},
        {12 * MiB, "probabilistic", {{0, 1, 2, 3, 4, 5}}},
    };
    profile.memory.reference_bandwidth = 3.5e9;
    ProfileMemoryTier tier;
    tier.bandwidth = 2.45e9;
    tier.groups = {{0, 1, 2, 3, 4, 5}};
    tier.scalability = {3.5e9, 2.45e9};
    profile.memory.tiers = {tier};
    ProfileCommLayer fast, slow;
    fast.latency = 0.7e-6;
    fast.pairs = {{0, 3}};
    fast.slowdown = {1.0, 1.2};
    slow.latency = 1.6e-6;
    slow.pairs = {{0, 1}, {0, 2}};
    profile.comm = {fast, slow};
    profile.phase_seconds = {{"cache_size", 12.0}};
    return profile;
}

TEST(MarkdownReport, ContainsAllSections) {
    const std::string report = render_markdown(dunnington_like_profile());
    EXPECT_NE(report.find("# Servet hardware report: sim:dunnington"), std::string::npos);
    EXPECT_NE(report.find("## Cache hierarchy"), std::string::npos);
    EXPECT_NE(report.find("## Memory"), std::string::npos);
    EXPECT_NE(report.find("## Communication layers"), std::string::npos);
    EXPECT_NE(report.find("## Suite execution times"), std::string::npos);
}

TEST(MarkdownReport, CacheRowsCarryFacts) {
    const std::string report = render_markdown(dunnington_like_profile());
    EXPECT_NE(report.find("| L1 | 32KB | peak | private |"), std::string::npos);
    EXPECT_NE(report.find("| L2 | 3MB | probabilistic | {0,3} {1,4} {2,5} |"),
              std::string::npos);
    EXPECT_NE(report.find("| L3 | 12MB |"), std::string::npos);
}

TEST(MarkdownReport, MemoryAndCommFacts) {
    const std::string report = render_markdown(dunnington_like_profile());
    EXPECT_NE(report.find("3.50 GB/s"), std::string::npos);
    EXPECT_NE(report.find("3.50, 2.45"), std::string::npos);  // scalability curve
    EXPECT_NE(report.find("1.2x @ 2 msgs"), std::string::npos);
}

TEST(MarkdownReport, EmptyProfileStillRenders) {
    Profile empty;
    empty.machine = "bare";
    const std::string report = render_markdown(empty);
    EXPECT_NE(report.find("bare"), std::string::npos);
    EXPECT_EQ(report.find("## Communication layers"), std::string::npos);
}

TEST(DotReport, NestedClustersFollowSharingGroups) {
    const std::string dot = render_dot(dunnington_like_profile());
    EXPECT_NE(dot.find("digraph servet"), std::string::npos);
    // One L3 cluster and three L2 clusters inside it.
    EXPECT_EQ(dot.find("label=\"L3 12MB\""), dot.rfind("label=\"L3 12MB\""));
    std::size_t l2_count = 0;
    for (std::size_t pos = dot.find("label=\"L2 3MB\""); pos != std::string::npos;
         pos = dot.find("label=\"L2 3MB\"", pos + 1))
        ++l2_count;
    EXPECT_EQ(l2_count, 3u);
    // Every core appears as a node.
    for (int core = 0; core < 6; ++core) {
        std::string needle = "c";
        needle += std::to_string(core);
        needle += " [label=\"core";
        EXPECT_NE(dot.find(needle), std::string::npos) << core;
    }
}

TEST(DotReport, CommEdgesAndMemoryNotes) {
    const std::string dot = render_dot(dunnington_like_profile());
    EXPECT_NE(dot.find("c0 -> c3"), std::string::npos);   // fast layer representative
    EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // slowest layer
    EXPECT_NE(dot.find("memory tier 0"), std::string::npos);
}

TEST(DotReport, PrivateCachesYieldFlatGraph) {
    Profile profile;
    profile.machine = "flat";
    profile.cores = 3;
    profile.caches = {{16 * KiB, "peak", {}}};
    const std::string dot = render_dot(profile);
    EXPECT_EQ(dot.find("subgraph"), std::string::npos);
    EXPECT_NE(dot.find("c2 [label=\"core 2\"]"), std::string::npos);
}

}  // namespace
}  // namespace servet::core
