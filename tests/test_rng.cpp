#include "base/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace servet {
namespace {

TEST(Rng, DeterministicPerSeed) {
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next_u64() == b.next_u64()) ++equal;
    EXPECT_LT(equal, 2);
}

TEST(Rng, NextBelowRespectsBound) {
    Rng rng(7);
    for (const std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
        for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
    }
}

TEST(Rng, NextBelowCoversRange) {
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(8));
    EXPECT_EQ(seen.size(), 8u);  // all 8 values appear in 500 draws
}

TEST(Rng, NextBelowRoughlyUniform) {
    Rng rng(13);
    std::vector<int> counts(16, 0);
    const int draws = 160000;
    for (int i = 0; i < draws; ++i) ++counts[rng.next_below(16)];
    for (int c : counts) {
        EXPECT_GT(c, draws / 16 * 0.9);
        EXPECT_LT(c, draws / 16 * 1.1);
    }
}

TEST(Rng, DoubleInUnitInterval) {
    Rng rng(17);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.next_double();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, JitterWithinAmplitude) {
    Rng rng(19);
    for (int i = 0; i < 1000; ++i) {
        const double j = rng.jitter(0.05);
        EXPECT_GE(j, 0.95);
        EXPECT_LE(j, 1.05);
    }
}

TEST(Rng, JitterZeroAmplitudeIsIdentity) {
    Rng rng(23);
    for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(rng.jitter(0.0), 1.0);
}

}  // namespace
}  // namespace servet
