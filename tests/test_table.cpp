#include "base/table.hpp"

#include <gtest/gtest.h>

namespace servet {
namespace {

TEST(TextTable, RendersAlignedColumns) {
    TextTable table({"size", "cycles"});
    table.add_row({"32KB", "3.0"});
    table.add_row({"12MB", "250.1"});
    const std::string out = table.render();
    EXPECT_NE(out.find("size"), std::string::npos);
    EXPECT_NE(out.find("12MB"), std::string::npos);
    // Header, separator, two rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TextTable, ColumnWidthFollowsWidestCell) {
    TextTable table({"a", "b"});
    table.add_row({"wide-cell-value", "x"});
    const std::string out = table.render();
    const auto header_line = out.substr(0, out.find('\n'));
    // 'b' starts after the widest a-column cell plus 2 spaces.
    EXPECT_GE(header_line.find('b'), std::string("wide-cell-value").size() + 2);
}

TEST(TextTable, RowCount) {
    TextTable table({"x"});
    EXPECT_EQ(table.row_count(), 0u);
    table.add_row({"1"});
    table.add_row({"2"});
    EXPECT_EQ(table.row_count(), 2u);
}

TEST(TextTable, CsvPlain) {
    TextTable table({"size", "cycles"});
    table.add_row({"32KB", "3.0"});
    EXPECT_EQ(table.render_csv(), "size,cycles\n32KB,3.0\n");
}

TEST(TextTable, CsvQuotesSpecials) {
    TextTable table({"a", "b"});
    table.add_row({"x,y", "say \"hi\""});
    EXPECT_EQ(table.render_csv(), "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n");
}

TEST(TextTableDeath, MismatchedRowAborts) {
    TextTable table({"a", "b"});
    EXPECT_DEATH(table.add_row({"only-one"}), "row width");
}

TEST(Strf, FormatsLikePrintf) {
    EXPECT_EQ(strf("%d-%s", 7, "x"), "7-x");
    EXPECT_EQ(strf("%.2f", 3.14159), "3.14");
}

}  // namespace
}  // namespace servet
