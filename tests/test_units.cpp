#include "base/units.hpp"

#include <gtest/gtest.h>

namespace servet {
namespace {

TEST(FormatBytes, ExactBinaryUnits) {
    EXPECT_EQ(format_bytes(0), "0B");
    EXPECT_EQ(format_bytes(512), "512B");
    EXPECT_EQ(format_bytes(1024), "1KB");
    EXPECT_EQ(format_bytes(32 * KiB), "32KB");
    EXPECT_EQ(format_bytes(3 * MiB), "3MB");
    EXPECT_EQ(format_bytes(12 * MiB), "12MB");
    EXPECT_EQ(format_bytes(2 * GiB), "2GB");
}

TEST(FormatBytes, FractionalUnits) {
    EXPECT_EQ(format_bytes(1536), "1.5KB");
    EXPECT_EQ(format_bytes(2 * MiB + 512 * KiB), "2.5MB");
}

struct ParseCase {
    const char* text;
    Bytes expected;
};

class ParseBytesValid : public ::testing::TestWithParam<ParseCase> {};

TEST_P(ParseBytesValid, Parses) {
    const auto result = parse_bytes(GetParam().text);
    ASSERT_TRUE(result.has_value()) << GetParam().text;
    EXPECT_EQ(*result, GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParseBytesValid,
    ::testing::Values(ParseCase{"4096", 4096}, ParseCase{"16K", 16 * KiB},
                      ParseCase{"16KB", 16 * KiB}, ParseCase{"16KiB", 16 * KiB},
                      ParseCase{"16kb", 16 * KiB}, ParseCase{"3MB", 3 * MiB},
                      ParseCase{"12m", 12 * MiB}, ParseCase{"1.5GB", GiB + 512 * MiB},
                      ParseCase{"2 MB", 2 * MiB}, ParseCase{"0", 0},
                      ParseCase{"7B", 7}, ParseCase{"0.5K", 512}));

class ParseBytesInvalid : public ::testing::TestWithParam<const char*> {};

TEST_P(ParseBytesInvalid, Rejects) {
    EXPECT_FALSE(parse_bytes(GetParam()).has_value()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Cases, ParseBytesInvalid,
                         ::testing::Values("", "KB", "12Q", "1.2.3K", "-5K", "1e9",
                                           "12KBs", "  "));

TEST(ParseBytes, RoundTripsFormat) {
    for (const Bytes value : {Bytes{1}, Bytes{512}, 16 * KiB, 3 * MiB, 9 * MiB, 2 * GiB}) {
        const auto parsed = parse_bytes(format_bytes(value));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, value);
    }
}

TEST(FormatBandwidth, PicksScale) {
    EXPECT_EQ(format_bandwidth(3.5e9), "3.50 GB/s");
    EXPECT_EQ(format_bandwidth(820e6), "820.0 MB/s");
    EXPECT_EQ(format_bandwidth(5.0e3), "5.0 KB/s");
    EXPECT_EQ(format_bandwidth(12.0), "12.0 B/s");
}

TEST(FormatLatency, PicksScale) {
    EXPECT_EQ(format_latency(1.5), "1.50 s");
    EXPECT_EQ(format_latency(2.5e-3), "2.50 ms");
    EXPECT_EQ(format_latency(7.1e-6), "7.10 us");
    EXPECT_EQ(format_latency(120e-9), "120 ns");
}

}  // namespace
}  // namespace servet
