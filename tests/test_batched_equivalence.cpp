// The determinism contract of the batched line-stream engine: traverse()
// and traverse_reference() are the same machine executed two ways, and
// must agree cycle-for-cycle and Stable-counter-for-counter on every
// machine in the zoo, on randomized synthetic machines, and through the
// full detection suite at any parallelism. This is what entitles the
// golden profiles to stay pinned while the engine's hot path evolves
// (docs/simulator.md).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/rng.hpp"
#include "core/suite.hpp"
#include "msg/sim_network.hpp"
#include "obs/metrics.hpp"
#include "platform/sim_platform.hpp"
#include "sim/engine.hpp"
#include "sim/zoo.hpp"

namespace servet::sim {
namespace {

struct TraverseCall {
    std::vector<CoreId> cores;
    Bytes array_bytes;
    Bytes stride;
    int passes;
    bool fresh_placement;
};

/// A call schedule touching every regime of `spec`: L1-resident,
/// mid-hierarchy, past the last level (memory + contention), line-stride
/// (prefetcher streaming), probe-stride, single- and multi-core, fresh
/// and static placement, back-to-back calls sharing one instance (so
/// run_counter_ advancement is exercised too).
std::vector<TraverseCall> call_schedule(const MachineSpec& spec) {
    const Bytes l1 = spec.levels.front().geometry.size;
    const Bytes llc = spec.levels.back().geometry.size;
    std::vector<TraverseCall> calls;
    calls.push_back({{0}, l1 / 2, 1 * KiB, 2, true});
    calls.push_back({{0}, 2 * l1, 256, 2, true});       // prefetcher in reach
    calls.push_back({{0}, llc + llc / 4, 1 * KiB, 2, true});  // past the LLC
    calls.push_back({{0}, llc / 2, 64, 1, false});      // line stride, static
    calls.push_back({{0}, 2 * l1, 1 * KiB, 3, false});
    if (spec.n_cores >= 2) {
        calls.push_back({{0, spec.n_cores - 1}, llc / 2, 1 * KiB, 2, false});
        calls.push_back({{0, 1}, llc + llc / 4, 1 * KiB, 1, true});  // contended misses
    }
    if (spec.n_cores >= 3) calls.push_back({{2, 0, 1}, 2 * l1, 256, 2, true});
    return calls;
}

/// Run the schedule through two fresh MachineSim instances — one per
/// engine — and require identical cycles, identical demand-access counts,
/// and identical Stable counter deltas.
void expect_engines_agree(const MachineSpec& spec, const std::string& label) {
    MachineSim batched(spec);
    MachineSim reference(spec);
    const std::vector<TraverseCall> calls = call_schedule(spec);

    const std::map<std::string, std::uint64_t> before = obs::registry().stable_counters();
    std::vector<TraversalResult> batched_results;
    for (const TraverseCall& c : calls)
        batched_results.push_back(
            batched.traverse(c.cores, c.array_bytes, c.stride, c.passes, c.fresh_placement));
    const std::map<std::string, std::uint64_t> mid = obs::registry().stable_counters();
    std::vector<TraversalResult> reference_results;
    for (const TraverseCall& c : calls)
        reference_results.push_back(reference.traverse_reference(
            c.cores, c.array_bytes, c.stride, c.passes, c.fresh_placement));
    const std::map<std::string, std::uint64_t> after = obs::registry().stable_counters();

    EXPECT_EQ(batched.total_accesses(), reference.total_accesses()) << label;
    for (std::size_t i = 0; i < calls.size(); ++i) {
        const TraversalResult& b = batched_results[i];
        const TraversalResult& r = reference_results[i];
        ASSERT_EQ(b.cycles_per_access.size(), r.cycles_per_access.size()) << label;
        EXPECT_EQ(b.accesses_per_core, r.accesses_per_core) << label << " call " << i;
        for (std::size_t core = 0; core < b.cycles_per_access.size(); ++core)
            EXPECT_EQ(b.cycles_per_access[core], r.cycles_per_access[core])
                << label << " call " << i << " core slot " << core
                << " (bit-exact equality required)";
    }

    // Stable counters: the batched window (before -> mid) and the
    // reference window (mid -> after) must have pushed identical deltas.
    // Keys absent from an earlier snapshot start at zero.
    const auto value_in = [](const std::map<std::string, std::uint64_t>& snapshot,
                             const std::string& key) -> std::uint64_t {
        const auto it = snapshot.find(key);
        return it == snapshot.end() ? 0 : it->second;
    };
    for (const auto& [key, final_value] : after) {
        const std::uint64_t batched_delta = value_in(mid, key) - value_in(before, key);
        const std::uint64_t reference_delta = final_value - value_in(mid, key);
        EXPECT_EQ(batched_delta, reference_delta) << label << " counter " << key;
    }
}

TEST(BatchedEquivalence, Dunnington) { expect_engines_agree(zoo::dunnington(), "dunnington"); }
TEST(BatchedEquivalence, FinisTerrae) {
    expect_engines_agree(zoo::finis_terrae(), "finis_terrae");
}
TEST(BatchedEquivalence, Dempsey) { expect_engines_agree(zoo::dempsey(), "dempsey"); }
TEST(BatchedEquivalence, Athlon3200) {
    expect_engines_agree(zoo::athlon3200(), "athlon3200");
}
TEST(BatchedEquivalence, Nehalem2S) { expect_engines_agree(zoo::nehalem2s(), "nehalem2s"); }

TEST(BatchedEquivalence, ColoringPolicy) {
    MachineSpec spec = zoo::finis_terrae();
    spec.page_policy = PagePolicy::Coloring;
    expect_engines_agree(spec, "finis_terrae+coloring");
}

TEST(BatchedEquivalence, TlbVariants) {
    // A tiny TLB forces misses (and page-walk penalties) at probe strides;
    // this is the regime where the demand page cache must not over-skip.
    MachineSpec spec = zoo::dempsey();
    spec.tlb.enabled = true;
    spec.tlb.entries = 8;
    spec.tlb.miss_cycles = 30;
    expect_engines_agree(spec, "dempsey+tiny-tlb");

    spec = zoo::nehalem2s();
    spec.tlb.enabled = true;
    spec.tlb.entries = 64;
    expect_engines_agree(spec, "nehalem2s+tlb");
}

TEST(BatchedEquivalence, PrefetcherVariants) {
    MachineSpec eager = zoo::dempsey();
    eager.prefetcher.trigger_streak = 0;  // streams from the first access
    eager.prefetcher.degree = 8;
    expect_engines_agree(eager, "dempsey+eager-prefetch");

    MachineSpec reluctant = zoo::dempsey();
    reluctant.prefetcher.trigger_streak = 5;
    reluctant.prefetcher.max_stride = 2 * KiB;  // probe stride in reach
    expect_engines_agree(reluctant, "dempsey+reluctant-prefetch");

    MachineSpec off = zoo::dempsey();
    off.prefetcher.enabled = false;
    expect_engines_agree(off, "dempsey+no-prefetch");
}

class RandomizedEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomizedEquivalence, EnginesAgree) {
    Rng rng(GetParam() * 0x9e3779b97f4a7c15ULL + 1);
    zoo::SyntheticOptions options;
    options.cores = 2 + static_cast<int>(rng.next_below(2)) * 2;  // 2 or 4
    const Bytes l1_choices[] = {16 * KiB, 32 * KiB, 64 * KiB};
    options.l1_size = l1_choices[rng.next_below(3)];
    const Bytes l2_choices[] = {512 * KiB, 1 * MiB, 2 * MiB};
    options.l2_size = l2_choices[rng.next_below(3)];
    options.l2_sharing = (options.cores == 4 && rng.next_below(2) == 0) ? 2 : 1;
    options.page_policy =
        rng.next_below(3) == 0 ? PagePolicy::Coloring : PagePolicy::Random;
    options.seed = GetParam() * 977;

    MachineSpec spec = zoo::synthetic(options);
    spec.tlb.enabled = rng.next_below(2) == 0;
    spec.tlb.entries = 8 << rng.next_below(4);  // 8..64
    spec.prefetcher.trigger_streak = static_cast<int>(rng.next_below(4));
    spec.prefetcher.degree = 1 + static_cast<int>(rng.next_below(4));
    spec.prefetcher.max_stride = 256ull << rng.next_below(3);  // 256..1024
    expect_engines_agree(spec, "synthetic seed " + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedEquivalence,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

/// Suite-level closure: the full detection pipeline on a reference-engine
/// platform at jobs=1 must emit the same profile bytes as the batched
/// engine at jobs=1 and jobs=4.
TEST(BatchedEquivalence, SuiteProfileMatchesAcrossEnginesAndJobs) {
    const MachineSpec spec = zoo::dempsey();
    core::SuiteOptions options;
    options.mcalibrator.max_size = 3 * spec.levels.back().geometry.size;
    options.mcalibrator.repeats = 2;
    options.shared_cache.only_with_core = 0;
    options.mem_overhead.only_with_core = 0;

    const auto profile_with = [&](SimPlatform::Engine engine, int jobs) {
        SimPlatform platform(spec);
        platform.set_engine(engine);
        msg::SimNetwork network(platform.spec());
        core::SuiteOptions run_options = options;
        run_options.jobs = jobs;
        const core::SuiteResult result = core::run_suite(platform, &network, run_options);
        core::Profile profile = result.to_profile(spec.name, spec.n_cores, spec.page_size);
        profile.phase_seconds.clear();  // wall clock legitimately differs
        return profile.serialize();
    };

    const std::string reference_serial = profile_with(SimPlatform::Engine::Reference, 1);
    EXPECT_EQ(reference_serial, profile_with(SimPlatform::Engine::Batched, 1));
    EXPECT_EQ(reference_serial, profile_with(SimPlatform::Engine::Batched, 4));
}

}  // namespace
}  // namespace servet::sim
