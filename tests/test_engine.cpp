#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include "sim/zoo.hpp"

namespace servet::sim {
namespace {

MachineSpec quiet(MachineSpec spec) {
    spec.measurement_jitter = 0.0;
    return spec;
}

TEST(Engine, L1ResidentArrayCostsL1HitTime) {
    MachineSim machine(quiet(zoo::dunnington()));
    // 16KB fits the 32KB L1; steady-state cost == L1 hit cycles.
    const Cycles c = machine.traverse_one(0, 16 * KiB, 1 * KiB, 3);
    EXPECT_NEAR(c, machine.spec().levels[0].hit_cycles, 0.2);
}

TEST(Engine, HugeArrayCostsMemoryLatency) {
    MachineSim machine(quiet(zoo::dempsey()));
    const Cycles c = machine.traverse_one(0, 32 * MiB, 1 * KiB, 3);
    EXPECT_NEAR(c, machine.spec().memory.latency_cycles, 15.0);
}

TEST(Engine, ColoringGivesExactCapacityCliffs) {
    MachineSpec spec = quiet(zoo::finis_terrae());
    spec.page_policy = PagePolicy::Coloring;
    MachineSim machine(spec);
    // With page coloring every level behaves virtually indexed: exactly at
    // capacity all hits, just past it all misses (stride divides size).
    EXPECT_NEAR(machine.traverse_one(0, 9 * MiB, 1 * KiB, 3), 30.0, 0.5);
    EXPECT_NEAR(machine.traverse_one(0, 10 * MiB, 1 * KiB, 3), 300.0, 5.0);
}

TEST(Engine, RandomPlacementSmearsTransition) {
    // Without coloring, a physically indexed cache misses *before* its
    // capacity (Section III-A2): at 8MB of a 9MB L3 some page sets already
    // overflow.
    MachineSim machine(quiet(zoo::finis_terrae()));
    const Cycles at_8mb = machine.traverse_one(0, 8 * MiB, 1 * KiB, 3);
    EXPECT_GT(at_8mb, 40.0);   // visibly above the 30-cycle L3 plateau
    EXPECT_LT(at_8mb, 290.0);  // but not fully missing either
}

TEST(Engine, FreshPlacementVariesStaticDoesNot) {
    MachineSim machine(quiet(zoo::finis_terrae()));
    const Cycles s1 = machine.traverse_one(0, 8 * MiB, 1 * KiB, 2, /*fresh=*/false);
    const Cycles s2 = machine.traverse_one(0, 8 * MiB, 1 * KiB, 2, /*fresh=*/false);
    EXPECT_DOUBLE_EQ(s1, s2) << "static placement must reproduce exactly";

    bool varied = false;
    const Cycles f1 = machine.traverse_one(0, 8 * MiB, 1 * KiB, 2, /*fresh=*/true);
    for (int i = 0; i < 4 && !varied; ++i)
        varied = machine.traverse_one(0, 8 * MiB, 1 * KiB, 2, /*fresh=*/true) != f1;
    EXPECT_TRUE(varied) << "fresh placements should differ at a smeared size";
}

TEST(Engine, SharedCacheThrashing) {
    // Dunnington: cores 0 and 12 share a 3MB L2. Two 2MB arrays cannot
    // coexist -> the pair's cycles at least double the solo run (Fig. 5).
    MachineSim machine(quiet(zoo::dunnington()));
    const Bytes array = 2 * MiB;
    const Cycles solo = machine.traverse_one(0, array, 1 * KiB, 3, false);
    const auto pair = machine.traverse({0, 12}, array, 1 * KiB, 3, false);
    EXPECT_GT(pair.cycles_per_access[0] / solo, 2.0);
    // Cores 0 and 1 have different L2s: no thrash.
    const auto unshared = machine.traverse({0, 1}, array, 1 * KiB, 3, false);
    EXPECT_LT(unshared.cycles_per_access[0] / solo, 1.5);
}

TEST(Engine, ConcurrentResultsAlignWithCores) {
    MachineSim machine(quiet(zoo::dunnington()));
    const auto result = machine.traverse({5, 17}, 2 * MiB, 1 * KiB, 2, false);
    ASSERT_EQ(result.cycles_per_access.size(), 2u);
    EXPECT_GT(result.accesses_per_core, 0u);
}

TEST(Engine, PrefetcherHidesSmallStrideMisses) {
    // The paper's rationale for the 1KB stride: a 256B stride is within
    // prefetch reach, so capacity misses get hidden and the measured
    // cycles stay near the hit time even past the cache size.
    MachineSpec spec = quiet(zoo::dempsey());
    MachineSim with(spec);
    const Cycles hidden = with.traverse_one(0, 8 * MiB, 256, 2);

    spec.prefetcher.enabled = false;
    MachineSim without(spec);
    const Cycles exposed = without.traverse_one(0, 8 * MiB, 256, 2);

    EXPECT_LT(hidden, 0.3 * exposed)
        << "prefetcher should hide most misses at 256B stride";
    // And at the probe stride of 1KB the prefetcher must not help.
    MachineSim with2(quiet(zoo::dempsey()));
    const Cycles probe = with2.traverse_one(0, 8 * MiB, 1 * KiB, 2);
    EXPECT_GT(probe, 0.8 * exposed);
}

TEST(Engine, CopyBandwidthCacheResidentIsFast) {
    MachineSim machine(quiet(zoo::dunnington()));
    const BytesPerSecond cached = machine.copy_bandwidth(0, {0}, 512 * KiB);
    const BytesPerSecond streaming = machine.copy_bandwidth(0, {0}, 64 * MiB);
    EXPECT_GT(cached, streaming);
    EXPECT_DOUBLE_EQ(streaming, machine.spec().memory.single_core_bandwidth);
}

TEST(Engine, CopyBandwidthContention) {
    MachineSim machine(quiet(zoo::finis_terrae()));
    const BytesPerSecond solo = machine.copy_bandwidth(0, {0}, 64 * MiB);
    const BytesPerSecond paired = machine.copy_bandwidth(0, {0, 1}, 64 * MiB);
    EXPECT_NEAR(paired / solo, 0.55, 1e-9);
}

TEST(Engine, MemoryLatencyMultiplierAppliedToMisses) {
    // Two FT bus-mates streaming past every cache: per-access cost rises
    // by the bus queueing factor (1.35) relative to solo.
    MachineSim machine(quiet(zoo::finis_terrae()));
    const Cycles solo = machine.traverse_one(0, 32 * MiB, 1 * KiB, 2, false);
    const auto pair = machine.traverse({0, 1}, 32 * MiB, 1 * KiB, 2, false);
    EXPECT_NEAR(pair.cycles_per_access[0] / solo, 1.35, 0.06);
}

TEST(Engine, TotalAccessCounterAdvances) {
    MachineSim machine(quiet(zoo::dempsey()));
    const std::uint64_t before = machine.total_accesses();
    (void)machine.traverse_one(0, 64 * KiB, 1 * KiB, 1);
    EXPECT_GT(machine.total_accesses(), before);
}

TEST(Engine, ReferenceEngineAgreesWithBatched) {
    // The scalar oracle and the batched pipeline must produce identical
    // results from identical simulator state. Fresh placement advances
    // run_counter_ identically in both, so mirrored call sequences on two
    // instances stay in lockstep (the zoo-wide sweep lives in
    // test_batched_equivalence).
    MachineSim batched(quiet(zoo::dunnington()));
    MachineSim reference(quiet(zoo::dunnington()));
    const auto b = batched.traverse({0, 12}, 2 * MiB, 1 * KiB, 3, false);
    const auto r = reference.traverse_reference({0, 12}, 2 * MiB, 1 * KiB, 3, false);
    ASSERT_EQ(b.cycles_per_access.size(), r.cycles_per_access.size());
    EXPECT_EQ(b.accesses_per_core, r.accesses_per_core);
    for (std::size_t i = 0; i < b.cycles_per_access.size(); ++i)
        EXPECT_DOUBLE_EQ(b.cycles_per_access[i], r.cycles_per_access[i]);
    EXPECT_EQ(batched.total_accesses(), reference.total_accesses());
}

TEST(Engine, ReferenceEngineSmearedSizeFreshPlacement) {
    // The hard case: random placement, physically indexed L3 partially
    // overflowing, prefetcher active at a 256B stride.
    MachineSim batched(quiet(zoo::finis_terrae()));
    MachineSim reference(quiet(zoo::finis_terrae()));
    EXPECT_DOUBLE_EQ(batched.traverse_one(0, 8 * MiB, 256, 2, true),
                     reference.traverse_reference({0}, 8 * MiB, 256, 2, true)
                         .cycles_per_access.front());
}

TEST(EngineDeath, RejectsBadArguments) {
    MachineSim machine(quiet(zoo::dempsey()));
    EXPECT_DEATH((void)machine.traverse({}, KiB, KiB, 1), "");
    EXPECT_DEATH((void)machine.traverse({5}, KiB, KiB, 1), "");  // core out of range
    EXPECT_DEATH((void)machine.traverse({0}, KiB, KiB, 0), "");
    EXPECT_DEATH((void)machine.traverse({0, 0}, KiB, KiB, 1), "distinct");
    EXPECT_DEATH((void)machine.traverse_reference({1, 1}, KiB, KiB, 1), "distinct");
}

TEST(EngineDeath, InvalidSpecRejected) {
    MachineSpec spec = zoo::dempsey();
    spec.levels[0].geometry.size = spec.levels[1].geometry.size;
    EXPECT_DEATH(MachineSim{spec}, "validation");
}

}  // namespace
}  // namespace servet::sim
