#include <gtest/gtest.h>

#include <stdlib.h>
#include <unistd.h>

#include "base/fs.hpp"
#include "hw/affinity.hpp"
#include "hw/kernels.hpp"
#include "hw/timer.hpp"
#include "hw/topology.hpp"

namespace servet::hw {
namespace {

TEST(Timer, TimestampMonotone) {
    const auto t0 = timestamp();
    const auto t1 = timestamp();
    EXPECT_GE(t1, t0);
}

TEST(Timer, FrequencyPlausible) {
    const double f = timestamp_frequency();
    EXPECT_GT(f, 1e6);    // at least MHz
    EXPECT_LT(f, 1e11);   // below 100 GHz
}

TEST(Timer, TicksToSecondsScales) {
    const double one_second = ticks_to_seconds(
        static_cast<std::uint64_t>(timestamp_frequency()));
    EXPECT_NEAR(one_second, 1.0, 0.01);
}

TEST(Timer, StopwatchMeasuresElapsed) {
    Stopwatch watch;
    volatile double sink = 0;
    for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
    EXPECT_GT(watch.elapsed_ticks(), 0u);
    EXPECT_GT(watch.elapsed_seconds(), 0.0);
    EXPECT_LT(watch.elapsed_seconds(), 5.0);
}

TEST(Affinity, CoreCountPositive) { EXPECT_GE(online_core_count(), 1); }

TEST(Affinity, PinToCoreZero) {
    // Core 0 always exists; pinning to it should succeed on Linux.
    EXPECT_TRUE(pin_current_thread(0));
    const CoreId where = current_core();
    if (where >= 0) {
        EXPECT_EQ(where, 0);
    }
}

TEST(Affinity, PinToNegativeFails) { EXPECT_FALSE(pin_current_thread(-1)); }

TEST(Kernels, TraversalBufferAccessCount) {
    TraversalBuffer buffer(8 * KiB, 1 * KiB);
    EXPECT_EQ(buffer.accesses_per_pass(), 8u);
    EXPECT_EQ(buffer.size_bytes(), 8 * KiB);
}

TEST(Kernels, TraversalRoundsDownToElements) {
    TraversalBuffer buffer(1025, 1024);
    EXPECT_EQ(buffer.size_bytes(), 1024u);
    EXPECT_EQ(buffer.accesses_per_pass(), 1u);
}

TEST(Kernels, TraverseOnceAccumulates) {
    TraversalBuffer buffer(4 * KiB, 1 * KiB);
    const auto first = buffer.traverse_once();
    const auto second = buffer.traverse_once();
    EXPECT_GT(second, first);  // aux carries across passes
}

TEST(Kernels, MeasureCyclesPositiveAndStable) {
    TraversalBuffer buffer(64 * KiB, 1 * KiB);
    const Cycles c = buffer.measure_cycles_per_access(5);
    EXPECT_GT(c, 0.0);
    EXPECT_LT(c, 1e7);
}

TEST(Kernels, BiggerThanCacheIsSlower) {
    // Even without knowing this host's hierarchy, a 64MB strided walk
    // must cost more per access than a 16KB one.
    TraversalBuffer small(16 * KiB, 1 * KiB);
    TraversalBuffer big(64 * MiB, 1 * KiB);
    const Cycles fast = small.measure_cycles_per_access(20);
    const Cycles slow = big.measure_cycles_per_access(3);
    EXPECT_GT(slow, fast);
}

TEST(Kernels, CopyBandwidthPlausible) {
    const BytesPerSecond bw = measure_copy_bandwidth(8 * MiB, 3);
    EXPECT_GT(bw, 1e8);   // above 100 MB/s
    EXPECT_LT(bw, 1e13);  // below 10 TB/s
}

TEST(Kernels, FlushCachesRuns) { flush_caches(4 * MiB); }

// sysfs parsing helpers.

TEST(Topology, ParseCpulistSingles) {
    EXPECT_EQ(parse_cpulist("3"), (std::vector<CoreId>{3}));
    EXPECT_EQ(parse_cpulist("0,2,4"), (std::vector<CoreId>{0, 2, 4}));
}

TEST(Topology, ParseCpulistRanges) {
    EXPECT_EQ(parse_cpulist("0-3"), (std::vector<CoreId>{0, 1, 2, 3}));
    EXPECT_EQ(parse_cpulist("0-2,12-14\n"),
              (std::vector<CoreId>{0, 1, 2, 12, 13, 14}));
}

TEST(Topology, ParseCpulistRejectsGarbage) {
    EXPECT_FALSE(parse_cpulist("").has_value());
    EXPECT_FALSE(parse_cpulist("a-b").has_value());
    EXPECT_FALSE(parse_cpulist("3-1").has_value());
}

TEST(Topology, ParseSysfsSize) {
    EXPECT_EQ(parse_sysfs_size("32K"), 32 * KiB);
    EXPECT_EQ(parse_sysfs_size("12288K"), 12 * MiB);
    EXPECT_EQ(parse_sysfs_size("3M\n"), 3 * MiB);
    EXPECT_EQ(parse_sysfs_size("64"), 64u);
    EXPECT_FALSE(parse_sysfs_size("").has_value());
    EXPECT_FALSE(parse_sysfs_size("12Q").has_value());
}

TEST(Topology, SysfsCachesDoNotCrash) {
    // Content depends on the host; the call must be safe everywhere and
    // never return instruction caches.
    const auto caches = sysfs_caches(0);
    for (const SysfsCache& cache : caches) {
        EXPECT_NE(cache.type, "Instruction");
        EXPECT_GE(cache.level, 1);
    }
}

// A fake sysfs cpu tree exercising the fixture-root overload.

class SysfsFixture : public ::testing::Test {
  protected:
    void SetUp() override {
        char pattern[] = "/tmp/servet-sysfs-XXXXXX";
        ASSERT_NE(::mkdtemp(pattern), nullptr);
        root_ = pattern;
    }
    void TearDown() override {
        // Best-effort recursive cleanup of the tiny fixed-shape tree.
        for (int index = 0; index < 8; ++index) {
            const std::string dir = root_ + "/cpu0/cache/index" + std::to_string(index);
            for (const char* file : {"level", "type", "size", "shared_cpu_list"})
                (void)::unlink((dir + "/" + file).c_str());
            (void)::rmdir(dir.c_str());
        }
        (void)::rmdir((root_ + "/cpu0/cache").c_str());
        (void)::rmdir((root_ + "/cpu0").c_str());
        (void)::rmdir(root_.c_str());
    }

    void add_index(int index, const std::string& level, const std::string& type,
                   const std::string& size, const std::string& shared) {
        const std::string dir = root_ + "/cpu0/cache/index" + std::to_string(index);
        ASSERT_TRUE(create_directories(dir));
        ASSERT_TRUE(write_file_atomic(dir + "/level", level));
        ASSERT_TRUE(write_file_atomic(dir + "/type", type));
        ASSERT_TRUE(write_file_atomic(dir + "/size", size));
        ASSERT_TRUE(write_file_atomic(dir + "/shared_cpu_list", shared));
    }

    std::string root_;
};

TEST_F(SysfsFixture, WellFormedTreeParses) {
    add_index(0, "1\n", "Data\n", "32K\n", "0\n");
    add_index(1, "1\n", "Instruction\n", "32K\n", "0\n");
    add_index(2, "2\n", "Unified\n", "6144K\n", "0-1\n");
    const auto caches = sysfs_caches(0, root_);
    ASSERT_EQ(caches.size(), 2u);  // the instruction cache is dropped
    EXPECT_EQ(caches[0].level, 1);
    EXPECT_EQ(caches[0].size, 32 * KiB);
    EXPECT_EQ(caches[1].level, 2);
    EXPECT_EQ(caches[1].size, 6 * MiB);
    EXPECT_EQ(caches[1].shared_with, (std::vector<CoreId>{0, 1}));
}

TEST_F(SysfsFixture, MalformedLevelIsSkippedNotLevelZero) {
    // A garbage `level` file used to go through unchecked atoi and come
    // back as a bogus level-0 cache; it must be skipped instead, without
    // hiding the well-formed indices after it.
    add_index(0, "1\n", "Data\n", "32K\n", "0\n");
    add_index(1, "not-a-number\n", "Unified\n", "256K\n", "0\n");
    add_index(2, "\n", "Unified\n", "1024K\n", "0\n");
    add_index(3, "0\n", "Unified\n", "2048K\n", "0\n");  // level < 1 is garbage too
    add_index(4, "3\n", "Unified\n", "8192K\n", "0-3\n");
    const auto caches = sysfs_caches(0, root_);
    ASSERT_EQ(caches.size(), 2u);
    EXPECT_EQ(caches[0].level, 1);
    EXPECT_EQ(caches[1].level, 3);
    for (const SysfsCache& cache : caches) EXPECT_GE(cache.level, 1);
}

TEST_F(SysfsFixture, MissingTreeYieldsEmpty) {
    EXPECT_TRUE(sysfs_caches(0, root_ + "/nonexistent").empty());
    EXPECT_TRUE(sysfs_caches(7, root_).empty());  // no cpu7 directory
}

}  // namespace
}  // namespace servet::hw
