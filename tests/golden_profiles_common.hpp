// Shared between the golden-profile regression test and the
// regen_golden_profiles tool so both always agree on which machines are
// pinned and with what suite options. A golden captures the complete
// serialized Profile of a zoo machine; any change to the measurement
// pipeline that moves a detected quantity shows up as a text diff
// against tests/golden/<file>.profile.
#pragma once

#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "core/suite.hpp"
#include "msg/sim_network.hpp"
#include "platform/sim_platform.hpp"
#include "sim/zoo.hpp"

namespace servet::golden {

struct GoldenMachine {
    std::string file;  ///< basename under tests/golden/, without extension
    sim::MachineSpec spec;
};

inline std::vector<GoldenMachine> golden_machines() {
    return {
        {"dempsey", sim::zoo::dempsey()},
        {"athlon3200", sim::zoo::athlon3200()},
        {"nehalem2s", sim::zoo::nehalem2s()},
        {"ft-small", sim::zoo::fat_tree_small()},
        {"torus4x4", sim::zoo::torus4x4()},
    };
}

/// Trimmed options so a golden run takes seconds, not minutes: the
/// mcalibrator sweep stops at 3x the machine's last cache and averages
/// two repeats per size. Detection accuracy is not asserted here — the
/// golden pins whatever the pipeline produces, bit for bit. The
/// deterministic observability counters ride along ([counters] section),
/// so a schedule-dependent counting site also shows up as a golden diff.
inline core::SuiteOptions golden_options(const sim::MachineSpec& spec) {
    core::SuiteOptions options;
    options.mcalibrator.max_size = 3 * spec.levels.back().geometry.size;
    options.mcalibrator.repeats = 2;
    options.profile_counters = true;
    // Cluster goldens take the same comm-only path `servet profile
    // --platform` does: cache phases off, sampled probe pairs.
    if (spec.topology.enabled()) {
        options.run_cache_size = false;
        options.comm.probe_pairs = core::cluster_probe_pairs(spec, options.comm);
    }
    return options;
}

/// Runs the suite and serializes the resulting profile with the
/// phase_seconds block stripped — wall clock is the one measured
/// quantity that can never repeat.
inline std::string golden_profile_text(const GoldenMachine& machine) {
    SimPlatform platform(machine.spec);
    msg::SimNetwork network(platform.spec());
    const core::SuiteResult result =
        core::run_suite(platform, &network, golden_options(machine.spec));
    core::Profile profile =
        result.to_profile(platform.name(), platform.core_count(), platform.page_size());
    if (machine.spec.topology.enabled())
        core::annotate_cluster_profile(&profile, machine.spec);
    profile.phase_seconds.clear();
    return profile.serialize();
}

}  // namespace servet::golden
