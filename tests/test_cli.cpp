#include "base/cli.hpp"

#include <gtest/gtest.h>

namespace servet {
namespace {

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
    std::vector<const char*> argv = {"prog"};
    argv.insert(argv.end(), args);
    return argv;
}

TEST(Cli, FlagDefaultsFalse) {
    CliParser cli("test");
    cli.add_flag("verbose", "be chatty");
    const auto argv = argv_of({});
    ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_FALSE(cli.flag("verbose"));
}

TEST(Cli, FlagSet) {
    CliParser cli("test");
    cli.add_flag("verbose", "be chatty");
    const auto argv = argv_of({"--verbose"});
    ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_TRUE(cli.flag("verbose"));
}

TEST(Cli, OptionDefault) {
    CliParser cli("test");
    cli.add_option("machine", "target machine", "dunnington");
    const auto argv = argv_of({});
    ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_EQ(cli.option("machine"), "dunnington");
}

TEST(Cli, OptionSeparateValue) {
    CliParser cli("test");
    cli.add_option("machine", "target machine", "dunnington");
    const auto argv = argv_of({"--machine", "dempsey"});
    ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_EQ(cli.option("machine"), "dempsey");
}

TEST(Cli, OptionEqualsValue) {
    CliParser cli("test");
    cli.add_option("machine", "target machine", "dunnington");
    const auto argv = argv_of({"--machine=athlon"});
    ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_EQ(cli.option("machine"), "athlon");
}

TEST(Cli, MissingValueFails) {
    CliParser cli("test");
    cli.add_option("machine", "target machine", "dunnington");
    const auto argv = argv_of({"--machine"});
    EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(Cli, UnknownOptionFails) {
    CliParser cli("test");
    const auto argv = argv_of({"--bogus"});
    EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(Cli, HelpReturnsFalse) {
    CliParser cli("test");
    const auto argv = argv_of({"--help"});
    EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(Cli, PositionalCollected) {
    CliParser cli("test");
    cli.add_flag("verbose", "chatty");
    const auto argv = argv_of({"input.txt", "--verbose", "more.txt"});
    ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
    ASSERT_EQ(cli.positional().size(), 2u);
    EXPECT_EQ(cli.positional()[0], "input.txt");
    EXPECT_EQ(cli.positional()[1], "more.txt");
}

TEST(Cli, IntOptionParses) {
    CliParser cli("test");
    cli.add_option("cores", "core count", "4");
    const auto argv = argv_of({"--cores", "24"});
    ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_EQ(cli.option_int("cores"), 24);
}

TEST(Cli, IntOptionRejectsGarbage) {
    CliParser cli("test");
    cli.add_option("cores", "core count", "x");
    const auto argv = argv_of({});
    ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_FALSE(cli.option_int("cores").has_value());
}

TEST(Cli, DoubleOptionParses) {
    CliParser cli("test");
    cli.add_option("threshold", "ratio", "2.0");
    const auto argv = argv_of({"--threshold=2.5"});
    ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_DOUBLE_EQ(cli.option_double("threshold").value(), 2.5);
}

}  // namespace
}  // namespace servet
