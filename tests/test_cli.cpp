#include "base/cli.hpp"

#include <gtest/gtest.h>

#include "platform/platform_file.hpp"

namespace servet {
namespace {

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
    std::vector<const char*> argv = {"prog"};
    argv.insert(argv.end(), args);
    return argv;
}

TEST(Cli, FlagDefaultsFalse) {
    CliParser cli("test");
    cli.add_flag("verbose", "be chatty");
    const auto argv = argv_of({});
    ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_FALSE(cli.flag("verbose"));
}

TEST(Cli, FlagSet) {
    CliParser cli("test");
    cli.add_flag("verbose", "be chatty");
    const auto argv = argv_of({"--verbose"});
    ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_TRUE(cli.flag("verbose"));
}

TEST(Cli, FlagAcceptsBooleanSpellings) {
    // --flag=<v> for every accepted spelling; "=1" used to parse as false
    // because the stored value was compared verbatim against "true".
    const struct {
        const char* arg;
        bool expected;
    } cases[] = {
        {"--resume=true", true},
        {"--resume=1", true},
        {"--resume=false", false},
        {"--resume=0", false},
    };
    for (const auto& c : cases) {
        CliParser cli("test");
        cli.add_flag("resume", "resume the run");
        const auto argv = argv_of({c.arg});
        ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data())) << c.arg;
        EXPECT_EQ(cli.flag("resume"), c.expected) << c.arg;
    }
}

TEST(Cli, FlagRejectsNonBooleanValue) {
    for (const char* arg : {"--resume=yes", "--resume=2", "--resume=TRUE",
                            "--resume=garbage", "--resume="}) {
        CliParser cli("test");
        cli.add_flag("resume", "resume the run");
        const auto argv = argv_of({arg});
        EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data())) << arg;
    }
}

TEST(Cli, FlagBareStillTrue) {
    CliParser cli("test");
    cli.add_flag("resume", "resume the run");
    const auto argv = argv_of({"--resume"});
    ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_TRUE(cli.flag("resume"));
}

TEST(Cli, UsageShowsRegisteredDefaultNotParsedValue) {
    // --help alongside other options must print the registered default,
    // not whatever this invocation happened to pass.
    CliParser cli("test");
    cli.add_option("machine", "target machine", "dunnington");
    cli.add_flag("fast", "fewer repeats");
    const auto argv = argv_of({"--machine", "dempsey", "--fast"});
    ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_EQ(cli.option("machine"), "dempsey");  // parse still took effect
    const std::string usage = cli.usage_text("prog");
    EXPECT_NE(usage.find("default: dunnington"), std::string::npos) << usage;
    EXPECT_EQ(usage.find("default: dempsey"), std::string::npos) << usage;
}

TEST(Cli, OptionDefault) {
    CliParser cli("test");
    cli.add_option("machine", "target machine", "dunnington");
    const auto argv = argv_of({});
    ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_EQ(cli.option("machine"), "dunnington");
}

TEST(Cli, OptionSeparateValue) {
    CliParser cli("test");
    cli.add_option("machine", "target machine", "dunnington");
    const auto argv = argv_of({"--machine", "dempsey"});
    ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_EQ(cli.option("machine"), "dempsey");
}

TEST(Cli, OptionEqualsValue) {
    CliParser cli("test");
    cli.add_option("machine", "target machine", "dunnington");
    const auto argv = argv_of({"--machine=athlon"});
    ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_EQ(cli.option("machine"), "athlon");
}

TEST(Cli, MissingValueFails) {
    CliParser cli("test");
    cli.add_option("machine", "target machine", "dunnington");
    const auto argv = argv_of({"--machine"});
    EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(Cli, UnknownOptionFails) {
    CliParser cli("test");
    const auto argv = argv_of({"--bogus"});
    EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(Cli, HelpReturnsFalse) {
    CliParser cli("test");
    const auto argv = argv_of({"--help"});
    EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(Cli, PositionalCollected) {
    CliParser cli("test");
    cli.add_flag("verbose", "chatty");
    const auto argv = argv_of({"input.txt", "--verbose", "more.txt"});
    ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
    ASSERT_EQ(cli.positional().size(), 2u);
    EXPECT_EQ(cli.positional()[0], "input.txt");
    EXPECT_EQ(cli.positional()[1], "more.txt");
}

TEST(Cli, IntOptionParses) {
    CliParser cli("test");
    cli.add_option("cores", "core count", "4");
    const auto argv = argv_of({"--cores", "24"});
    ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_EQ(cli.option_int("cores"), 24);
}

TEST(Cli, IntOptionRejectsGarbage) {
    CliParser cli("test");
    cli.add_option("cores", "core count", "x");
    const auto argv = argv_of({});
    ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_FALSE(cli.option_int("cores").has_value());
}

TEST(Cli, DoubleOptionParses) {
    CliParser cli("test");
    cli.add_option("threshold", "ratio", "2.0");
    const auto argv = argv_of({"--threshold=2.5"});
    ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_DOUBLE_EQ(cli.option_double("threshold").value(), 2.5);
}

// ---- platform files (the `servet profile --platform` input) ----

constexpr const char* kValidFatTree =
    "servet-platform 1\n"
    "name = t\n"
    "cores_per_node = 2\n"
    "\n"
    "[topology]\n"
    "kind = fat-tree\n"
    "arity = 2\n"
    "levels = 2\n"
    "\n"
    "[tier 0]\n"
    "name = edge\n"
    "hop_latency = 2e-6\n"
    "bandwidth = 1e9\n"
    "congestion = 0.3\n"
    "\n"
    "[tier 1]\n"
    "name = core\n"
    "hop_latency = 4e-6\n"
    "bandwidth = 5e8\n"
    "congestion = 0.4\n";

/// Error code of a failing parse; "" when the text parses.
std::string platform_error_code(const std::string& text) {
    PlatformError error;
    return parse_platform(text, &error) ? "" : error.code;
}

TEST(PlatformFile, ValidFatTreeParses) {
    PlatformError error;
    const auto machine = parse_platform(kValidFatTree, &error);
    ASSERT_TRUE(machine) << error.code << ": " << error.message;
    EXPECT_EQ(machine->name, "t");
    EXPECT_EQ(machine->n_cores, 8);  // 2^2 nodes x 2 cores
    EXPECT_EQ(machine->topology.kind, sim::TopologyKind::FatTree);
    ASSERT_EQ(machine->topology.tiers.size(), 2u);
    EXPECT_EQ(machine->topology.tiers[0].name, "edge");
    EXPECT_DOUBLE_EQ(machine->topology.tiers[1].hop_latency, 4e-6);
    EXPECT_TRUE(machine->validate().empty());
}

TEST(PlatformFile, MissingHeaderIsStableError) {
    EXPECT_EQ(platform_error_code("name = t\n"), "platform.header");
    EXPECT_EQ(platform_error_code("servet-platform 2\n"), "platform.header");
    EXPECT_EQ(platform_error_code(""), "platform.header");
}

TEST(PlatformFile, SyntaxErrorsAreStable) {
    EXPECT_EQ(platform_error_code("servet-platform 1\n[socket 9]\n"), "platform.syntax");
    EXPECT_EQ(platform_error_code("servet-platform 1\nwat\n"), "platform.syntax");
    EXPECT_EQ(platform_error_code("servet-platform 1\nflavor = mild\n"),
              "platform.syntax");
    // A platform with no [topology] section describes nothing.
    EXPECT_EQ(platform_error_code("servet-platform 1\nname = t\n"), "platform.syntax");
}

TEST(PlatformFile, BadFieldValuesAreStable) {
    EXPECT_EQ(platform_error_code("servet-platform 1\ncores_per_node = zero\n"),
              "platform.field");
    EXPECT_EQ(platform_error_code("servet-platform 1\ncores_per_node = -4\n"),
              "platform.field");
    EXPECT_EQ(platform_error_code("servet-platform 1\n[topology]\narity = huge\n"),
              "platform.field");
}

TEST(PlatformFile, UnknownKindIsStableError) {
    EXPECT_EQ(platform_error_code("servet-platform 1\n[topology]\nkind = hypercube\n"),
              "platform.kind");
    EXPECT_EQ(platform_error_code("servet-platform 1\n[topology]\nkind = none\n"),
              "platform.kind");
}

TEST(PlatformFile, NonPowerOfTwoFatTreeArity) {
    std::string text = kValidFatTree;
    const auto at = text.find("arity = 2");
    text.replace(at, 9, "arity = 3");
    EXPECT_EQ(platform_error_code(text), "platform.fattree.arity");
}

TEST(PlatformFile, MalformedTierCounts) {
    // Fewer tiers than the fat-tree's levels need.
    std::string missing = kValidFatTree;
    missing.resize(missing.find("[tier 1]"));
    EXPECT_EQ(platform_error_code(missing), "platform.tiers.count");

    // Non-contiguous tier indices.
    std::string gap = kValidFatTree;
    const auto at = gap.find("[tier 1]");
    gap.replace(at, 8, "[tier 2]");
    EXPECT_EQ(platform_error_code(gap), "platform.tiers.count");

    // No tier sections at all.
    std::string none = kValidFatTree;
    none.resize(none.find("[tier 0]"));
    EXPECT_EQ(platform_error_code(none), "platform.tiers.count");
}

TEST(PlatformFile, CustomLinkCycleIsStableError) {
    // Nodes 0,1; switches 2,3; the 0-3 link closes the cycle 0-2-3-0.
    const std::string text =
        "servet-platform 1\n"
        "[topology]\n"
        "kind = custom\n"
        "nodes = 2\n"
        "switches = 2\n"
        "links = 0-2:0;1-3:0;2-3:1;0-3:0\n"
        "[tier 0]\n"
        "name = leaf\n"
        "[tier 1]\n"
        "name = trunk\n";
    EXPECT_EQ(platform_error_code(text), "platform.links.cycle");
}

TEST(PlatformFile, LoadReportsMissingFile) {
    PlatformError error;
    EXPECT_FALSE(load_platform("/nonexistent/servet.platform", &error));
    EXPECT_EQ(error.code, "platform.io");
}

}  // namespace
}  // namespace servet
