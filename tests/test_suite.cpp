#include "core/suite.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <stdexcept>

#include "base/hash.hpp"
#include "exec/memo_cache.hpp"
#include "msg/sim_network.hpp"
#include "platform/sim_platform.hpp"
#include "sim/zoo.hpp"

namespace servet::core {
namespace {

sim::MachineSpec small_machine() {
    sim::zoo::SyntheticOptions options;
    options.cores = 4;
    options.l1_size = 16 * KiB;
    options.l2_size = 256 * KiB;
    options.l2_sharing = 2;
    options.jitter = 0.01;
    return sim::zoo::synthetic(options);
}

SuiteOptions fast_options() {
    SuiteOptions options;
    options.mcalibrator.max_size = 2 * MiB;
    options.mcalibrator.repeats = 3;
    return options;
}

TEST(PhaseTimer, AccumulatesRepeatedRecordings) {
    std::map<std::string, Seconds> sink;
    PhaseTimer timer(sink);
    timer.record("comm_costs", 1.0);
    timer.record("comm_costs", 2.0);
    timer.record("cache_size", 0.5);
    // A phase that runs in several pieces reports its total — record()
    // must add, not overwrite.
    EXPECT_DOUBLE_EQ(sink["comm_costs"], 3.0);
    EXPECT_DOUBLE_EQ(sink["cache_size"], 0.5);
}

TEST(PhaseTimer, TimeReturnsBodyResultAndRecords) {
    std::map<std::string, Seconds> sink;
    PhaseTimer timer(sink);
    const int value = timer.time("phase", [] { return 7; });
    EXPECT_EQ(value, 7);
    ASSERT_EQ(sink.count("phase"), 1u);
    EXPECT_GE(sink["phase"], 0.0);
}

TEST(Suite, RunsAllPhasesOnMulticore) {
    SimPlatform platform(small_machine());
    msg::SimNetwork network(platform.spec());
    const SuiteResult result = run_suite(platform, &network, fast_options());

    ASSERT_EQ(result.cache_levels.size(), 2u);
    EXPECT_EQ(result.cache_levels[0].size, 16 * KiB);
    EXPECT_EQ(result.cache_levels[1].size, 256 * KiB);

    ASSERT_TRUE(result.has_shared_caches);
    ASSERT_EQ(result.shared_caches.size(), 2u);
    ASSERT_EQ(result.shared_caches[1].groups.size(), 2u);
    EXPECT_EQ(result.shared_caches[1].groups[0], (std::vector<CoreId>{0, 1}));

    ASSERT_TRUE(result.has_mem_overhead);
    EXPECT_GT(result.mem_overhead.reference_bandwidth, 0.0);

    ASSERT_TRUE(result.has_comm);
    EXPECT_EQ(result.comm.probe_message, 16 * KiB);  // the detected L1 size
    EXPECT_EQ(result.comm.layers.size(), 2u);

    // Table I bookkeeping: all four phases timed.
    EXPECT_EQ(result.phase_seconds.size(), 4u);
    for (const auto& [phase, seconds] : result.phase_seconds) EXPECT_GE(seconds, 0.0);
}

TEST(Suite, UnicoreSkipsPairwisePhases) {
    SimPlatform platform(sim::zoo::athlon3200());
    SuiteOptions options = fast_options();
    const SuiteResult result = run_suite(platform, nullptr, options);
    EXPECT_FALSE(result.has_shared_caches);
    EXPECT_FALSE(result.has_mem_overhead);
    EXPECT_FALSE(result.has_comm);
    EXPECT_EQ(result.cache_levels.size(), 2u);
}

TEST(Suite, NullNetworkSkipsComm) {
    SimPlatform platform(small_machine());
    const SuiteResult result = run_suite(platform, nullptr, fast_options());
    EXPECT_FALSE(result.has_comm);
    EXPECT_TRUE(result.has_mem_overhead);
}

TEST(Suite, PhaseTogglesRespected) {
    SimPlatform platform(small_machine());
    msg::SimNetwork network(platform.spec());
    SuiteOptions options = fast_options();
    options.run_shared_cache = false;
    options.run_mem_overhead = false;
    const SuiteResult result = run_suite(platform, &network, options);
    EXPECT_FALSE(result.has_shared_caches);
    EXPECT_FALSE(result.has_mem_overhead);
    EXPECT_TRUE(result.has_comm);
}

TEST(Suite, ParallelJobsMatchSerialOnSmallMachine) {
    // Cheap determinism check that rides in the fast tier (and under
    // TSan in CI); the heavyweight zoo machines live in
    // test_parallel_suite.cpp.
    SuiteOptions serial_options = fast_options();
    SuiteOptions parallel_options = fast_options();
    parallel_options.jobs = 3;

    SimPlatform serial_platform(small_machine());
    msg::SimNetwork serial_network(serial_platform.spec());
    const SuiteResult serial = run_suite(serial_platform, &serial_network, serial_options);

    SimPlatform parallel_platform(small_machine());
    msg::SimNetwork parallel_network(parallel_platform.spec());
    const SuiteResult parallel =
        run_suite(parallel_platform, &parallel_network, parallel_options);

    EXPECT_TRUE(serial.measurements_equal(parallel));
}

TEST(Suite, ToProfileCarriesEverything) {
    SimPlatform platform(small_machine());
    msg::SimNetwork network(platform.spec());
    const SuiteResult result = run_suite(platform, &network, fast_options());
    const Profile profile =
        result.to_profile(platform.name(), platform.core_count(), platform.page_size());

    EXPECT_EQ(profile.machine, platform.name());
    EXPECT_EQ(profile.cores, 4);
    ASSERT_EQ(profile.caches.size(), 2u);
    EXPECT_EQ(profile.caches[1].size, 256 * KiB);
    EXPECT_EQ(profile.caches[1].groups.size(), 2u);
    EXPECT_GT(profile.memory.reference_bandwidth, 0.0);
    EXPECT_EQ(profile.comm.size(), result.comm.layers.size());
    EXPECT_EQ(profile.phase_seconds.size(), 4u);

    // And the profile round-trips through the file format.
    const auto reparsed = Profile::parse(profile.serialize());
    ASSERT_TRUE(reparsed.has_value());
    EXPECT_EQ(*reparsed, profile);
}

/// Forwards everything to a SimPlatform except the copy-bandwidth probes,
/// which always throw — only the mem_overhead phase uses those, so a
/// suite run through this wrapper fails exactly one phase.
class BrokenCopyPlatform final : public Platform {
  public:
    explicit BrokenCopyPlatform(Platform& inner) : inner_(&inner) {}

    [[nodiscard]] std::string name() const override {
        return "brokencopy(" + inner_->name() + ")";
    }
    [[nodiscard]] int core_count() const override { return inner_->core_count(); }
    [[nodiscard]] Bytes page_size() const override { return inner_->page_size(); }
    [[nodiscard]] std::uint64_t fingerprint() const override {
        const std::uint64_t inner = inner_->fingerprint();
        return inner == 0 ? 0 : inner ^ mix64(0xb20c3u);
    }
    [[nodiscard]] bool forkable() const override { return inner_->forkable(); }
    [[nodiscard]] std::unique_ptr<Platform> fork(std::uint64_t noise_salt,
                                                 std::uint64_t placement_salt) const override {
        std::unique_ptr<Platform> inner = inner_->fork(noise_salt, placement_salt);
        if (inner == nullptr) return nullptr;
        return std::unique_ptr<Platform>(new BrokenCopyPlatform(std::move(inner)));
    }

    [[nodiscard]] Cycles traverse_cycles(CoreId core, Bytes array_bytes, Bytes stride,
                                         int passes, bool fresh_placement) override {
        return inner_->traverse_cycles(core, array_bytes, stride, passes, fresh_placement);
    }
    [[nodiscard]] std::vector<Cycles> traverse_cycles_concurrent(
        const std::vector<CoreId>& cores, Bytes array_bytes, Bytes stride, int passes,
        bool fresh_placement) override {
        return inner_->traverse_cycles_concurrent(cores, array_bytes, stride, passes,
                                                  fresh_placement);
    }
    [[nodiscard]] BytesPerSecond copy_bandwidth(CoreId, Bytes) override {
        throw std::runtime_error("memory probe exploded");
    }
    [[nodiscard]] std::vector<BytesPerSecond> copy_bandwidth_concurrent(
        const std::vector<CoreId>&, Bytes) override {
        throw std::runtime_error("memory probe exploded");
    }

  private:
    explicit BrokenCopyPlatform(std::unique_ptr<Platform> owned)
        : inner_(owned.get()), owned_(std::move(owned)) {}

    Platform* inner_;
    std::unique_ptr<Platform> owned_;
};

TEST(PhaseIsolation, FailedPhaseIsRecordedWhileOthersComplete) {
    SimPlatform inner(small_machine());
    BrokenCopyPlatform platform(inner);
    msg::SimNetwork network(inner.spec());
    const SuiteResult result = run_suite(platform, &network, fast_options());

    ASSERT_TRUE(result.partial());
    ASSERT_EQ(result.errors.size(), 1u);
    EXPECT_EQ(result.errors[0].phase, "mem_overhead");
    EXPECT_NE(result.errors[0].message.find("memory probe exploded"), std::string::npos);

    // The failed phase keeps its defaults...
    EXPECT_FALSE(result.has_mem_overhead);
    // ...and every other phase still ran to completion.
    ASSERT_EQ(result.cache_levels.size(), 2u);
    EXPECT_EQ(result.cache_levels[0].size, 16 * KiB);
    EXPECT_TRUE(result.has_shared_caches);
    EXPECT_TRUE(result.has_comm);
}

TEST(PhaseIsolation, PartialProfileRoundTripsErrorsSection) {
    SimPlatform inner(small_machine());
    BrokenCopyPlatform platform(inner);
    msg::SimNetwork network(inner.spec());
    const SuiteResult result = run_suite(platform, &network, fast_options());
    ASSERT_TRUE(result.partial());

    const Profile profile =
        result.to_profile(platform.name(), platform.core_count(), platform.page_size());
    ASSERT_EQ(profile.errors.count("mem_overhead"), 1u);

    const std::string text = profile.serialize();
    EXPECT_NE(text.find("[errors]"), std::string::npos);
    const auto reparsed = Profile::parse(text);
    ASSERT_TRUE(reparsed.has_value());
    EXPECT_EQ(*reparsed, profile);
}

TEST(PhaseIsolation, MemoIsSavedDespitePhaseFailure) {
    // The successful phases' measurements must not be lost: a rerun after
    // fixing the failure should replay them from the memo file.
    SimPlatform inner(small_machine());
    BrokenCopyPlatform platform(inner);
    msg::SimNetwork network(inner.spec());
    SuiteOptions options = fast_options();
    const std::string path = testing::TempDir() + "memo_partial.txt";
    options.memo_path = path;
    const SuiteResult result = run_suite(platform, &network, options);
    ASSERT_TRUE(result.partial());

    exec::MemoCache memo;
    EXPECT_EQ(memo.load_file(path), exec::MemoLoad::Loaded);
    EXPECT_GT(memo.size(), 0u);
    std::remove(path.c_str());
}

TEST(Suite, ProfileQueriesWorkOnSuiteOutput) {
    SimPlatform platform(small_machine());
    msg::SimNetwork network(platform.spec());
    const SuiteResult result = run_suite(platform, &network, fast_options());
    const Profile profile = result.to_profile(platform.name(), 4, platform.page_size());

    EXPECT_TRUE(profile.shares_cache(1, {0, 1}));
    EXPECT_FALSE(profile.shares_cache(1, {1, 2}));
    EXPECT_EQ(profile.comm_layer_of({0, 1}), 0);  // shared-L2 layer is fastest
    EXPECT_TRUE(profile.comm_latency({0, 2}, 8 * KiB).has_value());
}

}  // namespace
}  // namespace servet::core
