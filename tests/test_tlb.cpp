#include <gtest/gtest.h>

#include "core/tlb_detect.hpp"
#include "platform/sim_platform.hpp"
#include "sim/engine.hpp"
#include "sim/zoo.hpp"

namespace servet {
namespace {

sim::MachineSpec with_tlb(sim::MachineSpec spec, int entries, Cycles miss_cycles) {
    spec.tlb = {.enabled = true, .entries = entries, .miss_cycles = miss_cycles};
    spec.measurement_jitter = 0.0;
    return spec;
}

TEST(EngineTlb, DisabledByDefaultInZoo) {
    for (const auto& spec : sim::zoo::paper_machines()) EXPECT_FALSE(spec.tlb.enabled);
}

TEST(EngineTlb, WithinReachNoPenalty) {
    sim::MachineSim machine(with_tlb(sim::zoo::dempsey(), 64, 30));
    // 16 pages of 4KB at 1KB stride: resident in L1-ish and in TLB.
    const Cycles c = machine.traverse_one(0, 16 * KiB, 1 * KiB, 3);
    EXPECT_LT(c, 4.0);
}

TEST(EngineTlb, BeyondReachPaysWalkPerNewPage) {
    // 1KB stride = 4 accesses per 4KB page; past reach, one of every four
    // accesses walks: +miss_cycles/4 per access on the L2 plateau.
    sim::MachineSpec spec = with_tlb(sim::zoo::dempsey(), 64, 30);
    sim::MachineSim with(spec);
    spec.tlb.enabled = false;
    sim::MachineSim without(spec);
    const Bytes array = 1 * MiB;  // 256 pages >> 64 entries, still in 2MB L2
    const Cycles penalized = with.traverse_one(0, array, 1 * KiB, 3);
    const Cycles clean = without.traverse_one(0, array, 1 * KiB, 3);
    EXPECT_NEAR(penalized - clean, 30.0 / 4.0, 1.0);
}

TEST(EngineTlb, PageStrideMissesEveryAccess) {
    sim::MachineSpec spec = with_tlb(sim::zoo::dempsey(), 64, 30);
    sim::MachineSim with(spec);
    spec.tlb.enabled = false;
    sim::MachineSim without(spec);
    // One access per page, 256 pages: every access walks once past reach.
    const Bytes stride = 4 * KiB + 64;
    const Bytes array = 256 * stride;
    const Cycles penalized = with.traverse_one(0, array, stride, 3);
    const Cycles clean = without.traverse_one(0, array, stride, 3);
    EXPECT_NEAR(penalized - clean, 30.0, 3.0);
}

struct TlbCase {
    int entries;
    Cycles miss_cycles;
    bool big_l1;  ///< probe on Athlon (64KB L1) for large TLBs — the probe
                  ///< range is bounded by L1 line capacity (see header)
};

class TlbDetection : public ::testing::TestWithParam<TlbCase> {};

TEST_P(TlbDetection, RecoversEntriesAndPenalty) {
    const auto& param = GetParam();
    const sim::MachineSpec base =
        param.big_l1 ? sim::zoo::athlon3200() : sim::zoo::dempsey();
    SimPlatform platform(with_tlb(base, param.entries, param.miss_cycles));
    core::TlbDetectOptions options;
    options.l1_size = base.levels[0].geometry.size;
    const auto estimate = core::detect_tlb(platform, options);
    ASSERT_TRUE(estimate.has_value());
    EXPECT_EQ(estimate->entries, param.entries);
    EXPECT_NEAR(estimate->miss_cycles, param.miss_cycles, 0.25 * param.miss_cycles);
    EXPECT_EQ(estimate->reach_bytes,
              static_cast<Bytes>(param.entries) * platform.page_size());
}

INSTANTIATE_TEST_SUITE_P(Sweep, TlbDetection,
                         ::testing::Values(TlbCase{32, 30, false}, TlbCase{64, 30, false},
                                           TlbCase{128, 25, true}, TlbCase{256, 40, true}));

TEST(TlbDetection, BeyondProbeRangeIsUndetectable) {
    // A 512-entry TLB on a 16KB L1 (128-page probe cap): honestly nullopt
    // rather than a bogus estimate contaminated by the L1 transition.
    SimPlatform platform(with_tlb(sim::zoo::dempsey(), 512, 30));
    EXPECT_FALSE(core::detect_tlb(platform).has_value());
}

TEST(TlbDetection, NoTlbMeansNoEstimate) {
    sim::MachineSpec spec = sim::zoo::dempsey();
    spec.measurement_jitter = 0.0;
    SimPlatform platform(spec);
    EXPECT_FALSE(core::detect_tlb(platform).has_value());
}

TEST(TlbDetection, SurvivesJitter) {
    sim::MachineSpec spec = with_tlb(sim::zoo::dempsey(), 64, 30);
    spec.measurement_jitter = 0.02;
    SimPlatform platform(spec);
    const auto estimate = core::detect_tlb(platform);
    ASSERT_TRUE(estimate.has_value());
    EXPECT_EQ(estimate->entries, 64);
}

TEST(TlbSpec, ValidationChecksEnabledFields) {
    sim::MachineSpec spec = sim::zoo::dempsey();
    spec.tlb = {.enabled = true, .entries = 0, .miss_cycles = 30};
    EXPECT_FALSE(spec.validate().empty());
    spec.tlb = {.enabled = false, .entries = 0, .miss_cycles = 0};
    EXPECT_TRUE(spec.validate().empty());
}

}  // namespace
}  // namespace servet
