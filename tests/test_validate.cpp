// Profile validation: the checked-in goldens must pass clean, and
// hand-corrupted profiles must trigger the specific violation codes a
// corruption of that kind implies — `servet validate --repair` keys its
// targeted re-measurement off those codes' implicated phases.
#include "core/validate.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/profile.hpp"

namespace servet::core {
namespace {

std::vector<std::string> codes_of(const ValidationReport& report) {
    std::vector<std::string> codes;
    for (const Violation& v : report.violations) codes.push_back(v.code);
    return codes;
}

bool has_code(const ValidationReport& report, const std::string& code) {
    const auto codes = codes_of(report);
    return std::find(codes.begin(), codes.end(), code) != codes.end();
}

testing::AssertionResult only_code(const ValidationReport& report, const std::string& code) {
    if (report.violations.empty())
        return testing::AssertionFailure() << "no violations; expected " << code;
    for (const Violation& v : report.violations)
        if (v.code != code)
            return testing::AssertionFailure()
                   << "unexpected violation " << v.code << ": " << v.message;
    return testing::AssertionSuccess();
}

/// A small physically-consistent profile every corruption test starts
/// from; must validate clean.
Profile sane_profile() {
    Profile profile;
    profile.machine = "sim:test";
    profile.cores = 4;
    profile.page_size = 4096;
    profile.caches = {
        {16 * 1024, "peak", {}},
        {256 * 1024, "probabilistic", {{0, 1}, {2, 3}}},
    };
    profile.memory.reference_bandwidth = 3.0e9;
    profile.memory.tiers = {
        {1.5e9, {{0, 1, 2, 3}}, {3.0e9, 2.0e9, 1.7e9, 1.5e9}},
    };
    profile.comm = {
        {1.0e-6, {{0, 1}, {2, 3}}, {{1024, 1.0e-6}, {4096, 2.5e-6}}, {1.0, 1.1}},
        {5.0e-6, {{0, 2}, {0, 3}, {1, 2}, {1, 3}}, {{1024, 5.0e-6}, {4096, 1.3e-5}}, {1.0}},
    };
    return profile;
}

TEST(Validate, SaneProfilePassesClean) {
    const ValidationReport report = validate_profile(sane_profile());
    EXPECT_TRUE(report.violations.empty())
        << (report.violations.empty() ? "" : report.violations.front().code + ": " +
                                                 report.violations.front().message);
    EXPECT_FALSE(report.has_errors());
    EXPECT_TRUE(report.implicated_phases().empty());
}

TEST(Validate, CheckedInGoldensPassClean) {
    for (const char* name : {"athlon3200", "dempsey", "nehalem2s"}) {
        const std::string path = std::string(SERVET_GOLDEN_DIR) + "/" + name + ".profile";
        std::string diagnostic;
        const auto profile = Profile::load(path, &diagnostic);
        ASSERT_TRUE(profile.has_value()) << diagnostic;
        const ValidationReport report = validate_profile(*profile);
        for (const Violation& v : report.violations)
            ADD_FAILURE() << name << ": " << v.code << " " << v.message;
    }
}

TEST(Validate, SwappedCacheLevelsTriggerSizeOrder) {
    Profile profile = sane_profile();
    std::swap(profile.caches[0].size, profile.caches[1].size);
    const ValidationReport report = validate_profile(profile);
    EXPECT_TRUE(only_code(report, "cache.size-order"));
    EXPECT_TRUE(report.has_errors());
    // cache_size corruption poisons everything sized by it.
    EXPECT_EQ(report.implicated_phases(),
              (std::vector<std::string>{"cache_size", "shared_caches", "mem_overhead",
                                        "comm_costs"}));
}

TEST(Validate, ZeroCacheSizeIsAnError) {
    Profile profile = sane_profile();
    profile.caches[0].size = 0;
    const ValidationReport report = validate_profile(profile);
    EXPECT_TRUE(has_code(report, "cache.size-positive"));
}

TEST(Validate, OverlappingSharingGroupsTriggerGroupsOverlap) {
    Profile profile = sane_profile();
    profile.caches[1].groups = {{0, 1}, {1, 2, 3}};  // core 1 in two instances
    const ValidationReport report = validate_profile(profile);
    EXPECT_TRUE(only_code(report, "cache.groups-overlap"));
    // Groups are measured by the shared-cache probe, not the size scan:
    // only that phase re-measures.
    EXPECT_EQ(report.implicated_phases(), std::vector<std::string>{"shared_caches"});
}

TEST(Validate, OutOfRangeGroupCoreTriggerGroupsRange) {
    Profile profile = sane_profile();
    profile.caches[1].groups = {{0, 7}};
    EXPECT_TRUE(has_code(validate_profile(profile), "cache.groups-range"));
}

TEST(Validate, NegativeTierBandwidthTriggerTierBandwidth) {
    Profile profile = sane_profile();
    profile.memory.tiers[0].bandwidth = -1.5e9;
    const ValidationReport report = validate_profile(profile);
    EXPECT_TRUE(only_code(report, "memory.tier-bandwidth"));
    EXPECT_EQ(report.implicated_phases(), std::vector<std::string>{"mem_overhead"});
}

TEST(Validate, ContendedTierFasterThanReferenceIsAnError) {
    Profile profile = sane_profile();
    profile.memory.tiers[0].bandwidth = profile.memory.reference_bandwidth * 1.5;
    EXPECT_TRUE(has_code(validate_profile(profile), "memory.tier-exceeds-reference"));
}

TEST(Validate, RisingScalabilityCurveIsOnlyAWarning) {
    Profile profile = sane_profile();
    profile.memory.tiers[0].scalability = {1.5e9, 2.9e9};  // speeds up under contention?
    const ValidationReport report = validate_profile(profile);
    EXPECT_TRUE(only_code(report, "memory.scalability-order"));
    EXPECT_FALSE(report.has_errors());
    EXPECT_TRUE(report.implicated_phases().empty());  // warnings implicate nothing
}

TEST(Validate, DecreasingLayerLatencyTriggerLatencyOrder) {
    Profile profile = sane_profile();
    std::swap(profile.comm[0].latency, profile.comm[1].latency);
    const ValidationReport report = validate_profile(profile);
    EXPECT_TRUE(has_code(report, "comm.latency-order"));
    EXPECT_EQ(report.implicated_phases(), std::vector<std::string>{"comm_costs"});
}

TEST(Validate, NegativeP2pLatencyIsAnError) {
    Profile profile = sane_profile();
    profile.comm[1].p2p[0].second = -1.0e-6;
    EXPECT_TRUE(has_code(validate_profile(profile), "comm.p2p-latency-positive"));
}

TEST(Validate, RemoteLayerFasterThanNearTriggersBandwidthOrder) {
    Profile profile = sane_profile();
    profile.comm[1].p2p = {{1024, 1.0e-7}, {4096, 4.0e-7}};  // 10x the near layer's speed
    const ValidationReport report = validate_profile(profile);
    EXPECT_TRUE(has_code(report, "comm.bandwidth-order"));
}

TEST(Validate, SlowdownBelowOneIsAWarning) {
    Profile profile = sane_profile();
    profile.comm[0].slowdown = {1.0, 0.8};
    const ValidationReport report = validate_profile(profile);
    EXPECT_TRUE(only_code(report, "comm.slowdown-band"));
    EXPECT_FALSE(report.has_errors());
}

TEST(Validate, MeasurementJitterWithinSlackIsTolerated) {
    Profile profile = sane_profile();
    // 1% over the reference / 1% below the previous layer: inside the 2%
    // slack band, so no violation.
    profile.memory.tiers[0].bandwidth = profile.memory.reference_bandwidth * 1.01;
    profile.comm[1].latency = profile.comm[0].latency * 0.99;
    profile.comm[0].slowdown = {0.99, 1.0};
    EXPECT_TRUE(validate_profile(profile).violations.empty());
}

TEST(Validate, BadHeaderFieldsImplicateNoPhase) {
    Profile profile = sane_profile();
    profile.cores = 0;
    profile.page_size = 0;
    // Out-of-range groups etc. would now also fire; use a minimal profile.
    Profile minimal;
    minimal.machine = "x";
    minimal.cores = 0;
    minimal.page_size = 0;
    const ValidationReport report = validate_profile(minimal);
    EXPECT_TRUE(has_code(report, "profile.cores"));
    EXPECT_TRUE(has_code(report, "profile.page-size"));
    EXPECT_TRUE(report.has_errors());
    EXPECT_TRUE(report.implicated_phases().empty());  // nothing to re-measure
}

TEST(Validate, PartialProfileErrorsBecomeWarnings) {
    Profile profile = sane_profile();
    profile.comm.clear();
    profile.errors["comm_costs"] = "injected fault: network down";
    const ValidationReport report = validate_profile(profile);
    EXPECT_TRUE(only_code(report, "profile.partial"));
    EXPECT_FALSE(report.has_errors());
    ASSERT_EQ(report.violations.size(), 1u);
    EXPECT_EQ(report.violations[0].phase, "comm_costs");
}

TEST(Validate, SeverityToStringNamesBoth) {
    EXPECT_STREQ(to_string(Severity::Error), "error");
    EXPECT_STREQ(to_string(Severity::Warning), "warning");
}

}  // namespace
}  // namespace servet::core
