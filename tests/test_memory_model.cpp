#include "sim/memory_model.hpp"

#include <gtest/gtest.h>

#include "sim/zoo.hpp"

namespace servet::sim {
namespace {

std::vector<CoreId> cores(std::initializer_list<CoreId> list) { return list; }

TEST(MemoryModel, SoloGetsFullBandwidth) {
    const MachineSpec spec = zoo::finis_terrae();
    MemoryModel model(spec);
    EXPECT_DOUBLE_EQ(model.stream_bandwidth(0, cores({0})),
                     spec.memory.single_core_bandwidth);
}

TEST(MemoryModel, FinisTerraeTiersMatchPaperFig9a) {
    // Fig. 9a: pairs on the same bus see the lowest bandwidth, pairs in
    // the same cell ~25% below the reference, cross-cell pairs none.
    const MachineSpec spec = zoo::finis_terrae();
    MemoryModel model(spec);
    const double ref = spec.memory.single_core_bandwidth;

    const double bus_pair = model.stream_bandwidth(0, cores({0, 1}));
    const double cell_pair = model.stream_bandwidth(0, cores({0, 4}));
    const double cross_pair = model.stream_bandwidth(0, cores({0, 8}));

    EXPECT_NEAR(bus_pair / ref, 0.55, 1e-9);
    EXPECT_NEAR(cell_pair / ref, 0.75, 1e-9);
    EXPECT_DOUBLE_EQ(cross_pair, ref);
    EXPECT_LT(bus_pair, cell_pair);
    EXPECT_LT(cell_pair, cross_pair);
}

TEST(MemoryModel, DunningtonUniformPairOverhead) {
    // Fig. 9a: on Dunnington the overhead "is the same independently of
    // the pair of cores".
    const MachineSpec spec = zoo::dunnington();
    MemoryModel model(spec);
    const double first = model.stream_bandwidth(0, cores({0, 1}));
    for (CoreId other : {2, 5, 11, 12, 13, 23}) {
        EXPECT_DOUBLE_EQ(model.stream_bandwidth(0, cores({0, other})), first) << other;
        EXPECT_LT(first, spec.memory.single_core_bandwidth);
    }
}

TEST(MemoryModel, BandwidthSharesScaleWithActiveCount) {
    const MachineSpec spec = zoo::finis_terrae();
    MemoryModel model(spec);
    // Bus aggregate is 1.1x solo: k sharers each get 1.1/k (once < solo).
    const double ref = spec.memory.single_core_bandwidth;
    EXPECT_NEAR(model.stream_bandwidth(0, cores({0, 1, 2})) / ref, 1.1 / 3, 1e-9);
    EXPECT_NEAR(model.stream_bandwidth(0, cores({0, 1, 2, 3})) / ref, 1.1 / 4, 1e-9);
}

TEST(MemoryModel, TightestDomainWins) {
    const MachineSpec spec = zoo::finis_terrae();
    MemoryModel model(spec);
    const double ref = spec.memory.single_core_bandwidth;
    // 0,1 share a bus; 4 is in the same cell only. With {0,1,4} active the
    // cell (1.5/3 = 0.5) is tighter than core 0's bus (1.1/2 = 0.55), and
    // core 4's own bus has a single streamer, so all three are cell-bound.
    EXPECT_NEAR(model.stream_bandwidth(0, cores({0, 1, 4})) / ref, 0.5, 1e-9);
    EXPECT_NEAR(model.stream_bandwidth(4, cores({0, 1, 4})) / ref, 0.5, 1e-9);
    // With only the bus pair active, the bus is the binding constraint.
    EXPECT_NEAR(model.stream_bandwidth(0, cores({0, 1})) / ref, 0.55, 1e-9);
}

TEST(MemoryModel, InactiveCoresDoNotCount) {
    const MachineSpec spec = zoo::finis_terrae();
    MemoryModel model(spec);
    EXPECT_DOUBLE_EQ(model.stream_bandwidth(0, cores({0, 8, 9, 10})),
                     spec.memory.single_core_bandwidth);
}

TEST(MemoryModel, LatencyMultiplierSoloIsOne) {
    const MachineSpec spec = zoo::finis_terrae();
    MemoryModel model(spec);
    EXPECT_DOUBLE_EQ(model.latency_multiplier(0, cores({0})), 1.0);
}

TEST(MemoryModel, LatencyMultiplierGrowsWithSharers) {
    const MachineSpec spec = zoo::finis_terrae();
    MemoryModel model(spec);
    const double pair = model.latency_multiplier(0, cores({0, 1}));
    const double quad = model.latency_multiplier(0, cores({0, 1, 2, 3}));
    EXPECT_NEAR(pair, 1.35, 1e-9);   // bus: 0.35 per extra
    EXPECT_NEAR(quad, 2.05, 1e-9);   // 1 + 3*0.35
}

TEST(MemoryModel, LatencyMultiplierCrossCellIsOne) {
    const MachineSpec spec = zoo::finis_terrae();
    MemoryModel model(spec);
    EXPECT_DOUBLE_EQ(model.latency_multiplier(0, cores({0, 8})), 1.0);
}

TEST(MemoryModelDeath, ObserverMustBeActive) {
    const MachineSpec spec = zoo::finis_terrae();
    MemoryModel model(spec);
    EXPECT_DEATH((void)model.stream_bandwidth(0, cores({1, 2})), "");
}

}  // namespace
}  // namespace servet::sim
