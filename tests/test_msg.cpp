#include <gtest/gtest.h>

#include <thread>

#include "msg/mailbox.hpp"
#include "msg/sim_network.hpp"
#include "msg/thread_network.hpp"
#include "sim/zoo.hpp"

namespace servet::msg {
namespace {

TEST(Mailbox, PostThenReceive) {
    Mailbox box;
    const std::vector<std::uint8_t> payload = {1, 2, 3};
    box.post(4, payload);
    std::vector<std::uint8_t> out;
    box.receive_from(4, out);
    EXPECT_EQ(out, payload);
    EXPECT_EQ(box.pending(), 0u);
}

TEST(Mailbox, SourceMatchingLeavesOthersQueued) {
    Mailbox box;
    box.post(1, std::vector<std::uint8_t>{11});
    box.post(2, std::vector<std::uint8_t>{22});
    std::vector<std::uint8_t> out;
    box.receive_from(2, out);
    EXPECT_EQ(out[0], 22);
    EXPECT_EQ(box.pending(), 1u);
    box.receive_from(1, out);
    EXPECT_EQ(out[0], 11);
}

TEST(Mailbox, FifoPerSource) {
    Mailbox box;
    box.post(5, std::vector<std::uint8_t>{1});
    box.post(5, std::vector<std::uint8_t>{2});
    std::vector<std::uint8_t> out;
    box.receive_from(5, out);
    EXPECT_EQ(out[0], 1);
    box.receive_from(5, out);
    EXPECT_EQ(out[0], 2);
}

TEST(Mailbox, BlockingReceiveWakesOnPost) {
    Mailbox box;
    std::vector<std::uint8_t> out;
    std::thread receiver([&] { box.receive_from(9, out); });
    box.post(9, std::vector<std::uint8_t>{42});
    receiver.join();
    EXPECT_EQ(out[0], 42);
}

TEST(ThreadNetwork, PingPongLatencyPositive) {
    ThreadNetwork network(2, /*pin=*/false);
    const Seconds latency = network.pingpong_latency({0, 1}, 4 * KiB, 50);
    EXPECT_GT(latency, 0.0);
    EXPECT_LT(latency, 0.1);
}

TEST(ThreadNetwork, LargerMessagesCostMore) {
    ThreadNetwork network(2, /*pin=*/false);
    const Seconds small = network.pingpong_latency({0, 1}, 1 * KiB, 100);
    const Seconds big = network.pingpong_latency({0, 1}, 4 * MiB, 10);
    EXPECT_GT(big, small);
}

TEST(ThreadNetwork, ConcurrentPairsAligned) {
    ThreadNetwork network(4, /*pin=*/false);
    const auto latencies = network.concurrent_latency({{0, 1}, {2, 3}}, 4 * KiB, 30);
    ASSERT_EQ(latencies.size(), 2u);
    EXPECT_GT(latencies[0], 0.0);
    EXPECT_GT(latencies[1], 0.0);
}

TEST(ThreadNetworkDeath, RejectsBadPairs) {
    ThreadNetwork network(2, false);
    EXPECT_DEATH((void)network.pingpong_latency({0, 0}, KiB, 1), "");
    EXPECT_DEATH((void)network.pingpong_latency({0, 5}, KiB, 1), "");
}

TEST(SimNetwork, MatchesInterconnectModel) {
    const sim::MachineSpec spec = [] {
        sim::MachineSpec s = sim::zoo::dunnington();
        s.measurement_jitter = 0.0;
        return s;
    }();
    SimNetwork network(spec);
    sim::InterconnectModel model(spec);
    EXPECT_DOUBLE_EQ(network.pingpong_latency({0, 12}, 32 * KiB, 3),
                     model.latency({0, 12}, 32 * KiB));
}

TEST(SimNetwork, ConcurrentCountsPerLayer) {
    sim::MachineSpec spec = sim::zoo::dunnington();
    spec.measurement_jitter = 0.0;
    SimNetwork network(spec);
    sim::InterconnectModel model(spec);
    // Two inter-processor pairs contend; a shared-L2 pair on its own layer
    // does not feel them.
    const auto latencies =
        network.concurrent_latency({{0, 3}, {6, 9}, {1, 13}}, 32 * KiB, 2);
    EXPECT_DOUBLE_EQ(latencies[0], model.latency_concurrent({0, 3}, 32 * KiB, 2));
    EXPECT_DOUBLE_EQ(latencies[2], model.latency_concurrent({1, 13}, 32 * KiB, 1));
}

TEST(SimNetwork, JitterAveragesOut) {
    SimNetwork network(sim::zoo::dunnington());  // 2% jitter
    const Seconds a = network.pingpong_latency({0, 1}, 32 * KiB, 200);
    const Seconds b = network.pingpong_latency({0, 1}, 32 * KiB, 200);
    EXPECT_NEAR(a / b, 1.0, 0.02);
}

}  // namespace
}  // namespace servet::msg
