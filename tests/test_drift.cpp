// The judgement layer of `servet watch`: the robust score, the rolling
// detector's calibration/absorption/escalation rules, and the
// profile-vs-profile diff behind `servet validate --against`.
#include "watch/drift.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

namespace servet::watch {
namespace {

TEST(Verdict, CodesAreStable) {
    EXPECT_STREQ(verdict_code(Verdict::None), "drift.none");
    EXPECT_STREQ(verdict_code(Verdict::Suspect), "drift.suspect");
    EXPECT_STREQ(verdict_code(Verdict::Confirmed), "drift.confirmed");
}

TEST(Verdict, WorseOrdersNoneSuspectConfirmed) {
    EXPECT_EQ(worse(Verdict::None, Verdict::Suspect), Verdict::Suspect);
    EXPECT_EQ(worse(Verdict::Confirmed, Verdict::Suspect), Verdict::Confirmed);
    EXPECT_EQ(worse(Verdict::None, Verdict::None), Verdict::None);
}

TEST(DriftScore, ZeroSpreadFallsBackToRelativeBand) {
    const DriftOptions options;  // rel_floor = 0.01
    // A deterministic baseline has MAD exactly 0: the scale must widen to
    // rel_floor * |center|, never divide by zero.
    const double score = drift_score(104.0, 100.0, 0.0, options);
    EXPECT_TRUE(std::isfinite(score));
    EXPECT_NEAR(score, 4.0, 1e-12);
}

TEST(DriftScore, ZeroCenterFallsBackToAbsoluteFloor) {
    const DriftOptions options;  // abs_floor = 1e-12
    const double score = drift_score(2e-12, 0.0, 0.0, options);
    EXPECT_TRUE(std::isfinite(score));
    EXPECT_NEAR(score, 2.0, 1e-9);
}

TEST(DriftScore, LargeSpreadDominatesFloors) {
    const DriftOptions options;
    EXPECT_NEAR(drift_score(110.0, 100.0, 5.0, options), 2.0, 1e-12);
}

std::map<std::string, double> one_metric(double value) {
    return {{"m", value}};
}

TEST(DriftDetector, CalibrationTicksAreNeverJudged) {
    DriftDetector detector;  // min_baseline = 3
    for (int tick = 0; tick < 3; ++tick) {
        // Wildly different values: with a baseline still calibrating they
        // must all come back None.
        const auto verdicts = detector.observe(one_metric(tick == 0 ? 1.0 : 1000.0 * tick));
        ASSERT_EQ(verdicts.size(), 1u);
        EXPECT_EQ(verdicts[0].verdict, Verdict::None) << "tick " << tick;
    }
}

TEST(DriftDetector, IdenticalBaselineStillToleratesRelativeBand) {
    DriftDetector detector;
    for (int tick = 0; tick < 4; ++tick)
        detector.observe(one_metric(100.0));  // MAD = 0
    // Within rel_floor of the median: in band despite the zero spread.
    const auto ok = detector.observe(one_metric(100.5));
    ASSERT_EQ(ok.size(), 1u);
    EXPECT_EQ(ok[0].verdict, Verdict::None);
}

TEST(DriftDetector, FarOutlierConfirmsOutright) {
    DriftDetector detector;
    for (int tick = 0; tick < 4; ++tick) detector.observe(one_metric(100.0));
    const auto verdicts = detector.observe(one_metric(400.0));  // score 300
    ASSERT_EQ(verdicts.size(), 1u);
    EXPECT_EQ(verdicts[0].verdict, Verdict::Confirmed);
    EXPECT_GT(verdicts[0].score, DriftOptions{}.confirm_score);
    EXPECT_EQ(detector.worst(), Verdict::Confirmed);
}

TEST(DriftDetector, RepeatedSuspectEscalatesToConfirmed) {
    DriftOptions options;
    options.confirm_after = 2;
    DriftDetector detector(options);
    for (int tick = 0; tick < 4; ++tick) detector.observe(one_metric(100.0));
    // Score 8: above suspect (4), below confirm (16).
    const auto first = detector.observe(one_metric(108.0));
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0].verdict, Verdict::Suspect);
    const auto second = detector.observe(one_metric(108.0));
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(second[0].verdict, Verdict::Confirmed);
}

TEST(DriftDetector, InBandObservationResetsEscalation) {
    DriftOptions options;
    options.confirm_after = 2;
    DriftDetector detector(options);
    for (int tick = 0; tick < 4; ++tick) detector.observe(one_metric(100.0));
    EXPECT_EQ(detector.observe(one_metric(108.0))[0].verdict, Verdict::Suspect);
    EXPECT_EQ(detector.observe(one_metric(100.0))[0].verdict, Verdict::None);
    // The counter restarted: another single excursion is Suspect again.
    EXPECT_EQ(detector.observe(one_metric(108.0))[0].verdict, Verdict::Suspect);
}

TEST(DriftDetector, DriftedValuesDoNotBecomeTheBaseline) {
    DriftDetector detector;
    for (int tick = 0; tick < 4; ++tick) detector.observe(one_metric(100.0));
    // A long run of drifted values must keep judging against the original
    // baseline — drift never becomes the new normal.
    for (int tick = 0; tick < 20; ++tick) {
        const auto verdicts = detector.observe(one_metric(400.0));
        ASSERT_EQ(verdicts.size(), 1u);
        EXPECT_EQ(verdicts[0].verdict, Verdict::Confirmed) << "tick " << tick;
        EXPECT_NEAR(verdicts[0].baseline, 100.0, 1e-12);
    }
}

TEST(DriftDetector, MissingMetricIsConfirmedWithNaN) {
    DriftDetector detector;
    for (int tick = 0; tick < 4; ++tick)
        detector.observe({{"kept", 1.0}, {"gone", 2.0}});
    EXPECT_EQ(detector.worst(), Verdict::None);
    const auto verdicts = detector.observe({{"kept", 1.0}});
    ASSERT_EQ(verdicts.size(), 2u);  // sorted: gone, kept
    EXPECT_EQ(verdicts[0].metric, "gone");
    EXPECT_EQ(verdicts[0].verdict, Verdict::Confirmed);
    EXPECT_TRUE(std::isnan(verdicts[0].value));
    EXPECT_EQ(verdicts[1].metric, "kept");
    EXPECT_EQ(verdicts[1].verdict, Verdict::None);
    // The disappearance alone must drive the detector-level verdict: a
    // watch whose only drift is a vanished metric exits nonzero on it.
    EXPECT_EQ(detector.worst(), Verdict::Confirmed);
}

TEST(DriftDetector, BrandNewMetricStartsCalibrating) {
    DriftDetector detector;
    for (int tick = 0; tick < 4; ++tick) detector.observe(one_metric(100.0));
    const auto verdicts = detector.observe({{"m", 100.0}, {"fresh", 1e9}});
    for (const auto& v : verdicts) EXPECT_EQ(v.verdict, Verdict::None) << v.metric;
}

core::Profile small_profile() {
    core::Profile profile;
    profile.machine = "sim:test";
    profile.cores = 4;
    profile.caches.push_back({32 * KiB, "peak", {}});
    profile.memory.reference_bandwidth = 10e9;
    core::ProfileCommLayer layer;
    layer.latency = 1e-6;
    profile.comm.push_back(layer);
    return profile;
}

TEST(ProfileMetrics, FlattensEverySection) {
    const auto metrics = profile_metrics(small_profile());
    ASSERT_EQ(metrics.count("cache.L1.size"), 1u);
    EXPECT_NEAR(metrics.at("cache.L1.size"), 32.0 * KiB, 0);
    EXPECT_NEAR(metrics.at("memory.reference_bandwidth"), 10e9, 0);
    EXPECT_NEAR(metrics.at("comm.layer0.latency"), 1e-6, 0);
}

TEST(DiffProfiles, IdenticalProfilesAreAllNone) {
    const core::Profile profile = small_profile();
    for (const auto& v : diff_profiles(profile, profile, {}))
        EXPECT_EQ(v.verdict, Verdict::None) << v.metric;
}

TEST(DiffProfiles, SmallAndLargeDeviationsGradeSuspectConfirmed) {
    const core::Profile base = small_profile();
    core::Profile drifted = base;
    // 8% bandwidth shift: past suspect (4% of the rel_floor band), short
    // of confirm (16%).
    drifted.memory.reference_bandwidth = 10.8e9;
    bool saw_suspect = false;
    for (const auto& v : diff_profiles(base, drifted, {}))
        if (v.metric == "memory.reference_bandwidth") {
            EXPECT_EQ(v.verdict, Verdict::Suspect);
            saw_suspect = true;
        }
    EXPECT_TRUE(saw_suspect);

    drifted.memory.reference_bandwidth = 40e9;  // 4x: confirmed outright
    for (const auto& v : diff_profiles(base, drifted, {})) {
        if (v.metric == "memory.reference_bandwidth") {
            EXPECT_EQ(v.verdict, Verdict::Confirmed);
        }
    }
}

TEST(DiffProfiles, AsymmetricMetricsAreConfirmedWithNaNSide) {
    const core::Profile base = small_profile();
    core::Profile shrunk = base;
    shrunk.comm.clear();  // comm.layer0.latency only in the baseline
    bool saw = false;
    for (const auto& v : diff_profiles(base, shrunk, {}))
        if (v.metric == "comm.layer0.latency") {
            EXPECT_EQ(v.verdict, Verdict::Confirmed);
            EXPECT_TRUE(std::isnan(v.value));
            EXPECT_FALSE(std::isnan(v.baseline));
            saw = true;
        }
    EXPECT_TRUE(saw);
}

}  // namespace
}  // namespace servet::watch
