#include "stats/binomial.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

namespace servet::stats {
namespace {

TEST(BinomialPmf, SumsToOne) {
    for (const auto& [n, p] : {std::pair{10LL, 0.5}, {50LL, 0.1}, {200LL, 0.02}}) {
        double sum = 0;
        for (std::int64_t k = 0; k <= n; ++k) sum += binomial_pmf(n, p, k);
        EXPECT_NEAR(sum, 1.0, 1e-12) << "n=" << n << " p=" << p;
    }
}

TEST(BinomialPmf, MatchesClosedFormSmall) {
    // B(4, 0.5): pmf = C(4,k)/16.
    EXPECT_NEAR(binomial_pmf(4, 0.5, 0), 1.0 / 16, 1e-14);
    EXPECT_NEAR(binomial_pmf(4, 0.5, 1), 4.0 / 16, 1e-14);
    EXPECT_NEAR(binomial_pmf(4, 0.5, 2), 6.0 / 16, 1e-14);
    EXPECT_NEAR(binomial_pmf(4, 0.5, 4), 1.0 / 16, 1e-14);
}

TEST(BinomialPmf, OutOfRangeIsZero) {
    EXPECT_EQ(binomial_pmf(10, 0.3, -1), 0.0);
    EXPECT_EQ(binomial_pmf(10, 0.3, 11), 0.0);
}

TEST(BinomialPmf, DegenerateP) {
    EXPECT_EQ(binomial_pmf(10, 0.0, 0), 1.0);
    EXPECT_EQ(binomial_pmf(10, 0.0, 1), 0.0);
    EXPECT_EQ(binomial_pmf(10, 1.0, 10), 1.0);
    EXPECT_EQ(binomial_pmf(10, 1.0, 9), 0.0);
}

TEST(BinomialTail, ComplementOfCdf) {
    const std::int64_t n = 30;
    const double p = 0.2;
    for (std::int64_t k = 0; k < n; ++k) {
        double cdf = 0;
        for (std::int64_t j = 0; j <= k; ++j) cdf += binomial_pmf(n, p, j);
        EXPECT_NEAR(binomial_tail_above(n, p, k), 1.0 - cdf, 1e-10) << "k=" << k;
    }
}

TEST(BinomialTail, EdgeCases) {
    EXPECT_EQ(binomial_tail_above(10, 0.5, -1), 1.0);
    EXPECT_EQ(binomial_tail_above(10, 0.5, 10), 0.0);
    EXPECT_EQ(binomial_tail_above(10, 0.5, 42), 0.0);
    EXPECT_EQ(binomial_tail_above(10, 0.0, 3), 0.0);
    EXPECT_EQ(binomial_tail_above(10, 1.0, 3), 1.0);
    EXPECT_EQ(binomial_tail_above(0, 0.5, 0), 0.0);
}

TEST(BinomialTail, MonotoneInK) {
    const std::int64_t n = 100;
    const double p = 0.1;
    double previous = 1.0;
    for (std::int64_t k = 0; k <= n; ++k) {
        const double tail = binomial_tail_above(n, p, k);
        EXPECT_LE(tail, previous + 1e-12);
        previous = tail;
    }
}

TEST(BinomialTail, MonotoneInP) {
    double previous = 0.0;
    for (double p = 0.05; p <= 0.95; p += 0.05) {
        const double tail = binomial_tail_above(64, p, 8);
        EXPECT_GE(tail, previous - 1e-12);
        previous = tail;
    }
}

TEST(BinomialTail, LargeNAccuracy) {
    // The cache estimator regime: thousands of pages, tiny p. Compare to a
    // direct Poisson bound: binomial tail should be close to Poisson(n*p)
    // tail for small p (sanity, not equality).
    const std::int64_t n = 3072;
    const double p = 1.0 / 192.0;  // mean 16
    const double tail = binomial_tail_above(n, p, 16);
    EXPECT_GT(tail, 0.35);
    EXPECT_LT(tail, 0.52);
}

TEST(BinomialTail, SymmetryAtHalf) {
    // For p = 1/2: P(X > k) == P(X < n-k) == 1 - P(X > n-k-1).
    const std::int64_t n = 21;
    for (std::int64_t k = 0; k < n; ++k) {
        const double a = binomial_tail_above(n, 0.5, k);
        const double b = 1.0 - binomial_tail_above(n, 0.5, n - k - 1);
        EXPECT_NEAR(a, b, 1e-10);
    }
}

TEST(LogBinomialCoefficient, MatchesSmallValues) {
    EXPECT_NEAR(log_binomial_coefficient(5, 2), std::log(10.0), 1e-12);
    EXPECT_NEAR(log_binomial_coefficient(10, 0), 0.0, 1e-12);
    EXPECT_NEAR(log_binomial_coefficient(10, 10), 0.0, 1e-12);
    EXPECT_NEAR(log_binomial_coefficient(52, 5), std::log(2598960.0), 1e-9);
}

class BinomialMeanParam
    : public ::testing::TestWithParam<std::tuple<std::int64_t, double>> {};

TEST_P(BinomialMeanParam, MeanViaExpectation) {
    const auto [n, p] = GetParam();
    double mean = 0;
    for (std::int64_t k = 0; k <= n; ++k)
        mean += static_cast<double>(k) * binomial_pmf(n, p, k);
    EXPECT_NEAR(mean, binomial_mean(n, p), 1e-9 * std::max(1.0, binomial_mean(n, p)));
}

INSTANTIATE_TEST_SUITE_P(Cases, BinomialMeanParam,
                         ::testing::Combine(::testing::Values(1, 8, 64, 300),
                                            ::testing::Values(0.01, 0.25, 0.5, 0.9)));

}  // namespace
}  // namespace servet::stats
