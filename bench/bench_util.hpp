// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdio>
#include <string>

namespace servet::bench {

inline void heading(const std::string& title) {
    std::printf("\n================================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("================================================================\n");
}

inline void note(const std::string& text) { std::printf("%s\n", text.c_str()); }

}  // namespace servet::bench
