// Section IV-A: cache size estimates on the four machines (10 caches in
// total); the paper reports that "all the estimates agreed with the
// specifications". This bench reruns the full measurement + detection
// pipeline per machine and scores it against the model's ground truth.
#include "bench_util.hpp"

#include "base/table.hpp"
#include "base/units.hpp"
#include "core/cache_size.hpp"
#include "platform/sim_platform.hpp"
#include "sim/zoo.hpp"

using namespace servet;

int main() {
    bench::heading("Section IV-A — cache size estimates vs specifications");
    TextTable table({"machine", "level", "spec", "estimate", "method", "match"});

    int total = 0;
    int matched = 0;
    for (const sim::MachineSpec& spec : sim::zoo::paper_machines()) {
        SimPlatform platform(spec);
        core::McalibratorOptions mc;
        mc.max_size = 3 * spec.levels.back().geometry.size;
        core::CacheDetectOptions detect;
        detect.page_size = spec.page_size;
        const auto curve = core::run_mcalibrator(platform, mc);
        const auto levels = core::detect_cache_levels(curve, detect);

        for (std::size_t i = 0; i < spec.levels.size(); ++i) {
            const Bytes truth = spec.levels[i].geometry.size;
            const bool found = i < levels.size();
            const Bytes estimate = found ? levels[i].size : 0;
            ++total;
            if (estimate == truth) ++matched;
            table.add_row({spec.name, spec.levels[i].name, format_bytes(truth),
                           found ? format_bytes(estimate) : "(missed)",
                           found ? levels[i].method : "-",
                           estimate == truth ? "yes" : "NO"});
        }
    }
    std::printf("%s", table.render().c_str());
    std::printf("\n%d / %d cache sizes match the specification (paper: 10/10).\n", matched,
                total);
    return matched == total ? 0 : 1;
}
