// Microbenchmarks (google-benchmark) of the hot primitives: the cache
// model's access path, virtual->physical translation, full engine
// traversal throughput, the binomial tail, and the probabilistic
// estimator. These bound the cost of the simulator substrate itself.
#include <benchmark/benchmark.h>

#include "core/cache_size.hpp"
#include "core/mcalibrator.hpp"
#include "platform/sim_platform.hpp"
#include "sim/cache.hpp"
#include "sim/engine.hpp"
#include "sim/page_mapper.hpp"
#include "sim/zoo.hpp"
#include "stats/binomial.hpp"

using namespace servet;

namespace {

void BM_CacheAccessHit(benchmark::State& state) {
    sim::SetAssocCache cache({.size = 32 * KiB, .line_size = 64, .associativity = 8});
    (void)cache.access(0);
    for (auto _ : state) benchmark::DoNotOptimize(cache.access(0));
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheAccessHit);

void BM_CacheAccessStridedSweep(benchmark::State& state) {
    sim::SetAssocCache cache(
        {.size = static_cast<Bytes>(state.range(0)), .line_size = 64, .associativity = 8});
    const Bytes span = 2 * static_cast<Bytes>(state.range(0));
    std::uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addr));
        addr = (addr + 1024) % span;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheAccessStridedSweep)->Arg(32 * 1024)->Arg(2 * 1024 * 1024);

void BM_PageTranslate(benchmark::State& state) {
    sim::PageMapper mapper(sim::PagePolicy::Random, 4 * KiB, 1 << 22, 64, 7);
    std::uint64_t vaddr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mapper.translate(vaddr));
        vaddr = (vaddr + 1024) % (64 * MiB);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PageTranslate);

void BM_EngineTraversal(benchmark::State& state) {
    sim::MachineSpec spec = sim::zoo::dempsey();
    spec.measurement_jitter = 0;
    sim::MachineSim machine(spec);
    const Bytes size = static_cast<Bytes>(state.range(0));
    for (auto _ : state) benchmark::DoNotOptimize(machine.traverse_one(0, size, 1 * KiB, 1));
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(size));
}
BENCHMARK(BM_EngineTraversal)->Arg(256 * 1024)->Arg(4 * 1024 * 1024)->Unit(benchmark::kMillisecond);

void BM_BinomialTail(benchmark::State& state) {
    for (auto _ : state)
        benchmark::DoNotOptimize(stats::binomial_tail_above(3072, 1.0 / 192, 16));
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BinomialTail);

void BM_ProbabilisticEstimator(benchmark::State& state) {
    // A representative smeared window (Dempsey L2 shape).
    core::McalibratorCurve curve;
    curve.sizes = core::mcalibrator_size_grid(4 * KiB, 16 * MiB);
    for (const Bytes s : curve.sizes) {
        const double mr = core::expected_miss_rate(
            core::MissRateModel::SizeBiased, static_cast<std::int64_t>(s / (4 * KiB)),
            8.0 * 4096 / (2.0 * 1024 * 1024), 8);
        curve.cycles.push_back(s <= 32 * KiB ? 3.0 : 15.0 + mr * 235.0);
    }
    core::CacheDetectOptions options;
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::detect_cache_levels(curve, options));
    }
}
BENCHMARK(BM_ProbabilisticEstimator)->Unit(benchmark::kMicrosecond);

}  // namespace
