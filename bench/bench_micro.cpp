// Microbenchmarks (google-benchmark) of the hot primitives: the cache
// model's access path, virtual->physical translation, full engine
// traversal throughput, the binomial tail, and the probabilistic
// estimator. These bound the cost of the simulator substrate itself.
//
// `bench_micro --json` skips google-benchmark and emits a machine-readable
// comparison of the batched vs reference traversal engines (simulated
// accesses/sec and the speedup ratio) — the format BENCH_simcore.json and
// tools/perf_smoke.py consume.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/cache_size.hpp"
#include "core/mcalibrator.hpp"
#include "platform/sim_platform.hpp"
#include "sim/cache.hpp"
#include "sim/engine.hpp"
#include "sim/page_mapper.hpp"
#include "sim/zoo.hpp"
#include "stats/binomial.hpp"

using namespace servet;

namespace {

void BM_CacheAccessHit(benchmark::State& state) {
    sim::SetAssocCache cache({.size = 32 * KiB, .line_size = 64, .associativity = 8});
    (void)cache.access(0);
    for (auto _ : state) benchmark::DoNotOptimize(cache.access(0));
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheAccessHit);

void BM_CacheAccessStridedSweep(benchmark::State& state) {
    sim::SetAssocCache cache(
        {.size = static_cast<Bytes>(state.range(0)), .line_size = 64, .associativity = 8});
    const Bytes span = 2 * static_cast<Bytes>(state.range(0));
    std::uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addr));
        addr = (addr + 1024) % span;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheAccessStridedSweep)->Arg(32 * 1024)->Arg(2 * 1024 * 1024);

void BM_PageTranslate(benchmark::State& state) {
    sim::PageMapper mapper(sim::PagePolicy::Random, 4 * KiB, 1 << 22, 64, 7);
    std::uint64_t vaddr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mapper.translate(vaddr));
        vaddr = (vaddr + 1024) % (64 * MiB);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PageTranslate);

void BM_EngineTraversal(benchmark::State& state) {
    sim::MachineSpec spec = sim::zoo::dempsey();
    spec.measurement_jitter = 0;
    sim::MachineSim machine(spec);
    const Bytes size = static_cast<Bytes>(state.range(0));
    for (auto _ : state) benchmark::DoNotOptimize(machine.traverse_one(0, size, 1 * KiB, 1));
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(size));
}
BENCHMARK(BM_EngineTraversal)->Arg(256 * 1024)->Arg(4 * 1024 * 1024)->Unit(benchmark::kMillisecond);

void BM_EngineTraversalReference(benchmark::State& state) {
    // The scalar oracle on the same workload: the gap to BM_EngineTraversal
    // is the batched pipeline's win.
    sim::MachineSpec spec = sim::zoo::dempsey();
    spec.measurement_jitter = 0;
    sim::MachineSim machine(spec);
    const Bytes size = static_cast<Bytes>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(machine.traverse_reference({0}, size, 1 * KiB, 1));
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(size));
}
BENCHMARK(BM_EngineTraversalReference)
    ->Arg(256 * 1024)
    ->Arg(4 * 1024 * 1024)
    ->Unit(benchmark::kMillisecond);

void BM_BinomialTail(benchmark::State& state) {
    for (auto _ : state)
        benchmark::DoNotOptimize(stats::binomial_tail_above(3072, 1.0 / 192, 16));
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BinomialTail);

void BM_ProbabilisticEstimator(benchmark::State& state) {
    // A representative smeared window (Dempsey L2 shape).
    core::McalibratorCurve curve;
    curve.sizes = core::mcalibrator_size_grid(4 * KiB, 16 * MiB);
    for (const Bytes s : curve.sizes) {
        const double mr = core::expected_miss_rate(
            core::MissRateModel::SizeBiased, static_cast<std::int64_t>(s / (4 * KiB)),
            8.0 * 4096 / (2.0 * 1024 * 1024), 8);
        curve.cycles.push_back(s <= 32 * KiB ? 3.0 : 15.0 + mr * 235.0);
    }
    core::CacheDetectOptions options;
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::detect_cache_levels(curve, options));
    }
}
BENCHMARK(BM_ProbabilisticEstimator)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// --json mode: engine throughput comparison for the perf smoke test.

struct EngineSample {
    std::uint64_t accesses = 0;
    double seconds = 0;
    double sim_cycles_per_access = 0;
};

/// The perf-smoke workload: Dempsey with the TLB model switched on (the
/// zoo entry leaves it off, but real machines page-walk, and the batched
/// engine's page caches exist precisely for that regime) and jitter off.
sim::MachineSpec json_workload_spec() {
    sim::MachineSpec spec = sim::zoo::dempsey();
    spec.measurement_jitter = 0;
    spec.tlb.enabled = true;
    return spec;
}

/// Repeat the fixed workload until ~0.15s of wall clock has accumulated
/// (amortizing timer noise), counting simulated demand accesses from the
/// engine's own counter so init passes and warm-ups are included. Runs
/// three such windows and keeps the fastest — transient host load slows
/// a window down, never speeds it up.
EngineSample time_engine(bool batched, Bytes array_bytes) {
    sim::MachineSim machine(json_workload_spec());
    const auto run_once = [&] {
        return batched ? machine.traverse({0}, array_bytes, 1 * KiB, 2)
                       : machine.traverse_reference({0}, array_bytes, 1 * KiB, 2);
    };
    (void)run_once();  // warm-up (page tables, allocator)

    EngineSample best;
    for (int window = 0; window < 3; ++window) {
        EngineSample sample;
        const std::uint64_t accesses_before = machine.total_accesses();
        const auto start = std::chrono::steady_clock::now();
        do {
            sample.sim_cycles_per_access = run_once().cycles_per_access.front();
            sample.seconds =
                std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                    .count();
        } while (sample.seconds < 0.15);
        sample.accesses = machine.total_accesses() - accesses_before;
        if (best.seconds == 0 || static_cast<double>(sample.accesses) / sample.seconds >
                                     static_cast<double>(best.accesses) / best.seconds)
            best = sample;
    }
    return best;
}

int run_json_mode() {
    const Bytes array_bytes = 4 * MiB;  // well past the Dempsey L2
    const EngineSample batched = time_engine(/*batched=*/true, array_bytes);
    const EngineSample reference = time_engine(/*batched=*/false, array_bytes);

    const auto rate = [](const EngineSample& s) {
        return static_cast<double>(s.accesses) / s.seconds;
    };
    std::printf("{\n");
    std::printf("  \"benchmark\": \"simcore\",\n");
    std::printf("  \"workload\": \"dempsey+tlb/4MiB/1KiB/2passes\",\n");
    std::printf("  \"scenarios\": [\n");
    const EngineSample* samples[] = {&batched, &reference};
    const char* names[] = {"batched", "reference"};
    for (int i = 0; i < 2; ++i) {
        std::printf("    {\"engine\": \"%s\", \"accesses\": %llu, \"seconds\": %.6f, "
                    "\"accesses_per_sec\": %.0f, \"sim_cycles_per_access\": %.6f}%s\n",
                    names[i], static_cast<unsigned long long>(samples[i]->accesses),
                    samples[i]->seconds, rate(*samples[i]),
                    samples[i]->sim_cycles_per_access, i == 0 ? "," : "");
    }
    std::printf("  ],\n");
    std::printf("  \"speedup\": %.3f\n", rate(batched) / rate(reference));
    std::printf("}\n");
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--json") == 0) return run_json_mode();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
