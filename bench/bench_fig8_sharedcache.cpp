// Figure 8: shared-cache detection ratios for the pairs containing core 0
// on Dunnington (a) and Finis Terrae (b).
//
// Paper shape: on Dunnington the L2 probe spikes only for pair (0,12) and
// the L3 probe for (0,{1,2,12,13,14}); on Finis Terrae every ratio stays
// below 2 (all caches private), with mild >1 texture from the shared
// memory buses.
#include "bench_util.hpp"

#include "base/table.hpp"
#include "base/units.hpp"
#include "core/shared_cache.hpp"
#include "platform/sim_platform.hpp"
#include "sim/zoo.hpp"

using namespace servet;

namespace {

void run_machine(const sim::MachineSpec& spec, const std::vector<Bytes>& sizes) {
    SimPlatform platform(spec);
    core::SharedCacheOptions options;
    options.only_with_core = 0;
    const auto results = core::detect_shared_caches(platform, sizes, options);

    bench::heading("Fig. 8 — shared-cache ratio, pairs (0,k), " + spec.name);
    std::vector<std::string> header = {"pair"};
    for (const auto& level : results) header.push_back(format_bytes(level.cache_size));
    TextTable table(header);
    for (std::size_t p = 0; p < results.front().pairs.size(); ++p) {
        std::vector<std::string> row = {
            strf("(0,%d)", results.front().pairs[p].pair.b)};
        for (const auto& level : results) row.push_back(strf("%.2f", level.pairs[p].ratio));
        table.add_row(std::move(row));
    }
    std::printf("%s", table.render().c_str());

    for (const auto& level : results) {
        std::printf("%s sharing groups: ", format_bytes(level.cache_size).c_str());
        if (level.groups.empty()) std::printf("(none — private)");
        for (const auto& group : level.groups) {
            std::printf("{");
            for (std::size_t i = 0; i < group.size(); ++i)
                std::printf("%s%d", i ? "," : "", group[i]);
            std::printf("} ");
        }
        std::printf("\n");
    }
}

}  // namespace

int main() {
    run_machine(sim::zoo::dunnington(), {32 * KiB, 3 * MiB, 12 * MiB});
    run_machine(sim::zoo::finis_terrae(), {16 * KiB, 256 * KiB, 9 * MiB});
    bench::note(
        "\nShape check vs paper: Dunnington ratio > 2 exactly at (0,12) for the 3MB\n"
        "L2 and at (0,{1,2,12,13,14}) for the 12MB L3 — exposing the interleaved OS\n"
        "core numbering; Finis Terrae ratios all stay below 2 (private caches).");
    return 0;
}
