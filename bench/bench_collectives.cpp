// Extension experiment (Section II's motivation, refs [5]-[7]): collective
// tuning from measured topology. Broadcast over the full machine with
// three algorithms — flat, binomial tree, and the hierarchy-aware
// two-level tree built from Servet's detected communication layers —
// executed on the network model, across message sizes.
//
// Expected shape: binomial beats flat everywhere (log vs linear rounds);
// the hierarchy-aware tree wins on the cluster (it crosses InfiniBand once
// per node instead of log-many times) and ties binomial inside a node.
#include "bench_util.hpp"

#include "autotune/collective_select.hpp"
#include "base/table.hpp"
#include "base/units.hpp"
#include "core/suite.hpp"
#include "msg/sim_network.hpp"
#include "platform/sim_platform.hpp"
#include "sim/zoo.hpp"

using namespace servet;

namespace {

void run_machine(const sim::MachineSpec& spec) {
    SimPlatform platform(spec);
    msg::SimNetwork network(spec);

    // Profile the comm layers once (as an installed Servet would have).
    core::SuiteOptions options;
    options.mcalibrator.max_size = 3 * spec.levels.back().geometry.size;
    options.run_shared_cache = false;
    options.run_mem_overhead = false;
    const auto suite = core::run_suite(platform, &network, options);
    const core::Profile profile =
        suite.to_profile(platform.name(), spec.n_cores, spec.page_size);

    std::vector<CoreId> cores;
    for (CoreId c = 0; c < spec.n_cores; ++c) cores.push_back(c);

    bench::heading("Broadcast over " + spec.name + " (" + std::to_string(spec.n_cores) +
                   " cores), measured completion time");
    TextTable table({"message", "flat", "binomial", "hierarchical", "scatter-allgather",
                     "selector picks"});
    for (const Bytes size : {1 * KiB, 16 * KiB, 256 * KiB, 1 * MiB, 4 * MiB}) {
        const Seconds flat =
            autotune::run_schedule(network, autotune::broadcast_flat(0, cores), size, 3);
        const Seconds binomial =
            autotune::run_schedule(network, autotune::broadcast_binomial(0, cores), size, 3);
        const Seconds hierarchical = autotune::run_schedule(
            network, autotune::broadcast_hierarchical(0, cores, profile), size, 3);
        const Seconds vandegeijn = autotune::run_schedule(
            network, autotune::broadcast_scatter_allgather(0, cores), size, 3);
        const auto choice = autotune::choose_broadcast(profile, 0, cores, size);
        table.add_row({format_bytes(size), format_latency(flat), format_latency(binomial),
                       format_latency(hierarchical), format_latency(vandegeijn),
                       choice.schedule.algorithm});
    }
    std::printf("%s", table.render().c_str());

    // Allreduce: composed reduce+broadcast vs recursive doubling (only
    // offered on power-of-two core counts).
    if ((cores.size() & (cores.size() - 1)) == 0) {
        TextTable allreduce({"message", "composed", "recursive-doubling", "selector picks"});
        for (const Bytes size : {1 * KiB, 64 * KiB, 1 * MiB}) {
            const Seconds composed = autotune::run_schedule(
                network, autotune::allreduce_composed(0, cores, profile), size, 3);
            const Seconds doubling = autotune::run_schedule(
                network, autotune::allreduce_recursive_doubling(cores), size, 3);
            const auto choice = autotune::choose_allreduce(profile, cores, size);
            allreduce.add_row({format_bytes(size), format_latency(composed),
                               format_latency(doubling), choice.schedule.algorithm});
        }
        std::printf("\nAllreduce over %s:\n%s", spec.name.c_str(),
                    allreduce.render().c_str());
    }
}

}  // namespace

int main() {
    run_machine(sim::zoo::dunnington());
    run_machine(sim::zoo::finis_terrae(2));
    bench::note(
        "\nExpected shape: binomial ~n/log(n) faster than flat; the hierarchy-aware\n"
        "tree beats plain binomial by crossing the slowest layer once per group; for\n"
        "multi-megabyte payloads the scatter-allgather (van de Geijn) algorithm\n"
        "overtakes the trees on bandwidth, and the profile-driven selector switches\n"
        "algorithms at the measured crossover unprompted.");
    return 0;
}
