// Ablation reproducing Section III-D's claim: LogP/Hockney-style linear
// models "show poor accuracy on current communication middleware on
// multicore clusters". We fit (i) one global Hockney model across the
// whole machine and (ii) one Hockney model per pair, then compare their
// prediction error against Servet's layered piecewise characterization on
// freshly measured validation points (sizes between the sweep's grid).
#include "bench_util.hpp"

#include "base/table.hpp"
#include "base/units.hpp"
#include "core/comm_model.hpp"
#include "core/suite.hpp"
#include "msg/sim_network.hpp"
#include "platform/sim_platform.hpp"
#include "sim/zoo.hpp"

using namespace servet;

namespace {

void run_machine(const sim::MachineSpec& spec, const std::vector<CorePair>& probes) {
    SimPlatform platform(spec);
    msg::SimNetwork network(spec);

    core::SuiteOptions options;
    options.mcalibrator.max_size = 3 * spec.levels.back().geometry.size;
    options.run_shared_cache = false;
    options.run_mem_overhead = false;
    const auto suite = core::run_suite(platform, &network, options);
    const core::Profile profile =
        suite.to_profile(platform.name(), spec.n_cores, spec.page_size);

    const core::HockneyModel global = core::fit_hockney_global(profile);

    bench::heading("Ablation — Hockney vs Servet layered model, " + spec.name);
    TextTable table({"pair", "layer", "global Hockney err (mean/max)",
                     "per-pair Hockney err", "Servet layered err"});

    for (const CorePair& pair : probes) {
        // Validation points off the sweep grid (sweep is powers of two).
        std::vector<std::pair<Bytes, Seconds>> validation;
        for (const Bytes size : {3 * KiB, 12 * KiB, 48 * KiB, 192 * KiB, 768 * KiB, 3 * MiB})
            validation.emplace_back(size, network.pingpong_latency(pair, size, 20));

        const core::HockneyModel per_pair = core::fit_hockney(validation);
        const auto global_err = core::evaluate_model(global, validation);
        const auto pair_err = core::evaluate_model(per_pair, validation);
        const auto servet_err = core::evaluate_profile(profile, pair, validation);

        table.add_row({strf("(%d,%d)", pair.a, pair.b),
                       strf("%d", profile.comm_layer_of(pair)),
                       strf("%.0f%% / %.0f%%", 100 * global_err.mean_relative,
                            100 * global_err.max_relative),
                       strf("%.0f%% / %.0f%%", 100 * pair_err.mean_relative,
                            100 * pair_err.max_relative),
                       strf("%.0f%% / %.0f%%", 100 * servet_err.mean_relative,
                            100 * servet_err.max_relative)});
    }
    std::printf("%s", table.render().c_str());
}

}  // namespace

int main() {
    run_machine(sim::zoo::dunnington(), {{0, 12}, {0, 1}, {0, 3}});
    run_machine(sim::zoo::finis_terrae(2), {{0, 1}, {0, 16}});
    bench::note(
        "\nExpected shape (the Section III-D argument): one Hockney line for the\n"
        "whole machine misses by large factors because layers differ; even a\n"
        "per-pair Hockney line cannot follow the eager->rendezvous protocol step;\n"
        "Servet's measured per-layer piecewise curves stay within measurement\n"
        "noise everywhere.");
    return 0;
}
