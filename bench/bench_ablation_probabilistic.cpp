// Ablation (DESIGN.md): how much does the probabilistic estimator (Fig. 3)
// buy over naive gradient-peak position, and how do the two miss-rate
// models compare? Sweeps synthetic machines across L2 sizes, associativity
// and page policy; each detector variant is scored for exact-size
// recovery. The paper's qualitative claim: naive peaks misestimate
// physically indexed caches (e.g. Dempsey "a 1MB L2 cache would be
// erroneously estimated"), while the probabilistic algorithm is exact.
#include "bench_util.hpp"

#include "base/table.hpp"
#include "base/units.hpp"
#include "core/cache_size.hpp"
#include "platform/sim_platform.hpp"
#include "sim/zoo.hpp"
#include "stats/gradient.hpp"

using namespace servet;

namespace {

struct Config {
    Bytes l2_size;
    int assoc;
    sim::PagePolicy policy;
};

/// Naive baseline: cache size = array size at the apex of each gradient
/// peak (the Saavedra-Smith reading the paper improves on).
std::vector<Bytes> naive_peak_detect(const core::McalibratorCurve& curve) {
    const auto gradient = curve.gradient();
    std::vector<Bytes> sizes;
    for (const auto& peak : stats::find_peaks(gradient, 1.12))
        sizes.push_back(curve.sizes[peak.apex]);
    return sizes;
}

}  // namespace

int main() {
    const std::vector<Config> configs = {
        {512 * KiB, 8, sim::PagePolicy::Random},  {1 * MiB, 8, sim::PagePolicy::Random},
        {2 * MiB, 8, sim::PagePolicy::Random},    {2 * MiB, 16, sim::PagePolicy::Random},
        {3 * MiB, 12, sim::PagePolicy::Random},   {4 * MiB, 16, sim::PagePolicy::Random},
        {1 * MiB, 8, sim::PagePolicy::Coloring},  {2 * MiB, 8, sim::PagePolicy::Coloring},
    };

    bench::heading("Ablation — naive peak vs probabilistic estimator (L2 recovery)");
    TextTable table({"true L2", "assoc", "pages", "naive peak", "paper P(X>K)",
                     "size-biased (default)"});

    int naive_hits = 0;
    int paper_hits = 0;
    int biased_hits = 0;
    for (const Config& config : configs) {
        sim::zoo::SyntheticOptions options;
        options.cores = 1;
        options.l1_size = 32 * KiB;
        options.l2_size = config.l2_size;
        options.l2_assoc = config.assoc;
        options.page_policy = config.policy;
        options.jitter = 0.01;
        SimPlatform platform(sim::zoo::synthetic(options));

        core::McalibratorOptions mc;
        mc.max_size = 6 * config.l2_size;
        const auto curve = core::run_mcalibrator(platform, mc);

        const auto naive = naive_peak_detect(curve);
        const Bytes naive_l2 = naive.size() >= 2 ? naive[1] : 0;

        const auto detect_with = [&](core::MissRateModel model) {
            core::CacheDetectOptions detect;
            detect.model = model;
            const auto levels = core::detect_cache_levels(curve, detect);
            return levels.size() >= 2 ? levels[1].size : Bytes{0};
        };
        const Bytes paper_l2 = detect_with(core::MissRateModel::PaperTail);
        const Bytes biased_l2 = detect_with(core::MissRateModel::SizeBiased);

        naive_hits += naive_l2 == config.l2_size;
        paper_hits += paper_l2 == config.l2_size;
        biased_hits += biased_l2 == config.l2_size;

        table.add_row({format_bytes(config.l2_size), strf("%d", config.assoc),
                       config.policy == sim::PagePolicy::Coloring ? "colored" : "random",
                       format_bytes(naive_l2), format_bytes(paper_l2),
                       format_bytes(biased_l2)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nexact recoveries out of %zu: naive %d, paper-tail %d, size-biased %d\n",
                configs.size(), naive_hits, paper_hits, biased_hits);
    bench::note(
        "Expected shape: naive peak positions are correct only under page coloring;\n"
        "both probabilistic variants handle random placement, with the size-biased\n"
        "model the most reliable (it matches the per-access miss expectation).");
    return 0;
}
