// End-to-end validation of the mapping advisor (the paper's "map the
// processes to specific cores to improve the performance" use case,
// Sections II/V): place a halo-exchange application naively and with the
// profile-driven mapper, then *execute* one communication step of each
// placement on the network model — rounds of concurrent vertex-disjoint
// transfers — and compare measured step times against the mapper's
// predictions.
#include "bench_util.hpp"

#include <algorithm>
#include <numeric>

#include "autotune/mapping.hpp"
#include "base/table.hpp"
#include "base/units.hpp"
#include "core/suite.hpp"
#include "msg/sim_network.hpp"
#include "platform/sim_platform.hpp"
#include "sim/zoo.hpp"

using namespace servet;

namespace {

Seconds execute_step(msg::Network& network, const autotune::CommGraph& graph,
                     const std::vector<CoreId>& placement, Bytes message) {
    Seconds total = 0;
    for (const auto& round : autotune::edge_rounds(graph)) {
        std::vector<CorePair> transfers;
        for (const auto& edge : round)
            transfers.push_back({placement[static_cast<std::size_t>(edge.rank_a)],
                                 placement[static_cast<std::size_t>(edge.rank_b)]});
        const auto latencies = network.concurrent_latency(transfers, message, 5);
        total += *std::max_element(latencies.begin(), latencies.end());
    }
    return total;
}

void run_case(const sim::MachineSpec& spec, const std::string& label,
              const autotune::CommGraph& graph, Bytes message) {
    SimPlatform platform(spec);
    msg::SimNetwork network(spec);

    core::SuiteOptions options;
    options.mcalibrator.max_size = 3 * spec.levels.back().geometry.size;
    options.run_shared_cache = false;
    const auto suite = core::run_suite(platform, &network, options);
    const core::Profile profile =
        suite.to_profile(platform.name(), spec.n_cores, spec.page_size);

    autotune::MappingOptions mapping;
    mapping.message_size = message;

    std::vector<CoreId> naive(static_cast<std::size_t>(graph.ranks));
    std::iota(naive.begin(), naive.end(), 0);
    const autotune::MappingResult tuned =
        autotune::map_processes(profile, graph, mapping);

    const Seconds naive_measured = execute_step(network, graph, naive, message);
    const Seconds tuned_measured =
        execute_step(network, graph, tuned.core_of_rank, message);
    const double predicted_gain =
        autotune::placement_cost(profile, graph, naive, mapping) / tuned.cost;
    const double measured_gain = naive_measured / tuned_measured;

    bench::heading(strf("%s (%s messages) on %s", label.c_str(),
                        format_bytes(message).c_str(), spec.name.c_str()));
    TextTable table({"placement", "measured step time", "speedup"});
    table.add_row({"naive (rank = core)", format_latency(naive_measured), "1.00x"});
    table.add_row({"servet-tuned", format_latency(tuned_measured),
                   strf("%.2fx", measured_gain)});
    std::printf("%s", table.render().c_str());
    std::printf("mapper predicted %.2fx, execution measured %.2fx\n", predicted_gain,
                measured_gain);
}

}  // namespace

int main() {
    run_case(sim::zoo::dunnington(), "Halo exchange 4x6",
             autotune::CommGraph::stencil2d(4, 6), 32 * KiB);
    // Contiguous stencils place well by rank order; the mapper must match
    // (never degrade) the naive placement there.
    run_case(sim::zoo::finis_terrae(2), "Halo exchange 4x8",
             autotune::CommGraph::stencil2d(4, 8), 16 * KiB);
    // Irregular graphs carry no rank-order locality: the profile-driven
    // mapper clusters communicating ranks inside nodes to dodge InfiniBand.
    run_case(sim::zoo::finis_terrae(2), "Irregular sparse app (degree ~3)",
             autotune::CommGraph::random_sparse(32, 3, 0x5eed1), 16 * KiB);
    run_case(sim::zoo::nehalem2s(), "Halo exchange 2x4",
             autotune::CommGraph::stencil2d(2, 4), 32 * KiB);
    bench::note(
        "\nExpected shape: tuned placements align heavy edges with the measured fast\n"
        "layers and never lose to the naive baseline; the largest wins come from\n"
        "irregular graphs on the cluster, where rank order carries no locality and\n"
        "the mapper keeps traffic off the InfiniBand layer.");
    return 0;
}
