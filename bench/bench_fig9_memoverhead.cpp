// Figure 9: memory-access overhead. (a) copy bandwidth of core 0 while
// paired with each other core, versus the isolated reference; (b)
// effective bandwidth as more cores of an overhead group stream at once.
//
// Paper shape: Dunnington pairs all drop to one uniform tier (single FSB);
// Finis Terrae shows three regimes — bus mates lowest, cell mates ~25%
// below reference, cross-cell pairs unaffected — and in (b) the "bus" and
// "cell" curves of the FT node plus the global Dunnington curve.
#include "bench_util.hpp"

#include "base/table.hpp"
#include "base/units.hpp"
#include "core/mem_overhead.hpp"
#include "platform/sim_platform.hpp"
#include "sim/zoo.hpp"

using namespace servet;

namespace {

core::MemOverheadResult run_machine(const sim::MachineSpec& spec, Bytes array_bytes,
                                    bool pairs_with_core0_only) {
    SimPlatform platform(spec);
    core::MemOverheadOptions options;
    options.array_bytes = array_bytes;
    options.only_with_core = pairs_with_core0_only ? 0 : -1;
    return core::characterize_memory_overhead(platform, options);
}

void print_pairs(const std::string& machine, const core::MemOverheadResult& result) {
    bench::heading("Fig. 9a — concurrent pair bandwidth (core 0), " + machine);
    TextTable table({"pair", "bandwidth", "vs ref"});
    table.add_row({"ref (isolated)", format_bandwidth(result.reference_bandwidth), "1.00"});
    for (const auto& pair : result.pairs) {
        table.add_row({strf("(0,%d)", pair.pair.b), format_bandwidth(pair.bandwidth),
                       strf("%.2f", pair.bandwidth / result.reference_bandwidth)});
    }
    std::printf("%s", table.render().c_str());
}

void print_scalability(const std::string& machine, const core::MemOverheadResult& result) {
    bench::heading("Fig. 9b — effective bandwidth vs concurrent cores, " + machine);
    TextTable table({"cores", "tier", "bandwidth/core", "aggregate"});
    for (const auto& curve : result.scalability) {
        for (std::size_t k = 0; k < curve.bandwidth_by_n.size(); ++k) {
            table.add_row({strf("%zu", k + 1), strf("%zu", curve.tier),
                           format_bandwidth(curve.bandwidth_by_n[k]),
                           format_bandwidth(static_cast<double>(k + 1) *
                                            curve.bandwidth_by_n[k])});
        }
    }
    std::printf("%s", table.render().c_str());
}

}  // namespace

int main() {
    const auto dunnington = run_machine(sim::zoo::dunnington(), 48 * MiB, true);
    print_pairs("dunnington", dunnington);

    const auto ft_pairs = run_machine(sim::zoo::finis_terrae(), 36 * MiB, true);
    print_pairs("finis-terrae", ft_pairs);

    // Scalability needs the full pair scan so groups are complete.
    const auto dunnington_full = run_machine(sim::zoo::dunnington(), 48 * MiB, false);
    print_scalability("dunnington", dunnington_full);
    const auto ft_full = run_machine(sim::zoo::finis_terrae(), 36 * MiB, false);
    print_scalability("finis-terrae (bus tier 0, cell tier 1)", ft_full);

    bench::note(
        "\nShape check vs paper: Dunnington shows one uniform overhead tier for every\n"
        "pair; Finis Terrae shows the lowest bandwidth against cores 1-3 (shared\n"
        "bus), ~25% degradation against cores 4-7 (same cell), and no overhead\n"
        "against cores 8-15 (other cell). The 9b curves saturate at the bus/cell\n"
        "aggregate bandwidths.");
    return 0;
}
