// Figure 10: communication costs.
//  (a) message latency for pairs (0,k) at the L1 probe size, Dunnington
//      and Finis Terrae (2 nodes / 32 cores, as in the paper);
//  (b) latency scalability: slowdown of one message as N messages cross
//      the layer concurrently (Dunnington inter-processor; FT InfiniBand,
//      run on a 4-node model so the probe reaches 32 concurrent messages
//      like the paper's 32-core experiment);
//  (c)/(d) point-to-point bandwidth per detected layer vs message size.
//
// Paper shape: Dunnington latencies tier as shared-L2 < intra-processor <
// inter-processor; FT intra-node ~2x faster than inter-node; moderate
// scalability with the InfiniBand message ~7x slower with 31 others in
// flight; bandwidth curves ordered by layer with the SHM/IBV protocol
// switch visible as a slope change past the eager threshold.
#include "bench_util.hpp"

#include "base/table.hpp"
#include "base/units.hpp"
#include "core/comm_costs.hpp"
#include "msg/sim_network.hpp"
#include "sim/zoo.hpp"

using namespace servet;

namespace {

core::CommCostsResult characterize(const sim::MachineSpec& spec, Bytes probe,
                                   int max_concurrent = 32) {
    msg::SimNetwork network(spec);
    core::CommCostsOptions options;
    options.probe_message = probe;
    options.max_concurrent = max_concurrent;
    return core::characterize_communication(network, options);
}

void print_latency_pairs(const std::string& machine, const core::CommCostsResult& result,
                         int cores) {
    bench::heading("Fig. 10a — message latency (L1-sized message), " + machine);
    TextTable table({"pair", "latency", "layer"});
    for (CoreId k = 1; k < cores; ++k) {
        for (const auto& pair : result.pairs) {
            if (pair.pair == CorePair{0, k})
                table.add_row({strf("(0,%d)", k), format_latency(pair.latency),
                               strf("%d", result.layer_of(pair.pair))});
        }
    }
    std::printf("%s", table.render().c_str());
}

void print_scalability(const std::string& label, const core::CommLayer& layer) {
    bench::heading("Fig. 10b — latency scalability, " + label);
    TextTable table({"concurrent messages", "slowdown vs isolated"});
    for (std::size_t k = 0; k < layer.slowdown_by_n.size(); ++k)
        table.add_row({strf("%zu", k + 1), strf("%.2f", layer.slowdown_by_n[k])});
    std::printf("%s", table.render().c_str());
}

void print_bandwidth(const std::string& machine, const core::CommCostsResult& result) {
    bench::heading("Fig. 10c/d — point-to-point bandwidth per layer, " + machine);
    std::vector<std::string> header = {"message size"};
    for (std::size_t l = 0; l < result.layers.size(); ++l) {
        const auto& rep = result.layers[l].representative;
        header.push_back(strf("layer %zu (%d,%d)", l, rep.a, rep.b));
    }
    TextTable table(header);
    for (std::size_t i = 0; i < result.layers.front().p2p.size(); ++i) {
        std::vector<std::string> row = {format_bytes(result.layers.front().p2p[i].first)};
        for (const auto& layer : result.layers) {
            const auto& [size, latency] = layer.p2p[i];
            row.push_back(format_bandwidth(static_cast<double>(size) / latency));
        }
        table.add_row(std::move(row));
    }
    std::printf("%s", table.render().c_str());
}

}  // namespace

int main() {
    const auto dunnington = characterize(sim::zoo::dunnington(), 32 * KiB);
    print_latency_pairs("dunnington", dunnington, 24);

    const auto ft2 = characterize(sim::zoo::finis_terrae(2), 16 * KiB);
    print_latency_pairs("finis-terrae, 2 nodes (cores 16-31 remote)", ft2, 32);

    print_scalability("dunnington inter-processor",
                      dunnington.layers.back());
    // 4 nodes give 32 disjoint inter-node pairs: the paper's 32-message probe.
    const auto ft4 = characterize(sim::zoo::finis_terrae(4), 16 * KiB);
    print_scalability("finis-terrae InfiniBand (4-node model, 32 senders)",
                      ft4.layers.back());

    print_bandwidth("dunnington", dunnington);
    print_bandwidth("finis-terrae (2 nodes)", ft2);

    const auto& ib = ft4.layers.back().slowdown_by_n;
    bench::note(strf(
        "\nShape check vs paper: %zu Dunnington layers / %zu FT layers detected;\n"
        "FT inter/intra latency ratio %.2fx (paper ~2x); InfiniBand slowdown at 32\n"
        "concurrent messages %.1fx (paper ~7x).",
        dunnington.layers.size(), ft2.layers.size(),
        ft2.layers[1].latency / ft2.layers[0].latency,
        ib.empty() ? 0.0 : ib.back()));
    return 0;
}
