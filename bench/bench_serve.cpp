// Load generator for `servet serve` (CI job perf-smoke, baseline
// BENCH_serve.json). Starts a ServeServer in-process on an ephemeral
// loopback port with ONE worker thread, uploads one profile, then
// hammers the hot path from a keep-alive client pipelining batches of
// requests. Two scenarios:
//
//   cached_get   GET /v1/profile/<fp>/<opts>       (200 + full body, LRU hit)
//   revalidate   GET /v1/profile/<fp> + If-None-Match  (304, headers only)
//
// The primary metric is cached_get requests/second — the fleet steady
// state where every node re-fetches its profile. The bar from ROADMAP:
// >100k req/s on one core. --json emits the perf_smoke.py feed.
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "base/cli.hpp"
#include "core/profile.hpp"
#include "serve/server.hpp"

using namespace servet;

namespace {

constexpr const char* kFingerprint = "00c0ffee00c0ffee";
constexpr const char* kOptions = "0123456789abcdef";

/// A small but structurally real profile: the serve store parses every
/// uploaded body, so the benchmark must pay the same parse cost a real
/// client would.
std::string make_profile_body() {
    core::Profile profile;
    profile.machine = "bench-serve";
    profile.cores = 4;
    profile.page_size = 4096;
    core::ProfileCacheLevel l1;
    l1.size = 32 * 1024;
    l1.method = "bench";
    profile.caches.push_back(l1);
    return profile.serialize();
}

int connect_loopback(std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

bool send_all(int fd, std::string_view bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                                 MSG_NOSIGNAL);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) return false;
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

bool recv_exact(int fd, std::size_t want, std::string* out = nullptr) {
    char chunk[64 * 1024];
    std::size_t got = 0;
    while (got < want) {
        const std::size_t ask = std::min(sizeof chunk, want - got);
        const ssize_t n = ::recv(fd, chunk, ask, 0);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) return false;
        if (out != nullptr) out->append(chunk, static_cast<std::size_t>(n));
        got += static_cast<std::size_t>(n);
    }
    return true;
}

/// One request/response exchange; returns the full response (head+body)
/// by reading the head, then content-length more bytes.
bool exchange(int fd, const std::string& request, std::string* response) {
    if (!send_all(fd, request)) return false;
    response->clear();
    while (response->find("\r\n\r\n") == std::string::npos) {
        if (!recv_exact(fd, 1, response)) return false;
        if (response->size() > 64 * 1024) return false;
    }
    const std::size_t head_end = response->find("\r\n\r\n") + 4;
    std::size_t body = 0;
    const std::size_t cl = response->find("content-length: ");
    if (cl != std::string::npos && cl < head_end)
        body = static_cast<std::size_t>(
            std::strtoul(response->c_str() + cl + 16, nullptr, 10));
    const std::size_t have = response->size() - head_end;
    return have >= body || recv_exact(fd, body - have, response);
}

struct ScenarioResult {
    std::string name;
    std::uint64_t requests = 0;
    double seconds = 0;
    double reqs_per_sec = 0;
};

/// Pipelines `batch`-request blocks over one keep-alive connection for
/// ~`seconds`. Counts responses by exact byte totals: every request in a
/// scenario is identical, so every response is byte-identical too.
ScenarioResult run_scenario(const std::string& name, std::uint16_t port,
                            const std::string& request, double seconds, int batch) {
    ScenarioResult result;
    result.name = name;
    const int fd = connect_loopback(port);
    if (fd < 0) return result;

    std::string response;
    if (!exchange(fd, request, &response) || response.compare(0, 9, "HTTP/1.1 ") != 0) {
        ::close(fd);
        return result;
    }
    const std::size_t response_size = response.size();

    std::string block;
    for (int i = 0; i < batch; ++i) block += request;

    const auto start = std::chrono::steady_clock::now();
    const auto deadline = start + std::chrono::duration<double>(seconds);
    std::uint64_t requests = 1;  // the warm-up exchange above
    while (std::chrono::steady_clock::now() < deadline) {
        if (!send_all(fd, block)) break;
        if (!recv_exact(fd, response_size * static_cast<std::size_t>(batch))) break;
        requests += static_cast<std::uint64_t>(batch);
    }
    const auto end = std::chrono::steady_clock::now();
    ::close(fd);

    result.requests = requests;
    result.seconds = std::chrono::duration<double>(end - start).count();
    if (result.seconds > 0)
        result.reqs_per_sec = static_cast<double>(requests) / result.seconds;
    return result;
}

}  // namespace

int main(int argc, char** argv) {
    CliParser cli("bench_serve: loopback load generator for the profile service.");
    cli.add_option("seconds", "measured wall time per scenario", "1.0");
    cli.add_option("batch", "pipelined requests per write", "32");
    cli.add_option("threads", "server worker threads (1 = the ROADMAP bar)", "1");
    cli.add_flag("json", "emit the perf_smoke.py JSON feed instead of text");
    if (!cli.parse(argc, argv)) return 2;
    const double seconds = cli.option_double("seconds").value_or(1.0);
    const int batch = static_cast<int>(cli.option_int("batch").value_or(32));
    if (seconds <= 0 || batch < 1) {
        std::fprintf(stderr, "--seconds must be > 0 and --batch >= 1\n");
        return 2;
    }

    serve::ServeOptions options;
    options.store_dir = "/tmp/bench-serve-store." + std::to_string(::getpid());
    options.threads = static_cast<int>(cli.option_int("threads").value_or(1));
    serve::ServeServer server(options);
    std::string error;
    if (!server.start(&error)) {
        std::fprintf(stderr, "bench_serve: %s\n", error.c_str());
        return 2;
    }

    const std::string body = make_profile_body();
    const std::string target =
        std::string("/v1/profile/") + kFingerprint + "/" + kOptions;
    const std::string put = "PUT " + target + " HTTP/1.1\r\ncontent-length: " +
                            std::to_string(body.size()) + "\r\n\r\n" + body;
    {
        const int fd = connect_loopback(server.port());
        std::string response;
        if (fd < 0 || !exchange(fd, put, &response) ||
            response.compare(0, 12, "HTTP/1.1 201") != 0) {
            std::fprintf(stderr, "bench_serve: seeding PUT failed\n");
            if (fd >= 0) ::close(fd);
            return 2;
        }
        ::close(fd);
    }

    const std::string get = "GET " + target + " HTTP/1.1\r\n\r\n";
    const std::string revalidate = std::string("GET /v1/profile/") + kFingerprint +
                                   " HTTP/1.1\r\nif-none-match: \"" + kOptions +
                                   "\"\r\n\r\n";
    const ScenarioResult cached =
        run_scenario("cached_get", server.port(), get, seconds, batch);
    const ScenarioResult cond =
        run_scenario("revalidate", server.port(), revalidate, seconds, batch);

    server.request_stop();
    server.join();

    const std::string workload =
        "loopback-keepalive-batch" + std::to_string(batch) + "-threads" +
        std::to_string(options.threads);
    if (cached.requests == 0 || cond.requests == 0) {
        std::fprintf(stderr, "bench_serve: a scenario produced no responses\n");
        return 2;
    }
    if (cli.flag("json")) {
        std::printf("{\n");
        std::printf("  \"benchmark\": \"serve\",\n");
        std::printf("  \"workload\": \"%s\",\n", workload.c_str());
        std::printf("  \"reqs_per_sec\": %.0f,\n", cached.reqs_per_sec);
        std::printf("  \"scenarios\": [\n");
        const auto emit = [](const ScenarioResult& s, bool last) {
            std::printf("    {\"engine\": \"%s\", \"reqs_per_sec\": %.0f, "
                        "\"requests\": %llu, \"seconds\": %.3f}%s\n",
                        s.name.c_str(), s.reqs_per_sec,
                        static_cast<unsigned long long>(s.requests), s.seconds,
                        last ? "" : ",");
        };
        emit(cached, false);
        emit(cond, true);
        std::printf("  ]\n}\n");
    } else {
        std::printf("bench_serve: %s\n", workload.c_str());
        std::printf("  %-12s %12.0f req/s (%llu requests in %.2f s)\n", "cached_get",
                    cached.reqs_per_sec,
                    static_cast<unsigned long long>(cached.requests), cached.seconds);
        std::printf("  %-12s %12.0f req/s (%llu requests in %.2f s)\n", "revalidate",
                    cond.reqs_per_sec, static_cast<unsigned long long>(cond.requests),
                    cond.seconds);
    }
    return 0;
}
