// Figure 2: mcalibrator cycles per access (a) and their gradient
// C[k+1]/C[k] (b) on the Dempsey and Dunnington machine models.
//
// Paper shape: Dempsey shows a sharp L1 step at 16KB and a smeared L2
// transition with high gradients across [512KB, 2MB]; Dunnington shows the
// L1 step at 32KB and overlapping L2 (3MB) / L3 (12MB) smears.
#include "bench_util.hpp"

#include <string_view>

#include "base/table.hpp"
#include "base/units.hpp"
#include "core/mcalibrator.hpp"
#include "platform/sim_platform.hpp"
#include "sim/zoo.hpp"

using namespace servet;

namespace {

void run_machine(const sim::MachineSpec& spec, Bytes max_size, bool csv) {
    SimPlatform platform(spec);
    core::McalibratorOptions options;
    options.max_size = max_size;
    const core::McalibratorCurve curve = core::run_mcalibrator(platform, options);
    const auto gradient = curve.gradient();

    if (!csv) bench::heading("Fig. 2 — mcalibrator on " + spec.name);
    TextTable table(csv ? std::vector<std::string>{"machine", "bytes", "cycles", "gradient"}
                        : std::vector<std::string>{"array size", "cycles/access (a)",
                                                   "gradient (b)"});
    for (std::size_t i = 0; i < curve.points(); ++i) {
        const std::string g = i < gradient.size() ? strf("%.3f", gradient[i]) : "-";
        if (csv) {
            table.add_row({spec.name, strf("%llu", (unsigned long long)curve.sizes[i]),
                           strf("%.4f", curve.cycles[i]), g});
        } else {
            table.add_row({format_bytes(curve.sizes[i]), strf("%.2f", curve.cycles[i]), g});
        }
    }
    std::printf("%s", csv ? table.render_csv().c_str() : table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
    // --csv emits plot-ready data (one row per machine/size) instead of
    // the aligned human tables.
    bool csv = false;
    for (int i = 1; i < argc; ++i)
        if (std::string_view(argv[i]) == "--csv") csv = true;

    run_machine(sim::zoo::dempsey(), 12 * MiB, csv);
    run_machine(sim::zoo::dunnington(), 36 * MiB, csv);
    if (!csv)
        bench::note(
            "\nShape check vs paper: Dempsey gradients peak sharply at the 16KB L1 and\n"
            "stay elevated across [512KB,2MB+] (physically indexed L2 smear); Dunnington\n"
            "peaks at the 32KB L1 and shows two overlapping elevated regions for the\n"
            "3MB L2 and 12MB L3.");
    return 0;
}
