// Ablation: what does a data TLB do to Servet's measurements? The paper's
// benchmarks don't model translation costs; on machines with slow page
// walks the TLB-reach crossing shows up inside the 1KB-stride cache sweep
// and can masquerade as a small cache level. This bench (i) demonstrates
// the phantom level on a Dempsey model with a 64-entry / 30-cycle TLB,
// (ii) measures the TLB explicitly with the dedicated detector, and (iii)
// shows that the explicit estimate identifies and explains the phantom.
#include "bench_util.hpp"

#include "base/table.hpp"
#include "base/units.hpp"
#include "core/cache_size.hpp"
#include "core/tlb_detect.hpp"
#include "platform/sim_platform.hpp"
#include "sim/zoo.hpp"

using namespace servet;

namespace {

std::vector<core::CacheLevelEstimate> detect(SimPlatform& platform) {
    core::McalibratorOptions mc;
    mc.max_size = 12 * MiB;
    core::CacheDetectOptions options;
    options.page_size = platform.page_size();
    const auto curve = core::run_mcalibrator(platform, mc);
    return core::detect_cache_levels(curve, options);
}

}  // namespace

int main() {
    bench::heading("Ablation — TLB influence on the cache-size sweep (Dempsey model)");

    sim::MachineSpec clean = sim::zoo::dempsey();
    sim::MachineSpec tlbful = clean;
    tlbful.tlb = {.enabled = true, .entries = 64, .miss_cycles = 30};

    TextTable table({"machine variant", "detected levels", "sizes"});
    for (const auto* variant : {&clean, &tlbful}) {
        SimPlatform platform(*variant);
        const auto levels = detect(platform);
        std::string sizes;
        for (std::size_t i = 0; i < levels.size(); ++i) {
            if (i) sizes += " / ";
            sizes += format_bytes(levels[i].size) + " (" + levels[i].method + ")";
        }
        table.add_row({variant->tlb.enabled ? "with 64-entry, 30-cycle TLB" : "no TLB",
                       strf("%zu", levels.size()), sizes});
    }
    std::printf("%s", table.render().c_str());

    SimPlatform platform(tlbful);
    const auto estimate = core::detect_tlb(platform);
    if (estimate) {
        std::printf(
            "\nExplicit TLB probe (page+line stride): %d entries, %.1f-cycle walk, "
            "reach %s.\n",
            estimate->entries, estimate->miss_cycles,
            format_bytes(estimate->reach_bytes).c_str());
        std::printf(
            "Any sweep rise of ~%.1f cycles/access located near %s is translation\n"
            "cost, not a cache level (1KB stride touches 4 elements per page, so the\n"
            "sweep sees walk/4 per access past reach).\n",
            estimate->miss_cycles / 4.0, format_bytes(estimate->reach_bytes).c_str());
    } else {
        std::printf("\nExplicit TLB probe found no translation-cost step.\n");
    }

    bench::note(
        "\nExpected shape: without a TLB the sweep finds exactly L1=16KB and L2=2MB;\n"
        "with the TLB enabled an extra ~7.5-cycle rise appears at the 256KB reach\n"
        "and may register as a phantom level. The dedicated probe pins the reach\n"
        "and walk cost so reports can annotate or discard such rises.");
    return 0;
}
