// Search-quality benchmark for the autotune search core (CI job
// perf-smoke, baseline BENCH_search.json). On the deterministic dempsey
// model it measures, for every tunable kernel, how many measured
// evaluations each strategy needs before it first lands on the
// exhaustive optimum (evals-to-best). Blind random is averaged over a
// fixed seed set; guided ranks the same candidates by the profile's
// analytic cost model first. The pinned metric is
//
//   advantage = mean over kernels of
//               (random mean evals-to-best / guided evals-to-best)
//
// i.e. how many times fewer measurements the profile prior buys at equal
// budget. Everything is simulated and seeded, so the number is exact and
// machine-independent; regression means the analytic models and the
// measured kernels drifted apart. --json emits the perf_smoke.py feed.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "autotune/kernels/kernels.hpp"
#include "autotune/search/strategy.hpp"
#include "base/cli.hpp"
#include "core/measure.hpp"
#include "core/profile.hpp"
#include "core/suite.hpp"
#include "msg/sim_network.hpp"
#include "platform/sim_platform.hpp"
#include "sim/zoo.hpp"

using namespace servet;

namespace {

struct KernelRow {
    std::string kernel;
    std::size_t space = 0;
    double optimum = 0;
    std::size_t guided_evals_to_best = 0;
    double random_mean_evals_to_best = 0;
    bool guided_found_optimum = false;
};

}  // namespace

int main(int argc, char** argv) {
    CliParser cli("bench_search_convergence: evals-to-optimum per search strategy "
                  "on the dempsey model's tunable kernels.");
    cli.add_option("seeds", "random-strategy seeds averaged per kernel", "8");
    cli.add_flag("json", "emit the perf_smoke.py JSON feed instead of text");
    if (!cli.parse(argc, argv)) return 2;
    const auto seeds = cli.option_int("seeds");
    if (!seeds || *seeds < 1) {
        std::fprintf(stderr, "--seeds must be an integer >= 1\n");
        return 2;
    }

    const sim::MachineSpec spec = sim::zoo::dempsey();
    SimPlatform platform(spec);
    msg::SimNetwork network(spec);

    // The guided strategy's prior: the model machine's own fast profile,
    // measured through the same substrate the kernels run on.
    core::SuiteOptions suite_options;
    suite_options.mcalibrator.repeats = 2;
    suite_options.shared_cache.only_with_core = 0;
    suite_options.mem_overhead.only_with_core = 0;
    const core::Profile profile =
        core::run_suite(platform, &network, suite_options)
            .to_profile(platform.name(), spec.n_cores, spec.page_size);

    core::MeasureEngine engine(&platform, &network, nullptr, nullptr);

    std::vector<KernelRow> rows;
    double advantage_sum = 0;
    bool all_found = true;
    for (const std::string& name : autotune::kernels::kernel_names()) {
        const auto kernel =
            autotune::kernels::make_kernel(name, profile, platform.core_count());
        if (!kernel) {
            std::fprintf(stderr, "bench_search_convergence: unknown kernel %s\n",
                         name.c_str());
            return 2;
        }

        autotune::search::SearchOptions options;
        options.engine = &engine;

        options.strategy = autotune::search::Strategy::Exhaustive;
        const auto exhaustive = autotune::search::run_search(*kernel, options);
        if (!exhaustive) {
            std::fprintf(stderr, "bench_search_convergence: %s admits no config\n",
                         name.c_str());
            return 2;
        }

        options.strategy = autotune::search::Strategy::Guided;
        const auto guided = autotune::search::run_search(*kernel, options);

        KernelRow row;
        row.kernel = name;
        row.space = exhaustive->space_size;
        row.optimum = exhaustive->best_cost;
        row.guided_evals_to_best = guided->evals_to_best;
        row.guided_found_optimum = guided->best_cost == exhaustive->best_cost;
        all_found = all_found && row.guided_found_optimum;

        options.strategy = autotune::search::Strategy::Random;
        std::size_t random_total = 0;
        for (long long seed = 1; seed <= *seeds; ++seed) {
            options.seed = static_cast<std::uint64_t>(seed);
            const auto random = autotune::search::run_search(*kernel, options);
            random_total += random->evals_to_best;
        }
        row.random_mean_evals_to_best =
            static_cast<double>(random_total) / static_cast<double>(*seeds);

        advantage_sum += row.random_mean_evals_to_best /
                         static_cast<double>(row.guided_evals_to_best);
        rows.push_back(row);
    }
    const double advantage = advantage_sum / static_cast<double>(rows.size());

    const std::string workload =
        "dempsey-" + std::to_string(rows.size()) + "kernels-" +
        std::to_string(*seeds) + "seeds";
    if (cli.flag("json")) {
        std::printf("{\n");
        std::printf("  \"benchmark\": \"search_convergence\",\n");
        std::printf("  \"workload\": \"%s\",\n", workload.c_str());
        std::printf("  \"advantage\": %.4f,\n", advantage);
        std::printf("  \"guided_found_optimum\": %s,\n", all_found ? "true" : "false");
        std::printf("  \"kernels\": [\n");
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const KernelRow& r = rows[i];
            std::printf("    {\"kernel\": \"%s\", \"space\": %zu, "
                        "\"guided_evals_to_best\": %zu, "
                        "\"random_mean_evals_to_best\": %.2f, "
                        "\"guided_found_optimum\": %s}%s\n",
                        r.kernel.c_str(), r.space, r.guided_evals_to_best,
                        r.random_mean_evals_to_best,
                        r.guided_found_optimum ? "true" : "false",
                        i + 1 == rows.size() ? "" : ",");
        }
        std::printf("  ]\n}\n");
    } else {
        std::printf("bench_search_convergence: %s\n", workload.c_str());
        std::printf("  %-10s %6s %10s %16s %8s\n", "kernel", "space", "guided@",
                    "random@ (mean)", "optimum");
        for (const KernelRow& r : rows)
            std::printf("  %-10s %6zu %10zu %16.2f %8s\n", r.kernel.c_str(), r.space,
                        r.guided_evals_to_best, r.random_mean_evals_to_best,
                        r.guided_found_optimum ? "yes" : "MISSED");
        std::printf("  advantage (random/guided evals-to-best): %.2fx\n", advantage);
    }
    // The contract perf-smoke pins: the prior must actually help, and
    // guided must end at the true optimum — a pretty advantage over a
    // wrong answer is worthless.
    if (!all_found) {
        std::fprintf(stderr, "bench_search_convergence: guided missed the exhaustive "
                     "optimum on at least one kernel\n");
        return 1;
    }
    return 0;
}
