// Ablation (Section III-A's stride rationale): why 1KB? Sweeping the probe
// stride with the hardware prefetcher on and off shows that strides within
// prefetch reach (<= 512B, per the paper) hide capacity misses and corrupt
// the measurement, while 1KB is immune.
#include "bench_util.hpp"

#include "base/table.hpp"
#include "base/units.hpp"
#include "platform/sim_platform.hpp"
#include "sim/zoo.hpp"

using namespace servet;

int main() {
    bench::heading("Ablation — probe stride vs prefetcher (Dempsey, 8MB array)");
    // 8MB is far past the 2MB L2: an honest probe must report ~memory
    // latency per access.
    TextTable table({"stride", "cycles (prefetch on)", "cycles (prefetch off)",
                     "hidden fraction"});

    for (const Bytes stride : {64ULL, 128ULL, 256ULL, 512ULL, 1024ULL, 2048ULL}) {
        sim::MachineSpec on = sim::zoo::dempsey();
        on.measurement_jitter = 0;
        sim::MachineSpec off = on;
        off.prefetcher.enabled = false;

        SimPlatform with(on);
        SimPlatform without(off);
        const Cycles c_on = with.traverse_cycles(0, 8 * MiB, stride, 2, true);
        const Cycles c_off = without.traverse_cycles(0, 8 * MiB, stride, 2, true);
        table.add_row({format_bytes(stride), strf("%.1f", c_on), strf("%.1f", c_off),
                       strf("%.0f%%", 100.0 * (1.0 - c_on / c_off))});
    }
    std::printf("%s", table.render().c_str());
    bench::note(
        "\nExpected shape: strides up to the prefetcher reach (512B) hide most of the\n"
        "miss cost — a cache-size sweep at those strides would see no transition at\n"
        "all. At the paper's 1KB stride the prefetcher is inert and the probe\n"
        "reports the true memory latency.");
    return 0;
}
