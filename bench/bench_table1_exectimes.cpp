// Table I: execution times of each benchmark on the two multicore
// clusters. The paper reports wall-clock minutes on real hardware
// (Dunnington 2/11/20/22 = 55 total; Finis Terrae 2/3/5/33 = 43); our
// substrate is a simulator, so absolute numbers differ wildly — the
// reproducible part is the *relative* structure: the pairwise phases
// dominate, and they are the ones that grow with core count.
#include "bench_util.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>

#include "base/table.hpp"
#include "core/suite.hpp"
#include "msg/sim_network.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "platform/sim_platform.hpp"
#include "sim/zoo.hpp"

using namespace servet;

namespace {

const char* kPhases[] = {"cache_size", "shared_caches", "mem_overhead", "comm_costs"};

std::map<std::string, Seconds> run_machine(const sim::MachineSpec& spec, int jobs) {
    SimPlatform platform(spec);
    msg::SimNetwork network(platform.spec());
    core::SuiteOptions options;
    options.mcalibrator.max_size = 3 * spec.levels.back().geometry.size;
    options.jobs = jobs;
    return core::run_suite(platform, &network, options).phase_seconds;
}

}  // namespace

int main(int argc, char** argv) {
    // --jobs N parallelizes the measurement engine; the phase rows then
    // report summed task time while the wall row shows the actual elapsed
    // time, which is the serial-vs-parallel comparison worth recording.
    int jobs = 1;
    const char* trace_path = nullptr;
    const char* metrics_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
            jobs = std::atoi(argv[i + 1]);
        if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) trace_path = argv[i + 1];
        if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc)
            metrics_path = argv[i + 1];
    }
    if (jobs < 1) jobs = 1;
    if (trace_path != nullptr) obs::tracer().set_enabled(true);

    const auto wall_start = std::chrono::steady_clock::now();
    const auto dunnington = run_machine(sim::zoo::dunnington(), jobs);
    const auto ft = run_machine(sim::zoo::finis_terrae(2), jobs);
    const double wall_seconds =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            std::chrono::steady_clock::now() - wall_start)
            .count();

    bench::heading("Table I — execution times of all the benchmarks");
    TextTable table({"benchmark", "dunnington (s, sim)", "finis-terrae (s, sim)",
                     "paper dunnington", "paper finis-terrae"});
    const char* paper_dunnington[] = {"2'", "11'", "20'", "22'"};
    const char* paper_ft[] = {"2'", "3'", "5'", "33'"};
    double total_d = 0;
    double total_ft = 0;
    for (int i = 0; i < 4; ++i) {
        const double d = dunnington.count(kPhases[i]) ? dunnington.at(kPhases[i]) : 0.0;
        const double f = ft.count(kPhases[i]) ? ft.at(kPhases[i]) : 0.0;
        total_d += d;
        total_ft += f;
        table.add_row({kPhases[i], strf("%.1f", d), strf("%.1f", f), paper_dunnington[i],
                       paper_ft[i]});
    }
    table.add_row({"Total", strf("%.1f", total_d), strf("%.1f", total_ft), "55'", "43'"});
    std::printf("%s", table.render().c_str());
    std::printf("\nwall-clock for both machines at --jobs %d: %.1f s\n", jobs, wall_seconds);

    bench::note(
        "\nReading vs paper: on real hardware every phase pays wall-clock for every\n"
        "probe, and the O(pairs) phases dominate (Dunnington 53'/55' pairwise; FT's\n"
        "comm phase grows to 33' with the 32-core network probes). In this repo the\n"
        "trace-driven phases (cache sweep, shared caches) carry the simulation cost\n"
        "while the analytic memory/comm models answer instantly — the preserved\n"
        "property is that cost scales with probe count, and that the suite runs\n"
        "once at installation time so absolute cost is unimportant (Section IV-E).");

    if (trace_path != nullptr) {
        obs::tracer().set_enabled(false);
        if (!obs::tracer().write_chrome_trace(trace_path)) {
            std::fprintf(stderr, "cannot write %s\n", trace_path);
            return 1;
        }
        std::printf("trace written to %s\n", trace_path);
    }
    if (metrics_path != nullptr) {
        if (!obs::write_metrics_json(metrics_path)) {
            std::fprintf(stderr, "cannot write %s\n", metrics_path);
            return 1;
        }
        std::printf("metrics written to %s\n", metrics_path);
    }
    return 0;
}
