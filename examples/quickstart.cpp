// Quickstart: run the whole Servet suite against a machine (a simulated
// model by default, or this host with --machine native), print a
// human-readable hardware report, and write the profile file that
// autotuned applications consult at run time (Section IV-E).
//
//   quickstart [--machine dunnington] [--out servet.profile] [--fast]
#include <cstdio>

#include "base/cli.hpp"
#include "base/table.hpp"
#include "base/units.hpp"
#include "core/suite.hpp"
#include "example_util.hpp"

using namespace servet;

namespace {

void print_report(const core::Profile& profile) {
    std::printf("Machine: %s (%d cores, %s pages)\n\n", profile.machine.c_str(),
                profile.cores, format_bytes(profile.page_size).c_str());

    std::printf("Cache hierarchy:\n");
    for (std::size_t i = 0; i < profile.caches.size(); ++i) {
        const auto& cache = profile.caches[i];
        std::printf("  L%zu: %s (detected via %s) — ", i + 1,
                    format_bytes(cache.size).c_str(), cache.method.c_str());
        if (cache.groups.empty()) {
            std::printf("private per core\n");
        } else {
            std::printf("shared by groups ");
            for (const auto& group : cache.groups) {
                std::printf("{");
                for (std::size_t j = 0; j < group.size(); ++j)
                    std::printf("%s%d", j ? "," : "", group[j]);
                std::printf("} ");
            }
            std::printf("\n");
        }
    }

    std::printf("\nMemory:\n  isolated-core copy bandwidth: %s\n",
                format_bandwidth(profile.memory.reference_bandwidth).c_str());
    for (std::size_t t = 0; t < profile.memory.tiers.size(); ++t) {
        const auto& tier = profile.memory.tiers[t];
        std::printf("  contention tier %zu: %s per core when pairs collide; groups ",
                    t, format_bandwidth(tier.bandwidth).c_str());
        for (const auto& group : tier.groups) {
            std::printf("{");
            for (std::size_t j = 0; j < group.size(); ++j)
                std::printf("%s%d", j ? "," : "", group[j]);
            std::printf("} ");
        }
        std::printf("\n");
    }

    if (!profile.comm.empty()) {
        std::printf("\nCommunication layers (fastest first):\n");
        for (std::size_t l = 0; l < profile.comm.size(); ++l) {
            const auto& layer = profile.comm[l];
            std::printf("  layer %zu: %s probe latency, %zu pairs", l,
                        format_latency(layer.latency).c_str(), layer.pairs.size());
            if (!layer.slowdown.empty())
                std::printf(", slowdown x%.1f at %zu concurrent messages",
                            layer.slowdown.back(), layer.slowdown.size());
            std::printf("\n");
        }
    }

    std::printf("\nBenchmark execution times (Table I analogue):\n");
    for (const auto& [phase, seconds] : profile.phase_seconds)
        std::printf("  %-16s %.1f s\n", phase.c_str(), seconds);
}

}  // namespace

int main(int argc, char** argv) {
    CliParser cli("Servet quickstart: profile a machine and write its profile file.");
    cli.add_option("machine", examples::kMachineHelp, "dunnington");
    cli.add_option("out", "profile file to write", "servet.profile");
    cli.add_flag("fast", "smaller sweep for a quick look");
    if (!cli.parse(argc, argv)) return 1;

    auto target = examples::make_target(cli.option("machine"));
    if (!target) {
        std::fprintf(stderr, "unknown machine '%s' (choose: %s)\n",
                     cli.option("machine").c_str(), examples::kMachineHelp);
        return 1;
    }

    core::SuiteOptions options;
    if (cli.flag("fast")) {
        // Keep the full size sweep (truncating it can cut an LLC
        // transition in half); save time on repeats and pair coverage.
        options.mcalibrator.repeats = 2;
        options.shared_cache.only_with_core = 0;
        options.mem_overhead.only_with_core = 0;
    }
    const core::SuiteResult result =
        core::run_suite(*target->platform, target->network.get(), options);
    const core::Profile profile =
        result.to_profile(target->platform->name(), target->platform->core_count(),
                          target->platform->page_size());

    print_report(profile);

    const std::string& path = cli.option("out");
    if (profile.save(path)) {
        std::printf("\nProfile written to %s — load it with core::Profile::load() to\n"
                    "drive the autotune advisors without re-measuring.\n",
                    path.c_str());
    } else {
        std::fprintf(stderr, "could not write %s\n", path.c_str());
        return 1;
    }
    return 0;
}
