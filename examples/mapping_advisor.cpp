// Process-mapping advisor: the paper's headline autotuning use case
// (Sections II and V). Profiles a machine (or loads a saved profile),
// builds an application communication graph, and compares the naive
// rank-order placement against the profile-driven mapping — pricing both
// with the measured per-layer latencies and memory-contention groups.
//
//   mapping_advisor [--machine dunnington] [--profile file]
//                   [--app stencil|ring|alltoall] [--ranks N]
//                   [--message 32KB] [--memory-weight 0.25]
#include <cstdio>

#include <numeric>

#include "autotune/mapping.hpp"
#include "base/cli.hpp"
#include "base/table.hpp"
#include "base/units.hpp"
#include "core/suite.hpp"
#include "example_util.hpp"

using namespace servet;

namespace {

core::Profile obtain_profile(const std::string& machine, const std::string& profile_path) {
    if (!profile_path.empty()) {
        if (auto loaded = core::Profile::load(profile_path)) return *loaded;
        std::fprintf(stderr, "could not load %s; measuring instead\n", profile_path.c_str());
    }
    auto target = examples::make_target(machine);
    if (!target) {
        std::fprintf(stderr, "unknown machine '%s'\n", machine.c_str());
        std::exit(1);
    }
    core::SuiteOptions options;
    const core::SuiteResult result =
        core::run_suite(*target->platform, target->network.get(), options);
    return result.to_profile(target->platform->name(), target->platform->core_count(),
                             target->platform->page_size());
}

autotune::CommGraph build_app(const std::string& app, int ranks) {
    if (app == "ring") return autotune::CommGraph::ring(ranks);
    if (app == "alltoall") return autotune::CommGraph::all_to_all(ranks);
    // Default: the squarest 2D stencil decomposition of `ranks`.
    int rows = 1;
    for (int r = 1; r * r <= ranks; ++r)
        if (ranks % r == 0) rows = r;
    return autotune::CommGraph::stencil2d(rows, ranks / rows);
}

}  // namespace

int main(int argc, char** argv) {
    CliParser cli("Servet mapping advisor: place MPI ranks using measured topology.");
    cli.add_option("machine", examples::kMachineHelp, "dunnington");
    cli.add_option("profile", "saved profile file (skips measurement)", "");
    cli.add_option("app", "communication pattern: stencil | ring | alltoall", "stencil");
    cli.add_option("ranks", "number of application ranks", "12");
    cli.add_option("message", "message size used to price edges", "32KB");
    cli.add_option("memory-weight", "memory-contention weight in the objective", "0.25");
    if (!cli.parse(argc, argv)) return 1;

    const core::Profile profile =
        obtain_profile(cli.option("machine"), cli.option("profile"));

    const int ranks = static_cast<int>(cli.option_int("ranks").value_or(12));
    if (ranks < 1 || ranks > profile.cores) {
        std::fprintf(stderr, "ranks must be in [1, %d]\n", profile.cores);
        return 1;
    }
    const autotune::CommGraph graph = build_app(cli.option("app"), ranks);

    autotune::MappingOptions options;
    options.message_size = parse_bytes(cli.option("message")).value_or(32 * KiB);
    options.memory_weight = cli.option_double("memory-weight").value_or(0.25);

    // Baseline: ranks in core order, the default of an unaware launcher.
    std::vector<CoreId> naive(static_cast<std::size_t>(ranks));
    std::iota(naive.begin(), naive.end(), 0);
    const double naive_cost = autotune::placement_cost(profile, graph, naive, options);

    const autotune::MappingResult tuned = autotune::map_processes(profile, graph, options);

    std::printf("Application: %s with %d ranks on %s (%d cores)\n", cli.option("app").c_str(),
                ranks, profile.machine.c_str(), profile.cores);
    std::printf("Edge pricing: %s messages, memory weight %.2f\n\n",
                format_bytes(options.message_size).c_str(), options.memory_weight);

    TextTable table({"placement", "objective (s-equivalents)", "vs naive"});
    table.add_row({"naive (rank = core)", strf("%.3e", naive_cost), "1.00x"});
    table.add_row({"greedy seed", strf("%.3e", tuned.greedy_cost),
                   strf("%.2fx", naive_cost > 0 ? tuned.greedy_cost / naive_cost : 1.0)});
    table.add_row({"servet-tuned", strf("%.3e", tuned.cost),
                   strf("%.2fx", naive_cost > 0 ? tuned.cost / naive_cost : 1.0)});
    std::printf("%s\n", table.render().c_str());

    std::printf("Tuned placement (rank -> core):\n  ");
    for (int r = 0; r < ranks; ++r)
        std::printf("%d->%d ", r, tuned.core_of_rank[static_cast<std::size_t>(r)]);
    std::printf("\n\nWhy it wins: heavy edges land on the fastest measured layers\n"
                "(shared-cache pairs first), and ranks spread across the memory\n"
                "contention groups the overhead benchmark identified.\n");
    return 0;
}
