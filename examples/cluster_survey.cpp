// Cluster survey: run the full suite over every built-in machine model and
// print a side-by-side comparison — the view a site administrator would
// generate once at installation time for all partitions of a cluster
// (Section IV-E), plus each machine's message-aggregation and
// core-throttling advice derived from its profile.
//
//   cluster_survey [--fast]
#include <cstdio>

#include "autotune/aggregation.hpp"
#include "autotune/throttle.hpp"
#include "base/cli.hpp"
#include "base/table.hpp"
#include "base/units.hpp"
#include "core/suite.hpp"
#include "msg/sim_network.hpp"
#include "platform/sim_platform.hpp"
#include "sim/zoo.hpp"

using namespace servet;

int main(int argc, char** argv) {
    CliParser cli("Servet cluster survey: profile every built-in machine model.");
    cli.add_flag("fast", "probe only pairs containing core 0");
    if (!cli.parse(argc, argv)) return 1;

    std::vector<core::Profile> profiles;
    for (const sim::MachineSpec& spec :
         {sim::zoo::dunnington(), sim::zoo::finis_terrae(2), sim::zoo::dempsey()}) {
        SimPlatform platform(spec);
        msg::SimNetwork network(platform.spec());
        core::SuiteOptions options;
        options.mcalibrator.max_size = 3 * spec.levels.back().geometry.size;
        if (cli.flag("fast")) {
            options.shared_cache.only_with_core = 0;
            options.mem_overhead.only_with_core = 0;
        }
        std::printf("profiling %s ...\n", spec.name.c_str());
        const core::SuiteResult result =
            core::run_suite(platform, &network, options);
        profiles.push_back(result.to_profile(spec.name, spec.n_cores, spec.page_size));
    }

    TextTable table({"machine", "cores", "caches (sizes)", "mem tiers", "comm layers",
                     "suite time"});
    for (const core::Profile& profile : profiles) {
        std::string caches;
        for (std::size_t i = 0; i < profile.caches.size(); ++i) {
            if (i) caches += "/";
            caches += format_bytes(profile.caches[i].size);
        }
        double total = 0;
        for (const auto& [phase, seconds] : profile.phase_seconds) total += seconds;
        table.add_row({profile.machine, strf("%d", profile.cores), caches,
                       strf("%zu", profile.memory.tiers.size()),
                       strf("%zu", profile.comm.size()), strf("%.1fs", total)});
    }
    std::printf("\n%s\n", table.render().c_str());

    // Derived advice per machine.
    for (const core::Profile& profile : profiles) {
        std::printf("%s:\n", profile.machine.c_str());
        if (!profile.memory.tiers.empty()) {
            if (const auto advice = autotune::advise_core_throttle(profile, 0)) {
                std::printf(
                    "  memory: use at most %d concurrent streamers per tier-0 group "
                    "(aggregate saturates at %s)\n",
                    advice->recommended_cores,
                    format_bandwidth(advice->aggregate_by_n.back()).c_str());
            }
        }
        if (!profile.comm.empty()) {
            // Latency-dominated small messages: the regime where gathering
            // pays off on poorly scaling interconnects (Section III-D).
            const auto& slowest = profile.comm.back();
            if (!slowest.pairs.empty()) {
                const auto advice = autotune::advise_aggregation(
                    profile, slowest.pairs.front(), 1 * KiB, 16);
                if (advice) {
                    std::printf(
                        "  comm: 16 concurrent 1KB messages on the slowest layer cost "
                        "%.1fx one gathered 16KB message -> %s\n",
                        advice->benefit,
                        advice->aggregate ? "gather small messages" : "send individually");
                }
            }
        }
    }
    return 0;
}
