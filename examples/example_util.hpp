// Shared helpers for the example applications: machine selection by name
// (any zoo model, or the real host via the native backend).
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "msg/network.hpp"
#include "msg/sim_network.hpp"
#include "msg/thread_network.hpp"
#include "platform/native_platform.hpp"
#include "platform/platform.hpp"
#include "platform/sim_platform.hpp"
#include "sim/zoo.hpp"

namespace servet::examples {

struct Target {
    std::unique_ptr<Platform> platform;
    std::unique_ptr<msg::Network> network;
};

/// Build the platform + network for `name`: one of "dunnington",
/// "finis-terrae", "finis-terrae-2n", "dempsey", "athlon3200", or
/// "native" (measure this host). Returns nullopt for unknown names.
inline std::optional<Target> make_target(const std::string& name) {
    Target target;
    if (name == "native") {
        auto platform = std::make_unique<NativePlatform>();
        target.network = std::make_unique<msg::ThreadNetwork>(platform->core_count());
        target.platform = std::move(platform);
        return target;
    }
    std::optional<sim::MachineSpec> spec;
    if (name == "dunnington") spec = sim::zoo::dunnington();
    if (name == "finis-terrae") spec = sim::zoo::finis_terrae();
    if (name == "finis-terrae-2n") spec = sim::zoo::finis_terrae(2);
    if (name == "dempsey") spec = sim::zoo::dempsey();
    if (name == "athlon3200") spec = sim::zoo::athlon3200();
    if (!spec) return std::nullopt;
    auto platform = std::make_unique<SimPlatform>(*spec);
    if (spec->n_cores > 1) target.network = std::make_unique<msg::SimNetwork>(platform->spec());
    target.platform = std::move(platform);
    return target;
}

inline constexpr const char* kMachineHelp =
    "dunnington | finis-terrae | finis-terrae-2n | dempsey | athlon3200 | native";

}  // namespace servet::examples
