// Capstone example: configure a complete mini-application from one Servet
// profile, the workflow the paper's Section V sketches. A Jacobi-style
// iteration has three cost components, and each is tuned by a different
// measured parameter:
//
//   * compute  — sweep of the local subdomain: blocked with the tiling
//                advisor so the working set lives in cache;
//   * halo     — neighbour exchange: placed with the mapping advisor so
//                heavy edges ride the fast measured layers;
//   * residual — a reduction to rank 0: algorithm chosen by pricing
//                binomial vs hierarchy-aware trees from the profile.
//
// Every component is then *measured* (traversals on the platform, rounds
// on the network) under both the naive and the tuned configuration.
//
//   autotuned_stencil [--machine dunnington] [--ranks 12] [--halo 32KB]
#include <cstdio>

#include <algorithm>
#include <numeric>

#include "autotune/collectives.hpp"
#include "autotune/mapping.hpp"
#include "autotune/tiling.hpp"
#include "base/cli.hpp"
#include "base/table.hpp"
#include "base/units.hpp"
#include "core/suite.hpp"
#include "example_util.hpp"

using namespace servet;

namespace {

Seconds measure_exchange(msg::Network& network, const autotune::CommGraph& graph,
                         const std::vector<CoreId>& placement, Bytes halo) {
    Seconds total = 0;
    for (const auto& round : autotune::edge_rounds(graph)) {
        std::vector<CorePair> transfers;
        for (const auto& edge : round)
            transfers.push_back({placement[static_cast<std::size_t>(edge.rank_a)],
                                 placement[static_cast<std::size_t>(edge.rank_b)]});
        const auto latencies = network.concurrent_latency(transfers, halo, 5);
        total += *std::max_element(latencies.begin(), latencies.end());
    }
    return total;
}

}  // namespace

int main(int argc, char** argv) {
    CliParser cli("Servet autotuned stencil: configure a mini-app from one profile.");
    cli.add_option("machine", examples::kMachineHelp, "dunnington");
    cli.add_option("ranks", "application ranks", "12");
    cli.add_option("halo", "halo message size", "32KB");
    if (!cli.parse(argc, argv)) return 1;

    auto target = examples::make_target(cli.option("machine"));
    if (!target || !target->network) {
        std::fprintf(stderr, "need a multicore machine (choose: %s)\n",
                     examples::kMachineHelp);
        return 1;
    }
    Platform& platform = *target->platform;
    msg::Network& network = *target->network;

    std::printf("== measuring %s once (install-time profile) ==\n",
                platform.name().c_str());
    const core::SuiteResult suite = core::run_suite(platform, &network, {});
    const core::Profile profile =
        suite.to_profile(platform.name(), platform.core_count(), platform.page_size());

    const int ranks =
        std::clamp<int>(static_cast<int>(cli.option_int("ranks").value_or(12)), 2,
                        profile.cores);
    const Bytes halo = parse_bytes(cli.option("halo")).value_or(32 * KiB);

    // Application shape: squarest 2D decomposition.
    int rows = 1;
    for (int r = 1; r * r <= ranks; ++r)
        if (ranks % r == 0) rows = r;
    const autotune::CommGraph graph = autotune::CommGraph::stencil2d(rows, ranks / rows);

    std::printf("== configuring a %dx%d stencil on %d ranks ==\n\n", rows, ranks / rows,
                ranks);
    TextTable table({"component", "naive", "servet-tuned", "improvement"});

    // --- compute: untiled sweep vs L1-tiled sweep, measured as traversal
    // cycles per access over the respective working sets.
    const auto tiles = autotune::plan_tiles(profile);
    const Bytes untiled_ws = 4 * MiB;  // a subdomain slab far beyond cache
    Bytes tiled_ws = 16 * KiB;
    if (!tiles.empty())
        tiled_ws = std::max<Bytes>(
            Bytes{4 * KiB},
            static_cast<Bytes>(3) * tiles.front().tile_bytes / KiB * KiB);
    const Cycles naive_compute = platform.traverse_cycles(0, untiled_ws, 1 * KiB, 3, true);
    const Cycles tuned_compute = platform.traverse_cycles(0, tiled_ws, 1 * KiB, 3, true);
    table.add_row({"compute (cycles/access)", strf("%.1f", naive_compute),
                   strf("%.1f", tuned_compute),
                   strf("%.1fx", naive_compute / tuned_compute)});

    // --- halo exchange: identity placement vs mapped placement.
    std::vector<CoreId> naive_placement(static_cast<std::size_t>(ranks));
    std::iota(naive_placement.begin(), naive_placement.end(), 0);
    autotune::MappingOptions mapping;
    mapping.message_size = halo;
    const autotune::MappingResult mapped = autotune::map_processes(profile, graph, mapping);
    const Seconds naive_halo = measure_exchange(network, graph, naive_placement, halo);
    const Seconds tuned_halo = measure_exchange(network, graph, mapped.core_of_rank, halo);
    table.add_row({"halo exchange / step", format_latency(naive_halo),
                   format_latency(tuned_halo), strf("%.2fx", naive_halo / tuned_halo)});

    // --- residual reduction: binomial vs profile-chosen tree, executed on
    // the tuned placement's cores.
    std::vector<CoreId> cores = mapped.core_of_rank;
    const Seconds naive_reduce = autotune::run_schedule(
        network, autotune::reduce_binomial(cores.front(), cores), 1 * KiB, 5);
    const autotune::Schedule hierarchical =
        autotune::reduce_hierarchical(cores.front(), cores, profile);
    const Seconds tuned_reduce = autotune::run_schedule(network, hierarchical, 1 * KiB, 5);
    table.add_row({"residual reduce / step", format_latency(naive_reduce),
                   format_latency(tuned_reduce),
                   strf("%.2fx", naive_reduce / tuned_reduce)});

    std::printf("%s", table.render().c_str());
    std::printf(
        "\nEverything above came from one profile: tile sizes from the measured cache\n"
        "hierarchy, the placement from measured per-layer latencies and contention\n"
        "groups, and the reduction tree from the measured layer structure.\n");
    return 0;
}
