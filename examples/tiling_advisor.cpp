// Tiling advisor: Section V's "Tiling is one of the most widely used
// optimization techniques and our suite can help ... by providing all the
// cache sizes in a portable way". Detects the hierarchy, derives a
// blocked-matmul tile plan per level, then *validates* the plan on the
// same platform: traversals of the tile working set must run at that
// level's speed, while twice the footprint must not.
//
//   tiling_advisor [--machine dunnington] [--element-bytes 8] [--tiles 3]
#include <cstdio>

#include "autotune/tiling.hpp"
#include "base/cli.hpp"
#include "base/table.hpp"
#include "base/units.hpp"
#include "core/cache_size.hpp"
#include "example_util.hpp"

using namespace servet;

int main(int argc, char** argv) {
    CliParser cli("Servet tiling advisor: cache-aware block sizes for tiled kernels.");
    cli.add_option("machine", examples::kMachineHelp, "dunnington");
    cli.add_option("element-bytes", "bytes per matrix element", "8");
    cli.add_option("tiles", "tiles simultaneously live (3 for C += A*B)", "3");
    if (!cli.parse(argc, argv)) return 1;

    auto target = examples::make_target(cli.option("machine"));
    if (!target) {
        std::fprintf(stderr, "unknown machine '%s'\n", cli.option("machine").c_str());
        return 1;
    }
    Platform& platform = *target->platform;

    // Step 1: measure the cache hierarchy (Section III-A).
    const auto levels = core::detect_cache_levels(platform, {});
    if (levels.empty()) {
        std::fprintf(stderr, "no cache levels detected\n");
        return 1;
    }

    core::Profile profile;
    profile.machine = platform.name();
    profile.cores = platform.core_count();
    profile.page_size = platform.page_size();
    for (const auto& level : levels)
        profile.caches.push_back({level.size, level.method, {}});

    // Step 2: derive the plan.
    autotune::TilingRequest request;
    request.element_bytes =
        static_cast<std::size_t>(cli.option_int("element-bytes").value_or(8));
    request.tiles_in_flight = static_cast<int>(cli.option_int("tiles").value_or(3));
    const auto plan = autotune::plan_tiles(profile, request);

    std::printf("Tile plan for %s (%d %zu-byte tiles in flight, %.0f%% occupancy):\n\n",
                profile.machine.c_str(), request.tiles_in_flight, request.element_bytes,
                100 * request.occupancy);
    TextTable table({"level", "cache", "tile (elements)", "tile footprint",
                     "fits cycles/access", "2x footprint cycles"});

    // Step 3: validate — traverse the combined tile working set; it should
    // cost about this level's hit time, while twice that size should cost
    // noticeably more (it spills to the next level).
    for (const auto& choice : plan) {
        const Bytes working_set = static_cast<Bytes>(request.tiles_in_flight) *
                                  choice.tile_bytes / KiB * KiB;
        const Bytes probe = std::max(working_set, Bytes{4 * KiB});
        const Cycles fits = platform.traverse_cycles(0, probe, 1 * KiB, 3, true);
        const Cycles spills = platform.traverse_cycles(0, 2 * probe + choice.cache_size / 2,
                                                       1 * KiB, 3, true);
        table.add_row({strf("L%zu", choice.level + 1), format_bytes(choice.cache_size),
                       strf("%dx%d", choice.tile_elements, choice.tile_elements),
                       format_bytes(choice.tile_bytes), strf("%.1f", fits),
                       strf("%.1f", spills)});
    }
    std::printf("%s", table.render().c_str());
    std::printf(
        "\nReading the table: a tile plan is sound when the 'fits' column shows the\n"
        "level's hit latency and the '2x footprint' column is clearly slower —\n"
        "the blocked kernel keeps its working set inside the level it targets.\n");
    return 0;
}
