// The servet command-line tool: run the suite once at installation time,
// store the profile, and consult it later — the deployment model of
// Section IV-E. Subcommands:
//
//   servet machines                       list available targets
//   servet profile  [--machine M] [--out FILE] [--fast] [--robust N]
//   servet report   --profile FILE       pretty-print a stored profile
//   servet tlb      [--machine M]        measure the data TLB
//   servet price    --profile FILE --from A --to B --size S
//                                         cost one message from the profile
//   servet metrics  [--machine M] [--out FILE]
//                                         run the suite, summarize obs metrics
//   servet watch    --run-dir D [--ticks N]
//                                         re-measure periodically, journal the
//                                         time series, judge drift
//   servet validate --profile FILE       check a profile against physical
//                                         invariants; --repair re-measures,
//                                         --against diffs two profiles
//   servet serve    [--port P] [--store-dir D]
//                                         long-running profile service
//                                         (HTTP/1.1 + JSON; see docs/serve.md)
//   servet fetch    --port P --fingerprint FP [--out FILE]
//                                         download a profile from a serve
//                                         store (conditional GET via ETag)
//   servet tune     --kernel K --strategy S [--budget N]
//                                         search a tunable kernel's config
//                                         space (see docs/autotune.md)
#include <algorithm>
#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>

#include "autotune/collective_select.hpp"
#include "autotune/kernels/kernels.hpp"
#include "autotune/mapping.hpp"
#include "autotune/search/strategy.hpp"
#include "base/cli.hpp"
#include "base/fault_plan.hpp"
#include "base/fs.hpp"
#include "base/table.hpp"
#include "base/units.hpp"
#include "core/cluster.hpp"
#include "core/journal.hpp"
#include "core/report.hpp"
#include "core/measure.hpp"
#include "core/suite.hpp"
#include "core/tlb_detect.hpp"
#include "core/validate.hpp"
#include "exec/pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "msg/faulty_network.hpp"
#include "msg/sim_network.hpp"
#include "msg/thread_network.hpp"
#include "platform/decorators.hpp"
#include "platform/native_platform.hpp"
#include "platform/platform_file.hpp"
#include "platform/sim_platform.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "sim/zoo.hpp"
#include "watch/watch.hpp"

using namespace servet;

namespace {

/// `servet profile` wrote a profile, but at least one phase failed and
/// the file's [errors] section lists it. Distinct from 1 (hard failure,
/// nothing usable written) so scripts can keep the partial profile.
constexpr int kExitPartialProfile = 3;

/// `servet profile --resume` refused: the journal under --run-dir was
/// written by a run with different options or on a different machine.
/// Distinct from 1 so scripts can distinguish "wrong invocation" from
/// "use a fresh --run-dir".
constexpr int kExitIncompatibleJournal = 2;

/// `servet validate` found at least one Error-severity violation (and
/// --repair, if given, could not clear it).
constexpr int kExitInvalidProfile = 2;

/// `servet profile --platform FILE` could not parse the platform file.
/// Same "wrong invocation" family as the other exit-2 paths; the stderr
/// line carries the stable PlatformError code.
constexpr int kExitInvalidPlatform = 2;

/// `servet watch` confirmed drift on at least one metric, or `servet
/// validate --against` did. Distinct from every other code so a cron job
/// or CI step can branch on "this machine's profile went stale"
/// specifically.
constexpr int kExitDrift = 4;

/// The measured result is fine but a requested side export (--trace,
/// --metrics JSON) could not be written. The primary product (profile,
/// summary table) was still produced; partial-profile (3) and
/// invalid-input (2) conditions take precedence.
constexpr int kExitExportFailed = 5;

struct Target {
    std::unique_ptr<Platform> platform;
    std::unique_ptr<msg::Network> network;
    /// Filled for simulated targets; cluster handling (sampled probe
    /// pairs, topology annotation) keys off spec->topology.enabled().
    std::optional<sim::MachineSpec> spec;
};

Target make_sim_target(const sim::MachineSpec& spec) {
    Target target;
    target.platform = std::make_unique<SimPlatform>(spec);
    if (spec.n_cores > 1) target.network = std::make_unique<msg::SimNetwork>(spec);
    target.spec = spec;
    return target;
}

std::optional<Target> make_target(const std::string& name) {
    if (name == "native") {
        Target target;
        auto platform = std::make_unique<NativePlatform>();
        target.network = std::make_unique<msg::ThreadNetwork>(platform->core_count());
        target.platform = std::move(platform);
        return target;
    }
    std::optional<sim::MachineSpec> spec;
    if (name == "dunnington") spec = sim::zoo::dunnington();
    if (name == "finis-terrae") spec = sim::zoo::finis_terrae();
    if (name == "finis-terrae-2n") spec = sim::zoo::finis_terrae(2);
    if (name == "dempsey") spec = sim::zoo::dempsey();
    if (name == "athlon3200") spec = sim::zoo::athlon3200();
    if (name == "nehalem2s") spec = sim::zoo::nehalem2s();
    if (name == "ft-small") spec = sim::zoo::fat_tree_small();
    if (name == "torus4x4") spec = sim::zoo::torus4x4();
    if (name == "ft1024") spec = sim::zoo::fat_tree_cluster(3);
    if (name == "ft4096") spec = sim::zoo::fat_tree_cluster(4);
    if (name == "df10240") spec = sim::zoo::dragonfly_cluster(10, 8, 8);
    if (!spec) return std::nullopt;
    return make_sim_target(*spec);
}

int cmd_machines() {
    TextTable table({"name", "kind", "cores", "description"});
    table.add_row({"native", "hardware", "-", "this host, measured with pinned threads"});
    const auto add = [&](const sim::MachineSpec& spec, const char* description) {
        table.add_row({spec.name, "model", strf("%d", spec.n_cores), description});
    };
    add(sim::zoo::dunnington(), "4x Xeon E7450, shared L2 pairs + L3 packages");
    add(sim::zoo::finis_terrae(), "HP RX7640 node, Itanium2, cells + shared buses");
    add(sim::zoo::finis_terrae(2), "two RX7640 nodes over InfiniBand");
    add(sim::zoo::dempsey(), "Xeon 5060, the smeared-L2 case of Fig. 2");
    add(sim::zoo::athlon3200(), "unicore AMD Athlon");
    add(sim::zoo::nehalem2s(), "post-paper control: 2-socket NUMA with shared L3");
    add(sim::zoo::fat_tree_small(), "cluster: arity-2/2-level fat-tree, 4 dual-core nodes");
    add(sim::zoo::torus4x4(), "cluster: 4x4 torus of unicore nodes");
    add(sim::zoo::fat_tree_cluster(3), "cluster: arity-4/3-level fat-tree, 64 16-core nodes");
    add(sim::zoo::fat_tree_cluster(4), "cluster: arity-4/4-level fat-tree, 256 16-core nodes");
    add(sim::zoo::dragonfly_cluster(10, 8, 8),
        "cluster: 10-group dragonfly, 640 16-core nodes");
    std::printf("%s", table.render().c_str());
    return 0;
}

/// Registers the options shared by every command that *measures* —
/// `profile` and `validate --repair`. The repair path must rebuild the
/// same platform/decorator stack and the same suite options as the run
/// that wrote the journal, or the journal's compatibility check (options
/// hash, substrate fingerprint) will refuse it.
void add_measurement_options(CliParser& cli) {
    cli.add_option("machine", "target (see 'servet machines')", "native");
    cli.add_option("robust", "median-of-N outlier rejection (1 = off)", "1");
    cli.add_option("robust-max", "adaptive sampling cap (> --robust enables convergence-"
                   "driven sampling)", "0");
    cli.add_option("faults", "inject faults: spike=P,factor=F,nan=P,throw=P,hang=P,"
                   "drop=P,delay=P,seed=N (testing)", "");
    cli.add_option("jobs", "concurrent measurement tasks (modeled machines only)", "1");
    cli.add_flag("fast", "fewer repeats, core-0 pairs only");
}

/// The measurement substrate a run drives: the raw target plus the
/// decorators the flags asked for, with `platform`/`network` pointing at
/// the top of each stack.
struct MeasureStack {
    Target target;
    std::unique_ptr<FlakyPlatform> flaky;
    std::unique_ptr<msg::FaultyNetwork> faulty_net;
    std::unique_ptr<RobustPlatform> robust;
    Platform* platform = nullptr;
    msg::Network* network = nullptr;
};

std::optional<MeasureStack> make_measure_stack(const CliParser& cli,
                                               std::optional<Target> target_override = {}) {
    MeasureStack stack;
    auto target = target_override ? std::move(target_override)
                                  : make_target(cli.option("machine"));
    if (!target) {
        std::fprintf(stderr, "unknown machine '%s'\n", cli.option("machine").c_str());
        return std::nullopt;
    }
    stack.target = std::move(*target);
    stack.platform = stack.target.platform.get();
    stack.network = stack.target.network.get();

    // Fault injection wraps the raw substrates first, so robust sampling
    // sees (and has to survive) the injected faults — the composition a
    // real noisy machine presents.
    if (!cli.option("faults").empty()) {
        const std::optional<FaultPlan> faults = FaultPlan::parse(cli.option("faults"));
        if (!faults) {
            std::fprintf(stderr, "invalid --faults spec '%s'\n",
                         cli.option("faults").c_str());
            return std::nullopt;
        }
        if (faults->any_platform_faults()) {
            stack.flaky = std::make_unique<FlakyPlatform>(*stack.platform, *faults);
            stack.platform = stack.flaky.get();
        }
        if (stack.network != nullptr && faults->any_network_faults()) {
            stack.faulty_net = std::make_unique<msg::FaultyNetwork>(*stack.network, *faults);
            stack.network = stack.faulty_net.get();
        }
    }

    const int samples = static_cast<int>(cli.option_int("robust").value_or(1));
    const int samples_max = static_cast<int>(cli.option_int("robust-max").value_or(0));
    if (samples_max > samples) {
        RobustOptions robust_options;
        robust_options.min_samples = std::max(samples, 1);
        robust_options.max_samples = samples_max;
        stack.robust = std::make_unique<RobustPlatform>(*stack.platform, robust_options);
        stack.platform = stack.robust.get();
    } else if (samples > 1) {
        stack.robust = std::make_unique<RobustPlatform>(*stack.platform, samples);
        stack.platform = stack.robust.get();
    }
    return stack;
}

/// Suite options from the shared measurement flags. Nullopt (with a
/// message) on invalid values.
std::optional<core::SuiteOptions> make_suite_options(const CliParser& cli) {
    core::SuiteOptions options;
    if (cli.flag("fast")) {
        options.mcalibrator.repeats = 2;
        options.shared_cache.only_with_core = 0;
        options.mem_overhead.only_with_core = 0;
    }
    const auto jobs = cli.option_int("jobs");
    if (!jobs || *jobs < 1) {
        std::fprintf(stderr, "--jobs must be an integer >= 1\n");
        return std::nullopt;
    }
    options.jobs = static_cast<int>(*jobs);
    return options;
}

int cmd_profile(int argc, const char* const* argv) {
    CliParser cli("servet profile: run the full suite and store the result.");
    add_measurement_options(cli);
    cli.add_option("platform", "cluster platform file describing a simulated machine "
                   "(overrides --machine; see docs/cluster-sim.md)", "");
    cli.add_option("out", "profile file to write", "servet.profile");
    cli.add_option("task-deadline", "per-measurement-task deadline in seconds (0 = off)",
                   "0");
    cli.add_option("memo", "measurement memo file reused across invocations", "");
    cli.add_option("run-dir", "run directory holding the crash-safe phase journal", "");
    cli.add_option("trace", "write a Chrome trace_event JSON of the run", "");
    cli.add_option("metrics", "write the metrics registry as JSON", "");
    cli.add_flag("resume", "replay completed phases from the --run-dir journal and "
                 "re-measure only the rest");
    cli.add_flag("no-timing", "omit the [timing] section (wall clock never repeats; "
                 "resumed and uninterrupted runs then diff byte-identical)");
    cli.add_flag("profile-counters", "embed deterministic counters in the profile");
    if (!cli.parse(argc, argv)) return 1;

    std::optional<Target> platform_target;
    if (!cli.option("platform").empty()) {
        PlatformError error;
        const auto spec = load_platform(cli.option("platform"), &error);
        if (!spec) {
            std::fprintf(stderr, "platform error [%s]: %s\n", error.code.c_str(),
                         error.message.c_str());
            return kExitInvalidPlatform;
        }
        platform_target = make_sim_target(*spec);
    }
    std::optional<MeasureStack> stack = make_measure_stack(cli, std::move(platform_target));
    if (!stack) return 1;
    Platform* platform = stack->platform;
    msg::Network* network = stack->network;

    std::optional<core::SuiteOptions> parsed_options = make_suite_options(cli);
    if (!parsed_options) return 1;
    core::SuiteOptions options = std::move(*parsed_options);
    const std::optional<sim::MachineSpec>& cluster = stack->target.spec;
    const bool is_cluster = cluster && cluster->topology.enabled();
    if (is_cluster) {
        // Cluster runs characterize communication only: the per-node
        // substrate comes from the zoo, and the cache phases would scale
        // with rank count. Skipping cache_size keeps the comm probe at its
        // default message size, and the sampled pair set replaces the
        // O(n^2) full scan.
        options.run_cache_size = false;
        options.comm.probe_pairs = core::cluster_probe_pairs(*cluster, options.comm);
    }
    options.memo_path = cli.option("memo");
    options.run_dir = cli.option("run-dir");
    options.resume = cli.flag("resume");
    if (options.resume && options.run_dir.empty()) {
        std::fprintf(stderr, "--resume requires --run-dir (the journal to resume from)\n");
        return 1;
    }
    options.profile_counters = cli.flag("profile-counters");
    const auto task_deadline = cli.option_double("task-deadline");
    if (!task_deadline || *task_deadline < 0) {
        std::fprintf(stderr, "--task-deadline must be a number >= 0\n");
        return 1;
    }
    options.task_deadline = *task_deadline;

    // Output paths may name directories that do not exist yet; creating
    // them here beats a suite run that measures for an hour and then
    // cannot write its product.
    for (const char* opt : {"out", "memo", "trace", "metrics"}) {
        const std::string& path = cli.option(opt);
        if (!path.empty() && !create_parent_dirs(path)) {
            std::fprintf(stderr, "cannot create parent directory of %s\n", path.c_str());
            return 1;
        }
    }

    if (!cli.option("trace").empty()) obs::tracer().set_enabled(true);
    core::SuiteResult result;
    try {
        result = core::run_suite(*platform, network, options);
    } catch (const core::JournalError& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return kExitIncompatibleJournal;
    }
    if (result.journal_replayed > 0)
        std::printf("journal: %llu phase(s) replayed, %llu re-measured\n",
                    static_cast<unsigned long long>(result.journal_replayed),
                    static_cast<unsigned long long>(result.journal_appended));
    // Export failures must not abort before the profile lands: the
    // measurement (possibly hours of it) is the product, the exports are
    // side channels. Remember the failure and report it in the exit code
    // once the profile is safely on disk.
    bool export_failed = false;
    if (!cli.option("trace").empty()) {
        obs::tracer().set_enabled(false);
        if (!obs::tracer().write_chrome_trace(cli.option("trace"))) {
            std::fprintf(stderr, "cannot write %s\n", cli.option("trace").c_str());
            export_failed = true;
        } else {
            std::printf("trace written to %s\n", cli.option("trace").c_str());
        }
    }
    if (!cli.option("metrics").empty()) {
        if (!obs::write_metrics_json(cli.option("metrics"))) {
            std::fprintf(stderr, "cannot write %s\n", cli.option("metrics").c_str());
            export_failed = true;
        } else {
            std::printf("metrics written to %s\n", cli.option("metrics").c_str());
        }
    }
    if (result.memo_hits > 0)
        std::printf("memo: %llu of %llu measurements replayed\n",
                    static_cast<unsigned long long>(result.memo_hits),
                    static_cast<unsigned long long>(result.memo_hits + result.memo_misses));
    core::Profile profile = result.to_profile(
        platform->name(), platform->core_count(), platform->page_size());
    if (is_cluster) core::annotate_cluster_profile(&profile, *cluster);
    if (cli.flag("no-timing")) profile.phase_seconds.clear();

    const std::string& path = cli.option("out");
    if (!profile.save(path)) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    std::printf("profile of %s written to %s (%zu cache levels, %zu memory tiers, "
                "%zu comm layers)\n",
                profile.machine.c_str(), path.c_str(), profile.caches.size(),
                profile.memory.tiers.size(), profile.comm.size());
    if (result.partial()) {
        for (const core::PhaseError& error : result.errors)
            std::fprintf(stderr, "phase %s failed: %s\n", error.phase.c_str(),
                         error.message.c_str());
        std::fprintf(stderr, "%zu phase(s) failed; the profile is partial (see its "
                     "[errors] section)\n", result.errors.size());
        return kExitPartialProfile;
    }
    return export_failed ? kExitExportFailed : 0;
}

int cmd_report(int argc, const char* const* argv) {
    CliParser cli("servet report: pretty-print a stored profile.");
    cli.add_option("profile", "profile file to read", "servet.profile");
    cli.add_flag("markdown", "emit the full markdown report");
    cli.add_flag("dot", "emit a Graphviz topology graph of the measured sharing groups");
    cli.add_flag("json", "emit the profile as JSON for external tooling");
    if (!cli.parse(argc, argv)) return 1;

    const auto profile = core::Profile::load(cli.option("profile"));
    if (!profile) {
        std::fprintf(stderr, "cannot read %s\n", cli.option("profile").c_str());
        return 1;
    }
    if (cli.flag("markdown")) {
        std::printf("%s", core::render_markdown(*profile).c_str());
        return 0;
    }
    if (cli.flag("dot")) {
        std::printf("%s", core::render_dot(*profile).c_str());
        return 0;
    }
    if (cli.flag("json")) {
        std::printf("%s", profile->to_json().c_str());
        return 0;
    }
    std::printf("machine %s: %d cores, %s pages\n\n", profile->machine.c_str(),
                profile->cores, format_bytes(profile->page_size).c_str());

    TextTable caches({"level", "size", "method", "sharing"});
    for (std::size_t i = 0; i < profile->caches.size(); ++i) {
        const auto& cache = profile->caches[i];
        std::string sharing = cache.groups.empty() ? "private" : "";
        for (const auto& group : cache.groups) {
            sharing += "{";
            for (std::size_t j = 0; j < group.size(); ++j) {
                if (j) sharing += ",";
                sharing += std::to_string(group[j]);
            }
            sharing += "} ";
        }
        caches.add_row({strf("L%zu", i + 1), format_bytes(cache.size), cache.method,
                        sharing});
    }
    std::printf("%s\n", caches.render().c_str());

    std::printf("memory reference bandwidth: %s\n",
                format_bandwidth(profile->memory.reference_bandwidth).c_str());
    for (std::size_t t = 0; t < profile->memory.tiers.size(); ++t) {
        const auto& tier = profile->memory.tiers[t];
        std::printf("  tier %zu: %s per colliding core, %zu groups\n", t,
                    format_bandwidth(tier.bandwidth).c_str(), tier.groups.size());
    }
    std::printf("\ncommunication layers:\n");
    for (std::size_t l = 0; l < profile->comm.size(); ++l) {
        const auto& layer = profile->comm[l];
        std::printf("  layer %zu: %s at probe size, %zu pairs, %zu-point p2p curve\n", l,
                    format_latency(layer.latency).c_str(), layer.pairs.size(),
                    layer.p2p.size());
    }
    if (profile->topology.enabled()) {
        std::string dims;
        for (std::size_t d = 0; d < profile->topology.dims.size(); ++d) {
            if (d) dims += "x";
            dims += std::to_string(profile->topology.dims[d]);
        }
        std::printf("\ncluster topology: %s%s%s, %d core(s) per node\n",
                    profile->topology.kind.c_str(), dims.empty() ? "" : " ", dims.c_str(),
                    profile->topology.cores_per_node);
        for (const auto& tier : profile->comm_tiers)
            std::printf("  route class tier %d (%s), %d hops -> comm layer %d\n", tier.tier,
                        tier.name.c_str(), tier.hops, tier.layer);
    }
    if (!profile->phase_seconds.empty()) {
        std::printf("\nsuite phase timings:\n");
        for (const auto& [phase, seconds] : profile->phase_seconds)
            std::printf("  %-16s %.1f s\n", phase.c_str(), seconds);
    }
    return 0;
}

int cmd_tlb(int argc, const char* const* argv) {
    CliParser cli("servet tlb: measure the data TLB (reach and walk cost).");
    cli.add_option("machine", "target (see 'servet machines')", "native");
    cli.add_option("l1", "known L1 size bounding the probe", "16KB");
    if (!cli.parse(argc, argv)) return 1;

    auto target = make_target(cli.option("machine"));
    if (!target) {
        std::fprintf(stderr, "unknown machine '%s'\n", cli.option("machine").c_str());
        return 1;
    }
    core::TlbDetectOptions options;
    options.l1_size = parse_bytes(cli.option("l1")).value_or(16 * KiB);
    const auto estimate = core::detect_tlb(*target->platform, options);
    if (!estimate) {
        std::printf("no TLB cost step detected within the probe range "
                    "(absent, cheap, or reach beyond L1-bounded probe)\n");
        return 0;
    }
    std::printf("data TLB: %d entries, ~%.1f-cycle walk, reach %s\n", estimate->entries,
                estimate->miss_cycles, format_bytes(estimate->reach_bytes).c_str());
    return 0;
}

int cmd_price(int argc, const char* const* argv) {
    CliParser cli("servet price: cost a point-to-point message from a profile.");
    cli.add_option("profile", "profile file to read", "servet.profile");
    cli.add_option("from", "source core", "0");
    cli.add_option("to", "destination core", "1");
    cli.add_option("size", "message size", "32KB");
    if (!cli.parse(argc, argv)) return 1;

    const auto profile = core::Profile::load(cli.option("profile"));
    if (!profile) {
        std::fprintf(stderr, "cannot read %s\n", cli.option("profile").c_str());
        return 1;
    }
    const CorePair pair{static_cast<CoreId>(cli.option_int("from").value_or(0)),
                        static_cast<CoreId>(cli.option_int("to").value_or(1))};
    const Bytes size = parse_bytes(cli.option("size")).value_or(32 * KiB);
    const auto latency = profile->comm_latency(pair, size);
    if (!latency) {
        std::fprintf(stderr, "pair (%d,%d) is not characterized in this profile\n", pair.a,
                     pair.b);
        return 1;
    }
    std::printf("(%d,%d) %s one-way: %s (layer %d)\n", pair.a, pair.b,
                format_bytes(size).c_str(), format_latency(*latency).c_str(),
                profile->comm_layer_of(pair));
    return 0;
}

int cmd_map(int argc, const char* const* argv) {
    CliParser cli("servet map: place application ranks from a stored profile.");
    cli.add_option("profile", "profile file to read", "servet.profile");
    cli.add_option("app", "pattern: stencil | ring | alltoall | random", "stencil");
    cli.add_option("ranks", "number of ranks", "8");
    cli.add_option("message", "message size pricing the edges", "32KB");
    if (!cli.parse(argc, argv)) return 1;

    const auto profile = core::Profile::load(cli.option("profile"));
    if (!profile) {
        std::fprintf(stderr, "cannot read %s\n", cli.option("profile").c_str());
        return 1;
    }
    const int ranks = static_cast<int>(cli.option_int("ranks").value_or(8));
    if (ranks < 2 || ranks > profile->cores) {
        std::fprintf(stderr, "ranks must be in [2, %d]\n", profile->cores);
        return 1;
    }
    autotune::CommGraph graph;
    const std::string& app = cli.option("app");
    if (app == "ring") {
        graph = autotune::CommGraph::ring(ranks);
    } else if (app == "alltoall") {
        graph = autotune::CommGraph::all_to_all(ranks);
    } else if (app == "random") {
        graph = autotune::CommGraph::random_sparse(ranks, 3, 0x5eed);
    } else {
        int rows = 1;
        for (int r = 1; r * r <= ranks; ++r)
            if (ranks % r == 0) rows = r;
        graph = autotune::CommGraph::stencil2d(rows, ranks / rows);
    }

    autotune::MappingOptions options;
    options.message_size = parse_bytes(cli.option("message")).value_or(32 * KiB);
    const autotune::MappingResult result =
        autotune::map_processes(*profile, graph, options);
    std::printf("# rank -> core (objective %.3e, greedy seed %.3e)\n", result.cost,
                result.greedy_cost);
    for (int r = 0; r < ranks; ++r)
        std::printf("%d %d\n", r, result.core_of_rank[static_cast<std::size_t>(r)]);
    return 0;
}

int cmd_broadcast(int argc, const char* const* argv) {
    CliParser cli("servet broadcast: choose a collective algorithm from a profile.");
    cli.add_option("profile", "profile file to read", "servet.profile");
    cli.add_option("size", "payload size", "64KB");
    cli.add_option("root", "root core", "0");
    if (!cli.parse(argc, argv)) return 1;

    const auto profile = core::Profile::load(cli.option("profile"));
    if (!profile) {
        std::fprintf(stderr, "cannot read %s\n", cli.option("profile").c_str());
        return 1;
    }
    if (profile->cores < 2 || profile->comm.empty()) {
        std::fprintf(stderr, "profile carries no communication characterization\n");
        return 1;
    }
    std::vector<CoreId> cores;
    for (CoreId c = 0; c < profile->cores; ++c) cores.push_back(c);
    const Bytes size = parse_bytes(cli.option("size")).value_or(64 * KiB);
    const CoreId root = static_cast<CoreId>(cli.option_int("root").value_or(0));

    const auto choice = autotune::choose_broadcast(*profile, root, cores, size);
    std::printf("broadcast of %s from core %d over %d cores:\n",
                format_bytes(size).c_str(), root, profile->cores);
    for (const auto& [name, cost] : choice.candidates)
        std::printf("  %-18s %s%s\n", name.c_str(), format_latency(cost).c_str(),
                    name == choice.schedule.algorithm ? "   <- selected" : "");
    return 0;
}

int cmd_metrics(int argc, const char* const* argv) {
    CliParser cli("servet metrics: run the suite and summarize the obs metrics registry.");
    cli.add_option("machine", "target (see 'servet machines')", "dunnington");
    cli.add_option("jobs", "concurrent measurement tasks (modeled machines only)", "1");
    cli.add_option("out", "also write the registry as JSON to this file", "");
    cli.add_flag("fast", "fewer repeats, core-0 pairs only");
    cli.add_flag("stable-only", "restrict the table and the JSON export to Stable-class "
                 "metrics (diffable across runs)");
    if (!cli.parse(argc, argv)) return 1;

    auto target = make_target(cli.option("machine"));
    if (!target) {
        std::fprintf(stderr, "unknown machine '%s'\n", cli.option("machine").c_str());
        return 1;
    }
    core::SuiteOptions options;
    if (cli.flag("fast")) {
        options.mcalibrator.repeats = 2;
        options.shared_cache.only_with_core = 0;
        options.mem_overhead.only_with_core = 0;
    }
    const auto jobs = cli.option_int("jobs");
    if (!jobs || *jobs < 1) {
        std::fprintf(stderr, "--jobs must be an integer >= 1\n");
        return 1;
    }
    options.jobs = static_cast<int>(*jobs);
    (void)core::run_suite(*target->platform, target->network.get(), options);

    const bool stable_only = cli.flag("stable-only");
    TextTable table({"metric", "kind", "stability", "value"});
    for (const std::vector<std::string>& row : obs::registry().summary_rows()) {
        if (stable_only && row[2] != "stable") continue;
        table.add_row(row);
    }
    std::printf("%s", table.render().c_str());

    if (!cli.option("out").empty()) {
        if (!obs::write_metrics_json(cli.option("out"), stable_only)) {
            std::fprintf(stderr, "cannot write %s\n", cli.option("out").c_str());
            return kExitExportFailed;
        }
        std::printf("metrics written to %s\n", cli.option("out").c_str());
    }
    return 0;
}

// --daemon's signal handlers only flip this flag; the watch loop polls
// it between ticks, so the in-flight tick always commits before exit.
std::atomic<bool> g_watch_stop{false};

extern "C" void watch_signal_handler(int) {
    g_watch_stop.store(true, std::memory_order_relaxed);
}

int cmd_watch(int argc, const char* const* argv) {
    CliParser cli("servet watch: continuously re-measure a fast subset of the suite, "
                  "journal the samples as a time series under --run-dir, and judge "
                  "each tick against a rolling baseline with stable drift codes "
                  "(drift.none/.suspect/.confirmed). Confirmed drift exits 4; an "
                  "incompatible existing series exits 2.");
    cli.add_option("machine", "target (see 'servet machines')", "native");
    cli.add_option("jobs", "concurrent measurement tasks (modeled machines only)", "1");
    cli.add_option("run-dir", "directory holding the series journal (required; an "
                   "existing compatible series resumes and seeds the baselines)", "");
    cli.add_option("ticks", "new samples to measure in this invocation (0 = replay "
                   "and re-judge the existing series without measuring)", "1");
    cli.add_option("interval", "seconds to sleep between ticks (0 = back-to-back)", "0");
    cli.add_option("perturb-tick", "inject the --faults plan from this global tick on "
                   "(-1 = never; deterministic drift for tests and CI)", "-1");
    cli.add_option("faults", "fault plan driving the perturbation: spike=P,factor=F,"
                   "delay=P,delay_factor=F,seed=N (see docs/robustness.md)", "");
    cli.add_option("series-json", "append one fingerprint-tagged JSON line of stable "
                   "metrics per tick to this file (fleet-aggregator feed)", "");
    cli.add_option("push-port", "publish every committed tick to the 'servet serve' "
                   "store listening on this port (0 = no publication; samples spool "
                   "under <run-dir>/spool while the server is unreachable and drain "
                   "in tick order once it answers again)", "0");
    cli.add_option("push-host", "profile-service address for --push-port", "127.0.0.1");
    cli.add_option("push-token", "shared-secret token for the push PUTs", "");
    cli.add_option("push-timeout", "per-socket-operation timeout for push PUTs, "
                   "seconds", "5");
    cli.add_option("push-retries", "attempts per push PUT (capped exponential "
                   "backoff, deterministic jitter)", "3");
    cli.add_option("push-seed", "backoff-jitter seed for push retries", "23741");
    cli.add_flag("daemon", "run until SIGTERM/SIGINT: the signal finishes the "
                 "in-flight tick, commits and fsyncs its sample, and exits 0 with a "
                 "resumable journal (pair with a large --ticks budget)");
    cli.add_flag("fast", "fewer repeats, core-0 pairs only");
    cli.add_flag("full", "re-measure every suite phase per tick instead of the fast "
                 "subset (cache sizes + comm costs)");
    if (!cli.parse(argc, argv)) return 1;

    auto target = make_target(cli.option("machine"));
    if (!target) {
        std::fprintf(stderr, "unknown machine '%s'\n", cli.option("machine").c_str());
        return 1;
    }
    if (cli.option("run-dir").empty()) {
        std::fprintf(stderr, "--run-dir is required (the series journal lives there)\n");
        return 1;
    }

    watch::WatchOptions options;
    options.run_dir = cli.option("run-dir");
    if (cli.flag("fast")) {
        options.suite.mcalibrator.repeats = 2;
        options.suite.shared_cache.only_with_core = 0;
        options.suite.mem_overhead.only_with_core = 0;
    }
    // The designated fast subset: the mcalibrator curve + cache sizes
    // (cycle-level drift) and the comm probe (latency drift). The
    // multi-core contention phases are the expensive ones and move with
    // the same underlying parameters — --full buys them back.
    if (!cli.flag("full")) {
        options.suite.run_shared_cache = false;
        options.suite.run_mem_overhead = false;
    }
    const std::optional<sim::MachineSpec>& cluster = target->spec;
    if (cluster && cluster->topology.enabled()) {
        // Cluster watch mirrors cluster profile: comm-only, sampled pairs.
        options.suite.run_cache_size = false;
        options.suite.run_shared_cache = false;
        options.suite.run_mem_overhead = false;
        options.suite.comm.probe_pairs =
            core::cluster_probe_pairs(*cluster, options.suite.comm);
    }
    const auto jobs = cli.option_int("jobs");
    if (!jobs || *jobs < 1) {
        std::fprintf(stderr, "--jobs must be an integer >= 1\n");
        return 1;
    }
    options.suite.jobs = static_cast<int>(*jobs);
    const auto ticks = cli.option_int("ticks");
    if (!ticks || *ticks < 0) {
        std::fprintf(stderr, "--ticks must be an integer >= 0\n");
        return 1;
    }
    options.ticks = static_cast<int>(*ticks);
    const auto interval = cli.option_double("interval");
    if (!interval || *interval < 0) {
        std::fprintf(stderr, "--interval must be a number >= 0\n");
        return 1;
    }
    options.interval_seconds = *interval;
    options.perturb_tick =
        static_cast<int>(cli.option_int("perturb-tick").value_or(-1));
    if (!cli.option("faults").empty()) {
        const std::optional<FaultPlan> faults = FaultPlan::parse(cli.option("faults"));
        if (!faults) {
            std::fprintf(stderr, "invalid --faults spec '%s'\n",
                         cli.option("faults").c_str());
            return 1;
        }
        options.perturb = *faults;
    }
    if (options.perturb_tick >= 0 && !options.perturb.active()) {
        std::fprintf(stderr, "--perturb-tick needs an active --faults plan\n");
        return 1;
    }
    options.series_json = cli.option("series-json");

    const auto push_port = cli.option_int("push-port");
    if (!push_port || *push_port < 0 || *push_port > 65535) {
        std::fprintf(stderr, "--push-port must be an integer in [0, 65535]\n");
        return 1;
    }
    options.push.port = static_cast<int>(*push_port);
    options.push.host = cli.option("push-host");
    options.push.token = cli.option("push-token");
    const auto push_timeout = cli.option_double("push-timeout");
    if (!push_timeout || *push_timeout <= 0) {
        std::fprintf(stderr, "--push-timeout must be a number > 0\n");
        return 1;
    }
    options.push.timeout_seconds = *push_timeout;
    options.push.deadline_seconds = *push_timeout * 6;
    const auto push_retries = cli.option_int("push-retries");
    if (!push_retries || *push_retries < 1 || *push_retries > 100) {
        std::fprintf(stderr, "--push-retries must be an integer in [1, 100]\n");
        return 1;
    }
    options.push.attempts = static_cast<int>(*push_retries);
    const auto push_seed = cli.option_int("push-seed");
    if (!push_seed) {
        std::fprintf(stderr, "--push-seed must be an integer\n");
        return 1;
    }
    options.push.seed = static_cast<std::uint64_t>(*push_seed);

    if (cli.flag("daemon")) {
        options.stop = &g_watch_stop;
        struct sigaction action = {};
        action.sa_handler = watch_signal_handler;
        ::sigaction(SIGTERM, &action, nullptr);
        ::sigaction(SIGINT, &action, nullptr);
    }

    watch::WatchResult result;
    try {
        result = watch::run_watch(*target->platform, target->network.get(), options);
    } catch (const core::JournalError& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return kExitIncompatibleJournal;
    }

    const auto fmt_value = [](double v) {
        char buf[40];
        if (std::isnan(v)) return std::string("absent");
        std::snprintf(buf, sizeof buf, "%.6g", v);
        return std::string(buf);
    };
    for (const watch::TickReport& report : result.reports) {
        watch::Verdict tick_worst = watch::Verdict::None;
        for (const watch::MetricVerdict& v : report.verdicts)
            tick_worst = watch::worse(tick_worst, v.verdict);
        std::printf("tick %zu%s: %s (%zu metrics)\n", report.tick,
                    report.replayed ? " (replayed)" : "",
                    watch::verdict_code(tick_worst), report.verdicts.size());
        for (const watch::MetricVerdict& v : report.verdicts) {
            if (v.verdict == watch::Verdict::None) continue;
            std::printf("  %-15s %-32s baseline %-12s current %-12s score %s\n",
                        watch::verdict_code(v.verdict), v.metric.c_str(),
                        fmt_value(v.baseline).c_str(), fmt_value(v.value).c_str(),
                        std::isnan(v.score) ? "-" : fmt_value(v.score).c_str());
        }
    }
    std::printf("watch: %zu tick(s) measured, %zu replayed, worst verdict %s%s\n",
                result.measured, result.replayed, watch::verdict_code(result.worst),
                result.stopped ? " (stopped by signal)" : "");
    if (options.push.port != 0)
        std::printf("watch: %zu sample(s) pushed, %zu still spooled\n",
                    result.pushed, result.spooled);
    return result.worst == watch::Verdict::Confirmed ? kExitDrift : 0;
}

int cmd_validate(int argc, const char* const* argv) {
    CliParser cli("servet validate: check a stored profile against the physical "
                  "invariants every real machine satisfies.");
    add_measurement_options(cli);
    cli.add_option("profile", "profile file to check", "servet.profile");
    cli.add_option("run-dir", "run directory holding the producing run's journal "
                   "(needed by --repair)", "");
    cli.add_option("against", "baseline profile to diff --profile against: every "
                   "metric is judged with the drift detector's stable codes "
                   "(drift.none/.suspect/.confirmed); confirmed drift exits 4", "");
    cli.add_flag("repair", "re-measure exactly the implicated phases via the --run-dir "
                 "journal and rewrite the profile (pass the same measurement flags as "
                 "the producing run)");
    cli.add_flag("no-timing", "omit the [timing] section from the repaired profile");
    if (!cli.parse(argc, argv)) return 1;

    const std::string& path = cli.option("profile");
    std::string diagnostic;
    const std::optional<core::Profile> profile = core::Profile::load(path, &diagnostic);
    if (!profile) {
        std::fprintf(stderr, "%s\n", diagnostic.c_str());
        return 1;
    }

    const auto print_report = [](const core::ValidationReport& report) {
        for (const core::Violation& v : report.violations) {
            if (v.phase.empty())
                std::printf("%-7s %-26s %s\n", core::to_string(v.severity), v.code.c_str(),
                            v.message.c_str());
            else
                std::printf("%-7s %-26s [%s] %s\n", core::to_string(v.severity),
                            v.code.c_str(), v.phase.c_str(), v.message.c_str());
        }
    };

    const core::ValidationReport report = core::validate_profile(*profile);
    print_report(report);

    if (!cli.option("against").empty()) {
        if (cli.flag("repair")) {
            std::fprintf(stderr, "--against and --repair are mutually exclusive (diff "
                         "first, then repair in a separate invocation)\n");
            return 1;
        }
        const std::string& baseline_path = cli.option("against");
        std::string baseline_diagnostic;
        const std::optional<core::Profile> baseline =
            core::Profile::load(baseline_path, &baseline_diagnostic);
        if (!baseline) {
            std::fprintf(stderr, "%s\n", baseline_diagnostic.c_str());
            return 1;
        }
        if (baseline->machine != profile->machine)
            std::fprintf(stderr, "warning: diffing profiles of different machines "
                         "('%s' vs '%s'); every shift below may just be the hardware\n",
                         baseline->machine.c_str(), profile->machine.c_str());

        const auto fmt_value = [](double v) {
            char buf[40];
            if (std::isnan(v)) return std::string("absent");
            std::snprintf(buf, sizeof buf, "%.6g", v);
            return std::string(buf);
        };
        watch::Verdict worst = watch::Verdict::None;
        std::size_t confirmed = 0;
        for (const watch::MetricVerdict& v :
             watch::diff_profiles(*baseline, *profile, watch::DriftOptions{})) {
            worst = watch::worse(worst, v.verdict);
            if (v.verdict == watch::Verdict::Confirmed) ++confirmed;
            std::printf("%-15s %-32s baseline %-12s current %-12s score %s\n",
                        watch::verdict_code(v.verdict), v.metric.c_str(),
                        fmt_value(v.baseline).c_str(), fmt_value(v.value).c_str(),
                        std::isnan(v.score) ? "-" : fmt_value(v.score).c_str());
        }
        std::printf("diff against %s: %s\n", baseline_path.c_str(),
                    watch::verdict_code(worst));
        if (report.has_errors()) {
            std::fprintf(stderr, "%s: profile also violates physical invariants (see "
                         "above)\n", path.c_str());
            return kExitInvalidProfile;
        }
        return worst == watch::Verdict::Confirmed ? kExitDrift : 0;
    }

    if (!report.has_errors()) {
        std::printf("%s: profile of %s passes validation (%zu warning(s))\n", path.c_str(),
                    profile->machine.c_str(), report.violations.size());
        return 0;
    }
    if (!cli.flag("repair")) {
        std::fprintf(stderr, "%s: profile violates physical invariants; re-measure the "
                     "implicated phase(s) or rerun with --repair --run-dir\n",
                     path.c_str());
        return kExitInvalidProfile;
    }

    if (cli.option("run-dir").empty()) {
        std::fprintf(stderr, "--repair requires --run-dir (the producing run's journal "
                     "locates the phases to re-measure)\n");
        return 1;
    }
    std::optional<MeasureStack> stack = make_measure_stack(cli);
    if (!stack) return 1;
    std::optional<core::SuiteOptions> options = make_suite_options(cli);
    if (!options) return 1;
    options->run_dir = cli.option("run-dir");
    options->resume = true;
    options->remeasure = report.implicated_phases();

    std::string phases;
    for (const std::string& phase : options->remeasure)
        phases += (phases.empty() ? "" : ", ") + phase;
    std::printf("repair: re-measuring %s\n", phases.c_str());

    core::SuiteResult result;
    try {
        result = core::run_suite(*stack->platform, stack->network, *options);
    } catch (const core::JournalError& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return kExitIncompatibleJournal;
    }
    core::Profile repaired = result.to_profile(stack->platform->name(),
                                               stack->platform->core_count(),
                                               stack->platform->page_size());
    if (cli.flag("no-timing")) repaired.phase_seconds.clear();

    const core::ValidationReport after = core::validate_profile(repaired);
    if (after.has_errors()) {
        print_report(after);
        std::fprintf(stderr, "repair re-measured %llu phase(s) but the result still "
                     "violates invariants; the measurement itself is suspect\n",
                     static_cast<unsigned long long>(result.journal_appended));
        return kExitInvalidProfile;
    }
    if (!repaired.save(path)) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    std::printf("repair: %llu phase(s) replayed, %llu re-measured; valid profile "
                "rewritten to %s\n",
                static_cast<unsigned long long>(result.journal_replayed),
                static_cast<unsigned long long>(result.journal_appended), path.c_str());
    return 0;
}

/// The one server this process runs; the signal handler may only touch
/// async-signal-safe state, and ServeServer::request_stop() is exactly
/// that (an atomic store + an eventfd write).
serve::ServeServer* g_serve_server = nullptr;

extern "C" void serve_signal_handler(int) {
    if (g_serve_server != nullptr) g_serve_server->request_stop();
}

int cmd_serve(int argc, const char* const* argv) {
    CliParser cli("servet serve: long-running profile service. Stores profiles "
                  "content-addressed by machine fingerprint and suite options hash, "
                  "serves them over minimal HTTP/1.1 with conditional GET "
                  "(If-None-Match -> 304). SIGTERM/SIGINT drain in-flight requests "
                  "and exit 0. Protocol and store layout: docs/serve.md.");
    cli.add_option("store-dir", "directory holding the profile store", "servet-store");
    cli.add_option("bind", "IPv4 address to bind", "127.0.0.1");
    cli.add_option("port", "TCP port (0 = ephemeral; see --port-file)", "0");
    cli.add_option("threads", "worker threads answering requests", "2");
    cli.add_option("cache", "hot profiles kept in the in-memory LRU", "256");
    cli.add_option("port-file", "write the bound port to this file once listening "
                   "(how scripts find an ephemeral port)", "");
    cli.add_option("token", "require 'authorization: Bearer <token>' on every "
                   "request except /healthz (compared in constant time)", "");
    cli.add_option("idle-timeout", "seconds a connection may sit idle before the "
                   "server closes it — the slow-loris defense (0 = never reap)",
                   "30");
    cli.add_option("max-connections", "open-connection cap; excess connections are "
                   "shed with 503 + retry-after", "1024");
    if (!cli.parse(argc, argv)) return 1;

    serve::ServeOptions options;
    options.store_dir = cli.option("store-dir");
    options.bind_address = cli.option("bind");
    const auto port = cli.option_int("port");
    if (!port || *port < 0 || *port > 65535) {
        std::fprintf(stderr, "--port must be an integer in [0, 65535]\n");
        return 2;
    }
    options.port = static_cast<std::uint16_t>(*port);
    const auto threads = cli.option_int("threads");
    if (!threads || *threads < 1 || *threads > 64) {
        std::fprintf(stderr, "--threads must be an integer in [1, 64]\n");
        return 2;
    }
    options.threads = static_cast<int>(*threads);
    const auto cache = cli.option_int("cache");
    if (!cache || *cache < 0) {
        std::fprintf(stderr, "--cache must be an integer >= 0\n");
        return 2;
    }
    options.cache_entries = static_cast<std::size_t>(*cache);
    options.token = cli.option("token");
    const auto idle_timeout = cli.option_double("idle-timeout");
    if (!idle_timeout || *idle_timeout < 0) {
        std::fprintf(stderr, "--idle-timeout must be a number >= 0\n");
        return 2;
    }
    options.idle_timeout_seconds = *idle_timeout;
    const auto max_connections = cli.option_int("max-connections");
    if (!max_connections || *max_connections < 1) {
        std::fprintf(stderr, "--max-connections must be an integer >= 1\n");
        return 2;
    }
    options.max_connections = static_cast<std::size_t>(*max_connections);

    serve::ServeServer server(options);
    std::string error;
    if (!server.start(&error)) {
        std::fprintf(stderr, "serve: %s\n", error.c_str());
        return 1;
    }
    g_serve_server = &server;
    struct sigaction action{};
    action.sa_handler = serve_signal_handler;
    ::sigemptyset(&action.sa_mask);
    (void)::sigaction(SIGTERM, &action, nullptr);
    (void)::sigaction(SIGINT, &action, nullptr);

    if (!cli.option("port-file").empty() &&
        !write_file_atomic(cli.option("port-file"),
                           std::to_string(server.port()) + "\n")) {
        std::fprintf(stderr, "cannot write %s\n", cli.option("port-file").c_str());
        server.request_stop();
        server.join();
        return kExitExportFailed;
    }

    std::printf("serve: listening on %s:%u, store %s, %d worker(s)\n",
                options.bind_address.c_str(), static_cast<unsigned>(server.port()),
                options.store_dir.c_str(), options.threads);
    std::fflush(stdout);
    server.join();  // returns once a signal (or caller) requested stop
    g_serve_server = nullptr;
    std::printf("serve: drained and stopped\n");
    return 0;
}

int cmd_tune(int argc, const char* const* argv) {
    CliParser cli("servet tune: search a tunable kernel's configuration space and "
                  "report the best config. Strategies: exhaustive walks the space in "
                  "enumeration order, random walks a seeded shuffle, guided ranks "
                  "candidates by the profile's analytic cost model before spending "
                  "the measurement budget. Candidate order is fixed before any "
                  "evaluation runs, so --trace output is byte-identical across "
                  "--jobs values. See docs/autotune.md.");
    cli.add_option("machine", "target (see 'servet machines')", "dempsey");
    cli.add_option("kernel", "tunable kernel: stencil | transpose | reduction | spmv",
                   "stencil");
    cli.add_option("strategy", "search order: exhaustive | random | guided", "guided");
    cli.add_option("budget", "measured evaluations to spend (0 = the whole space)", "0");
    cli.add_option("seed", "random-strategy shuffle seed", "24301");
    cli.add_option("jobs", "concurrent measured evaluations (modeled machines only)",
                   "1");
    cli.add_option("profile", "stored profile supplying the analytic priors (default: "
                   "measure the target's profile in-process first)", "");
    cli.add_option("trace", "write the search trace JSON to this file", "");
    if (!cli.parse(argc, argv)) return 1;

    const auto strategy = autotune::search::parse_strategy(cli.option("strategy"));
    if (!strategy) {
        std::fprintf(stderr, "unknown strategy '%s' (expected exhaustive, random, or "
                     "guided)\n", cli.option("strategy").c_str());
        return 2;
    }
    const auto budget = cli.option_int("budget");
    if (!budget || *budget < 0) {
        std::fprintf(stderr, "--budget must be an integer >= 0\n");
        return 2;
    }
    const auto seed = cli.option_int("seed");
    if (!seed || *seed < 0) {
        std::fprintf(stderr, "--seed must be an integer >= 0\n");
        return 2;
    }
    const auto jobs = cli.option_int("jobs");
    if (!jobs || *jobs < 1) {
        std::fprintf(stderr, "--jobs must be an integer >= 1\n");
        return 2;
    }
    auto target = make_target(cli.option("machine"));
    if (!target) {
        std::fprintf(stderr, "unknown machine '%s'\n", cli.option("machine").c_str());
        return 2;
    }

    // Reject a bad kernel name before the (possibly in-process-measured)
    // profile is acquired: the registry knows the names without one.
    const auto known_kernels = autotune::kernels::kernel_names();
    if (std::find(known_kernels.begin(), known_kernels.end(), cli.option("kernel")) ==
        known_kernels.end()) {
        std::string names;
        for (const std::string& name : known_kernels)
            names += (names.empty() ? "" : ", ") + name;
        std::fprintf(stderr, "unknown kernel '%s' (expected one of: %s)\n",
                     cli.option("kernel").c_str(), names.c_str());
        return 2;
    }

    // The analytic prior the guided strategy ranks by: a stored profile
    // when given, otherwise the target's own — measured in-process (fast
    // on the modeled machines this command is built for).
    core::Profile profile;
    if (!cli.option("profile").empty()) {
        std::string diagnostic;
        const auto loaded = core::Profile::load(cli.option("profile"), &diagnostic);
        if (!loaded) {
            std::fprintf(stderr, "%s\n", diagnostic.c_str());
            return 2;
        }
        profile = *loaded;
    } else {
        // The prior only needs the rough shape (cache sizes, the
        // scalability curve), so the fast suite configuration suffices.
        core::SuiteOptions suite_options;
        suite_options.mcalibrator.repeats = 2;
        suite_options.shared_cache.only_with_core = 0;
        suite_options.mem_overhead.only_with_core = 0;
        const auto result =
            core::run_suite(*target->platform, target->network.get(), suite_options);
        profile = result.to_profile(target->platform->name(),
                                    target->platform->core_count(),
                                    target->platform->page_size());
    }

    const auto kernel = autotune::kernels::make_kernel(
        cli.option("kernel"), profile, target->platform->core_count());
    if (!kernel) {
        // Name already validated: only a profile unfit for this kernel
        // (e.g. no cache levels detected) lands here.
        std::fprintf(stderr, "kernel '%s' cannot be built from this profile\n",
                     cli.option("kernel").c_str());
        return 2;
    }

    // Same pool shape as the suite: the calling thread participates, so
    // --jobs N means N-1 workers.
    std::unique_ptr<exec::ThreadPool> pool;
    if (*jobs > 1) pool = std::make_unique<exec::ThreadPool>(static_cast<int>(*jobs) - 1);
    core::MeasureEngine engine(target->platform.get(), target->network.get(), pool.get(),
                               nullptr);

    autotune::search::SearchOptions options;
    options.strategy = *strategy;
    options.budget = static_cast<std::size_t>(*budget);
    options.seed = static_cast<std::uint64_t>(*seed);
    options.engine = &engine;
    const auto result = autotune::search::run_search(*kernel, options);
    if (!result) {
        std::fprintf(stderr, "kernel '%s' admits no configuration on this target\n",
                     cli.option("kernel").c_str());
        return 1;
    }

    std::printf("tune: %s on %s, strategy %s, space %zu, %zu evaluation(s)\n",
                kernel->name().c_str(), cli.option("machine").c_str(),
                std::string(autotune::search::strategy_name(*strategy)).c_str(),
                result->space_size, result->evals);
    std::printf("best %s: cost %.6g, first reached at evaluation %zu\n",
                result->best.key().c_str(), result->best_cost, result->evals_to_best);

    if (!cli.option("trace").empty() &&
        !write_file_atomic(cli.option("trace"),
                           autotune::search::trace_json(*kernel, options, *result))) {
        std::fprintf(stderr, "cannot write %s\n", cli.option("trace").c_str());
        return kExitExportFailed;
    }
    return 0;
}

int cmd_fetch(int argc, const char* const* argv) {
    CliParser cli("servet fetch: download a profile from a running servet serve "
                  "store. Conditional: when --out already holds a profile and its "
                  ".etag sidecar exists, the request carries If-None-Match and an "
                  "unchanged profile answers 304 without a body (the stored file is "
                  "kept). The body is validated as a profile before it replaces "
                  "--out.");
    cli.add_option("host", "server IPv4 address", "127.0.0.1");
    cli.add_option("port", "server TCP port", "0");
    cli.add_option("fingerprint", "machine fingerprint key (16 lowercase hex digits)",
                   "");
    cli.add_option("options", "suite options hash qualifying the profile (16 lowercase "
                   "hex digits; empty = the store's default entry)", "");
    cli.add_option("out", "profile file to write", "servet.profile");
    cli.add_option("timeout", "per-socket-operation timeout in seconds (connect "
                   "included)", "10");
    cli.add_option("deadline", "overall wall-clock cap in seconds — attempts, "
                   "backoffs and trickled bytes included (0 = 6x timeout)", "0");
    cli.add_option("retries", "total attempts for transient transport failures "
                   "(capped exponential backoff, deterministic jitter)", "3");
    cli.add_option("retry-seed", "backoff-jitter seed (same seed, same trace)",
                   "23741");
    cli.add_option("token", "shared-secret auth token (sent as authorization: "
                   "Bearer)", "");
    cli.add_flag("trace", "print the deterministic per-attempt retry trace");
    if (!cli.parse(argc, argv)) return 1;

    const auto port = cli.option_int("port");
    if (!port || *port < 1 || *port > 65535) {
        std::fprintf(stderr, "--port must be an integer in [1, 65535]\n");
        return 2;
    }
    if (cli.option("fingerprint").empty()) {
        std::fprintf(stderr, "--fingerprint is required (see 'servet serve' / "
                     "docs/serve.md for the key format)\n");
        return 2;
    }

    const std::string out = cli.option("out");
    const std::string etag_path = out + ".etag";

    serve::FetchOptions options;
    options.host = cli.option("host");
    options.port = static_cast<int>(*port);
    options.path = "/v1/profile/" + cli.option("fingerprint");
    if (!cli.option("options").empty()) options.path += "/" + cli.option("options");
    const auto timeout = cli.option_double("timeout");
    if (!timeout || *timeout <= 0) {
        std::fprintf(stderr, "--timeout must be a number > 0\n");
        return 2;
    }
    options.timeout_seconds = *timeout;
    const auto deadline = cli.option_double("deadline");
    if (!deadline || *deadline < 0) {
        std::fprintf(stderr, "--deadline must be a number >= 0\n");
        return 2;
    }
    options.deadline_seconds = *deadline;
    const auto retries = cli.option_int("retries");
    if (!retries || *retries < 1 || *retries > 100) {
        std::fprintf(stderr, "--retries must be an integer in [1, 100]\n");
        return 2;
    }
    options.retry.max_attempts = static_cast<int>(*retries);
    const auto retry_seed = cli.option_int("retry-seed");
    if (!retry_seed) {
        std::fprintf(stderr, "--retry-seed must be an integer\n");
        return 2;
    }
    options.retry.seed = static_cast<std::uint64_t>(*retry_seed);
    options.token = cli.option("token");

    // A 304 is only useful when the previous body is still on disk, so the
    // conditional header requires both the profile and its sidecar.
    std::string existing;
    std::string stored_etag;
    if (read_file(out, &existing) == FileRead::Ok &&
        read_file(etag_path, &stored_etag) == FileRead::Ok) {
        while (!stored_etag.empty() &&
               (stored_etag.back() == '\n' || stored_etag.back() == '\r' ||
                stored_etag.back() == ' '))
            stored_etag.pop_back();
        options.etag = stored_etag;
    }

    const serve::FetchResult result = serve::http_fetch(options);
    if (cli.flag("trace")) std::fputs(result.trace().c_str(), stdout);
    if (!result.ok) {
        std::fprintf(stderr, "fetch: [%s] %s\n", result.code.c_str(),
                     result.error.c_str());
        return 1;
    }
    const serve::HttpResponse& response = result.response;

    if (response.status == 304) {
        std::printf("fetch: %s is current (etag %s)\n", out.c_str(),
                    options.etag.c_str());
        return 0;
    }
    if (response.status != 200) {
        std::fprintf(stderr, "fetch: server answered %d %s for %s\n", response.status,
                     response.reason.c_str(), options.path.c_str());
        return 1;
    }

    // Never replace a good profile with bytes that don't parse as one —
    // a half-broken store should leave the node's copy alone.
    const auto profile = core::Profile::parse(response.body);
    if (!profile) {
        std::fprintf(stderr, "fetch: response body is not a valid profile\n");
        return 1;
    }
    if (!write_file_atomic(out, response.body)) {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return kExitExportFailed;
    }
    const std::string etag = response.etag_token();
    if (!etag.empty() && !write_file_atomic(etag_path, etag + "\n")) {
        std::fprintf(stderr, "cannot write %s\n", etag_path.c_str());
        return kExitExportFailed;
    }
    std::printf("fetch: wrote %s (%zu bytes, machine %s%s%s)\n", out.c_str(),
                response.body.size(), profile->machine.c_str(),
                etag.empty() ? "" : ", etag ", etag.c_str());
    return 0;
}

void usage() {
    std::fprintf(stderr,
                 "servet — measure multicore hardware parameters for autotuning\n\n"
                 "usage: servet <command> [options]\n\n"
                 "commands:\n"
                 "  machines   list available measurement targets\n"
                 "  profile    run the full suite and store the profile file\n"
                 "  report     pretty-print a stored profile\n"
                 "  tlb        measure the data TLB\n"
                 "  price      cost a message between two cores from a profile\n"
                 "  map        place application ranks using a profile\n"
                 "  broadcast  choose a collective algorithm from a profile\n"
                 "  metrics    run the suite and summarize the obs metrics registry\n"
                 "  watch      re-measure a fast subset periodically and judge drift "
                 "against a rolling baseline\n"
                 "  validate   check a profile against physical invariants "
                 "(--repair re-measures, --against diffs two profiles)\n"
                 "  serve      long-running profile service over HTTP "
                 "(content-addressed store, conditional GET)\n"
                 "  fetch      download a profile from a serve store "
                 "(conditional GET via a stored ETag)\n"
                 "  tune       search a tunable kernel's configuration space "
                 "(exhaustive | random | guided)\n\n"
                 "run 'servet <command> --help' for per-command options.\n");
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        usage();
        return 1;
    }
    const std::string command = argv[1];
    const int sub_argc = argc - 1;
    const char* const* sub_argv = argv + 1;
    if (command == "machines") return cmd_machines();
    if (command == "profile") return cmd_profile(sub_argc, sub_argv);
    if (command == "report") return cmd_report(sub_argc, sub_argv);
    if (command == "tlb") return cmd_tlb(sub_argc, sub_argv);
    if (command == "price") return cmd_price(sub_argc, sub_argv);
    if (command == "map") return cmd_map(sub_argc, sub_argv);
    if (command == "broadcast") return cmd_broadcast(sub_argc, sub_argv);
    if (command == "metrics") return cmd_metrics(sub_argc, sub_argv);
    if (command == "watch") return cmd_watch(sub_argc, sub_argv);
    if (command == "validate") return cmd_validate(sub_argc, sub_argv);
    if (command == "serve") return cmd_serve(sub_argc, sub_argv);
    if (command == "fetch") return cmd_fetch(sub_argc, sub_argv);
    if (command == "tune") return cmd_tune(sub_argc, sub_argv);
    usage();
    return command == "--help" || command == "help" ? 0 : 1;
}
