#!/usr/bin/env python3
"""Perf smoke test for the simulation core (CI job perf-smoke).

Runs ``bench_micro --json`` (or reads a saved run) and compares the
batched/reference engine speedup against the committed baseline in
BENCH_simcore.json. Absolute simulated-accesses/sec depend on the host,
so the check is on the ratio, which is machine-independent to first
order: both engines run the same cache/TLB/page-mapper models on the
same workload in the same process.

Failure conditions:
  * current speedup < (1 - tolerance) * baseline speedup   (regression)
  * current speedup < the hard floor (default 2.0) the batched engine
    is required to clear over the scalar oracle

Stdlib only. Exit 0 on pass, 1 on regression, 2 on usage/IO errors.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys


def load_current(args: argparse.Namespace) -> dict:
    if args.input:
        with open(args.input, "r", encoding="utf-8") as f:
            return json.load(f)
    try:
        out = subprocess.run(
            [args.bench, "--json"], check=True, capture_output=True, text=True,
            timeout=args.timeout,
        ).stdout
    except FileNotFoundError:
        print(f"perf_smoke: benchmark binary not found: {args.bench}", file=sys.stderr)
        raise SystemExit(2)
    except subprocess.CalledProcessError as err:
        print(f"perf_smoke: {args.bench} --json failed:\n{err.stderr}", file=sys.stderr)
        raise SystemExit(2)
    return json.loads(out)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", default="build/bench/bench_micro",
                        help="path to the bench_micro binary")
    parser.add_argument("--baseline", default="BENCH_simcore.json",
                        help="committed baseline JSON")
    parser.add_argument("--input", default=None,
                        help="read a saved `bench_micro --json` run instead of executing")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional drop below the baseline speedup")
    parser.add_argument("--floor", type=float, default=2.0,
                        help="hard minimum batched/reference speedup")
    parser.add_argument("--repeats", type=int, default=3,
                        help="benchmark runs; the best speedup is judged (CI boxes are noisy)")
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="per-run benchmark timeout in seconds")
    args = parser.parse_args()

    try:
        with open(args.baseline, "r", encoding="utf-8") as f:
            baseline = json.load(f)
    except OSError as err:
        print(f"perf_smoke: cannot read baseline: {err}", file=sys.stderr)
        return 2

    repeats = 1 if args.input else max(1, args.repeats)
    best = None
    for _ in range(repeats):
        current = load_current(args)
        if current.get("benchmark") != baseline.get("benchmark"):
            print(
                f"perf_smoke: benchmark mismatch: current "
                f"{current.get('benchmark')!r} vs baseline "
                f"{baseline.get('benchmark')!r}", file=sys.stderr)
            return 2
        if current.get("workload") != baseline.get("workload"):
            print(
                f"perf_smoke: workload mismatch: current "
                f"{current.get('workload')!r} vs baseline "
                f"{baseline.get('workload')!r} — reseed BENCH_simcore.json",
                file=sys.stderr)
            return 2
        if best is None or current["speedup"] > best["speedup"]:
            best = current

    speedup = float(best["speedup"])
    baseline_speedup = float(baseline["speedup"])
    threshold = (1.0 - args.tolerance) * baseline_speedup

    print(f"perf_smoke: workload          {best['workload']}")
    for scenario in best.get("scenarios", []):
        print(f"perf_smoke: {scenario['engine']:>10} engine  "
              f"{scenario['accesses_per_sec']:>12,.0f} simulated accesses/sec")
    print(f"perf_smoke: speedup           {speedup:.3f} (best of {repeats})")
    print(f"perf_smoke: baseline speedup  {baseline_speedup:.3f} "
          f"(floor {threshold:.3f} at {args.tolerance:.0%} tolerance, "
          f"hard floor {args.floor:.1f})")

    ok = True
    if speedup < threshold:
        print("perf_smoke: FAIL — speedup regressed more than "
              f"{args.tolerance:.0%} below the committed baseline", file=sys.stderr)
        ok = False
    if speedup < args.floor:
        print(f"perf_smoke: FAIL — speedup below the hard {args.floor:.1f}x floor",
              file=sys.stderr)
        ok = False
    if ok:
        print("perf_smoke: OK")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
