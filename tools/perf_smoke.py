#!/usr/bin/env python3
"""Perf smoke test against a committed baseline (CI job perf-smoke).

Runs a benchmark binary with ``--json`` (or reads a saved run) and
compares one top-level metric against the committed baseline JSON.
Two baselines are pinned today:

  * BENCH_simcore.json — bench_micro's batched/reference engine
    ``speedup``. A ratio of two runs in the same process, so it is
    machine-independent to first order.
  * BENCH_serve.json — bench_serve's cached-GET ``reqs_per_sec``
    (``--metric reqs_per_sec``). Absolute and host-dependent, which is
    why that job runs with a generous --tolerance and leans on the hard
    --floor (the ROADMAP bar of 100k req/s on one worker).

Failure conditions:
  * current metric < (1 - tolerance) * baseline metric   (regression)
  * current metric < the hard --floor

Stdlib only. Exit 0 on pass, 1 on regression, 2 on usage/IO errors.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys


def load_current(args: argparse.Namespace) -> dict:
    if args.input:
        with open(args.input, "r", encoding="utf-8") as f:
            return json.load(f)
    try:
        out = subprocess.run(
            [args.bench, "--json"], check=True, capture_output=True, text=True,
            timeout=args.timeout,
        ).stdout
    except FileNotFoundError:
        print(f"perf_smoke: benchmark binary not found: {args.bench}", file=sys.stderr)
        raise SystemExit(2)
    except subprocess.CalledProcessError as err:
        print(f"perf_smoke: {args.bench} --json failed:\n{err.stderr}", file=sys.stderr)
        raise SystemExit(2)
    return json.loads(out)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", default="build/bench/bench_micro",
                        help="path to the bench_micro binary")
    parser.add_argument("--baseline", default="BENCH_simcore.json",
                        help="committed baseline JSON")
    parser.add_argument("--input", default=None,
                        help="read a saved `--json` run instead of executing")
    parser.add_argument("--metric", default="speedup",
                        help="top-level JSON key to judge (e.g. reqs_per_sec)")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional drop below the baseline metric")
    parser.add_argument("--floor", type=float, default=2.0,
                        help="hard minimum for the metric")
    parser.add_argument("--repeats", type=int, default=3,
                        help="benchmark runs; the best speedup is judged (CI boxes are noisy)")
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="per-run benchmark timeout in seconds")
    args = parser.parse_args()

    try:
        with open(args.baseline, "r", encoding="utf-8") as f:
            baseline = json.load(f)
    except OSError as err:
        print(f"perf_smoke: cannot read baseline: {err}", file=sys.stderr)
        return 2

    repeats = 1 if args.input else max(1, args.repeats)
    best = None
    for _ in range(repeats):
        current = load_current(args)
        if current.get("benchmark") != baseline.get("benchmark"):
            print(
                f"perf_smoke: benchmark mismatch: current "
                f"{current.get('benchmark')!r} vs baseline "
                f"{baseline.get('benchmark')!r}", file=sys.stderr)
            return 2
        if current.get("workload") != baseline.get("workload"):
            print(
                f"perf_smoke: workload mismatch: current "
                f"{current.get('workload')!r} vs baseline "
                f"{baseline.get('workload')!r} — reseed {args.baseline}",
                file=sys.stderr)
            return 2
        if args.metric not in current:
            print(f"perf_smoke: metric {args.metric!r} missing from benchmark output",
                  file=sys.stderr)
            return 2
        if best is None or current[args.metric] > best[args.metric]:
            best = current

    value = float(best[args.metric])
    baseline_value = float(baseline[args.metric])
    threshold = (1.0 - args.tolerance) * baseline_value

    print(f"perf_smoke: workload          {best['workload']}")
    for scenario in best.get("scenarios", []):
        rate = scenario.get("accesses_per_sec", scenario.get("reqs_per_sec"))
        if rate is not None:
            print(f"perf_smoke: {scenario['engine']:>12}  {rate:>12,.0f} /sec")
    print(f"perf_smoke: {args.metric:<17} {value:,.3f} (best of {repeats})")
    print(f"perf_smoke: baseline {args.metric:<8} {baseline_value:,.3f} "
          f"(floor {threshold:,.3f} at {args.tolerance:.0%} tolerance, "
          f"hard floor {args.floor:,.1f})")

    ok = True
    if value < threshold:
        print(f"perf_smoke: FAIL — {args.metric} regressed more than "
              f"{args.tolerance:.0%} below the committed baseline", file=sys.stderr)
        ok = False
    if value < args.floor:
        print(f"perf_smoke: FAIL — {args.metric} below the hard {args.floor:,.1f} floor",
              file=sys.stderr)
        ok = False
    if ok:
        print("perf_smoke: OK")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
