// Declarative cluster platform files: a small text format describing a
// whole cluster — node count and shape via a topology family (fat-tree,
// torus, dragonfly, custom tree) plus per-tier link parameters — loaded
// by `servet profile --platform <file>` into a simulated MachineSpec.
// The measured profile of such a machine is what the autotuning layers
// consume; the file is how a user describes a machine the zoo lacks.
//
// Format (docs/cluster-sim.md has the full reference):
//
//   servet-platform 1
//   name = ft1024
//   cores_per_node = 16
//
//   [topology]
//   kind = fat-tree
//   arity = 4
//   levels = 3
//
//   [tier 0]
//   name = edge
//   hop_latency = 2.5e-6
//   bandwidth = 1.2e9
//   congestion = 0.35
#pragma once

#include <optional>
#include <string>

#include "sim/machine.hpp"

namespace servet {

/// Why a platform file failed to load: a stable machine-readable code
/// (pinned by the CLI tests; new failures get new codes) plus a human
/// message. Codes:
///   platform.io             - unreadable file
///   platform.header         - missing/wrong "servet-platform 1" header
///   platform.syntax         - malformed line, unknown section or key
///   platform.field          - a value fails to parse or is out of range
///   platform.kind           - unknown topology kind
///   platform.fattree.arity  - fat-tree arity not a power of two >= 2
///   platform.tiers.count    - tier sections missing, extra, or non-contiguous
///   platform.links.cycle    - declared custom links contain a cycle
///   platform.topology       - any other topology shape problem
///   platform.machine        - the assembled machine fails validation
struct PlatformError {
    std::string code;
    std::string message;
};

/// Parse a platform description into a ready-to-simulate MachineSpec
/// (topology attached, node substrate from zoo::cluster_node_machine).
/// nullopt on failure, with `error` (when given) filled in.
[[nodiscard]] std::optional<sim::MachineSpec> parse_platform(const std::string& text,
                                                             PlatformError* error = nullptr);

/// Read and parse a platform file.
[[nodiscard]] std::optional<sim::MachineSpec> load_platform(const std::string& path,
                                                            PlatformError* error = nullptr);

}  // namespace servet
