// Platform implementation over the machine simulator, with deterministic
// measurement jitter (spec.measurement_jitter) layered on top so the
// suite's clustering/thresholding logic is exercised the way real noisy
// measurements would.
#pragma once

#include <memory>

#include "base/rng.hpp"
#include "platform/platform.hpp"
#include "sim/engine.hpp"

namespace servet {

class SimPlatform final : public Platform {
  public:
    /// Which MachineSim engine serves traversal requests. Batched is the
    /// production line-stream pipeline; Reference is the scalar oracle —
    /// cycle-for-cycle identical, kept selectable so equivalence suites
    /// and the perf smoke test can drive both through the platform API.
    enum class Engine { Batched, Reference };

    explicit SimPlatform(sim::MachineSpec spec);
    /// Replica constructor: same machine, private noise stream.
    SimPlatform(sim::MachineSpec spec, std::uint64_t noise_seed);

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] int core_count() const override;
    [[nodiscard]] Bytes page_size() const override;
    [[nodiscard]] std::uint64_t fingerprint() const override;
    [[nodiscard]] bool forkable() const override { return true; }
    [[nodiscard]] std::unique_ptr<Platform> fork(std::uint64_t noise_salt,
                                                 std::uint64_t placement_salt) const override;

    [[nodiscard]] Cycles traverse_cycles(CoreId core, Bytes array_bytes, Bytes stride,
                                         int passes, bool fresh_placement) override;
    [[nodiscard]] std::vector<Cycles> traverse_cycles_concurrent(
        const std::vector<CoreId>& cores, Bytes array_bytes, Bytes stride, int passes,
        bool fresh_placement) override;
    [[nodiscard]] BytesPerSecond copy_bandwidth(CoreId core, Bytes array_bytes) override;
    [[nodiscard]] std::vector<BytesPerSecond> copy_bandwidth_concurrent(
        const std::vector<CoreId>& cores, Bytes array_bytes) override;

    [[nodiscard]] const sim::MachineSpec& spec() const { return sim_.spec(); }
    [[nodiscard]] sim::MachineSim& machine() { return sim_; }

    /// Engine selection survives fork(), so a suite run pinned to the
    /// scalar oracle stays on it across replicas.
    void set_engine(Engine engine) { engine_ = engine; }
    [[nodiscard]] Engine engine() const { return engine_; }

  private:
    [[nodiscard]] double jitter();

    sim::MachineSim sim_;
    Rng noise_;
    Engine engine_ = Engine::Batched;
};

}  // namespace servet
