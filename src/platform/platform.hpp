// The measurement substrate the Servet suite runs against. The detection
// algorithms (Section III) consume only these observables — per-access
// cycles of strided traversals and streaming-copy bandwidths, solo or with
// a chosen set of cores running concurrently. Two implementations exist:
// NativePlatform measures real hardware with pinned threads; SimPlatform
// executes the machine simulator. Detection code cannot tell them apart,
// which is the point: the suite stays a pure measurement consumer, exactly
// as portable as the paper claims.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/types.hpp"

namespace servet {

class Platform {
  public:
    virtual ~Platform() = default;

    [[nodiscard]] virtual std::string name() const = 0;
    [[nodiscard]] virtual int core_count() const = 0;
    [[nodiscard]] virtual Bytes page_size() const = 0;

    /// Stable content hash of the measured machine, or 0 when the
    /// platform is not content-addressable (real hardware drifts run to
    /// run). Non-zero fingerprints key the measurement memo cache.
    [[nodiscard]] virtual std::uint64_t fingerprint() const { return 0; }

    /// Whether fork() produces replicas. Cheap by contract: engines call
    /// this during construction to decide between the parallel and serial
    /// paths, and probing with a throwaway fork() would clone an entire
    /// simulated machine just to discard it. Must agree with fork():
    /// forkable() == (fork(...) != nullptr).
    [[nodiscard]] virtual bool forkable() const { return false; }

    /// Independent replica of this platform for one measurement task, or
    /// nullptr when replicas are impossible (real hardware: concurrent
    /// probes would contend for the very resources being measured).
    /// `noise_salt` seeds the replica's measurement-noise RNG and
    /// `placement_salt` (when non-zero) perturbs its physical page
    /// placement; deriving both from a stable task key — never from
    /// scheduling order — is what makes parallel suite runs bit-identical
    /// to serial ones.
    [[nodiscard]] virtual std::unique_ptr<Platform> fork(std::uint64_t noise_salt,
                                                         std::uint64_t placement_salt) const {
        (void)noise_salt;
        (void)placement_salt;
        return nullptr;
    }

    /// Average cycles per access of the mcalibrator traversal (Fig. 1):
    /// `core` walks an array of `array_bytes` with `stride`, one warm-up
    /// pass plus `passes` measured passes. `fresh_placement` selects
    /// between a freshly allocated array (new random physical placement —
    /// what repeated size measurements average over) and a statically
    /// allocated buffer reused across calls with the same size (what the
    /// pairwise ratio probes need so placement luck cancels). Platforms
    /// without that degree of control may ignore the flag.
    [[nodiscard]] virtual Cycles traverse_cycles(CoreId core, Bytes array_bytes, Bytes stride,
                                                 int passes, bool fresh_placement = true) = 0;

    /// The same traversal run concurrently by every core in `cores`, each
    /// on its own array; returns per-core cycles per access, aligned with
    /// `cores`. This is the probe behind shared-cache detection (Fig. 5).
    [[nodiscard]] virtual std::vector<Cycles> traverse_cycles_concurrent(
        const std::vector<CoreId>& cores, Bytes array_bytes, Bytes stride, int passes,
        bool fresh_placement = true) = 0;

    /// STREAM-style copy bandwidth of a single isolated core (the "ref"
    /// measurement of Fig. 6).
    [[nodiscard]] virtual BytesPerSecond copy_bandwidth(CoreId core, Bytes array_bytes) = 0;

    /// Copy bandwidth of each core in `cores` while all of them stream
    /// concurrently; aligned with `cores`.
    [[nodiscard]] virtual std::vector<BytesPerSecond> copy_bandwidth_concurrent(
        const std::vector<CoreId>& cores, Bytes array_bytes) = 0;
};

}  // namespace servet
