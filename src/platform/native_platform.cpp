#include "platform/native_platform.hpp"

#include <barrier>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <unistd.h>
#endif

#include "base/check.hpp"
#include "base/log.hpp"
#include "hw/affinity.hpp"
#include "hw/kernels.hpp"

namespace servet {

namespace {
Bytes detect_page_size() {
#if defined(__linux__)
    const long ps = sysconf(_SC_PAGESIZE);
    if (ps > 0) return static_cast<Bytes>(ps);
#endif
    return 4 * KiB;
}
}  // namespace

NativePlatform::NativePlatform(int cores)
    : cores_(cores > 0 ? cores : hw::online_core_count()), page_size_(detect_page_size()) {}

std::string NativePlatform::name() const {
    return "native:" + std::to_string(cores_) + "-core";
}

Cycles NativePlatform::traverse_cycles(CoreId core, Bytes array_bytes, Bytes stride,
                                       int passes, bool fresh_placement) {
    return traverse_cycles_concurrent({core}, array_bytes, stride, passes, fresh_placement)
        .front();
}

std::vector<Cycles> NativePlatform::traverse_cycles_concurrent(const std::vector<CoreId>& cores,
                                                               Bytes array_bytes, Bytes stride,
                                                               int passes,
                                                               bool /*fresh_placement*/) {
    // The native backend allocates per call; the OS decides placement
    // either way, so the static-buffer hint has nothing to act on here.
    SERVET_CHECK(!cores.empty() && passes > 0);
    const std::size_t n = cores.size();
    std::vector<Cycles> results(n, 0.0);
    std::barrier sync(static_cast<std::ptrdiff_t>(n));

    std::vector<std::thread> threads;
    threads.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        threads.emplace_back([&, i] {
            if (!hw::pin_current_thread(cores[i]))
                SERVET_LOG_WARN("could not pin thread to core %d", cores[i]);
            hw::TraversalBuffer buffer(array_bytes, stride);
            (void)buffer.traverse_once();  // private warm-up
            sync.arrive_and_wait();        // all cores hot before timing
            results[i] = buffer.measure_cycles_per_access(passes);
        });
    }
    for (std::thread& t : threads) t.join();
    return results;
}

BytesPerSecond NativePlatform::copy_bandwidth(CoreId core, Bytes array_bytes) {
    return copy_bandwidth_concurrent({core}, array_bytes).front();
}

std::vector<BytesPerSecond> NativePlatform::copy_bandwidth_concurrent(
    const std::vector<CoreId>& cores, Bytes array_bytes) {
    SERVET_CHECK(!cores.empty());
    const std::size_t n = cores.size();
    std::vector<BytesPerSecond> results(n, 0.0);
    std::barrier sync(static_cast<std::ptrdiff_t>(n));

    std::vector<std::thread> threads;
    threads.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        threads.emplace_back([&, i] {
            if (!hw::pin_current_thread(cores[i]))
                SERVET_LOG_WARN("could not pin thread to core %d", cores[i]);
            sync.arrive_and_wait();
            results[i] = hw::measure_copy_bandwidth(array_bytes, /*passes=*/3);
        });
    }
    for (std::thread& t : threads) t.join();
    return results;
}

}  // namespace servet
