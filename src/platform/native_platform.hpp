// Platform implementation on real hardware: pinned threads, TSC timing,
// and the Fig. 1 traversal / STREAM copy kernels. Concurrent measurements
// synchronize on a std::barrier between the warm-up and timed phases so
// every participating core is actually streaming while any of them is
// being measured.
#pragma once

#include "platform/platform.hpp"

namespace servet {

class NativePlatform final : public Platform {
  public:
    /// `cores` limits the platform to a subset of the machine (default:
    /// all online cores). Throws nothing; pinning failures degrade to
    /// unpinned threads with a warning.
    explicit NativePlatform(int cores = 0);

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] int core_count() const override { return cores_; }
    [[nodiscard]] Bytes page_size() const override { return page_size_; }

    [[nodiscard]] Cycles traverse_cycles(CoreId core, Bytes array_bytes, Bytes stride,
                                         int passes, bool fresh_placement) override;
    [[nodiscard]] std::vector<Cycles> traverse_cycles_concurrent(
        const std::vector<CoreId>& cores, Bytes array_bytes, Bytes stride, int passes,
        bool fresh_placement) override;
    [[nodiscard]] BytesPerSecond copy_bandwidth(CoreId core, Bytes array_bytes) override;
    [[nodiscard]] std::vector<BytesPerSecond> copy_bandwidth_concurrent(
        const std::vector<CoreId>& cores, Bytes array_bytes) override;

  private:
    int cores_;
    Bytes page_size_;
};

}  // namespace servet
