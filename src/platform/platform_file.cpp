#include "platform/platform_file.hpp"

#include <cstdlib>
#include <sstream>
#include <vector>

#include "base/fs.hpp"
#include "sim/topology.hpp"
#include "sim/zoo.hpp"

namespace servet {

namespace {

constexpr const char* kHeader = "servet-platform 1";

std::string trim(const std::string& text) {
    const auto begin = text.find_first_not_of(" \t\r");
    if (begin == std::string::npos) return "";
    const auto end = text.find_last_not_of(" \t\r");
    return text.substr(begin, end - begin + 1);
}

std::vector<std::string> split(const std::string& text, char sep) {
    std::vector<std::string> parts;
    std::string token;
    std::stringstream stream(text);
    while (std::getline(stream, token, sep)) parts.push_back(token);
    return parts;
}

std::optional<double> parse_double(const std::string& text) {
    if (text.empty()) return std::nullopt;
    char* end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size()) return std::nullopt;
    return v;
}

std::optional<long long> parse_int(const std::string& text) {
    if (text.empty()) return std::nullopt;
    char* end = nullptr;
    const long long v = std::strtoll(text.c_str(), &end, 10);
    if (end != text.c_str() + text.size()) return std::nullopt;
    return v;
}

/// "a-b:tier;a-b:tier;..." -> custom link list.
std::optional<std::vector<sim::TopologyLink>> parse_links(const std::string& text) {
    std::vector<sim::TopologyLink> links;
    if (text.empty()) return links;
    for (const std::string& link_text : split(text, ';')) {
        const auto dash = link_text.find('-');
        const auto colon = link_text.find(':', dash == std::string::npos ? 0 : dash + 1);
        if (dash == std::string::npos || colon == std::string::npos) return std::nullopt;
        const auto a = parse_int(link_text.substr(0, dash));
        const auto b = parse_int(link_text.substr(dash + 1, colon - dash - 1));
        const auto tier = parse_int(link_text.substr(colon + 1));
        if (!a || !b || !tier) return std::nullopt;
        links.push_back({static_cast<int>(*a), static_cast<int>(*b), static_cast<int>(*tier)});
    }
    return links;
}

std::optional<sim::MachineSpec> fail(PlatformError* error, std::string code,
                                     std::string message) {
    if (error != nullptr) *error = {std::move(code), std::move(message)};
    return std::nullopt;
}

/// Stable error code for a topology/machine validation message. The
/// negative-path CLI tests pin these codes, so the mapping is explicit
/// rather than "whatever validate said".
std::string code_for_problem(const std::string& problem) {
    if (problem.find("arity") != std::string::npos) return "platform.fattree.arity";
    if (problem.find("cycle") != std::string::npos) return "platform.links.cycle";
    if (problem.find("tiers") != std::string::npos) return "platform.tiers.count";
    if (problem.find("topology") != std::string::npos) return "platform.topology";
    return "platform.machine";
}

}  // namespace

std::optional<sim::MachineSpec> parse_platform(const std::string& text, PlatformError* error) {
    std::stringstream stream(text);
    std::string line;
    if (!std::getline(stream, line) || trim(line) != kHeader)
        return fail(error, "platform.header",
                    std::string("first line must be \"") + kHeader + "\"");

    std::string name = "platform";
    int cores_per_node = 1;
    std::uint64_t seed = 0x5eed01;
    double jitter = 0.02;
    sim::TopologySpec topology;
    bool saw_topology = false;
    // Tier sections must arrive as [tier 0], [tier 1], ... — the index is
    // part of the format so a missing middle tier is a loud error, not a
    // silent renumbering.
    int next_tier = 0;

    enum class Section { Top, Topology, Tier };
    Section section = Section::Top;
    int line_number = 1;

    while (std::getline(stream, line)) {
        ++line_number;
        line = trim(line);
        if (line.empty() || line.front() == '#') continue;
        const std::string at = " (line " + std::to_string(line_number) + ")";

        if (line.front() == '[') {
            if (line.back() != ']')
                return fail(error, "platform.syntax", "unterminated section header" + at);
            const std::string section_name = trim(line.substr(1, line.size() - 2));
            if (section_name == "topology") {
                section = Section::Topology;
                saw_topology = true;
            } else if (section_name.starts_with("tier ")) {
                const auto index = parse_int(trim(section_name.substr(5)));
                if (!index || *index != next_tier)
                    return fail(error, "platform.tiers.count",
                                "tier sections must be contiguous from [tier 0]; got [" +
                                    section_name + "]" + at);
                ++next_tier;
                topology.tiers.emplace_back();
                section = Section::Tier;
            } else {
                return fail(error, "platform.syntax",
                            "unknown section [" + section_name + "]" + at);
            }
            continue;
        }

        const auto eq = line.find('=');
        if (eq == std::string::npos)
            return fail(error, "platform.syntax", "expected key = value" + at);
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        const auto bad_field = [&] {
            return fail(error, "platform.field",
                        "bad value for " + key + ": \"" + value + "\"" + at);
        };

        switch (section) {
            case Section::Top: {
                if (key == "name") {
                    if (value.empty()) return bad_field();
                    name = value;
                } else if (key == "cores_per_node") {
                    const auto v = parse_int(value);
                    if (!v || *v < 1 || *v > 1024) return bad_field();
                    cores_per_node = static_cast<int>(*v);
                } else if (key == "seed") {
                    const auto v = parse_int(value);
                    if (!v || *v < 0) return bad_field();
                    seed = static_cast<std::uint64_t>(*v);
                } else if (key == "jitter") {
                    const auto v = parse_double(value);
                    if (!v || *v < 0 || *v >= 0.5) return bad_field();
                    jitter = *v;
                } else {
                    return fail(error, "platform.syntax", "unknown key " + key + at);
                }
                break;
            }
            case Section::Topology: {
                const auto int_field = [&](int* out) {
                    const auto v = parse_int(value);
                    if (!v || *v < 0 || *v > (1 << 22)) return false;
                    *out = static_cast<int>(*v);
                    return true;
                };
                if (key == "kind") {
                    if (!sim::topology_kind_parse(value, &topology.kind) ||
                        topology.kind == sim::TopologyKind::None)
                        return fail(error, "platform.kind",
                                    "unknown topology kind \"" + value + "\"" + at);
                } else if (key == "arity") {
                    if (!int_field(&topology.arity)) return bad_field();
                } else if (key == "levels") {
                    if (!int_field(&topology.levels)) return bad_field();
                } else if (key == "dims") {
                    topology.dims.clear();
                    for (const std::string& dim_text : split(value, ',')) {
                        const auto v = parse_int(trim(dim_text));
                        if (!v || *v < 1) return bad_field();
                        topology.dims.push_back(static_cast<int>(*v));
                    }
                    if (topology.dims.empty()) return bad_field();
                } else if (key == "groups") {
                    if (!int_field(&topology.groups)) return bad_field();
                } else if (key == "routers") {
                    if (!int_field(&topology.routers)) return bad_field();
                } else if (key == "nodes_per_router") {
                    if (!int_field(&topology.nodes_per_router)) return bad_field();
                } else if (key == "nodes") {
                    if (!int_field(&topology.custom_nodes)) return bad_field();
                } else if (key == "switches") {
                    if (!int_field(&topology.switch_count)) return bad_field();
                } else if (key == "links") {
                    const auto links = parse_links(value);
                    if (!links) return bad_field();
                    topology.links = *links;
                } else {
                    return fail(error, "platform.syntax", "unknown key " + key + at);
                }
                break;
            }
            case Section::Tier: {
                sim::TopologyTier& tier = topology.tiers.back();
                if (key == "name") {
                    tier.name = value;
                } else if (key == "hop_latency") {
                    const auto v = parse_double(value);
                    if (!v || *v < 0) return bad_field();
                    tier.hop_latency = *v;
                } else if (key == "bandwidth") {
                    const auto v = parse_double(value);
                    if (!v || *v <= 0) return bad_field();
                    tier.bandwidth = *v;
                } else if (key == "congestion") {
                    const auto v = parse_double(value);
                    if (!v || *v < 0) return bad_field();
                    tier.congestion_exponent = *v;
                } else {
                    return fail(error, "platform.syntax", "unknown key " + key + at);
                }
                break;
            }
        }
    }

    if (!saw_topology)
        return fail(error, "platform.syntax", "platform file needs a [topology] section");
    if (topology.tiers.empty())
        return fail(error, "platform.tiers.count",
                    "platform file declares no [tier k] sections");

    // Shape problems surface with their stable codes before the machine
    // is even assembled; required_tiers is only meaningful on a shape
    // that validates, so the explicit count check comes second.
    for (const std::string& problem : topology.validate())
        return fail(error, code_for_problem(problem), problem);
    if (static_cast<int>(topology.tiers.size()) != topology.required_tiers())
        return fail(error, "platform.tiers.count",
                    "topology needs " + std::to_string(topology.required_tiers()) +
                        " tiers, file declares " + std::to_string(topology.tiers.size()));

    const int nodes = topology.node_count();
    if (nodes < 1) return fail(error, "platform.topology", "topology connects no nodes");
    sim::MachineSpec machine = sim::zoo::cluster_node_machine(name, nodes, cores_per_node, seed);
    machine.measurement_jitter = jitter;
    machine.topology = std::move(topology);
    for (const std::string& problem : machine.validate())
        return fail(error, code_for_problem(problem), problem);
    return machine;
}

std::optional<sim::MachineSpec> load_platform(const std::string& path, PlatformError* error) {
    std::string text;
    switch (read_file(path, &text)) {
        case FileRead::Absent:
            return fail(error, "platform.io", "no such file: " + path);
        case FileRead::Error:
            return fail(error, "platform.io", "cannot read " + path);
        case FileRead::Ok:
            break;
    }
    return parse_platform(text, error);
}

}  // namespace servet
