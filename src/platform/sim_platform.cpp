#include "platform/sim_platform.hpp"

#include "base/check.hpp"

namespace servet {

SimPlatform::SimPlatform(sim::MachineSpec spec)
    : sim_(std::move(spec)), noise_(sim_.spec().seed ^ 0x901e54ULL) {}

std::string SimPlatform::name() const { return "sim:" + sim_.spec().name; }

int SimPlatform::core_count() const { return sim_.spec().n_cores; }

Bytes SimPlatform::page_size() const { return sim_.spec().page_size; }

double SimPlatform::jitter() { return noise_.jitter(sim_.spec().measurement_jitter); }

Cycles SimPlatform::traverse_cycles(CoreId core, Bytes array_bytes, Bytes stride, int passes,
                                    bool fresh_placement) {
    return sim_.traverse_one(core, array_bytes, stride, passes, fresh_placement) * jitter();
}

std::vector<Cycles> SimPlatform::traverse_cycles_concurrent(const std::vector<CoreId>& cores,
                                                            Bytes array_bytes, Bytes stride,
                                                            int passes, bool fresh_placement) {
    sim::TraversalResult result =
        sim_.traverse(cores, array_bytes, stride, passes, fresh_placement);
    for (Cycles& c : result.cycles_per_access) c *= jitter();
    return std::move(result.cycles_per_access);
}

BytesPerSecond SimPlatform::copy_bandwidth(CoreId core, Bytes array_bytes) {
    return sim_.copy_bandwidth(core, {core}, array_bytes) * jitter();
}

std::vector<BytesPerSecond> SimPlatform::copy_bandwidth_concurrent(
    const std::vector<CoreId>& cores, Bytes array_bytes) {
    std::vector<BytesPerSecond> result;
    result.reserve(cores.size());
    for (CoreId core : cores)
        result.push_back(sim_.copy_bandwidth(core, cores, array_bytes) * jitter());
    return result;
}

}  // namespace servet
