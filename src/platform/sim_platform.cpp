#include "platform/sim_platform.hpp"

#include "base/check.hpp"
#include "base/hash.hpp"

namespace servet {

SimPlatform::SimPlatform(sim::MachineSpec spec)
    : sim_(std::move(spec)), noise_(sim_.spec().seed ^ 0x901e54ULL) {}

SimPlatform::SimPlatform(sim::MachineSpec spec, std::uint64_t noise_seed)
    : sim_(std::move(spec)), noise_(noise_seed) {}

std::string SimPlatform::name() const { return "sim:" + sim_.spec().name; }

std::uint64_t SimPlatform::fingerprint() const { return sim_.spec().fingerprint(); }

std::unique_ptr<Platform> SimPlatform::fork(std::uint64_t noise_salt,
                                            std::uint64_t placement_salt) const {
    sim::MachineSpec replica = sim_.spec();
    // The placement salt gives fresh-allocation tasks (the mcalibrator
    // sweep) decorrelated physical placements per task. Tasks probing
    // static buffers pass 0 so a size's placement stays identical across
    // tasks and reference/concurrent ratios cancel placement luck.
    if (placement_salt != 0) replica.seed ^= mix64(placement_salt);
    const std::uint64_t noise_seed = mix64(replica.seed ^ 0x901e54ULL ^ noise_salt);
    auto fork = std::make_unique<SimPlatform>(std::move(replica), noise_seed);
    fork->set_engine(engine_);
    return fork;
}

int SimPlatform::core_count() const { return sim_.spec().n_cores; }

Bytes SimPlatform::page_size() const { return sim_.spec().page_size; }

double SimPlatform::jitter() { return noise_.jitter(sim_.spec().measurement_jitter); }

Cycles SimPlatform::traverse_cycles(CoreId core, Bytes array_bytes, Bytes stride, int passes,
                                    bool fresh_placement) {
    return traverse_cycles_concurrent({core}, array_bytes, stride, passes, fresh_placement)
        .front();
}

std::vector<Cycles> SimPlatform::traverse_cycles_concurrent(const std::vector<CoreId>& cores,
                                                            Bytes array_bytes, Bytes stride,
                                                            int passes, bool fresh_placement) {
    sim::TraversalResult result =
        engine_ == Engine::Batched
            ? sim_.traverse(cores, array_bytes, stride, passes, fresh_placement)
            : sim_.traverse_reference(cores, array_bytes, stride, passes, fresh_placement);
    for (Cycles& c : result.cycles_per_access) c *= jitter();
    return std::move(result.cycles_per_access);
}

BytesPerSecond SimPlatform::copy_bandwidth(CoreId core, Bytes array_bytes) {
    return sim_.copy_bandwidth(core, {core}, array_bytes) * jitter();
}

std::vector<BytesPerSecond> SimPlatform::copy_bandwidth_concurrent(
    const std::vector<CoreId>& cores, Bytes array_bytes) {
    std::vector<BytesPerSecond> result;
    result.reserve(cores.size());
    for (CoreId core : cores)
        result.push_back(sim_.copy_bandwidth(core, cores, array_bytes) * jitter());
    return result;
}

}  // namespace servet
