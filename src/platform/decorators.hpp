// Platform decorators.
//
// RobustPlatform: repeats every measurement and takes the per-element
// median — the standard defence against descheduling, interrupts and
// frequency excursions on real hosts. Sampling is adaptive: after a
// minimum window it keeps measuring until the relative MAD of every
// element converges below a target (or a hard cap), so quiet machines pay
// the minimum and noisy ones buy precision with repetition. Non-finite
// samples (a fault injector's NaN, a timer glitch) are rejected before
// statistics ever see them, with a bounded re-measure budget. Wrap a
// NativePlatform in it for production runs.
//
// FlakyPlatform: deterministic fault injection for tests, driven by a
// FaultPlan — measurement spikes (a benchmark thread that lost its core
// for a timeslice), NaN returns (a broken timer read), thrown probe
// errors (a measurement that died outright) and simulated hangs cut off
// by the engine's cooperative deadline. Every decision derives from the
// plan's seed (mixed per replica with the task-key salt), so faulty runs
// are reproducible and parallel ≡ serial. Detection must survive
// FlakyPlatform when measured through RobustPlatform.
//
// Both decorators forward fork(): wrapping a forkable platform keeps the
// engine's parallel, memoized path, with the decorator re-applied around
// each replica. Forwarding is also what carries inner-platform modes
// through a decorator stack — in particular SimPlatform's traversal
// engine selection (batched vs reference, docs/simulator.md) survives
// wrapping and forking without the decorators knowing it exists.
#pragma once

#include <atomic>
#include <memory>

#include "base/fault_plan.hpp"
#include "base/rng.hpp"
#include "platform/platform.hpp"

namespace servet {

/// Sampling policy of RobustPlatform. The fixed policy of the original
/// decorator is min_samples == max_samples.
struct RobustOptions {
    int min_samples = 3;   ///< window measured before convergence is judged
    int max_samples = 15;  ///< hard cap per aggregation
    /// Converged when every element's mad/|median| is at or below this;
    /// 0 accepts only noise-free windows (simulators without jitter).
    double target_rel_mad = 0.05;
    /// Whole-window re-measures allowed when a sample comes back
    /// non-finite; exhausting the budget throws ProbeFault.
    int max_retries = 8;
};

class RobustPlatform final : public Platform {
  public:
    /// Fixed policy: exactly `samples` measurements per probe, medians per
    /// element for concurrent probes. `inner` must outlive this decorator.
    RobustPlatform(Platform& inner, int samples);
    /// Adaptive policy (see RobustOptions).
    RobustPlatform(Platform& inner, const RobustOptions& options);

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] int core_count() const override { return inner_->core_count(); }
    [[nodiscard]] Bytes page_size() const override { return inner_->page_size(); }
    [[nodiscard]] std::uint64_t fingerprint() const override;
    [[nodiscard]] bool forkable() const override { return inner_->forkable(); }
    [[nodiscard]] std::unique_ptr<Platform> fork(std::uint64_t noise_salt,
                                                 std::uint64_t placement_salt) const override;

    [[nodiscard]] Cycles traverse_cycles(CoreId core, Bytes array_bytes, Bytes stride,
                                         int passes, bool fresh_placement) override;
    [[nodiscard]] std::vector<Cycles> traverse_cycles_concurrent(
        const std::vector<CoreId>& cores, Bytes array_bytes, Bytes stride, int passes,
        bool fresh_placement) override;
    [[nodiscard]] BytesPerSecond copy_bandwidth(CoreId core, Bytes array_bytes) override;
    [[nodiscard]] std::vector<BytesPerSecond> copy_bandwidth_concurrent(
        const std::vector<CoreId>& cores, Bytes array_bytes) override;

  private:
    RobustPlatform(std::unique_ptr<Platform> owned, const RobustOptions& options);

    /// Samples `measure_run` (one run = `width` scalars, one per probed
    /// core) until convergence, rejecting non-finite runs; returns the
    /// per-element medians.
    template <typename MeasureRun>
    [[nodiscard]] std::vector<double> aggregate(std::size_t width, MeasureRun&& measure_run);

    Platform* inner_;
    std::unique_ptr<Platform> owned_;  ///< set on forked replicas only
    RobustOptions options_;
};

class FlakyPlatform final : public Platform {
  public:
    /// Injects the platform-side faults of `plan` (spike/nan/throw/hang),
    /// one decision per scalar measurement, deterministic per plan.seed.
    /// Spikes inflate traversal cycles and deflate bandwidths, as
    /// interference does.
    FlakyPlatform(Platform& inner, const FaultPlan& plan);
    /// Spike-only convenience, the original decorator's signature.
    FlakyPlatform(Platform& inner, double spike_probability, double spike_factor,
                  std::uint64_t seed);

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] int core_count() const override { return inner_->core_count(); }
    [[nodiscard]] Bytes page_size() const override { return inner_->page_size(); }
    [[nodiscard]] std::uint64_t fingerprint() const override;
    [[nodiscard]] bool forkable() const override { return inner_->forkable(); }
    [[nodiscard]] std::unique_ptr<Platform> fork(std::uint64_t noise_salt,
                                                 std::uint64_t placement_salt) const override;

    [[nodiscard]] Cycles traverse_cycles(CoreId core, Bytes array_bytes, Bytes stride,
                                         int passes, bool fresh_placement) override;
    [[nodiscard]] std::vector<Cycles> traverse_cycles_concurrent(
        const std::vector<CoreId>& cores, Bytes array_bytes, Bytes stride, int passes,
        bool fresh_placement) override;
    [[nodiscard]] BytesPerSecond copy_bandwidth(CoreId core, Bytes array_bytes) override;
    [[nodiscard]] std::vector<BytesPerSecond> copy_bandwidth_concurrent(
        const std::vector<CoreId>& cores, Bytes array_bytes) override;

    /// Spikes injected by this decorator and every replica forked from it
    /// (replicas share the counter, so the engine's per-task forks still
    /// report here).
    [[nodiscard]] int spikes_injected() const { return spikes_->load(); }

  private:
    FlakyPlatform(std::unique_ptr<Platform> owned, const FaultPlan& plan,
                  std::shared_ptr<std::atomic<int>> spikes);

    /// Draws one fault decision and applies it to `value`. `inflate`
    /// selects the spike direction (cycles up, bandwidth down). May throw
    /// ProbeFault or TaskDeadlineExceeded, or stall (simulated hang).
    [[nodiscard]] double filter(double value, bool inflate);
    void simulate_hang();

    Platform* inner_;
    std::unique_ptr<Platform> owned_;  ///< set on forked replicas only
    FaultPlan plan_;
    Rng rng_;
    std::shared_ptr<std::atomic<int>> spikes_;  ///< shared with replicas
};

}  // namespace servet
