// Platform decorators.
//
// RobustPlatform: repeats every measurement and takes the per-element
// median — the standard defence against descheduling, interrupts and
// frequency excursions on real hosts. Wrap a NativePlatform in it for
// production runs.
//
// FlakyPlatform: deterministic fault injection for tests — multiplies a
// configurable fraction of measurements by a spike factor, simulating a
// benchmark thread that lost its core for a timeslice. Detection must
// survive FlakyPlatform when measured through RobustPlatform.
#pragma once

#include "base/rng.hpp"
#include "platform/platform.hpp"

namespace servet {

class RobustPlatform final : public Platform {
  public:
    /// `inner` must outlive this decorator. `samples` measurements are
    /// taken per probe; medians are per element for concurrent probes.
    RobustPlatform(Platform& inner, int samples);

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] int core_count() const override { return inner_->core_count(); }
    [[nodiscard]] Bytes page_size() const override { return inner_->page_size(); }

    [[nodiscard]] Cycles traverse_cycles(CoreId core, Bytes array_bytes, Bytes stride,
                                         int passes, bool fresh_placement) override;
    [[nodiscard]] std::vector<Cycles> traverse_cycles_concurrent(
        const std::vector<CoreId>& cores, Bytes array_bytes, Bytes stride, int passes,
        bool fresh_placement) override;
    [[nodiscard]] BytesPerSecond copy_bandwidth(CoreId core, Bytes array_bytes) override;
    [[nodiscard]] std::vector<BytesPerSecond> copy_bandwidth_concurrent(
        const std::vector<CoreId>& cores, Bytes array_bytes) override;

  private:
    Platform* inner_;
    int samples_;
};

class FlakyPlatform final : public Platform {
  public:
    /// Each scalar measurement is independently spiked with probability
    /// `spike_probability` by factor `spike_factor` (deterministic per
    /// seed). Spikes inflate traversal cycles and deflate bandwidths, as
    /// interference does.
    FlakyPlatform(Platform& inner, double spike_probability, double spike_factor,
                  std::uint64_t seed);

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] int core_count() const override { return inner_->core_count(); }
    [[nodiscard]] Bytes page_size() const override { return inner_->page_size(); }

    [[nodiscard]] Cycles traverse_cycles(CoreId core, Bytes array_bytes, Bytes stride,
                                         int passes, bool fresh_placement) override;
    [[nodiscard]] std::vector<Cycles> traverse_cycles_concurrent(
        const std::vector<CoreId>& cores, Bytes array_bytes, Bytes stride, int passes,
        bool fresh_placement) override;
    [[nodiscard]] BytesPerSecond copy_bandwidth(CoreId core, Bytes array_bytes) override;
    [[nodiscard]] std::vector<BytesPerSecond> copy_bandwidth_concurrent(
        const std::vector<CoreId>& cores, Bytes array_bytes) override;

    [[nodiscard]] int spikes_injected() const { return spikes_; }

  private:
    [[nodiscard]] double maybe_spike();

    Platform* inner_;
    double probability_;
    double factor_;
    Rng rng_;
    int spikes_ = 0;
};

}  // namespace servet
