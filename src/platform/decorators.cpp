#include "platform/decorators.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <thread>

#include "base/check.hpp"
#include "base/deadline.hpp"
#include "base/hash.hpp"
#include "obs/metrics.hpp"
#include "stats/summary.hpp"

namespace servet {

namespace {

// Stable: every count below is a function of the measured values and the
// plan seeds, never of scheduling — forked replicas derive their streams
// from stable task keys.
obs::Counter& robust_samples() {
    static obs::Counter& c =
        obs::counter("platform.robust.samples", obs::Stability::Stable);
    return c;
}
obs::Counter& robust_discarded() {
    static obs::Counter& c =
        obs::counter("platform.robust.discarded", obs::Stability::Stable);
    return c;
}
obs::Counter& robust_rejected() {
    static obs::Counter& c =
        obs::counter("platform.robust.rejected", obs::Stability::Stable);
    return c;
}
obs::Counter& robust_retries() {
    static obs::Counter& c =
        obs::counter("platform.robust.retries", obs::Stability::Stable);
    return c;
}
obs::Counter& fault_spikes() {
    static obs::Counter& c = obs::counter("platform.fault.spikes", obs::Stability::Stable);
    return c;
}
obs::Counter& fault_nans() {
    static obs::Counter& c = obs::counter("platform.fault.nans", obs::Stability::Stable);
    return c;
}
obs::Counter& fault_throws() {
    static obs::Counter& c = obs::counter("platform.fault.throws", obs::Stability::Stable);
    return c;
}
obs::Counter& fault_hangs() {
    static obs::Counter& c = obs::counter("platform.fault.hangs", obs::Stability::Stable);
    return c;
}

/// Largest mad/|median| across the per-element sample windows; a window
/// around a zero median converges only when its spread is exactly zero.
double worst_rel_mad(const std::vector<std::vector<double>>& per_element) {
    double worst = 0.0;
    for (const std::vector<double>& window : per_element) {
        const double m = stats::median(window);
        const double d = stats::mad(window);
        if (m == 0.0) {
            if (d != 0.0) return std::numeric_limits<double>::infinity();
            continue;
        }
        worst = std::max(worst, d / std::abs(m));
    }
    return worst;
}

}  // namespace

RobustPlatform::RobustPlatform(Platform& inner, int samples)
    : inner_(&inner), options_{samples, samples, 0.0, 8} {
    SERVET_CHECK(samples >= 1);
}

RobustPlatform::RobustPlatform(Platform& inner, const RobustOptions& options)
    : inner_(&inner), options_(options) {
    SERVET_CHECK(options.min_samples >= 1);
    SERVET_CHECK(options.max_samples >= options.min_samples);
    SERVET_CHECK(options.target_rel_mad >= 0.0);
    SERVET_CHECK(options.max_retries >= 0);
}

RobustPlatform::RobustPlatform(std::unique_ptr<Platform> owned, const RobustOptions& options)
    : inner_(owned.get()), owned_(std::move(owned)), options_(options) {}

std::string RobustPlatform::name() const {
    if (options_.min_samples == options_.max_samples)
        return "robust(" + inner_->name() + ", " + std::to_string(options_.min_samples) + ")";
    return "robust(" + inner_->name() + ", " + std::to_string(options_.min_samples) + ".." +
           std::to_string(options_.max_samples) + ")";
}

std::uint64_t RobustPlatform::fingerprint() const {
    const std::uint64_t inner = inner_->fingerprint();
    if (inner == 0) return 0;
    Fingerprint fp;
    fp.add(std::string_view("robust"));
    fp.add(options_.min_samples);
    fp.add(options_.max_samples);
    fp.add(options_.target_rel_mad);
    fp.add(options_.max_retries);
    fp.add(inner);
    return fp.value();
}

std::unique_ptr<Platform> RobustPlatform::fork(std::uint64_t noise_salt,
                                               std::uint64_t placement_salt) const {
    std::unique_ptr<Platform> inner = inner_->fork(noise_salt, placement_salt);
    if (inner == nullptr) return nullptr;
    return std::unique_ptr<Platform>(new RobustPlatform(std::move(inner), options_));
}

template <typename MeasureRun>
std::vector<double> RobustPlatform::aggregate(std::size_t width, MeasureRun&& measure_run) {
    std::vector<std::vector<double>> per_element(width);
    for (std::vector<double>& window : per_element)
        window.reserve(static_cast<std::size_t>(options_.max_samples));

    int runs = 0;
    int retries_left = options_.max_retries;
    while (true) {
        const std::vector<double> run = measure_run();
        SERVET_CHECK(run.size() == width);

        std::size_t bad = 0;
        for (const double v : run)
            if (!std::isfinite(v)) ++bad;
        if (bad > 0) {
            // One bad scalar poisons the whole run (its siblings shared
            // the machine state of a failed measurement): reject and
            // re-measure, within budget.
            robust_rejected().add(bad);
            if (retries_left == 0)
                throw ProbeFault(
                    "robust sampler: non-finite measurements persisted past the retry "
                    "budget");
            --retries_left;
            robust_retries().increment();
            continue;
        }

        // Counters reflect scalar measurements, not aggregations: a
        // concurrent probe of C cores contributes C scalars per run.
        robust_samples().add(width);
        for (std::size_t i = 0; i < width; ++i) per_element[i].push_back(run[i]);
        ++runs;

        if (runs < options_.min_samples) continue;
        if (runs >= options_.max_samples) break;
        if (worst_rel_mad(per_element) <= options_.target_rel_mad) break;
    }
    // All but the median-defining scalar of each element were discarded as
    // potential outliers.
    robust_discarded().add(static_cast<std::uint64_t>(runs - 1) * width);

    std::vector<double> result(width);
    for (std::size_t i = 0; i < width; ++i)
        result[i] = stats::median(std::move(per_element[i]));
    return result;
}

Cycles RobustPlatform::traverse_cycles(CoreId core, Bytes array_bytes, Bytes stride,
                                       int passes, bool fresh_placement) {
    return aggregate(1, [&] {
        return std::vector<double>{
            inner_->traverse_cycles(core, array_bytes, stride, passes, fresh_placement)};
    })[0];
}

std::vector<Cycles> RobustPlatform::traverse_cycles_concurrent(
    const std::vector<CoreId>& cores, Bytes array_bytes, Bytes stride, int passes,
    bool fresh_placement) {
    return aggregate(cores.size(), [&] {
        return inner_->traverse_cycles_concurrent(cores, array_bytes, stride, passes,
                                                  fresh_placement);
    });
}

BytesPerSecond RobustPlatform::copy_bandwidth(CoreId core, Bytes array_bytes) {
    return aggregate(1, [&] {
        return std::vector<double>{inner_->copy_bandwidth(core, array_bytes)};
    })[0];
}

std::vector<BytesPerSecond> RobustPlatform::copy_bandwidth_concurrent(
    const std::vector<CoreId>& cores, Bytes array_bytes) {
    return aggregate(cores.size(),
                     [&] { return inner_->copy_bandwidth_concurrent(cores, array_bytes); });
}

FlakyPlatform::FlakyPlatform(Platform& inner, const FaultPlan& plan)
    : inner_(&inner), plan_(plan), rng_(plan.seed),
      spikes_(std::make_shared<std::atomic<int>>(0)) {
    SERVET_CHECK(plan.spike_probability >= 0 && plan.spike_probability <= 1);
    SERVET_CHECK(plan.nan_probability >= 0 && plan.nan_probability <= 1);
    SERVET_CHECK(plan.throw_probability >= 0 && plan.throw_probability <= 1);
    SERVET_CHECK(plan.hang_probability >= 0 && plan.hang_probability <= 1);
    SERVET_CHECK_MSG(plan.spike_probability + plan.nan_probability +
                             plan.throw_probability + plan.hang_probability <=
                         1.0,
                     "platform fault probabilities must sum to at most 1");
    SERVET_CHECK(plan.spike_factor >= 1.0);
    SERVET_CHECK(plan.hang_seconds > 0.0);
}

FlakyPlatform::FlakyPlatform(Platform& inner, double spike_probability, double spike_factor,
                             std::uint64_t seed)
    : FlakyPlatform(inner, FaultPlan{.spike_probability = spike_probability,
                                     .spike_factor = spike_factor,
                                     .seed = seed}) {}

FlakyPlatform::FlakyPlatform(std::unique_ptr<Platform> owned, const FaultPlan& plan,
                             std::shared_ptr<std::atomic<int>> spikes)
    : inner_(owned.get()), owned_(std::move(owned)), plan_(plan), rng_(plan.seed),
      spikes_(std::move(spikes)) {}

std::string FlakyPlatform::name() const { return "flaky(" + inner_->name() + ")"; }

std::uint64_t FlakyPlatform::fingerprint() const {
    const std::uint64_t inner = inner_->fingerprint();
    if (inner == 0) return 0;
    // Only value-perturbing plans change what this substrate *measures*.
    // A throw/hang-only plan reports the inner platform's true values, so
    // it keeps the inner fingerprint: its surviving measurements are
    // memo- and journal-compatible with clean runs — which is what lets a
    // suite killed mid-hang resume without re-injecting the faults.
    if (!plan_.perturbs_platform_values()) return inner;
    return inner ^ mix64(plan_.fingerprint());
}

std::unique_ptr<Platform> FlakyPlatform::fork(std::uint64_t noise_salt,
                                              std::uint64_t placement_salt) const {
    std::unique_ptr<Platform> inner = inner_->fork(noise_salt, placement_salt);
    if (inner == nullptr) return nullptr;
    // The replica's fault stream derives from (plan seed, task salt) —
    // never from scheduling order — so parallel runs inject the same
    // faults into the same tasks as serial ones.
    FaultPlan plan = plan_;
    plan.seed = mix64(plan_.seed ^ noise_salt);
    return std::unique_ptr<Platform>(new FlakyPlatform(std::move(inner), plan, spikes_));
}

void FlakyPlatform::simulate_hang() {
    const auto start = std::chrono::steady_clock::now();
    const auto budget = std::chrono::duration<double>(plan_.hang_seconds);
    while (std::chrono::steady_clock::now() - start < budget) {
        check_deadline();  // the engine's per-task deadline cuts hangs off
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
}

double FlakyPlatform::filter(double value, bool inflate) {
    const double u = rng_.next_double();
    double band = plan_.spike_probability;
    if (u < band) {
        spikes_->fetch_add(1, std::memory_order_relaxed);
        fault_spikes().increment();
        return inflate ? value * plan_.spike_factor : value / plan_.spike_factor;
    }
    band += plan_.nan_probability;
    if (u < band) {
        fault_nans().increment();
        return std::numeric_limits<double>::quiet_NaN();
    }
    band += plan_.throw_probability;
    if (u < band) {
        fault_throws().increment();
        throw ProbeFault("injected probe fault");
    }
    band += plan_.hang_probability;
    if (u < band) {
        fault_hangs().increment();
        simulate_hang();
    }
    return value;
}

Cycles FlakyPlatform::traverse_cycles(CoreId core, Bytes array_bytes, Bytes stride,
                                      int passes, bool fresh_placement) {
    return filter(inner_->traverse_cycles(core, array_bytes, stride, passes, fresh_placement),
                  /*inflate=*/true);
}

std::vector<Cycles> FlakyPlatform::traverse_cycles_concurrent(const std::vector<CoreId>& cores,
                                                              Bytes array_bytes, Bytes stride,
                                                              int passes,
                                                              bool fresh_placement) {
    std::vector<Cycles> result = inner_->traverse_cycles_concurrent(
        cores, array_bytes, stride, passes, fresh_placement);
    for (Cycles& c : result) c = filter(c, /*inflate=*/true);
    return result;
}

BytesPerSecond FlakyPlatform::copy_bandwidth(CoreId core, Bytes array_bytes) {
    return filter(inner_->copy_bandwidth(core, array_bytes), /*inflate=*/false);
}

std::vector<BytesPerSecond> FlakyPlatform::copy_bandwidth_concurrent(
    const std::vector<CoreId>& cores, Bytes array_bytes) {
    std::vector<BytesPerSecond> result =
        inner_->copy_bandwidth_concurrent(cores, array_bytes);
    for (BytesPerSecond& b : result) b = filter(b, /*inflate=*/false);
    return result;
}

}  // namespace servet
