#include "platform/decorators.hpp"

#include "base/check.hpp"
#include "obs/metrics.hpp"
#include "stats/summary.hpp"

namespace servet {

namespace {

obs::Counter& robust_samples() {
    static obs::Counter& c =
        obs::counter("platform.robust.samples", obs::Stability::Stable);
    return c;
}
obs::Counter& robust_discarded() {
    static obs::Counter& c =
        obs::counter("platform.robust.discarded", obs::Stability::Stable);
    return c;
}

/// One robust aggregation: `samples` raw measurements taken, all but the
/// median-defining one discarded as potential outliers.
void count_robust(int samples) {
    robust_samples().add(static_cast<std::uint64_t>(samples));
    robust_discarded().add(static_cast<std::uint64_t>(samples - 1));
}

}  // namespace

RobustPlatform::RobustPlatform(Platform& inner, int samples)
    : inner_(&inner), samples_(samples) {
    SERVET_CHECK(samples >= 1);
}

std::string RobustPlatform::name() const {
    return "robust(" + inner_->name() + ", " + std::to_string(samples_) + ")";
}

Cycles RobustPlatform::traverse_cycles(CoreId core, Bytes array_bytes, Bytes stride,
                                       int passes, bool fresh_placement) {
    count_robust(samples_);
    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(samples_));
    for (int s = 0; s < samples_; ++s)
        samples.push_back(
            inner_->traverse_cycles(core, array_bytes, stride, passes, fresh_placement));
    return stats::median(std::move(samples));
}

std::vector<Cycles> RobustPlatform::traverse_cycles_concurrent(
    const std::vector<CoreId>& cores, Bytes array_bytes, Bytes stride, int passes,
    bool fresh_placement) {
    count_robust(samples_);
    std::vector<std::vector<Cycles>> runs;
    runs.reserve(static_cast<std::size_t>(samples_));
    for (int s = 0; s < samples_; ++s)
        runs.push_back(inner_->traverse_cycles_concurrent(cores, array_bytes, stride, passes,
                                                          fresh_placement));
    std::vector<Cycles> result(cores.size());
    for (std::size_t i = 0; i < cores.size(); ++i) {
        std::vector<double> per_core;
        per_core.reserve(runs.size());
        for (const auto& run : runs) per_core.push_back(run[i]);
        result[i] = stats::median(std::move(per_core));
    }
    return result;
}

BytesPerSecond RobustPlatform::copy_bandwidth(CoreId core, Bytes array_bytes) {
    count_robust(samples_);
    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(samples_));
    for (int s = 0; s < samples_; ++s)
        samples.push_back(inner_->copy_bandwidth(core, array_bytes));
    return stats::median(std::move(samples));
}

std::vector<BytesPerSecond> RobustPlatform::copy_bandwidth_concurrent(
    const std::vector<CoreId>& cores, Bytes array_bytes) {
    count_robust(samples_);
    std::vector<std::vector<BytesPerSecond>> runs;
    runs.reserve(static_cast<std::size_t>(samples_));
    for (int s = 0; s < samples_; ++s)
        runs.push_back(inner_->copy_bandwidth_concurrent(cores, array_bytes));
    std::vector<BytesPerSecond> result(cores.size());
    for (std::size_t i = 0; i < cores.size(); ++i) {
        std::vector<double> per_core;
        per_core.reserve(runs.size());
        for (const auto& run : runs) per_core.push_back(run[i]);
        result[i] = stats::median(std::move(per_core));
    }
    return result;
}

FlakyPlatform::FlakyPlatform(Platform& inner, double spike_probability, double spike_factor,
                             std::uint64_t seed)
    : inner_(&inner), probability_(spike_probability), factor_(spike_factor), rng_(seed) {
    SERVET_CHECK(spike_probability >= 0 && spike_probability <= 1);
    SERVET_CHECK(spike_factor >= 1.0);
}

std::string FlakyPlatform::name() const { return "flaky(" + inner_->name() + ")"; }

double FlakyPlatform::maybe_spike() {
    if (rng_.next_double() < probability_) {
        ++spikes_;
        return factor_;
    }
    return 1.0;
}

Cycles FlakyPlatform::traverse_cycles(CoreId core, Bytes array_bytes, Bytes stride,
                                      int passes, bool fresh_placement) {
    return inner_->traverse_cycles(core, array_bytes, stride, passes, fresh_placement) *
           maybe_spike();
}

std::vector<Cycles> FlakyPlatform::traverse_cycles_concurrent(const std::vector<CoreId>& cores,
                                                              Bytes array_bytes, Bytes stride,
                                                              int passes,
                                                              bool fresh_placement) {
    std::vector<Cycles> result = inner_->traverse_cycles_concurrent(
        cores, array_bytes, stride, passes, fresh_placement);
    for (Cycles& c : result) c *= maybe_spike();
    return result;
}

BytesPerSecond FlakyPlatform::copy_bandwidth(CoreId core, Bytes array_bytes) {
    return inner_->copy_bandwidth(core, array_bytes) / maybe_spike();
}

std::vector<BytesPerSecond> FlakyPlatform::copy_bandwidth_concurrent(
    const std::vector<CoreId>& cores, Bytes array_bytes) {
    std::vector<BytesPerSecond> result =
        inner_->copy_bandwidth_concurrent(cores, array_bytes);
    for (BytesPerSecond& b : result) b /= maybe_spike();
    return result;
}

}  // namespace servet
