// Deterministic fault injection, described as data. A FaultPlan names the
// failure modes a test (or a CI job) wants the measurement stack to
// survive: measurement spikes, NaN returns, thrown probe errors and
// simulated hangs on the platform side; message drops and delays on the
// network side. Every injector draws its decisions from an Rng seeded by
// the plan (mixed per replica with the task-key salt), so a faulty run is
// exactly reproducible and parallel runs inject the same faults as serial
// ones — the determinism contract extends to the failure paths.
//
// The plan lives in base/ because both platform/ (FlakyPlatform) and
// msg/ (FaultyNetwork) consume it, and those layers do not see each
// other.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

#include "base/types.hpp"

namespace servet {

/// A probe failed in a way that models a real measurement error (a
/// benchmark thread killed mid-run, a timer syscall failing). Phase
/// isolation in the suite turns these into per-phase errors.
struct ProbeFault : std::runtime_error {
    using std::runtime_error::runtime_error;
};

/// A message was "lost": the transport timed out waiting for it.
/// Transient by definition — callers with a retry budget (comm_costs)
/// re-issue the transfer; out of budget it escalates like a ProbeFault.
struct TransientNetworkError : std::runtime_error {
    using std::runtime_error::runtime_error;
};

struct FaultPlan {
    // ---- platform faults (FlakyPlatform), per scalar measurement ----
    double spike_probability = 0.0;  ///< multiply cycles (divide bandwidth)
    double spike_factor = 4.0;       ///< by this factor (>= 1)
    double nan_probability = 0.0;    ///< return NaN instead of the value
    double throw_probability = 0.0;  ///< throw ProbeFault
    double hang_probability = 0.0;   ///< stall until deadline or hang_seconds
    Seconds hang_seconds = 60.0;     ///< cap on a simulated hang's stall

    // ---- network faults (FaultyNetwork), per latency measurement ----
    double drop_probability = 0.0;   ///< throw TransientNetworkError
    double delay_probability = 0.0;  ///< multiply the latency
    double delay_factor = 4.0;       ///< by this factor (>= 1)

    // ---- transport faults (serve::ChaosProxy), per TCP connection ----
    // The profile-service counterpart of the platform/network families:
    // each accepted connection draws one fault decision from the plan's
    // seed mixed with the connection index, so a chaos run is exactly
    // reproducible and a retrying client sees the same failure sequence
    // every time.
    double conn_drop_probability = 0.0;     ///< accept, then close unanswered
    double conn_delay_probability = 0.0;    ///< stall before the response
    Seconds conn_delay_seconds = 0.05;      ///< length of an injected stall
    double conn_reset_probability = 0.0;    ///< RST mid-response (SO_LINGER 0)
    double conn_truncate_probability = 0.0; ///< cut the response body short
    double conn_trickle_probability = 0.0;  ///< dribble the response bytewise

    std::uint64_t seed = 0x5eedULL;

    [[nodiscard]] bool any_platform_faults() const {
        return spike_probability > 0 || nan_probability > 0 || throw_probability > 0 ||
               hang_probability > 0;
    }
    [[nodiscard]] bool any_network_faults() const {
        return drop_probability > 0 || delay_probability > 0;
    }
    [[nodiscard]] bool any_transport_faults() const {
        return conn_drop_probability > 0 || conn_delay_probability > 0 ||
               conn_reset_probability > 0 || conn_truncate_probability > 0 ||
               conn_trickle_probability > 0;
    }
    [[nodiscard]] bool active() const {
        return any_platform_faults() || any_network_faults() || any_transport_faults();
    }

    /// True when the plan can change a *value* the platform reports.
    /// Spikes and NaNs do; throws and hangs only change whether/when a
    /// measurement completes — a probe that survives them reports the
    /// true value. Fault injectors key their substrate fingerprint on
    /// this: a hang-only plan measures the same machine, so its results
    /// may share a memo cache and a run journal with clean runs (that is
    /// what lets a run killed mid-hang resume fault-free).
    [[nodiscard]] bool perturbs_platform_values() const {
        return spike_probability > 0 || nan_probability > 0;
    }
    /// Network counterpart: delays change measured latency, drops only
    /// force retries (the retried transfer reports the true latency).
    [[nodiscard]] bool perturbs_network_values() const { return delay_probability > 0; }

    /// Stable content hash of every field. Fault injectors mix this into
    /// their substrate fingerprint so faulty measurements never collide
    /// with clean ones in the memo cache.
    [[nodiscard]] std::uint64_t fingerprint() const;

    /// Parses "key=value,key=value" specs, e.g.
    /// "spike=0.05,factor=8,nan=0.01,throw=0.01,drop=0.02,seed=42".
    /// Keys: spike, factor, nan, throw, hang, hang_seconds, drop, delay,
    /// delay_factor, conn_drop, conn_delay, conn_delay_seconds,
    /// conn_reset, conn_truncate, conn_trickle, seed. Unknown keys or
    /// malformed values reject the whole spec. An empty spec is the
    /// inactive plan.
    [[nodiscard]] static std::optional<FaultPlan> parse(const std::string& spec);

    /// Plan from the SERVET_FAULTS environment variable (the CI fault
    /// job sets it), or `fallback` (default: the inactive plan) when
    /// unset. A set-but-malformed value is a loud failure: tests must not
    /// silently run fault-free.
    [[nodiscard]] static FaultPlan from_env(const FaultPlan& fallback);
    [[nodiscard]] static FaultPlan from_env();

    friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

}  // namespace servet
