// Crash-safe filesystem primitives shared by everything that persists
// state (profiles, measurement memos, the run journal). The invariant all
// of them need is the same: a reader must see either the old complete
// file or the new complete file, never a torn write — so whole-file saves
// go through write_file_atomic (tmp sibling + fsync + rename + directory
// fsync), and growing files append through fd-based writers that the
// owner fsyncs at commit points.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace servet {

/// mkdir -p. Returns true when the directory exists on return (already
/// present counts as success).
[[nodiscard]] bool create_directories(const std::string& path);

/// Creates the directory that will contain `path`. A bare filename has no
/// parent to create and trivially succeeds.
[[nodiscard]] bool create_parent_dirs(const std::string& path);

/// Crash-atomic whole-file write: `content` lands in a uniquely named
/// temporary sibling (pid + counter, opened O_EXCL so concurrent writers
/// to the same path never share a temp file), is flushed to disk (fsync),
/// renamed over `path` (atomic within a directory per POSIX), and the
/// directory entry itself is fsync'd. A crash at any point leaves either
/// the previous file or the new one; concurrent writers leave exactly one
/// writer's complete content. Returns false on any I/O failure, with the
/// temporary removed.
[[nodiscard]] bool write_file_atomic(const std::string& path, std::string_view content);

/// Outcome of read_file: distinguishes "nothing there" (routine — first
/// run) from "there but unreadable" (worth a diagnostic).
enum class FileRead { Ok, Absent, Error };

/// Reads the whole file into `out` (unmodified unless Ok is returned).
[[nodiscard]] FileRead read_file(const std::string& path, std::string* out);

/// Names of the regular files directly inside `dir`, sorted
/// lexicographically (the order spool drains replay in). An absent
/// directory is an empty listing, not an error; false only on a real
/// I/O failure.
[[nodiscard]] bool list_directory(const std::string& dir, std::vector<std::string>* names);

/// Deletes one file. Absent already counts as success (idempotent —
/// spool drains race with nothing, but crashes can re-run them).
[[nodiscard]] bool remove_file(const std::string& path);

}  // namespace servet
