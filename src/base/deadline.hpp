// Cooperative per-task deadlines. The measurement engine cannot preempt a
// probe that hangs (killing a thread mid-measurement is UB territory), so
// the contract is cooperative: the engine arms a thread-local deadline
// around each task body, and long-running or stalled probe code polls
// deadline_exceeded() at safe points. The simulated-hang fault injector is
// the canonical poller — a "hung" probe stalls in small sleeps until the
// deadline cuts it off with TaskDeadlineExceeded, which phase isolation
// then reports as a per-phase error instead of wedging the whole suite.
//
// The deadline is wall clock and therefore Volatile by nature; whether it
// fires must not influence any Stable counter on fault-free runs. Tests
// that combine hangs with determinism checks use hang budgets far above
// the deadline so the timeout outcome itself is deterministic.
#pragma once

#include <chrono>
#include <stdexcept>

#include "base/types.hpp"

namespace servet {

/// A cooperative deadline cut a task off.
struct TaskDeadlineExceeded : std::runtime_error {
    using std::runtime_error::runtime_error;
};

namespace detail {
// steady_clock time_point of the armed deadline; min() = disarmed.
inline thread_local std::chrono::steady_clock::time_point task_deadline =
    std::chrono::steady_clock::time_point::min();
}  // namespace detail

/// True when a deadline is armed on this thread and has passed.
[[nodiscard]] inline bool deadline_exceeded() {
    return detail::task_deadline != std::chrono::steady_clock::time_point::min() &&
           std::chrono::steady_clock::now() >= detail::task_deadline;
}

/// Throws TaskDeadlineExceeded when the armed deadline has passed. Probe
/// code with unbounded loops calls this at iteration boundaries.
inline void check_deadline() {
    if (deadline_exceeded())
        throw TaskDeadlineExceeded("task exceeded its measurement deadline");
}

/// Arms a deadline `budget` seconds from now for the lifetime of the
/// guard (budget <= 0 arms nothing). Nesting keeps the tighter outer
/// deadline: an inner guard never extends what the engine armed.
class DeadlineGuard {
  public:
    explicit DeadlineGuard(Seconds budget) : previous_(detail::task_deadline) {
        if (budget <= 0) return;
        const auto mine =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(budget));
        if (previous_ == std::chrono::steady_clock::time_point::min() || mine < previous_)
            detail::task_deadline = mine;
    }
    ~DeadlineGuard() { detail::task_deadline = previous_; }
    DeadlineGuard(const DeadlineGuard&) = delete;
    DeadlineGuard& operator=(const DeadlineGuard&) = delete;

  private:
    std::chrono::steady_clock::time_point previous_;
};

}  // namespace servet
