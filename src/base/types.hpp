// Fundamental vocabulary types shared by every Servet module.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace servet {

/// Logical core identifier, as numbered by the OS (or by a machine model).
/// The paper's central observation (Fig. 8) is that this numbering need not
/// follow the physical layout, which is exactly why Servet exists.
using CoreId = int;

/// A byte count (array size, cache size, message size...).
using Bytes = std::uint64_t;

/// Simulated or measured cycle count.
using Cycles = double;

/// Seconds, for latency results.
using Seconds = double;

/// Bytes per second, for bandwidth results.
using BytesPerSecond = double;

/// An unordered pair of distinct cores, the unit of all pairwise probing
/// (shared caches, memory contention, communication latency).
struct CorePair {
    CoreId a = 0;
    CoreId b = 0;

    /// Canonical form: a < b. Pairwise results never depend on order.
    [[nodiscard]] constexpr CorePair canonical() const {
        return a <= b ? CorePair{a, b} : CorePair{b, a};
    }

    friend constexpr bool operator==(const CorePair&, const CorePair&) = default;
    friend constexpr auto operator<=>(const CorePair&, const CorePair&) = default;
};

/// All unordered pairs {i, j}, i < j < n_cores; the probe schedule used by
/// every pairwise benchmark in the suite.
[[nodiscard]] inline std::vector<CorePair> all_core_pairs(int n_cores) {
    std::vector<CorePair> pairs;
    if (n_cores > 1) pairs.reserve(static_cast<std::size_t>(n_cores) * static_cast<std::size_t>(n_cores - 1) / 2);
    for (CoreId i = 0; i < n_cores; ++i)
        for (CoreId j = i + 1; j < n_cores; ++j) pairs.push_back({i, j});
    return pairs;
}

/// All pairs {0, j} — the subset the paper plots "for clarity purposes".
[[nodiscard]] inline std::vector<CorePair> pairs_with_core0(int n_cores) {
    std::vector<CorePair> pairs;
    for (CoreId j = 1; j < n_cores; ++j) pairs.push_back({0, j});
    return pairs;
}

inline constexpr Bytes KiB = 1024;
inline constexpr Bytes MiB = 1024 * KiB;
inline constexpr Bytes GiB = 1024 * MiB;

}  // namespace servet
