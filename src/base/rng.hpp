// Deterministic PRNG for the simulator. All simulated physical-page
// placement, measurement jitter and workload generation flow from explicit
// seeds so every figure/table bench is exactly reproducible run-to-run.
//
// xoshiro256** (public domain construction, Blackman & Vigna) seeded via
// splitmix64 — small, fast, and not dependent on libstdc++'s unspecified
// distribution implementations.
#pragma once

#include <cstdint>

namespace servet {

class Rng {
  public:
    explicit Rng(std::uint64_t seed = 0x5e21e1u) {
        // splitmix64 seeding: decorrelates consecutive seeds.
        std::uint64_t x = seed;
        for (auto& word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /// Uniform 64-bit value.
    std::uint64_t next_u64() {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform in [0, bound). bound must be > 0. Uses rejection sampling to
    /// avoid modulo bias (matters for page-set statistics).
    std::uint64_t next_below(std::uint64_t bound) {
        const std::uint64_t threshold = -bound % bound;  // 2^64 mod bound
        for (;;) {
            const std::uint64_t r = next_u64();
            if (r >= threshold) return r % bound;
        }
    }

    /// Uniform double in [0, 1).
    double next_double() {
        return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
    }

    /// Multiplicative jitter in [1-amplitude, 1+amplitude]; used for
    /// measurement-noise injection in tests and noisy-platform models.
    double jitter(double amplitude) {
        return 1.0 + amplitude * (2.0 * next_double() - 1.0);
    }

  private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4]{};
};

}  // namespace servet
