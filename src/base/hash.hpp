// Stable, seedable hashing for content addressing. Measurement memoization
// and per-task RNG seeding both need hashes that are identical across
// runs, platforms and compilers, so everything here is a fixed algorithm
// (FNV-1a / splitmix64) rather than std::hash, whose values are
// unspecified and may change between libstdc++ versions.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace servet {

/// FNV-1a over a byte string. Stable across platforms; good enough to
/// content-address measurement keys (collisions would need ~2^32 keys).
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view text) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : text) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/// splitmix64 finalizer: decorrelates related inputs (key ^ salt patterns)
/// before they are used as RNG seeds.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// Incremental structural fingerprint (FNV-1a over a typed field stream).
/// Used to content-address a MachineSpec: two specs with equal fields get
/// equal fingerprints, and any field change perturbs it.
class Fingerprint {
  public:
    void add(std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h_ ^= (v >> (8 * i)) & 0xff;
            h_ *= 0x100000001b3ULL;
        }
    }
    void add(std::int64_t v) { add(static_cast<std::uint64_t>(v)); }
    void add(int v) { add(static_cast<std::uint64_t>(static_cast<std::int64_t>(v))); }
    void add(bool v) { add(static_cast<std::uint64_t>(v)); }
    void add(double v) {
        std::uint64_t bits = 0;
        static_assert(sizeof bits == sizeof v);
        std::memcpy(&bits, &v, sizeof bits);
        add(bits);
    }
    void add(std::string_view s) {
        add(static_cast<std::uint64_t>(s.size()));  // length-prefix: "ab","c" != "a","bc"
        for (const char c : s) {
            h_ ^= static_cast<unsigned char>(c);
            h_ *= 0x100000001b3ULL;
        }
    }

    [[nodiscard]] std::uint64_t value() const { return h_; }

  private:
    std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

}  // namespace servet
