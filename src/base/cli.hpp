// Tiny declarative command-line parser for the example/bench executables.
// Supports `--flag`, `--key value`, `--key=value` and positional arguments.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace servet {

class CliParser {
  public:
    explicit CliParser(std::string program_description);

    /// Register a boolean flag (`--name`, or explicitly `--name=true`,
    /// `--name=false`, `--name=1`, `--name=0`; any other value is a parse
    /// error).
    void add_flag(std::string name, std::string help);

    /// Register a valued option (`--name VALUE` or `--name=VALUE`) with a
    /// default shown in --help.
    void add_option(std::string name, std::string help, std::string default_value);

    /// Parse argv. Returns false (after printing a diagnostic) on unknown
    /// options or a missing value. `--help` prints usage and returns false.
    [[nodiscard]] bool parse(int argc, const char* const* argv);

    [[nodiscard]] bool flag(std::string_view name) const;
    [[nodiscard]] const std::string& option(std::string_view name) const;
    [[nodiscard]] std::optional<long long> option_int(std::string_view name) const;
    [[nodiscard]] std::optional<double> option_double(std::string_view name) const;
    [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

    /// The --help text. Defaults shown are the registered ones, unchanged
    /// by any values parse() already applied.
    [[nodiscard]] std::string usage_text(std::string_view argv0) const;
    void print_usage(std::string_view argv0) const;

  private:
    struct Entry {
        std::string help;
        std::string value;          // current value (default until parsed)
        std::string default_value;  // registered default, frozen for --help
        bool is_flag = false;
        bool seen = false;
    };

    std::string description_;
    std::map<std::string, Entry, std::less<>> entries_;
    std::vector<std::string> positional_;
};

}  // namespace servet
