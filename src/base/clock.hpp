// Process-wide monotonic clock and dense thread ids, shared by the log
// prefix and the obs subsystem (tracing spans, metric timestamps) so every
// observability record is stamped from one time base and a `t3` in a log
// line is the same thread as `tid: 3` in a trace file.
#pragma once

#include <cstdint>

namespace servet {

/// Monotonic nanoseconds since the first call in this process (the
/// process epoch). Thread-safe; the epoch is latched once.
[[nodiscard]] std::uint64_t monotonic_ns();

/// Dense per-thread ordinal assigned on first use (the thread that asks
/// first gets 0 — in practice the main thread). Stable for the thread's
/// lifetime; ids are never reused within a process.
[[nodiscard]] int thread_ordinal();

}  // namespace servet
