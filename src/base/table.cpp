#include "base/table.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "base/check.hpp"

namespace servet {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
    SERVET_CHECK(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
    SERVET_CHECK_MSG(cells.size() == header_.size(), "row width must match header");
    rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

    std::string out;
    const auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out += row[c];
            if (c + 1 < row.size()) out.append(width[c] - row[c].size() + 2, ' ');
        }
        out += '\n';
    };
    emit_row(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c + 1 < width.size() ? 2 : 0);
    out.append(total, '-');
    out += '\n';
    for (const auto& row : rows_) emit_row(row);
    return out;
}

std::string TextTable::render_csv() const {
    const auto emit_cell = [](std::string& out, const std::string& cell) {
        if (cell.find_first_of(",\"\n") == std::string::npos) {
            out += cell;
            return;
        }
        out += '"';
        for (char c : cell) {
            if (c == '"') out += '"';
            out += c;
        }
        out += '"';
    };
    std::string out;
    const auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c) out += ',';
            emit_cell(out, row[c]);
        }
        out += '\n';
    };
    emit_row(header_);
    for (const auto& row : rows_) emit_row(row);
    return out;
}

std::string strf(const char* fmt, ...) {
    char buf[512];
    std::va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, args);
    va_end(args);
    return buf;
}

}  // namespace servet
