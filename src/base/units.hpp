// Byte-size parsing and human-readable formatting ("32KB", "12MB", "2.5GB").
// Used by the CLI tools, the profile file format and every report printer.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "base/types.hpp"

namespace servet {

/// Format a byte count the way the paper does: exact binary units where
/// possible ("32KB", "12MB"), otherwise one decimal ("2.5MB").
[[nodiscard]] std::string format_bytes(Bytes n);

/// Parse "4096", "16K", "16KB", "16KiB", "3MB", "12m", "1.5GB" (case
/// insensitive, binary units). Returns nullopt on malformed input.
[[nodiscard]] std::optional<Bytes> parse_bytes(std::string_view text);

/// Format a bandwidth as "12.3 GB/s" / "820.0 MB/s".
[[nodiscard]] std::string format_bandwidth(BytesPerSecond bps);

/// Format a latency as "1.20 us" / "3.45 ms" / "120 ns".
[[nodiscard]] std::string format_latency(Seconds s);

}  // namespace servet
