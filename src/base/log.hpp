// Minimal leveled logging to stderr. The suite's long-running benchmarks
// (Table I reports 43-55 minutes on real hardware) use this for progress
// reporting; `--quiet` silences everything below Warn.
//
// Each line is prefixed `[servet <level> +<seconds> t<ordinal>]` where the
// timestamp and thread ordinal come from base/clock — the same time base
// and thread ids the obs subsystem stamps trace spans with, so log lines
// and trace slices correlate directly.
#pragma once

#include <string_view>

namespace servet {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3 };

/// Global threshold; messages below it are dropped. Backed by a
/// std::atomic<LogLevel> (relaxed), so pool worker threads may read it
/// while another thread adjusts it — no ordering is implied beyond the
/// level value itself.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// printf-style logging. Thread-safe (single write() per message).
void logf(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace servet

#define SERVET_LOG_DEBUG(...) ::servet::logf(::servet::LogLevel::Debug, __VA_ARGS__)
#define SERVET_LOG_INFO(...) ::servet::logf(::servet::LogLevel::Info, __VA_ARGS__)
#define SERVET_LOG_WARN(...) ::servet::logf(::servet::LogLevel::Warn, __VA_ARGS__)
#define SERVET_LOG_ERROR(...) ::servet::logf(::servet::LogLevel::Error, __VA_ARGS__)
