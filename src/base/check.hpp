// Precondition / invariant checking (I.5, I.6 of the Core Guidelines,
// without a GSL dependency). SERVET_CHECK is always on: the suite is a
// measurement tool, so failing loudly beats returning garbage estimates.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace servet::detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
    std::fprintf(stderr, "servet: check failed: %s at %s:%d%s%s\n", expr, file, line,
                 msg ? " — " : "", msg ? msg : "");
    std::abort();
}
}  // namespace servet::detail

#define SERVET_CHECK(expr)                                                        \
    do {                                                                          \
        if (!(expr)) ::servet::detail::check_failed(#expr, __FILE__, __LINE__, nullptr); \
    } while (false)

#define SERVET_CHECK_MSG(expr, msg)                                              \
    do {                                                                         \
        if (!(expr)) ::servet::detail::check_failed(#expr, __FILE__, __LINE__, msg); \
    } while (false)
