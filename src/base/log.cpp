#include "base/log.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>

#include "base/clock.hpp"

namespace servet {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Info};

constexpr const char* level_tag(LogLevel level) {
    switch (level) {
        case LogLevel::Debug: return "debug";
        case LogLevel::Info: return "info";
        case LogLevel::Warn: return "warn";
        case LogLevel::Error: return "error";
    }
    return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void logf(LogLevel level, const char* fmt, ...) {
    if (level < log_level()) return;
    char buf[1024];
    std::va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, args);
    va_end(args);
    // Same clock/thread ids as obs trace spans (see header).
    const double seconds = static_cast<double>(monotonic_ns()) / 1e9;
    std::fprintf(stderr, "[servet %s +%.3f t%d] %s\n", level_tag(level), seconds,
                 thread_ordinal(), buf);
}

}  // namespace servet
