// Plain-text table printer used by every bench binary to emit the paper's
// tables/figure series as aligned columns (easy to eyeball and to diff).
#pragma once

#include <string>
#include <vector>

namespace servet {

class TextTable {
  public:
    explicit TextTable(std::vector<std::string> header);

    void add_row(std::vector<std::string> cells);

    /// Render with columns padded to the widest cell, header underlined.
    [[nodiscard]] std::string render() const;

    /// Render as RFC-4180-style CSV (plot-ready): header row first, cells
    /// quoted when they contain commas/quotes/newlines.
    [[nodiscard]] std::string render_csv() const;

    [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// printf-style helper for composing cells.
[[nodiscard]] std::string strf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace servet
