#include "base/cli.hpp"

#include <charconv>
#include <cstdio>

#include "base/check.hpp"

namespace servet {

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {
    add_flag("help", "show this help and exit");
}

void CliParser::add_flag(std::string name, std::string help) {
    entries_.emplace(std::move(name),
                     Entry{std::move(help), "false", "false", /*is_flag=*/true, false});
}

void CliParser::add_option(std::string name, std::string help, std::string default_value) {
    entries_.emplace(std::move(name), Entry{std::move(help), default_value,
                                            std::move(default_value), /*is_flag=*/false, false});
}

bool CliParser::parse(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
        std::string_view arg = argv[i];
        if (!arg.starts_with("--")) {
            positional_.emplace_back(arg);
            continue;
        }
        arg.remove_prefix(2);
        std::string_view key = arg;
        std::optional<std::string_view> inline_value;
        if (const auto eq = arg.find('='); eq != std::string_view::npos) {
            key = arg.substr(0, eq);
            inline_value = arg.substr(eq + 1);
        }
        const auto it = entries_.find(key);
        if (it == entries_.end()) {
            std::fprintf(stderr, "%s: unknown option --%.*s (see --help)\n", argv[0],
                         static_cast<int>(key.size()), key.data());
            return false;
        }
        Entry& entry = it->second;
        entry.seen = true;
        if (entry.is_flag) {
            // `--flag=VALUE` must be an actual boolean: anything else used
            // to parse "successfully" and then compare unequal to "true",
            // silently disabling the flag the user just asked for.
            const std::string_view raw = inline_value.value_or("true");
            if (raw == "true" || raw == "1") {
                entry.value = "true";
            } else if (raw == "false" || raw == "0") {
                entry.value = "false";
            } else {
                std::fprintf(stderr,
                             "%s: option --%.*s requires a boolean value "
                             "(true/false/1/0), got '%.*s'\n",
                             argv[0], static_cast<int>(key.size()), key.data(),
                             static_cast<int>(raw.size()), raw.data());
                return false;
            }
        } else if (inline_value) {
            entry.value = *inline_value;
        } else if (i + 1 < argc) {
            entry.value = argv[++i];
        } else {
            std::fprintf(stderr, "%s: option --%.*s requires a value\n", argv[0],
                         static_cast<int>(key.size()), key.data());
            return false;
        }
    }
    if (flag("help")) {
        print_usage(argv[0]);
        return false;
    }
    return true;
}

bool CliParser::flag(std::string_view name) const {
    const auto it = entries_.find(name);
    SERVET_CHECK_MSG(it != entries_.end(), "flag() on unregistered option");
    return it->second.value == "true";
}

const std::string& CliParser::option(std::string_view name) const {
    const auto it = entries_.find(name);
    SERVET_CHECK_MSG(it != entries_.end(), "option() on unregistered option");
    return it->second.value;
}

std::optional<long long> CliParser::option_int(std::string_view name) const {
    const std::string& text = option(name);
    long long value = 0;
    const auto [end, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc{} || end != text.data() + text.size()) return std::nullopt;
    return value;
}

std::optional<double> CliParser::option_double(std::string_view name) const {
    const std::string& text = option(name);
    double value = 0;
    const auto [end, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc{} || end != text.data() + text.size()) return std::nullopt;
    return value;
}

std::string CliParser::usage_text(std::string_view argv0) const {
    std::string out = description_ + "\n\nusage: " + std::string(argv0) +
                      " [options]\n\noptions:\n";
    char line[512];
    for (const auto& [name, entry] : entries_) {
        if (entry.is_flag) {
            std::snprintf(line, sizeof line, "  --%-22s %s\n", name.c_str(),
                          entry.help.c_str());
        } else {
            // The registered default, not the parsed value: `--help` next
            // to other options must not fold them into the usage text.
            const std::string label = name + " <v>";
            std::snprintf(line, sizeof line, "  --%-22s %s (default: %s)\n", label.c_str(),
                          entry.help.c_str(), entry.default_value.c_str());
        }
        out += line;
    }
    return out;
}

void CliParser::print_usage(std::string_view argv0) const {
    std::fprintf(stderr, "%s", usage_text(argv0).c_str());
}

}  // namespace servet
