#include "base/units.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace servet {

namespace {

struct Unit {
    std::string_view suffix;
    Bytes factor;
};

constexpr std::array<Unit, 3> kUnits{{{"GB", GiB}, {"MB", MiB}, {"KB", KiB}}};

std::string format_with(double value, std::string_view suffix) {
    char buf[48];
    if (value == std::floor(value) && value < 1e15) {
        std::snprintf(buf, sizeof buf, "%.0f%.*s", value, static_cast<int>(suffix.size()),
                      suffix.data());
    } else {
        std::snprintf(buf, sizeof buf, "%.1f%.*s", value, static_cast<int>(suffix.size()),
                      suffix.data());
    }
    return buf;
}

}  // namespace

std::string format_bytes(Bytes n) {
    for (const auto& [suffix, factor] : kUnits) {
        if (n >= factor) return format_with(static_cast<double>(n) / static_cast<double>(factor), suffix);
    }
    return format_with(static_cast<double>(n), "B");
}

std::optional<Bytes> parse_bytes(std::string_view text) {
    if (text.empty()) return std::nullopt;

    // Split numeric prefix from unit suffix.
    std::size_t pos = 0;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) || text[pos] == '.'))
        ++pos;
    const std::string_view num = text.substr(0, pos);
    std::string_view unit = text.substr(pos);
    if (num.empty()) return std::nullopt;

    double value = 0;
    const auto [end, ec] = std::from_chars(num.data(), num.data() + num.size(), value);
    if (ec != std::errc{} || end != num.data() + num.size() || value < 0) return std::nullopt;

    // Normalize unit: strip spaces, lowercase, accept K/KB/KiB forms.
    std::string u;
    for (char c : unit) {
        if (c == ' ') continue;
        u.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
    Bytes factor = 1;
    if (u.empty() || u == "b") {
        factor = 1;
    } else if (u == "k" || u == "kb" || u == "kib") {
        factor = KiB;
    } else if (u == "m" || u == "mb" || u == "mib") {
        factor = MiB;
    } else if (u == "g" || u == "gb" || u == "gib") {
        factor = GiB;
    } else {
        return std::nullopt;
    }
    const double bytes = value * static_cast<double>(factor);
    if (bytes > 9.0e18) return std::nullopt;  // would overflow Bytes
    return static_cast<Bytes>(std::llround(bytes));
}

std::string format_bandwidth(BytesPerSecond bps) {
    char buf[48];
    if (bps >= 1e9) {
        std::snprintf(buf, sizeof buf, "%.2f GB/s", bps / 1e9);
    } else if (bps >= 1e6) {
        std::snprintf(buf, sizeof buf, "%.1f MB/s", bps / 1e6);
    } else if (bps >= 1e3) {
        std::snprintf(buf, sizeof buf, "%.1f KB/s", bps / 1e3);
    } else {
        std::snprintf(buf, sizeof buf, "%.1f B/s", bps);
    }
    return buf;
}

std::string format_latency(Seconds s) {
    char buf[48];
    if (s >= 1.0) {
        std::snprintf(buf, sizeof buf, "%.2f s", s);
    } else if (s >= 1e-3) {
        std::snprintf(buf, sizeof buf, "%.2f ms", s * 1e3);
    } else if (s >= 1e-6) {
        std::snprintf(buf, sizeof buf, "%.2f us", s * 1e6);
    } else {
        std::snprintf(buf, sizeof buf, "%.0f ns", s * 1e9);
    }
    return buf;
}

}  // namespace servet
