#include "base/fs.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

namespace servet {

namespace {

/// fsync the directory containing `path`, so the rename that just landed
/// there survives a power loss. Best-effort: some filesystems refuse
/// directory fsync, and the file-level fsync already happened.
void fsync_parent_dir(const std::string& path) {
    const std::filesystem::path parent = std::filesystem::path(path).parent_path();
    const std::string dir = parent.empty() ? "." : parent.string();
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return;
    (void)::fsync(fd);
    ::close(fd);
}

}  // namespace

bool create_directories(const std::string& path) {
    if (path.empty()) return false;
    std::error_code ec;
    std::filesystem::create_directories(path, ec);
    if (ec) return false;
    return std::filesystem::is_directory(path, ec);
}

bool create_parent_dirs(const std::string& path) {
    const std::filesystem::path parent = std::filesystem::path(path).parent_path();
    if (parent.empty()) return true;
    return create_directories(parent.string());
}

bool write_file_atomic(const std::string& path, std::string_view content) {
    // The temp name must be unique per writer: a fixed `path + ".tmp"`
    // lets two concurrent writers open the same temp file and publish a
    // mix of both contents through the rename. pid + a process-local
    // counter disambiguates across processes and across threads, and
    // O_EXCL turns any residual collision into a retry instead of a
    // silent shared file.
    static std::atomic<unsigned long> tmp_serial{0};
    std::string tmp;
    int fd = -1;
    for (int attempt = 0; attempt < 16 && fd < 0; ++attempt) {
        tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
              std::to_string(tmp_serial.fetch_add(1, std::memory_order_relaxed));
        fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
        if (fd < 0 && errno != EEXIST) return false;
    }
    if (fd < 0) return false;

    const char* data = content.data();
    std::size_t remaining = content.size();
    while (remaining > 0) {
        const ssize_t n = ::write(fd, data, remaining);
        if (n < 0) {
            if (errno == EINTR) continue;
            ::close(fd);
            std::remove(tmp.c_str());
            return false;
        }
        data += n;
        remaining -= static_cast<std::size_t>(n);
    }
    // The rename must not outrun the data: fsync before the new name can
    // point at the new content, or a crash could expose an empty file
    // under the final path.
    if (::fsync(fd) != 0 || ::close(fd) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    fsync_parent_dir(path);
    return true;
}

FileRead read_file(const std::string& path, std::string* out) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return errno == ENOENT ? FileRead::Absent : FileRead::Error;
    std::stringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) return FileRead::Error;
    *out = buffer.str();
    return FileRead::Ok;
}

bool list_directory(const std::string& dir, std::vector<std::string>* names) {
    names->clear();
    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec);
    if (ec) {
        if (ec == std::errc::no_such_file_or_directory) return true;
        return false;
    }
    for (const auto& entry : it) {
        std::error_code type_ec;
        if (entry.is_regular_file(type_ec)) names->push_back(entry.path().filename().string());
    }
    std::sort(names->begin(), names->end());
    return true;
}

bool remove_file(const std::string& path) {
    std::error_code ec;
    std::filesystem::remove(path, ec);
    return !ec;
}

}  // namespace servet
