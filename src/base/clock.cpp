#include "base/clock.hpp"

#include <atomic>
#include <chrono>

namespace servet {

namespace {

std::chrono::steady_clock::time_point process_epoch() {
    static const std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();
    return epoch;
}

}  // namespace

std::uint64_t monotonic_ns() {
    const auto elapsed = std::chrono::steady_clock::now() - process_epoch();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
}

int thread_ordinal() {
    static std::atomic<int> next{0};
    thread_local const int ordinal = next.fetch_add(1, std::memory_order_relaxed);
    return ordinal;
}

}  // namespace servet
