#include "base/fault_plan.hpp"

#include <cstdlib>

#include "base/check.hpp"
#include "base/hash.hpp"

namespace servet {

namespace {

std::optional<double> parse_probability(const std::string& text) {
    if (text.empty()) return std::nullopt;
    char* end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size()) return std::nullopt;
    if (v < 0.0 || v > 1.0) return std::nullopt;
    return v;
}

std::optional<double> parse_factor(const std::string& text) {
    if (text.empty()) return std::nullopt;
    char* end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size()) return std::nullopt;
    if (v < 1.0) return std::nullopt;
    return v;
}

}  // namespace

std::uint64_t FaultPlan::fingerprint() const {
    Fingerprint fp;
    fp.add(spike_probability);
    fp.add(spike_factor);
    fp.add(nan_probability);
    fp.add(throw_probability);
    fp.add(hang_probability);
    fp.add(hang_seconds);
    fp.add(drop_probability);
    fp.add(delay_probability);
    fp.add(delay_factor);
    fp.add(conn_drop_probability);
    fp.add(conn_delay_probability);
    fp.add(conn_delay_seconds);
    fp.add(conn_reset_probability);
    fp.add(conn_truncate_probability);
    fp.add(conn_trickle_probability);
    fp.add(seed);
    return fp.value();
}

std::optional<FaultPlan> FaultPlan::parse(const std::string& spec) {
    FaultPlan plan;
    std::size_t begin = 0;
    while (begin <= spec.size()) {
        std::size_t end = spec.find(',', begin);
        if (end == std::string::npos) end = spec.size();
        const std::string field = spec.substr(begin, end - begin);
        begin = end + 1;
        if (field.empty()) continue;

        const std::size_t eq = field.find('=');
        if (eq == std::string::npos) return std::nullopt;
        const std::string key = field.substr(0, eq);
        const std::string value = field.substr(eq + 1);

        const auto set_probability = [&](double& slot) {
            const auto v = parse_probability(value);
            if (v) slot = *v;
            return v.has_value();
        };
        const auto set_factor = [&](double& slot) {
            const auto v = parse_factor(value);
            if (v) slot = *v;
            return v.has_value();
        };

        bool ok = false;
        if (key == "spike") {
            ok = set_probability(plan.spike_probability);
        } else if (key == "factor") {
            ok = set_factor(plan.spike_factor);
        } else if (key == "nan") {
            ok = set_probability(plan.nan_probability);
        } else if (key == "throw") {
            ok = set_probability(plan.throw_probability);
        } else if (key == "hang") {
            ok = set_probability(plan.hang_probability);
        } else if (key == "hang_seconds") {
            char* endp = nullptr;
            const double v = std::strtod(value.c_str(), &endp);
            ok = !value.empty() && endp == value.c_str() + value.size() && v > 0.0;
            if (ok) plan.hang_seconds = v;
        } else if (key == "drop") {
            ok = set_probability(plan.drop_probability);
        } else if (key == "delay") {
            ok = set_probability(plan.delay_probability);
        } else if (key == "delay_factor") {
            ok = set_factor(plan.delay_factor);
        } else if (key == "conn_drop") {
            ok = set_probability(plan.conn_drop_probability);
        } else if (key == "conn_delay") {
            ok = set_probability(plan.conn_delay_probability);
        } else if (key == "conn_delay_seconds") {
            char* endp = nullptr;
            const double v = std::strtod(value.c_str(), &endp);
            ok = !value.empty() && endp == value.c_str() + value.size() && v >= 0.0;
            if (ok) plan.conn_delay_seconds = v;
        } else if (key == "conn_reset") {
            ok = set_probability(plan.conn_reset_probability);
        } else if (key == "conn_truncate") {
            ok = set_probability(plan.conn_truncate_probability);
        } else if (key == "conn_trickle") {
            ok = set_probability(plan.conn_trickle_probability);
        } else if (key == "seed") {
            char* endp = nullptr;
            const unsigned long long v = std::strtoull(value.c_str(), &endp, 0);
            ok = !value.empty() && endp == value.c_str() + value.size();
            if (ok) plan.seed = v;
        }
        if (!ok) return std::nullopt;
    }
    return plan;
}

FaultPlan FaultPlan::from_env(const FaultPlan& fallback) {
    const char* spec = std::getenv("SERVET_FAULTS");
    if (spec == nullptr) return fallback;
    const auto plan = parse(spec);
    SERVET_CHECK_MSG(plan.has_value(), "SERVET_FAULTS is set but does not parse");
    return *plan;
}

FaultPlan FaultPlan::from_env() { return from_env(FaultPlan{}); }

}  // namespace servet
