#include "core/shared_cache.hpp"

#include <algorithm>

#include "base/check.hpp"
#include "base/log.hpp"
#include "stats/unionfind.hpp"

namespace servet::core {

namespace {
/// (2/3)*CS rounded down to a whole number of strides ("a little larger
/// than CS/2": two arrays cannot share the cache, one fits comfortably).
Bytes probe_array_bytes(Bytes cache_size, Bytes stride) {
    Bytes bytes = cache_size * 2 / 3;
    bytes -= bytes % stride;
    return std::max(bytes, stride);
}
}  // namespace

std::vector<SharedCacheLevelResult> detect_shared_caches(Platform& platform,
                                                         const std::vector<Bytes>& cache_sizes,
                                                         const SharedCacheOptions& options) {
    SERVET_CHECK(options.ratio_threshold > 1.0);
    const int n_cores = platform.core_count();
    std::vector<CorePair> pairs;
    if (options.only_with_core >= 0) {
        SERVET_CHECK(options.only_with_core < n_cores);
        for (CoreId j = 0; j < n_cores; ++j)
            if (j != options.only_with_core)
                pairs.push_back(CorePair{options.only_with_core, j}.canonical());
    } else {
        pairs = all_core_pairs(n_cores);
    }

    std::vector<SharedCacheLevelResult> results;
    results.reserve(cache_sizes.size());
    for (Bytes cache_size : cache_sizes) {
        SharedCacheLevelResult level;
        level.cache_size = cache_size;
        level.array_bytes = probe_array_bytes(cache_size, options.stride);

        // Per-core solo references over static buffers (lazy: only cores
        // that appear in a probed pair get one).
        std::vector<Cycles> reference(static_cast<std::size_t>(n_cores), 0.0);
        const auto ref_of = [&](CoreId core) -> Cycles {
            Cycles& slot = reference[static_cast<std::size_t>(core)];
            if (slot == 0.0) {
                slot = platform.traverse_cycles(core, level.array_bytes, options.stride,
                                                options.passes, /*fresh_placement=*/false);
                SERVET_CHECK(slot > 0);
            }
            return slot;
        };
        level.reference_cycles = ref_of(0);

        for (const CorePair& pair : pairs) {
            const std::vector<Cycles> concurrent = platform.traverse_cycles_concurrent(
                {pair.a, pair.b}, level.array_bytes, options.stride, options.passes,
                /*fresh_placement=*/false);
            // Either member thrashing marks the cache shared; use the worse
            // of the two per-core ratios.
            const double ratio =
                std::max(concurrent[0] / ref_of(pair.a), concurrent[1] / ref_of(pair.b));
            level.pairs.push_back({pair, ratio});
            if (ratio > options.ratio_threshold) level.sharing_pairs.push_back(pair);
        }
        level.groups = stats::groups_from_pairs(level.sharing_pairs, n_cores);
        SERVET_LOG_INFO("shared-cache: size %llu -> %zu sharing pairs, %zu groups",
                        static_cast<unsigned long long>(cache_size),
                        level.sharing_pairs.size(), level.groups.size());
        results.push_back(std::move(level));
    }
    return results;
}

}  // namespace servet::core
