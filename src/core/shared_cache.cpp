#include "core/shared_cache.hpp"

#include <algorithm>
#include <cstddef>

#include "base/check.hpp"
#include "base/log.hpp"
#include "core/probe_common.hpp"
#include "obs/metrics.hpp"
#include "stats/unionfind.hpp"

namespace servet::core {

namespace {
/// (2/3)*CS rounded down to a whole number of strides ("a little larger
/// than CS/2": two arrays cannot share the cache, one fits comfortably).
Bytes probe_array_bytes(Bytes cache_size, Bytes stride) {
    Bytes bytes = cache_size * 2 / 3;
    bytes -= bytes % stride;
    return std::max(bytes, stride);
}

constexpr std::size_t kNoTask = static_cast<std::size_t>(-1);
}  // namespace

std::vector<SharedCacheLevelResult> detect_shared_caches(MeasureEngine& engine,
                                                         const std::vector<Bytes>& cache_sizes,
                                                         const SharedCacheOptions& options) {
    SERVET_CHECK(options.ratio_threshold > 1.0);
    SERVET_CHECK(engine.platform() != nullptr);
    const int n_cores = engine.platform()->core_count();
    const std::vector<CorePair> pairs = probe_pairs(n_cores, options.only_with_core);

    // Cores whose solo reference the ratio computation needs: every pair
    // member, plus core 0 (reported as the level's reference).
    std::vector<char> needs_ref(static_cast<std::size_t>(n_cores), 0);
    needs_ref[0] = 1;
    for (const CorePair& pair : pairs) {
        needs_ref[static_cast<std::size_t>(pair.a)] = 1;
        needs_ref[static_cast<std::size_t>(pair.b)] = 1;
    }

    // One batch of tasks across every level: all probes of all cache
    // sizes are independent. The placement salt is 0 throughout — a static
    // buffer's placement must match between a core's reference task and
    // its pair tasks so placement luck cancels out of the ratio.
    struct LevelPlan {
        std::vector<std::size_t> ref_task;   // per core; kNoTask = unused
        std::vector<std::size_t> pair_task;  // aligned with `pairs`
    };
    std::vector<MeasureTask> tasks;
    std::vector<LevelPlan> plans;
    plans.reserve(cache_sizes.size());
    for (Bytes cache_size : cache_sizes) {
        const Bytes array_bytes = probe_array_bytes(cache_size, options.stride);
        const std::string prefix = "shc/b" + std::to_string(array_bytes) + "/t" +
                                   std::to_string(options.stride) + "/p" +
                                   std::to_string(options.passes);
        LevelPlan plan;
        plan.ref_task.assign(static_cast<std::size_t>(n_cores), kNoTask);
        for (CoreId core = 0; core < n_cores; ++core) {
            if (!needs_ref[static_cast<std::size_t>(core)]) continue;
            plan.ref_task[static_cast<std::size_t>(core)] = tasks.size();
            MeasureTask task;
            task.key = prefix + "/ref/c" + std::to_string(core);
            task.body = [core, array_bytes, options](Platform* platform, msg::Network*) {
                return std::vector<double>{checked_traverse(platform, core, array_bytes,
                                                            options.stride, options.passes,
                                                            /*fresh_placement=*/false)};
            };
            tasks.push_back(std::move(task));
        }
        for (const CorePair& pair : pairs) {
            plan.pair_task.push_back(tasks.size());
            MeasureTask task;
            task.key = prefix + "/pair/" + std::to_string(pair.a) + "-" +
                       std::to_string(pair.b);
            task.body = [pair, array_bytes, options](Platform* platform, msg::Network*) {
                return platform->traverse_cycles_concurrent({pair.a, pair.b}, array_bytes,
                                                            options.stride, options.passes,
                                                            /*fresh_placement=*/false);
            };
            tasks.push_back(std::move(task));
        }
        plans.push_back(std::move(plan));
    }

    obs::counter("phase.shared_caches.measurements", obs::Stability::Stable).add(tasks.size());
    const std::vector<std::vector<double>> measured = engine.run(tasks);

    std::vector<SharedCacheLevelResult> results;
    results.reserve(cache_sizes.size());
    for (std::size_t li = 0; li < cache_sizes.size(); ++li) {
        const LevelPlan& plan = plans[li];
        SharedCacheLevelResult level;
        level.cache_size = cache_sizes[li];
        level.array_bytes = probe_array_bytes(cache_sizes[li], options.stride);

        const auto ref_of = [&](CoreId core) -> Cycles {
            const std::size_t task = plan.ref_task[static_cast<std::size_t>(core)];
            SERVET_CHECK(task != kNoTask);
            return measured[task][0];
        };
        level.reference_cycles = ref_of(0);

        for (std::size_t pi = 0; pi < pairs.size(); ++pi) {
            const CorePair& pair = pairs[pi];
            const std::vector<double>& concurrent = measured[plan.pair_task[pi]];
            // Either member thrashing marks the cache shared; use the worse
            // of the two per-core ratios.
            const double ratio =
                std::max(concurrent[0] / ref_of(pair.a), concurrent[1] / ref_of(pair.b));
            level.pairs.push_back({pair, ratio});
            if (ratio > options.ratio_threshold) level.sharing_pairs.push_back(pair);
        }
        level.groups = stats::groups_from_pairs(level.sharing_pairs, n_cores);
        SERVET_LOG_INFO("shared-cache: size %llu -> %zu sharing pairs, %zu groups",
                        static_cast<unsigned long long>(level.cache_size),
                        level.sharing_pairs.size(), level.groups.size());
        results.push_back(std::move(level));
    }
    return results;
}

std::vector<SharedCacheLevelResult> detect_shared_caches(Platform& platform,
                                                         const std::vector<Bytes>& cache_sizes,
                                                         const SharedCacheOptions& options) {
    MeasureEngine engine(&platform, nullptr, nullptr, nullptr);
    return detect_shared_caches(engine, cache_sizes, options);
}

}  // namespace servet::core
