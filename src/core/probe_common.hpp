// Small helpers shared by the pairwise detection probes (shared-cache,
// memory-overhead): the pair schedule and the checked traversal sample.
#pragma once

#include <vector>

#include "base/check.hpp"
#include "base/types.hpp"
#include "platform/platform.hpp"

namespace servet::core {

/// The probe's pair schedule: every canonical pair of distinct cores, or —
/// when `only_with_core` is a valid core id — just the pairs containing it
/// (the cheaper star schedule the paper uses on large node counts).
[[nodiscard]] inline std::vector<CorePair> probe_pairs(int n_cores, CoreId only_with_core) {
    if (only_with_core < 0) return all_core_pairs(n_cores);
    SERVET_CHECK(only_with_core < n_cores);
    std::vector<CorePair> pairs;
    pairs.reserve(static_cast<std::size_t>(n_cores > 0 ? n_cores - 1 : 0));
    for (CoreId j = 0; j < n_cores; ++j)
        if (j != only_with_core) pairs.push_back(CorePair{only_with_core, j}.canonical());
    return pairs;
}

/// One traversal sample with the probe-wide sanity check applied: a
/// non-positive cycle count can only mean a broken platform (or a fault
/// injected into one), and must fail loudly rather than skew a ratio.
[[nodiscard]] inline Cycles checked_traverse(Platform* platform, CoreId core, Bytes array_bytes,
                                             Bytes stride, int passes, bool fresh_placement) {
    const Cycles cycles =
        platform->traverse_cycles(core, array_bytes, stride, passes, fresh_placement);
    SERVET_CHECK_MSG(cycles > 0, "traversal produced non-positive cycle count");
    return cycles;
}

}  // namespace servet::core
