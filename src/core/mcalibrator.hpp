// mcalibrator (Fig. 1): the strided-traversal measurement every cache
// benchmark in the suite builds on. It sweeps array sizes — doubling up to
// 2MB, then stepping by 1MB — and records average cycles per access with a
// 1KB stride. The stride choice is load-bearing (Section III-A): it is
// larger than any hardware prefetcher's reach, larger than any line size,
// and a divisor of any cache size, so misses start exactly when the array
// overflows a cache.
#pragma once

#include <vector>

#include "base/types.hpp"
#include "core/measure.hpp"
#include "platform/platform.hpp"

namespace servet::core {

struct McalibratorOptions {
    Bytes min_size = 4 * KiB;    ///< MIN_CACHE
    Bytes max_size = 64 * MiB;   ///< MAX_CACHE
    Bytes stride = 1 * KiB;
    int passes = 3;              ///< measured passes per size
    /// Independent measurements averaged per size. Each repeat allocates a
    /// fresh array — a fresh random physical placement — so the averaged
    /// miss rate of physically indexed levels converges to the binomial
    /// expectation the Fig. 3 estimator fits (a single placement over few
    /// page sets has large variance; Section III-A2).
    int repeats = 4;
    CoreId core = 0;
};

/// The S and C arrays of Fig. 1 plus their gradient (Fig. 2b).
struct McalibratorCurve {
    std::vector<Bytes> sizes;     ///< S: traversed array sizes
    std::vector<Cycles> cycles;   ///< C: average cycles per access

    /// C[k+1]/C[k] — the series the level detector scans for peaks.
    [[nodiscard]] std::vector<double> gradient() const;

    [[nodiscard]] std::size_t points() const { return sizes.size(); }

    [[nodiscard]] bool operator==(const McalibratorCurve&) const = default;
};

/// The size grid of Fig. 1: min, 2*min, ..., 2MB, 3MB, 4MB, ..., max.
[[nodiscard]] std::vector<Bytes> mcalibrator_size_grid(Bytes min_size, Bytes max_size);

/// Run the sweep on one core, one measurement task per array size.
[[nodiscard]] McalibratorCurve run_mcalibrator(MeasureEngine& engine,
                                               const McalibratorOptions& options);

/// Convenience entry: serial, unmemoized engine over `platform`.
[[nodiscard]] McalibratorCurve run_mcalibrator(Platform& platform,
                                               const McalibratorOptions& options);

}  // namespace servet::core
