#include "core/measure.hpp"

#include <cstdio>
#include <utility>

#include "base/check.hpp"
#include "base/hash.hpp"
#include "exec/task_key.hpp"

namespace servet::core {

MeasureEngine::MeasureEngine(Platform* platform, msg::Network* network, exec::ThreadPool* pool,
                             exec::MemoCache* memo)
    : platform_(platform), network_(network), pool_(pool), memo_(memo) {
    SERVET_CHECK_MSG(platform_ != nullptr || network_ != nullptr,
                     "measurement engine needs at least one substrate");
    const bool platform_forks = platform_ == nullptr || platform_->fork(0, 0) != nullptr;
    const bool network_forks = network_ == nullptr || network_->fork(0) != nullptr;
    deterministic_ = platform_forks && network_forks;
    if (!deterministic_) return;
    // Combine whichever fingerprints exist; either being 0 (not
    // content-addressable) poisons the whole engine's, disabling the memo.
    std::uint64_t fp = platform_ != nullptr ? platform_->fingerprint() : ~0ULL;
    if (fp != 0 && network_ != nullptr) {
        const std::uint64_t net_fp = network_->fingerprint();
        fp = net_fp == 0 ? 0 : fp ^ mix64(net_fp);
    }
    fingerprint_ = fp;
}

std::string MeasureEngine::memo_key(const std::string& task_key) const {
    char prefix[20];
    std::snprintf(prefix, sizeof prefix, "%016llx/",
                  static_cast<unsigned long long>(fingerprint_));
    return prefix + task_key;
}

std::vector<double> MeasureEngine::run_one(const MeasureTask& task) {
    SERVET_CHECK_MSG(!task.key.empty(), "measurement task needs a key");
    std::string key;
    if (memoizable()) {
        key = memo_key(task.key);
        if (std::optional<std::vector<double>> hit = memo_->lookup(key))
            return *std::move(hit);
    }
    std::vector<double> values;
    if (deterministic_) {
        const std::uint64_t seed = exec::seed_of(task.key);
        std::unique_ptr<Platform> platform;
        if (platform_ != nullptr) platform = platform_->fork(seed, task.placement_salt);
        std::unique_ptr<msg::Network> network;
        if (network_ != nullptr) network = network_->fork(seed);
        values = task.body(platform.get(), network.get());
    } else {
        values = task.body(platform_, network_);
    }
    if (memoizable()) memo_->store(key, values);
    return values;
}

std::vector<std::vector<double>> MeasureEngine::run(const std::vector<MeasureTask>& tasks) {
    std::vector<std::vector<double>> results(tasks.size());
    // Non-deterministic substrates are shared mutable state: tasks must
    // run one at a time, in index order, on the caller's thread.
    if (deterministic_ && pool_ != nullptr && tasks.size() > 1) {
        pool_->parallel_for(tasks.size(),
                            [&](std::size_t i) { results[i] = run_one(tasks[i]); });
    } else {
        for (std::size_t i = 0; i < tasks.size(); ++i) results[i] = run_one(tasks[i]);
    }
    return results;
}

}  // namespace servet::core
