#include "core/measure.hpp"

#include <cstdio>
#include <exception>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "base/check.hpp"
#include "base/clock.hpp"
#include "base/deadline.hpp"
#include "base/hash.hpp"
#include "exec/task_key.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace servet::core {

namespace {

obs::Counter& batches_counter() {
    static obs::Counter& c = obs::counter("exec.batches", obs::Stability::Stable);
    return c;
}
obs::Counter& requested_counter() {
    static obs::Counter& c = obs::counter("exec.tasks.requested", obs::Stability::Stable);
    return c;
}
obs::Counter& run_counter() {
    static obs::Counter& c = obs::counter("exec.tasks.run", obs::Stability::Stable);
    return c;
}
obs::Counter& deduped_counter() {
    static obs::Counter& c = obs::counter("exec.tasks.deduped", obs::Stability::Stable);
    return c;
}
// Stable: which tasks fail is a function of task keys and fault-plan
// seeds, and run() executes every task even when some throw.
obs::Counter& failed_counter() {
    static obs::Counter& c = obs::counter("exec.tasks.failed", obs::Stability::Stable);
    return c;
}
obs::Histogram& task_us_histogram() {
    static obs::Histogram& h =
        obs::histogram("exec.task.us", obs::Stability::Volatile,
                       {10.0, 100.0, 1000.0, 10000.0, 100000.0, 1000000.0});
    return h;
}

}  // namespace

MeasureEngine::MeasureEngine(Platform* platform, msg::Network* network, exec::ThreadPool* pool,
                             exec::MemoCache* memo)
    : platform_(platform), network_(network), pool_(pool), memo_(memo) {
    SERVET_CHECK_MSG(platform_ != nullptr || network_ != nullptr,
                     "measurement engine needs at least one substrate");
    // forkable() is the documented query for replica support; the old
    // probe-by-discarded-fork(0, 0) burned a full substrate clone (and on
    // stateful platforms could perturb them) just to learn a static fact.
    const bool platform_forks = platform_ == nullptr || platform_->forkable();
    const bool network_forks = network_ == nullptr || network_->forkable();
    deterministic_ = platform_forks && network_forks;
    if (!deterministic_) return;
    // Combine whichever fingerprints exist; either being 0 (not
    // content-addressable) poisons the whole engine's, disabling the memo.
    std::uint64_t fp = platform_ != nullptr ? platform_->fingerprint() : ~0ULL;
    if (fp != 0 && network_ != nullptr) {
        const std::uint64_t net_fp = network_->fingerprint();
        fp = net_fp == 0 ? 0 : fp ^ mix64(net_fp);
    }
    fingerprint_ = fp;
}

std::string MeasureEngine::memo_key(const std::string& task_key) const {
    char prefix[20];
    std::snprintf(prefix, sizeof prefix, "%016llx/",
                  static_cast<unsigned long long>(fingerprint_));
    return prefix + task_key;
}

std::vector<double> MeasureEngine::run_one(const MeasureTask& task) {
    SERVET_CHECK_MSG(!task.key.empty(), "measurement task needs a key");
    SERVET_TRACE_SPAN("measure/" + task.key);
    const std::uint64_t start_ns = monotonic_ns();
    std::string key;
    if (memoizable()) {
        key = memo_key(task.key);
        if (std::optional<std::vector<double>> hit = memo_->lookup(key))
            return *std::move(hit);
    }
    std::vector<double> values;
    DeadlineGuard deadline(task_deadline_);
    if (deterministic_) {
        const std::uint64_t seed = exec::seed_of(task.key);
        std::unique_ptr<Platform> platform;
        if (platform_ != nullptr) platform = platform_->fork(seed, task.placement_salt);
        std::unique_ptr<msg::Network> network;
        if (network_ != nullptr) network = network_->fork(seed);
        values = task.body(platform.get(), network.get());
    } else {
        values = task.body(platform_, network_);
    }
    if (memoizable()) memo_->store(key, values);
    task_us_histogram().observe(static_cast<double>(monotonic_ns() - start_ns) / 1e3);
    return values;
}

std::vector<std::vector<double>> MeasureEngine::run(const std::vector<MeasureTask>& tasks) {
    batches_counter().increment();
    requested_counter().add(tasks.size());
    std::vector<std::vector<double>> results(tasks.size());

    // A throwing task must not cut the batch short: the remaining tasks
    // still run (their counter contributions are part of the Stable
    // contract — a serial run that stopped at the first throw would
    // disagree with a parallel run that had already finished later
    // tasks), errors are collected per index, and the lowest-index one is
    // rethrown once the batch is complete.
    std::vector<std::exception_ptr> errors(tasks.size());
    const auto run_at = [&](std::size_t i) {
        try {
            results[i] = run_one(tasks[i]);
        } catch (...) {
            errors[i] = std::current_exception();
        }
    };
    const auto rethrow_first = [&](std::uint64_t failures) {
        failed_counter().add(failures);
        for (const std::exception_ptr& e : errors)
            if (e) std::rethrow_exception(e);
    };

    // Non-deterministic substrates are shared mutable state: tasks must
    // run one at a time, in index order, on the caller's thread. Equal
    // keys are NOT deduplicated here — on a non-deterministic substrate
    // each occurrence is a genuine remeasurement.
    if (!deterministic_) {
        run_counter().add(tasks.size());
        for (std::size_t i = 0; i < tasks.size(); ++i) run_at(i);
        std::uint64_t failures = 0;
        for (const std::exception_ptr& e : errors)
            if (e) ++failures;
        if (failures > 0) rethrow_first(failures);
        return results;
    }

    // Within-batch dedup. Two tasks with equal keys measure the same
    // thing (the MeasureTask::key contract), so the duplicate's result is
    // a copy. Beyond saving work, this is what keeps execution counts
    // schedule-invariant: without it, two racing duplicates may both miss
    // the memo and both execute under --jobs N, while a serial run
    // executes once and hits once.
    std::vector<std::size_t> unique;                // first occurrence of each key
    std::vector<std::size_t> source(tasks.size());  // index -> its representative
    std::unordered_map<std::string_view, std::size_t> first;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        const auto [it, inserted] = first.try_emplace(tasks[i].key, i);
        source[i] = it->second;
        if (inserted) unique.push_back(i);
    }
    deduped_counter().add(tasks.size() - unique.size());
    run_counter().add(unique.size());

    if (pool_ != nullptr && unique.size() > 1) {
        pool_->parallel_for(unique.size(), [&](std::size_t u) { run_at(unique[u]); });
    } else {
        for (const std::size_t u : unique) run_at(u);
    }
    // A duplicate shares its representative's fate — result or error —
    // exactly as if it had executed.
    std::uint64_t failures = 0;
    for (const std::size_t u : unique)
        if (errors[u]) ++failures;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        if (source[i] == i) continue;
        results[i] = results[source[i]];
        errors[i] = errors[source[i]];
    }
    if (failures > 0) rethrow_first(failures);
    return results;
}

}  // namespace servet::core
