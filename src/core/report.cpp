#include "core/report.hpp"

#include <algorithm>
#include <set>

#include "base/table.hpp"
#include "base/units.hpp"

namespace servet::core {

namespace {

std::string group_text(const std::vector<std::vector<CoreId>>& groups) {
    if (groups.empty()) return "private";
    std::string out;
    for (const auto& group : groups) {
        out += "{";
        for (std::size_t i = 0; i < group.size(); ++i) {
            if (i) out += ",";
            out += std::to_string(group[i]);
        }
        out += "} ";
    }
    if (!out.empty()) out.pop_back();
    return out;
}

std::string doubles_text(const std::vector<double>& values, double scale,
                         const char* format) {
    std::string out;
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i) out += ", ";
        out += strf(format, values[i] * scale);
    }
    return out;
}

}  // namespace

std::string render_markdown(const Profile& profile) {
    std::string out;
    out += "# Servet hardware report: " + profile.machine + "\n\n";
    out += strf("%d cores, %s pages.\n\n", profile.cores,
                format_bytes(profile.page_size).c_str());

    out += "## Cache hierarchy\n\n";
    out += "| level | size | detected via | shared by |\n";
    out += "|---|---|---|---|\n";
    for (std::size_t i = 0; i < profile.caches.size(); ++i) {
        const auto& cache = profile.caches[i];
        out += strf("| L%zu | %s | %s | %s |\n", i + 1, format_bytes(cache.size).c_str(),
                    cache.method.c_str(), group_text(cache.groups).c_str());
    }

    out += "\n## Memory\n\n";
    out += strf("Isolated-core copy bandwidth: %s.\n",
                format_bandwidth(profile.memory.reference_bandwidth).c_str());
    for (std::size_t t = 0; t < profile.memory.tiers.size(); ++t) {
        const auto& tier = profile.memory.tiers[t];
        out += strf("\n* tier %zu — %s per core under pairwise collision; groups %s", t,
                    format_bandwidth(tier.bandwidth).c_str(),
                    group_text(tier.groups).c_str());
        if (!tier.scalability.empty())
            out += strf("; per-core bandwidth by concurrent streamers (GB/s): %s",
                        doubles_text(tier.scalability, 1e-9, "%.2f").c_str());
        out += "\n";
    }

    if (!profile.comm.empty()) {
        out += "\n## Communication layers (fastest first)\n\n";
        out += "| layer | probe latency | pairs | max slowdown |\n";
        out += "|---|---|---|---|\n";
        for (std::size_t l = 0; l < profile.comm.size(); ++l) {
            const auto& layer = profile.comm[l];
            out += strf("| %zu | %s | %zu | %s |\n", l,
                        format_latency(layer.latency).c_str(), layer.pairs.size(),
                        layer.slowdown.empty()
                            ? "-"
                            : strf("%.1fx @ %zu msgs", layer.slowdown.back(),
                                   layer.slowdown.size())
                                  .c_str());
        }
    }

    if (!profile.phase_seconds.empty()) {
        out += "\n## Suite execution times\n\n";
        for (const auto& [phase, seconds] : profile.phase_seconds)
            out += strf("* %s: %.1f s\n", phase.c_str(), seconds);
    }
    return out;
}

namespace {

/// Emit cores of `members` grouped by the sharing groups of cache level
/// `level` (descending recursion); cores not covered by any group at this
/// level fall through to the next one.
void emit_level(std::string& out, const Profile& profile, int level,
                const std::vector<CoreId>& members, int& cluster_id) {
    if (level < 0) {
        for (CoreId core : members) out += strf("    c%d [label=\"core %d\"];\n", core, core);
        return;
    }
    const auto& groups = profile.caches[static_cast<std::size_t>(level)].groups;
    std::set<CoreId> covered;
    for (const auto& group : groups) {
        std::vector<CoreId> inside;
        for (CoreId core : group)
            if (std::find(members.begin(), members.end(), core) != members.end())
                inside.push_back(core);
        if (inside.empty()) continue;
        for (CoreId core : inside) covered.insert(core);
        out += strf("  subgraph cluster_%d {\n", cluster_id++);
        out += strf("    label=\"L%d %s\";\n", level + 1,
                    format_bytes(profile.caches[static_cast<std::size_t>(level)].size)
                        .c_str());
        emit_level(out, profile, level - 1, inside, cluster_id);
        out += "  }\n";
    }
    std::vector<CoreId> rest;
    for (CoreId core : members)
        if (!covered.contains(core)) rest.push_back(core);
    if (!rest.empty()) emit_level(out, profile, level - 1, rest, cluster_id);
}

}  // namespace

std::string render_dot(const Profile& profile) {
    std::string out = "digraph servet {\n";
    out += strf("  label=\"%s (measured topology)\";\n", profile.machine.c_str());
    out += "  node [shape=box];\n";

    std::vector<CoreId> all;
    for (CoreId core = 0; core < profile.cores; ++core) all.push_back(core);
    int cluster_id = 0;
    emit_level(out, profile, static_cast<int>(profile.caches.size()) - 1, all, cluster_id);

    // One representative edge per comm layer.
    for (std::size_t l = 0; l < profile.comm.size(); ++l) {
        const auto& layer = profile.comm[l];
        if (layer.pairs.empty()) continue;
        const CorePair pair = layer.pairs.front();
        out += strf("  c%d -> c%d [dir=none, label=\"layer %zu: %s\", style=%s];\n",
                    pair.a, pair.b, l, format_latency(layer.latency).c_str(),
                    l + 1 == profile.comm.size() ? "dashed" : "solid");
    }

    // Memory tiers as legend notes (clusters already encode cache sharing).
    for (std::size_t t = 0; t < profile.memory.tiers.size(); ++t) {
        out += strf("  mem_tier_%zu [shape=note, label=\"memory tier %zu: %s\\ngroups %s\"];\n",
                    t, t, format_bandwidth(profile.memory.tiers[t].bandwidth).c_str(),
                    group_text(profile.memory.tiers[t].groups).c_str());
    }
    out += "}\n";
    return out;
}

}  // namespace servet::core
