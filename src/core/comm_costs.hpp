// Communication-cost determination (Fig. 7) and the characterization built
// on it (Section III-D): (1) probe every core pair with an L1-sized
// message and cluster similar latencies into communication layers; (2)
// micro-benchmark one representative pair per layer across message sizes
// (the paper stores these curves so autotuned codes can price any message
// without re-measuring); (3) measure each layer's scalability by timing N
// concurrent messages against an isolated one.
#pragma once

#include <utility>
#include <vector>

#include "base/types.hpp"
#include "core/measure.hpp"
#include "msg/network.hpp"

namespace servet::core {

struct CommCostsOptions {
    /// Probe message for layer detection. The paper uses the L1 size so
    /// shared-cache effects separate the layers; the suite passes the
    /// detected L1 size here.
    Bytes probe_message = 32 * KiB;
    int reps = 20;
    /// Relative tolerance for "l is similar to L[i]" layer clustering.
    double cluster_tolerance = 0.10;
    /// Message sizes for the per-layer point-to-point sweep (Fig. 10c/d);
    /// empty selects 1KB..4MB in powers of two.
    std::vector<Bytes> sweep_sizes;
    /// Cap on concurrent messages in the scalability probe.
    int max_concurrent = 32;
    /// Re-measures allowed per probe when the transport reports a
    /// transient loss (TransientNetworkError — a dropped message, a timed-
    /// out reply). Retries are part of the task body, so a retried probe
    /// stays deterministic per task key. Exhausting the budget rethrows.
    int max_retries = 2;
    /// Core pairs to probe in the layer scan; empty probes every pair.
    /// Cluster runs pass a sampled set (sim::cluster_probe_pairs) here —
    /// at 1k+ simulated ranks the O(n^2) full scan is the scaling wall.
    /// Pairs are canonicalized and deduplicated, so symmetric duplicates
    /// ((a,b) and (b,a)) cost one measurement.
    std::vector<CorePair> probe_pairs;
};

struct CommPairLatency {
    CorePair pair;
    Seconds latency = 0;

    [[nodiscard]] bool operator==(const CommPairLatency&) const = default;
};

struct CommLayer {
    Seconds latency = 0;                            ///< L[i]: cluster mean
    std::vector<CorePair> pairs;                    ///< Pl[i]
    CorePair representative;                        ///< micro-benchmarked pair
    std::vector<std::pair<Bytes, Seconds>> p2p;     ///< size -> one-way latency
    /// slowdown_by_n[k] = latency with k+1 concurrent messages / isolated
    /// latency, over disjoint pairs of this layer.
    std::vector<double> slowdown_by_n;

    [[nodiscard]] bool operator==(const CommLayer&) const = default;
};

struct CommCostsResult {
    Bytes probe_message = 0;
    std::vector<CommPairLatency> pairs;  ///< every probed pair at probe size
    std::vector<CommLayer> layers;       ///< fastest first

    /// Price a message: latency of `size` bytes between the pair, looked
    /// up from the stored per-layer curves (linear interpolation in size).
    /// This is the "analyze the cost of a communication beforehand" use
    /// the paper closes Section III-D with.
    [[nodiscard]] Seconds estimate_latency(CorePair pair, Bytes size) const;

    /// Layer index the pair was assigned to, or -1 if the pair was never
    /// probed (shouldn't happen for in-range cores).
    [[nodiscard]] int layer_of(CorePair pair) const;

    [[nodiscard]] bool operator==(const CommCostsResult&) const = default;
};

/// Maximal set of vertex-disjoint pairs drawn from `pairs`, greedily; the
/// concurrent senders for the scalability probe.
[[nodiscard]] std::vector<CorePair> disjoint_pairs(const std::vector<CorePair>& pairs);

[[nodiscard]] CommCostsResult characterize_communication(MeasureEngine& engine,
                                                         const CommCostsOptions& options = {});

/// Convenience entry: serial, unmemoized engine over `network`.
[[nodiscard]] CommCostsResult characterize_communication(msg::Network& network,
                                                         const CommCostsOptions& options = {});

}  // namespace servet::core
