#include "core/cache_size.hpp"

#include <algorithm>
#include <cmath>

#include "base/check.hpp"
#include "base/log.hpp"
#include "stats/binomial.hpp"
#include "stats/gradient.hpp"
#include "stats/summary.hpp"

namespace servet::core {

std::vector<Bytes> default_size_candidates(Bytes max_size) {
    std::vector<Bytes> candidates;
    for (const Bytes m : {1u, 3u, 5u, 9u}) {
        for (Bytes cs = m * 16 * KiB; cs <= max_size; cs *= 2) {
            if (cs >= 16 * KiB) candidates.push_back(cs);
        }
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());
    return candidates;
}

double expected_miss_rate(MissRateModel model, std::int64_t pages, double p, int k) {
    SERVET_CHECK(pages >= 0 && p >= 0.0 && p <= 1.0 && k >= 0);
    if (model == MissRateModel::PaperTail) return stats::binomial_tail_above(pages, p, k);

    // Size-biased tail E[X; X > K] / E[X]: accesses hit page sets in
    // proportion to occupancy. Identity: E[X; X > K] for X ~ B(n, p) equals
    // n*p*P(Y > K-1) with Y ~ B(n-1, p) (thinning), so the ratio is simply
    // P(Y >= K), avoiding an explicit sum.
    if (pages == 0) return 0.0;
    return stats::binomial_tail_above(pages - 1, p, k - 1);
}

namespace {

/// Median of curve samples [lo, hi] (inclusive, clamped).
double plateau_level(const McalibratorCurve& curve, std::ptrdiff_t lo, std::ptrdiff_t hi) {
    lo = std::max<std::ptrdiff_t>(lo, 0);
    hi = std::min<std::ptrdiff_t>(hi, static_cast<std::ptrdiff_t>(curve.points()) - 1);
    SERVET_CHECK(lo <= hi);
    std::vector<double> window(curve.cycles.begin() + lo, curve.cycles.begin() + hi + 1);
    return stats::median(std::move(window));
}

/// Minimum of curve samples [lo, hi] (inclusive, clamped). The right
/// statistic for "does the curve *stay* elevated after this rise": a real
/// transition keeps every following sample up; an isolated measurement
/// spike drops straight back.
double floor_level(const McalibratorCurve& curve, std::ptrdiff_t lo, std::ptrdiff_t hi) {
    lo = std::max<std::ptrdiff_t>(lo, 0);
    hi = std::min<std::ptrdiff_t>(hi, static_cast<std::ptrdiff_t>(curve.points()) - 1);
    SERVET_CHECK(lo <= hi);
    std::vector<double> window(curve.cycles.begin() + lo, curve.cycles.begin() + hi + 1);
    return stats::min_value(window);
}

/// A maximal run of above-threshold gradient samples: the rise between
/// samples `first` and `last + 1` of the curve.
struct Region {
    std::size_t first;  ///< first gradient index of the run
    std::size_t last;   ///< last gradient index of the run
};

/// Split a region at interior gradient minima separating two prominent
/// rises (overlapping transitions of adjacent cache levels). Appends the
/// resulting (possibly recursive) subregions to `out` in ascending order.
void split_region(const Region& region, const std::vector<double>& gradient,
                  const CacheDetectOptions& options, std::vector<Region>& out) {
    // Find the interior local minimum with the most prominent rise on
    // both sides.
    std::size_t best = 0;
    double best_score = 0.0;
    for (std::size_t m = region.first + 1; m < region.last; ++m) {
        if (gradient[m] > gradient[m - 1] || gradient[m] > gradient[m + 1]) continue;
        double left_max = 1.0;
        for (std::size_t i = region.first; i < m; ++i) left_max = std::max(left_max, gradient[i]);
        double right_max = 1.0;
        for (std::size_t i = m + 1; i <= region.last; ++i)
            right_max = std::max(right_max, gradient[i]);
        const double dip = std::max(gradient[m] - 1.0, 1e-9);
        const double score = std::min(left_max - 1.0, right_max - 1.0) / dip;
        if (score > best_score) {
            best_score = score;
            best = m;
        }
    }
    if (best_score >= options.split_prominence) {
        split_region({region.first, best - 1}, gradient, options, out);
        split_region({best, region.last}, gradient, options, out);
    } else {
        out.push_back(region);
    }
}

}  // namespace

Bytes probabilistic_cache_size(const McalibratorCurve& curve, std::size_t window_first,
                               std::size_t window_last, double hit_time, double miss_time,
                               const CacheDetectOptions& options) {
    SERVET_CHECK(window_first < window_last && window_last < curve.points());
    const Bytes page = options.page_size;
    SERVET_CHECK(page > 0);
    SERVET_CHECK_MSG(miss_time > hit_time, "window does not span a cycle rise");

    // Miss rate and page count per window sample (the MR/NP arrays of Fig. 3).
    struct Sample {
        double miss_rate;
        std::int64_t pages;
    };
    std::vector<Sample> samples;
    for (std::size_t i = window_first; i <= window_last; ++i) {
        const double mr =
            std::clamp((curve.cycles[i] - hit_time) / (miss_time - hit_time), 0.0, 1.0);
        const auto pages = static_cast<std::int64_t>(curve.sizes[i] / page);
        if (pages >= 1) samples.push_back({mr, pages});
    }
    SERVET_CHECK_MSG(samples.size() >= 2, "window too narrow for the probabilistic estimator");

    // The true size lies within the transition: miss rates only leave 0
    // once pages can overflow a page set, and only saturate once they far
    // exceed capacity. Constrain candidates accordingly.
    const Bytes lo = curve.sizes[window_first];
    const Bytes hi = curve.sizes[window_last];

    struct Entry {
        double divergence;
        Bytes size;
    };
    std::vector<Entry> entries;
    for (Bytes cs : default_size_candidates(hi)) {
        if (cs < lo || cs > hi) continue;
        for (int k : options.associativities) {
            const double p = static_cast<double>(k) * static_cast<double>(page) /
                             static_cast<double>(cs);
            if (p > 1.0) continue;  // more way-capacity than cache: nonsensical
            double divergence = 0.0;
            for (const Sample& s : samples)
                divergence +=
                    std::abs(s.miss_rate - expected_miss_rate(options.model, s.pages, p, k));
            entries.push_back({divergence, cs});
        }
    }
    SERVET_CHECK_MSG(!entries.empty(), "no size candidate fits the window");

    // Mode of the `mode_votes` lowest-divergence candidates; stable sort +
    // earliest-tie mode prefer the best fit.
    std::stable_sort(entries.begin(), entries.end(),
                     [](const Entry& a, const Entry& b) { return a.divergence < b.divergence; });
    std::vector<std::uint64_t> votes;
    const std::size_t n_votes =
        std::min(entries.size(), static_cast<std::size_t>(std::max(options.mode_votes, 1)));
    for (std::size_t i = 0; i < n_votes; ++i) votes.push_back(entries[i].size);
    return stats::mode(votes);
}

Bytes probabilistic_cache_size(const McalibratorCurve& curve, std::size_t window_first,
                               std::size_t window_last, const CacheDetectOptions& options) {
    SERVET_CHECK(window_first < window_last && window_last < curve.points());
    return probabilistic_cache_size(curve, window_first, window_last,
                                    curve.cycles[window_first], curve.cycles[window_last],
                                    options);
}

std::vector<CacheLevelEstimate> detect_cache_levels(const McalibratorCurve& curve,
                                                    const CacheDetectOptions& options) {
    SERVET_CHECK(curve.points() >= 3);
    const std::vector<double> gradient = curve.gradient();

    // Maximal above-threshold runs (the peaks of Fig. 4) ...
    std::vector<Region> raw_regions;
    {
        std::size_t i = 0;
        while (i < gradient.size()) {
            if (gradient[i] <= options.gradient_threshold) {
                ++i;
                continue;
            }
            Region region{i, i};
            while (i < gradient.size() && gradient[i] > options.gradient_threshold)
                region.last = i++;
            raw_regions.push_back(region);
        }
    }

    // ... significant ones only, split where two levels' smears merged.
    // Significance is judged plateau-to-plateau: a genuine level transition
    // leaves the curve elevated, while an isolated measurement spike (one
    // inflated sample) returns to the old plateau and must not register.
    std::vector<Region> regions;
    for (const Region& region : raw_regions) {
        const double before =
            floor_level(curve, static_cast<std::ptrdiff_t>(region.first) - 2,
                        static_cast<std::ptrdiff_t>(region.first));
        const double after =
            floor_level(curve, static_cast<std::ptrdiff_t>(region.last) + 1,
                        static_cast<std::ptrdiff_t>(region.last) + 3);
        if (after / before < options.min_total_rise) continue;
        split_region(region, gradient, options, regions);
    }

    std::vector<CacheLevelEstimate> levels;
    for (std::size_t r = 0; r < regions.size(); ++r) {
        const Region& region = regions[r];
        CacheLevelEstimate estimate;
        estimate.window_first = region.first;
        estimate.window_last = region.last + 1;

        if (r == 0 || region.first == region.last) {
            // First region: the virtually indexed L1 (Fig. 4 always uses
            // the peak position for it); single-sample regions elsewhere
            // mean page coloring made the level behave virtually indexed.
            // Position rule: the rise happens between samples k and k+1,
            // so the largest size that still fits is at the apex index.
            std::size_t apex = region.first;
            for (std::size_t i = region.first; i <= region.last; ++i)
                if (gradient[i] > gradient[apex]) apex = i;
            estimate.size = curve.sizes[apex];
            estimate.method = "peak";
        } else {
            // Plateau-anchored hit/miss levels: medians of up to three
            // samples flanking the window — but only when the flank really
            // is a plateau. When this region was split off a neighbouring
            // level's smear, the boundary sample itself is the best anchor
            // available (the inter-level plateau barely exists there).
            const auto first = static_cast<std::ptrdiff_t>(region.first);
            const auto last = static_cast<std::ptrdiff_t>(region.last);
            const bool plateau_before =
                region.first == 0 ||
                gradient[region.first - 1] <= options.gradient_threshold;
            const double hit_time = plateau_before
                                        ? plateau_level(curve, first - 2, first)
                                        : curve.cycles[region.first];
            const bool plateau_after =
                region.last + 1 < gradient.size() &&
                gradient[region.last + 1] <= options.gradient_threshold;
            const double miss_time = plateau_after
                                         ? plateau_level(curve, last + 2, last + 4)
                                         : curve.cycles[region.last + 1];
            estimate.size =
                probabilistic_cache_size(curve, estimate.window_first, estimate.window_last,
                                         std::min(hit_time, curve.cycles[region.first]),
                                         std::max(miss_time, curve.cycles[region.last + 1]),
                                         options);
            estimate.method = "probabilistic";
        }
        SERVET_LOG_DEBUG("cache level %zu: %llu bytes (%s)", levels.size(),
                         static_cast<unsigned long long>(estimate.size),
                         estimate.method.c_str());
        levels.push_back(estimate);
    }
    return levels;
}

std::vector<CacheLevelEstimate> detect_cache_levels(Platform& platform,
                                                    const McalibratorOptions& mc_options,
                                                    CacheDetectOptions detect_options) {
    detect_options.page_size = platform.page_size();
    const McalibratorCurve curve = run_mcalibrator(platform, mc_options);
    return detect_cache_levels(curve, detect_options);
}

}  // namespace servet::core
