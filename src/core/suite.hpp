// Suite driver: runs the four benchmarks in dependency order (cache sizes
// feed the shared-cache probe, the LLC sizes the memory arrays, the L1
// size the comm probe message), times each phase like Table I, and folds
// everything into a Profile.
//
// Parallelism: with jobs > 1, each phase fans its measurement tasks out
// over a thread pool, and the three phases downstream of cache-size
// detection — mutually independent once the sizes are known — run as
// concurrent nodes of a task DAG. On deterministic (forkable) platforms,
// every task's RNG seeds derive from its stable key, never from
// scheduling order, so a parallel run's Profile is byte-identical to the
// serial one.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/cache_size.hpp"
#include "core/comm_costs.hpp"
#include "core/mcalibrator.hpp"
#include "core/mem_overhead.hpp"
#include "core/profile.hpp"
#include "core/shared_cache.hpp"
#include "msg/network.hpp"
#include "obs/trace.hpp"

namespace servet::core {

/// Accumulates wall-clock seconds per phase into a shared sink. Repeated
/// timings of one phase add up (a phase that runs in several pieces
/// reports its total, not the last piece), and recording is thread-safe
/// so concurrent DAG phases can share one sink.
class PhaseTimer {
  public:
    explicit PhaseTimer(std::map<std::string, Seconds>& sink) : sink_(&sink) {}

    template <typename F>
    auto time(const std::string& phase, F&& body) {
        SERVET_TRACE_SPAN("phase/" + phase);
        const auto start = std::chrono::steady_clock::now();
        auto result = std::forward<F>(body)();
        const auto elapsed = std::chrono::steady_clock::now() - start;
        record(phase,
               std::chrono::duration_cast<std::chrono::duration<double>>(elapsed).count());
        return result;
    }

    void record(const std::string& phase, Seconds elapsed);

    /// Accumulated seconds of `phase` so far (0 when never recorded).
    [[nodiscard]] Seconds total(const std::string& phase);

  private:
    std::mutex mutex_;
    std::map<std::string, Seconds>* sink_;
};

struct SuiteOptions {
    McalibratorOptions mcalibrator;
    CacheDetectOptions detect;
    SharedCacheOptions shared_cache;
    MemOverheadOptions mem_overhead;
    CommCostsOptions comm;
    /// Skip phases (a unicore machine has no pairs to probe; a node
    /// without a network skips comm). Skipping cache-size detection (a
    /// cluster run that only needs the network phase) also skips the
    /// phases that consume its sizes — shared-cache and mem-overhead —
    /// and requires an explicit comm probe_message, since the L1-size
    /// default for it is no longer measured.
    bool run_cache_size = true;
    bool run_shared_cache = true;
    bool run_mem_overhead = true;
    bool run_comm = true;
    /// Concurrent measurement tasks (1 = serial). Only deterministic
    /// (forkable) platforms parallelize; results are byte-identical to a
    /// serial run either way.
    int jobs = 1;
    /// Reuse measurements within the run (content-addressable platforms
    /// only; repeated probes of one (machine, task) pair replay the
    /// stored values).
    bool use_memo = true;
    /// When non-empty, merge the memo from this file before the run and
    /// save it back after — measurement reuse across tool invocations.
    std::string memo_path;
    /// Embed the run's deterministic counter block (SuiteResult::counters)
    /// in the profile produced by to_profile — golden tests pin it.
    bool profile_counters = false;
    /// Cooperative per-measurement-task deadline in seconds (0 = none).
    /// Deadline-aware substrates abort a task that overruns it with
    /// TaskDeadlineExceeded, which phase isolation then records instead
    /// of letting one hung probe stall the whole suite.
    Seconds task_deadline = 0;
    /// When non-empty, the run keeps a write-ahead phase journal under
    /// this directory (core/journal.hpp): each completed phase's full
    /// result is committed and fsync'd as it lands, and the measurement
    /// memo is journaled incrementally, so a run killed mid-suite loses
    /// at most the in-flight work.
    std::string run_dir;
    /// Resume from the journal found under run_dir: committed phases are
    /// replayed bit-exactly without re-measurement (their wall-clock
    /// restored from the producing run), and only missing or previously
    /// failed phases re-run. run_suite throws JournalError when the
    /// journal's options hash or machine identity disagrees with this
    /// run — resuming must never mix measurements of two configurations.
    /// Requires run_dir; an absent journal degrades to a fresh run.
    bool resume = false;
    /// Phases to drop from the journal before replay (resume mode only):
    /// `servet validate --repair` lists the phases its violations
    /// implicate here, so exactly those re-measure while the rest replay.
    std::vector<std::string> remeasure;
};

/// One failed phase of a suite run: the phase's DAG/timing name plus the
/// message of the exception that ended it.
struct PhaseError {
    std::string phase;
    std::string message;

    friend bool operator==(const PhaseError&, const PhaseError&) = default;
};

struct SuiteResult {
    McalibratorCurve curve;
    std::vector<CacheLevelEstimate> cache_levels;
    std::vector<SharedCacheLevelResult> shared_caches;
    MemOverheadResult mem_overhead;
    CommCostsResult comm;
    bool has_shared_caches = false;
    bool has_mem_overhead = false;
    bool has_comm = false;
    std::map<std::string, Seconds> phase_seconds;  ///< Table I rows
    std::uint64_t memo_hits = 0;                   ///< memo lookups served
    std::uint64_t memo_misses = 0;                 ///< memo lookups measured
    std::uint64_t journal_replayed = 0;            ///< phases restored from the journal
    std::uint64_t journal_appended = 0;            ///< phases committed to the journal
    /// This run's deltas of every Stable obs counter (nonzero ones only):
    /// schedule-invariant, so --jobs 1 and --jobs N report identical maps.
    std::map<std::string, std::uint64_t> counters;
    /// Copy `counters` into the profile (SuiteOptions::profile_counters).
    bool embed_counters = false;
    /// Phases that threw, sorted by phase name. Phase isolation: a failed
    /// phase is recorded here — its result fields keep their defaults and
    /// its has_* flag stays false — while every other phase still runs.
    /// Empty means a fully successful run.
    std::vector<PhaseError> errors;

    /// True when at least one phase failed (the result is partial).
    [[nodiscard]] bool partial() const { return !errors.empty(); }

    /// Every measured quantity equal (phase timings and memo statistics
    /// excluded — wall clock can never repeat). This is the determinism
    /// contract a parallel run is tested against.
    [[nodiscard]] bool measurements_equal(const SuiteResult& other) const;

    /// Aggregate into the installable profile file.
    [[nodiscard]] Profile to_profile(const std::string& machine_name, int cores,
                                     Bytes page_size) const;
};

/// Run the full suite. `network` may be null (comm phase is skipped); on
/// single-core platforms the pairwise phases skip themselves.
///
/// Fault tolerance: a phase that throws does not abort the run. Its error
/// lands in SuiteResult::errors, the remaining phases execute, the memo
/// (when configured) is still saved, and to_profile emits a partial
/// profile whose [errors] section names the failed phases.
///
/// Crash safety: with SuiteOptions::run_dir set, completed phases are
/// journaled as they land and a resumed run (SuiteOptions::resume)
/// replays them bit-exactly. Throws JournalError when an existing journal
/// is incompatible with this run's options or machine.
[[nodiscard]] SuiteResult run_suite(Platform& platform, msg::Network* network,
                                    SuiteOptions options = {});

}  // namespace servet::core
