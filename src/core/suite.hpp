// Suite driver: runs the four benchmarks in dependency order (cache sizes
// feed the shared-cache probe, the LLC sizes the memory arrays, the L1
// size the comm probe message), times each phase like Table I, and folds
// everything into a Profile.
#pragma once

#include <memory>

#include "core/cache_size.hpp"
#include "core/comm_costs.hpp"
#include "core/mcalibrator.hpp"
#include "core/mem_overhead.hpp"
#include "core/profile.hpp"
#include "core/shared_cache.hpp"
#include "msg/network.hpp"

namespace servet::core {

struct SuiteOptions {
    McalibratorOptions mcalibrator;
    CacheDetectOptions detect;
    SharedCacheOptions shared_cache;
    MemOverheadOptions mem_overhead;
    CommCostsOptions comm;
    /// Skip phases (a unicore machine has no pairs to probe; a node
    /// without a network skips comm).
    bool run_shared_cache = true;
    bool run_mem_overhead = true;
    bool run_comm = true;
};

struct SuiteResult {
    McalibratorCurve curve;
    std::vector<CacheLevelEstimate> cache_levels;
    std::vector<SharedCacheLevelResult> shared_caches;
    MemOverheadResult mem_overhead;
    CommCostsResult comm;
    bool has_shared_caches = false;
    bool has_mem_overhead = false;
    bool has_comm = false;
    std::map<std::string, Seconds> phase_seconds;  ///< Table I rows

    /// Aggregate into the installable profile file.
    [[nodiscard]] Profile to_profile(const std::string& machine_name, int cores,
                                     Bytes page_size) const;
};

/// Run the full suite. `network` may be null (comm phase is skipped); on
/// single-core platforms the pairwise phases skip themselves.
[[nodiscard]] SuiteResult run_suite(Platform& platform, msg::Network* network,
                                    SuiteOptions options = {});

}  // namespace servet::core
