// Memory-access-overhead characterization (Fig. 6). Compares the STREAM-
// style copy bandwidth of an isolated core (the reference) against the
// bandwidth each core achieves while a second core streams concurrently.
// Distinct overhead magnitudes are clustered into tiers (the BW/Pm arrays
// of Fig. 6); connected components of each tier's pair list give the core
// groups that collide on a shared resource; and per-tier scalability
// curves measure effective bandwidth as more of a group's cores stream at
// once — the "should autotuned code limit the number of cores touching
// memory?" signal of Section III-C.
#pragma once

#include <vector>

#include "base/types.hpp"
#include "core/measure.hpp"
#include "platform/platform.hpp"

namespace servet::core {

struct MemOverheadOptions {
    /// Copy-array size; must exceed the last-level cache so the copy
    /// streams from memory (pass ~4x the detected LLC).
    Bytes array_bytes = 64 * MiB;
    /// Bandwidths below (1 - overhead_epsilon) * reference count as
    /// overhead; the rest are "no particular overhead" (Fig. 9a cross-cell
    /// pairs).
    double overhead_epsilon = 0.05;
    /// Relative tolerance for "b is similar to BW[i]" tier clustering.
    double cluster_tolerance = 0.08;
    /// Probe only pairs containing this core when >= 0; -1 probes all.
    CoreId only_with_core = -1;
};

struct MemPairResult {
    CorePair pair;
    BytesPerSecond bandwidth = 0;  ///< first core's bandwidth, both streaming

    [[nodiscard]] bool operator==(const MemPairResult&) const = default;
};

/// One overhead magnitude and the pairs/groups that suffer it.
struct MemOverheadTier {
    BytesPerSecond bandwidth = 0;               ///< BW[i]: tier's mean bandwidth
    std::vector<CorePair> pairs;                ///< Pm[i]
    std::vector<std::vector<CoreId>> groups;    ///< connected components of Pm[i]

    [[nodiscard]] bool operator==(const MemOverheadTier&) const = default;
};

/// Effective bandwidth vs number of concurrently streaming cores, measured
/// on one representative group of a tier (Fig. 9b).
struct MemScalabilityCurve {
    std::size_t tier = 0;
    std::vector<CoreId> group;                  ///< the cores used
    std::vector<BytesPerSecond> bandwidth_by_n; ///< index k: k+1 active cores

    [[nodiscard]] bool operator==(const MemScalabilityCurve&) const = default;
};

struct MemOverheadResult {
    BytesPerSecond reference_bandwidth = 0;
    std::vector<MemPairResult> pairs;           ///< every probed pair
    std::vector<MemOverheadTier> tiers;         ///< n, BW, Pm of Fig. 6
    std::vector<MemScalabilityCurve> scalability;

    [[nodiscard]] bool operator==(const MemOverheadResult&) const = default;
};

[[nodiscard]] MemOverheadResult characterize_memory_overhead(
    MeasureEngine& engine, const MemOverheadOptions& options = {});

/// Convenience entry: serial, unmemoized engine over `platform`.
[[nodiscard]] MemOverheadResult characterize_memory_overhead(
    Platform& platform, const MemOverheadOptions& options = {});

}  // namespace servet::core
