// The deterministic measurement engine behind the suite's parallelism.
// Every detection phase decomposes into independent MeasureTasks, each
// identified by a stable key encoding its full parameterization. The
// engine runs a batch of tasks — concurrently on a ThreadPool when the
// substrate supports per-task replicas, serially otherwise — and both
// paths produce byte-identical results: a task's RNG seeds derive from
// its key, never from scheduling order, and each task measures a private
// Platform/Network fork. Results of content-addressable platforms are
// additionally memoized in an exec::MemoCache keyed by (substrate
// fingerprint, task key), which deduplicates repeated probes within a run
// and, through the cache's file format, across tool invocations.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exec/memo_cache.hpp"
#include "exec/pool.hpp"
#include "msg/network.hpp"
#include "platform/platform.hpp"

namespace servet::core {

/// One independent measurement.
struct MeasureTask {
    /// Stable identity: benchmark kind plus every parameter that affects
    /// the measured values. Derives the replica RNG seeds and the memo
    /// key, so two tasks with equal keys must measure the same thing.
    std::string key;
    /// Non-zero perturbs the replica's physical page placement — fresh-
    /// allocation probes (the mcalibrator sweep) want decorrelated
    /// placements per task. Zero keeps the platform's placement, so
    /// static-buffer probes of one array size see identical placements
    /// across tasks and concurrent/reference ratios cancel placement
    /// luck.
    std::uint64_t placement_salt = 0;
    /// The measurement. Receives a private replica of whichever of
    /// platform/network the engine owns (the shared originals when the
    /// substrate cannot fork); absent substrates are null.
    std::function<std::vector<double>(Platform*, msg::Network*)> body;
};

class MeasureEngine {
  public:
    /// Either of `platform`/`network` may be null when no phase needs it;
    /// `pool` (null = serial) and `memo` (null = no memoization) are
    /// optional. Parallelism and memoization engage only when every
    /// present substrate is deterministic (forkable).
    MeasureEngine(Platform* platform, msg::Network* network, exec::ThreadPool* pool,
                  exec::MemoCache* memo);

    /// Per-task replicas exist: parallel runs are byte-identical to
    /// serial ones, and repeated runs to each other.
    [[nodiscard]] bool deterministic() const { return deterministic_; }
    /// Results are content-addressable and a cache was supplied.
    [[nodiscard]] bool memoizable() const { return memo_ != nullptr && fingerprint_ != 0; }
    /// Combined substrate fingerprint (0 = not content-addressable).
    [[nodiscard]] std::uint64_t fingerprint() const { return fingerprint_; }

    /// Arms a cooperative per-task deadline: each task body runs under a
    /// DeadlineGuard of this many seconds, and deadline-aware substrates
    /// (FlakyPlatform's simulated hangs, long native probes) abort with
    /// TaskDeadlineExceeded once it passes. 0 (the default) disables it.
    void set_task_deadline(Seconds seconds) { task_deadline_ = seconds; }
    [[nodiscard]] Seconds task_deadline() const { return task_deadline_; }

    [[nodiscard]] Platform* platform() const { return platform_; }
    [[nodiscard]] msg::Network* network() const { return network_; }

    /// Runs every task and returns their values aligned with `tasks`.
    /// Fault-tolerant: a throwing task does not stop the batch — every
    /// other task still executes (so Stable counters stay schedule-
    /// invariant even under injected faults), then the lowest-index
    /// task's exception is rethrown to the caller.
    std::vector<std::vector<double>> run(const std::vector<MeasureTask>& tasks);

  private:
    [[nodiscard]] std::vector<double> run_one(const MeasureTask& task);
    [[nodiscard]] std::string memo_key(const std::string& task_key) const;

    Platform* platform_;
    msg::Network* network_;
    exec::ThreadPool* pool_;
    exec::MemoCache* memo_;
    std::uint64_t fingerprint_ = 0;
    bool deterministic_ = false;
    Seconds task_deadline_ = 0;
};

}  // namespace servet::core
