#include "core/cluster.hpp"

#include <map>

#include "base/check.hpp"
#include "sim/topology.hpp"

namespace servet::core {

std::vector<CorePair> cluster_probe_pairs(const sim::MachineSpec& spec,
                                          const CommCostsOptions& comm) {
    if (!spec.topology.enabled()) return {};
    // One representative beyond the concurrency cap keeps the isolated
    // baseline pair distinct from the last concurrent sender set.
    return sim::cluster_probe_pairs(spec.topology, spec.cores_per_node,
                                    comm.max_concurrent + 1);
}

void annotate_cluster_profile(Profile* profile, const sim::MachineSpec& spec) {
    SERVET_CHECK(profile != nullptr);
    if (!spec.topology.enabled()) return;

    ProfileTopology& out = profile->topology;
    out.kind = sim::topology_kind_name(spec.topology.kind);
    out.cores_per_node = spec.cores_per_node;
    out.dims.clear();
    switch (spec.topology.kind) {
        case sim::TopologyKind::FatTree:
            out.dims = {spec.topology.arity, spec.topology.levels};
            break;
        case sim::TopologyKind::Torus:
            out.dims = spec.topology.dims;
            break;
        case sim::TopologyKind::Dragonfly:
            out.dims = {spec.topology.groups, spec.topology.routers,
                        spec.topology.nodes_per_router};
            break;
        case sim::TopologyKind::None:
        case sim::TopologyKind::Custom:
            break;  // custom shapes carry no analytic fallback
    }

    profile->comm_tiers.clear();
    const sim::Topology topology(spec.topology);
    const int cpn = spec.cores_per_node;
    // First layer containing a class wins: layers are sorted fastest
    // first, and a class split across clusters belongs with its majority
    // anyway — the record is a classification, not a measurement.
    std::map<sim::RouteClass, int> class_layer;
    for (std::size_t li = 0; li < profile->comm.size(); ++li) {
        for (const CorePair& pair : profile->comm[li].pairs) {
            const int node_a = pair.a / cpn;
            const int node_b = pair.b / cpn;
            if (node_a == node_b) continue;
            class_layer.emplace(topology.route_class(node_a, node_b), static_cast<int>(li));
        }
    }
    for (const auto& [cls, layer] : class_layer)
        profile->comm_tiers.push_back({topology.tier(cls.tier).name, cls.tier, cls.hops, layer});
}

}  // namespace servet::core
