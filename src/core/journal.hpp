// Write-ahead run journal: crash-safe checkpointing for suite runs. A
// full-suite measurement campaign takes minutes to hours (the paper's
// Table I), so the single most expensive failure left after in-process
// phase isolation is the process dying mid-run — a SIGKILL, an OOM, a
// node reboot. The journal makes that survivable: under a run directory
// it records the suite's options hash, the measured machine's identity,
// and each phase's complete serialized result as it lands, each append
// fsync'd and framed with a content hash so a torn tail from a crash is
// detected and discarded, never replayed. A resumed run (`servet profile
// --run-dir D --resume`) replays every committed phase bit-exactly and
// re-measures only the missing or previously failed ones; a journal whose
// options hash or machine fingerprint disagrees with the resuming run is
// refused with a diagnostic rather than silently mixing measurements of
// different configurations.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/suite.hpp"

namespace servet::core {

/// A journal could not be created, read, or safely resumed. The message
/// is the user-facing diagnostic (`servet profile --resume` prints it and
/// exits non-zero).
struct JournalError : std::runtime_error {
    using std::runtime_error::runtime_error;
};

/// Hash of every SuiteOptions field that can change a measured value
/// (sweep grids, thresholds, phase selection). Scheduling and plumbing
/// knobs — jobs, memo paths, deadlines, run_dir itself — are excluded by
/// design: a run may legally resume with a different --jobs. Hash the
/// options exactly as the caller passed them, before run_suite derives
/// per-phase sizes from the cache-size result.
[[nodiscard]] std::uint64_t suite_options_hash(const SuiteOptions& options);

class RunJournal {
  public:
    /// Identity block written at creation and verified on resume.
    struct Header {
        std::uint64_t options_hash = 0;
        /// Platform fingerprint (0 = not content-addressable, e.g. real
        /// hardware; then the machine name carries the identity check).
        std::uint64_t fingerprint = 0;
        std::string machine;
        int cores = 0;
        Bytes page_size = 0;
    };

    /// One committed phase: its serialized payload (core/phase_codec.hpp)
    /// and the wall-clock seconds the phase took in the producing run.
    struct Record {
        std::string payload;
        Seconds seconds = 0;
    };

    enum class Mode {
        Create,  ///< fresh journal; truncates any existing one
        Resume,  ///< replay an existing compatible journal (absent = fresh)
    };

    /// Journal file inside a run directory.
    [[nodiscard]] static std::string file_path(const std::string& run_dir);

    /// Opens the journal under `run_dir` (created if missing). Resume
    /// loads committed records and verifies `header` compatibility;
    /// throws JournalError with a clear diagnostic on a malformed file,
    /// an options-hash or machine mismatch, or any I/O failure.
    RunJournal(const std::string& run_dir, const Header& header, Mode mode);

    RunJournal(const RunJournal&) = delete;
    RunJournal& operator=(const RunJournal&) = delete;

    /// The committed record of `phase`, or nullptr. Pointers stay valid
    /// until drop() is called on that phase.
    [[nodiscard]] const Record* find(const std::string& phase) const;

    [[nodiscard]] const std::map<std::string, Record>& records() const { return records_; }
    [[nodiscard]] const Header& header() const { return header_; }

    /// True when loading discarded a torn trailing record — the signature
    /// of a crash mid-append. Harmless (the phase re-runs) but logged.
    [[nodiscard]] bool dropped_torn_tail() const { return dropped_torn_tail_; }

    /// Appends one committed phase record and fsyncs it; `digest` is the
    /// run's current Stable-counter digest, recorded on the commit line
    /// for forensics. Thread-safe (concurrent DAG phases append through
    /// one journal). Returns false on I/O failure — the run carries on,
    /// it just loses crash protection for this phase.
    [[nodiscard]] bool append(const std::string& phase, const std::string& payload,
                              Seconds seconds, std::uint64_t digest);

    /// Removes a phase's record and rewrites the journal atomically —
    /// `servet validate --repair` invalidates exactly the implicated
    /// phases this way, then a resumed run re-measures them. Returns
    /// false on I/O failure (the record is then still present on disk).
    [[nodiscard]] bool drop(const std::string& phase);

  private:
    void load(const std::string& text);
    [[nodiscard]] std::string serialize_all() const;

    std::string path_;
    Header header_;
    std::map<std::string, Record> records_;
    bool dropped_torn_tail_ = false;
    std::mutex mutex_;
};

/// Append-only time-series journal: the run journal's framed-record
/// format with a `sample` record kind. `servet watch` commits one sample
/// per re-measurement tick — fsync'd, length- and hash-framed exactly
/// like a phase record, so a watch killed mid-append loses at most the
/// in-flight tick: the torn tail is discarded (and physically truncated)
/// on the next open, and the resumed watch continues at the next tick.
/// Ticks are positional — sample k is the k-th committed record — which
/// keeps the stream append-only and byte-comparable across resumes.
class SeriesJournal {
  public:
    /// Same identity block as the run journal; an existing series whose
    /// options hash or machine identity disagrees is refused.
    using Header = RunJournal::Header;
    using Mode = RunJournal::Mode;

    /// Series file inside a run directory.
    [[nodiscard]] static std::string file_path(const std::string& run_dir);

    /// Opens the series under `run_dir` (created if missing). Resume
    /// loads committed samples and verifies `header` compatibility;
    /// throws JournalError on a malformed header, an identity mismatch,
    /// or any I/O failure. A torn trailing record (crash mid-append) is
    /// discarded and truncated away, never fatal.
    SeriesJournal(const std::string& run_dir, const Header& header, Mode mode);

    SeriesJournal(const SeriesJournal&) = delete;
    SeriesJournal& operator=(const SeriesJournal&) = delete;

    /// Committed sample payloads, in tick order (index == tick).
    [[nodiscard]] const std::vector<std::string>& samples() const { return samples_; }
    [[nodiscard]] const Header& header() const { return header_; }

    /// True when opening discarded a torn trailing record.
    [[nodiscard]] bool dropped_torn_tail() const { return dropped_torn_tail_; }

    /// Appends the next sample (tick = samples().size()) and fsyncs it.
    /// Returns false on I/O failure — the watch carries on, the tick just
    /// loses crash protection.
    [[nodiscard]] bool append(const std::string& payload);

  private:
    void load(const std::string& text);

    std::string path_;
    Header header_;
    std::vector<std::string> samples_;
    bool dropped_torn_tail_ = false;
    std::mutex mutex_;
};

}  // namespace servet::core
