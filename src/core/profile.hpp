// The Servet profile: everything the suite learned about a machine, in a
// plain-text format. Section IV-E: the benchmarks "must be run only once
// at installation time ... the information obtained can be stored in a
// file to be consulted by the applications to guide optimizations". This
// is that file, plus the query helpers autotuned codes need (message cost
// lookup, cache sizes, contention groups).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "base/types.hpp"

namespace servet::core {

struct ProfileCacheLevel {
    Bytes size = 0;
    std::string method;                       ///< "peak" or "probabilistic"
    std::vector<std::vector<CoreId>> groups;  ///< cores per shared instance; empty = private

    friend bool operator==(const ProfileCacheLevel&, const ProfileCacheLevel&) = default;
};

struct ProfileMemoryTier {
    BytesPerSecond bandwidth = 0;
    std::vector<std::vector<CoreId>> groups;
    std::vector<BytesPerSecond> scalability;  ///< index k: k+1 concurrent cores

    friend bool operator==(const ProfileMemoryTier&, const ProfileMemoryTier&) = default;
};

struct ProfileMemory {
    BytesPerSecond reference_bandwidth = 0;
    std::vector<ProfileMemoryTier> tiers;

    friend bool operator==(const ProfileMemory&, const ProfileMemory&) = default;
};

struct ProfileCommLayer {
    Seconds latency = 0;
    std::vector<CorePair> pairs;
    std::vector<std::pair<Bytes, Seconds>> p2p;  ///< size -> one-way latency
    std::vector<double> slowdown;                ///< index k: k+1 concurrent messages

    friend bool operator==(const ProfileCommLayer&, const ProfileCommLayer&) = default;
};

/// The cluster topology the profiled machine was measured on (the
/// `[topology]` section; absent for single-node machines). A cluster
/// profile only stores measurements for a sampled pair set — this block
/// plus the comm-tier records let comm_layer_of classify *any* pair
/// analytically (see docs/cluster-sim.md).
struct ProfileTopology {
    /// sim::topology_kind_name value ("fat-tree", "torus", "dragonfly",
    /// "custom"); empty means no topology.
    std::string kind;
    int cores_per_node = 1;
    /// Kind-specific shape: fat-tree {arity, levels}; torus the dimension
    /// extents; dragonfly {groups, routers, nodes_per_router}; custom
    /// empty (no analytic fallback).
    std::vector<int> dims;

    [[nodiscard]] bool enabled() const { return !kind.empty() && kind != "none"; }

    friend bool operator==(const ProfileTopology&, const ProfileTopology&) = default;
};

/// One inter-node route class observed while profiling a cluster (a
/// `[comm-tier k]` section): which measured comm layer the class landed
/// in. Written by annotate_cluster_profile, consumed by the
/// comm_layer_of fallback for pairs outside the sampled set.
struct ProfileCommTier {
    std::string name;  ///< tier name from the machine/platform description
    int tier = 0;      ///< bottleneck (highest) link tier on the route
    int hops = 0;      ///< route hop count
    int layer = 0;     ///< index into Profile::comm

    friend bool operator==(const ProfileCommTier&, const ProfileCommTier&) = default;
};

class Profile {
  public:
    std::string machine;
    int cores = 0;
    Bytes page_size = 0;
    std::vector<ProfileCacheLevel> caches;
    ProfileMemory memory;
    std::vector<ProfileCommLayer> comm;
    /// Cluster topology block; ProfileTopology::enabled() is false (and
    /// the section is omitted) for single-node profiles.
    ProfileTopology topology;
    /// Inter-node route classes -> measured comm layers (cluster profiles
    /// only).
    std::vector<ProfileCommTier> comm_tiers;
    /// Wall-clock per benchmark phase (the Table I rows).
    std::map<std::string, Seconds> phase_seconds;
    /// Deterministic observability counters of the producing run (the
    /// `[counters]` section). Schedule-invariant event counts — identical
    /// for --jobs 1 and --jobs N — so golden tests pin them. Empty unless
    /// the run asked for them (SuiteOptions::profile_counters).
    std::map<std::string, std::uint64_t> counters;
    /// Phases that failed in the producing run, phase name -> first error
    /// message (the `[errors]` section). A profile with entries here is
    /// partial: the listed phases' sections are missing or incomplete, the
    /// rest are trustworthy. Empty for clean runs, and the section is
    /// omitted entirely so historical profiles parse unchanged.
    std::map<std::string, std::string> errors;

    // ---- queries used by the autotune consumers ----

    /// Size of cache level `level` (0 = L1), nullopt when not detected.
    [[nodiscard]] std::optional<Bytes> cache_size(std::size_t level) const;

    /// Largest detected cache size (the LLC).
    [[nodiscard]] std::optional<Bytes> last_level_cache() const;

    /// True iff the pair shares the cache at `level`.
    [[nodiscard]] bool shares_cache(std::size_t level, CorePair pair) const;

    /// Comm layer index of the pair, or -1 when uncharacterized. On a
    /// cluster profile, pairs outside the measured sample classify
    /// analytically: an intra-node pair is translated to its node-0
    /// twin, an inter-node pair is routed over the topology and matched
    /// against the comm-tier records.
    [[nodiscard]] int comm_layer_of(CorePair pair) const;

    /// Estimated one-way latency between the pair for a `size`-byte
    /// message, interpolated from the stored per-layer curve.
    [[nodiscard]] std::optional<Seconds> comm_latency(CorePair pair, Bytes size) const;

    /// The curve lookup behind comm_latency, for callers that already
    /// classified the pair (schedule pricing caches the layer per pair
    /// and the latency per (layer, size) — at cluster scale the repeated
    /// classification dominates otherwise).
    [[nodiscard]] std::optional<Seconds> layer_latency(int layer, Bytes size) const;

    /// Memory tier index whose groups contain both cores (i.e. the pair
    /// collides on a shared memory resource), or -1.
    [[nodiscard]] int memory_tier_of(CorePair pair) const;

    /// Effective per-core bandwidth when `n` cores of tier `tier`'s first
    /// group stream concurrently (clamped to the measured curve).
    [[nodiscard]] std::optional<BytesPerSecond> memory_bandwidth_at(std::size_t tier,
                                                                    int n) const;

    // ---- serialization ----

    /// One-way JSON export for interop with external tooling (plotters,
    /// dashboards). The authoritative round-trip format remains the native
    /// text one (serialize/parse); JSON is emit-only by design.
    [[nodiscard]] std::string to_json() const;

    [[nodiscard]] std::string serialize() const;
    [[nodiscard]] static std::optional<Profile> parse(const std::string& text);

    /// Write to a file, crash-atomically (fsync'd temporary + rename): a
    /// reader never sees a torn profile. Returns false on I/O failure.
    [[nodiscard]] bool save(const std::string& path) const;

    /// Read from a file. On nullopt, `diagnostic` (when given) says *why*
    /// — a missing file and a malformed one call for different fixes, so
    /// the CLI must not report them with one message.
    [[nodiscard]] static std::optional<Profile> load(const std::string& path,
                                                     std::string* diagnostic = nullptr);

    friend bool operator==(const Profile&, const Profile&) = default;
};

}  // namespace servet::core
