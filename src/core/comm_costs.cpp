#include "core/comm_costs.hpp"

#include <algorithm>
#include <set>

#include "base/check.hpp"
#include "base/fault_plan.hpp"
#include "base/log.hpp"
#include "obs/metrics.hpp"
#include "stats/cluster.hpp"

namespace servet::core {

namespace {

obs::Counter& retries_counter() {
    // Stable: drops derive from the fault plan's seed and the task-key
    // salts, so which probes retry is schedule-invariant.
    static obs::Counter& c =
        obs::counter("phase.comm_costs.retries", obs::Stability::Stable);
    return c;
}

/// Runs `probe` with up to `max_retries` re-measures on transient
/// transport loss; the last attempt's error propagates.
template <typename Probe>
auto with_retries(int max_retries, Probe&& probe) {
    for (int attempt = 0;; ++attempt) {
        try {
            return probe();
        } catch (const TransientNetworkError&) {
            if (attempt >= max_retries) throw;
            retries_counter().increment();
        }
    }
}

std::vector<Bytes> default_sweep_sizes() {
    std::vector<Bytes> sizes;
    for (Bytes s = 1 * KiB; s <= 4 * MiB; s *= 2) sizes.push_back(s);
    return sizes;
}

/// Ping-pong task for one pair. The key is shared between the layer scan,
/// the per-layer sweep and the isolated baseline, so overlapping probes
/// (the sweep size that equals the probe size, the baseline of a pair the
/// scan already measured) memo-hit instead of re-measuring.
MeasureTask pingpong_task(CorePair pair, Bytes size, int reps, int max_retries) {
    // Canonical pair order: a ping-pong is symmetric, so (b,a) shares the
    // (a,b) task key and the engine/memo dedupe it to one measurement.
    const CorePair canonical = pair.canonical();
    MeasureTask task;
    task.key = "comm/pp/m" + std::to_string(size) + "/r" + std::to_string(reps) + "/" +
               std::to_string(canonical.a) + "-" + std::to_string(canonical.b);
    task.body = [canonical, size, reps, max_retries](Platform*, msg::Network* network) {
        return with_retries(max_retries, [&] {
            return std::vector<double>{network->pingpong_latency(canonical, size, reps)};
        });
    };
    return task;
}

/// The layer-scan pair list: every pair by default, or the caller's
/// sampled set canonicalized with symmetric/exact duplicates dropped
/// (first occurrence keeps its position, so the scan order is stable).
std::vector<CorePair> scan_pairs(const CommCostsOptions& options, int n) {
    if (options.probe_pairs.empty()) return all_core_pairs(n);
    std::vector<CorePair> pairs;
    pairs.reserve(options.probe_pairs.size());
    std::set<CorePair> seen;
    for (const CorePair& pair : options.probe_pairs) {
        SERVET_CHECK_MSG(pair.a >= 0 && pair.a < n && pair.b >= 0 && pair.b < n,
                         "probe pair core out of range");
        SERVET_CHECK_MSG(pair.a != pair.b, "probe pair must join two distinct cores");
        const CorePair canonical = pair.canonical();
        if (seen.insert(canonical).second) pairs.push_back(canonical);
    }
    return pairs;
}
}  // namespace

std::vector<CorePair> disjoint_pairs(const std::vector<CorePair>& pairs) {
    std::vector<CorePair> result;
    std::set<CoreId> used;
    for (const CorePair& pair : pairs) {
        if (used.contains(pair.a) || used.contains(pair.b)) continue;
        used.insert(pair.a);
        used.insert(pair.b);
        result.push_back(pair);
    }
    return result;
}

Seconds CommCostsResult::estimate_latency(CorePair pair, Bytes size) const {
    const int layer_index = layer_of(pair);
    SERVET_CHECK_MSG(layer_index >= 0, "pair was not characterized");
    const CommLayer& layer = layers[static_cast<std::size_t>(layer_index)];
    SERVET_CHECK(!layer.p2p.empty());

    const auto& curve = layer.p2p;  // sorted by size ascending
    if (size <= curve.front().first) {
        // Extrapolate below the sweep with the first point's effective
        // per-byte cost anchored at the probe latency floor.
        const double scale = static_cast<double>(size) / static_cast<double>(curve.front().first);
        return curve.front().second * std::max(scale, 0.25);
    }
    if (size >= curve.back().first) {
        // Extrapolate above the sweep at the last segment's bandwidth.
        const auto& [s1, t1] = curve[curve.size() - 2];
        const auto& [s2, t2] = curve.back();
        const double per_byte = (t2 - t1) / static_cast<double>(s2 - s1);
        return t2 + per_byte * static_cast<double>(size - s2);
    }
    for (std::size_t i = 1; i < curve.size(); ++i) {
        if (size > curve[i].first) continue;
        const auto& [s1, t1] = curve[i - 1];
        const auto& [s2, t2] = curve[i];
        const double f =
            static_cast<double>(size - s1) / static_cast<double>(s2 - s1);
        return t1 + f * (t2 - t1);
    }
    return curve.back().second;  // unreachable
}

int CommCostsResult::layer_of(CorePair pair) const {
    const CorePair canonical = pair.canonical();
    for (std::size_t i = 0; i < layers.size(); ++i) {
        const auto& layer_pairs = layers[i].pairs;
        if (std::find(layer_pairs.begin(), layer_pairs.end(), canonical) != layer_pairs.end())
            return static_cast<int>(i);
    }
    return -1;
}

CommCostsResult characterize_communication(MeasureEngine& engine,
                                           const CommCostsOptions& options) {
    SERVET_CHECK(engine.network() != nullptr);
    const int n = engine.network()->endpoint_count();
    SERVET_CHECK_MSG(n >= 2, "communication characterization needs at least two endpoints");
    SERVET_CHECK(options.reps > 0 && options.max_concurrent >= 1);

    CommCostsResult result;
    result.probe_message = options.probe_message;

    // Fig. 7: probe the pair set (batch 1, all independent), cluster
    // similar latencies into layers.
    const std::vector<CorePair> pairs = scan_pairs(options, n);
    SERVET_CHECK_MSG(!pairs.empty(), "probe pair set is empty after deduplication");
    std::vector<MeasureTask> probe_tasks;
    probe_tasks.reserve(pairs.size());
    for (const CorePair& pair : pairs)
        probe_tasks.push_back(
            pingpong_task(pair, options.probe_message, options.reps, options.max_retries));
    obs::counter("phase.comm_costs.measurements", obs::Stability::Stable)
        .add(probe_tasks.size());
    const std::vector<std::vector<double>> probed = engine.run(probe_tasks);

    stats::SimilarityClusterer clusterer(options.cluster_tolerance);
    for (std::size_t pi = 0; pi < pairs.size(); ++pi) {
        const Seconds latency = probed[pi][0];
        SERVET_CHECK(latency > 0);
        clusterer.add(latency, result.pairs.size());
        result.pairs.push_back({pairs[pi], latency});
    }

    for (const stats::Cluster& cluster : clusterer.clusters()) {
        CommLayer layer;
        layer.latency = cluster.representative;
        for (std::size_t tag : cluster.members) layer.pairs.push_back(result.pairs[tag].pair);
        layer.representative = layer.pairs.front();
        result.layers.push_back(std::move(layer));
    }
    std::sort(result.layers.begin(), result.layers.end(),
              [](const CommLayer& a, const CommLayer& b) { return a.latency < b.latency; });

    // Batch 2 — per-layer micro-benchmark of the representative pair
    // (Fig. 10c/d), isolated baseline, and concurrent-message scalability
    // (Fig. 10b). Every (layer, size) and (layer, k) point is independent.
    const std::vector<Bytes> sweep =
        options.sweep_sizes.empty() ? default_sweep_sizes() : options.sweep_sizes;
    std::vector<MeasureTask> detail_tasks;
    struct LayerPlan {
        std::vector<std::size_t> sweep_task;       // aligned with `sweep`
        std::size_t isolated_task = 0;
        std::vector<std::size_t> concurrent_task;  // index k-1: k senders
    };
    std::vector<LayerPlan> plans;
    plans.reserve(result.layers.size());
    for (CommLayer& layer : result.layers) {
        LayerPlan plan;
        for (Bytes size : sweep) {
            plan.sweep_task.push_back(detail_tasks.size());
            detail_tasks.push_back(
                pingpong_task(layer.representative, size, options.reps, options.max_retries));
        }

        const std::vector<CorePair> senders = disjoint_pairs(layer.pairs);
        plan.isolated_task = detail_tasks.size();
        detail_tasks.push_back(pingpong_task(senders.front(), options.probe_message,
                                             options.reps, options.max_retries));
        const int max_n =
            std::min<int>(options.max_concurrent, static_cast<int>(senders.size()));
        for (int k = 1; k <= max_n; ++k) {
            const std::vector<CorePair> active(senders.begin(), senders.begin() + k);
            MeasureTask task;
            task.key = "comm/cc/m" + std::to_string(options.probe_message) + "/r" +
                       std::to_string(options.reps);
            for (const CorePair& pair : active) {
                task.key += '/';
                task.key += std::to_string(pair.a);
                task.key += '-';
                task.key += std::to_string(pair.b);
            }
            task.body = [active, options](Platform*, msg::Network* network) {
                return with_retries(options.max_retries, [&] {
                    return network->concurrent_latency(active, options.probe_message,
                                                       options.reps);
                });
            };
            plan.concurrent_task.push_back(detail_tasks.size());
            detail_tasks.push_back(std::move(task));
        }
        plans.push_back(std::move(plan));
    }
    obs::counter("phase.comm_costs.measurements", obs::Stability::Stable)
        .add(detail_tasks.size());
    const std::vector<std::vector<double>> detailed = engine.run(detail_tasks);

    for (std::size_t li = 0; li < result.layers.size(); ++li) {
        CommLayer& layer = result.layers[li];
        const LayerPlan& plan = plans[li];
        for (std::size_t si = 0; si < sweep.size(); ++si)
            layer.p2p.emplace_back(sweep[si], detailed[plan.sweep_task[si]][0]);

        const Seconds isolated = detailed[plan.isolated_task][0];
        for (std::size_t ki = 0; ki < plan.concurrent_task.size(); ++ki) {
            const std::vector<double>& latencies = detailed[plan.concurrent_task[ki]];
            // The paper reports how much slower one message gets with the
            // others in flight: use the mean across active senders.
            Seconds total = 0;
            for (Seconds t : latencies) total += t;
            layer.slowdown_by_n.push_back(
                total / (static_cast<double>(latencies.size()) * isolated));
        }
    }

    SERVET_LOG_INFO("comm-costs: %zu layers detected over %zu pairs", result.layers.size(),
                    result.pairs.size());
    return result;
}

CommCostsResult characterize_communication(msg::Network& network,
                                           const CommCostsOptions& options) {
    MeasureEngine engine(nullptr, &network, nullptr, nullptr);
    return characterize_communication(engine, options);
}

}  // namespace servet::core
