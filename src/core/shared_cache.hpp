// Shared-cache determination (Fig. 5). For each detected cache level, a
// reference traversal of a (2/3)*CS array runs on one isolated core; then
// every core pair runs the same traversal concurrently. Two such arrays
// cannot coexist in one cache of size CS, so pairs served by the same
// physical cache thrash each other and their cycle count at least doubles
// (ratio > 2); pairs with private caches stay near the reference.
#pragma once

#include <vector>

#include "base/types.hpp"
#include "core/measure.hpp"
#include "platform/platform.hpp"

namespace servet::core {

struct SharedCacheOptions {
    Bytes stride = 1 * KiB;
    int passes = 3;
    /// The paper's sharing criterion: concurrent/reference cycle ratio
    /// above which a pair is declared to share the cache.
    double ratio_threshold = 2.0;
    /// Probe only pairs containing this core when >= 0 (the paper's Fig. 8
    /// plots pairs with core 0); -1 probes all pairs.
    CoreId only_with_core = -1;
};

struct SharedCachePairResult {
    CorePair pair;
    double ratio = 1.0;  ///< max over the pair of concurrent/reference cycles

    [[nodiscard]] bool operator==(const SharedCachePairResult&) const = default;
};

/// Results for one cache level.
struct SharedCacheLevelResult {
    Bytes cache_size = 0;
    Bytes array_bytes = 0;                        ///< the (2/3)*CS probe size
    Cycles reference_cycles = 0;                  ///< core 0's solo cycles
    std::vector<SharedCachePairResult> pairs;     ///< every probed pair
    std::vector<CorePair> sharing_pairs;          ///< Psc: ratio > threshold
    std::vector<std::vector<CoreId>> groups;      ///< cores per cache instance

    [[nodiscard]] bool operator==(const SharedCacheLevelResult&) const = default;
};

/// Run the Fig. 5 benchmark for each cache size in `cache_sizes`
/// (typically the detect_cache_levels output). Groups are derived from the
/// sharing pairs by connected components.
///
/// Robustness refinement over the paper's pseudocode (see DESIGN.md): the
/// reference is measured per core rather than once, and each probe reuses
/// a statically placed buffer, so a physically indexed cache's placement
/// luck appears identically in a core's reference and concurrent runs and
/// cancels out of the ratio. The paper's single static allocation gets the
/// same cancellation implicitly.
[[nodiscard]] std::vector<SharedCacheLevelResult> detect_shared_caches(
    MeasureEngine& engine, const std::vector<Bytes>& cache_sizes,
    const SharedCacheOptions& options = {});

/// Convenience entry: serial, unmemoized engine over `platform`.
[[nodiscard]] std::vector<SharedCacheLevelResult> detect_shared_caches(
    Platform& platform, const std::vector<Bytes>& cache_sizes,
    const SharedCacheOptions& options = {});

}  // namespace servet::core
