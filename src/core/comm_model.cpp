#include "core/comm_model.hpp"

#include <algorithm>

#include "base/check.hpp"
#include "stats/linfit.hpp"

namespace servet::core {

HockneyModel fit_hockney(const std::vector<std::pair<Bytes, Seconds>>& points) {
    SERVET_CHECK(points.size() >= 2);
    std::vector<double> sizes, latencies;
    sizes.reserve(points.size());
    latencies.reserve(points.size());
    for (const auto& [size, latency] : points) {
        sizes.push_back(static_cast<double>(size));
        latencies.push_back(latency);
    }
    const stats::LinearFit fit = stats::linear_fit(sizes, latencies);

    HockneyModel model;
    model.alpha = std::max(fit.intercept, 0.0);
    model.bandwidth = fit.slope > 0 ? 1.0 / fit.slope : 1e18;
    return model;
}

ModelError evaluate_model(const HockneyModel& model,
                          const std::vector<std::pair<Bytes, Seconds>>& points) {
    SERVET_CHECK(!points.empty());
    ModelError error;
    for (const auto& [size, latency] : points) {
        SERVET_CHECK(latency > 0);
        const double relative = std::abs(model.at(size) - latency) / latency;
        error.mean_relative += relative;
        error.max_relative = std::max(error.max_relative, relative);
    }
    error.mean_relative /= static_cast<double>(points.size());
    return error;
}

ModelError evaluate_profile(const Profile& profile, CorePair pair,
                            const std::vector<std::pair<Bytes, Seconds>>& points) {
    SERVET_CHECK(!points.empty());
    ModelError error;
    for (const auto& [size, latency] : points) {
        SERVET_CHECK(latency > 0);
        const auto predicted = profile.comm_latency(pair, size);
        SERVET_CHECK_MSG(predicted.has_value(), "pair not characterized by the profile");
        const double relative = std::abs(*predicted - latency) / latency;
        error.mean_relative += relative;
        error.max_relative = std::max(error.max_relative, relative);
    }
    error.mean_relative /= static_cast<double>(points.size());
    return error;
}

HockneyModel fit_hockney_global(const Profile& profile) {
    std::vector<std::pair<Bytes, Seconds>> all_points;
    for (const ProfileCommLayer& layer : profile.comm)
        all_points.insert(all_points.end(), layer.p2p.begin(), layer.p2p.end());
    return fit_hockney(all_points);
}

}  // namespace servet::core
