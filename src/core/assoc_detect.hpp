// L1 associativity detection — an X-Ray-style parameter the paper leaves
// to future work, measurable with the same traversal primitive. Probe:
// walk k blocks spaced exactly one cache size apart (array of k*CS bytes
// with stride CS). All k accesses collide in one set of the virtually
// indexed L1, so they fit while k <= associativity and thrash (LRU,
// cyclically) the moment k exceeds it: the cycles step identifies K
// exactly. Lower, physically indexed levels see the k blocks on random
// frames — spread across their sets — so the step is unmistakably L1's.
#pragma once

#include <optional>

#include "base/types.hpp"
#include "platform/platform.hpp"

namespace servet::core {

struct AssocDetectOptions {
    int max_ways = 32;
    int passes = 4;
    int repeats = 3;
    /// Ratio of consecutive per-access costs that marks the thrash step.
    double gradient_threshold = 1.5;
    CoreId core = 0;
};

/// Detected associativity of the (virtually indexed) L1 of known size
/// `l1_size`, or nullopt when no conflict step appears up to max_ways.
[[nodiscard]] std::optional<int> detect_l1_associativity(
    Platform& platform, Bytes l1_size, const AssocDetectOptions& options = {});

}  // namespace servet::core
