#include "core/assoc_detect.hpp"

#include <vector>

#include "base/check.hpp"

namespace servet::core {

std::optional<int> detect_l1_associativity(Platform& platform, Bytes l1_size,
                                           const AssocDetectOptions& options) {
    SERVET_CHECK(l1_size > 0 && options.max_ways >= 2);
    SERVET_CHECK(options.passes > 0 && options.repeats > 0);

    std::vector<Cycles> cycles;
    cycles.reserve(static_cast<std::size_t>(options.max_ways));
    for (int k = 1; k <= options.max_ways; ++k) {
        Cycles total = 0;
        for (int r = 0; r < options.repeats; ++r)
            total += platform.traverse_cycles(options.core,
                                              static_cast<Bytes>(k) * l1_size, l1_size,
                                              options.passes, /*fresh_placement=*/true);
        cycles.push_back(total / options.repeats);
    }

    // The step from "k ways fit" to "k+1 ways thrash" is the first large
    // consecutive ratio; its left index is the associativity.
    for (std::size_t k = 0; k + 1 < cycles.size(); ++k) {
        if (cycles[k + 1] / cycles[k] > options.gradient_threshold)
            return static_cast<int>(k) + 1;
    }
    return std::nullopt;
}

}  // namespace servet::core
