#include "core/suite.hpp"

#include <chrono>

#include "base/check.hpp"
#include "base/log.hpp"

namespace servet::core {

namespace {
class PhaseTimer {
  public:
    explicit PhaseTimer(std::map<std::string, Seconds>& sink) : sink_(&sink) {}

    template <typename F>
    auto time(const std::string& phase, F&& body) {
        const auto start = std::chrono::steady_clock::now();
        auto result = body();
        const auto elapsed = std::chrono::steady_clock::now() - start;
        (*sink_)[phase] =
            std::chrono::duration_cast<std::chrono::duration<double>>(elapsed).count();
        return result;
    }

  private:
    std::map<std::string, Seconds>* sink_;
};
}  // namespace

Profile SuiteResult::to_profile(const std::string& machine_name, int cores,
                                Bytes page_size) const {
    Profile profile;
    profile.machine = machine_name;
    profile.cores = cores;
    profile.page_size = page_size;

    for (std::size_t i = 0; i < cache_levels.size(); ++i) {
        ProfileCacheLevel cache;
        cache.size = cache_levels[i].size;
        cache.method = cache_levels[i].method;
        if (has_shared_caches && i < shared_caches.size())
            cache.groups = shared_caches[i].groups;
        profile.caches.push_back(std::move(cache));
    }

    if (has_mem_overhead) {
        profile.memory.reference_bandwidth = mem_overhead.reference_bandwidth;
        for (std::size_t t = 0; t < mem_overhead.tiers.size(); ++t) {
            ProfileMemoryTier tier;
            tier.bandwidth = mem_overhead.tiers[t].bandwidth;
            tier.groups = mem_overhead.tiers[t].groups;
            for (const MemScalabilityCurve& scal : mem_overhead.scalability) {
                if (scal.tier == t) tier.scalability = scal.bandwidth_by_n;
            }
            profile.memory.tiers.push_back(std::move(tier));
        }
    }

    if (has_comm) {
        for (const CommLayer& layer : comm.layers) {
            ProfileCommLayer out;
            out.latency = layer.latency;
            out.pairs = layer.pairs;
            out.p2p = layer.p2p;
            out.slowdown = layer.slowdown_by_n;
            profile.comm.push_back(std::move(out));
        }
    }

    profile.phase_seconds = phase_seconds;
    return profile;
}

SuiteResult run_suite(Platform& platform, msg::Network* network, SuiteOptions options) {
    SuiteResult result;
    PhaseTimer timer(result.phase_seconds);

    // Phase 1: cache size estimate (Section III-A).
    options.detect.page_size = platform.page_size();
    result.curve = timer.time("cache_size", [&] {
        return run_mcalibrator(platform, options.mcalibrator);
    });
    result.cache_levels = detect_cache_levels(result.curve, options.detect);
    SERVET_LOG_INFO("suite: detected %zu cache levels", result.cache_levels.size());

    std::vector<Bytes> sizes;
    for (const CacheLevelEstimate& level : result.cache_levels) sizes.push_back(level.size);

    // Phase 2: shared caches (Section III-B) — needs at least two cores.
    if (options.run_shared_cache && platform.core_count() > 1 && !sizes.empty()) {
        result.shared_caches = timer.time("shared_caches", [&] {
            return detect_shared_caches(platform, sizes, options.shared_cache);
        });
        result.has_shared_caches = true;
    }

    // Phase 3: memory access overhead (Section III-C); arrays must stream
    // past the LLC.
    if (options.run_mem_overhead && platform.core_count() > 1) {
        if (!sizes.empty()) options.mem_overhead.array_bytes = 4 * sizes.back();
        result.mem_overhead = timer.time("mem_overhead", [&] {
            return characterize_memory_overhead(platform, options.mem_overhead);
        });
        result.has_mem_overhead = true;
    }

    // Phase 4: communication costs (Section III-D); probe with the L1 size.
    if (options.run_comm && network != nullptr && network->endpoint_count() > 1) {
        if (!sizes.empty()) options.comm.probe_message = sizes.front();
        result.comm = timer.time("comm_costs", [&] {
            return characterize_communication(*network, options.comm);
        });
        result.has_comm = true;
    }
    return result;
}

}  // namespace servet::core
