#include "core/suite.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <optional>
#include <utility>

#include "base/check.hpp"
#include "base/fs.hpp"
#include "base/hash.hpp"
#include "base/log.hpp"
#include "core/journal.hpp"
#include "core/measure.hpp"
#include "core/phase_codec.hpp"
#include "exec/dag.hpp"
#include "exec/memo_cache.hpp"
#include "exec/pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace servet::core {

void PhaseTimer::record(const std::string& phase, Seconds elapsed) {
    const std::lock_guard<std::mutex> lock(mutex_);
    (*sink_)[phase] += elapsed;
}

Seconds PhaseTimer::total(const std::string& phase) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sink_->find(phase);
    return it == sink_->end() ? 0 : it->second;
}

bool SuiteResult::measurements_equal(const SuiteResult& other) const {
    return curve == other.curve && cache_levels == other.cache_levels &&
           has_shared_caches == other.has_shared_caches &&
           shared_caches == other.shared_caches &&
           has_mem_overhead == other.has_mem_overhead && mem_overhead == other.mem_overhead &&
           has_comm == other.has_comm && comm == other.comm && errors == other.errors;
}

Profile SuiteResult::to_profile(const std::string& machine_name, int cores,
                                Bytes page_size) const {
    Profile profile;
    profile.machine = machine_name;
    profile.cores = cores;
    profile.page_size = page_size;

    for (std::size_t i = 0; i < cache_levels.size(); ++i) {
        ProfileCacheLevel cache;
        cache.size = cache_levels[i].size;
        cache.method = cache_levels[i].method;
        if (has_shared_caches && i < shared_caches.size())
            cache.groups = shared_caches[i].groups;
        profile.caches.push_back(std::move(cache));
    }

    if (has_mem_overhead) {
        profile.memory.reference_bandwidth = mem_overhead.reference_bandwidth;
        for (std::size_t t = 0; t < mem_overhead.tiers.size(); ++t) {
            ProfileMemoryTier tier;
            tier.bandwidth = mem_overhead.tiers[t].bandwidth;
            tier.groups = mem_overhead.tiers[t].groups;
            for (const MemScalabilityCurve& scal : mem_overhead.scalability) {
                if (scal.tier == t) tier.scalability = scal.bandwidth_by_n;
            }
            profile.memory.tiers.push_back(std::move(tier));
        }
    }

    if (has_comm) {
        for (const CommLayer& layer : comm.layers) {
            ProfileCommLayer out;
            out.latency = layer.latency;
            out.pairs = layer.pairs;
            out.p2p = layer.p2p;
            out.slowdown = layer.slowdown_by_n;
            profile.comm.push_back(std::move(out));
        }
    }

    profile.phase_seconds = phase_seconds;
    if (embed_counters) profile.counters = counters;
    for (const PhaseError& error : errors) profile.errors[error.phase] = error.message;
    return profile;
}

SuiteResult run_suite(Platform& platform, msg::Network* network, SuiteOptions options) {
    SERVET_TRACE_SPAN("suite/run");
    SERVET_CHECK(options.jobs >= 1);
    // The journal identity hashes the options exactly as the caller
    // passed them — before the per-phase sizes derived below (page_size,
    // array_bytes, probe_message) overwrite anything — so a resumed run
    // that passes the same flags hashes the same.
    const std::uint64_t options_hash = suite_options_hash(options);
    SuiteResult result;
    result.embed_counters = options.profile_counters;
    PhaseTimer timer(result.phase_seconds);

    // Snapshot the Stable counters so the result reports this run's deltas
    // — robust when several suites run in one process (tests, tools).
    const std::map<std::string, std::uint64_t> counters_before =
        obs::registry().stable_counters();

    // jobs counts concurrent measurement tasks; the calling thread
    // participates in every parallel_for, so the pool holds jobs-1 workers.
    std::unique_ptr<exec::ThreadPool> pool;
    if (options.jobs > 1) pool = std::make_unique<exec::ThreadPool>(options.jobs - 1);

    exec::MemoCache memo;
    const bool want_memo = options.use_memo || !options.memo_path.empty();
    if (!options.memo_path.empty()) {
        switch (memo.load_file(options.memo_path)) {
            case exec::MemoLoad::Loaded:
                SERVET_LOG_INFO("suite: loaded %zu memo records from %s", memo.size(),
                                options.memo_path.c_str());
                break;
            case exec::MemoLoad::Absent:
                break;  // cold start: the save below will create it
            case exec::MemoLoad::Malformed:
                // Not fatal — the run just re-measures — but silence here
                // would hide a corrupt file that keeps every future run
                // cold until the save path overwrites it.
                SERVET_LOG_WARN("suite: ignoring malformed memo file %s",
                                options.memo_path.c_str());
                break;
        }
    }
    if (want_memo && !options.run_dir.empty() && create_directories(options.run_dir)) {
        // Task-level crash recovery: each fresh measurement appends to
        // run_dir/memo.servet as it lands, so a killed run's *partial*
        // phase is warm on resume — the phase re-runs, but every task it
        // already measured replays from the memo. The load is torn-tail
        // tolerant because dying mid-append is this file's normal case.
        const std::string memo_journal = options.run_dir + "/memo.servet";
        if (memo.load_file(memo_journal, exec::MemoLoadMode::TornTailOk) ==
            exec::MemoLoad::Loaded)
            SERVET_LOG_INFO("suite: loaded %zu memo records from run journal %s",
                            memo.size(), memo_journal.c_str());
        if (!memo.journal_to(memo_journal))
            SERVET_LOG_WARN("suite: cannot journal measurements to %s",
                            memo_journal.c_str());
    }

    MeasureEngine engine(&platform, network, pool.get(), want_memo ? &memo : nullptr);
    engine.set_task_deadline(options.task_deadline);
    if (pool != nullptr && !engine.deterministic())
        SERVET_LOG_INFO("suite: platform is not forkable; running serially");

    // Crash safety: with a run directory, every completed phase commits
    // to a write-ahead journal, and a resumed run replays the committed
    // phases instead of re-measuring them. An incompatible journal throws
    // out of run_suite — that is the refusal path, not a phase error.
    std::unique_ptr<RunJournal> journal;
    if (!options.run_dir.empty()) {
        RunJournal::Header header;
        header.options_hash = options_hash;
        header.fingerprint = engine.fingerprint();
        header.machine = platform.name();
        header.cores = platform.core_count();
        header.page_size = platform.page_size();
        journal = std::make_unique<RunJournal>(
            options.run_dir, header,
            options.resume ? RunJournal::Mode::Resume : RunJournal::Mode::Create);
        if (journal->dropped_torn_tail())
            SERVET_LOG_WARN(
                "suite: journal in %s had a torn trailing record (crash mid-commit); "
                "that phase will re-run",
                options.run_dir.c_str());
        if (options.resume && !journal->records().empty())
            SERVET_LOG_INFO("suite: resuming from %s with %zu committed phase(s)",
                            options.run_dir.c_str(), journal->records().size());
        // Targeted re-measurement (validate --repair): invalidate the
        // implicated phases up front, then let the normal replay/commit
        // path re-measure exactly those.
        for (const std::string& phase : options.remeasure) {
            if (journal->find(phase) == nullptr) continue;
            if (journal->drop(phase))
                SERVET_LOG_INFO("suite: dropped phase %s from journal; it will "
                                "re-measure",
                                phase.c_str());
            else
                SERVET_LOG_WARN("suite: cannot drop phase %s from journal %s",
                                phase.c_str(), options.run_dir.c_str());
        }
    }
    obs::Counter& journal_replays =
        obs::counter("suite.journal.phases.replayed", obs::Stability::Stable);
    obs::Counter& journal_appends =
        obs::counter("suite.journal.phases.appended", obs::Stability::Stable);
    std::atomic<std::uint64_t> replayed_here{0};
    std::atomic<std::uint64_t> appended_here{0};

    // Forensic digest stored on each commit line: the Stable counters at
    // commit time. Not used for replay decisions (per-phase deltas are
    // not schedule-invariant when DAG phases overlap).
    const auto counters_digest = [] {
        Fingerprint fp;
        for (const auto& [name, value] : obs::registry().stable_counters()) {
            fp.add(std::string_view(name));
            fp.add(value);
        }
        return fp.value();
    };
    const auto replay = [&](const std::string& phase, const RunJournal::Record& record) {
        timer.record(phase, record.seconds);
        journal_replays.increment();
        replayed_here.fetch_add(1, std::memory_order_relaxed);
        SERVET_LOG_INFO("suite: phase %s replayed from journal (%zu-byte record)",
                        phase.c_str(), record.payload.size());
    };
    // Commit runs inside the phase's isolate() body, after the phase's
    // result landed: an append failure only costs crash protection, a
    // decode failure on a later resume only costs a re-measurement.
    const auto commit = [&](const std::string& phase, std::string payload) {
        if (journal == nullptr) return;
        if (journal->append(phase, std::move(payload), timer.total(phase),
                            counters_digest())) {
            journal_appends.increment();
            appended_here.fetch_add(1, std::memory_order_relaxed);
        } else {
            SERVET_LOG_WARN("suite: cannot append phase %s to journal %s; this phase "
                            "loses crash protection",
                            phase.c_str(), options.run_dir.c_str());
        }
    };

    // Phase isolation: a phase body that throws is recorded — name plus
    // message — instead of propagating, so one broken probe costs its
    // phase, not the suite. The sink is mutex-guarded (DAG phases run
    // concurrently) and sorted by phase name at the end, keeping the
    // error list schedule-invariant.
    std::mutex errors_mutex;
    obs::Counter& phase_errors =
        obs::counter("suite.phase.errors", obs::Stability::Stable);
    const auto isolate = [&](const std::string& phase, auto&& body) {
        try {
            body();
        } catch (const std::exception& e) {
            phase_errors.increment();
            SERVET_LOG_WARN("suite: phase %s failed: %s", phase.c_str(), e.what());
            const std::lock_guard<std::mutex> lock(errors_mutex);
            result.errors.push_back({phase, e.what()});
        }
    };

    // Skipping cache-size detection starves the phases that consume its
    // sizes; they skip along with it rather than run mis-sized.
    if (!options.run_cache_size) {
        options.run_shared_cache = false;
        options.run_mem_overhead = false;
    }

    // Phase 1: cache size estimate (Section III-A). Runs first — every
    // other phase is sized by its result — with its sweep parallel inside.
    options.detect.page_size = platform.page_size();
    // A replayed phase bypasses isolate(): decoding a committed record
    // cannot throw, and a corrupt record falls through to re-measurement.
    const RunJournal::Record* cache_record =
        journal == nullptr || !options.run_cache_size ? nullptr : journal->find("cache_size");
    std::optional<CacheSizePayload> cache_payload;
    if (cache_record != nullptr) {
        cache_payload = decode_cache_size(cache_record->payload);
        if (!cache_payload)
            SERVET_LOG_WARN("suite: journaled cache_size record does not decode; "
                            "re-measuring");
    }
    if (cache_payload) {
        result.curve = std::move(cache_payload->curve);
        result.cache_levels = std::move(cache_payload->levels);
        replay("cache_size", *cache_record);
    } else if (options.run_cache_size) {
        isolate("cache_size", [&] {
            result.curve = timer.time("cache_size", [&] {
                return run_mcalibrator(engine, options.mcalibrator);
            });
            result.cache_levels = detect_cache_levels(result.curve, options.detect);
            SERVET_LOG_INFO("suite: detected %zu cache levels", result.cache_levels.size());
            commit("cache_size", encode_cache_size({result.curve, result.cache_levels}));
        });
    }

    std::vector<Bytes> sizes;
    for (const CacheLevelEstimate& level : result.cache_levels) sizes.push_back(level.size);

    // Phases 2-4 are mutually independent given the sizes: run them as a
    // three-node DAG, concurrently when a pool exists.
    exec::TaskDag dag;

    // Phase 2: shared caches (Section III-B) — needs at least two cores.
    if (options.run_shared_cache && platform.core_count() > 1 && !sizes.empty()) {
        dag.add("shared_caches", [&] {
            if (journal != nullptr) {
                if (const RunJournal::Record* record = journal->find("shared_caches")) {
                    if (auto decoded = decode_shared_caches(record->payload)) {
                        result.shared_caches = std::move(*decoded);
                        result.has_shared_caches = true;
                        replay("shared_caches", *record);
                        return;
                    }
                    SERVET_LOG_WARN("suite: journaled shared_caches record does not "
                                    "decode; re-measuring");
                }
            }
            isolate("shared_caches", [&] {
                result.shared_caches = timer.time("shared_caches", [&] {
                    return detect_shared_caches(engine, sizes, options.shared_cache);
                });
                result.has_shared_caches = true;
                commit("shared_caches", encode_shared_caches(result.shared_caches));
            });
        });
    }

    // Phase 3: memory access overhead (Section III-C); arrays must stream
    // past the LLC.
    if (options.run_mem_overhead && platform.core_count() > 1) {
        if (!sizes.empty()) options.mem_overhead.array_bytes = 4 * sizes.back();
        dag.add("mem_overhead", [&] {
            if (journal != nullptr) {
                if (const RunJournal::Record* record = journal->find("mem_overhead")) {
                    if (auto decoded = decode_mem_overhead(record->payload)) {
                        result.mem_overhead = std::move(*decoded);
                        result.has_mem_overhead = true;
                        replay("mem_overhead", *record);
                        return;
                    }
                    SERVET_LOG_WARN("suite: journaled mem_overhead record does not "
                                    "decode; re-measuring");
                }
            }
            isolate("mem_overhead", [&] {
                result.mem_overhead = timer.time("mem_overhead", [&] {
                    return characterize_memory_overhead(engine, options.mem_overhead);
                });
                result.has_mem_overhead = true;
                commit("mem_overhead", encode_mem_overhead(result.mem_overhead));
            });
        });
    }

    // Phase 4: communication costs (Section III-D); probe with the L1 size.
    if (options.run_comm && network != nullptr && network->endpoint_count() > 1) {
        if (!sizes.empty()) options.comm.probe_message = sizes.front();
        dag.add("comm_costs", [&] {
            if (journal != nullptr) {
                if (const RunJournal::Record* record = journal->find("comm_costs")) {
                    if (auto decoded = decode_comm_costs(record->payload)) {
                        result.comm = std::move(*decoded);
                        result.has_comm = true;
                        replay("comm_costs", *record);
                        return;
                    }
                    SERVET_LOG_WARN("suite: journaled comm_costs record does not "
                                    "decode; re-measuring");
                }
            }
            isolate("comm_costs", [&] {
                result.comm = timer.time("comm_costs", [&] {
                    return characterize_communication(engine, options.comm);
                });
                result.has_comm = true;
                commit("comm_costs", encode_comm_costs(result.comm));
            });
        });
    }

    // A non-deterministic platform is shared mutable state: its phases
    // must not overlap, so the DAG degrades to the serial path.
    dag.run(engine.deterministic() ? pool.get() : nullptr);

    std::sort(result.errors.begin(), result.errors.end(),
              [](const PhaseError& a, const PhaseError& b) { return a.phase < b.phase; });
    if (!result.errors.empty())
        SERVET_LOG_WARN("suite: %zu phase(s) failed; profile will be partial",
                        result.errors.size());

    result.memo_hits = memo.hits();
    result.memo_misses = memo.misses();
    result.journal_replayed = replayed_here.load(std::memory_order_relaxed);
    result.journal_appended = appended_here.load(std::memory_order_relaxed);

    for (const auto& [name, value] : obs::registry().stable_counters()) {
        const auto it = counters_before.find(name);
        const std::uint64_t before = it == counters_before.end() ? 0 : it->second;
        if (value > before) result.counters.emplace(name, value - before);
    }
    const auto counter_or_zero = [&](const char* name) {
        const auto it = result.counters.find(name);
        return it == result.counters.end() ? std::uint64_t{0} : it->second;
    };
    SERVET_LOG_INFO(
        "suite: measurements %llu run, %llu deduped; memo %llu hits / %llu misses",
        static_cast<unsigned long long>(counter_or_zero("exec.tasks.run")),
        static_cast<unsigned long long>(counter_or_zero("exec.tasks.deduped")),
        static_cast<unsigned long long>(counter_or_zero("exec.memo.hits")),
        static_cast<unsigned long long>(counter_or_zero("exec.memo.misses")));

    if (!options.memo_path.empty() && engine.memoizable()) {
        if (memo.save_file(options.memo_path)) {
            SERVET_LOG_INFO("suite: saved %zu memo records to %s", memo.size(),
                            options.memo_path.c_str());
        } else {
            SERVET_LOG_ERROR("suite: failed to save memo to %s", options.memo_path.c_str());
        }
    }
    return result;
}

}  // namespace servet::core
