#include "core/suite.hpp"

#include <algorithm>
#include <exception>

#include "base/check.hpp"
#include "base/log.hpp"
#include "core/measure.hpp"
#include "exec/dag.hpp"
#include "exec/memo_cache.hpp"
#include "exec/pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace servet::core {

void PhaseTimer::record(const std::string& phase, Seconds elapsed) {
    const std::lock_guard<std::mutex> lock(mutex_);
    (*sink_)[phase] += elapsed;
}

bool SuiteResult::measurements_equal(const SuiteResult& other) const {
    return curve == other.curve && cache_levels == other.cache_levels &&
           has_shared_caches == other.has_shared_caches &&
           shared_caches == other.shared_caches &&
           has_mem_overhead == other.has_mem_overhead && mem_overhead == other.mem_overhead &&
           has_comm == other.has_comm && comm == other.comm && errors == other.errors;
}

Profile SuiteResult::to_profile(const std::string& machine_name, int cores,
                                Bytes page_size) const {
    Profile profile;
    profile.machine = machine_name;
    profile.cores = cores;
    profile.page_size = page_size;

    for (std::size_t i = 0; i < cache_levels.size(); ++i) {
        ProfileCacheLevel cache;
        cache.size = cache_levels[i].size;
        cache.method = cache_levels[i].method;
        if (has_shared_caches && i < shared_caches.size())
            cache.groups = shared_caches[i].groups;
        profile.caches.push_back(std::move(cache));
    }

    if (has_mem_overhead) {
        profile.memory.reference_bandwidth = mem_overhead.reference_bandwidth;
        for (std::size_t t = 0; t < mem_overhead.tiers.size(); ++t) {
            ProfileMemoryTier tier;
            tier.bandwidth = mem_overhead.tiers[t].bandwidth;
            tier.groups = mem_overhead.tiers[t].groups;
            for (const MemScalabilityCurve& scal : mem_overhead.scalability) {
                if (scal.tier == t) tier.scalability = scal.bandwidth_by_n;
            }
            profile.memory.tiers.push_back(std::move(tier));
        }
    }

    if (has_comm) {
        for (const CommLayer& layer : comm.layers) {
            ProfileCommLayer out;
            out.latency = layer.latency;
            out.pairs = layer.pairs;
            out.p2p = layer.p2p;
            out.slowdown = layer.slowdown_by_n;
            profile.comm.push_back(std::move(out));
        }
    }

    profile.phase_seconds = phase_seconds;
    if (embed_counters) profile.counters = counters;
    for (const PhaseError& error : errors) profile.errors[error.phase] = error.message;
    return profile;
}

SuiteResult run_suite(Platform& platform, msg::Network* network, SuiteOptions options) {
    SERVET_TRACE_SPAN("suite/run");
    SERVET_CHECK(options.jobs >= 1);
    SuiteResult result;
    result.embed_counters = options.profile_counters;
    PhaseTimer timer(result.phase_seconds);

    // Snapshot the Stable counters so the result reports this run's deltas
    // — robust when several suites run in one process (tests, tools).
    const std::map<std::string, std::uint64_t> counters_before =
        obs::registry().stable_counters();

    // jobs counts concurrent measurement tasks; the calling thread
    // participates in every parallel_for, so the pool holds jobs-1 workers.
    std::unique_ptr<exec::ThreadPool> pool;
    if (options.jobs > 1) pool = std::make_unique<exec::ThreadPool>(options.jobs - 1);

    exec::MemoCache memo;
    const bool want_memo = options.use_memo || !options.memo_path.empty();
    if (!options.memo_path.empty()) {
        switch (memo.load_file(options.memo_path)) {
            case exec::MemoLoad::Loaded:
                SERVET_LOG_INFO("suite: loaded %zu memo records from %s", memo.size(),
                                options.memo_path.c_str());
                break;
            case exec::MemoLoad::Absent:
                break;  // cold start: the save below will create it
            case exec::MemoLoad::Malformed:
                // Not fatal — the run just re-measures — but silence here
                // would hide a corrupt file that keeps every future run
                // cold until the save path overwrites it.
                SERVET_LOG_WARN("suite: ignoring malformed memo file %s",
                                options.memo_path.c_str());
                break;
        }
    }

    MeasureEngine engine(&platform, network, pool.get(), want_memo ? &memo : nullptr);
    engine.set_task_deadline(options.task_deadline);
    if (pool != nullptr && !engine.deterministic())
        SERVET_LOG_INFO("suite: platform is not forkable; running serially");

    // Phase isolation: a phase body that throws is recorded — name plus
    // message — instead of propagating, so one broken probe costs its
    // phase, not the suite. The sink is mutex-guarded (DAG phases run
    // concurrently) and sorted by phase name at the end, keeping the
    // error list schedule-invariant.
    std::mutex errors_mutex;
    obs::Counter& phase_errors =
        obs::counter("suite.phase.errors", obs::Stability::Stable);
    const auto isolate = [&](const std::string& phase, auto&& body) {
        try {
            body();
        } catch (const std::exception& e) {
            phase_errors.increment();
            SERVET_LOG_WARN("suite: phase %s failed: %s", phase.c_str(), e.what());
            const std::lock_guard<std::mutex> lock(errors_mutex);
            result.errors.push_back({phase, e.what()});
        }
    };

    // Phase 1: cache size estimate (Section III-A). Runs first — every
    // other phase is sized by its result — with its sweep parallel inside.
    options.detect.page_size = platform.page_size();
    isolate("cache_size", [&] {
        result.curve = timer.time("cache_size", [&] {
            return run_mcalibrator(engine, options.mcalibrator);
        });
        result.cache_levels = detect_cache_levels(result.curve, options.detect);
        SERVET_LOG_INFO("suite: detected %zu cache levels", result.cache_levels.size());
    });

    std::vector<Bytes> sizes;
    for (const CacheLevelEstimate& level : result.cache_levels) sizes.push_back(level.size);

    // Phases 2-4 are mutually independent given the sizes: run them as a
    // three-node DAG, concurrently when a pool exists.
    exec::TaskDag dag;

    // Phase 2: shared caches (Section III-B) — needs at least two cores.
    if (options.run_shared_cache && platform.core_count() > 1 && !sizes.empty()) {
        dag.add("shared_caches", [&] {
            isolate("shared_caches", [&] {
                result.shared_caches = timer.time("shared_caches", [&] {
                    return detect_shared_caches(engine, sizes, options.shared_cache);
                });
                result.has_shared_caches = true;
            });
        });
    }

    // Phase 3: memory access overhead (Section III-C); arrays must stream
    // past the LLC.
    if (options.run_mem_overhead && platform.core_count() > 1) {
        if (!sizes.empty()) options.mem_overhead.array_bytes = 4 * sizes.back();
        dag.add("mem_overhead", [&] {
            isolate("mem_overhead", [&] {
                result.mem_overhead = timer.time("mem_overhead", [&] {
                    return characterize_memory_overhead(engine, options.mem_overhead);
                });
                result.has_mem_overhead = true;
            });
        });
    }

    // Phase 4: communication costs (Section III-D); probe with the L1 size.
    if (options.run_comm && network != nullptr && network->endpoint_count() > 1) {
        if (!sizes.empty()) options.comm.probe_message = sizes.front();
        dag.add("comm_costs", [&] {
            isolate("comm_costs", [&] {
                result.comm = timer.time("comm_costs", [&] {
                    return characterize_communication(engine, options.comm);
                });
                result.has_comm = true;
            });
        });
    }

    // A non-deterministic platform is shared mutable state: its phases
    // must not overlap, so the DAG degrades to the serial path.
    dag.run(engine.deterministic() ? pool.get() : nullptr);

    std::sort(result.errors.begin(), result.errors.end(),
              [](const PhaseError& a, const PhaseError& b) { return a.phase < b.phase; });
    if (!result.errors.empty())
        SERVET_LOG_WARN("suite: %zu phase(s) failed; profile will be partial",
                        result.errors.size());

    result.memo_hits = memo.hits();
    result.memo_misses = memo.misses();

    for (const auto& [name, value] : obs::registry().stable_counters()) {
        const auto it = counters_before.find(name);
        const std::uint64_t before = it == counters_before.end() ? 0 : it->second;
        if (value > before) result.counters.emplace(name, value - before);
    }
    const auto counter_or_zero = [&](const char* name) {
        const auto it = result.counters.find(name);
        return it == result.counters.end() ? std::uint64_t{0} : it->second;
    };
    SERVET_LOG_INFO(
        "suite: measurements %llu run, %llu deduped; memo %llu hits / %llu misses",
        static_cast<unsigned long long>(counter_or_zero("exec.tasks.run")),
        static_cast<unsigned long long>(counter_or_zero("exec.tasks.deduped")),
        static_cast<unsigned long long>(counter_or_zero("exec.memo.hits")),
        static_cast<unsigned long long>(counter_or_zero("exec.memo.misses")));

    if (!options.memo_path.empty() && engine.memoizable()) {
        if (memo.save_file(options.memo_path)) {
            SERVET_LOG_INFO("suite: saved %zu memo records to %s", memo.size(),
                            options.memo_path.c_str());
        } else {
            SERVET_LOG_ERROR("suite: failed to save memo to %s", options.memo_path.c_str());
        }
    }
    return result;
}

}  // namespace servet::core
