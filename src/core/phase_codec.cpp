#include "core/phase_codec.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "base/check.hpp"

namespace servet::core {

namespace {

// %a hexfloats round-trip every finite double bit-exactly through strtod;
// that exactness is what lets a journal replay reproduce a profile byte
// for byte.
std::string hex(double v) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%a", v);
    return buf;
}

std::optional<double> parse_hex(const std::string& text) {
    if (text.empty()) return std::nullopt;
    char* end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size()) return std::nullopt;
    return v;
}

std::optional<long long> parse_ll(const std::string& text) {
    if (text.empty()) return std::nullopt;
    char* end = nullptr;
    const long long v = std::strtoll(text.c_str(), &end, 10);
    if (end != text.c_str() + text.size()) return std::nullopt;
    return v;
}

/// Cores as "0,1,2"; the empty list as "-" (a field must not vanish from
/// a space-separated record).
std::string fmt_cores(const std::vector<CoreId>& cores) {
    if (cores.empty()) return "-";
    std::string out;
    for (std::size_t i = 0; i < cores.size(); ++i) {
        if (i) out += ',';
        out += std::to_string(cores[i]);
    }
    return out;
}

std::optional<std::vector<CoreId>> parse_cores(const std::string& text) {
    std::vector<CoreId> cores;
    if (text == "-") return cores;
    std::stringstream stream(text);
    std::string token;
    while (std::getline(stream, token, ',')) {
        const auto v = parse_ll(token);
        if (!v) return std::nullopt;
        cores.push_back(static_cast<CoreId>(*v));
    }
    if (cores.empty()) return std::nullopt;
    return cores;
}

/// Doubles as "a,b,c" hexfloats; empty as "-".
std::string fmt_doubles(const std::vector<double>& values) {
    if (values.empty()) return "-";
    std::string out;
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i) out += ',';
        out += hex(values[i]);
    }
    return out;
}

std::optional<std::vector<double>> parse_doubles(const std::string& text) {
    std::vector<double> values;
    if (text == "-") return values;
    std::stringstream stream(text);
    std::string token;
    while (std::getline(stream, token, ',')) {
        const auto v = parse_hex(token);
        if (!v) return std::nullopt;
        values.push_back(*v);
    }
    if (values.empty()) return std::nullopt;
    return values;
}

/// Line-dispatch loop shared by every decoder: feeds each non-empty line's
/// first token and the rest of its fields to `handle`, which returns false
/// to reject the payload.
template <typename Handler>
bool for_each_record(const std::string& text, Handler&& handle) {
    std::stringstream stream(text);
    std::string line;
    while (std::getline(stream, line)) {
        if (line.empty()) continue;
        std::istringstream fields(line);
        std::string tag;
        if (!(fields >> tag)) return false;
        if (!handle(tag, fields)) return false;
    }
    return true;
}

/// True when the stream has no further non-space content (arity check:
/// trailing junk rejects the record).
bool exhausted(std::istringstream& fields) {
    std::string rest;
    return !(fields >> rest);
}

}  // namespace

std::string encode_cache_size(const CacheSizePayload& payload) {
    SERVET_CHECK(payload.curve.sizes.size() == payload.curve.cycles.size());
    std::string out;
    for (std::size_t i = 0; i < payload.curve.sizes.size(); ++i)
        out += "point " + std::to_string(payload.curve.sizes[i]) + ' ' +
               hex(payload.curve.cycles[i]) + '\n';
    for (const CacheLevelEstimate& level : payload.levels) {
        SERVET_CHECK_MSG(!level.method.empty() &&
                             level.method.find_first_of(" \t\n\r") == std::string::npos,
                         "cache level method must be a single token");
        out += "level " + std::to_string(level.size) + ' ' + level.method + ' ' +
               std::to_string(level.window_first) + ' ' + std::to_string(level.window_last) +
               '\n';
    }
    return out;
}

std::optional<CacheSizePayload> decode_cache_size(const std::string& text) {
    CacheSizePayload payload;
    const bool ok = for_each_record(text, [&](const std::string& tag,
                                              std::istringstream& fields) {
        if (tag == "point") {
            long long size = 0;
            std::string cycles;
            if (!(fields >> size >> cycles) || size < 0 || !exhausted(fields)) return false;
            const auto v = parse_hex(cycles);
            if (!v) return false;
            payload.curve.sizes.push_back(static_cast<Bytes>(size));
            payload.curve.cycles.push_back(*v);
            return true;
        }
        if (tag == "level") {
            long long size = 0;
            std::string method;
            long long first = 0;
            long long last = 0;
            if (!(fields >> size >> method >> first >> last) || size < 0 || first < 0 ||
                last < 0 || !exhausted(fields))
                return false;
            CacheLevelEstimate level;
            level.size = static_cast<Bytes>(size);
            level.method = method;
            level.window_first = static_cast<std::size_t>(first);
            level.window_last = static_cast<std::size_t>(last);
            payload.levels.push_back(std::move(level));
            return true;
        }
        return false;
    });
    if (!ok) return std::nullopt;
    return payload;
}

std::string encode_shared_caches(const std::vector<SharedCacheLevelResult>& levels) {
    std::string out;
    for (const SharedCacheLevelResult& level : levels) {
        out += "level " + std::to_string(level.cache_size) + ' ' +
               std::to_string(level.array_bytes) + ' ' + hex(level.reference_cycles) + '\n';
        for (const SharedCachePairResult& pair : level.pairs)
            out += "pair " + std::to_string(pair.pair.a) + ' ' + std::to_string(pair.pair.b) +
                   ' ' + hex(pair.ratio) + '\n';
        for (const CorePair& pair : level.sharing_pairs)
            out += "sharing " + std::to_string(pair.a) + ' ' + std::to_string(pair.b) + '\n';
        for (const std::vector<CoreId>& group : level.groups)
            out += "group " + fmt_cores(group) + '\n';
    }
    return out;
}

std::optional<std::vector<SharedCacheLevelResult>> decode_shared_caches(
    const std::string& text) {
    std::vector<SharedCacheLevelResult> levels;
    const bool ok = for_each_record(text, [&](const std::string& tag,
                                              std::istringstream& fields) {
        if (tag == "level") {
            long long cache_size = 0;
            long long array_bytes = 0;
            std::string reference;
            if (!(fields >> cache_size >> array_bytes >> reference) || cache_size < 0 ||
                array_bytes < 0 || !exhausted(fields))
                return false;
            const auto v = parse_hex(reference);
            if (!v) return false;
            SharedCacheLevelResult level;
            level.cache_size = static_cast<Bytes>(cache_size);
            level.array_bytes = static_cast<Bytes>(array_bytes);
            level.reference_cycles = *v;
            levels.push_back(std::move(level));
            return true;
        }
        if (levels.empty()) return false;  // every other tag attaches to a level
        SharedCacheLevelResult& level = levels.back();
        if (tag == "pair") {
            int a = 0;
            int b = 0;
            std::string ratio;
            if (!(fields >> a >> b >> ratio) || !exhausted(fields)) return false;
            const auto v = parse_hex(ratio);
            if (!v) return false;
            level.pairs.push_back({{a, b}, *v});
            return true;
        }
        if (tag == "sharing") {
            int a = 0;
            int b = 0;
            if (!(fields >> a >> b) || !exhausted(fields)) return false;
            level.sharing_pairs.push_back({a, b});
            return true;
        }
        if (tag == "group") {
            std::string cores;
            if (!(fields >> cores) || !exhausted(fields)) return false;
            const auto group = parse_cores(cores);
            if (!group) return false;
            level.groups.push_back(*group);
            return true;
        }
        return false;
    });
    if (!ok) return std::nullopt;
    return levels;
}

std::string encode_mem_overhead(const MemOverheadResult& result) {
    std::string out = "reference " + hex(result.reference_bandwidth) + '\n';
    for (const MemPairResult& pair : result.pairs)
        out += "pair " + std::to_string(pair.pair.a) + ' ' + std::to_string(pair.pair.b) +
               ' ' + hex(pair.bandwidth) + '\n';
    for (const MemOverheadTier& tier : result.tiers) {
        out += "tier " + hex(tier.bandwidth) + '\n';
        for (const CorePair& pair : tier.pairs)
            out += "tier-pair " + std::to_string(pair.a) + ' ' + std::to_string(pair.b) + '\n';
        for (const std::vector<CoreId>& group : tier.groups)
            out += "tier-group " + fmt_cores(group) + '\n';
    }
    for (const MemScalabilityCurve& scal : result.scalability)
        out += "scal " + std::to_string(scal.tier) + ' ' + fmt_cores(scal.group) + ' ' +
               fmt_doubles(scal.bandwidth_by_n) + '\n';
    return out;
}

std::optional<MemOverheadResult> decode_mem_overhead(const std::string& text) {
    MemOverheadResult result;
    const bool ok = for_each_record(text, [&](const std::string& tag,
                                              std::istringstream& fields) {
        if (tag == "reference") {
            std::string value;
            if (!(fields >> value) || !exhausted(fields)) return false;
            const auto v = parse_hex(value);
            if (!v) return false;
            result.reference_bandwidth = *v;
            return true;
        }
        if (tag == "pair") {
            int a = 0;
            int b = 0;
            std::string bandwidth;
            if (!(fields >> a >> b >> bandwidth) || !exhausted(fields)) return false;
            const auto v = parse_hex(bandwidth);
            if (!v) return false;
            result.pairs.push_back({{a, b}, *v});
            return true;
        }
        if (tag == "tier") {
            std::string bandwidth;
            if (!(fields >> bandwidth) || !exhausted(fields)) return false;
            const auto v = parse_hex(bandwidth);
            if (!v) return false;
            MemOverheadTier tier;
            tier.bandwidth = *v;
            result.tiers.push_back(std::move(tier));
            return true;
        }
        if (tag == "tier-pair" || tag == "tier-group") {
            if (result.tiers.empty()) return false;
            MemOverheadTier& tier = result.tiers.back();
            if (tag == "tier-pair") {
                int a = 0;
                int b = 0;
                if (!(fields >> a >> b) || !exhausted(fields)) return false;
                tier.pairs.push_back({a, b});
                return true;
            }
            std::string cores;
            if (!(fields >> cores) || !exhausted(fields)) return false;
            const auto group = parse_cores(cores);
            if (!group) return false;
            tier.groups.push_back(*group);
            return true;
        }
        if (tag == "scal") {
            long long tier = 0;
            std::string cores;
            std::string bandwidths;
            if (!(fields >> tier >> cores >> bandwidths) || tier < 0 || !exhausted(fields))
                return false;
            const auto group = parse_cores(cores);
            const auto curve = parse_doubles(bandwidths);
            if (!group || !curve) return false;
            MemScalabilityCurve scal;
            scal.tier = static_cast<std::size_t>(tier);
            scal.group = *group;
            scal.bandwidth_by_n = *curve;
            result.scalability.push_back(std::move(scal));
            return true;
        }
        return false;
    });
    if (!ok) return std::nullopt;
    return result;
}

std::string encode_comm_costs(const CommCostsResult& result) {
    std::string out = "probe " + std::to_string(result.probe_message) + '\n';
    for (const CommPairLatency& pair : result.pairs)
        out += "pair " + std::to_string(pair.pair.a) + ' ' + std::to_string(pair.pair.b) +
               ' ' + hex(pair.latency) + '\n';
    for (const CommLayer& layer : result.layers) {
        out += "layer " + hex(layer.latency) + ' ' + std::to_string(layer.representative.a) +
               ' ' + std::to_string(layer.representative.b) + '\n';
        for (const CorePair& pair : layer.pairs)
            out += "layer-pair " + std::to_string(pair.a) + ' ' + std::to_string(pair.b) +
                   '\n';
        for (const auto& [size, latency] : layer.p2p)
            out += "p2p " + std::to_string(size) + ' ' + hex(latency) + '\n';
        out += "slowdown " + fmt_doubles(layer.slowdown_by_n) + '\n';
    }
    return out;
}

std::optional<CommCostsResult> decode_comm_costs(const std::string& text) {
    CommCostsResult result;
    const bool ok = for_each_record(text, [&](const std::string& tag,
                                              std::istringstream& fields) {
        if (tag == "probe") {
            long long bytes = 0;
            if (!(fields >> bytes) || bytes < 0 || !exhausted(fields)) return false;
            result.probe_message = static_cast<Bytes>(bytes);
            return true;
        }
        if (tag == "pair") {
            int a = 0;
            int b = 0;
            std::string latency;
            if (!(fields >> a >> b >> latency) || !exhausted(fields)) return false;
            const auto v = parse_hex(latency);
            if (!v) return false;
            result.pairs.push_back({{a, b}, *v});
            return true;
        }
        if (tag == "layer") {
            std::string latency;
            int a = 0;
            int b = 0;
            if (!(fields >> latency >> a >> b) || !exhausted(fields)) return false;
            const auto v = parse_hex(latency);
            if (!v) return false;
            CommLayer layer;
            layer.latency = *v;
            layer.representative = {a, b};
            result.layers.push_back(std::move(layer));
            return true;
        }
        if (result.layers.empty()) return false;
        CommLayer& layer = result.layers.back();
        if (tag == "layer-pair") {
            int a = 0;
            int b = 0;
            if (!(fields >> a >> b) || !exhausted(fields)) return false;
            layer.pairs.push_back({a, b});
            return true;
        }
        if (tag == "p2p") {
            long long size = 0;
            std::string latency;
            if (!(fields >> size >> latency) || size < 0 || !exhausted(fields)) return false;
            const auto v = parse_hex(latency);
            if (!v) return false;
            layer.p2p.emplace_back(static_cast<Bytes>(size), *v);
            return true;
        }
        if (tag == "slowdown") {
            std::string values;
            if (!(fields >> values) || !exhausted(fields)) return false;
            const auto v = parse_doubles(values);
            if (!v) return false;
            layer.slowdown_by_n = *v;
            return true;
        }
        return false;
    });
    if (!ok) return std::nullopt;
    return result;
}

}  // namespace servet::core
