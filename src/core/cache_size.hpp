// Cache level/size detection: the first-peak rule for the virtually
// indexed L1, the probabilistic estimator for physically indexed lower
// levels (Fig. 3), and the overall level-detection driver (Fig. 4).
//
// The probabilistic estimator is the paper's key contribution over
// X-Ray/P-Ray: on an OS without page coloring, random physical backing
// smears the miss-rate transition of an L2/L3 sweep over a wide size
// range. But the *shape* of the smear is fully determined by the binomial
// page-set occupancy model — with NP pages touched and a K-way cache of
// size CS, a page set holds X ~ B(NP, K*PS/CS) pages and overflows when
// X > K — so scanning candidate (CS, K) pairs for the best-fitting
// predicted miss-rate curve recovers the true size even though no single
// array size marks it.
//
// Two refinements over the paper's pseudocode (both documented in
// DESIGN.md):
//  * miss-rate model — the paper uses P(X > K) as the expected miss rate;
//    accesses land on page sets in proportion to their occupancy, so the
//    per-access rate is really the size-biased tail E[X; X > K]/E[X].
//    Both models are available (MissRateModel); the size-biased one is the
//    default and the ablation bench quantifies the difference.
//  * window selection — adjacent levels of big LLC machines (e.g. the
//    Dunnington 3MB L2 / 12MB L3) produce overlapping smears that merge
//    into one above-threshold gradient run. Runs are split at interior
//    gradient minima when both sides carry a prominent rise of their own,
//    recovering the paper's per-level windows ("[256KB,4MB]" for Dempsey,
//    "[3MB,14MB]" for Dunnington) automatically.
#pragma once

#include <string>
#include <vector>

#include "core/mcalibrator.hpp"

namespace servet::core {

/// Expected miss rate of a page set under X ~ B(NP, K*PS/CS).
enum class MissRateModel {
    SizeBiased,  ///< E[X; X > K] / E[X]: per-access expectation (default)
    PaperTail,   ///< P(X > K): the paper's Fig. 3 formula
};

struct CacheDetectOptions {
    Bytes page_size = 4 * KiB;
    /// Gradient above this marks a rising sample. The paper uses
    /// "gradient > 1"; the margin keeps averaged measurement noise from
    /// fabricating levels.
    double gradient_threshold = 1.05;
    /// Regions whose total cycle rise is below this are noise, not levels.
    double min_total_rise = 1.25;
    /// Split a gradient run at an interior local minimum when the peak
    /// rise on each side is at least this multiple of the minimum's rise.
    double split_prominence = 3.0;
    /// Candidate associativities scanned by the probabilistic estimator.
    std::vector<int> associativities = {2, 4, 6, 8, 12, 16, 24, 32};
    /// How many lowest-divergence (CS, K) entries vote for the final size
    /// (Fig. 3 takes the mode of the best five).
    int mode_votes = 5;
    MissRateModel model = MissRateModel::SizeBiased;
};

/// One detected cache level.
struct CacheLevelEstimate {
    Bytes size = 0;
    /// "peak": single-sample gradient peak (virtually indexed cache or OS
    /// with page coloring); "probabilistic": Fig. 3 estimator.
    std::string method;
    /// Sample window [first, last] of the mcalibrator curve the estimate
    /// was derived from (indices into sizes/cycles).
    std::size_t window_first = 0;
    std::size_t window_last = 0;

    [[nodiscard]] bool operator==(const CacheLevelEstimate&) const = default;
};

/// Candidate cache sizes scanned by the probabilistic estimator: the
/// realistic cache-size universe {1, 3, 5, 9} * 2^k within [16KB,
/// max_size] (covers 256KB, 512KB, 2MB, 3MB, 9MB, 12MB, ... — every size
/// in the paper's evaluation), sorted ascending.
[[nodiscard]] std::vector<Bytes> default_size_candidates(Bytes max_size);

/// Expected miss rate for NP pages under candidate (CS given as
/// probability p = K*PS/CS) — exposed for tests and the ablation bench.
[[nodiscard]] double expected_miss_rate(MissRateModel model, std::int64_t pages, double p,
                                        int k);

/// The Fig. 3 estimator over one transition window of the curve.
/// Samples [window_first, window_last] span the rise; `hit_time` and
/// `miss_time` anchor the 0%- and 100%-miss cycle levels (pass the
/// plateau values flanking the window).
[[nodiscard]] Bytes probabilistic_cache_size(const McalibratorCurve& curve,
                                             std::size_t window_first,
                                             std::size_t window_last, double hit_time,
                                             double miss_time,
                                             const CacheDetectOptions& options);

/// Convenience overload anchoring hit/miss at the window endpoints.
[[nodiscard]] Bytes probabilistic_cache_size(const McalibratorCurve& curve,
                                             std::size_t window_first,
                                             std::size_t window_last,
                                             const CacheDetectOptions& options);

/// The Fig. 4 driver: find gradient rise regions, apply the first-peak
/// rule for L1 and the position rule for single-sample peaks, split merged
/// multi-level regions, and run the probabilistic estimator on smeared
/// ones. Levels are returned in ascending size.
[[nodiscard]] std::vector<CacheLevelEstimate> detect_cache_levels(
    const McalibratorCurve& curve, const CacheDetectOptions& options);

/// Convenience: run mcalibrator and detect levels in one call.
[[nodiscard]] std::vector<CacheLevelEstimate> detect_cache_levels(
    Platform& platform, const McalibratorOptions& mc_options,
    CacheDetectOptions detect_options = {});

}  // namespace servet::core
