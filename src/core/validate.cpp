#include "core/validate.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>

namespace servet::core {

namespace {

constexpr const char* kPhaseCacheSize = "cache_size";
constexpr const char* kPhaseSharedCaches = "shared_caches";
constexpr const char* kPhaseMemOverhead = "mem_overhead";
constexpr const char* kPhaseCommCosts = "comm_costs";

/// Measured ratios are never exact; a violation must survive jitter
/// before it is worth flagging.
constexpr double kRatioSlack = 0.02;

std::string fmt(double v) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%g", v);
    return buf;
}

class Checker {
  public:
    explicit Checker(const Profile& profile) : profile_(profile) {}

    ValidationReport run() {
        check_header();
        check_caches();
        check_memory();
        check_comm();
        check_partial();
        return std::move(report_);
    }

  private:
    void add(std::string code, Severity severity, std::string phase, std::string message) {
        report_.violations.push_back(
            {std::move(code), severity, std::move(phase), std::move(message)});
    }

    /// Checks one level's core groups: every core in range, no core in
    /// two groups of the same level (shared sets must partition).
    void check_groups(const std::vector<std::vector<CoreId>>& groups,
                      const std::string& what, const std::string& code_prefix,
                      const std::string& phase) {
        std::set<CoreId> seen;
        for (const std::vector<CoreId>& group : groups) {
            for (const CoreId core : group) {
                if (core < 0 || core >= profile_.cores)
                    add(code_prefix + ".groups-range", Severity::Error, phase,
                        what + " names core " + std::to_string(core) + " but the machine has " +
                            std::to_string(profile_.cores) + " cores");
                if (!seen.insert(core).second)
                    add(code_prefix + ".groups-overlap", Severity::Error, phase,
                        what + " lists core " + std::to_string(core) +
                            " in two sharing groups; shared-core sets must partition the "
                            "cores");
            }
        }
    }

    void check_header() {
        if (profile_.cores <= 0)
            add("profile.cores", Severity::Error, "",
                "core count is " + std::to_string(profile_.cores) + "; must be positive");
        if (profile_.page_size == 0)
            add("profile.page-size", Severity::Warning, "", "page size is 0");
    }

    void check_caches() {
        for (std::size_t i = 0; i < profile_.caches.size(); ++i) {
            const ProfileCacheLevel& level = profile_.caches[i];
            const std::string name = "cache level " + std::to_string(i + 1);
            if (level.size == 0)
                add("cache.size-positive", Severity::Error, kPhaseCacheSize,
                    name + " has size 0");
            if (i > 0 && level.size <= profile_.caches[i - 1].size)
                add("cache.size-order", Severity::Error, kPhaseCacheSize,
                    name + " (" + std::to_string(level.size) +
                        " bytes) is not larger than level " + std::to_string(i) + " (" +
                        std::to_string(profile_.caches[i - 1].size) +
                        " bytes); cache sizes must strictly increase up the hierarchy");
            check_groups(level.groups, name, "cache", kPhaseSharedCaches);
        }
    }

    void check_memory() {
        const ProfileMemory& memory = profile_.memory;
        const bool has_reference = memory.reference_bandwidth > 0;
        if (memory.reference_bandwidth < 0)
            add("memory.reference-negative", Severity::Error, kPhaseMemOverhead,
                "reference bandwidth is negative (" + fmt(memory.reference_bandwidth) + ")");
        else if (!has_reference && !memory.tiers.empty())
            add("memory.reference-missing", Severity::Error, kPhaseMemOverhead,
                "memory tiers are present but the reference bandwidth is 0");
        for (std::size_t i = 0; i < memory.tiers.size(); ++i) {
            const ProfileMemoryTier& tier = memory.tiers[i];
            const std::string name = "memory tier " + std::to_string(i);
            if (tier.bandwidth <= 0)
                add("memory.tier-bandwidth", Severity::Error, kPhaseMemOverhead,
                    name + " bandwidth is " + fmt(tier.bandwidth) + "; must be positive");
            else if (has_reference &&
                     tier.bandwidth > memory.reference_bandwidth * (1.0 + kRatioSlack))
                add("memory.tier-exceeds-reference", Severity::Error, kPhaseMemOverhead,
                    name + " bandwidth (" + fmt(tier.bandwidth) +
                        ") exceeds the uncontended reference (" +
                        fmt(memory.reference_bandwidth) +
                        "); contention can only reduce bandwidth");
            check_groups(tier.groups, name, "memory", kPhaseMemOverhead);
            for (std::size_t k = 0; k < tier.scalability.size(); ++k) {
                const BytesPerSecond bw = tier.scalability[k];
                if (bw <= 0) {
                    add("memory.scalability-positive", Severity::Error, kPhaseMemOverhead,
                        name + " scalability entry " + std::to_string(k + 1) + " is " +
                            fmt(bw) + "; must be positive");
                } else if (k > 0 && bw > tier.scalability[k - 1] * (1.0 + kRatioSlack)) {
                    add("memory.scalability-order", Severity::Warning, kPhaseMemOverhead,
                        name + ": per-core bandwidth rises from " +
                            fmt(tier.scalability[k - 1]) + " to " + fmt(bw) + " at " +
                            std::to_string(k + 1) +
                            " concurrent cores; adding contenders should not speed cores "
                            "up");
                }
            }
        }
    }

    void check_comm() {
        for (std::size_t i = 0; i < profile_.comm.size(); ++i) {
            const ProfileCommLayer& layer = profile_.comm[i];
            const std::string name = "comm layer " + std::to_string(i);
            if (layer.latency <= 0)
                add("comm.latency-positive", Severity::Error, kPhaseCommCosts,
                    name + " latency is " + fmt(layer.latency) + "; must be positive");
            if (i > 0 && layer.latency < profile_.comm[i - 1].latency * (1.0 - kRatioSlack))
                add("comm.latency-order", Severity::Error, kPhaseCommCosts,
                    name + " latency (" + fmt(layer.latency) + "s) is below layer " +
                        std::to_string(i - 1) + " (" + fmt(profile_.comm[i - 1].latency) +
                        "s); layers are ordered nearest-first, so latency must not "
                        "decrease");
            for (const CorePair pair : layer.pairs) {
                if (pair.a < 0 || pair.a >= profile_.cores || pair.b < 0 ||
                    pair.b >= profile_.cores)
                    add("comm.pair-range", Severity::Error, kPhaseCommCosts,
                        name + " pair {" + std::to_string(pair.a) + "," +
                            std::to_string(pair.b) + "} names a core outside 0.." +
                            std::to_string(profile_.cores - 1));
            }
            check_p2p(layer, i, name);
            for (std::size_t k = 0; k < layer.slowdown.size(); ++k) {
                if (layer.slowdown[k] < 1.0 - kRatioSlack)
                    add("comm.slowdown-band", Severity::Warning, kPhaseCommCosts,
                        name + " slowdown at " + std::to_string(k + 1) +
                            " concurrent messages is " + fmt(layer.slowdown[k]) +
                            "; concurrency cannot make a link faster than idle");
            }
        }
    }

    void check_p2p(const ProfileCommLayer& layer, std::size_t index, const std::string& name) {
        for (std::size_t k = 0; k < layer.p2p.size(); ++k) {
            const auto& [size, latency] = layer.p2p[k];
            if (latency <= 0)
                add("comm.p2p-latency-positive", Severity::Error, kPhaseCommCosts,
                    name + " p2p latency at " + std::to_string(size) + " bytes is " +
                        fmt(latency) + "; must be positive");
            if (k > 0 && size <= layer.p2p[k - 1].first)
                add("comm.p2p-size-order", Severity::Error, kPhaseCommCosts,
                    name + " p2p sweep sizes are not strictly increasing at entry " +
                        std::to_string(k));
            // Effective bandwidth size/latency must not grow without bound
            // as messages shrink... the real invariant across entries is
            // that latency never falls as the message grows.
            if (k > 0 && latency < layer.p2p[k - 1].second * (1.0 - kRatioSlack))
                add("comm.p2p-latency-order", Severity::Warning, kPhaseCommCosts,
                    name + " p2p latency falls from " + fmt(layer.p2p[k - 1].second) +
                        "s to " + fmt(latency) + "s as the message grows to " +
                        std::to_string(size) + " bytes");
        }
        // Bandwidth must not increase toward more remote layers: compare
        // at every message size the two adjacent layers both measured.
        if (index == 0) return;
        const ProfileCommLayer& nearer = profile_.comm[index - 1];
        for (const auto& [size, latency] : layer.p2p) {
            const auto it =
                std::find_if(nearer.p2p.begin(), nearer.p2p.end(),
                             [size = size](const auto& entry) { return entry.first == size; });
            if (it == nearer.p2p.end() || latency <= 0 || it->second <= 0) continue;
            const double bandwidth = static_cast<double>(size) / latency;
            const double nearer_bandwidth = static_cast<double>(size) / it->second;
            if (bandwidth > nearer_bandwidth * (1.0 + kRatioSlack))
                add("comm.bandwidth-order", Severity::Error, kPhaseCommCosts,
                    name + " moves " + std::to_string(size) + "-byte messages at " +
                        fmt(bandwidth) + " B/s, faster than the nearer layer " +
                        std::to_string(index - 1) + " (" + fmt(nearer_bandwidth) +
                        " B/s); bandwidth must not increase with distance");
        }
    }

    void check_partial() {
        for (const auto& [phase, message] : profile_.errors)
            add("profile.partial", Severity::Warning, phase,
                "phase " + phase + " failed in the producing run: " + message);
    }

    const Profile& profile_;
    ValidationReport report_;
};

}  // namespace

const char* to_string(Severity severity) {
    return severity == Severity::Error ? "error" : "warning";
}

bool ValidationReport::has_errors() const {
    return std::any_of(violations.begin(), violations.end(),
                       [](const Violation& v) { return v.severity == Severity::Error; });
}

std::vector<std::string> ValidationReport::implicated_phases() const {
    std::set<std::string> implicated;
    for (const Violation& v : violations)
        if (v.severity == Severity::Error && !v.phase.empty()) implicated.insert(v.phase);
    if (implicated.count(kPhaseCacheSize) != 0)
        implicated.insert({kPhaseSharedCaches, kPhaseMemOverhead, kPhaseCommCosts});
    std::vector<std::string> ordered;
    for (const char* phase :
         {kPhaseCacheSize, kPhaseSharedCaches, kPhaseMemOverhead, kPhaseCommCosts})
        if (implicated.erase(phase) != 0) ordered.push_back(phase);
    ordered.insert(ordered.end(), implicated.begin(), implicated.end());
    return ordered;
}

ValidationReport validate_profile(const Profile& profile) {
    return Checker(profile).run();
}

}  // namespace servet::core
