#include "core/profile.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "base/check.hpp"
#include "base/fs.hpp"
#include "sim/topology.hpp"

namespace servet::core {

namespace {

constexpr const char* kHeader = "servet-profile 1";

std::string fmt_double(double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);  // exact round-trip
    return buf;
}

std::string fmt_groups(const std::vector<std::vector<CoreId>>& groups) {
    std::string out;
    for (std::size_t g = 0; g < groups.size(); ++g) {
        if (g) out += ';';
        for (std::size_t i = 0; i < groups[g].size(); ++i) {
            if (i) out += ',';
            out += std::to_string(groups[g][i]);
        }
    }
    return out;
}

std::string fmt_pairs(const std::vector<CorePair>& pairs) {
    std::string out;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        if (i) out += ';';
        out += std::to_string(pairs[i].a) + '-' + std::to_string(pairs[i].b);
    }
    return out;
}

std::string fmt_curve(const std::vector<std::pair<Bytes, Seconds>>& curve) {
    std::string out;
    for (std::size_t i = 0; i < curve.size(); ++i) {
        if (i) out += ';';
        out += std::to_string(curve[i].first) + ':' + fmt_double(curve[i].second);
    }
    return out;
}

std::string fmt_ints(const std::vector<int>& values) {
    std::string out;
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i) out += ',';
        out += std::to_string(values[i]);
    }
    return out;
}

std::string fmt_doubles(const std::vector<double>& values) {
    std::string out;
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i) out += ',';
        out += fmt_double(values[i]);
    }
    return out;
}

std::vector<std::string> split(const std::string& text, char sep) {
    std::vector<std::string> parts;
    std::string token;
    std::stringstream stream(text);
    while (std::getline(stream, token, sep)) parts.push_back(token);
    return parts;
}

std::string trim(const std::string& text) {
    const auto begin = text.find_first_not_of(" \t\r");
    if (begin == std::string::npos) return "";
    const auto end = text.find_last_not_of(" \t\r");
    return text.substr(begin, end - begin + 1);
}

std::optional<double> parse_double(const std::string& text) {
    if (text.empty()) return std::nullopt;
    char* end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size()) return std::nullopt;
    return v;
}

std::optional<long long> parse_int(const std::string& text) {
    if (text.empty()) return std::nullopt;
    char* end = nullptr;
    const long long v = std::strtoll(text.c_str(), &end, 10);
    if (end != text.c_str() + text.size()) return std::nullopt;
    return v;
}

std::optional<std::vector<std::vector<CoreId>>> parse_groups(const std::string& text) {
    std::vector<std::vector<CoreId>> groups;
    if (text.empty()) return groups;
    for (const std::string& group_text : split(text, ';')) {
        std::vector<CoreId> group;
        for (const std::string& core_text : split(group_text, ',')) {
            const auto core = parse_int(core_text);
            if (!core) return std::nullopt;
            group.push_back(static_cast<CoreId>(*core));
        }
        if (group.empty()) return std::nullopt;
        groups.push_back(std::move(group));
    }
    return groups;
}

std::optional<std::vector<CorePair>> parse_pairs(const std::string& text) {
    std::vector<CorePair> pairs;
    if (text.empty()) return pairs;
    for (const std::string& pair_text : split(text, ';')) {
        const auto dash = pair_text.find('-');
        if (dash == std::string::npos) return std::nullopt;
        const auto a = parse_int(pair_text.substr(0, dash));
        const auto b = parse_int(pair_text.substr(dash + 1));
        if (!a || !b) return std::nullopt;
        pairs.push_back({static_cast<CoreId>(*a), static_cast<CoreId>(*b)});
    }
    return pairs;
}

std::optional<std::vector<std::pair<Bytes, Seconds>>> parse_curve(const std::string& text) {
    std::vector<std::pair<Bytes, Seconds>> curve;
    if (text.empty()) return curve;
    for (const std::string& point_text : split(text, ';')) {
        const auto colon = point_text.find(':');
        if (colon == std::string::npos) return std::nullopt;
        const auto size = parse_int(point_text.substr(0, colon));
        const auto latency = parse_double(point_text.substr(colon + 1));
        if (!size || *size < 0 || !latency) return std::nullopt;
        curve.emplace_back(static_cast<Bytes>(*size), *latency);
    }
    return curve;
}

std::optional<std::vector<int>> parse_ints(const std::string& text) {
    std::vector<int> values;
    if (text.empty()) return values;
    for (const std::string& value_text : split(text, ',')) {
        const auto v = parse_int(value_text);
        if (!v) return std::nullopt;
        values.push_back(static_cast<int>(*v));
    }
    return values;
}

std::optional<std::vector<double>> parse_doubles(const std::string& text) {
    std::vector<double> values;
    if (text.empty()) return values;
    for (const std::string& value_text : split(text, ',')) {
        const auto v = parse_double(value_text);
        if (!v) return std::nullopt;
        values.push_back(*v);
    }
    return values;
}

}  // namespace

std::optional<Bytes> Profile::cache_size(std::size_t level) const {
    if (level >= caches.size()) return std::nullopt;
    return caches[level].size;
}

std::optional<Bytes> Profile::last_level_cache() const {
    if (caches.empty()) return std::nullopt;
    return caches.back().size;
}

bool Profile::shares_cache(std::size_t level, CorePair pair) const {
    if (level >= caches.size()) return false;
    for (const auto& group : caches[level].groups) {
        const bool has_a = std::find(group.begin(), group.end(), pair.a) != group.end();
        const bool has_b = std::find(group.begin(), group.end(), pair.b) != group.end();
        if (has_a && has_b) return true;
    }
    return false;
}

namespace {

int measured_layer_of(const std::vector<ProfileCommLayer>& comm, CorePair canonical) {
    for (std::size_t i = 0; i < comm.size(); ++i) {
        if (std::find(comm[i].pairs.begin(), comm[i].pairs.end(), canonical) !=
            comm[i].pairs.end())
            return static_cast<int>(i);
    }
    return -1;
}

/// Routing-only (tierless) topology spec rebuilt from the profile block;
/// nullopt when the block does not describe a routable shape (custom
/// topologies carry their link list only in the MachineSpec, not the
/// profile, so they get no analytic fallback).
std::optional<sim::TopologySpec> rebuild_topology(const ProfileTopology& topology) {
    sim::TopologySpec spec;
    if (!sim::topology_kind_parse(topology.kind, &spec.kind)) return std::nullopt;
    switch (spec.kind) {
        case sim::TopologyKind::FatTree:
            if (topology.dims.size() != 2) return std::nullopt;
            spec.arity = topology.dims[0];
            spec.levels = topology.dims[1];
            break;
        case sim::TopologyKind::Torus:
            spec.dims = topology.dims;
            break;
        case sim::TopologyKind::Dragonfly:
            if (topology.dims.size() != 3) return std::nullopt;
            spec.groups = topology.dims[0];
            spec.routers = topology.dims[1];
            spec.nodes_per_router = topology.dims[2];
            break;
        case sim::TopologyKind::None:
        case sim::TopologyKind::Custom:
            return std::nullopt;
    }
    if (!spec.validate().empty()) return std::nullopt;
    return spec;
}

}  // namespace

int Profile::comm_layer_of(CorePair pair) const {
    const CorePair canonical = pair.canonical();
    if (const int layer = measured_layer_of(comm, canonical); layer >= 0) return layer;
    if (!topology.enabled() || topology.cores_per_node < 1) return -1;

    const int cpn = topology.cores_per_node;
    const int node_a = canonical.a / cpn;
    const int node_b = canonical.b / cpn;
    if (node_a == node_b) {
        // Homogeneous nodes: an unsampled intra-node pair measures like
        // its node-0 translation (the sampled set covers node 0).
        const CorePair local =
            CorePair{canonical.a % cpn, canonical.b % cpn}.canonical();
        return local == canonical ? -1 : measured_layer_of(comm, local);
    }

    const std::optional<sim::TopologySpec> spec = rebuild_topology(topology);
    if (!spec || node_b >= spec->node_count()) return -1;
    const sim::RouteClass cls = sim::Topology(*spec).route_class(node_a, node_b);
    int tier_match = -1;
    for (const ProfileCommTier& record : comm_tiers) {
        if (record.tier != cls.tier) continue;
        if (record.hops == cls.hops) return record.layer;
        if (tier_match < 0) tier_match = record.layer;
    }
    // A class never sampled at this exact hop count still belongs to its
    // bottleneck tier's layer — the closest measured stand-in.
    return tier_match;
}

std::optional<Seconds> Profile::comm_latency(CorePair pair, Bytes size) const {
    return layer_latency(comm_layer_of(pair), size);
}

std::optional<Seconds> Profile::layer_latency(int layer, Bytes size) const {
    if (layer < 0 || layer >= static_cast<int>(comm.size())) return std::nullopt;
    const auto& curve = comm[static_cast<std::size_t>(layer)].p2p;
    if (curve.empty()) return std::nullopt;

    if (size <= curve.front().first) {
        const double scale =
            static_cast<double>(size) / static_cast<double>(curve.front().first);
        return curve.front().second * std::max(scale, 0.25);
    }
    if (size >= curve.back().first) {
        if (curve.size() < 2) return curve.back().second;
        const auto& [s1, t1] = curve[curve.size() - 2];
        const auto& [s2, t2] = curve.back();
        const double per_byte = (t2 - t1) / static_cast<double>(s2 - s1);
        return t2 + per_byte * static_cast<double>(size - s2);
    }
    for (std::size_t i = 1; i < curve.size(); ++i) {
        if (size > curve[i].first) continue;
        const auto& [s1, t1] = curve[i - 1];
        const auto& [s2, t2] = curve[i];
        const double f = static_cast<double>(size - s1) / static_cast<double>(s2 - s1);
        return t1 + f * (t2 - t1);
    }
    return curve.back().second;
}

int Profile::memory_tier_of(CorePair pair) const {
    for (std::size_t t = 0; t < memory.tiers.size(); ++t) {
        for (const auto& group : memory.tiers[t].groups) {
            const bool has_a = std::find(group.begin(), group.end(), pair.a) != group.end();
            const bool has_b = std::find(group.begin(), group.end(), pair.b) != group.end();
            if (has_a && has_b) return static_cast<int>(t);
        }
    }
    return -1;
}

std::optional<BytesPerSecond> Profile::memory_bandwidth_at(std::size_t tier, int n) const {
    if (tier >= memory.tiers.size() || n < 1) return std::nullopt;
    const auto& curve = memory.tiers[tier].scalability;
    if (curve.empty()) return std::nullopt;
    const std::size_t index =
        std::min(static_cast<std::size_t>(n - 1), curve.size() - 1);
    return curve[index];
}

namespace {

std::string json_escape(const std::string& text) {
    std::string out;
    out.reserve(text.size() + 2);
    for (char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

std::string json_groups(const std::vector<std::vector<CoreId>>& groups) {
    std::string out = "[";
    for (std::size_t g = 0; g < groups.size(); ++g) {
        if (g) out += ",";
        out += "[";
        for (std::size_t i = 0; i < groups[g].size(); ++i) {
            if (i) out += ",";
            out += std::to_string(groups[g][i]);
        }
        out += "]";
    }
    return out + "]";
}

std::string json_doubles(const std::vector<double>& values) {
    std::string out = "[";
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i) out += ",";
        out += fmt_double(values[i]);
    }
    return out + "]";
}

}  // namespace

std::string Profile::to_json() const {
    std::string out;
    out += "{\n";
    out += "  \"machine\": \"";
    out += json_escape(machine);
    out += "\",\n";
    out += "  \"cores\": ";
    out += std::to_string(cores);
    out += ",\n";
    out += "  \"page_size\": ";
    out += std::to_string(page_size);
    out += ",\n";

    out += "  \"caches\": [";
    for (std::size_t i = 0; i < caches.size(); ++i) {
        if (i) out += ",";
        out += "\n    {\"size\": ";
        out += std::to_string(caches[i].size);
        out += ", \"method\": \"";
        out += json_escape(caches[i].method);
        out += "\", \"groups\": ";
        out += json_groups(caches[i].groups);
        out += "}";
    }
    out += caches.empty() ? "],\n" : "\n  ],\n";

    out += "  \"memory\": {\"reference_bandwidth\": ";
    out += fmt_double(memory.reference_bandwidth);
    out += ", \"tiers\": [";
    for (std::size_t t = 0; t < memory.tiers.size(); ++t) {
        const auto& tier = memory.tiers[t];
        if (t) out += ",";
        out += "\n    {\"bandwidth\": ";
        out += fmt_double(tier.bandwidth);
        out += ", \"groups\": ";
        out += json_groups(tier.groups);
        out += ", \"scalability\": ";
        out += json_doubles(tier.scalability);
        out += "}";
    }
    out += memory.tiers.empty() ? "]},\n" : "\n  ]},\n";

    out += "  \"comm_layers\": [";
    for (std::size_t l = 0; l < comm.size(); ++l) {
        const auto& layer = comm[l];
        if (l) out += ",";
        out += "\n    {\"latency\": ";
        out += fmt_double(layer.latency);
        out += ", \"pairs\": [";
        for (std::size_t p = 0; p < layer.pairs.size(); ++p) {
            if (p) out += ",";
            out += "[";
            out += std::to_string(layer.pairs[p].a);
            out += ",";
            out += std::to_string(layer.pairs[p].b);
            out += "]";
        }
        out += "], \"p2p\": [";
        for (std::size_t p = 0; p < layer.p2p.size(); ++p) {
            if (p) out += ",";
            out += "[";
            out += std::to_string(layer.p2p[p].first);
            out += ",";
            out += fmt_double(layer.p2p[p].second);
            out += "]";
        }
        out += "], \"slowdown\": ";
        out += json_doubles(layer.slowdown);
        out += "}";
    }
    out += comm.empty() ? "],\n" : "\n  ],\n";

    // Cluster keys appear only on cluster profiles, mirroring the text
    // format's omitted sections.
    if (topology.enabled()) {
        out += "  \"topology\": {\"kind\": \"";
        out += json_escape(topology.kind);
        out += "\", \"cores_per_node\": ";
        out += std::to_string(topology.cores_per_node);
        out += ", \"dims\": [";
        for (std::size_t i = 0; i < topology.dims.size(); ++i) {
            if (i) out += ",";
            out += std::to_string(topology.dims[i]);
        }
        out += "]},\n";
        out += "  \"comm_tiers\": [";
        for (std::size_t i = 0; i < comm_tiers.size(); ++i) {
            if (i) out += ",";
            out += "\n    {\"name\": \"";
            out += json_escape(comm_tiers[i].name);
            out += "\", \"tier\": ";
            out += std::to_string(comm_tiers[i].tier);
            out += ", \"hops\": ";
            out += std::to_string(comm_tiers[i].hops);
            out += ", \"layer\": ";
            out += std::to_string(comm_tiers[i].layer);
            out += "}";
        }
        out += comm_tiers.empty() ? "],\n" : "\n  ],\n";
    }

    out += "  \"phase_seconds\": {";
    std::size_t index = 0;
    for (const auto& [phase, seconds] : phase_seconds) {
        if (index++) out += ", ";
        out += "\"";
        out += json_escape(phase);
        out += "\": ";
        out += fmt_double(seconds);
    }
    out += "},\n";

    out += "  \"counters\": {";
    index = 0;
    for (const auto& [name, value] : counters) {
        if (index++) out += ", ";
        out += "\"";
        out += json_escape(name);
        out += "\": ";
        out += std::to_string(value);
    }
    out += "},\n";

    out += "  \"errors\": {";
    index = 0;
    for (const auto& [phase, message] : errors) {
        if (index++) out += ", ";
        out += "\"";
        out += json_escape(phase);
        out += "\": \"";
        out += json_escape(message);
        out += "\"";
    }
    out += "}\n}\n";
    return out;
}

std::string Profile::serialize() const {
    std::string out;
    out += kHeader;
    out += '\n';
    out += "machine = " + machine + '\n';
    out += "cores = " + std::to_string(cores) + '\n';
    out += "page_size = " + std::to_string(page_size) + '\n';

    for (std::size_t i = 0; i < caches.size(); ++i) {
        out += "\n[cache " + std::to_string(i) + "]\n";
        out += "size = " + std::to_string(caches[i].size) + '\n';
        out += "method = " + caches[i].method + '\n';
        out += "groups = " + fmt_groups(caches[i].groups) + '\n';
    }

    out += "\n[memory]\n";
    out += "reference = " + fmt_double(memory.reference_bandwidth) + '\n';
    for (std::size_t i = 0; i < memory.tiers.size(); ++i) {
        out += "\n[memory-tier " + std::to_string(i) + "]\n";
        out += "bandwidth = " + fmt_double(memory.tiers[i].bandwidth) + '\n';
        out += "groups = " + fmt_groups(memory.tiers[i].groups) + '\n';
        out += "scalability = " + fmt_doubles(memory.tiers[i].scalability) + '\n';
    }

    for (std::size_t i = 0; i < comm.size(); ++i) {
        out += "\n[comm-layer " + std::to_string(i) + "]\n";
        out += "latency = " + fmt_double(comm[i].latency) + '\n';
        out += "pairs = " + fmt_pairs(comm[i].pairs) + '\n';
        out += "p2p = " + fmt_curve(comm[i].p2p) + '\n';
        out += "slowdown = " + fmt_doubles(comm[i].slowdown) + '\n';
    }

    // Cluster sections. Omitted entirely for single-node profiles so
    // historical files serialize (and re-parse) byte-identically.
    if (topology.enabled()) {
        out += "\n[topology]\n";
        out += "kind = " + topology.kind + '\n';
        out += "cores_per_node = " + std::to_string(topology.cores_per_node) + '\n';
        out += "dims = " + fmt_ints(topology.dims) + '\n';
    }
    for (std::size_t i = 0; i < comm_tiers.size(); ++i) {
        out += "\n[comm-tier " + std::to_string(i) + "]\n";
        out += "name = " + comm_tiers[i].name + '\n';
        out += "tier = " + std::to_string(comm_tiers[i].tier) + '\n';
        out += "hops = " + std::to_string(comm_tiers[i].hops) + '\n';
        out += "layer = " + std::to_string(comm_tiers[i].layer) + '\n';
    }

    if (!phase_seconds.empty()) {
        out += "\n[timing]\n";
        for (const auto& [phase, seconds] : phase_seconds)
            out += phase + " = " + fmt_double(seconds) + '\n';
    }

    if (!counters.empty()) {
        out += "\n[counters]\n";
        for (const auto& [name, value] : counters)
            out += name + " = " + std::to_string(value) + '\n';
    }

    if (!errors.empty()) {
        out += "\n[errors]\n";
        for (const auto& [phase, message] : errors) {
            // The format is line-oriented; fold any newline an exception
            // message smuggled in.
            std::string flat = message;
            for (char& c : flat)
                if (c == '\n' || c == '\r') c = ' ';
            out += phase + " = " + flat + '\n';
        }
    }
    return out;
}

std::optional<Profile> Profile::parse(const std::string& text) {
    std::stringstream stream(text);
    std::string line;
    if (!std::getline(stream, line) || trim(line) != kHeader) return std::nullopt;

    Profile profile;
    enum class Section {
        Top, Cache, Memory, MemoryTier, CommLayer, Topology, CommTier, Timing, Counters, Errors
    };
    Section section = Section::Top;

    while (std::getline(stream, line)) {
        line = trim(line);
        if (line.empty() || line.front() == '#') continue;

        if (line.front() == '[') {
            if (line.back() != ']') return std::nullopt;
            const std::string name = trim(line.substr(1, line.size() - 2));
            if (name.starts_with("cache ")) {
                section = Section::Cache;
                profile.caches.emplace_back();
            } else if (name == "memory") {
                section = Section::Memory;
            } else if (name.starts_with("memory-tier ")) {
                section = Section::MemoryTier;
                profile.memory.tiers.emplace_back();
            } else if (name.starts_with("comm-layer ")) {
                section = Section::CommLayer;
                profile.comm.emplace_back();
            } else if (name == "topology") {
                section = Section::Topology;
            } else if (name.starts_with("comm-tier ")) {
                section = Section::CommTier;
                profile.comm_tiers.emplace_back();
            } else if (name == "timing") {
                section = Section::Timing;
            } else if (name == "counters") {
                section = Section::Counters;
            } else if (name == "errors") {
                section = Section::Errors;
            } else {
                return std::nullopt;
            }
            continue;
        }

        const auto eq = line.find('=');
        if (eq == std::string::npos) return std::nullopt;
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));

        const auto fail = [] { return std::optional<Profile>{}; };
        switch (section) {
            case Section::Top: {
                if (key == "machine") {
                    profile.machine = value;
                } else if (key == "cores") {
                    const auto v = parse_int(value);
                    if (!v) return fail();
                    profile.cores = static_cast<int>(*v);
                } else if (key == "page_size") {
                    const auto v = parse_int(value);
                    if (!v || *v < 0) return fail();
                    profile.page_size = static_cast<Bytes>(*v);
                } else {
                    return fail();
                }
                break;
            }
            case Section::Cache: {
                ProfileCacheLevel& cache = profile.caches.back();
                if (key == "size") {
                    const auto v = parse_int(value);
                    if (!v || *v < 0) return fail();
                    cache.size = static_cast<Bytes>(*v);
                } else if (key == "method") {
                    cache.method = value;
                } else if (key == "groups") {
                    const auto v = parse_groups(value);
                    if (!v) return fail();
                    cache.groups = *v;
                } else {
                    return fail();
                }
                break;
            }
            case Section::Memory: {
                if (key == "reference") {
                    const auto v = parse_double(value);
                    if (!v) return fail();
                    profile.memory.reference_bandwidth = *v;
                } else {
                    return fail();
                }
                break;
            }
            case Section::MemoryTier: {
                ProfileMemoryTier& tier = profile.memory.tiers.back();
                if (key == "bandwidth") {
                    const auto v = parse_double(value);
                    if (!v) return fail();
                    tier.bandwidth = *v;
                } else if (key == "groups") {
                    const auto v = parse_groups(value);
                    if (!v) return fail();
                    tier.groups = *v;
                } else if (key == "scalability") {
                    const auto v = parse_doubles(value);
                    if (!v) return fail();
                    tier.scalability = *v;
                } else {
                    return fail();
                }
                break;
            }
            case Section::CommLayer: {
                ProfileCommLayer& layer = profile.comm.back();
                if (key == "latency") {
                    const auto v = parse_double(value);
                    if (!v) return fail();
                    layer.latency = *v;
                } else if (key == "pairs") {
                    const auto v = parse_pairs(value);
                    if (!v) return fail();
                    layer.pairs = *v;
                } else if (key == "p2p") {
                    const auto v = parse_curve(value);
                    if (!v) return fail();
                    layer.p2p = *v;
                } else if (key == "slowdown") {
                    const auto v = parse_doubles(value);
                    if (!v) return fail();
                    layer.slowdown = *v;
                } else {
                    return fail();
                }
                break;
            }
            case Section::Topology: {
                if (key == "kind") {
                    profile.topology.kind = value;
                } else if (key == "cores_per_node") {
                    const auto v = parse_int(value);
                    if (!v || *v < 1) return fail();
                    profile.topology.cores_per_node = static_cast<int>(*v);
                } else if (key == "dims") {
                    const auto v = parse_ints(value);
                    if (!v) return fail();
                    profile.topology.dims = *v;
                } else {
                    return fail();
                }
                break;
            }
            case Section::CommTier: {
                ProfileCommTier& tier = profile.comm_tiers.back();
                if (key == "name") {
                    tier.name = value;
                    break;
                }
                const auto v = parse_int(value);
                if (!v || *v < 0) return fail();
                if (key == "tier") {
                    tier.tier = static_cast<int>(*v);
                } else if (key == "hops") {
                    tier.hops = static_cast<int>(*v);
                } else if (key == "layer") {
                    tier.layer = static_cast<int>(*v);
                } else {
                    return fail();
                }
                break;
            }
            case Section::Timing: {
                const auto v = parse_double(value);
                if (!v) return fail();
                profile.phase_seconds[key] = *v;
                break;
            }
            case Section::Counters: {
                const auto v = parse_int(value);
                if (!v || *v < 0) return fail();
                profile.counters[key] = static_cast<std::uint64_t>(*v);
                break;
            }
            case Section::Errors: {
                profile.errors[key] = value;
                break;
            }
        }
    }
    return profile;
}

bool Profile::save(const std::string& path) const {
    // Crash-atomic: fsync'd under a temporary sibling name, then renamed
    // into place. The profile is the suite's whole product — a crash or
    // power loss mid-save must never leave a truncated file where a good
    // profile stood (or would stand).
    return write_file_atomic(path, serialize());
}

std::optional<Profile> Profile::load(const std::string& path, std::string* diagnostic) {
    std::string text;
    switch (read_file(path, &text)) {
        case FileRead::Absent:
            if (diagnostic != nullptr) *diagnostic = "no such file: " + path;
            return std::nullopt;
        case FileRead::Error:
            if (diagnostic != nullptr) *diagnostic = "cannot read " + path;
            return std::nullopt;
        case FileRead::Ok:
            break;
    }
    std::optional<Profile> profile = parse(text);
    if (!profile && diagnostic != nullptr)
        *diagnostic =
            path + " exists but is not a valid servet profile (corrupt or wrong format)";
    return profile;
}

}  // namespace servet::core
