// Cluster-run glue between the simulated topology and the measured
// profile. A cluster suite run probes a sampled pair set (every route
// class covered, not every pair) and then stamps the topology shape plus
// the route-class -> comm-layer map onto the profile, so consumers can
// classify and price *any* pair analytically (docs/cluster-sim.md).
#pragma once

#include <vector>

#include "core/comm_costs.hpp"
#include "core/profile.hpp"
#include "sim/machine.hpp"

namespace servet::core {

/// Sampled probe-pair set for a cluster machine: every intra-node pair of
/// node 0, plus enough node-disjoint representatives per inter-node route
/// class to feed the scalability probe (comm.max_concurrent concurrent
/// senders) — sim::cluster_probe_pairs sized for this suite config.
/// Empty when the machine has no topology (probe every pair).
[[nodiscard]] std::vector<CorePair> cluster_probe_pairs(const sim::MachineSpec& spec,
                                                        const CommCostsOptions& comm);

/// Stamp the [topology] block and the per-route-class [comm-tier] records
/// onto a measured profile of `spec`. Iterates every pair of every
/// measured comm layer, so classes that latency clustering merged into
/// one layer each get their own record pointing at the shared layer.
/// No-op for machines without a topology.
void annotate_cluster_profile(Profile* profile, const sim::MachineSpec& spec);

}  // namespace servet::core
