// Exact-round-trip serialization of suite phase payloads, the currency of
// the run journal (core/journal.hpp). Each encoder turns one phase's
// complete result into a line-oriented text block and each decoder
// reconstructs a struct equal to the original — doubles travel as C
// hexfloats ("%a"), which round-trip bit-exactly, so a resumed run that
// replays a journaled phase produces a profile byte-identical to the run
// that measured it.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/cache_size.hpp"
#include "core/comm_costs.hpp"
#include "core/mcalibrator.hpp"
#include "core/mem_overhead.hpp"
#include "core/shared_cache.hpp"

namespace servet::core {

/// Payload of the cache_size phase: the mcalibrator curve plus the levels
/// detected from it (downstream phases are sized by these).
struct CacheSizePayload {
    McalibratorCurve curve;
    std::vector<CacheLevelEstimate> levels;

    friend bool operator==(const CacheSizePayload&, const CacheSizePayload&) = default;
};

[[nodiscard]] std::string encode_cache_size(const CacheSizePayload& payload);
[[nodiscard]] std::optional<CacheSizePayload> decode_cache_size(const std::string& text);

[[nodiscard]] std::string encode_shared_caches(
    const std::vector<SharedCacheLevelResult>& levels);
[[nodiscard]] std::optional<std::vector<SharedCacheLevelResult>> decode_shared_caches(
    const std::string& text);

[[nodiscard]] std::string encode_mem_overhead(const MemOverheadResult& result);
[[nodiscard]] std::optional<MemOverheadResult> decode_mem_overhead(const std::string& text);

[[nodiscard]] std::string encode_comm_costs(const CommCostsResult& result);
[[nodiscard]] std::optional<CommCostsResult> decode_comm_costs(const std::string& text);

}  // namespace servet::core
