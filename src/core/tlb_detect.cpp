#include "core/tlb_detect.hpp"

#include <algorithm>
#include <vector>

#include "base/check.hpp"
#include "stats/gradient.hpp"

namespace servet::core {

std::optional<TlbEstimate> detect_tlb(Platform& platform, const TlbDetectOptions& options) {
    SERVET_CHECK(options.min_pages >= 2 && options.max_pages > options.min_pages);
    SERVET_CHECK(options.repeats > 0 && options.passes > 0);
    SERVET_CHECK(options.l1_size >= 4 * options.l1_line);
    const Bytes page = platform.page_size();
    const Bytes stride = page + options.l1_line;

    // Stay cache-clean: at most half the L1's line capacity in probe pages.
    const int page_cap = static_cast<int>(options.l1_size / options.l1_line / 2);
    const int max_pages = std::min(options.max_pages, page_cap);
    if (max_pages < 2 * options.min_pages) return std::nullopt;  // no probe room

    std::vector<int> pages;
    std::vector<Cycles> cycles;
    for (int n = options.min_pages; n <= max_pages; n *= 2) {
        const Bytes array_bytes = static_cast<Bytes>(n) * stride;
        Cycles total = 0;
        for (int r = 0; r < options.repeats; ++r)
            total += platform.traverse_cycles(options.core, array_bytes, stride,
                                              options.passes, /*fresh_placement=*/true);
        pages.push_back(n);
        cycles.push_back(total / options.repeats);
    }

    const std::vector<double> gradient = stats::ratio_gradient(cycles);
    const std::vector<stats::Peak> peaks =
        stats::find_peaks(gradient, options.gradient_threshold);
    if (peaks.empty()) return std::nullopt;

    // The reach crossing is the first step; the TLB is virtually indexed,
    // so the apex position marks the last fitting page count exactly.
    const stats::Peak& peak = peaks.front();
    TlbEstimate estimate;
    estimate.entries = pages[peak.apex];
    estimate.reach_bytes = static_cast<Bytes>(estimate.entries) * page;
    // Beyond reach every probe access misses the TLB: the plateau shift is
    // the walk penalty itself.
    estimate.miss_cycles = cycles[peak.last + 1] - cycles[peak.first];
    if (estimate.miss_cycles <= 0) return std::nullopt;
    return estimate;
}

}  // namespace servet::core
