// Report rendering: turn a Profile into human-facing artifacts — a
// markdown hardware report (the install-time document an administrator
// files next to the profile) and a Graphviz topology graph whose clusters
// are the *measured* sharing/contention groups rather than anything read
// from documentation. Both are pure functions of the profile, so they are
// unit-testable and identical across the tool, the examples and any
// downstream use.
#pragma once

#include <string>

#include "core/profile.hpp"

namespace servet::core {

/// Full markdown report: machine summary, cache hierarchy table, memory
/// tiers with scalability, communication layers, suite timings, and the
/// derived advice (core throttling per tier).
[[nodiscard]] std::string render_markdown(const Profile& profile);

/// Graphviz (dot) topology: one node per core; nested clusters for each
/// cache level's sharing groups (innermost = lowest shared level); dashed
/// super-clusters for memory contention groups; edges between group
/// representatives labelled with the measured layer latencies.
[[nodiscard]] std::string render_dot(const Profile& profile);

}  // namespace servet::core
