// Profile validation: checks a measured Profile against the physical
// invariants any real memory hierarchy and interconnect must satisfy —
// cache sizes strictly increase up the hierarchy, shared-core groups
// partition the cores, bandwidth ratios sit in sane bands, communication
// latency never falls as layers get more remote. A profile that violates
// one of these was produced by a corrupted file, a buggy edit, or a run
// perturbed badly enough that its measurements cannot be trusted;
// `servet validate` reports each violation with a stable code and the
// suite phase it implicates, and `--repair` re-measures exactly those
// phases through the run journal (core/journal.hpp).
#pragma once

#include <string>
#include <vector>

#include "core/profile.hpp"

namespace servet::core {

enum class Severity {
    Warning,  ///< suspicious but physically possible; reported, exit 0
    Error,    ///< physically impossible or unusable; exit non-zero
};

[[nodiscard]] const char* to_string(Severity severity);

struct Violation {
    /// Stable machine-readable code, e.g. "cache.size-order". Tests and
    /// scripts match on this, not on the message.
    std::string code;
    Severity severity = Severity::Error;
    /// Suite phase whose re-measurement would refresh the violated data:
    /// "cache_size", "shared_caches", "mem_overhead", or "comm_costs".
    /// Empty when no phase is implicated (e.g. a malformed header field).
    std::string phase;
    /// Human-readable diagnostic with the offending values.
    std::string message;
};

struct ValidationReport {
    std::vector<Violation> violations;

    /// True when any violation is Severity::Error.
    [[nodiscard]] bool has_errors() const;

    /// Unique phases implicated by Error-severity violations, in suite
    /// order. A "cache_size" implication expands to every phase: the
    /// downstream phases were sized by the cache-size result, so its
    /// corruption poisons them all.
    [[nodiscard]] std::vector<std::string> implicated_phases() const;
};

/// Checks `profile` against the invariants above. Pure; never throws.
[[nodiscard]] ValidationReport validate_profile(const Profile& profile);

}  // namespace servet::core
