// Classical communication models, for comparison against Servet's layered
// piecewise characterization. Section III-D: "Traditionally, the
// characterization of the communication overhead has been done using
// extensions either of the LogP model or of Hockney's linear model.
// However, both of them show poor accuracy on current communication
// middleware on multicore clusters" — because real middleware switches
// protocols with message size and latency differs per layer. This module
// fits those baselines so the claim can be quantified (see
// bench_ablation_commmodel).
#pragma once

#include <utility>
#include <vector>

#include "base/types.hpp"
#include "core/profile.hpp"

namespace servet::core {

/// Hockney's linear model: t(m) = alpha + m / bandwidth.
struct HockneyModel {
    Seconds alpha = 0;              ///< zero-byte latency
    BytesPerSecond bandwidth = 1;   ///< asymptotic bandwidth (1/beta)

    [[nodiscard]] Seconds at(Bytes m) const {
        return alpha + static_cast<double>(m) / bandwidth;
    }
};

/// Least-squares Hockney fit over (size, latency) points. Requires >= 2
/// points with distinct sizes; a non-increasing fit (negative beta) is
/// clamped to a huge bandwidth.
[[nodiscard]] HockneyModel fit_hockney(const std::vector<std::pair<Bytes, Seconds>>& points);

/// Prediction-error summary of a model against measured points.
struct ModelError {
    double mean_relative = 0;  ///< mean of |pred - meas| / meas
    double max_relative = 0;
};

[[nodiscard]] ModelError evaluate_model(const HockneyModel& model,
                                        const std::vector<std::pair<Bytes, Seconds>>& points);

/// Relative error of the *profile's* layered piecewise lookup against
/// measured points for a given pair (the Servet characterization).
[[nodiscard]] ModelError evaluate_profile(const Profile& profile, CorePair pair,
                                          const std::vector<std::pair<Bytes, Seconds>>& points);

/// One Hockney model fit across every layer's sweep points at once — the
/// "single model for the whole machine" usage the paper criticizes.
[[nodiscard]] HockneyModel fit_hockney_global(const Profile& profile);

}  // namespace servet::core
