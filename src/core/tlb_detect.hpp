// TLB-reach detection — an extension beyond the paper's parameter set.
// Servet's 1KB probe stride touches several elements per page, so on
// machines with costly page walks the TLB-reach crossing bleeds into the
// cache-size sweep (the ablation bench demonstrates a phantom "cache
// level" appearing at TLB reach). Measuring the TLB explicitly, in the
// Saavedra-Smith tradition, both yields a useful tuning parameter (how
// big can a working set grow before translations thrash) and lets a
// report flag suspicious rises in the cache sweep.
//
// Probe design: stride = page_size + L1 line. Each access touches a new
// page (stressing the TLB one entry per access) while walking the L1 sets
// cyclically — so hundreds of probe pages fit in L1 and the *only* cost
// transition for small page counts is the TLB's. The cycles curve steps
// up by exactly the page-walk penalty when the probed pages exceed the
// TLB entry count.
#pragma once

#include <optional>

#include "base/types.hpp"
#include "platform/platform.hpp"

namespace servet::core {

struct TlbDetectOptions {
    int min_pages = 8;
    int max_pages = 4096;
    Bytes l1_line = 64;
    /// Detected (or known) L1 size. The probe touches one L1 line per
    /// page, so page counts approaching the L1's line capacity trip the
    /// L1->L2 capacity transition and would masquerade as a TLB step; the
    /// probe therefore stays below half that capacity. TLBs whose reach
    /// exceeds it are reported as undetectable (nullopt). Run the cache
    /// detection first and pass its L1 estimate here.
    Bytes l1_size = 16 * KiB;
    int passes = 3;
    int repeats = 3;
    /// Gradient threshold for the reach crossing; the step is sharp (the
    /// TLB is virtually indexed by definition) but small relative to
    /// memory transitions, so the threshold is permissive.
    double gradient_threshold = 1.15;
    CoreId core = 0;
};

struct TlbEstimate {
    int entries = 0;            ///< detected reach, in pages
    Cycles miss_cycles = 0;     ///< estimated page-walk penalty
    Bytes reach_bytes = 0;      ///< entries * page_size
};

/// Measure the data TLB. Returns nullopt when no translation-cost step is
/// visible in the probed range (e.g. the machine model has no TLB, or its
/// penalty is below noise).
[[nodiscard]] std::optional<TlbEstimate> detect_tlb(Platform& platform,
                                                    const TlbDetectOptions& options = {});

}  // namespace servet::core
