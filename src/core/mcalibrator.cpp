#include "core/mcalibrator.hpp"

#include "base/check.hpp"
#include "base/log.hpp"
#include "core/probe_common.hpp"
#include "exec/task_key.hpp"
#include "obs/metrics.hpp"
#include "stats/gradient.hpp"

namespace servet::core {

std::vector<double> McalibratorCurve::gradient() const {
    return stats::ratio_gradient(cycles);
}

std::vector<Bytes> mcalibrator_size_grid(Bytes min_size, Bytes max_size) {
    SERVET_CHECK(min_size > 0 && min_size <= max_size);
    std::vector<Bytes> grid;
    Bytes i = min_size;
    while (i <= max_size) {
        grid.push_back(i);
        if (i < 2 * MiB) {
            i *= 2;
        } else {
            i += 1 * MiB;
        }
    }
    return grid;
}

McalibratorCurve run_mcalibrator(MeasureEngine& engine, const McalibratorOptions& options) {
    SERVET_CHECK(options.stride > 0 && options.passes > 0 && options.repeats > 0);
    SERVET_CHECK(engine.platform() != nullptr);
    SERVET_CHECK(options.core >= 0 && options.core < engine.platform()->core_count());

    McalibratorCurve curve;
    curve.sizes = mcalibrator_size_grid(options.min_size, options.max_size);

    // One task per array size: the task owns all `repeats` fresh
    // allocations of that size, so the averaged placements stay private to
    // it; the placement salt decorrelates placements across sizes.
    std::vector<MeasureTask> tasks;
    tasks.reserve(curve.sizes.size());
    for (Bytes size : curve.sizes) {
        MeasureTask task;
        task.key = "mcal/c" + std::to_string(options.core) + "/t" +
                   std::to_string(options.stride) + "/p" + std::to_string(options.passes) +
                   "/r" + std::to_string(options.repeats) + "/b" + std::to_string(size);
        // Domain-separated from the noise seed (seed_of(key)) so the
        // placement and jitter streams stay independent.
        task.placement_salt = exec::seed_of(task.key + "/pp");
        task.body = [size, options](Platform* platform, msg::Network*) {
            Cycles total = 0;
            for (int r = 0; r < options.repeats; ++r)
                total += checked_traverse(platform, options.core, size, options.stride,
                                          options.passes, /*fresh_placement=*/true);
            return std::vector<double>{total / options.repeats};
        };
        tasks.push_back(std::move(task));
    }

    obs::counter("phase.cache_size.measurements", obs::Stability::Stable).add(tasks.size());
    obs::counter("phase.cache_size.iterations", obs::Stability::Stable)
        .add(tasks.size() * static_cast<std::uint64_t>(options.repeats));

    const std::vector<std::vector<double>> measured = engine.run(tasks);
    curve.cycles.reserve(curve.sizes.size());
    for (std::size_t i = 0; i < measured.size(); ++i) {
        curve.cycles.push_back(measured[i][0]);
        SERVET_LOG_DEBUG("mcalibrator: %llu bytes -> %.2f cycles/access",
                         static_cast<unsigned long long>(curve.sizes[i]), measured[i][0]);
    }
    return curve;
}

McalibratorCurve run_mcalibrator(Platform& platform, const McalibratorOptions& options) {
    MeasureEngine engine(&platform, nullptr, nullptr, nullptr);
    return run_mcalibrator(engine, options);
}

}  // namespace servet::core
