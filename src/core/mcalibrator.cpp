#include "core/mcalibrator.hpp"

#include "base/check.hpp"
#include "base/log.hpp"
#include "stats/gradient.hpp"

namespace servet::core {

std::vector<double> McalibratorCurve::gradient() const {
    return stats::ratio_gradient(cycles);
}

std::vector<Bytes> mcalibrator_size_grid(Bytes min_size, Bytes max_size) {
    SERVET_CHECK(min_size > 0 && min_size <= max_size);
    std::vector<Bytes> grid;
    Bytes i = min_size;
    while (i <= max_size) {
        grid.push_back(i);
        if (i < 2 * MiB) {
            i *= 2;
        } else {
            i += 1 * MiB;
        }
    }
    return grid;
}

McalibratorCurve run_mcalibrator(Platform& platform, const McalibratorOptions& options) {
    SERVET_CHECK(options.stride > 0 && options.passes > 0 && options.repeats > 0);
    SERVET_CHECK(options.core >= 0 && options.core < platform.core_count());

    McalibratorCurve curve;
    curve.sizes = mcalibrator_size_grid(options.min_size, options.max_size);
    curve.cycles.reserve(curve.sizes.size());
    for (Bytes size : curve.sizes) {
        Cycles total = 0;
        for (int r = 0; r < options.repeats; ++r) {
            const Cycles sample =
                platform.traverse_cycles(options.core, size, options.stride, options.passes);
            SERVET_CHECK_MSG(sample > 0, "traversal produced non-positive cycle count");
            total += sample;
        }
        const Cycles c = total / options.repeats;
        curve.cycles.push_back(c);
        SERVET_LOG_DEBUG("mcalibrator: %llu bytes -> %.2f cycles/access",
                         static_cast<unsigned long long>(size), c);
    }
    return curve;
}

}  // namespace servet::core
